package cla

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildServeAnalysis(t *testing.T) *Analysis {
	t.Helper()
	db, err := CompileSource("serve.c", `
int g; int mirror;
int *p, *q;
void set(void) { p = &g; q = &g; }
void reflect(void) { mirror = g; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalysisQuery(t *testing.T) {
	an := buildServeAnalysis(t)
	results, err := an.Query(context.Background(), []Query{
		{Kind: "pointsto", Name: "p"},
		{Kind: "alias", X: "p", Y: "q"},
		{Kind: "callgraph"},
		{Kind: "modref", Func: "set"},
		{Kind: "dependence", Target: "g"},
		{Kind: "lint"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d (%s): %s", i, r.Kind, r.Err.Message)
		}
	}
	if len(results[0].Objects) != 1 || results[0].Objects[0].Name != "g" {
		t.Errorf("pointsto(p) = %+v, want {g}", results[0].Objects)
	}
	if results[1].Alias == nil || !*results[1].Alias {
		t.Error("alias(p, q) = false, want true")
	}
	if len(results[4].Dependents) == 0 {
		t.Error("dependence(g) found no dependents")
	}
}

// TestAnalysisQueryFileBacked runs the same batch against an AnalyzeFile
// analysis, which must materialize the program before serving so queries
// never race on the reader's demand-load state.
func TestAnalysisQueryFileBacked(t *testing.T) {
	an := buildServeAnalysis(t)
	path := filepath.Join(t.TempDir(), "serve.cla")
	if err := an.Database().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fan, err := AnalyzeFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fan.Close()
	results, err := fan.Query(context.Background(), []Query{
		{Kind: "pointsto", Name: "p"},
		{Kind: "lint"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || len(results[0].Objects) != 1 {
		t.Errorf("file-backed pointsto(p) = %+v", results[0])
	}
	if results[1].Err != nil {
		t.Errorf("file-backed lint: %s", results[1].Err.Message)
	}
}

func TestAnalysisQueryNotFound(t *testing.T) {
	an := buildServeAnalysis(t)
	results, err := an.Query(context.Background(), []Query{{Kind: "pointsto", Name: "nosuch"}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Err.Status != http.StatusNotFound {
		t.Errorf("pointsto(nosuch) = %+v, want 404 error body", results[0].Err)
	}
}

// TestServeHTTP round-trips the public Serve API over a real TCP
// listener, then drains it gracefully.
func TestServeHTTP(t *testing.T) {
	an := buildServeAnalysis(t)
	srv, err := NewQueryServer(an, &ServeOptions{SessionName: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"session":"unit","queries":[{"kind":"alias","x":"p","y":"q"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Session string `json:"session"`
		Results []struct {
			Alias *bool `json:"alias"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.Session != "unit" || len(qr.Results) != 1 || qr.Results[0].Alias == nil || !*qr.Results[0].Alias {
		t.Fatalf("query response = %+v", qr)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestCompileDirIncludeDirs is the regression test for CompileDir
// dropping Options.IncludeDirs: a header outside the compile dir must be
// reachable through the option.
func TestCompileDirIncludeDirs(t *testing.T) {
	src := t.TempDir()
	inc := t.TempDir()
	if err := os.WriteFile(filepath.Join(inc, "ext.h"), []byte("extern int g;\nextern int *p;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := "#include \"ext.h\"\nint g; int *p;\nvoid f(void) { p = &g; }\n"
	if err := os.WriteFile(filepath.Join(src, "main.c"), []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := CompileDir(src, nil); err == nil {
		t.Fatal("compile without IncludeDirs should fail to find ext.h")
	}
	db, err := CompileDir(src, &Options{IncludeDirs: []string{inc}})
	if err != nil {
		t.Fatalf("compile with IncludeDirs: %v", err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts := an.PointsToName("p"); len(pts) != 1 || pts[0].Name() != "g" {
		t.Errorf("pts(p) = %v, want {g}", pts)
	}
}

func TestPublicCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.c"), []byte("int x;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileDirCtx(ctx, dir, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("CompileDirCtx(canceled) = %v, want context.Canceled", err)
	}

	db, err := CompileSource("c.c", "int v, *p;\nvoid f(void) { p = &v; }\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AnalyzeCtx(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeCtx(canceled) = %v, want context.Canceled", err)
	}
	if _, err := db.AnalyzeCtx(ctx, &AnalyzeOptions{Algorithm: WorklistAndersen}); !errors.Is(err, context.Canceled) {
		t.Errorf("AnalyzeCtx(canceled, worklist) = %v, want context.Canceled", err)
	}

	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Query(ctx, []Query{{Kind: "pointsto", Name: "p"}}); !errors.Is(err, context.Canceled) {
		t.Errorf("Query(canceled) = %v, want context.Canceled", err)
	}
}

// TestTypedErrors pins the public error contract: phase classification
// via errors.As and sentinel matching via errors.Is.
func TestTypedErrors(t *testing.T) {
	_, err := CompileSource("bad.c", "int ;;;garbage(", nil)
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("compile error is %T, want *cla.Error", err)
	}
	if ce.Phase != PhaseCompile {
		t.Errorf("phase = %q, want %q", ce.Phase, PhaseCompile)
	}

	an := buildServeAnalysis(t)
	_, err = an.DependenceByName("nosuch", nil)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("DependenceByName(nosuch) = %v, want ErrNotFound", err)
	}
	if !errors.As(err, &ce) || ce.Phase != PhaseQuery {
		t.Errorf("DependenceByName error phase = %v", err)
	}

	_, err = OpenFile(filepath.Join(t.TempDir(), "missing.cla"))
	if !errors.As(err, &ce) || ce.Phase != PhaseObject {
		t.Errorf("OpenFile(missing) = %v, want PhaseObject", err)
	}
}
