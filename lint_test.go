package cla

import (
	"path/filepath"
	"strings"
	"testing"
)

const lintSrc = `
int g;
int *p, *wild;
int *leak;
void init(void) { p = &g; }
void deref(void) { *wild = g; }
int *esc(void) {
	int x;
	leak = &x;
	return &x;
}
`

func TestAnalysisLint(t *testing.T) {
	db, err := CompileSource("l.c", lintSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Lint(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range rep.Findings() {
		got = append(got, f.String())
	}
	want := []string{
		"l.c:6: [deref] dereference of 'wild' whose points-to set is empty (null or uninitialized pointer?) (in deref)",
		"l.c:8: [escape] address of local 'x' may be returned by 'esc', outliving its frame (in esc)",
		"l.c:8: [escape] address of local 'x' may be stored in global 'leak', outliving its frame (in esc)",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("findings:\ngot:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	if dot := rep.CallGraphDOT(); !strings.Contains(dot, "digraph callgraph") {
		t.Errorf("DOT output: %q", dot)
	}
	if len(rep.ModRef()) == 0 {
		t.Error("no MOD/REF summaries")
	}
}

func TestAnalysisLintSelection(t *testing.T) {
	db, err := CompileSource("l.c", lintSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Lint(&LintOptions{Checks: []string{"deref"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings() {
		if f.Check != "deref" {
			t.Errorf("unexpected check %s in selection", f.Check)
		}
	}
	if rep.CallGraphDOT() != "" {
		t.Error("call graph produced without callgraph check")
	}
	if _, err := an.Lint(&LintOptions{Checks: []string{"nosuch"}}); err == nil {
		t.Error("bad check name accepted")
	}
}

// TestAnalysisLintFileBacked lints through the demand-loaded AnalyzeFile
// path, which must materialize assignments and call sites from the file.
func TestAnalysisLintFileBacked(t *testing.T) {
	db, err := CompileSource("l.c", lintSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "l.cla")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	rep, err := an.Lint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Findings()); n != 3 {
		t.Errorf("file-backed lint: %d findings, want 3: %v", n, rep.Findings())
	}
}
