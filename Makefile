# Convenience targets for the CLA reproduction. `make check` is the
# tier-1 verification from ROADMAP.md plus the race extras; CI and
# pre-merge runs should use it.

GO ?= go

.PHONY: all build check test vet race bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race extras: the parallel pipeline and the checks engine must stay
# race-clean and deterministic at any -j.
race:
	$(GO) test -race ./internal/core ./internal/driver ./internal/linker ./internal/parallel ./internal/checks

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./internal/bench

clean:
	$(GO) clean ./...
