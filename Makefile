# Convenience targets for the CLA reproduction. `make check` is the
# tier-1 verification from ROADMAP.md plus the race extras; CI and
# pre-merge runs should use it.

GO ?= go

.PHONY: all build check test vet fmt race bench bench-smoke bench-check fuzz-smoke clean

all: build

build:
	$(GO) build ./...

# gofmt must be a no-op; print the offending files and fail otherwise.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race extras: the parallel pipeline, the wave fixpoints, the checks
# engine, the shared set layer, the query-serving layer, the metrics
# layer and the incremental pipeline must stay race-clean and
# deterministic at any -j.
race:
	$(GO) test -race ./internal/core ./internal/driver ./internal/linker ./internal/parallel ./internal/pts/worklist ./internal/checks ./internal/pts/set ./internal/serve ./internal/extmodel ./internal/obs ./internal/snapfile ./internal/incr

check: build fmt vet test race

bench:
	$(GO) test -bench=. -benchmem ./internal/bench

# One-iteration benchmark compile-and-run: catches benchmarks that rot
# (build failures, panics) without paying for stable timings.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./internal/pts/set ./internal/core

# Perf regression gate: re-run the corpus-conformance, cold-start and
# incremental-refresh tables and compare their timings against the
# committed BENCH_corpus.json / BENCH_snapshot.json / BENCH_incr.json
# baselines. The tolerance is generous because CI hosts differ from the
# baseline host; it still catches order-of-magnitude regressions. Pass
# CHECK_FLAGS="-fresh-dir out" to keep the fresh rows as artifacts.
TOLERANCE ?= 9
bench-check:
	$(GO) run ./cmd/clabench -table 13 -check -tolerance $(TOLERANCE) $(CHECK_FLAGS)
	$(GO) run ./cmd/clabench -table 14 -scale 1.0 -j 4 -check -tolerance $(TOLERANCE) $(CHECK_FLAGS)
	$(GO) run ./cmd/clabench -table 15 -scale 1.0 -j 4 -check -tolerance $(TOLERANCE) $(CHECK_FLAGS)

# Short fuzz runs over the binary object-file reader, the trace encoder,
# the adaptive set layer, the extern-model path and the solved-snapshot
# reader: corrupt inputs must error (never panic or corrupt output), set
# operations must match their map oracles, and the extern models must
# stay monotone and deterministic on arbitrary translation units.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReader -fuzztime=10s ./internal/objfile
	$(GO) test -run=^$$ -fuzz=FuzzTrace -fuzztime=10s ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzSetOps -fuzztime=10s ./internal/pts/set
	$(GO) test -run=^$$ -fuzz=FuzzExterns -fuzztime=10s ./internal/extmodel
	$(GO) test -run=^$$ -fuzz=FuzzSnapshot -fuzztime=10s ./internal/snapfile

clean:
	$(GO) clean ./...
