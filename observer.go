package cla

import (
	"io"
	"time"

	"cla/internal/obs"
)

// Observer collects per-phase timings, allocation deltas and named
// counters across the compile, link and analyze calls that share it.
// Attach one observer to Options and AnalyzeOptions for a whole
// pipeline run, then read the result with Analysis.Stats or export it
// with WriteTrace / WriteJSONL.
//
// A nil *Observer is valid everywhere and costs nothing: every library
// entry point accepts it and skips all instrumentation.
type Observer struct {
	o *obs.Observer
}

// NewObserver creates an observer whose epoch is now. Phase allocation
// deltas (runtime.MemStats) are recorded for top-level phases.
func NewObserver() *Observer {
	o := obs.New()
	o.EnableMemStats(true)
	return &Observer{o: o}
}

// internal returns the wrapped observer, nil-safely.
func (ob *Observer) internal() *obs.Observer {
	if ob == nil {
		return nil
	}
	return ob.o
}

// WriteTrace writes the recorded phases and counters in Chrome
// trace_event format (load the file at chrome://tracing or
// ui.perfetto.dev). The output is validated first; on error nothing is
// written. A nil observer writes nothing and returns nil.
func (ob *Observer) WriteTrace(w io.Writer) error {
	return ob.internal().WriteTrace(w)
}

// WriteJSONL writes the recorded phases and counters as JSON lines, one
// record per span or metric. A nil observer writes nothing and returns
// nil.
func (ob *Observer) WriteJSONL(w io.Writer) error {
	return ob.internal().WriteJSONL(w)
}

// Phase is one completed pipeline span recorded by an Observer. Track 0
// holds the sequential phases (compile, link, analyze, checks); tracks
// >= 1 hold parallel work items, keyed by work index so the recording
// is identical at every Jobs setting.
type Phase struct {
	Name     string
	Track    int
	Start    time.Duration // offset from the observer's epoch
	Duration time.Duration
	// AllocBytes is the heap allocated during the phase, or -1 when not
	// recorded (non-root spans, or memory statistics disabled).
	AllocBytes int64
}

// LoadInfo is the demand-load accounting of an AnalyzeFile run: how
// much of the database the analysis actually touched (the load columns
// of the paper's Table 3).
type LoadInfo struct {
	// TotalBlocks and BlocksLoaded count index blocks in the file and
	// the distinct blocks read; BlockLoads counts reads including
	// re-reads after discard.
	TotalBlocks  int
	BlocksLoaded int
	BlockLoads   int64
	// TotalEntries and EntriesLoaded count assignment entries.
	TotalEntries  int64
	EntriesLoaded int64
	// TotalBytes and BytesLoaded count assignment-section bytes.
	TotalBytes  int64
	BytesLoaded int64
}

// RunStats is everything an observed analysis run recorded.
type RunStats struct {
	// Phases are the completed spans, sorted by (track, start time).
	Phases []Phase
	// Counters and Gauges are the named metrics, e.g. "solver.passes",
	// "load.bytes.loaded", "link.merges".
	Counters map[string]int64
	Gauges   map[string]int64
	// Metrics are the solver statistics (also via Analysis.Metrics).
	Metrics Metrics
	// Load is the demand-load accounting; DemandLoaded reports whether
	// the run read from a serialized database (AnalyzeFile) at all.
	Load         LoadInfo
	DemandLoaded bool
}

// Stats returns the statistics recorded for this analysis: solver
// metrics, and — when an Observer was attached — phases and counters,
// plus demand-load accounting for AnalyzeFile runs.
func (a *Analysis) Stats() RunStats {
	rs := RunStats{Metrics: a.Metrics()}
	if a.o.Enabled() {
		for _, e := range a.o.Events() {
			rs.Phases = append(rs.Phases, Phase{
				Name:       e.Name,
				Track:      e.Track,
				Start:      e.Start,
				Duration:   e.Dur(),
				AllocBytes: e.Alloc,
			})
		}
		rs.Counters = map[string]int64{}
		for _, m := range a.o.Counters() {
			rs.Counters[m.Name] = m.Value
		}
		rs.Gauges = map[string]int64{}
		for _, m := range a.o.Gauges() {
			rs.Gauges[m.Name] = m.Value
		}
	}
	if a.r != nil {
		ls := a.r.LoadStats()
		rs.Load = LoadInfo{
			TotalBlocks:   ls.TotalBlocks,
			BlocksLoaded:  ls.BlocksLoaded,
			BlockLoads:    ls.BlockLoads,
			TotalEntries:  ls.TotalEntries,
			EntriesLoaded: ls.EntriesLoaded,
			TotalBytes:    ls.TotalBytes,
			BytesLoaded:   ls.BytesLoaded,
		}
		rs.DemandLoaded = true
	}
	return rs
}
