package cla

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"cla/internal/checks"
	"cla/internal/claerr"
	"cla/internal/prim"
)

// LintOptions configures an Analysis.Lint run.
type LintOptions struct {
	// Checks selects which checks run by name ("callgraph", "modref",
	// "escape", "deref", "externs"); nil means all the defaults — plus the
	// externs soundness audit when the analysis ran under a non-unsound
	// ExtModel.
	Checks []string
	// Jobs bounds the workers used inside each check (0 = all cores,
	// 1 = sequential). Output is identical at every setting.
	Jobs int
}

// Finding is one diagnostic produced by a lint check.
type Finding struct {
	// Check is the check that produced the finding.
	Check string
	// File and Line locate the finding in the source.
	File string
	Line int
	// Func is the enclosing function, or "" at file scope.
	Func string
	// Message describes the finding.
	Message string
}

func (f Finding) String() string {
	if f.Func != "" {
		return fmt.Sprintf("%s:%d: [%s] %s (in %s)", f.File, f.Line, f.Check, f.Message, f.Func)
	}
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// ModRefSummary is one function's MOD/REF summary: the abstract objects it
// may write or read through pointer dereferences, directly in its own body
// and transitively through the functions it may call.
type ModRefSummary struct {
	Func                 string
	Mod, Ref             []string
	DirectMod, DirectRef []string
	// Incomplete marks summaries that touch external-world memory: the
	// lists are lower bounds (set only under a non-unsound ExtModel).
	Incomplete bool
}

// ExternAudit is the incomplete-program soundness report produced by the
// "externs" check: the undefined-external inventory plus counts of
// verdicts the other checks downgraded because of incompleteness.
type ExternAudit struct {
	// Model is the extern model the analysis ran under.
	Model string
	// Modeled reports whether undefined externals were modeled at all.
	Modeled bool
	// UndefFuncs and UndefGlobals inventory the undefined externals.
	UndefFuncs   []UndefExtern
	UndefGlobals []UndefExtern
	// DerefDowngraded, CallsDowngraded and ModRefIncomplete count
	// verdicts that rest on the external model.
	DerefDowngraded  int
	CallsDowngraded  int
	ModRefIncomplete int
}

// LintReport is the outcome of an Analysis.Lint run.
type LintReport struct {
	rep *checks.Report
}

// Findings returns every diagnostic, sorted by (file, line, check,
// message).
func (r *LintReport) Findings() []Finding {
	var out []Finding
	for _, d := range r.rep.Diags {
		out = append(out, Finding{
			Check:   string(d.Check),
			File:    d.Loc.File,
			Line:    int(d.Loc.Line),
			Func:    d.Func,
			Message: d.Message,
		})
	}
	return out
}

// Format renders the findings one per line.
func (r *LintReport) Format(w io.Writer) { r.rep.Format(w) }

// CallGraphDOT renders the resolved call graph as a Graphviz digraph
// (indirect edges dashed), or "" if the callgraph check did not run.
func (r *LintReport) CallGraphDOT() string {
	if r.rep.Graph == nil {
		return ""
	}
	return r.rep.Graph.DOT()
}

// CallGraphJSON renders the resolved call graph (functions, edges and
// per-site callee sets) as JSON, or nil if the callgraph check did not
// run.
func (r *LintReport) CallGraphJSON() ([]byte, error) {
	if r.rep.Graph == nil {
		return nil, nil
	}
	return r.rep.Graph.JSON()
}

// ModRef returns per-function MOD/REF summaries sorted by function name,
// or nil if the modref check did not run.
func (r *LintReport) ModRef() []ModRefSummary {
	var out []ModRefSummary
	for _, s := range r.rep.ModRef {
		out = append(out, ModRefSummary{
			Func: s.Func, Mod: s.Mod, Ref: s.Ref,
			DirectMod: s.DirectMod, DirectRef: s.DirectRef,
			Incomplete: s.Incomplete,
		})
	}
	return out
}

// SARIF renders the report as a SARIF 2.1.0 log, loadable by standard
// code-review tooling. The extern audit, when present, is attached as the
// run's "externAudit" property.
func (r *LintReport) SARIF() ([]byte, error) { return r.rep.SARIF() }

// Audit returns the incomplete-program soundness audit, or nil if the
// externs check did not run.
func (r *LintReport) Audit() *ExternAudit {
	a := r.rep.Audit
	if a == nil {
		return nil
	}
	conv := func(us []checks.UndefSym, isFunc bool) []UndefExtern {
		var out []UndefExtern
		for _, u := range us {
			file, line := splitLoc(u.Loc)
			out = append(out, UndefExtern{Name: u.Name, Func: isFunc, File: file, Line: line})
		}
		return out
	}
	return &ExternAudit{
		Model:            a.Model,
		Modeled:          a.Modeled,
		UndefFuncs:       conv(a.UndefFuncs, true),
		UndefGlobals:     conv(a.UndefGlobals, false),
		DerefDowngraded:  a.DerefDowngraded,
		CallsDowngraded:  a.CallsDowngraded,
		ModRefIncomplete: a.ModRefIncomplete,
	}
}

// splitLoc splits a "file:line" location string.
func splitLoc(loc string) (string, int) {
	i := strings.LastIndexByte(loc, ':')
	if i < 0 {
		return loc, 0
	}
	n, err := strconv.Atoi(loc[i+1:])
	if err != nil {
		return loc, 0
	}
	return loc[:i], n
}

// Lint runs the static-analysis clients over the completed analysis: call
// graph resolution, MOD/REF summaries, stack-address escape and
// empty-points-to dereference checks. Output is deterministic at every
// Jobs setting.
func (a *Analysis) Lint(opts *LintOptions) (*LintReport, error) {
	copts := checks.Options{ExtModel: a.ext.String(), Obs: a.o}
	if opts != nil && opts.Checks != nil {
		cs, err := checks.ParseChecks(opts.Checks)
		if err != nil {
			return nil, claerr.New(claerr.PhaseUsage, err)
		}
		copts.Checks = cs
	} else if a.ext != ExtModelUnsound {
		// The analysis was modeled, so the soundness audit rides along.
		copts.Checks = checks.AllChecksAudited()
	}
	if opts != nil {
		copts.Jobs = opts.Jobs
	}
	prog, err := a.fullProgram()
	if err != nil {
		return nil, err
	}
	rep, err := checks.Run(prog, a.res, copts)
	if err != nil {
		return nil, claerr.New(claerr.PhaseLint, err)
	}
	return &LintReport{rep: rep}, nil
}

// fullProgram returns the complete database behind the analysis. In-memory
// analyses already hold it; file-backed ones materialize symbols only, so
// the assignments and call sites (which the checks and the query evaluator
// need) are read from the file on first use.
func (a *Analysis) fullProgram() (*prim.Program, error) {
	if a.r == nil {
		return a.db.prog, nil
	}
	full, err := a.r.Program()
	if err != nil {
		return nil, claerr.New(claerr.PhaseObject, err)
	}
	return full, nil
}
