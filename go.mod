module cla

go 1.22
