package cla

// Integration test on a realistic miniature C program: an intrusive linked
// list, a string-keyed hash table with separate chaining, a callback
// registry dispatched through function pointers, and a small arena
// allocator — the pointer idioms legacy C code bases are made of.

import (
	"bytes"
	"strings"
	"testing"

	"cla/internal/objfile"
)

const listC = `
#include "mini.h"

struct node *free_list;

struct node *node_new(void) {
	struct node *n;
	if (free_list) {
		n = free_list;
		free_list = n->next;
	} else {
		n = (struct node *)arena_alloc(sizeof(struct node));
	}
	n->next = 0;
	n->value = 0;
	return n;
}

void node_free(struct node *n) {
	n->next = free_list;
	free_list = n;
}

struct node *list_push(struct node *head, int v) {
	struct node *n = node_new();
	n->value = v;
	n->next = head;
	return n;
}

int list_sum(struct node *head) {
	int total = 0;
	struct node *cur;
	for (cur = head; cur; cur = cur->next)
		total += cur->value;
	return total;
}
`

const tableC = `
#include "mini.h"

#define NBUCKETS 8

static struct entry *buckets[NBUCKETS];

static unsigned hash(char *key) {
	unsigned h = 5381;
	while (*key)
		h = (h << 5) + h + *key++;
	return h;
}

void table_put(char *key, struct node *val) {
	unsigned b = hash(key) % NBUCKETS;
	struct entry *e = (struct entry *)arena_alloc(sizeof(struct entry));
	e->key = key;
	e->val = val;
	e->chain = buckets[b];
	buckets[b] = e;
}

struct node *table_get(char *key) {
	unsigned b = hash(key) % NBUCKETS;
	struct entry *e;
	for (e = buckets[b]; e; e = e->chain) {
		if (str_eq(e->key, key))
			return e->val;
	}
	return 0;
}
`

const arenaC = `
#include "mini.h"

static char arena[65536];
static unsigned long arena_used;

char *arena_alloc(unsigned long n) {
	char *p = &arena[0];
	p = p + arena_used;
	arena_used += n;
	return p;
}

int str_eq(char *a, char *b) {
	while (*a && *b && *a == *b) { a++; b++; }
	return *a == *b;
}
`

const eventsC = `
#include "mini.h"

static handler_fn handlers[4];
static int nhandlers;

void on_event(handler_fn h) {
	handlers[nhandlers] = h;
	nhandlers = nhandlers + 1;
}

struct node *fire(struct node *arg) {
	int i;
	struct node *last = 0;
	for (i = 0; i < nhandlers; i++)
		last = handlers[i](arg);
	return last;
}
`

const mainC = `
#include "mini.h"

struct node *audit_log;
struct node *seen;

struct node *track(struct node *n) {
	seen = n;
	return n;
}

struct node *archive(struct node *n) {
	audit_log = list_push(audit_log, n->value);
	return audit_log;
}

int main_(void) {
	struct node *head = 0;
	struct node *fetched, *result;
	head = list_push(head, 1);
	head = list_push(head, 2);
	table_put("head", head);
	fetched = table_get("head");
	on_event(track);
	on_event(archive);
	result = fire(fetched);
	return list_sum(result);
}
`

const miniH = `
#ifndef MINI_H
#define MINI_H
struct node { int value; struct node *next; };
struct entry { char *key; struct node *val; struct entry *chain; };
typedef struct node *(*handler_fn)(struct node *);
char *arena_alloc(unsigned long n);
int str_eq(char *a, char *b);
struct node *node_new(void);
void node_free(struct node *n);
struct node *list_push(struct node *head, int v);
int list_sum(struct node *head);
void table_put(char *key, struct node *val);
struct node *table_get(char *key);
void on_event(handler_fn h);
struct node *fire(struct node *arg);
#endif
`

func buildMini(t *testing.T) (*Database, *Analysis) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"mini.h": miniH, "list.c": listC, "table.c": tableC,
		"arena.c": arenaC, "events.c": eventsC, "main.c": mainC,
	}
	var dbs []*Database
	for _, name := range []string{"list.c", "table.c", "arena.c", "events.c", "main.c"} {
		if err := writeTemp(dir, "mini.h", miniH); err != nil {
			t.Fatal(err)
		}
		if err := writeTemp(dir, name, files[name]); err != nil {
			t.Fatal(err)
		}
		db, err := CompileFile(dir+"/"+name, &Options{IncludeDirs: []string{dir}})
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		dbs = append(dbs, db)
	}
	db, err := Link(dbs...)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, an
}

func ptsSet(an *Analysis, name string) map[string]bool {
	out := map[string]bool{}
	for _, o := range an.PointsToName(name) {
		out[o.Name()] = true
	}
	return out
}

func TestMiniProgramPointsTo(t *testing.T) {
	db, an := buildMini(t)

	// The free list holds nodes; nodes come from the arena via
	// arena_alloc's pointer arithmetic over the static array.
	if got := ptsSet(an, "free_list"); !got["arena"] {
		t.Errorf("pts(free_list) = %v, want arena", got)
	}
	// head flows through list_push's return.
	if got := ptsSet(an, "head"); !got["arena"] {
		t.Errorf("pts(head) = %v", got)
	}
	// The table stores and retrieves the same nodes: fetched aliases head.
	if got := ptsSet(an, "fetched"); !got["arena"] {
		t.Errorf("pts(fetched) = %v", got)
	}
	// entry.val field carries node pointers (field-based naming).
	if got := ptsSet(an, "entry.val"); !got["arena"] {
		t.Errorf("pts(entry.val) = %v", got)
	}
	// Handler dispatch: the function-pointer array holds both handlers...
	if got := ptsSet(an, "handlers"); !got["track"] || !got["archive"] {
		t.Errorf("pts(handlers) = %v", got)
	}
	// ...so the callbacks' parameter receives the fired argument,
	if got := ptsSet(an, "n"); !got["arena"] {
		t.Errorf("pts(n) = %v", got)
	}
	// and the global side channel set by track sees the nodes.
	if got := ptsSet(an, "seen"); !got["arena"] {
		t.Errorf("pts(seen) = %v", got)
	}
	// result merges both handlers' returns: nodes and the audit log.
	if got := ptsSet(an, "result"); !got["arena"] {
		t.Errorf("pts(result) = %v", got)
	}

	// MayAlias sanity: head and fetched alias; key strings do not alias
	// node pointers.
	head := db.Lookup("head")[0]
	fetched := db.Lookup("fetched")[0]
	if !an.MayAlias(head, fetched) {
		t.Error("head and fetched must alias")
	}
}

func TestMiniProgramDependence(t *testing.T) {
	_, an := buildMini(t)
	// Widening node.value must flag everything that carries values out of
	// the list: list_sum's total and its return, main_'s result.
	deps, err := an.DependenceByName("node.value", nil)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range deps {
		names[d.Object.Name()] = true
	}
	for _, want := range []string{"total", "list_sum$ret"} {
		if !names[want] {
			t.Errorf("dependence missing %s (have %v)", want, names)
		}
	}
}

func TestMiniProgramAllSolversSound(t *testing.T) {
	db, _ := buildMini(t)
	base, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ptsSetOf(base, "fetched")
	for _, alg := range []Algorithm{WorklistAndersen, BitVectorAndersen, OneLevelFlow, SteensgaardUnify} {
		an, err := db.Analyze(&AnalyzeOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		got := ptsSetOf(an, "fetched")
		for z := range want {
			if !got[z] {
				t.Errorf("alg %d: pts(fetched) missing %s", alg, z)
			}
		}
	}
}

func ptsSetOf(an *Analysis, name string) map[string]bool {
	out := map[string]bool{}
	for _, o := range an.PointsToName(name) {
		out[o.Name()] = true
	}
	return out
}

func TestMiniProgramStats(t *testing.T) {
	db, an := buildMini(t)
	st := db.Stats()
	if st.Total() < 40 {
		t.Errorf("suspiciously few assignments: %+v", st)
	}
	m := an.Metrics()
	if m.Loaded >= m.InFile {
		t.Errorf("demand loading ineffective on mini program: %+v", m)
	}
	// Chain output format spot check.
	deps, err := an.DependenceByName("node.value", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) == 0 || !strings.Contains(deps[0].Chain, "where node.value/int") {
		t.Errorf("chain format: %+v", deps)
	}
}

func writeTemp(dir, name, content string) error {
	return osWriteFile(dir+"/"+name, content)
}

// TestMiniProgramParallelDeterminism runs the whole pipeline — compile,
// link, analyze — at -j 1 and -j 8 and demands identical output at every
// stage: the linked database must serialize to the same bytes, and every
// solver must report the same points-to set for every object.
func TestMiniProgramParallelDeterminism(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"mini.h": miniH, "list.c": listC, "table.c": tableC,
		"arena.c": arenaC, "events.c": eventsC, "main.c": mainC,
	}
	for name, content := range files {
		if err := writeTemp(dir, name, content); err != nil {
			t.Fatal(err)
		}
	}

	dumpDB := func(db *Database) []byte {
		var buf bytes.Buffer
		if err := objfile.Write(&buf, db.prog); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	db1, err := CompileDir(dir, &Options{IncludeDirs: []string{dir}, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	db8, err := CompileDir(dir, &Options{IncludeDirs: []string{dir}, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpDB(db1), dumpDB(db8)) {
		t.Fatal("linked database differs between -j 1 and -j 8")
	}

	algorithms := []Algorithm{
		PreTransitive, WorklistAndersen, SteensgaardUnify,
		BitVectorAndersen, OneLevelFlow,
	}
	for _, alg := range algorithms {
		a1, err := db1.Analyze(&AnalyzeOptions{Algorithm: alg, Jobs: 1})
		if err != nil {
			t.Fatalf("alg %d -j 1: %v", alg, err)
		}
		a8, err := db8.Analyze(&AnalyzeOptions{Algorithm: alg, Jobs: 8})
		if err != nil {
			t.Fatalf("alg %d -j 8: %v", alg, err)
		}
		for _, obj := range db1.Objects() {
			s1 := a1.PointsTo(obj)
			s8 := a8.PointsTo(Object{db: db8, id: obj.id})
			if len(s1) != len(s8) {
				t.Fatalf("alg %d: pts(%s) has %d objects at -j 1 but %d at -j 8",
					alg, obj.Name(), len(s1), len(s8))
			}
			for i := range s1 {
				if s1[i].id != s8[i].id {
					t.Fatalf("alg %d: pts(%s) differs between -j 1 and -j 8",
						alg, obj.Name())
				}
			}
		}
	}
}
