package cla

import (
	"cla/internal/claerr"
	"cla/internal/pts"
	"cla/internal/serve"
	"cla/internal/snapfile"
)

// String returns the solver's flag spelling, matching the -solver names
// the CLIs accept.
func (a Algorithm) String() string {
	switch a {
	case WorklistAndersen:
		return "worklist"
	case SteensgaardUnify:
		return "steensgaard"
	case BitVectorAndersen:
		return "bitvec"
	case OneLevelFlow:
		return "one-level"
	}
	return "pre-transitive"
}

// parseAlgorithm maps a recorded solver label back to an Algorithm;
// unknown labels fall back to the default.
func parseAlgorithm(name string) Algorithm {
	for _, a := range []Algorithm{PreTransitive, WorklistAndersen,
		SteensgaardUnify, BitVectorAndersen, OneLevelFlow} {
		if a.String() == name {
			return a
		}
	}
	return PreTransitive
}

// SnapshotOptions configures SaveSnapshot.
type SnapshotOptions struct {
	// Sources are the input files whose content hashes the snapshot
	// records; OpenSnapshot re-hashes them and refuses to serve (with an
	// error wrapping ErrStale semantics: exit code 3, HTTP 409) when any
	// changed. Empty means no staleness checking.
	Sources []string
}

// SaveSnapshot serializes the solved analysis — program, points-to
// relation, the cached checks report — to a .snap file OpenSnapshot and
// claserve can later page in without re-parsing or re-solving.
func (a *Analysis) SaveSnapshot(path string, opts *SnapshotOptions) error {
	ev, err := a.evaluator()
	if err != nil {
		return err
	}
	rep, err := ev.ChecksReport()
	if err != nil {
		return err
	}
	var srcs []snapfile.SourceFile
	if opts != nil && len(opts.Sources) > 0 {
		if srcs, err = snapfile.HashSources(opts.Sources); err != nil {
			return claerr.File(claerr.PhaseObject, path, err)
		}
	}
	snap := &snapfile.Snapshot{
		Prog:     ev.Prog,
		Res:      a.res,
		Solver:   a.alg.String(),
		ExtModel: a.ext.String(),
		Report:   rep,
		Sources:  srcs,
	}
	if err := snapfile.Save(path, snap); err != nil {
		return claerr.File(claerr.PhaseObject, path, err)
	}
	return nil
}

// OpenSnapshotOptions configures OpenSnapshot.
type OpenSnapshotOptions struct {
	// SkipVerify opens the snapshot without re-hashing its recorded
	// sources (trusted deploys, or sources not on disk).
	SkipVerify bool
}

// OpenSnapshot opens a solved .snap file as a ready Analysis: no parse,
// no solve — the points-to sets are served from the file's pages, and
// the cached checks report answers the first lint query. The Analysis
// answers every query identically to the live solve that produced the
// snapshot. Call Close when done (it releases the mapping).
func OpenSnapshot(path string, opts *OpenSnapshotOptions) (*Analysis, error) {
	r, err := snapfile.Open(path, snapfile.Options{})
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	if opts == nil || !opts.SkipVerify {
		if err := r.VerifySources(); err != nil {
			r.Close()
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
	}
	prog := r.Program()
	db := &Database{prog: prog}
	src := pts.NewMemSource(prog)
	ext, _ := ParseExtModel(r.Meta().ExtModel)
	a := &Analysis{db: db, src: src, res: r.Result(),
		alg: parseAlgorithm(r.Meta().Solver), ext: ext, snap: r}
	// Pre-seed the evaluator so the first query (and NewQueryServer) skip
	// construction and reuse the snapshot's cached checks report.
	ev := serve.NewEvaluator(prog, src, r.Result(), 0)
	ev.SeedChecks(r.Report())
	a.ev = ev
	return a, nil
}
