package cla

// Keeps the runnable examples honest: each must build, run, and print the
// facts its comments promise.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("example %s: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run")
	}
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"pts(q) = [x y]", // Figure 3's derived fact plus q = &y
		"mayAlias(p, q) = true",
		"pointer vars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart missing %q:\n%s", want, out)
		}
	}
}

func TestExampleTypemigration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run")
	}
	out := runExample(t, "typemigration")
	for _, want := range []string{
		"dependent objects:",
		"display_seq/short",
		"packet.seq/short",
		"where current_seq/short",
		"non-target",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("typemigration missing %q:\n%s", want, out)
		}
	}
	// The non-target run must drop the stats sink from the dependent
	// list (the header echoes the name; check listed entries only).
	pruned := out[strings.Index(out, "non-target"):]
	for _, line := range strings.Split(pruned, "\n") {
		if strings.HasPrefix(line, "  ") && strings.Contains(line, "stats.worst_seq") {
			t.Errorf("non-target not pruned: %q", line)
		}
	}
}

func TestExampleFuncpointers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run")
	}
	out := runExample(t, "funcpointers")
	for _, want := range []string{
		"[handle_read handle_write handle_close]",
		"pts(req      ) = [buf_c]",
		"pts(result   ) = [buf_a buf_b buf_c]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("funcpointers missing %q:\n%s", want, out)
		}
	}
}

func TestExampleFieldsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run")
	}
	out := runExample(t, "fieldsensitivity")
	// The Section 3 table: field-based gives p and r; field-independent
	// gives p and q.
	fb := out[:strings.Index(out, "field-independent")]
	fi := out[strings.Index(out, "field-independent"):]
	if !strings.Contains(fb, "pts(r) = [z]") || !strings.Contains(fb, "pts(q) = []") {
		t.Errorf("field-based wrong:\n%s", fb)
	}
	if !strings.Contains(fi, "pts(q) = [z]") || !strings.Contains(fi, "pts(r) = []") {
		t.Errorf("field-independent wrong:\n%s", fi)
	}
}

func TestExampleSeparateCompilation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go run")
	}
	out := runExample(t, "separatecompilation")
	for _, want := range []string{
		"compiled", "linked   3 units",
		"pts(name ) = [heap@alloc.c", "demand loading:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("separatecompilation missing %q:\n%s", want, out)
		}
	}
}
