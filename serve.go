package cla

import (
	"context"
	"net"
	"time"

	"cla/internal/pts"
	"cla/internal/serve"
)

// Query is one sub-query of a batched query-API call: set Kind to
// "pointsto", "alias", "callgraph", "modref", "dependence" or "lint" and
// fill the matching parameter fields. The same shape is the wire format
// of claserve's POST /v1/query, so in-process callers and HTTP clients
// speak one protocol.
type Query = serve.Query

// QueryResult is one Query's answer; its Err field carries a per-query
// typed-error body instead of failing the whole batch.
type QueryResult = serve.QueryResult

// QueryError is the wire form of a typed error inside a QueryResult:
// the failing phase, the HTTP status it maps to, and the message.
type QueryError = serve.ErrorBody

// evalState is the lazily built query evaluator shared by Analysis.Query
// and Serve.
type evalState = serve.Evaluator

// evaluator builds the evaluator on first use. File-backed analyses
// materialize the full program into memory so queries never touch the
// reader's mutable demand-load state and are safe to run concurrently.
func (a *Analysis) evaluator() (*evalState, error) {
	a.evOnce.Do(func() {
		if a.ev != nil {
			// OpenSnapshot pre-seeds the evaluator.
			return
		}
		prog, err := a.fullProgram()
		if err != nil {
			a.evErr = err
			return
		}
		src := a.src
		if a.r != nil {
			src = pts.NewMemSource(prog)
		}
		a.ev = serve.NewEvaluator(prog, src, a.res, 0)
	})
	return a.ev, a.evErr
}

// Query evaluates a batch of queries against the analysis, results in
// query order. Individual query failures are reported inline in the
// matching result's Err field; the returned error is non-nil only when
// the batch as a whole could not run (evaluator construction failed or
// ctx fired). Safe for concurrent use.
func (a *Analysis) Query(ctx context.Context, queries []Query) ([]QueryResult, error) {
	ev, err := a.evaluator()
	if err != nil {
		return nil, err
	}
	return ev.EvalBatch(ctx, queries)
}

// ServeOptions configures Serve.
type ServeOptions struct {
	// SessionName names the served snapshot in requests and responses
	// (default "default").
	SessionName string
	// Deadline caps each request's evaluation time (0 = none).
	Deadline time.Duration
	// Observer, when non-nil, backs the server's /statsz endpoint.
	Observer *Observer
}

// QueryServer is a running query server; see Serve.
type QueryServer = serve.Server

// NewQueryServer builds (without starting) a query server over the
// analysis, exposing the same HTTP API as the claserve command:
// /healthz, /statsz, POST /v1/query and the per-kind GET endpoints.
// Start it with Serve(ln) and stop it with Shutdown.
func NewQueryServer(a *Analysis, opts *ServeOptions) (*QueryServer, error) {
	ev, err := a.evaluator()
	if err != nil {
		return nil, err
	}
	name := "default"
	var cfg serve.ServerConfig
	if opts != nil {
		if opts.SessionName != "" {
			name = opts.SessionName
		}
		cfg.Deadline = opts.Deadline
		cfg.Obs = opts.Observer.internal()
	}
	reg := serve.NewRegistry()
	reg.Add(serve.NewSession(name, "", ev))
	return serve.NewServer(reg, cfg), nil
}

// Serve runs a query server over the analysis on ln until the listener
// closes or the server is shut down. It is the in-process mirror of the
// claserve command.
func Serve(ln net.Listener, a *Analysis, opts *ServeOptions) error {
	srv, err := NewQueryServer(a, opts)
	if err != nil {
		return err
	}
	return srv.Serve(ln)
}
