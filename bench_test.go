package cla

// Benchmarks regenerating the paper's tables, one per table. Run with:
//
//	go test -bench=. -benchmem
//
// Workloads are generated at benchScale of the published Table 2 sizes so
// the suite completes quickly; cmd/clabench reproduces the tables at full
// scale. The reported custom metrics (relations, loaded/in-file counts)
// are the table columns; ns/op is the analysis time.
import (
	"fmt"
	"testing"

	"cla/internal/bench"
	"cla/internal/core"
	"cla/internal/gen"
	"cla/internal/pts"
	"cla/internal/pts/bitvec"
	"cla/internal/pts/onelevel"
	"cla/internal/pts/steens"
	"cla/internal/pts/worklist"
)

const (
	benchScale = 0.25
	benchSeed  = 1
)

var workloadCache = map[string]*bench.Workload{}

func workload(b *testing.B, name string) *bench.Workload {
	b.Helper()
	if w, ok := workloadCache[name]; ok {
		return w
	}
	p, ok := gen.ProfileByName(name)
	if !ok {
		b.Fatalf("no profile %s", name)
	}
	w, err := bench.BuildWorkload(p, benchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	workloadCache[name] = w
	return w
}

// BenchmarkTable2Compile measures the compile+link phase that produces the
// Table 2 statistics (LOC → indexed database).
func BenchmarkTable2Compile(b *testing.B) {
	for _, name := range []string{"nethack", "vortex", "gcc"} {
		p, _ := gen.ProfileByName(name)
		sp := p.Scale(benchScale)
		code := gen.Generate(sp, benchSeed)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w, err := bench.BuildWorkload(p, benchScale, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				workloadCache[name] = w
			}
			b.ReportMetric(float64(code.TotalLines()), "source-lines")
		})
	}
}

// BenchmarkTable3Analyze measures the analyze phase per benchmark: the
// field-based pre-transitive analysis with demand loading (Table 3).
func BenchmarkTable3Analyze(b *testing.B) {
	for _, p := range gen.Table2 {
		name := p.Name
		b.Run(name, func(b *testing.B) {
			w := workload(b, name)
			var m pts.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				m = res.Metrics()
			}
			b.ReportMetric(float64(m.Relations), "relations")
			b.ReportMetric(float64(m.Loaded), "loaded")
			b.ReportMetric(float64(m.InFile), "in-file")
		})
	}
}

// BenchmarkTable4FieldMode compares field-based and field-independent
// struct treatments (Table 4).
func BenchmarkTable4FieldMode(b *testing.B) {
	for _, name := range []string{"vortex", "povray", "gimp"} {
		b.Run(name+"/field-based", func(b *testing.B) {
			w := workload(b, name)
			b.ResetTimer()
			var rel int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				rel = res.Metrics().Relations
			}
			b.ReportMetric(float64(rel), "relations")
		})
		b.Run(name+"/field-independent", func(b *testing.B) {
			w := workload(b, name)
			b.ResetTimer()
			var rel int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(pts.NewMemSource(w.FieldIndependent), core.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				rel = res.Metrics().Relations
			}
			b.ReportMetric(float64(rel), "relations")
		})
	}
}

// BenchmarkAblation measures the Section 5 claim: the solver with caching
// and cycle elimination against the three degraded configurations.
func BenchmarkAblation(b *testing.B) {
	w := workload(b, "gimp")
	for _, c := range bench.AblationConfigs() {
		cfg := c.Cfg
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(pts.NewMemSource(w.FieldBased), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolvers compares the pre-transitive algorithm against the
// transitively-closed worklist baseline and Steensgaard's unification
// (the Section 6 related-work comparison).
func BenchmarkSolvers(b *testing.B) {
	for _, name := range []string{"emacs", "gimp", "lucent"} {
		w := workload(b, name)
		b.Run(name+"/pre-transitive", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/worklist", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := worklist.Solve(pts.NewMemSource(w.FieldBased)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/bitvec", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bitvec.Solve(pts.NewMemSource(w.FieldBased)); err != nil {
					b.Fatal(err)
				}
			}
		})
		if name != "lucent" {
			// One-level flow's unification cascades are pathological on
			// the lucent graph (see EXPERIMENTS.md); skip it there.
			b.Run(name+"/one-level", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := onelevel.Solve(pts.NewMemSource(w.FieldBased)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(name+"/steensgaard", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := steens.Solve(pts.NewMemSource(w.FieldBased)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDemandLoading isolates the CLA load-on-demand benefit: demand
// loading against whole-database loading on the same workload.
func BenchmarkDemandLoading(b *testing.B) {
	w := workload(b, "lucent")
	for _, mode := range []struct {
		name   string
		demand bool
	}{{"demand", true}, {"load-all", false}} {
		cfg := core.DefaultConfig()
		cfg.DemandLoad = mode.demand
		b.Run(mode.name, func(b *testing.B) {
			var loaded, inFile int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(pts.NewMemSource(w.FieldBased), cfg)
				if err != nil {
					b.Fatal(err)
				}
				m := res.Metrics()
				loaded, inFile = m.Loaded, m.InFile
			}
			b.ReportMetric(float64(loaded), "loaded")
			b.ReportMetric(float64(inFile), "in-file")
		})
	}
}

// BenchmarkEndToEnd runs the full pipeline — preprocess, parse, check,
// lower, link, solve — the way the deployed tool experiences it.
func BenchmarkEndToEnd(b *testing.B) {
	p, _ := gen.ProfileByName("nethack")
	sp := p.Scale(benchScale)
	code := gen.Generate(sp, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := bench.BuildWorkload(p, benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(code.TotalLines()), "source-lines")
}

// Ensure profile names used above exist (compile-time use of fmt).
var _ = fmt.Sprintf
