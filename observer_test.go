package cla

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

const obsSrc = `
int g;
int *p;
int **q;
int *r;
void f(void) {
	p = &g;
	q = &p;
	r = *q;
	*q = r;
	p = r;
}
`

// TestObserverStats attaches one observer across compile and analyze and
// checks that Stats surfaces phases, counters and (for file-backed runs)
// demand-load accounting.
func TestObserverStats(t *testing.T) {
	ob := NewObserver()
	db, err := CompileSource("obs.c", obsSrc, &Options{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "obs.cla")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeFile(path, &AnalyzeOptions{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if got := an.PointsToName("p"); len(got) != 1 || got[0].Name() != "g" {
		t.Fatalf("PointsToName(p) = %v, want [g]", got)
	}

	st := an.Stats()
	names := map[string]bool{}
	for _, ph := range st.Phases {
		names[ph.Name] = true
		if ph.Duration < 0 {
			t.Errorf("phase %s has negative duration", ph.Name)
		}
	}
	if !names["compile obs.c"] || !names["analyze"] {
		t.Fatalf("missing expected phases, got %v", st.Phases)
	}
	if st.Counters["solver.pointer_vars"] == 0 {
		t.Errorf("solver.pointer_vars counter missing: %v", st.Counters)
	}
	if !st.DemandLoaded {
		t.Fatal("DemandLoaded = false for AnalyzeFile run")
	}
	if st.Load.EntriesLoaded == 0 || st.Load.BytesLoaded == 0 {
		t.Errorf("load accounting empty: %+v", st.Load)
	}
	if st.Load.EntriesLoaded > st.Load.TotalEntries {
		t.Errorf("loaded %d entries of %d total", st.Load.EntriesLoaded, st.Load.TotalEntries)
	}
	if st.Counters["load.entries.loaded"] != st.Load.EntriesLoaded {
		t.Errorf("counter/load mismatch: %d vs %d",
			st.Counters["load.entries.loaded"], st.Load.EntriesLoaded)
	}

	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON: %s", buf.Bytes())
	}
}

// TestNilObserverIsNoOp runs the same pipeline with no observer and with
// a nil *Observer value; both must work and report empty run stats.
func TestNilObserverIsNoOp(t *testing.T) {
	var ob *Observer
	db, err := CompileSource("obs.c", obsSrc, &Options{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(&AnalyzeOptions{Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	st := an.Stats()
	if len(st.Phases) != 0 || st.Counters != nil {
		t.Fatalf("nil observer recorded data: %+v", st)
	}
	if st.Metrics.PointerVars == 0 {
		t.Error("metrics should still be populated without an observer")
	}
	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteTrace wrote %d bytes, err %v", buf.Len(), err)
	}
}
