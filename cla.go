// Package cla is a fast aliasing-analysis toolkit for C code bases,
// reproducing Heintze & Tardieu's compile-link-analyze (CLA) architecture
// and pre-transitive points-to algorithm (PLDI 2001).
//
// The workflow mirrors a compiler toolchain:
//
//	db1, _ := cla.CompileFile("a.c", nil)     // compile: C → assignment database
//	db2, _ := cla.CompileFile("b.c", nil)
//	db, _ := cla.Link(db1, db2)               // link: merge databases
//	an, _ := db.Analyze(nil)                  // analyze: points-to solving
//	for _, obj := range an.PointsToName("p") { ... }
//
// Databases serialize to an indexed binary format supporting demand
// loading (WriteFile / OpenFile / AnalyzeFile), and analyses feed the
// forward data-dependence tool of the paper's Section 2 (Analysis.
// Dependence), which finds every object whose type must change together
// with a target object and ranks the dependence chains.
package cla

import (
	"context"

	"cla/internal/claerr"
	"cla/internal/cpp"
	"cla/internal/frontend"
	"cla/internal/incr"
	"cla/internal/linker"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/prim"
)

// StructMode selects how struct/union fields are modeled.
type StructMode int

// Struct modes (see the paper's Section 3).
const (
	// FieldBased maps x.f to the per-struct-type field variable S.f.
	FieldBased StructMode = iota
	// FieldIndependent maps x.f to the base object x.
	FieldIndependent
)

// Options configures the compile phase.
//
// Options is the compile half of the older split option surface; new
// code should prefer the session-oriented API, whose single
// WorkspaceOptions struct carries these fields alongside the analyze
// ones (see OpenWorkspace). The one-shot entry points below remain
// supported as thin equivalents of a single-generation workspace.
type Options struct {
	// Mode is the struct treatment (default FieldBased, as in the paper).
	Mode StructMode
	// IncludeDirs is the #include search path for file compilation.
	IncludeDirs []string
	// Defines are predefined object-like macros (NAME or NAME=VALUE).
	Defines map[string]string
	// ModelStrings models string literals as objects instead of ignoring
	// them.
	ModelStrings bool
	// Jobs bounds the workers used to compile translation units and link
	// their databases (0 = all available cores, 1 = sequential). When an
	// analysis runs on the result, the same setting selects the solve
	// phase's phase-parallel wave fixpoint (Jobs >= 2). The output is
	// identical at every setting.
	Jobs int
	// Observer, when non-nil, records per-phase timings and counters for
	// the compile and link work (see NewObserver).
	Observer *Observer
}

func (o *Options) frontend() frontend.Options {
	fo := frontend.Options{}
	if o != nil {
		if o.Mode == FieldIndependent {
			fo.Mode = frontend.FieldIndependent
		}
		fo.ModelStrings = o.ModelStrings
		fo.Defines = o.Defines
	}
	return fo
}

func (o *Options) observer() *obs.Observer {
	if o == nil {
		return nil
	}
	return o.Observer.internal()
}

func (o *Options) loader() cpp.Loader {
	var dirs []string
	if o != nil {
		dirs = o.IncludeDirs
	}
	return cpp.OSLoader{Dirs: dirs}
}

// Database is a linked (or single-unit) primitive-assignment database: the
// object-file contents of the CLA architecture, held in memory.
type Database struct {
	prog *prim.Program
}

// CompileFile compiles one C source file into a database.
func CompileFile(path string, opts *Options) (*Database, error) {
	loader := opts.loader()
	content, name, err := loader.Load(path)
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, path, err)
	}
	return compileText(name, content, loader, opts)
}

// CompileSource compiles C source text (name is used in locations).
func CompileSource(name, src string, opts *Options) (*Database, error) {
	return compileText(name, src, opts.loader(), opts)
}

func compileText(name, src string, loader cpp.Loader, opts *Options) (*Database, error) {
	sp := opts.observer().Start("compile " + name)
	defer sp.End()
	prog, err := frontend.CompileSource(name, src, loader, opts.frontend())
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, name, err)
	}
	return &Database{prog: prog}, nil
}

// CompileDir compiles and links every .c file in dir, fanning the unit
// compiles out across Options.Jobs workers.
func CompileDir(dir string, opts *Options) (*Database, error) {
	return CompileDirCtx(context.Background(), dir, opts)
}

// CompileDirCtx is CompileDir under a context: a cancellation stops
// undispatched unit compiles and returns ctx's error. Options.IncludeDirs
// joins dir on the #include search path of every unit.
//
// This is the compile half of a single-generation Workspace: it runs
// the incremental pipeline's compile+link front end once (so the output
// is exactly what OpenWorkspace would analyze). For a session that
// stays open and recompiles only what changes, use OpenWorkspace.
func CompileDirCtx(ctx context.Context, dir string, opts *Options) (*Database, error) {
	cfg := incr.Config{Dir: dir, Frontend: opts.frontend(), Obs: opts.observer()}
	if opts != nil {
		cfg.Includes = opts.IncludeDirs
		cfg.Jobs = opts.Jobs
	}
	prog, err := incr.CompileDir(ctx, cfg)
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, dir, err)
	}
	return &Database{prog: prog}, nil
}

// Link merges databases, unifying global symbols by name.
func Link(dbs ...*Database) (*Database, error) {
	progs := make([]*prim.Program, len(dbs))
	for i, db := range dbs {
		if db == nil {
			return nil, claerr.Newf(claerr.PhaseLink, "nil database at index %d", i)
		}
		progs[i] = db.prog
	}
	merged, err := linker.Link(progs)
	if err != nil {
		return nil, claerr.New(claerr.PhaseLink, err)
	}
	return &Database{prog: merged}, nil
}

// WriteFile serializes the database to the indexed object-file format.
func (db *Database) WriteFile(path string) error {
	return claerr.File(claerr.PhaseObject, path, objfile.WriteFile(path, db.prog))
}

// OpenFile loads a serialized database fully into memory. For the
// demand-loaded analysis path use AnalyzeFile instead.
func OpenFile(path string) (*Database, error) {
	r, err := objfile.Open(path)
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	defer r.Close()
	prog, err := r.Program()
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	return &Database{prog: prog}, nil
}

// Object identifies a program object (variable, field, function, heap
// site...) in a database.
type Object struct {
	db *Database
	id prim.SymID
}

// Name returns the object's (possibly synthesized) name, e.g. "x", "S.f",
// "f$ret" or "heap@a.c:10#1".
func (o Object) Name() string { return o.sym().Name }

// Type returns the printable C type.
func (o Object) Type() string { return o.sym().Type }

// Kind describes the object class: "global", "static", "local", "field",
// "temp", "heap", "func", "param", "ret" or "string".
func (o Object) Kind() string { return o.sym().Kind.String() }

// Pos returns the declaration position "file:line".
func (o Object) Pos() string { return o.sym().Loc.String() }

// FuncName returns the enclosing function for locals and parameters.
func (o Object) FuncName() string { return o.sym().FuncName }

// String renders the object like the paper's chains: name/type <file:line>.
func (o Object) String() string { return o.sym().String() }

// Valid reports whether the object exists.
func (o Object) Valid() bool {
	return o.db != nil && int(o.id) >= 0 && int(o.id) < len(o.db.prog.Syms)
}

func (o Object) sym() *prim.Symbol { return o.db.prog.Sym(o.id) }

// Lookup returns all objects with the given source name.
func (db *Database) Lookup(name string) []Object {
	var out []Object
	for i := range db.prog.Syms {
		if db.prog.Syms[i].Name == name {
			out = append(out, Object{db: db, id: prim.SymID(i)})
		}
	}
	return out
}

// Objects returns every program object in the database (excluding
// compiler temporaries).
func (db *Database) Objects() []Object {
	var out []Object
	for i := range db.prog.Syms {
		if db.prog.Syms[i].Kind == prim.SymTemp {
			continue
		}
		out = append(out, Object{db: db, id: prim.SymID(i)})
	}
	return out
}

// Stats summarizes the database (Table 2 columns).
type Stats struct {
	Symbols     int
	ProgramVars int
	// Assignments by kind: x=y, x=&y, *x=y, *x=*y, x=*y.
	Simple, Base, Store, Copy, Load int
}

// Total returns the total assignment count.
func (s Stats) Total() int { return s.Simple + s.Base + s.Store + s.Copy + s.Load }

// Stats summarizes the database.
func (db *Database) Stats() Stats {
	counts := db.prog.CountByKind()
	st := Stats{
		Symbols: len(db.prog.Syms),
		Simple:  counts[prim.Simple],
		Base:    counts[prim.Base],
		Store:   counts[prim.StoreInd],
		Copy:    counts[prim.CopyInd],
		Load:    counts[prim.LoadInd],
	}
	for i := range db.prog.Syms {
		switch db.prog.Syms[i].Kind {
		case prim.SymGlobal, prim.SymStatic, prim.SymLocal, prim.SymField:
			st.ProgramVars++
		}
	}
	return st
}
