package cla

// End-to-end tests of the clasnap binary and claserve's snapshot paths:
// build a snapshot from a source directory, inspect and verify it, serve
// it with -preload, and confirm staleness is a distinct exit code.

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestClasnapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clasnap", "claserve")
	work := t.TempDir()
	src := filepath.Join(work, "a.c")
	os.WriteFile(src,
		[]byte("int shared;\nint *sp, *tp;\nvoid init(void) { sp = &shared; tp = sp; }\n"), 0o644)
	snap := filepath.Join(work, "a.snap")

	out := run(t, tools["clasnap"], "-o", snap, work)
	if !strings.Contains(out, "symbols") {
		t.Fatalf("clasnap build output: %q", out)
	}
	info := run(t, tools["clasnap"], "-info", snap)
	for _, want := range []string{"solver      pre-transitive", "extmodel    unsound", "source      " + src} {
		if !strings.Contains(info, want) {
			t.Errorf("-info output missing %q:\n%s", want, info)
		}
	}
	if out := run(t, tools["clasnap"], "-verify", snap); !strings.Contains(out, "sources verified") {
		t.Fatalf("-verify output: %q", out)
	}

	// Serve it via -preload and query through the socket.
	sock := filepath.Join(t.TempDir(), "cla.sock")
	cmd := exec.Command(tools["claserve"], "-unix", sock, "-ready", "-preload", snap)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	lines := bufio.NewScanner(stdout)
	ready := make(chan bool, 1)
	go func() {
		for lines.Scan() {
			if strings.HasPrefix(lines.Text(), "READY") {
				ready <- true
				return
			}
		}
		ready <- false
	}()
	select {
	case ok := <-ready:
		if !ok {
			t.Fatal("claserve exited before READY")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for READY")
	}
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return net.Dial("unix", sock)
		},
	}}
	get := func(path string) string {
		t.Helper()
		resp, err := client.Get("http://claserve" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, sb.String())
		}
		return sb.String()
	}
	if body := get("/v1/pointsto?name=sp"); !strings.Contains(body, "shared") {
		t.Errorf("pointsto(sp) over snapshot: %s", body)
	}
	if body := get("/metricsz"); !strings.Contains(body, "serve_snapshot_load_count") {
		t.Errorf("/metricsz missing serve_snapshot_load histogram:\n%s", body)
	}
	cmd.Process.Kill()

	// Staleness: edit the source, expect exit code 3 from -verify and a
	// refused serve without -no-verify.
	os.WriteFile(src, []byte("int shared; int other;\nint *sp;\nvoid init(void) { sp = &shared; }\n"), 0o644)
	vc := exec.Command(tools["clasnap"], "-verify", snap)
	vout, verr := vc.CombinedOutput()
	if verr == nil {
		t.Fatalf("stale -verify succeeded: %s", vout)
	}
	if code := vc.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("stale -verify exit code = %d, want 3\n%s", code, vout)
	}
	sc := exec.Command(tools["claserve"], "-preload", snap)
	sout, serr := sc.CombinedOutput()
	if serr == nil {
		t.Fatalf("stale serve succeeded: %s", sout)
	}
	if code := sc.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("stale serve exit code = %d, want 3\n%s", code, sout)
	}
	if out := run(t, tools["clasnap"], "-o", snap+"2", "-solver", "bitvec", work); !strings.Contains(out, "symbols") {
		t.Fatalf("rebuild output: %q", out)
	}
}
