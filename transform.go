package cla

import (
	"cla/internal/prim"
	"cla/internal/xform"
)

// This file exposes the pre-analysis database transformers of Section 4 —
// "we can write pre-analysis optimizers as database to database
// transformers" — on the public Database type.

// ContextOptions bounds the context-sensitivity transformation.
type ContextOptions struct {
	// Functions restricts cloning to the named functions (nil = all
	// eligible).
	Functions []string
	// MaxBodyAssigns skips functions with larger bodies (0 = 256).
	MaxBodyAssigns int
	// MaxCallSites skips functions called from more sites (0 = 16).
	MaxCallSites int
}

// ContextSensitive returns a new database in which eligible functions'
// parameter/return variables and bodies are duplicated per call site, so
// the (context-insensitive) solvers produce call-site-sensitive results
// for them. Indirect calls keep the original shared context.
func (db *Database) ContextSensitive(opts *ContextOptions) *Database {
	xo := xform.Options{}
	if opts != nil {
		xo.MaxBodyAssigns = opts.MaxBodyAssigns
		xo.MaxCallSites = opts.MaxCallSites
		if opts.Functions != nil {
			xo.Functions = map[string]bool{}
			for _, f := range opts.Functions {
				xo.Functions[f] = true
			}
		}
	}
	return &Database{prog: xform.ContextSensitive(db.prog, xo)}
}

// Substitution maps objects of an original database to their
// representatives in a substituted database.
type Substitution struct {
	from *Database
	to   *Database
	m    []prim.SymID
}

// Map returns the representative of obj in the substituted database.
func (s *Substitution) Map(obj Object) Object {
	if !obj.Valid() || int(obj.id) >= len(s.m) {
		return Object{}
	}
	return Object{db: s.to, id: s.m[obj.id]}
}

// OfflineVarSub returns a new database with offline variable substitution
// applied (copy cycles collapsed, single-copy chains forwarded — the
// pre-analysis optimization of Rountev & Chandra, the paper's reference
// [21]) together with the object mapping. Query the analysis of the new
// database through Substitution.Map; results for representatives equal
// the unsubstituted analysis exactly.
func (db *Database) OfflineVarSub() (*Database, *Substitution) {
	prog, mapping := xform.OfflineVarSub(db.prog)
	out := &Database{prog: prog}
	return out, &Substitution{from: db, to: out, m: mapping}
}
