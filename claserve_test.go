package cla

// End-to-end test of the claserve binary: start it on a unix socket over
// a source directory, query every endpoint through a real HTTP client,
// then drain it with SIGTERM and expect a clean exit.

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestClaserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claserve")
	work := t.TempDir()
	os.WriteFile(filepath.Join(work, "a.c"),
		[]byte("int shared;\nint *sp, *tp;\nvoid init(void) { sp = &shared; tp = sp; }\n"), 0o644)

	sock := filepath.Join(t.TempDir(), "cla.sock")
	cmd := exec.Command(tools["claserve"], "-unix", sock, "-ready", "-j", "2", work)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the READY line before connecting.
	lines := bufio.NewScanner(stdout)
	ready := make(chan bool, 1)
	go func() {
		for lines.Scan() {
			if strings.HasPrefix(lines.Text(), "READY") {
				ready <- true
				return
			}
		}
		ready <- false
	}()
	select {
	case ok := <-ready:
		if !ok {
			t.Fatal("claserve exited before READY")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for READY")
	}

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return net.Dial("unix", sock)
		},
	}}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get("http://claserve" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body := get("/v1/pointsto?name=sp"); code != 200 || !strings.Contains(body, `"name": "shared"`) {
		t.Errorf("pointsto = %d %q", code, body)
	}
	if code, body := get("/v1/alias?x=sp&y=tp"); code != 200 || !strings.Contains(body, `"alias": true`) {
		t.Errorf("alias = %d %q", code, body)
	}
	if code, _ := get("/v1/pointsto?name=nosuch"); code != 404 {
		t.Errorf("pointsto(nosuch) = %d, want 404", code)
	}
	resp, err := client.Post("http://claserve/v1/query", "application/json",
		strings.NewReader(`{"queries":[{"kind":"callgraph"},{"kind":"lint"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("batch = %d", resp.StatusCode)
	}
	if code, body := get("/statsz"); code != 200 || !strings.Contains(body, "serve.requests") {
		t.Errorf("statsz = %d %q", code, body)
	}

	// Graceful drain: SIGTERM must produce a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("claserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("claserve did not exit after SIGTERM")
	}
}
