package cla

// End-to-end test of the claserve binary: start it on a unix socket over
// a source directory, query every endpoint through a real HTTP client,
// then drain it with SIGTERM and expect a clean exit.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestClaserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claserve")
	work := t.TempDir()
	os.WriteFile(filepath.Join(work, "a.c"),
		[]byte("int shared;\nint *sp, *tp;\nvoid init(void) { sp = &shared; tp = sp; }\n"), 0o644)

	sock := filepath.Join(t.TempDir(), "cla.sock")
	cmd := exec.Command(tools["claserve"], "-unix", sock, "-ready", "-j", "2", work)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the READY line before connecting.
	lines := bufio.NewScanner(stdout)
	ready := make(chan bool, 1)
	go func() {
		for lines.Scan() {
			if strings.HasPrefix(lines.Text(), "READY") {
				ready <- true
				return
			}
		}
		ready <- false
	}()
	select {
	case ok := <-ready:
		if !ok {
			t.Fatal("claserve exited before READY")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for READY")
	}

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return net.Dial("unix", sock)
		},
	}}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := client.Get("http://claserve" + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.HasPrefix(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body := get("/v1/pointsto?name=sp"); code != 200 || !strings.Contains(body, `"name": "shared"`) {
		t.Errorf("pointsto = %d %q", code, body)
	}
	if code, body := get("/v1/alias?x=sp&y=tp"); code != 200 || !strings.Contains(body, `"alias": true`) {
		t.Errorf("alias = %d %q", code, body)
	}
	if code, _ := get("/v1/pointsto?name=nosuch"); code != 404 {
		t.Errorf("pointsto(nosuch) = %d, want 404", code)
	}
	resp, err := client.Post("http://claserve/v1/query", "application/json",
		strings.NewReader(`{"queries":[{"kind":"callgraph"},{"kind":"lint"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("batch = %d", resp.StatusCode)
	}
	if code, body := get("/statsz"); code != 200 || !strings.Contains(body, "serve.requests") {
		t.Errorf("statsz = %d %q", code, body)
	}

	// Graceful drain: SIGTERM must produce a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("claserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("claserve did not exit after SIGTERM")
	}
}

// TestClaserveTelemetryEndToEnd drives the serving-telemetry surface of
// the real binary: request-ID echo, /metricsz exposition, the pprof
// debug listener, and the JSONL access log.
func TestClaserveTelemetryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claserve")
	work := t.TempDir()
	os.WriteFile(filepath.Join(work, "a.c"),
		[]byte("int shared;\nint *sp, *tp;\nvoid init(void) { sp = &shared; tp = sp; }\n"), 0o644)

	sock := filepath.Join(t.TempDir(), "cla.sock")
	accessLog := filepath.Join(t.TempDir(), "access.jsonl")
	cmd := exec.Command(tools["claserve"], "-unix", sock, "-ready", "-j", "2",
		"-access-log", accessLog, "-debug-addr", "127.0.0.1:0", work)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The binary prints "DEBUG <addr>" (pprof listener) and then
	// "READY <addr>" once serving.
	lines := bufio.NewScanner(stdout)
	type startup struct {
		debugAddr string
		ok        bool
	}
	started := make(chan startup, 1)
	go func() {
		var s startup
		for lines.Scan() {
			text := lines.Text()
			if strings.HasPrefix(text, "DEBUG ") {
				s.debugAddr = strings.TrimPrefix(text, "DEBUG ")
			}
			if strings.HasPrefix(text, "READY") {
				s.ok = true
				started <- s
				return
			}
		}
		started <- s
	}()
	var up startup
	select {
	case up = <-started:
		if !up.ok {
			t.Fatal("claserve exited before READY")
		}
		if up.debugAddr == "" {
			t.Fatal("no DEBUG line before READY")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for READY")
	}

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return net.Dial("unix", sock)
		},
	}}
	get := func(path string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", "http://claserve"+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}
	readBody := func(resp *http.Response) string {
		t.Helper()
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Request-ID: a client-supplied ID is echoed verbatim; absent one, the
	// server generates a unique ID.
	resp := get("/healthz", map[string]string{"X-Request-Id": "e2e-test-42"})
	readBody(resp)
	if id := resp.Header.Get("X-Request-Id"); id != "e2e-test-42" {
		t.Errorf("request-ID echo = %q, want e2e-test-42", id)
	}
	resp = get("/healthz", nil)
	readBody(resp)
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("no generated X-Request-Id")
	}

	// Traffic to meter, then scrape /metricsz.
	readBody(get("/v1/pointsto?name=sp", nil))
	readBody(get("/v1/alias?x=sp&y=tp", nil))
	readBody(get("/v1/pointsto?name=nosuch", nil)) // 404 -> serve_errors_4xx
	resp = get("/metricsz", nil)
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("metricsz content-type = %q", resp.Header.Get("Content-Type"))
	}
	prom := readBody(resp)
	for _, want := range []string{
		"# TYPE serve_query_pointsto histogram",
		"serve_query_pointsto_count 2",
		"serve_query_alias_count 1",
		"# TYPE serve_http histogram",
		"serve_errors_4xx 1",
		"runtime_goroutines",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metricsz missing %q:\n%s", want, prom)
		}
	}

	// The pprof listener answers on its own port, off the serving socket.
	presp, err := http.Get("http://" + up.debugAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != 200 || !strings.Contains(string(pbody), "claserve") {
		t.Errorf("pprof cmdline = %d %q", presp.StatusCode, pbody)
	}

	// Drain, then audit the access log: every line is valid JSON with the
	// request fields, and the 404 we sent is recorded.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("claserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("claserve did not exit after SIGTERM")
	}
	raw, err := os.ReadFile(accessLog)
	if err != nil {
		t.Fatal(err)
	}
	var saw404 bool
	var n int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		n++
		var rec struct {
			ID     string `json:"id"`
			Path   string `json:"path"`
			Status int    `json:"status"`
			DurNS  int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		if rec.ID == "" || rec.Path == "" || rec.Status == 0 {
			t.Errorf("incomplete access record: %s", line)
		}
		if rec.Status == 404 {
			saw404 = true
		}
	}
	if n < 6 {
		t.Errorf("access log has %d lines, want >= 6", n)
	}
	if !saw404 {
		t.Error("404 request missing from access log")
	}
}
