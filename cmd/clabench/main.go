// Clabench regenerates the paper's evaluation tables end to end on the
// synthetic Table 2 workloads.
//
// Usage:
//
//	clabench -table 2 -scale 1.0         # benchmark characteristics
//	clabench -table 3                    # points-to results (Table 3)
//	clabench -table 4                    # field-based vs field-independent
//	clabench -table 5 -profile gimp      # cache/cycle-elim ablation (§5)
//	clabench -table 6                    # five-solver comparison (§6)
//	clabench -table 7                    # §4 database transformations
//	clabench -table 8 -j 8               # sequential vs parallel pipeline
//	clabench -table 9                    # analysis clients (clalint checks)
//	clabench -table 10                   # set machinery: time/alloc/live per solver
//	clabench -table 11 -j 8              # query serving: qps + latency percentiles
//	clabench -table 12                   # phase-parallel wave fixpoint: seq vs wave solve
//	clabench -table 13                   # real-C corpus conformance per extern model
//	clabench -table 14                   # cold start: live solve vs solved snapshot
//	clabench -table 15                   # incremental refresh: cold open vs warm edit
//	clabench -all                        # everything
//
// Absolute times depend on the host; the shapes (who wins, by what
// factor) are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"cla/internal/bench"
	"cla/internal/gen"
	"cla/internal/obs"
	"cla/internal/parallel"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (2-15)")
		all       = flag.Bool("all", false, "regenerate every table")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Int64("seed", 1, "generation seed")
		profile   = flag.String("profile", "gimp", "profile for the ablation table")
		ablScale  = flag.Float64("ablation-scale", 0.1, "scale for the ablation (the naive configuration is very slow at full scale, as the paper reports)")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "worker count for the parallel-pipeline table")
		jsonOut   = flag.String("json", "BENCH_parallel.json", "file recording the parallel-pipeline rows (empty to skip)")
		checksOut = flag.String("checks-json", "BENCH_checks.json", "file recording the analysis-client rows (empty to skip)")
		setsOut   = flag.String("sets-json", "BENCH_sets.json", "file recording the set-machinery rows (empty to skip)")
		serveOut  = flag.String("serve-json", "BENCH_serve.json", "file recording the query-serving rows (empty to skip)")
		solveOut  = flag.String("solve-json", "BENCH_solve.json", "file recording the wave-fixpoint rows (empty to skip)")
		corpus    = flag.String("corpus", "examples/corpus", "C source directory for the conformance table")
		corpusOut = flag.String("corpus-json", "BENCH_corpus.json", "file recording the corpus-conformance rows (empty to skip)")
		snapOut   = flag.String("snapshot-json", "BENCH_snapshot.json", "file recording the cold-start rows (empty to skip)")
		incrOut   = flag.String("incr-json", "BENCH_incr.json", "file recording the incremental-refresh rows (empty to skip)")
		queries   = flag.Int("queries", 2000, "queries per workload for the query-serving table")
		check     = flag.Bool("check", false, "regression gate: compare fresh rows against the committed BENCH_*.json baselines instead of rewriting them; exit 1 on regression")
		tolerance = flag.Float64("tolerance", 0.5, "-check slack as a fraction: 0.5 lets durations grow to 1.5x (and qps drop to 1/1.5x) before failing")
		freshDir  = flag.String("fresh-dir", "", "in -check mode, also write the fresh rows as artifacts into this directory (for CI upload)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if !*all && (*table < 2 || *table > 15) {
		fmt.Fprintln(os.Stderr, "clabench: pass -all or -table 2..15")
		os.Exit(2)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
		os.Exit(1)
	}
	span := func(name string) *obs.Span { return o.Start(name) }

	need := func(t int) bool { return *all || *table == t }

	// emit either writes a table's JSON artifact (the default) or, under
	// -check, compares the fresh rows against the committed artifact at
	// path and records the verdict. write must render rows to a given
	// path with a given meta so -fresh-dir can redirect the artifact.
	var checked, checkFailures int
	emit := func(path, table string, rows any, write func(path string, meta bench.Meta) error) {
		if path == "" {
			return
		}
		meta := bench.NewMeta(table, *jobs, *scale, *seed)
		if !*check {
			if err := write(path, meta); err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "clabench: wrote %s\n", path)
			return
		}
		rep, err := bench.CheckBaseline(path, meta, rows, *tolerance)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		rep.Format(os.Stdout)
		checked++
		if !rep.OK() {
			checkFailures++
		}
		if *freshDir != "" {
			if err := os.MkdirAll(*freshDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			out := filepath.Join(*freshDir, filepath.Base(path))
			if err := write(out, meta); err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "clabench: wrote %s\n", out)
		}
	}

	var workloads []*bench.Workload
	if need(2) || need(3) || need(4) || need(6) || need(7) || need(9) || need(10) || need(11) || need(12) {
		fmt.Fprintf(os.Stderr, "clabench: building %d workloads at scale %g...\n",
			len(gen.Table2), *scale)
		bsp := span("build workloads")
		var err error
		workloads, err = bench.BuildAll(*scale, *seed)
		bsp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
	}

	if need(2) {
		tsp := span("table 2")
		fmt.Println("== Table 2: benchmark characteristics ==")
		var rows []bench.Row2
		for _, w := range workloads {
			rows = append(rows, bench.Table2Row(w))
		}
		bench.FormatTable2(os.Stdout, rows)
		fmt.Println()
		tsp.End()
	}
	if need(3) {
		tsp := span("table 3")
		fmt.Println("== Table 3: points-to analysis results (field-based, pre-transitive) ==")
		var rows []bench.Row3
		for _, w := range workloads {
			r, err := bench.Table3Row(w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, r)
		}
		bench.FormatTable3(os.Stdout, rows)
		fmt.Println()
		tsp.End()
	}
	if need(4) {
		tsp := span("table 4")
		fmt.Println("== Table 4: field-based vs field-independent ==")
		var rows []bench.Row4
		for _, w := range workloads {
			r, err := bench.Table4Row(w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, r)
		}
		bench.FormatTable4(os.Stdout, rows)
		fmt.Println()
		tsp.End()
	}
	if need(5) {
		tsp := span("table 5")
		p, ok := gen.ProfileByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "clabench: unknown profile %q\n", *profile)
			os.Exit(1)
		}
		fmt.Printf("== Section 5 ablation: caching and cycle elimination (%s at scale %g) ==\n",
			*profile, *ablScale)
		w, err := bench.BuildWorkload(p, *ablScale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		rows, err := bench.RunAblation(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatAblation(os.Stdout, p.Name, rows)
		fmt.Println()
		tsp.End()
	}
	if need(6) {
		tsp := span("table 6")
		fmt.Println("== Section 6 comparison: pre-transitive vs worklist vs bitvec vs one-level vs Steensgaard ==")
		var rows []bench.RowSolver
		for _, w := range workloads {
			r, err := bench.RunSolvers(w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, r...)
		}
		bench.FormatSolvers(os.Stdout, rows)
		fmt.Println()
		tsp.End()
	}
	if need(7) {
		tsp := span("table 7")
		fmt.Println("== Section 4 transformations: offline variable substitution and context duplication ==")
		var rows []bench.RowXform
		for _, w := range workloads {
			r, err := bench.RunXforms(w)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
				os.Exit(1)
			}
			rows = append(rows, r...)
		}
		bench.FormatXforms(os.Stdout, rows)
		fmt.Println()
		tsp.End()
	}
	if need(8) {
		tsp := span("table 8")
		fmt.Printf("== Parallel pipeline: -j 1 vs -j %d (compile+link, analyze) ==\n", *jobs)
		rows, err := bench.RunParallelAll(*scale, *seed, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatParallel(os.Stdout, rows)
		emit(*jsonOut, "parallel-pipeline", rows, func(p string, m bench.Meta) error {
			return bench.WriteParallelJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(9) {
		tsp := span("table 9")
		fmt.Println("== Analysis clients: call graph, MOD/REF, escape, deref over the solved analysis ==")
		rows, err := bench.RunChecksAll(workloads, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatChecks(os.Stdout, rows)
		emit(*checksOut, "analysis-clients", rows, func(p string, m bench.Meta) error {
			return bench.WriteChecksJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(10) {
		tsp := span("table 10")
		fmt.Printf("== Set machinery: time / bytes allocated / live bytes per solver (-j 1 vs -j %d) ==\n", *jobs)
		rows, err := bench.RunSetsAll(workloads, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatSets(os.Stdout, rows)
		emit(*setsOut, "set-machinery", rows, func(p string, m bench.Meta) error {
			return bench.WriteSetsJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(11) {
		tsp := span("table 11")
		fmt.Printf("== Query serving: mixed query drain over one snapshot (-j %d) ==\n", *jobs)
		rows, err := bench.RunServeAll(workloads, *jobs, *queries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatServe(os.Stdout, rows)
		emit(*serveOut, "query-serving", rows, func(p string, m bench.Meta) error {
			return bench.WriteServeJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(12) {
		tsp := span("table 12")
		fmt.Println("== Phase-parallel wave fixpoint: sequential vs wave solve (-j 1/2/4/8) ==")
		rows, err := bench.RunSolveAll(workloads, bench.SolveJobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatSolve(os.Stdout, rows)
		emit(*solveOut, "parallel-solve", rows, func(p string, m bench.Meta) error {
			return bench.WriteSolveJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(13) {
		tsp := span("table 13")
		fmt.Printf("== Real-C corpus conformance: extern models over %s ==\n", *corpus)
		rows, err := bench.RunCorpus(*corpus, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatCorpus(os.Stdout, rows)
		emit(*corpusOut, "corpus-conformance", rows, func(p string, m bench.Meta) error {
			return bench.WriteCorpusJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(14) {
		tsp := span("table 14")
		p, ok := gen.ProfileByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "clabench: unknown profile %q\n", *profile)
			os.Exit(1)
		}
		fmt.Printf("== Cold start: live parse+solve vs solved snapshot (%s at scale %g, -j %d) ==\n",
			*profile, *scale, *jobs)
		w, err := bench.BuildWorkload(p, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		rows, err := bench.RunSnapshot(w, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatSnapshot(os.Stdout, rows)
		emit(*snapOut, "cold-start", rows, func(p string, m bench.Meta) error {
			return bench.WriteSnapshotJSON(p, rows, m)
		})
		tsp.End()
	}
	if need(15) {
		tsp := span("table 15")
		p, ok := gen.ProfileByName(*profile)
		if !ok {
			fmt.Fprintf(os.Stderr, "clabench: unknown profile %q\n", *profile)
			os.Exit(1)
		}
		fmt.Printf("== Incremental refresh: cold open vs warm one-unit edit (%s at scale %g, -j %d) ==\n",
			*profile, *scale, *jobs)
		w, err := bench.BuildWorkload(p, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		rows, err := bench.RunIncr(w, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
			os.Exit(1)
		}
		bench.FormatIncr(os.Stdout, rows)
		emit(*incrOut, "incremental-refresh", rows, func(p string, m bench.Meta) error {
			return bench.WriteIncrJSON(p, rows, m)
		})
		tsp.End()
	}
	if obsFlags.Stats {
		var rep obs.Report
		rep.Sections = append(rep.Sections, o.PhaseSection())
		rep.Format(os.Stdout)
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "clabench: %v\n", err)
		os.Exit(1)
	}
	if *check {
		switch {
		case checked == 0:
			fmt.Fprintln(os.Stderr, "clabench: -check compared nothing (only tables 8-14 carry baselines)")
			os.Exit(2)
		case checkFailures > 0:
			fmt.Fprintf(os.Stderr, "clabench: perf regression gate FAILED (%d of %d table(s))\n",
				checkFailures, checked)
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "clabench: perf regression gate passed (%d table(s))\n", checked)
		}
	}
}
