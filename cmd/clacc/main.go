// Clacc is the CLA compile phase: it parses C source files and writes
// indexed object databases of primitive assignments (.clo files).
//
// Usage:
//
//	clacc [-o out.clo] [-I dir]... [-D NAME[=VAL]]... [-mode field-based|field-independent] file.c...
//
// With several inputs and no -o, each file.c becomes file.clo.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"cla/internal/cpp"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/linker"
	"cla/internal/objfile"
	"cla/internal/prim"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		out      = flag.String("o", "", "output object file (default: input with .clo)")
		mode     = flag.String("mode", "field-based", "struct mode: field-based or field-independent")
		strs     = flag.Bool("strings", false, "model string constants as objects")
		cacheDir = flag.String("cache", "", "object cache directory for incremental recompilation")
		parallel = flag.Bool("j", true, "compile units in parallel")
		includes stringList
		defines  stringList
	)
	flag.Var(&includes, "I", "include directory (repeatable)")
	flag.Var(&defines, "D", "predefine macro NAME[=VALUE] (repeatable)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clacc: no input files")
		os.Exit(2)
	}
	opts := frontend.Options{ModelStrings: *strs, Defines: map[string]string{}}
	switch *mode {
	case "field-based":
		opts.Mode = frontend.FieldBased
	case "field-independent":
		opts.Mode = frontend.FieldIndependent
	default:
		fmt.Fprintf(os.Stderr, "clacc: bad -mode %q\n", *mode)
		os.Exit(2)
	}
	for _, d := range defines {
		name, val, found := strings.Cut(d, "=")
		if !found {
			val = "1"
		}
		opts.Defines[name] = val
	}
	loader := cpp.OSLoader{Dirs: includes}

	var cache *driver.Cache
	if *cacheDir != "" {
		var err error
		cache, err = driver.NewCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
			os.Exit(1)
		}
	}
	compileOne := func(in string) (*prim.Program, error) {
		if cache != nil {
			return cache.CompileUnit(in, loader, opts)
		}
		return frontend.CompileFile(in, loader, opts)
	}

	progs := make([]*prim.Program, flag.NArg())
	errs := make([]error, flag.NArg())
	if *parallel {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, in := range flag.Args() {
			wg.Add(1)
			go func(i int, in string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				progs[i], errs[i] = compileOne(in)
			}(i, in)
		}
		wg.Wait()
	} else {
		for i, in := range flag.Args() {
			progs[i], errs[i] = compileOne(in)
		}
	}
	for i, in := range flag.Args() {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "clacc: %v\n", errs[i])
			os.Exit(1)
		}
		if *out == "" {
			dst := strings.TrimSuffix(in, ".c") + ".clo"
			if err := objfile.WriteFile(dst, progs[i]); err != nil {
				fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *out != "" {
		merged := progs[0]
		if len(progs) > 1 {
			var err error
			merged, err = linker.Link(progs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
				os.Exit(1)
			}
		}
		if err := objfile.WriteFile(*out, merged); err != nil {
			fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
			os.Exit(1)
		}
	}
}
