// Clacc is the CLA compile phase: it parses C source files and writes
// indexed object databases of primitive assignments (.clo files).
//
// Usage:
//
//	clacc [-o out.clo] [-I dir]... [-D NAME[=VAL]]... [-mode field-based|field-independent] file.c...
//
// With several inputs and no -o, each file.c becomes file.clo.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cla/internal/cpp"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/linker"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var (
		out      = flag.String("o", "", "output object file (default: input with .clo)")
		mode     = flag.String("mode", "field-based", "struct mode: field-based or field-independent")
		strs     = flag.Bool("strings", false, "model string constants as objects")
		cacheDir = flag.String("cache", "", "object cache directory for incremental recompilation")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "number of parallel compile workers (1 = sequential)")
		includes stringList
		defines  stringList
	)
	flag.Var(&includes, "I", "include directory (repeatable)")
	flag.Var(&defines, "D", "predefine macro NAME[=VALUE] (repeatable)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clacc: no input files")
		os.Exit(2)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
		os.Exit(1)
	}
	opts := frontend.Options{ModelStrings: *strs, Defines: map[string]string{}}
	switch *mode {
	case "field-based":
		opts.Mode = frontend.FieldBased
	case "field-independent":
		opts.Mode = frontend.FieldIndependent
	default:
		fmt.Fprintf(os.Stderr, "clacc: bad -mode %q\n", *mode)
		os.Exit(2)
	}
	for _, d := range defines {
		name, val, found := strings.Cut(d, "=")
		if !found {
			val = "1"
		}
		opts.Defines[name] = val
	}
	loader := cpp.OSLoader{Dirs: includes}

	var cache *driver.Cache
	if *cacheDir != "" {
		var err error
		cache, err = driver.NewCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
			os.Exit(1)
		}
	}
	compileOne := func(in string) (*prim.Program, error) {
		if cache != nil {
			return cache.CompileUnit(in, loader, opts)
		}
		return frontend.CompileFile(in, loader, opts)
	}

	// Fan the independent unit compiles out across -j workers; results
	// land in argument order and the lowest-numbered failure wins, so the
	// behaviour matches a sequential loop.
	csp := o.Start("compile")
	o.SetCounter("compile.units", int64(flag.NArg()))
	progs := make([]*prim.Program, flag.NArg())
	if err := parallel.ForEach(*jobs, flag.NArg(), func(i int) error {
		usp := o.StartTrack(i+1, "unit "+filepath.Base(flag.Arg(i)))
		defer usp.End()
		p, err := compileOne(flag.Arg(i))
		progs[i] = p
		return err
	}); err != nil {
		fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
		os.Exit(1)
	}
	csp.End()
	wsp := o.Start("write")
	for i, in := range flag.Args() {
		if *out == "" {
			dst := strings.TrimSuffix(in, ".c") + ".clo"
			if err := objfile.WriteFile(dst, progs[i]); err != nil {
				fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
				os.Exit(1)
			}
		}
	}
	wsp.End()
	if *out != "" {
		merged := progs[0]
		if len(progs) > 1 {
			var err error
			merged, err = linker.LinkParallelObs(progs, *jobs, o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
				os.Exit(1)
			}
		}
		osp := o.Start("write output")
		if err := objfile.WriteFile(*out, merged); err != nil {
			fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
			os.Exit(1)
		}
		osp.End()
	}
	if obsFlags.Stats {
		var rep obs.Report
		rep.Sections = append(rep.Sections, o.PhaseSection())
		rep.Sections = append(rep.Sections, driver.CounterSection(o))
		rep.Format(os.Stdout)
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "clacc: %v\n", err)
		os.Exit(1)
	}
}
