// Claan is the CLA analyze phase: it runs points-to and dependence queries
// against a linked object database, demand-loading just the blocks the
// query needs. It also accepts C sources or a directory, running the
// compile and link phases in-process first.
//
// Usage:
//
//	claan -pts p program.cla             # print what p may point to
//	claan -pts-all program.cla           # print all non-empty points-to sets
//	claan -target x [-nontarget h] program.cla   # forward dependence from x
//	claan -stats program.cla             # paper-style per-phase report
//	claan -stats src/                    # compile+link+analyze a directory
//	claan -trace out.json program.cla    # Chrome trace of the run
//	claan -solver pretrans|worklist|steens ...
//	claan -extmodel blanket -pts p src/  # model undefined externals (PIP-style)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"cla/internal/core"
	"cla/internal/cpp"
	"cla/internal/depend"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/xform"
)

func main() {
	var (
		ptsName    = flag.String("pts", "", "print points-to set of the named object")
		ptsAll     = flag.Bool("pts-all", false, "print all non-empty points-to sets")
		target     = flag.String("target", "", "dependence target object name")
		nonTargets = flag.String("nontarget", "", "comma-separated non-target names")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens or bitvec")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		noCache    = flag.Bool("no-cache", false, "disable reachability caching")
		noCycle    = flag.Bool("no-cycle-elim", false, "disable cycle elimination")
		noDemand   = flag.Bool("no-demand-load", false, "load the whole database upfront")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation, batch queries and result materialization")
		maxDeps    = flag.Int("max", 50, "maximum dependents to print")
		ovs        = flag.Bool("ovs", false, "apply offline variable substitution before solving")
		contextSen = flag.Bool("context", false, "apply per-call-site context duplication before solving")
		dotOut     = flag.String("dot", "", "write the points-to relation as Graphviz dot to this file")
		tree       = flag.Bool("tree", false, "print dependence results as a tree (with -target)")
		treeDepth  = flag.Int("tree-depth", 0, "maximum tree depth (0 = unlimited)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "claan: need a database, a directory or .c files")
		os.Exit(2)
	}
	solver, err := driver.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(2)
	}
	model, err := extmodel.ParseModel(*extModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(2)
	}
	cfg := core.Config{Cache: !*noCache, CycleElim: !*noCycle, DemandLoad: !*noDemand, Jobs: *jobs}

	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}

	r, err := openDatabase(flag.Args(), *jobs, model, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()
	var src pts.Source = &pts.FileSource{R: r}

	// Pre-analysis database-to-database transformations (Section 4).
	subst := func(id prim.SymID) prim.SymID { return id }
	if *ovs || *contextSen {
		prog, err := r.Program()
		if err != nil {
			fmt.Fprintf(os.Stderr, "claan: %v\n", err)
			os.Exit(1)
		}
		if *contextSen {
			prog = xform.ContextSensitive(prog, xform.Options{})
		}
		if *ovs {
			var mapping []prim.SymID
			prog, mapping = xform.OfflineVarSub(prog)
			subst = func(id prim.SymID) prim.SymID {
				if int(id) < len(mapping) {
					return mapping[id]
				}
				return id
			}
		}
		src = pts.NewMemSource(prog)
	}

	res, err := driver.AnalyzeObs(src, solver, cfg, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	if *dotOut != "" {
		if err := writeDot(*dotOut, r, res); err != nil {
			fmt.Fprintf(os.Stderr, "claan: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case *ptsName != "":
		ids := r.TargetLookup(*ptsName)
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "claan: no object named %q\n", *ptsName)
			os.Exit(1)
		}
		for _, id := range ids {
			printPts(r, res, subst(id))
		}
	case *ptsAll:
		for i := 0; i < r.NumSyms(); i++ {
			id := prim.SymID(i)
			if !pts.CountedAsPointerVar(r.Sym(id).Kind) {
				continue
			}
			if len(res.PointsTo(subst(id))) > 0 {
				printPts(r, res, subst(id))
			}
		}
	case *target != "":
		runDependence(r, src, res, *target, *nonTargets, *maxDeps, *tree, *treeDepth)
	case obsFlags.Stats:
		// handled below, once load accounting is final
	default:
		if *dotOut == "" && !obsFlags.Any() {
			fmt.Fprintln(os.Stderr, "claan: nothing to do (use -pts, -pts-all, -target, -stats, -trace or -dot)")
			os.Exit(2)
		}
	}

	// Demand-load accounting covers everything the run touched —
	// analysis and queries alike — so it is published last.
	r.LoadStats().Publish(o)
	if obsFlags.Stats {
		printStats(os.Stdout, o, solver, src, res, r.LoadStats())
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
}

// printStats renders the paper-style report: phase spans, database
// characteristics (Table 2), analysis results (Table 3) and the
// demand-load accounting, then the remaining registry counters.
func printStats(w *os.File, o *obs.Observer, solver driver.Solver, src pts.Source, res pts.Result, ls objfile.LoadStats) {
	var rep obs.Report
	rep.Sections = append(rep.Sections, o.PhaseSection())
	rep.Sections = append(rep.Sections, driver.DBSection(src))
	rep.Sections = append(rep.Sections, driver.AnalysisSection(solver, res.Metrics()))
	rep.Sections = append(rep.Sections, driver.LoadSection(ls))
	rep.Sections = append(rep.Sections, driver.CounterSection(o))
	rep.Format(w)
}

// openDatabase resolves the inputs to an objfile reader. A single
// non-.c file opens directly; a directory or .c files are compiled and
// linked in-process, then round-tripped through the object format in
// memory so the analysis exercises the real demand-loading path. Under an
// extern model the database (file-backed or not) is materialized, closed
// with the model's constraints and round-tripped, so the reader also
// resolves the synthesized external-world symbols.
func openDatabase(args []string, jobs int, model extmodel.Model, o *obs.Observer) (*objfile.Reader, error) {
	var prog *prim.Program
	var err error
	if len(args) == 1 {
		info, statErr := os.Stat(args[0])
		if statErr != nil {
			return nil, statErr
		}
		switch {
		case !info.IsDir() && filepath.Ext(args[0]) != ".c":
			if model == extmodel.Unsound {
				return objfile.Open(args[0])
			}
			r, err := objfile.Open(args[0])
			if err != nil {
				return nil, err
			}
			prog, err = r.Program()
			r.Close()
			if err != nil {
				return nil, err
			}
		case info.IsDir():
			prog, err = driver.CompileDirObs(args[0], frontend.Options{}, jobs, o)
		default:
			prog, err = compileUnits(args, jobs, o)
		}
	} else {
		prog, err = compileUnits(args, jobs, o)
	}
	if err != nil {
		return nil, err
	}
	extmodel.Apply(prog, model)
	var buf bytes.Buffer
	if err := objfile.Write(&buf, prog); err != nil {
		return nil, err
	}
	return objfile.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
}

func compileUnits(args []string, jobs int, o *obs.Observer) (*prim.Program, error) {
	dirs := map[string]bool{}
	for _, a := range args {
		if filepath.Ext(a) != ".c" {
			return nil, fmt.Errorf("%s: expected .c files (or a single directory or database)", a)
		}
		dirs[filepath.Dir(a)] = true
	}
	var include []string
	for d := range dirs {
		include = append(include, d)
	}
	sort.Strings(include)
	return driver.CompileUnitsObs(args, cpp.OSLoader{Dirs: include}, frontend.Options{}, jobs, o)
}

// writeDot exports the non-empty points-to relation as a Graphviz digraph:
// solid edges are may-point-to facts from program variables to objects.
func writeDot(path string, r *objfile.Reader, res pts.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "digraph pointsto {")
	fmt.Fprintln(f, "  rankdir=LR;")
	fmt.Fprintln(f, "  node [shape=box, fontsize=10];")
	for i := 0; i < r.NumSyms(); i++ {
		id := prim.SymID(i)
		if !pts.CountedAsPointerVar(r.Sym(id).Kind) {
			continue
		}
		set := res.PointsTo(id)
		if len(set) == 0 {
			continue
		}
		for _, z := range set {
			fmt.Fprintf(f, "  %q -> %q;\n", r.Sym(id).Name, r.Sym(z).Name)
		}
	}
	fmt.Fprintln(f, "}")
	return nil
}

func printPts(r *objfile.Reader, res pts.Result, id prim.SymID) {
	set := res.PointsTo(id)
	var names []string
	for _, z := range set {
		names = append(names, r.Sym(z).Name)
	}
	fmt.Printf("%s -> {%s}\n", r.Sym(id).Name, strings.Join(names, ", "))
}

func runDependence(r *objfile.Reader, src pts.Source, res pts.Result, target, nonTargets string, maxDeps int, tree bool, treeDepth int) {
	ids := r.TargetLookup(target)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "claan: no object named %q\n", target)
		os.Exit(1)
	}
	opts := depend.Options{NonTargets: map[prim.SymID]bool{}}
	if nonTargets != "" {
		for _, n := range strings.Split(nonTargets, ",") {
			for _, id := range r.TargetLookup(strings.TrimSpace(n)) {
				opts.NonTargets[id] = true
			}
		}
	}
	dres, err := depend.Analyze(src, res, ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	if tree {
		fmt.Print(dres.FormatTree(treeDepth))
		return
	}
	deps := dres.Dependents()
	fmt.Printf("%d dependents of %s:\n", len(deps), target)
	for i, d := range deps {
		if i >= maxDeps {
			fmt.Printf("... and %d more\n", len(deps)-maxDeps)
			break
		}
		fmt.Printf("[%s d=%d] %s\n", d.Strength, d.Dist, dres.FormatChain(d.Sym))
	}
}
