// Claan is the CLA analyze phase: it runs points-to and dependence queries
// against a linked object database, demand-loading just the blocks the
// query needs.
//
// Usage:
//
//	claan -pts p program.cla             # print what p may point to
//	claan -pts-all program.cla           # print all non-empty points-to sets
//	claan -target x [-nontarget h] program.cla   # forward dependence from x
//	claan -stats program.cla             # analysis metrics (Table 3 columns)
//	claan -solver pretrans|worklist|steens ...
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cla/internal/core"
	"cla/internal/depend"
	"cla/internal/driver"
	"cla/internal/objfile"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/xform"
)

func main() {
	var (
		ptsName    = flag.String("pts", "", "print points-to set of the named object")
		ptsAll     = flag.Bool("pts-all", false, "print all non-empty points-to sets")
		target     = flag.String("target", "", "dependence target object name")
		nonTargets = flag.String("nontarget", "", "comma-separated non-target names")
		stats      = flag.Bool("stats", false, "print analysis metrics")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens or bitvec")
		noCache    = flag.Bool("no-cache", false, "disable reachability caching")
		noCycle    = flag.Bool("no-cycle-elim", false, "disable cycle elimination")
		noDemand   = flag.Bool("no-demand-load", false, "load the whole database upfront")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for batch queries and result materialization")
		maxDeps    = flag.Int("max", 50, "maximum dependents to print")
		ovs        = flag.Bool("ovs", false, "apply offline variable substitution before solving")
		contextSen = flag.Bool("context", false, "apply per-call-site context duplication before solving")
		dotOut     = flag.String("dot", "", "write the points-to relation as Graphviz dot to this file")
		tree       = flag.Bool("tree", false, "print dependence results as a tree (with -target)")
		treeDepth  = flag.Int("tree-depth", 0, "maximum tree depth (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "claan: exactly one database argument required")
		os.Exit(2)
	}
	solver, err := driver.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(2)
	}
	cfg := core.Config{Cache: !*noCache, CycleElim: !*noCycle, DemandLoad: !*noDemand, Jobs: *jobs}

	r, err := objfile.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()
	var src pts.Source = &pts.FileSource{R: r}

	// Pre-analysis database-to-database transformations (Section 4).
	subst := func(id prim.SymID) prim.SymID { return id }
	if *ovs || *contextSen {
		prog, err := r.Program()
		if err != nil {
			fmt.Fprintf(os.Stderr, "claan: %v\n", err)
			os.Exit(1)
		}
		if *contextSen {
			prog = xform.ContextSensitive(prog, xform.Options{})
		}
		if *ovs {
			var mapping []prim.SymID
			prog, mapping = xform.OfflineVarSub(prog)
			subst = func(id prim.SymID) prim.SymID {
				if int(id) < len(mapping) {
					return mapping[id]
				}
				return id
			}
		}
		src = pts.NewMemSource(prog)
	}

	res, err := driver.Analyze(src, solver, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	if *dotOut != "" {
		if err := writeDot(*dotOut, r, res); err != nil {
			fmt.Fprintf(os.Stderr, "claan: %v\n", err)
			os.Exit(1)
		}
	}

	switch {
	case *ptsName != "":
		ids := r.TargetLookup(*ptsName)
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "claan: no object named %q\n", *ptsName)
			os.Exit(1)
		}
		for _, id := range ids {
			printPts(r, res, subst(id))
		}
	case *ptsAll:
		for i := 0; i < r.NumSyms(); i++ {
			id := prim.SymID(i)
			if !pts.CountedAsPointerVar(r.Sym(id).Kind) {
				continue
			}
			if len(res.PointsTo(subst(id))) > 0 {
				printPts(r, res, subst(id))
			}
		}
	case *target != "":
		runDependence(r, src, res, *target, *nonTargets, *maxDeps, *tree, *treeDepth)
	case *stats:
		m := res.Metrics()
		fmt.Printf("solver:        %s\n", solver)
		fmt.Printf("pointer vars:  %d\n", m.PointerVars)
		fmt.Printf("relations:     %d\n", m.Relations)
		fmt.Printf("in core:       %d\n", m.InCore)
		fmt.Printf("loaded:        %d\n", m.Loaded)
		fmt.Printf("in file:       %d\n", m.InFile)
		fmt.Printf("passes:        %d\n", m.Passes)
		fmt.Printf("unifications:  %d\n", m.Unifications)
	default:
		if *dotOut == "" {
			fmt.Fprintln(os.Stderr, "claan: nothing to do (use -pts, -pts-all, -target, -stats or -dot)")
			os.Exit(2)
		}
	}
}

// writeDot exports the non-empty points-to relation as a Graphviz digraph:
// solid edges are may-point-to facts from program variables to objects.
func writeDot(path string, r *objfile.Reader, res pts.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "digraph pointsto {")
	fmt.Fprintln(f, "  rankdir=LR;")
	fmt.Fprintln(f, "  node [shape=box, fontsize=10];")
	for i := 0; i < r.NumSyms(); i++ {
		id := prim.SymID(i)
		if !pts.CountedAsPointerVar(r.Sym(id).Kind) {
			continue
		}
		set := res.PointsTo(id)
		if len(set) == 0 {
			continue
		}
		for _, z := range set {
			fmt.Fprintf(f, "  %q -> %q;\n", r.Sym(id).Name, r.Sym(z).Name)
		}
	}
	fmt.Fprintln(f, "}")
	return nil
}

func printPts(r *objfile.Reader, res pts.Result, id prim.SymID) {
	set := res.PointsTo(id)
	var names []string
	for _, z := range set {
		names = append(names, r.Sym(z).Name)
	}
	fmt.Printf("%s -> {%s}\n", r.Sym(id).Name, strings.Join(names, ", "))
}

func runDependence(r *objfile.Reader, src pts.Source, res pts.Result, target, nonTargets string, maxDeps int, tree bool, treeDepth int) {
	ids := r.TargetLookup(target)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "claan: no object named %q\n", target)
		os.Exit(1)
	}
	opts := depend.Options{NonTargets: map[prim.SymID]bool{}}
	if nonTargets != "" {
		for _, n := range strings.Split(nonTargets, ",") {
			for _, id := range r.TargetLookup(strings.TrimSpace(n)) {
				opts.NonTargets[id] = true
			}
		}
	}
	dres, err := depend.Analyze(src, res, ids, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "claan: %v\n", err)
		os.Exit(1)
	}
	if tree {
		fmt.Print(dres.FormatTree(treeDepth))
		return
	}
	deps := dres.Dependents()
	fmt.Printf("%d dependents of %s:\n", len(deps), target)
	for i, d := range deps {
		if i >= maxDeps {
			fmt.Printf("... and %d more\n", len(deps)-maxDeps)
			break
		}
		fmt.Printf("[%s d=%d] %s\n", d.Strength, d.Dist, dres.FormatChain(d.Sym))
	}
}
