// Clawatch tails a directory of C sources: it analyzes the tree once,
// prints the lint findings, then polls for edits and re-lints each new
// analysis generation. Only the edited units are recompiled, only their
// merge path is relinked, and the fixpoint re-solves only when the
// linked database actually changed — so the loop latency tracks the
// size of the edit, not the size of the tree.
//
// Usage:
//
//	clawatch src/                       # watch src/, re-lint on change
//	clawatch -interval 200ms src/       # poll faster
//	clawatch -checks deref,escape src/  # only these checks
//	clawatch -once src/                 # one pass, then exit (CI mode)
//	clawatch -cache-dir .clacache src/  # warm-start from a unit cache
//	clawatch -solver steens -j 4 src/
//
// Each generation prints one banner line
//
//	clawatch: generation N: K findings (M units recompiled, ...)
//
// followed by "file:line: [check] message (in function)" diagnostics,
// sorted and identical at every -j setting. Compile errors mid-edit are
// reported and the previous generation stays current. SIGINT or SIGTERM
// exits cleanly; with -once the exit status is 1 when findings exist,
// 0 otherwise, 2 on errors (the clalint convention).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"cla"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		interval   = flag.Duration("interval", 500*time.Millisecond, "poll interval for change detection")
		checkList  = flag.String("checks", "", "comma-separated checks to run (default all)")
		once       = flag.Bool("once", false, "analyze and lint once, then exit")
		includes   = flag.String("I", "", "comma-separated extra include directories")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens, bitvec or onelevel")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation, solving and checking")
		cacheDir   = flag.String("cache-dir", "", "persist compiled unit databases here across runs")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "clawatch: need exactly one source directory")
		return 2
	}
	dir := flag.Arg(0)

	alg, err := parseAlgorithm(*solverName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
		return 2
	}
	model, err := cla.ParseExtModel(*extModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
		return 2
	}
	opts := &cla.WorkspaceOptions{
		Algorithm: alg,
		ExtModel:  model,
		Jobs:      *jobs,
		CacheDir:  *cacheDir,
	}
	if *includes != "" {
		opts.IncludeDirs = strings.Split(*includes, ",")
	}
	var checks []string
	if *checkList != "" {
		checks = strings.Split(*checkList, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w, err := cla.OpenWorkspace(ctx, dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
		return 2
	}
	defer w.Close()

	n, err := lint(ctx, w.Analysis(), checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
		return 2
	}
	if *once {
		if n > 0 {
			return 1
		}
		return 0
	}

	fmt.Fprintf(os.Stderr, "clawatch: watching %s (every %s)\n", dir, *interval)
	w.Watch(ctx, *interval, func(a *cla.Analysis, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
			return
		}
		if _, err := lint(ctx, a, checks); err != nil {
			fmt.Fprintf(os.Stderr, "clawatch: %v\n", err)
		}
	})
	fmt.Fprintln(os.Stderr, "clawatch: stopped")
	return 0
}

// lint runs the checks against one generation and prints its findings,
// returning how many there were.
func lint(ctx context.Context, a *cla.Analysis, checks []string) (int, error) {
	results, err := a.Query(ctx, []cla.Query{{Kind: "lint", Checks: checks}})
	if err != nil {
		return 0, err
	}
	if results[0].Err != nil {
		return 0, fmt.Errorf("%s", results[0].Err.Message)
	}
	findings := results[0].Findings
	fmt.Printf("clawatch: generation %d: %d findings\n", a.Generation(), len(findings))
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		line := fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
		if f.Func != "" {
			line += fmt.Sprintf(" (in %s)", f.Func)
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	return len(findings), nil
}

// parseAlgorithm maps the CLI solver names (shared with clalint and
// claserve) onto the public Algorithm constants.
func parseAlgorithm(name string) (cla.Algorithm, error) {
	switch name {
	case "", "pretrans":
		return cla.PreTransitive, nil
	case "worklist":
		return cla.WorklistAndersen, nil
	case "steens":
		return cla.SteensgaardUnify, nil
	case "bitvec":
		return cla.BitVectorAndersen, nil
	case "onelevel":
		return cla.OneLevelFlow, nil
	}
	return cla.PreTransitive, fmt.Errorf("unknown solver %q (want pretrans, worklist, steens, bitvec or onelevel)", name)
}
