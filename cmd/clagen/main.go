// Clagen emits synthetic benchmark C source trees calibrated to the
// paper's Table 2 profiles.
//
// Usage:
//
//	clagen -profile gimp -scale 0.1 -seed 1 -o ./out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cla/internal/gen"
)

func main() {
	var (
		profile = flag.String("profile", "nethack", "Table 2 profile name (or 'list')")
		scale   = flag.Float64("scale", 1.0, "scale factor on all budgets")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("o", ".", "output directory")
	)
	flag.Parse()

	if *profile == "list" {
		for _, p := range gen.Table2 {
			fmt.Printf("%-8s vars=%d simple=%d base=%d store=%d copy=%d load=%d files=%d\n",
				p.Name, p.Vars, p.Simple, p.Base, p.Store, p.Copy, p.Load, p.Files)
		}
		return
	}
	p, ok := gen.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "clagen: unknown profile %q (try -profile list)\n", *profile)
		os.Exit(2)
	}
	code := gen.Generate(p.Scale(*scale), *seed)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "clagen: %v\n", err)
		os.Exit(1)
	}
	for name, src := range code.Files {
		if err := os.WriteFile(filepath.Join(*out, name), []byte(src), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clagen: %v\n", err)
			os.Exit(1)
		}
	}
	units := code.Units()
	fmt.Printf("clagen: wrote %d files (%d lines) to %s\n",
		len(code.Files), code.TotalLines(), *out)
	fmt.Printf("clagen: compile with: clacc -I %s %s\n", *out,
		filepath.Join(*out, strings.TrimSuffix(units[0], units[0])+"*.c"))
}
