// Clald is the CLA link phase: it merges object databases produced by
// clacc into one database with the same format, unifying global symbols.
//
// Usage:
//
//	clald -o program.cla file1.clo file2.clo ...
package main

import (
	"flag"
	"fmt"
	"os"

	"cla/internal/linker"
	"cla/internal/objfile"
)

func main() {
	out := flag.String("o", "a.cla", "output database")
	verbose := flag.Bool("v", false, "print link statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clald: no input files")
		os.Exit(2)
	}
	merged, err := linker.LinkFiles(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	if err := objfile.WriteFile(*out, merged); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	if *verbose {
		counts := merged.CountByKind()
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("clald: %d units -> %d symbols, %d assignments\n",
			flag.NArg(), len(merged.Syms), total)
	}
}
