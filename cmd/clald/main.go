// Clald is the CLA link phase: it merges object databases produced by
// clacc into one database with the same format, unifying global symbols.
//
// Usage:
//
//	clald -o program.cla file1.clo file2.clo ...
//	clald -undef -o program.cla file1.clo ...   # also list undefined externals
//	clald -snapshot program.snap -o program.cla file1.clo ...
//	                                            # also solve and write a
//	                                            # ready-to-serve snapshot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/linker"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/serve"
	"cla/internal/snapfile"
)

func main() {
	out := flag.String("o", "a.cla", "output database")
	verbose := flag.Bool("v", false, "print link statistics")
	undef := flag.Bool("undef", false, "print referenced-but-undefined globals and functions")
	snapshot := flag.String("snapshot", "", "also solve the linked database and write a solved snapshot here")
	solverName := flag.String("solver", "pretrans", "snapshot solver: pretrans, worklist, steens, bitvec or onelevel")
	extModel := flag.String("extmodel", "unsound", "snapshot incomplete-program model: unsound, blanket or escape")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "workers for the snapshot solve")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clald: no input files")
		os.Exit(2)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	merged, err := linker.LinkFilesObs(flag.Args(), o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	wsp := o.Start("write")
	if err := objfile.WriteFile(*out, merged); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	wsp.End()
	if *snapshot != "" {
		// Build the snapshot from the database just written, through the
		// same pipeline claserve uses for live solves — so serving the
		// .snap answers byte-identically to serving the .cla. The .cla's
		// content hash is recorded for staleness detection.
		solver, err := driver.ParseSolver(*solverName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clald: %v\n", err)
			os.Exit(2)
		}
		model, err := extmodel.ParseModel(*extModel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clald: %v\n", err)
			os.Exit(2)
		}
		snap, err := serve.BuildSnapshot(context.Background(), *out, serve.Config{
			Solver: solver, ExtModel: model, Jobs: *jobs, Obs: o,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "clald: %v\n", err)
			os.Exit(1)
		}
		if err := snapfile.Save(*snapshot, snap); err != nil {
			fmt.Fprintf(os.Stderr, "clald: %v\n", err)
			os.Exit(1)
		}
		if *verbose {
			st, _ := os.Stat(*snapshot)
			fmt.Printf("clald: snapshot %s (%d bytes, solver %s)\n",
				*snapshot, st.Size(), solver)
		}
	}
	if *undef {
		for _, u := range extmodel.Undefined(merged) {
			kind := "global"
			if u.Kind == prim.SymFunc {
				kind = "func"
			}
			fmt.Printf("undef %-6s %s (%s)\n", kind, u.Name, u.Loc)
		}
	}
	if *verbose {
		counts := merged.CountByKind()
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("clald: %d units -> %d symbols, %d assignments\n",
			flag.NArg(), len(merged.Syms), total)
	}
	if obsFlags.Stats {
		var rep obs.Report
		rep.Sections = append(rep.Sections, o.PhaseSection())
		rep.Sections = append(rep.Sections, driver.CounterSection(o))
		rep.Format(os.Stdout)
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
}
