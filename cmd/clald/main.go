// Clald is the CLA link phase: it merges object databases produced by
// clacc into one database with the same format, unifying global symbols.
//
// Usage:
//
//	clald -o program.cla file1.clo file2.clo ...
package main

import (
	"flag"
	"fmt"
	"os"

	"cla/internal/driver"
	"cla/internal/linker"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/parallel"
)

func main() {
	out := flag.String("o", "a.cla", "output database")
	verbose := flag.Bool("v", false, "print link statistics")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clald: no input files")
		os.Exit(2)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	merged, err := linker.LinkFilesObs(flag.Args(), o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	wsp := o.Start("write")
	if err := objfile.WriteFile(*out, merged); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
	wsp.End()
	if *verbose {
		counts := merged.CountByKind()
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("clald: %d units -> %d symbols, %d assignments\n",
			flag.NArg(), len(merged.Syms), total)
	}
	if obsFlags.Stats {
		var rep obs.Report
		rep.Sections = append(rep.Sections, o.PhaseSection())
		rep.Sections = append(rep.Sections, driver.CounterSection(o))
		rep.Format(os.Stdout)
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "clald: %v\n", err)
		os.Exit(1)
	}
}
