// Probe measures individual solvers on one profile/scale, for calibration.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cla/internal/bench"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/gen"
	"cla/internal/pts"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale")
	solver := flag.String("solver", "pretrans", "solver name")
	flag.Parse()
	sv, err := driver.ParseSolver(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, name := range flag.Args() {
		p, ok := gen.ProfileByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "no profile %s\n", name)
			os.Exit(2)
		}
		w, err := bench.BuildWorkload(p, *scale, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		res, err := driver.Analyze(pts.NewMemSource(w.FieldBased), sv, core.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %-12s scale=%g time=%-10s relations=%d\n",
			name, *solver, *scale, time.Since(start).Round(time.Millisecond), res.Metrics().Relations)
	}
}
