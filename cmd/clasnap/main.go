// Clasnap builds and inspects CLA solved snapshots (.snap): a serialized
// solved analysis — program, interned points-to sets, cached checks
// report — that claserve and the library can page in at cold start
// instead of re-parsing and re-solving.
//
// Usage:
//
//	clasnap -o program.snap program.cla         # solve once, snapshot
//	clasnap -o program.snap -solver bitvec src/ # source dir, other solver
//	clasnap -extmodel escape -o p.snap p.cla    # close over externals
//	clasnap -info program.snap                  # print header and meta
//	clasnap -verify program.snap                # re-hash sources; exit 3 if stale
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/serve"
	"cla/internal/snapfile"
)

func main() {
	var (
		out        = flag.String("o", "a.snap", "output snapshot")
		info       = flag.Bool("info", false, "print the snapshot's header and meta instead of building")
		verify     = flag.Bool("verify", false, "re-hash the snapshot's recorded sources; exit 3 when stale")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens, bitvec or onelevel")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		includes   = flag.String("I", "", "comma-separated extra include directories (directory inputs)")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation and the solve")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := run(flag.Args(), *out, *info, *verify, *solverName, *extModel,
		*includes, *jobs, obsFlags); err != nil {
		fmt.Fprintf(os.Stderr, "clasnap: %v\n", err)
		os.Exit(claerr.ExitCode(err))
	}
}

func run(args []string, out string, info, verify bool, solverName, extModel,
	includes string, jobs int, obsFlags *obs.Flags) error {
	if len(args) != 1 {
		return claerr.Newf(claerr.PhaseUsage, "need exactly one input (.cla database, source directory, or .snap for -info/-verify)")
	}
	path := args[0]
	if info || verify {
		return inspect(path, info, verify)
	}
	solver, err := driver.ParseSolver(solverName)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	model, err := extmodel.ParseModel(extModel)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	var incDirs []string
	if includes != "" {
		incDirs = strings.Split(includes, ",")
	}
	snap, err := serve.BuildSnapshot(context.Background(), path, serve.Config{
		Solver: solver, ExtModel: model, Jobs: jobs, Includes: incDirs, Obs: o,
	})
	if err != nil {
		return err
	}
	wsp := o.Start("write")
	if err := snapfile.Save(out, snap); err != nil {
		return claerr.File(claerr.PhaseObject, out, err)
	}
	wsp.End()
	st, _ := os.Stat(out)
	fmt.Fprintf(os.Stderr, "clasnap: %s: %d symbols, %d assignments, %d bytes\n",
		out, len(snap.Prog.Syms), len(snap.Prog.Assigns), st.Size())
	if obsFlags.Stats {
		var rep obs.Report
		rep.Sections = append(rep.Sections, o.PhaseSection())
		rep.Sections = append(rep.Sections, driver.CounterSection(o))
		rep.Format(os.Stdout)
	}
	return obsFlags.Finish()
}

// inspect serves -info and -verify against an existing snapshot.
func inspect(path string, info, verify bool) error {
	r, err := snapfile.Open(path, snapfile.Options{})
	if err != nil {
		return claerr.File(claerr.PhaseObject, path, err)
	}
	defer r.Close()
	if info {
		m := r.Meta()
		fmt.Printf("snapshot    %s\n", path)
		fmt.Printf("solver      %s\n", m.Solver)
		fmt.Printf("extmodel    %s\n", m.ExtModel)
		fmt.Printf("symbols     %d\n", m.Syms)
		fmt.Printf("assignments %d\n", m.Assigns)
		fmt.Printf("sets        %d distinct, %d elements\n", m.Sets, m.Elems)
		fmt.Printf("digest      %016x\n", r.ResultDigest())
		fmt.Printf("mmap        %v (zero-copy %v)\n", r.Mapped(), r.ZeroCopy())
		for _, s := range m.Sources {
			fmt.Printf("source      %s (%d bytes, %s)\n", s.Path, s.Size, s.Hash)
		}
	}
	if verify {
		if err := r.VerifySources(); err != nil {
			return err
		}
		fmt.Printf("clasnap: %s: sources verified (%d recorded)\n",
			path, len(r.Meta().Sources))
	}
	return nil
}
