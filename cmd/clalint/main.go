// Clalint runs the points-to-powered static-analysis clients over C
// sources or a linked object database: indirect-call-graph resolution,
// per-function MOD/REF summaries, stack-address escape detection and
// empty-points-to dereference candidates.
//
// Usage:
//
//	clalint [flags] file.c...        # compile, link, analyze, check
//	clalint [flags] dir              # every .c file in dir
//	clalint [flags] program.cla      # a linked database (clald output)
//
//	clalint -checks callgraph,escape src/   # run a subset of the checks
//	clalint -dot cg.dot -json cg.json src/  # export the call graph
//	clalint -modref src/                    # print MOD/REF summaries
//	clalint -solver steens -j 4 src/
//	clalint -extmodel blanket src/          # sound incomplete-program mode
//	clalint -format sarif src/ > out.sarif  # SARIF 2.1.0 output
//
// With -extmodel blanket or escape, undefined externals are modeled as an
// abstract external world (see internal/extmodel) and the externs
// soundness audit joins the default checks.
//
// Exit status: 0 when no findings, 1 when any check reported a finding,
// 2 on usage or processing errors. Diagnostics go to stdout as
// "file:line: [check] message (in function)" lines, sorted and identical
// at every -j setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cla/internal/checks"
	"cla/internal/core"
	"cla/internal/cpp"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens, bitvec or onelevel")
		checkList  = flag.String("checks", "", "comma-separated checks to run (callgraph, modref, escape, deref; default all)")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation, solving and checking")
		dotOut     = flag.String("dot", "", "write the resolved call graph as Graphviz dot to this file")
		jsonOut    = flag.String("json", "", "write the resolved call graph as JSON to this file")
		modref     = flag.Bool("modref", false, "print per-function MOD/REF summaries")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		format     = flag.String("format", "text", "diagnostic output format: text or sarif")
		includes   = flag.String("I", "", "comma-separated #include search directories")
		defines    = flag.String("D", "", "comma-separated predefined macros (NAME or NAME=VALUE)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "clalint: no inputs (C files, a directory, or a database)")
		return 2
	}
	solver, err := driver.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}
	model, err := extmodel.ParseModel(*extModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "clalint: unknown format %q (want text or sarif)\n", *format)
		return 2
	}
	var selected []checks.Check
	if *checkList != "" {
		selected, err = checks.ParseChecks(strings.Split(*checkList, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
			return 2
		}
	} else if model != extmodel.Unsound {
		// Modeling was requested, so the soundness audit rides along.
		selected = checks.AllChecksAudited()
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}

	prog, err := loadProgram(flag.Args(), *includes, *defines, *jobs, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}
	extmodel.Apply(prog, model)

	cfg := core.DefaultConfig()
	cfg.Jobs = *jobs
	res, err := driver.AnalyzeObs(pts.NewMemSource(prog), solver, cfg, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}

	rep, err := checks.Run(prog, res, checks.Options{
		Checks: selected, Jobs: *jobs, ExtModel: model.String(), Obs: o,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}

	if *dotOut != "" {
		if rep.Graph == nil {
			fmt.Fprintln(os.Stderr, "clalint: -dot requires the callgraph check")
			return 2
		}
		if err := os.WriteFile(*dotOut, []byte(rep.Graph.DOT()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
			return 2
		}
	}
	if *jsonOut != "" {
		if rep.Graph == nil {
			fmt.Fprintln(os.Stderr, "clalint: -json requires the callgraph check")
			return 2
		}
		js, err := rep.Graph.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*jsonOut, append(js, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
			return 2
		}
	}

	if *format == "sarif" {
		out, err := rep.SARIF()
		if err != nil {
			fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
			return 2
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		rep.Format(os.Stdout)
	}
	if *modref {
		for _, s := range rep.ModRef {
			name := s.Func
			if name == "" {
				name = "<toplevel>"
			}
			fmt.Printf("%s: MOD {%s} REF {%s}\n", name,
				strings.Join(s.Mod, ", "), strings.Join(s.Ref, ", "))
		}
	}

	if obsFlags.Stats {
		var srep obs.Report
		srep.Sections = append(srep.Sections, o.PhaseSection())
		srep.Sections = append(srep.Sections, driver.AnalysisSection(solver, res.Metrics()))
		srep.Sections = append(srep.Sections, driver.CounterSection(o))
		srep.Format(os.Stdout)
	}
	if err := obsFlags.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "clalint: %v\n", err)
		return 2
	}

	if len(rep.Diags) > 0 {
		return 1
	}
	return 0
}

// loadProgram resolves the command-line inputs to a linked database:
// a single directory compiles every .c file in it, a list of .c files
// compiles and links them, and any other single file is opened as a
// serialized database.
func loadProgram(args []string, includes, defines string, jobs int, o *obs.Observer) (*prim.Program, error) {
	opts := frontend.Options{}
	if defines != "" {
		opts.Defines = map[string]string{}
		for _, d := range strings.Split(defines, ",") {
			name, val, _ := strings.Cut(strings.TrimSpace(d), "=")
			opts.Defines[name] = val
		}
	}
	var dirs []string
	if includes != "" {
		for _, d := range strings.Split(includes, ",") {
			dirs = append(dirs, strings.TrimSpace(d))
		}
	}

	if len(args) == 1 {
		info, err := os.Stat(args[0])
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			return driver.CompileDirObs(args[0], opts, jobs, o)
		}
		if filepath.Ext(args[0]) != ".c" {
			sp := o.Start("read")
			defer sp.End()
			r, err := objfile.Open(args[0])
			if err != nil {
				return nil, err
			}
			defer r.Close()
			return r.Program()
		}
	}
	for _, a := range args {
		if filepath.Ext(a) != ".c" {
			return nil, fmt.Errorf("%s: expected .c files (or a single directory or database)", a)
		}
	}
	return driver.CompileUnitsObs(args, cpp.OSLoader{Dirs: dirs}, opts, jobs, o)
}
