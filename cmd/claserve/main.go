// Claserve is the CLA query server: it analyzes a linked object database
// or a source directory once, then answers points-to, may-alias, call
// graph, MOD/REF, dependence and lint queries over HTTP until stopped.
//
// Usage:
//
//	claserve -listen :8080 program.cla        # serve a database over TCP
//	claserve -unix /tmp/cla.sock src/         # compile+serve a directory
//	claserve -I include/ -j 8 src/            # extra include dirs, 8 workers
//	claserve -deadline 5s program.cla         # per-request evaluation cap
//
// Endpoints:
//
//	GET  /healthz                             liveness (503 while draining)
//	GET  /statsz                              sessions + observer metrics
//	GET  /v1/sessions                         registered session names
//	POST /v1/query                            batched queries (JSON)
//	GET  /v1/pointsto?name=p                  single-query conveniences
//	GET  /v1/alias?x=p&y=q
//	GET  /v1/callgraph
//	GET  /v1/modref?func=f
//	GET  /v1/dependence?target=x&dropweak=1
//	GET  /v1/lint?checks=escape,deref
//
// SIGINT or SIGTERM drains gracefully: health flips to 503, in-flight
// requests finish (up to -grace), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "TCP address to serve on")
		unixSock   = flag.String("unix", "", "unix socket path to serve on (overrides -listen)")
		name       = flag.String("name", "", "session name (default: input basename)")
		includes   = flag.String("I", "", "comma-separated extra include directories (directory inputs)")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens, bitvec or onelevel")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation, analysis and batch queries")
		deadline   = flag.Duration("deadline", 0, "per-request evaluation deadline (0 = none)")
		grace      = flag.Duration("grace", 10*time.Second, "drain timeout on shutdown")
		ready      = flag.Bool("ready", false, "print one READY line once serving (for scripts)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := run(flag.Args(), *listen, *unixSock, *name, *includes, *solverName,
		*extModel, *jobs, *deadline, *grace, *ready, obsFlags); err != nil {
		fmt.Fprintf(os.Stderr, "claserve: %v\n", err)
		os.Exit(claerr.ExitCode(err))
	}
}

func run(args []string, listen, unixSock, name, includes, solverName, extModel string,
	jobs int, deadline, grace time.Duration, ready bool, obsFlags *obs.Flags) error {
	if len(args) == 0 {
		return claerr.Newf(claerr.PhaseUsage, "need a .cla database or a source directory")
	}
	solver, err := driver.ParseSolver(solverName)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	model, err := extmodel.ParseModel(extModel)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	o := obsFlags.Observer()
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}

	var incDirs []string
	if includes != "" {
		incDirs = strings.Split(includes, ",")
	}
	cfg := serve.Config{Solver: solver, ExtModel: model, Jobs: jobs, Includes: incDirs, Obs: o}
	reg := serve.NewRegistry()
	for _, path := range args {
		n := name
		if n == "" || len(args) > 1 {
			n = sessionName(path)
		}
		sess, err := serve.Open(context.Background(), n, path, cfg)
		if err != nil {
			return err
		}
		reg.Add(sess)
		fmt.Fprintf(os.Stderr, "claserve: session %q ready (%d symbols, %d assignments)\n",
			sess.Name, sess.Eval.NumSyms(), sess.Eval.NumAssigns())
	}

	srv := serve.NewServer(reg, serve.ServerConfig{Jobs: jobs, Deadline: deadline, Obs: o})
	ln, addr, err := listenOn(listen, unixSock)
	if err != nil {
		return claerr.New(claerr.PhaseServe, err)
	}
	fmt.Fprintf(os.Stderr, "claserve: serving on %s\n", addr)
	if ready {
		fmt.Printf("READY %s\n", addr)
	}

	// Drain on SIGINT/SIGTERM: stop accepting, let in-flight requests
	// finish (bounded by -grace), then exit.
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return claerr.New(claerr.PhaseServe, err)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "claserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return claerr.New(claerr.PhaseServe, err)
		}
		<-done
	}
	if unixSock != "" {
		os.Remove(unixSock)
	}
	return obsFlags.Finish()
}

// listenOn opens the serving socket: a unix socket when requested
// (removing a stale socket file first), TCP otherwise.
func listenOn(tcp, unixSock string) (net.Listener, string, error) {
	if unixSock != "" {
		os.Remove(unixSock)
		ln, err := net.Listen("unix", unixSock)
		return ln, "unix:" + unixSock, err
	}
	ln, err := net.Listen("tcp", tcp)
	if err != nil {
		return nil, "", err
	}
	return ln, ln.Addr().String(), nil
}

// sessionName derives a session name from an input path: the basename
// without a .cla extension.
func sessionName(path string) string {
	base := filepath.Base(filepath.Clean(path))
	return strings.TrimSuffix(base, ".cla")
}
