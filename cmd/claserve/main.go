// Claserve is the CLA query server: it analyzes a linked object database
// or a source directory once, then answers points-to, may-alias, call
// graph, MOD/REF, dependence and lint queries over HTTP until stopped.
//
// Usage:
//
//	claserve -listen :8080 program.cla        # serve a database over TCP
//	claserve -unix /tmp/cla.sock src/         # compile+serve a directory
//	claserve -I include/ -j 8 src/            # extra include dirs, 8 workers
//	claserve -deadline 5s program.cla         # per-request evaluation cap
//	claserve -access-log access.jsonl src/    # JSONL request log
//	claserve -debug-addr 127.0.0.1:0 src/     # pprof on its own listener
//	claserve program.snap                     # serve a solved snapshot (no solve)
//	claserve -preload a.snap,b.snap           # page snapshots in before READY
//	claserve -no-verify program.snap          # skip snapshot staleness check
//	claserve -watch src/                      # poll for edits, swap generations
//	claserve -cache-dir .clacache src/        # persist compiled unit databases
//
// Endpoints:
//
//	GET  /healthz                             liveness (503 while draining)
//	GET  /statsz                              sessions + observer metrics
//	GET  /metricsz                            Prometheus text exposition
//	GET  /v1/sessions                         registered session names
//	POST /v1/sessions                         open a session {"name","path","watch"}
//	GET  /v1/sessions/{id}                    generation + staleness + watch state
//	POST /v1/sessions/{id}/refresh            rebuild what changed, swap generation
//	DELETE /v1/sessions/{id}                  retire a session
//	POST /v1/query                            batched queries (JSON)
//	GET  /v1/pointsto?name=p                  single-query conveniences
//	GET  /v1/alias?x=p&y=q
//	GET  /v1/callgraph
//	GET  /v1/modref?func=f
//	GET  /v1/dependence?target=x&dropweak=1
//	GET  /v1/lint?checks=escape,deref
//
// SIGINT or SIGTERM drains gracefully: health flips to 503, in-flight
// requests finish (up to -grace), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "TCP address to serve on")
		unixSock   = flag.String("unix", "", "unix socket path to serve on (overrides -listen)")
		name       = flag.String("name", "", "session name (default: input basename)")
		includes   = flag.String("I", "", "comma-separated extra include directories (directory inputs)")
		solverName = flag.String("solver", "pretrans", "solver: pretrans, worklist, steens, bitvec or onelevel")
		extModel   = flag.String("extmodel", "unsound", "incomplete-program model: unsound, blanket or escape")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "workers for compilation, analysis and batch queries")
		deadline   = flag.Duration("deadline", 0, "per-request evaluation deadline (0 = none)")
		grace      = flag.Duration("grace", 10*time.Second, "drain timeout on shutdown")
		ready      = flag.Bool("ready", false, "print one READY line once serving (for scripts)")
		preload    = flag.String("preload", "", "comma-separated solved .snap files to open and page in before READY")
		noVerify   = flag.Bool("no-verify", false, "open snapshots without re-hashing their recorded sources")
		debugAddr  = flag.String("debug-addr", "", "separate TCP listener exposing /debug/pprof (empty = disabled)")
		accessLog  = flag.String("access-log", "", "append one JSON line per served request to this file (\"-\" = stderr)")
		slowQuery  = flag.Duration("slow-query", 0, "latency at or above which a request is always access-logged and flagged slow (0 = disabled)")
		logSample  = flag.Int("log-sample", 1, "log 1 in N requests to the access log (<= 1 logs all; slow requests bypass sampling)")
		watch      = flag.Bool("watch", false, "poll directory sessions for edits and swap in refreshed analyses")
		watchIvl   = flag.Duration("watch-interval", 500*time.Millisecond, "poll interval for -watch and watch-created sessions")
		cacheDir   = flag.String("cache-dir", "", "persist compiled unit databases here (directory sessions reopen without parsing)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	tel := telemetryOpts{
		debugAddr: *debugAddr, accessLog: *accessLog,
		slowQuery: *slowQuery, logSample: *logSample,
	}
	wopts := watchOpts{watch: *watch, interval: *watchIvl, cacheDir: *cacheDir}
	if err := run(flag.Args(), *listen, *unixSock, *name, *includes, *solverName,
		*extModel, *preload, *noVerify, *jobs, *deadline, *grace, *ready, tel, wopts, obsFlags); err != nil {
		fmt.Fprintf(os.Stderr, "claserve: %v\n", err)
		os.Exit(claerr.ExitCode(err))
	}
}

// telemetryOpts groups the serving-telemetry flags.
type telemetryOpts struct {
	debugAddr string
	accessLog string
	slowQuery time.Duration
	logSample int
}

// watchOpts groups the incremental-serving flags.
type watchOpts struct {
	watch    bool
	interval time.Duration
	cacheDir string
}

func run(args []string, listen, unixSock, name, includes, solverName, extModel, preload string,
	noVerify bool, jobs int, deadline, grace time.Duration, ready bool, tel telemetryOpts, wopts watchOpts, obsFlags *obs.Flags) error {
	if len(args) == 0 && preload == "" {
		return claerr.Newf(claerr.PhaseUsage, "need a .cla database, a source directory, a .snap snapshot or -preload")
	}
	solver, err := driver.ParseSolver(solverName)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	model, err := extmodel.ParseModel(extModel)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	o := obsFlags.Observer()
	if o == nil {
		// Always observe: session-open latencies (the serve.snapshot.load
		// histogram) must land on the same observer /metricsz renders,
		// which the server would otherwise create after sessions open.
		o = obs.New()
	}
	parallel.SetObserver(o)
	if err := obsFlags.Start(); err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}

	var incDirs []string
	if includes != "" {
		incDirs = strings.Split(includes, ",")
	}
	cfg := serve.Config{Solver: solver, ExtModel: model, Jobs: jobs, Includes: incDirs,
		CacheDir: wopts.cacheDir, Obs: o, SkipVerify: noVerify}
	reg := serve.NewRegistry()
	// Preloaded snapshots open (and prefault) before anything else so
	// READY means every -preload session answers at page-cache speed.
	var preloads []string
	if preload != "" {
		preloads = strings.Split(preload, ",")
	}
	for _, path := range preloads {
		sess, err := serve.Open(context.Background(), sessionName(path), path, cfg)
		if err != nil {
			return err
		}
		n := sess.Snap.Prefault()
		reg.Add(sess)
		fmt.Fprintf(os.Stderr, "claserve: session %q preloaded (%d symbols, %d bytes paged in)\n",
			sess.Name, sess.Eval().NumSyms(), n)
	}
	for _, path := range args {
		n := name
		if n == "" || len(args) > 1 {
			n = sessionName(path)
		}
		sess, err := serve.Open(context.Background(), n, path, cfg)
		if err != nil {
			return err
		}
		reg.Add(sess)
		fmt.Fprintf(os.Stderr, "claserve: session %q ready (%d symbols, %d assignments)\n",
			sess.Name, sess.Eval().NumSyms(), sess.Eval().NumAssigns())
		if wopts.watch && sess.Refreshable() {
			if err := sess.StartWatch(wopts.interval); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "claserve: session %q watching %s (every %s)\n",
				sess.Name, path, wopts.interval)
		}
	}

	alw, closeLog, err := openAccessLog(tel.accessLog)
	if err != nil {
		return claerr.New(claerr.PhaseUsage, err)
	}
	defer closeLog()
	srv := serve.NewServer(reg, serve.ServerConfig{
		Jobs: jobs, Deadline: deadline, Obs: o,
		AccessLog: alw, SlowQuery: tel.slowQuery, LogSample: tel.logSample,
		Session: cfg, WatchInterval: wopts.interval,
	})
	ln, addr, err := listenOn(listen, unixSock)
	if err != nil {
		return claerr.New(claerr.PhaseServe, err)
	}
	if tel.debugAddr != "" {
		daddr, err := serveDebug(tel.debugAddr)
		if err != nil {
			return claerr.New(claerr.PhaseServe, err)
		}
		fmt.Fprintf(os.Stderr, "claserve: pprof on %s\n", daddr)
		if ready {
			fmt.Printf("DEBUG %s\n", daddr)
		}
	}
	fmt.Fprintf(os.Stderr, "claserve: serving on %s\n", addr)
	if ready {
		fmt.Printf("READY %s\n", addr)
	}

	// Drain on SIGINT/SIGTERM: stop accepting, let in-flight requests
	// finish (bounded by -grace), then exit.
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return claerr.New(claerr.PhaseServe, err)
		}
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "claserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return claerr.New(claerr.PhaseServe, err)
		}
		<-done
	}
	if unixSock != "" {
		os.Remove(unixSock)
	}
	return obsFlags.Finish()
}

// openAccessLog resolves the -access-log flag: "-" means stderr, empty
// disables, anything else appends to a file. The returned closer is a
// no-op except for files.
func openAccessLog(path string) (io.Writer, func(), error) {
	switch path {
	case "":
		return nil, func() {}, nil
	case "-":
		return os.Stderr, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// serveDebug starts the pprof endpoints on their own listener, keeping
// profiling off the public serving port. Returns the bound address.
func serveDebug(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// listenOn opens the serving socket: a unix socket when requested
// (removing a stale socket file first), TCP otherwise.
func listenOn(tcp, unixSock string) (net.Listener, string, error) {
	if unixSock != "" {
		os.Remove(unixSock)
		ln, err := net.Listen("unix", unixSock)
		return ln, "unix:" + unixSock, err
	}
	ln, err := net.Listen("tcp", tcp)
	if err != nil {
		return nil, "", err
	}
	return ln, ln.Addr().String(), nil
}

// sessionName derives a session name from an input path: the basename
// without a .cla or .snap extension.
func sessionName(path string) string {
	base := filepath.Base(filepath.Clean(path))
	base = strings.TrimSuffix(base, ".cla")
	return strings.TrimSuffix(base, ".snap")
}
