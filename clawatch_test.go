package cla

// End-to-end test of the clawatch binary: start it over a source
// directory, wait for the generation-1 lint pass, script an edit that
// introduces a finding, and expect a generation-2 pass that reports it.
// SIGTERM must exit cleanly. This is the watch-mode pipeline driven the
// way a user drives it — through the built CLI, over the real filesystem.

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestClawatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clawatch")
	work := t.TempDir()
	clean := "int g;\nint *p;\nvoid init(void) { p = &g; }\n"
	if err := os.WriteFile(filepath.Join(work, "a.c"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(tools["clawatch"], "-interval", "50ms", work)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitFor := func(want string) string {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("clawatch exited before printing %q", want)
				}
				if strings.Contains(line, want) {
					return line
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %q", want)
			}
		}
	}

	if line := waitFor("generation 1"); !strings.Contains(line, "0 findings") {
		t.Errorf("generation 1 = %q, want 0 findings", line)
	}

	// Scripted edit: dereference a pointer that points at nothing. The
	// watcher must pick it up, rebuild, and re-lint.
	dirty := clean + "int **nowhere;\nvoid crash(void) { *nowhere = p; }\n"
	if err := os.WriteFile(filepath.Join(work, "a.c"), []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	if line := waitFor("generation 2"); strings.Contains(line, " 0 findings") {
		t.Errorf("generation 2 = %q, want a finding", line)
	}
	waitFor("[deref]")

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clawatch exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("clawatch did not exit after SIGTERM")
	}
}

// TestClawatchOnce covers the one-pass CI mode and its clalint-style
// exit codes: 0 when clean, 1 when any check fires.
func TestClawatchOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clawatch")

	clean := t.TempDir()
	if err := os.WriteFile(filepath.Join(clean, "a.c"),
		[]byte("int g;\nint *p;\nvoid init(void) { p = &g; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, tools["clawatch"], "-once", clean)
	if !strings.Contains(out, "generation 1: 0 findings") {
		t.Errorf("clean -once output = %q", out)
	}

	dirty := t.TempDir()
	if err := os.WriteFile(filepath.Join(dirty, "a.c"),
		[]byte("int *x;\nint **nowhere;\nvoid crash(void) { *nowhere = x; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tools["clawatch"], "-once", dirty)
	b, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if err == nil {
		t.Fatalf("dirty -once exited 0:\n%s", b)
	} else if ok := errors.As(err, &ee); !ok || ee.ExitCode() != 1 {
		t.Fatalf("dirty -once err = %v, want exit 1:\n%s", err, b)
	}
	if !strings.Contains(string(b), "[deref]") {
		t.Errorf("dirty -once output = %q, want a deref finding", b)
	}
}
