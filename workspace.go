package cla

import (
	"context"
	"sync"
	"time"

	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/incr"
	"cla/internal/obs"
)

// WorkspaceOptions is the unified option set for the session-oriented
// API: one ctx-first struct covering both halves of the pipeline that
// the older split surface configured separately (Options for the
// compile phase, AnalyzeOptions for the solve phase). A Workspace
// consumes all of it; the one-shot entry points each read their half.
// The zero value (and nil) means: field-based structs, pre-transitive
// solver, unsound extern model, all ablation toggles on, all cores.
type WorkspaceOptions struct {
	// Mode is the struct treatment (default FieldBased, as in the paper).
	Mode StructMode
	// IncludeDirs are extra #include search directories after the
	// workspace directory itself.
	IncludeDirs []string
	// Defines are predefined object-like macros (NAME or NAME=VALUE).
	Defines map[string]string
	// ModelStrings models string literals as objects instead of ignoring
	// them.
	ModelStrings bool

	// Algorithm selects the points-to solver (default PreTransitive).
	Algorithm Algorithm
	// ExtModel closes each generation's database over undefined
	// externals before solving (default ExtModelUnsound).
	ExtModel ExtModel
	// NoCache, NoCycleElim and NoDemandLoad are the pre-transitive
	// solver's ablation toggles.
	NoCache, NoCycleElim, NoDemandLoad bool

	// Jobs bounds compile, link and solve parallelism (0 = all cores).
	// Analysis results are byte-identical at every setting.
	Jobs int
	// CacheDir, when non-empty, persists compiled unit databases there:
	// a new workspace over an unchanged tree starts without parsing
	// anything, and edited sessions only re-parse what changed.
	CacheDir string
	// Observer, when non-nil, records phase spans, the incr.* refresh
	// counters and the incr.refresh latency histogram.
	Observer *Observer
}

func (o *WorkspaceOptions) frontend() frontend.Options {
	fo := frontend.Options{}
	if o != nil {
		if o.Mode == FieldIndependent {
			fo.Mode = frontend.FieldIndependent
		}
		fo.ModelStrings = o.ModelStrings
		fo.Defines = o.Defines
	}
	return fo
}

func (o *WorkspaceOptions) observer() *obs.Observer {
	if o == nil {
		return nil
	}
	return o.Observer.internal()
}

func (o *WorkspaceOptions) solver() driver.Solver {
	if o == nil {
		return driver.PreTransitive
	}
	switch o.Algorithm {
	case WorklistAndersen:
		return driver.Worklist
	case SteensgaardUnify:
		return driver.Steensgaard
	case BitVectorAndersen:
		return driver.BitVector
	case OneLevelFlow:
		return driver.OneLevel
	}
	return driver.PreTransitive
}

func (o *WorkspaceOptions) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if o != nil {
		cfg.Cache = !o.NoCache
		cfg.CycleElim = !o.NoCycleElim
		cfg.DemandLoad = !o.NoDemandLoad
		cfg.Jobs = o.Jobs
	}
	return cfg
}

func (o *WorkspaceOptions) incrConfig(dir string) incr.Config {
	cfg := incr.Config{
		Dir:      dir,
		Frontend: o.frontend(),
		Solver:   o.solver(),
		Core:     o.coreConfig(),
		Obs:      o.observer(),
	}
	if o != nil {
		cfg.Includes = o.IncludeDirs
		cfg.Model = o.ExtModel.model()
		cfg.Jobs = o.Jobs
		cfg.CacheDir = o.CacheDir
	}
	return cfg
}

// Workspace is a mutable analysis session over a directory of C units —
// the incremental counterpart of CompileDir followed by Analyze. Each
// refresh recompiles only the units whose source or include closure
// changed, relinks only the merge subtrees those units feed, and
// re-solves only when the linked database actually changed, yielding a
// new immutable generation. Analyses handed out for old generations
// remain valid and queryable; the workspace never mutates them.
//
// All methods are safe for concurrent use; refreshes serialize.
type Workspace struct {
	dir string
	p   *incr.Pipeline
	alg Algorithm
	ext ExtModel
	o   *obs.Observer

	mu  sync.Mutex
	cur *Analysis
}

// OpenWorkspace builds generation 1 of a workspace: a full compile,
// link and solve of every .c file directly under dir (served from
// WorkspaceOptions.CacheDir where valid). The one-shot
//
//	db, _ := cla.CompileDir(dir, copts)
//	an, _ := db.Analyze(aopts)
//
// pipeline computes exactly a single-generation workspace; OpenWorkspace
// is that plus the ability to move to generation 2.
func OpenWorkspace(ctx context.Context, dir string, opts *WorkspaceOptions) (*Workspace, error) {
	p, err := incr.Open(ctx, opts.incrConfig(dir))
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, dir, err)
	}
	w := &Workspace{dir: dir, p: p}
	if opts != nil {
		w.alg, w.ext, w.o = opts.Algorithm, opts.ExtModel, opts.observer()
	}
	w.cur = w.wrap(p.Current())
	return w, nil
}

// wrap builds the public Analysis view of one pipeline generation.
func (w *Workspace) wrap(r *incr.Result) *Analysis {
	return &Analysis{
		db:  &Database{prog: r.Prog},
		src: r.Src,
		res: r.Res,
		alg: w.alg,
		ext: w.ext,
		o:   w.o,
		gen: r.Gen,
	}
}

// Analysis returns the current generation's immutable snapshot.
func (w *Workspace) Analysis() *Analysis {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cur
}

// Generation returns the current generation number (1 after open).
func (w *Workspace) Generation() uint64 { return w.p.Generation() }

// Refresh re-checks every tracked file plus the directory listing and
// rebuilds what changed. It returns the current Analysis: a new one if
// the analysis changed, the same pointer if nothing did. On error
// (e.g. a syntax error mid-edit) the previous generation stays current.
func (w *Workspace) Refresh(ctx context.Context) (*Analysis, error) {
	return w.update(ctx, nil)
}

// Update is Refresh with a change hint: only the named files (plus the
// directory listing, which catches added and removed units) are
// re-checked, so a no-op probe costs O(hint), not O(workspace).
func (w *Workspace) Update(ctx context.Context, changed ...string) (*Analysis, error) {
	return w.update(ctx, changed)
}

func (w *Workspace) update(ctx context.Context, changed []string) (*Analysis, error) {
	res, _, err := w.p.Update(ctx, changed...)
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, w.dir, err)
	}
	return w.adopt(res), nil
}

// TrackedFiles returns every file the current generation read — unit
// sources and their include closures — sorted.
func (w *Workspace) TrackedFiles() []string { return w.p.TrackedFiles() }

// Stale cheaply probes for drift without rebuilding: one stat per
// tracked file plus a directory listing. It returns the paths that look
// changed; pass them to Update to converge.
func (w *Workspace) Stale() (bool, []string) { return w.p.Stale() }

// Watch polls the workspace's tracked files every interval and refreshes
// when they change, calling fn with each new generation's Analysis (or
// with a nil Analysis and the error when a refresh fails — the loop
// keeps running, since a syntax error mid-edit is a normal watch-mode
// state). Watch blocks until ctx is done. Multi-file saves are coalesced
// into one refresh.
func (w *Workspace) Watch(ctx context.Context, interval time.Duration, fn func(*Analysis, error)) error {
	pw := incr.NewPollWatcher(w.dir, w.p.TrackedFiles, interval)
	defer pw.Close()
	incr.WatchLoop(ctx, w.p, pw, interval/2, func(r *incr.Result, st incr.RefreshStats, err error) {
		if err != nil {
			if fn != nil {
				fn(nil, claerr.File(claerr.PhaseCompile, w.dir, err))
			}
			return
		}
		if !st.Changed {
			return
		}
		if fn != nil {
			fn(w.adopt(r), nil)
		}
	})
	return ctx.Err()
}

// adopt installs a pipeline result as the current Analysis.
func (w *Workspace) adopt(r *incr.Result) *Analysis {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil || w.cur.gen != r.Gen {
		w.cur = w.wrap(r)
	}
	return w.cur
}

// Close releases the workspace. Analyses already handed out remain
// valid; only the ability to refresh ends.
func (w *Workspace) Close() error { return nil }
