package cla

import (
	"context"
	"sync"

	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/depend"
	"cla/internal/extmodel"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/bitvec"
	"cla/internal/pts/onelevel"
	"cla/internal/pts/steens"
	"cla/internal/pts/worklist"
	"cla/internal/snapfile"
)

// Algorithm selects a points-to solver.
type Algorithm int

// Solver algorithms.
const (
	// PreTransitive is the paper's pre-transitive graph algorithm with
	// cached reachability and cycle elimination (the default).
	PreTransitive Algorithm = iota
	// WorklistAndersen is the classic transitively-closed baseline.
	WorklistAndersen
	// SteensgaardUnify is the unification-based baseline.
	SteensgaardUnify
	// BitVectorAndersen is Andersen's analysis over dense bit-vector
	// sets, another subset-based implementation built on the same
	// database (Section 4 of the paper).
	BitVectorAndersen
	// OneLevelFlow is Das's hybrid (PLDI 2000, the paper's reference
	// [8]): directional subset edges at the top level of the points-to
	// graph, unification below it.
	OneLevelFlow
)

// ExtModel selects how undefined externals are treated, making the
// analysis sound on incomplete programs (libraries, single modules,
// programs calling undefined library code).
type ExtModel int

// Extern models, from no modeling to full PIP-style closure.
const (
	// ExtModelUnsound ignores undefined externals: reads from them point
	// nowhere. This is the classic (unsound) default and leaves the
	// database byte-for-byte untouched.
	ExtModelUnsound ExtModel = iota
	// ExtModelBlanket adds one abstract external-world object: undefined
	// functions return it, their pointer arguments escape into it, and
	// undefined globals may point to it.
	ExtModelBlanket
	// ExtModelEscape is ExtModelBlanket plus mutual aliasing among escaped
	// objects: external code may store any escaped pointer into any
	// escaped object.
	ExtModelEscape
)

// String returns the flag spelling ("unsound", "blanket", "escape").
func (m ExtModel) String() string { return m.model().String() }

func (m ExtModel) model() extmodel.Model {
	switch m {
	case ExtModelBlanket:
		return extmodel.Blanket
	case ExtModelEscape:
		return extmodel.Escape
	}
	return extmodel.Unsound
}

// ParseExtModel parses a model name as spelled on the -extmodel flags;
// the empty string selects ExtModelUnsound.
func ParseExtModel(name string) (ExtModel, error) {
	m, err := extmodel.ParseModel(name)
	if err != nil {
		return ExtModelUnsound, claerr.New(claerr.PhaseUsage, err)
	}
	switch m {
	case extmodel.Blanket:
		return ExtModelBlanket, nil
	case extmodel.Escape:
		return ExtModelEscape, nil
	}
	return ExtModelUnsound, nil
}

// UndefExtern is one referenced-but-undefined external symbol.
type UndefExtern struct {
	// Name is the symbol name; Func distinguishes functions from data.
	Name string
	Func bool
	// File and Line locate the first reference.
	File string
	Line int
}

// Undefined inventories the externals the database references but does
// not define, in stable order. A non-empty result means the database is
// an incomplete program: analyzing it with ExtModelUnsound is unsound.
func (db *Database) Undefined() []UndefExtern {
	var out []UndefExtern
	for _, u := range extmodel.Undefined(db.prog) {
		out = append(out, UndefExtern{
			Name: u.Name,
			Func: u.Kind == prim.SymFunc,
			File: u.Loc.File,
			Line: int(u.Loc.Line),
		})
	}
	return out
}

// AnalyzeOptions configures an analysis run.
//
// AnalyzeOptions is the analyze half of the older split option surface;
// new code should prefer the session-oriented API, whose single
// WorkspaceOptions struct carries these fields alongside the compile
// ones (see OpenWorkspace). Database.Analyze remains supported and is
// exactly the analyze phase of a single-generation workspace.
type AnalyzeOptions struct {
	Algorithm Algorithm
	// ExtModel closes the database over undefined externals before
	// solving (see ExtModelUnsound). The database itself is not modified;
	// non-unsound models analyze an extended copy.
	ExtModel ExtModel
	// NoCache disables reachability caching (ablation).
	NoCache bool
	// NoCycleElim disables cycle elimination (ablation).
	NoCycleElim bool
	// NoDemandLoad loads the whole database upfront (ablation).
	NoDemandLoad bool
	// Jobs bounds the workers used by the solve phase itself (the
	// pre-transitive and worklist solvers run their phase-parallel wave
	// fixpoint when Jobs >= 2) and to materialize final points-to sets
	// after solving (0 = all available cores, 1 = sequential). Results
	// are identical at every setting.
	Jobs int
	// Observer, when non-nil, records the analyze phase and the solver
	// counters; read them back with Analysis.Stats (see NewObserver).
	Observer *Observer
}

func (o *AnalyzeOptions) algorithm() Algorithm {
	if o == nil {
		return PreTransitive
	}
	return o.Algorithm
}

func (o *AnalyzeOptions) extModel() ExtModel {
	if o == nil {
		return ExtModelUnsound
	}
	return o.ExtModel
}

func (o *AnalyzeOptions) observer() *obs.Observer {
	if o == nil {
		return nil
	}
	return o.Observer.internal()
}

func (o *AnalyzeOptions) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	if o != nil {
		cfg.Cache = !o.NoCache
		cfg.CycleElim = !o.NoCycleElim
		cfg.DemandLoad = !o.NoDemandLoad
		cfg.Jobs = o.Jobs
	}
	return cfg
}

// Analysis holds a solved points-to relation over a database.
type Analysis struct {
	db   *Database
	src  pts.Source
	res  pts.Result
	alg  Algorithm        // the solver that produced res
	ext  ExtModel         // the extern model the solve ran under
	r    *objfile.Reader  // non-nil for AnalyzeFile
	snap *snapfile.Reader // non-nil for OpenSnapshot
	o    *obs.Observer    // non-nil when an Observer was attached
	gen  uint64           // workspace generation; 0 for one-shot analyses

	// evOnce lazily builds the query evaluator shared by Analysis.Query
	// and Serve (see serve.go).
	evOnce sync.Once
	ev     *evalState
	evErr  error
}

// Analyze runs points-to analysis over the database.
func (db *Database) Analyze(opts *AnalyzeOptions) (*Analysis, error) {
	return db.AnalyzeCtx(context.Background(), opts)
}

// AnalyzeCtx is Analyze under a context: the solver fixpoint checks for
// cancellation and returns ctx's error when it fires. Under a non-unsound
// ExtModel the Analysis is backed by an extended copy of db (reachable via
// Analysis.Database) holding the external-world symbols; db itself is
// untouched.
func (db *Database) AnalyzeCtx(ctx context.Context, opts *AnalyzeOptions) (*Analysis, error) {
	adb := db
	if m := opts.extModel(); m != ExtModelUnsound {
		prog, _ := extmodel.ApplyClone(db.prog, m.model())
		adb = &Database{prog: prog}
	}
	src := pts.NewMemSource(adb.prog)
	res, err := solve(ctx, src, opts)
	if err != nil {
		return nil, claerr.New(claerr.PhaseAnalyze, err)
	}
	return &Analysis{db: adb, src: src, res: res, alg: opts.algorithm(),
		ext: opts.extModel(), o: opts.observer()}, nil
}

// AnalyzeFile opens a serialized database and analyzes it with demand
// loading directly from the file — the full CLA analyze phase. Call Close
// when done.
func AnalyzeFile(path string, opts *AnalyzeOptions) (*Analysis, error) {
	return AnalyzeFileCtx(context.Background(), path, opts)
}

// AnalyzeFileCtx is AnalyzeFile under a context (see AnalyzeCtx). A
// non-unsound ExtModel materializes the database into memory (the model's
// constraints have no blocks in the file to demand-load from).
func AnalyzeFileCtx(ctx context.Context, path string, opts *AnalyzeOptions) (*Analysis, error) {
	r, err := objfile.Open(path)
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	if m := opts.extModel(); m != ExtModelUnsound {
		prog, err := r.Program()
		r.Close()
		if err != nil {
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
		extmodel.Apply(prog, m.model())
		src := pts.NewMemSource(prog)
		res, err := solve(ctx, src, opts)
		if err != nil {
			return nil, claerr.File(claerr.PhaseAnalyze, path, err)
		}
		db := &Database{prog: prog}
		return &Analysis{db: db, src: src, res: res, alg: opts.algorithm(),
			ext: m, o: opts.observer()}, nil
	}
	src := &pts.FileSource{R: r}
	res, err := solve(ctx, src, opts)
	if err != nil {
		r.Close()
		return nil, claerr.File(claerr.PhaseAnalyze, path, err)
	}
	r.LoadStats().Publish(opts.observer())
	// Materialize symbols for Object accessors.
	prog := &prim.Program{Syms: append([]prim.Symbol(nil), r.Syms()...)}
	db := &Database{prog: prog}
	return &Analysis{db: db, src: src, res: res, alg: opts.algorithm(),
		r: r, o: opts.observer()}, nil
}

// Close releases the underlying file for AnalyzeFile analyses and the
// snapshot mapping for OpenSnapshot ones. After Close, objects returned
// by a snapshot-backed analysis's queries must not be used.
func (a *Analysis) Close() error {
	if a.r != nil {
		return a.r.Close()
	}
	if a.snap != nil {
		return a.snap.Close()
	}
	return nil
}

func solve(ctx context.Context, src pts.Source, opts *AnalyzeOptions) (pts.Result, error) {
	alg := PreTransitive
	if opts != nil {
		alg = opts.Algorithm
	}
	o := opts.observer()
	sp := o.Start("analyze")
	res, err := solveAlg(ctx, src, opts, alg)
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Metrics().Publish(o)
	return res, nil
}

func solveAlg(ctx context.Context, src pts.Source, opts *AnalyzeOptions, alg Algorithm) (pts.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch alg {
	case PreTransitive:
		return core.SolveCtx(ctx, src, opts.coreConfig())
	case WorklistAndersen:
		jobs := 0
		if opts != nil {
			jobs = opts.Jobs
		}
		return worklist.SolveJobsCtx(ctx, src, jobs)
	case SteensgaardUnify:
		return steens.Solve(src)
	case BitVectorAndersen:
		jobs := 0
		if opts != nil {
			jobs = opts.Jobs
		}
		return bitvec.SolveJobs(src, jobs)
	case OneLevelFlow:
		return onelevel.Solve(src)
	}
	return nil, claerr.Newf(claerr.PhaseUsage, "unknown algorithm %d", alg)
}

// Database returns the analyzed database.
func (a *Analysis) Database() *Database { return a.db }

// Generation returns the workspace generation this analysis snapshots,
// numbered from 1. One-shot analyses (Analyze, AnalyzeFile,
// OpenSnapshot) are generation 1 of an implicit single-generation
// workspace.
func (a *Analysis) Generation() uint64 {
	if a.gen == 0 {
		return 1
	}
	return a.gen
}

// PointsTo returns the objects obj may point to.
func (a *Analysis) PointsTo(obj Object) []Object {
	if !obj.Valid() {
		return nil
	}
	var out []Object
	for _, z := range a.res.PointsTo(obj.id) {
		out = append(out, Object{db: a.db, id: z})
	}
	return out
}

// PointsToName returns the union of points-to sets over all objects with
// the given name.
func (a *Analysis) PointsToName(name string) []Object {
	seen := map[prim.SymID]bool{}
	var out []Object
	for _, o := range a.db.Lookup(name) {
		for _, z := range a.res.PointsTo(o.id) {
			if !seen[z] {
				seen[z] = true
				out = append(out, Object{db: a.db, id: z})
			}
		}
	}
	return out
}

// MayAlias reports whether two pointer objects may point to a common
// location.
func (a *Analysis) MayAlias(x, y Object) bool {
	if !x.Valid() || !y.Valid() {
		return false
	}
	xs := a.res.PointsTo(x.id)
	ys := a.res.PointsTo(y.id)
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] < ys[j]:
			i++
		case xs[i] > ys[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Metrics reports solver statistics (the measurement columns of the
// paper's Table 3).
type Metrics struct {
	PointerVars  int
	Relations    int
	InCore       int
	Loaded       int
	InFile       int
	Passes       int
	Unifications int
}

// Metrics returns the analysis statistics.
func (a *Analysis) Metrics() Metrics {
	m := a.res.Metrics()
	return Metrics{
		PointerVars:  m.PointerVars,
		Relations:    m.Relations,
		InCore:       m.InCore,
		Loaded:       m.Loaded,
		InFile:       m.InFile,
		Passes:       m.Passes,
		Unifications: m.Unifications,
	}
}

// DependOptions configures a dependence query.
type DependOptions struct {
	// NonTargets are objects asserted not to depend on the target;
	// traversal neither reports nor crosses them.
	NonTargets []Object
	// DropWeak excludes chains that pass through weak operations.
	DropWeak bool
}

// Dependent is one object dependent on the target, with its chain class.
type Dependent struct {
	Object Object
	// Strong reports whether the best chain uses only shape-preserving
	// operations (Table 1).
	Strong bool
	// Distance is the best chain's length.
	Distance int
	// Chain is the printable dependence chain (Figure 1 format).
	Chain string
}

// Dependence runs the forward data-dependence analysis of the paper's
// Section 2 from the given target objects.
func (a *Analysis) Dependence(targets []Object, opts *DependOptions) ([]Dependent, error) {
	var ids []prim.SymID
	for _, t := range targets {
		if !t.Valid() {
			return nil, claerr.Newf(claerr.PhaseQuery, "invalid target object")
		}
		ids = append(ids, t.id)
	}
	dopts := depend.Options{NonTargets: map[prim.SymID]bool{}}
	if opts != nil {
		dopts.DropWeak = opts.DropWeak
		for _, nt := range opts.NonTargets {
			dopts.NonTargets[nt.id] = true
		}
	}
	res, err := depend.Analyze(a.src, a.res, ids, dopts)
	if err != nil {
		return nil, claerr.New(claerr.PhaseQuery, err)
	}
	var out []Dependent
	for _, d := range res.Dependents() {
		out = append(out, Dependent{
			Object:   Object{db: a.db, id: d.Sym},
			Strong:   d.Strength == prim.Strong,
			Distance: d.Dist,
			Chain:    res.FormatChain(d.Sym),
		})
	}
	return out, nil
}

// DependenceByName is a convenience wrapper targeting every object named
// name.
func (a *Analysis) DependenceByName(name string, opts *DependOptions) ([]Dependent, error) {
	targets := a.db.Lookup(name)
	if len(targets) == 0 {
		return nil, claerr.Newf(claerr.PhaseQuery, "no object named %q: %w", name, claerr.ErrNotFound)
	}
	return a.Dependence(targets, opts)
}
