package cla

import "cla/internal/claerr"

// Error is the typed error returned at every public boundary: the
// pipeline phase that failed, the input file when one is known, and the
// underlying cause. Use errors.As to dispatch on it and errors.Is to
// test the cause:
//
//	_, err := cla.CompileDir("src", nil)
//	var ce *cla.Error
//	if errors.As(err, &ce) && ce.Phase == cla.PhaseCompile { ... }
//
// The claserve HTTP layer maps phases to response statuses and the CLIs
// map them to exit codes, so a library caller, a curl user and a shell
// script all see the same classification.
type Error = claerr.Error

// ErrorPhase names the pipeline stage an Error came from. (The name
// Phase is taken by the observability span type.)
type ErrorPhase = claerr.Phase

// The pipeline phases an Error can carry.
const (
	// PhaseUsage is a malformed request to the API itself (unknown
	// algorithm or check name, invalid option combination).
	PhaseUsage = claerr.PhaseUsage
	// PhaseCompile covers C preprocessing, parsing and lowering.
	PhaseCompile = claerr.PhaseCompile
	// PhaseLink covers database merging.
	PhaseLink = claerr.PhaseLink
	// PhaseObject covers serialized-database I/O (open, read, write).
	PhaseObject = claerr.PhaseObject
	// PhaseAnalyze covers points-to solving.
	PhaseAnalyze = claerr.PhaseAnalyze
	// PhaseQuery covers post-analysis queries (points-to, alias,
	// dependence, batched serving requests).
	PhaseQuery = claerr.PhaseQuery
	// PhaseLint covers the static-analysis clients.
	PhaseLint = claerr.PhaseLint
	// PhaseServe covers query-server lifecycle failures.
	PhaseServe = claerr.PhaseServe
)

// ErrNotFound is wrapped by query errors that name an object, session or
// function the database does not contain; test with errors.Is.
var ErrNotFound = claerr.ErrNotFound
