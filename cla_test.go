package cla

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func names(objs []Object) []string {
	var out []string
	for _, o := range objs {
		out = append(out, o.Name())
	}
	sort.Strings(out)
	return out
}

func TestQuickstartWorkflow(t *testing.T) {
	db, err := CompileSource("t.c", `
int x, y;
int *p, *q;
void m(void) { p = &x; q = p; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := names(an.PointsToName("q"))
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestCompileLinkAnalyze(t *testing.T) {
	a, err := CompileSource("a.c", "int shared; int *pa;\nvoid fa(void) { pa = &shared; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileSource("b.c", "extern int shared; extern int *pa; int *pb;\nvoid fb(void) { pb = pa; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Link(a, b)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(an.PointsToName("pb")); len(got) != 1 || got[0] != "shared" {
		t.Errorf("pts(pb) = %v", got)
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	db, err := CompileSource("t.c", "int v, *p; void m(void) { p = &v; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.clo")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats() != db.Stats() {
		t.Errorf("stats differ: %+v vs %+v", db2.Stats(), db.Stats())
	}
}

func TestAnalyzeFileDemandLoaded(t *testing.T) {
	db, err := CompileSource("t.c", `
int v, *p, *q;
int unused1, unused2;
void m(void) { p = &v; q = p; unused1 = unused2; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.clo")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer an.Close()
	if got := names(an.PointsToName("q")); len(got) != 1 || got[0] != "v" {
		t.Errorf("pts(q) = %v", got)
	}
	m := an.Metrics()
	if m.Loaded >= m.InFile {
		t.Errorf("demand loading ineffective: %+v", m)
	}
}

func TestAlgorithms(t *testing.T) {
	db, err := CompileSource("t.c", `
int a, b, *p, *q;
void m(void) { p = &a; q = p; p = &b; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{PreTransitive, WorklistAndersen, SteensgaardUnify, BitVectorAndersen, OneLevelFlow} {
		an, err := db.Analyze(&AnalyzeOptions{Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		got := names(an.PointsToName("q"))
		if len(got) < 2 {
			t.Errorf("alg %d: pts(q) = %v", alg, got)
		}
	}
}

func TestMayAlias(t *testing.T) {
	db, err := CompileSource("t.c", `
int a, b;
int *p, *q, *r;
void m(void) { p = &a; q = &a; r = &b; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(n string) Object { return db.Lookup(n)[0] }
	if !an.MayAlias(obj("p"), obj("q")) {
		t.Error("p and q must alias")
	}
	if an.MayAlias(obj("p"), obj("r")) {
		t.Error("p and r must not alias")
	}
}

func TestDependenceAPI(t *testing.T) {
	db, err := CompileSource("eg1.c", `
short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void m(void) {
	v = &w;
	u = target;
	*v = u;
	s.x = w;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := an.DependenceByName("target", nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Dependent{}
	for _, d := range deps {
		byName[d.Object.Name()] = d
	}
	for _, want := range []string{"u", "w", "S.x"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing dependent %s (have %v)", want, byName)
		}
	}
	if d := byName["S.x"]; !strings.Contains(d.Chain, "where target/short") {
		t.Errorf("chain = %q", d.Chain)
	}
	if _, ok := byName["S.y"]; ok {
		t.Error("S.y must not be dependent")
	}
}

func TestDependenceNonTargets(t *testing.T) {
	db, err := CompileSource("t.c", `
int target, hub, down;
void m(void) { hub = target; down = hub; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := an.DependenceByName("target", &DependOptions{NonTargets: db.Lookup("hub")})
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 0 {
		t.Errorf("dependents = %v", deps)
	}
}

func TestCompileDirAndIncludes(t *testing.T) {
	dir := t.TempDir()
	hdr := "#ifndef H\n#define H\nextern int g;\n#endif\n"
	os.WriteFile(filepath.Join(dir, "defs.h"), []byte(hdr), 0o644)
	os.WriteFile(filepath.Join(dir, "a.c"), []byte("#include \"defs.h\"\nint g; int *p;\nvoid f(void) { p = &g; }\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "b.c"), []byte("#include \"defs.h\"\nint x;\nvoid h(void) { x = g; }\n"), 0o644)
	db, err := CompileDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(an.PointsToName("p")); len(got) != 1 || got[0] != "g" {
		t.Errorf("pts(p) = %v", got)
	}
}

func TestDefines(t *testing.T) {
	db, err := CompileSource("t.c", `
#if FEATURE
int v, *p;
void m(void) { p = &v; }
#endif
`, &Options{Defines: map[string]string{"FEATURE": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Stats().Base != 1 {
		t.Errorf("stats = %+v", db.Stats())
	}
}

func TestFieldModes(t *testing.T) {
	src := `
struct S { int *x; int *y; } A, B;
int z;
void m(void) {
	int *p, *q, *r, *s;
	A.x = &z;
	p = A.x; q = A.y; r = B.x; s = B.y;
}
`
	fb, err := CompileSource("t.c", src, &Options{Mode: FieldBased})
	if err != nil {
		t.Fatal(err)
	}
	anFB, err := fb.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := CompileSource("t.c", src, &Options{Mode: FieldIndependent})
	if err != nil {
		t.Fatal(err)
	}
	anFI, err := fi.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Field-based: p and r get &z; field-independent: p and q get &z.
	if got := names(anFB.PointsToName("r")); len(got) != 1 {
		t.Errorf("field-based pts(r) = %v", got)
	}
	if got := names(anFB.PointsToName("q")); got != nil {
		t.Errorf("field-based pts(q) = %v", got)
	}
	if got := names(anFI.PointsToName("q")); len(got) != 1 {
		t.Errorf("field-independent pts(q) = %v", got)
	}
	if got := names(anFI.PointsToName("r")); got != nil {
		t.Errorf("field-independent pts(r) = %v", got)
	}
}

func TestObjectAccessors(t *testing.T) {
	db, err := CompileSource("t.c", "struct S { int f; } s;\nint g;\nvoid fn(int a) { int loc; loc = a; s.f = g; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, o := range db.Objects() {
		kinds[o.Name()] = o.Kind()
	}
	if kinds["g"] != "global" || kinds["fn"] != "func" || kinds["loc"] != "local" || kinds["S.f"] != "field" {
		t.Errorf("kinds = %v", kinds)
	}
	loc := db.Lookup("loc")[0]
	if loc.FuncName() != "fn" {
		t.Errorf("FuncName = %q", loc.FuncName())
	}
	if !strings.Contains(loc.Pos(), "t.c:") {
		t.Errorf("Pos = %q", loc.Pos())
	}
	var invalid Object
	if invalid.Valid() {
		t.Error("zero Object is valid")
	}
}

func TestStatsTotal(t *testing.T) {
	db, err := CompileSource("t.c", "int x, y, *p; void m(void) { x = y; p = &x; y = *p; *p = x; }", nil)
	if err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Total() != st.Simple+st.Base+st.Store+st.Copy+st.Load || st.Total() != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkNilDatabase(t *testing.T) {
	if _, err := Link(nil); err == nil {
		t.Error("nil database accepted")
	}
}

func TestAblationOptionsAgree(t *testing.T) {
	src := `
int a, b, *p, *q, **pp;
void m(void) { p = &a; pp = &p; *pp = &b; q = *pp; }
`
	db, err := CompileSource("t.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := names(base.PointsToName("q"))
	variants := []*AnalyzeOptions{
		{NoCache: true},
		{NoCycleElim: true},
		{NoDemandLoad: true},
		{NoCache: true, NoCycleElim: true, NoDemandLoad: true},
	}
	for _, opts := range variants {
		an, err := db.Analyze(opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got := names(an.PointsToName("q"))
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%+v: pts(q) = %v, want %v", opts, got, want)
		}
	}
}

func TestContextSensitiveAPI(t *testing.T) {
	db, err := CompileSource("t.c", `
int g1, g2;
int *id(int *v) { return v; }
int *r1, *r2;
void m(void) {
	r1 = id(&g1);
	r2 = id(&g2);
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insensitive baseline conflates the call sites.
	base, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(base.PointsToName("r1")); len(got) != 2 {
		t.Fatalf("baseline pts(r1) = %v", got)
	}
	cs := db.ContextSensitive(nil)
	an, err := cs.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(an.PointsToName("r1")); len(got) != 1 || got[0] != "g1" {
		t.Errorf("context-sensitive pts(r1) = %v", got)
	}
	if got := names(an.PointsToName("r2")); len(got) != 1 || got[0] != "g2" {
		t.Errorf("context-sensitive pts(r2) = %v", got)
	}
}

func TestOfflineVarSubAPI(t *testing.T) {
	db, err := CompileSource("t.c", `
int v;
int *p0, *p1, *p2;
void m(void) { p0 = &v; p1 = p0; p2 = p1; }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping := db.OfflineVarSub()
	if sub.Stats().Total() >= db.Stats().Total() {
		t.Errorf("no shrinkage: %d vs %d", sub.Stats().Total(), db.Stats().Total())
	}
	an, err := sub.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2 := db.Lookup("p2")[0]
	rep := mapping.Map(p2)
	got := names(an.PointsTo(rep))
	if len(got) != 1 || got[0] != "v" {
		t.Errorf("pts(map(p2)) = %v via %s", got, rep.Name())
	}
	// Mapping an invalid object yields an invalid object.
	if mapping.Map(Object{}).Valid() {
		t.Error("invalid object mapped to valid")
	}
}
