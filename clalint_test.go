package cla

// End-to-end tests of the clalint static-analysis client CLI: golden
// callee sets over the funcpointers example, exit-code convention, and
// byte-identical output across -j settings on a generated benchmark.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cla/internal/gen"
)

// runExit runs bin and returns combined output and exit code; it fails
// the test only on start-up errors, not on non-zero exits.
func runExit(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return string(b), ee.ExitCode()
		}
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
	}
	return string(b), 0
}

// funcpointersSource extracts the C program embedded in the funcpointers
// example.
func funcpointersSource(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("examples", "funcpointers", "main.go"))
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	const marker = "const source = `"
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		t.Fatal("embedded C source not found in example")
	}
	rest := data[i+len(marker):]
	j := bytes.IndexByte(rest, '`')
	if j < 0 {
		t.Fatal("unterminated C source in example")
	}
	return string(rest[:j])
}

func TestClalintFuncpointers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clalint")
	work := t.TempDir()
	src := filepath.Join(work, "dispatch.c")
	if err := os.WriteFile(src, []byte(funcpointersSource(t)), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, solver := range []string{"pretrans", "worklist", "steens", "bitvec", "onelevel"} {
		jsonPath := filepath.Join(work, solver+".json")
		out, code := runExit(t, tools["clalint"], "-solver", solver, "-json", jsonPath, src)
		if code != 0 {
			t.Fatalf("%s: exit %d, output:\n%s", solver, code, out)
		}
		if strings.TrimSpace(out) != "" {
			t.Errorf("%s: expected clean report, got:\n%s", solver, out)
		}
		js, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		// The one indirect site through "hot" must reach all three
		// handlers under every solver.
		for _, h := range []string{"handle_read", "handle_write", "handle_close"} {
			if !bytes.Contains(js, []byte(h)) {
				t.Errorf("%s: call graph misses %s:\n%s", solver, h, js)
			}
		}
		if !bytes.Contains(js, []byte(`"indirect": true`)) {
			t.Errorf("%s: no indirect site in call graph:\n%s", solver, js)
		}
	}
}

func TestClalintExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clalint")
	work := t.TempDir()

	clean := filepath.Join(work, "clean.c")
	os.WriteFile(clean, []byte("int g;\nint *p;\nvoid f(void) { p = &g; *p = g; }\n"), 0o644)
	out, code := runExit(t, tools["clalint"], clean)
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Errorf("clean program: exit %d, output %q", code, out)
	}

	buggy := filepath.Join(work, "buggy.c")
	os.WriteFile(buggy, []byte("int g;\nint *p;\nvoid f(void) { *p = g; }\n"), 0o644)
	out, code = runExit(t, tools["clalint"], buggy)
	if code != 1 {
		t.Errorf("buggy program: exit %d, want 1; output %q", code, out)
	}
	if !strings.Contains(out, "[deref]") || !strings.Contains(out, "buggy.c:3") {
		t.Errorf("buggy program diagnostics: %q", out)
	}

	if _, code = runExit(t, tools["clalint"], filepath.Join(work, "missing.c")); code != 2 {
		t.Errorf("missing input: exit %d, want 2", code)
	}
	if _, code = runExit(t, tools["clalint"], "-solver", "nosuch", clean); code != 2 {
		t.Errorf("bad solver: exit %d, want 2", code)
	}
	if _, code = runExit(t, tools["clalint"], "-checks", "nosuch", clean); code != 2 {
		t.Errorf("bad check: exit %d, want 2", code)
	}
}

func TestClalintDatabaseInput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clalint")
	work := t.TempDir()

	db, err := CompileSource("dispatch.c", funcpointersSource(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(work, "prog.cla")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, code := runExit(t, tools["clalint"], "-modref", path)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	// handle_write reads *req which binds to &buf_c at the call site.
	if !strings.Contains(out, "handle_write: MOD {} REF {buf_c}") {
		t.Errorf("modref output:\n%s", out)
	}
}

// TestClalintDeterminism requires byte-identical stdout, DOT and JSON at
// -j 1 and -j 8 over a generated synthetic benchmark.
func TestClalintDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clalint")
	work := t.TempDir()

	code := gen.Generate(gen.Table2[1].Scale(0.05), 7) // small burlap-shaped workload
	srcDir := filepath.Join(work, "src")
	if err := os.Mkdir(srcDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, content := range code.Files {
		if err := os.WriteFile(filepath.Join(srcDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	render := func(jobs string) string {
		dot := filepath.Join(work, "cg"+jobs+".dot")
		js := filepath.Join(work, "cg"+jobs+".json")
		out, exit := runExit(t, tools["clalint"], "-j", jobs, "-modref", "-dot", dot, "-json", js, srcDir)
		if exit == 2 {
			t.Fatalf("-j %s failed:\n%s", jobs, out)
		}
		d, err := os.ReadFile(dot)
		if err != nil {
			t.Fatal(err)
		}
		j, err := os.ReadFile(js)
		if err != nil {
			t.Fatal(err)
		}
		return out + string(d) + string(j)
	}

	one := render("1")
	eight := render("8")
	if one != eight {
		t.Fatalf("clalint output differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", one, eight)
	}
}

// TestClalintExtModel covers the incomplete-program mode end to end:
// -extmodel blanket suppresses the empty-points-to deref false positive,
// enables the externs audit, and -format sarif emits a parseable SARIF
// log carrying the audit. The unsound default must keep today's output.
func TestClalintExtModel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clalint")
	work := t.TempDir()

	inc := filepath.Join(work, "inc.c")
	os.WriteFile(inc, []byte(
		"extern int **ext_table;\nint peek(void) { return **ext_table; }\n"), 0o644)

	// Unsound default: the deref check fires, no externs output.
	out, code := runExit(t, tools["clalint"], inc)
	if code != 1 || !strings.Contains(out, "[deref]") {
		t.Errorf("unsound run: exit %d, output %q", code, out)
	}
	if strings.Contains(out, "[externs]") {
		t.Errorf("unsound run emitted externs diagnostics: %q", out)
	}

	// Blanket model: the false positive is gone, the audit takes over.
	out, code = runExit(t, tools["clalint"], "-extmodel", "blanket", inc)
	if code != 1 {
		t.Errorf("blanket run: exit %d, want 1 (audit findings)", code)
	}
	if strings.Contains(out, "[deref]") {
		t.Errorf("blanket run still reports deref: %q", out)
	}
	if !strings.Contains(out, "[externs]") || !strings.Contains(out, "ext_table") {
		t.Errorf("blanket run missing externs audit: %q", out)
	}

	// SARIF output parses and carries the audit; identical at -j 1 and 8.
	sarif1, code := runExit(t, tools["clalint"], "-extmodel", "escape", "-format", "sarif", "-j", "1", inc)
	if code == 2 {
		t.Fatalf("sarif run failed: %s", sarif1)
	}
	sarif8, _ := runExit(t, tools["clalint"], "-extmodel", "escape", "-format", "sarif", "-j", "8", inc)
	if sarif1 != sarif8 {
		t.Errorf("SARIF output differs between -j 1 and -j 8")
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(sarif1), &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v\n%s", err, sarif1)
	}
	if !strings.Contains(sarif1, "externAudit") || !strings.Contains(sarif1, "\"2.1.0\"") {
		t.Errorf("SARIF output missing audit or version:\n%s", sarif1)
	}

	if _, code = runExit(t, tools["clalint"], "-extmodel", "nosuch", inc); code != 2 {
		t.Errorf("bad model: exit %d, want 2", code)
	}
	if _, code = runExit(t, tools["clalint"], "-format", "nosuch", inc); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
}
