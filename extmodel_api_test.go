package cla

// Public-API tests for incomplete-program analysis: the undefined-external
// inventory, the ExtModel analyze option across in-memory and file-backed
// analyses, and the externs audit + SARIF surface of LintReport.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

const incompleteAPISource = `
extern char *xstrdup(char *s);
extern int *ext_cursor;

char *kept;

char *remember(char *s) {
	kept = xstrdup(s);
	return kept;
}
int read_cursor(void) { return *ext_cursor; }
`

func compileIncomplete(t *testing.T) *Database {
	t.Helper()
	db, err := CompileSource("inc.c", incompleteAPISource, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return db
}

func TestDatabaseUndefined(t *testing.T) {
	db := compileIncomplete(t)
	var funcs, globals []string
	for _, u := range db.Undefined() {
		if u.File == "" || u.Line == 0 {
			t.Errorf("undefined %q has no location: %+v", u.Name, u)
		}
		if u.Func {
			funcs = append(funcs, u.Name)
		} else {
			globals = append(globals, u.Name)
		}
	}
	if len(funcs) != 1 || funcs[0] != "xstrdup" {
		t.Errorf("undefined funcs = %v, want [xstrdup]", funcs)
	}
	if len(globals) != 1 || globals[0] != "ext_cursor" {
		t.Errorf("undefined globals = %v, want [ext_cursor]", globals)
	}
}

func TestAnalyzeExtModel(t *testing.T) {
	db := compileIncomplete(t)

	plain, err := db.Analyze(nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if pts := plain.PointsToName("kept"); len(pts) != 0 {
		t.Errorf("unsound pts(kept) = %v, want empty", pts)
	}

	sound, err := db.Analyze(&AnalyzeOptions{ExtModel: ExtModelBlanket})
	if err != nil {
		t.Fatalf("analyze blanket: %v", err)
	}
	var names []string
	for _, o := range sound.PointsToName("kept") {
		names = append(names, o.Name())
	}
	ext := false
	for _, n := range names {
		if n == "<external>" {
			ext = true
		}
	}
	if !ext {
		t.Errorf("blanket pts(kept) = %v, want <external> included", names)
	}
	// The caller's database is untouched; the analysis sees the extension.
	if n := len(db.Objects()); n != len(plain.Database().Objects()) {
		t.Errorf("original database grew to %d objects", n)
	}
	if len(sound.Database().Objects()) <= len(db.Objects()) {
		t.Errorf("modeled database missing external-world objects")
	}
}

func TestAnalyzeFileExtModel(t *testing.T) {
	db := compileIncomplete(t)
	path := filepath.Join(t.TempDir(), "inc.cla")
	if err := db.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	a, err := AnalyzeFile(path, &AnalyzeOptions{ExtModel: ExtModelEscape})
	if err != nil {
		t.Fatalf("analyze file: %v", err)
	}
	defer a.Close()
	found := false
	for _, o := range a.PointsToName("kept") {
		if o.Name() == "<external>" {
			found = true
		}
	}
	if !found {
		t.Errorf("file-backed escape analysis: pts(kept) misses <external>")
	}
}

func TestLintAuditAndSARIF(t *testing.T) {
	db := compileIncomplete(t)
	a, err := db.Analyze(&AnalyzeOptions{ExtModel: ExtModelBlanket})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rep, err := a.Lint(nil)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	audit := rep.Audit()
	if audit == nil || !audit.Modeled || audit.Model != "blanket" {
		t.Fatalf("audit = %+v, want modeled blanket", audit)
	}
	if len(audit.UndefFuncs) != 1 || len(audit.UndefGlobals) != 1 {
		t.Errorf("audit inventory = %+v, want 1 func / 1 global", audit)
	}
	for _, f := range rep.Findings() {
		if f.Check == "deref" {
			t.Errorf("modeled lint still reports deref finding: %s", f)
		}
	}

	raw, err := rep.SARIF()
	if err != nil {
		t.Fatalf("sarif: %v", err)
	}
	var log map[string]any
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("sarif output is not JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("sarif version = %q", v)
	}
	if !strings.Contains(string(raw), "externAudit") {
		t.Errorf("sarif output missing externAudit property")
	}

	// Unsound analyses keep the audit out of the default lint run.
	plain, err := db.Analyze(nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prep, err := plain.Lint(nil)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if prep.Audit() != nil {
		t.Errorf("unsound default lint produced an audit")
	}
}

func TestParseExtModelAPI(t *testing.T) {
	for name, want := range map[string]ExtModel{
		"": ExtModelUnsound, "unsound": ExtModelUnsound,
		"blanket": ExtModelBlanket, "escape": ExtModelEscape,
	} {
		got, err := ParseExtModel(name)
		if err != nil || got != want {
			t.Errorf("ParseExtModel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseExtModel("bogus"); err == nil {
		t.Errorf("ParseExtModel accepted bogus")
	}
}
