package cla

// End-to-end tests of the command-line toolchain: clagen → clacc → clald →
// claan, driving the built binaries the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the command binaries once into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
	}
	return string(b)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clacc", "clald", "claan")
	work := t.TempDir()

	// Two translation units with a shared header.
	os.WriteFile(filepath.Join(work, "defs.h"),
		[]byte("#ifndef DEFS_H\n#define DEFS_H\nextern int shared;\nextern int *sp;\n#endif\n"), 0o644)
	os.WriteFile(filepath.Join(work, "a.c"),
		[]byte("#include \"defs.h\"\nint shared;\nint *sp;\nvoid init(void) { sp = &shared; }\n"), 0o644)
	os.WriteFile(filepath.Join(work, "b.c"),
		[]byte("#include \"defs.h\"\nint mirror;\nvoid copy(void) { mirror = *sp; }\n"), 0o644)

	// Compile each unit.
	run(t, tools["clacc"], "-I", work,
		filepath.Join(work, "a.c"), filepath.Join(work, "b.c"))
	for _, f := range []string{"a.clo", "b.clo"} {
		if _, err := os.Stat(filepath.Join(work, f)); err != nil {
			t.Fatalf("%s not produced: %v", f, err)
		}
	}

	// Link.
	exe := filepath.Join(work, "prog.cla")
	out := run(t, tools["clald"], "-v", "-o", exe,
		filepath.Join(work, "a.clo"), filepath.Join(work, "b.clo"))
	if !strings.Contains(out, "2 units") {
		t.Errorf("clald -v output: %q", out)
	}

	// Points-to query.
	out = run(t, tools["claan"], "-pts", "sp", exe)
	if !strings.Contains(out, "sp -> {shared}") {
		t.Errorf("claan -pts sp: %q", out)
	}

	// Dependence query: mirror takes *sp which may be shared.
	out = run(t, tools["claan"], "-target", "shared", exe)
	if !strings.Contains(out, "mirror") {
		t.Errorf("claan -target shared: %q", out)
	}

	// Stats.
	out = run(t, tools["claan"], "-stats", exe)
	for _, want := range []string{"pointer vars:", "relations:", "in file:"} {
		if !strings.Contains(out, want) {
			t.Errorf("claan -stats missing %q: %q", want, out)
		}
	}

	// All three solvers answer the same query.
	for _, solver := range []string{"pretrans", "worklist", "steens"} {
		out = run(t, tools["claan"], "-solver", solver, "-pts", "sp", exe)
		if !strings.Contains(out, "shared") {
			t.Errorf("solver %s: %q", solver, out)
		}
	}

	// Ablation flags accepted.
	out = run(t, tools["claan"], "-no-cache", "-no-cycle-elim", "-no-demand-load", "-pts", "sp", exe)
	if !strings.Contains(out, "shared") {
		t.Errorf("ablation flags: %q", out)
	}
}

func TestCLIGen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clagen", "clacc", "clald", "claan")
	work := t.TempDir()

	out := run(t, tools["clagen"], "-profile", "nethack", "-scale", "0.02",
		"-seed", "7", "-o", work)
	if !strings.Contains(out, "wrote") {
		t.Errorf("clagen output: %q", out)
	}
	matches, _ := filepath.Glob(filepath.Join(work, "*.c"))
	if len(matches) == 0 {
		t.Fatal("no .c files generated")
	}

	// Compile the generated tree and analyze it.
	args := []string{"-I", work, "-o", filepath.Join(work, "all.clo")}
	args = append(args, matches...)
	run(t, tools["clacc"], args...)
	exe := filepath.Join(work, "prog.cla")
	run(t, tools["clald"], "-o", exe, filepath.Join(work, "all.clo"))
	out = run(t, tools["claan"], "-stats", exe)
	if !strings.Contains(out, "relations:") {
		t.Errorf("stats: %q", out)
	}

	// List mode.
	out = run(t, tools["clagen"], "-profile", "list")
	if !strings.Contains(out, "lucent") {
		t.Errorf("profile list: %q", out)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claan")
	// Missing database.
	cmd := exec.Command(tools["claan"], "-pts", "x", "/nonexistent.cla")
	if err := cmd.Run(); err == nil {
		t.Error("claan on missing file succeeded")
	}
	// No query flags.
	work := t.TempDir()
	db, err := CompileSource("t.c", "int x;", nil)
	if err != nil {
		t.Fatal(err)
	}
	exe := filepath.Join(work, "t.cla")
	if err := db.WriteFile(exe); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(tools["claan"], exe)
	if err := cmd.Run(); err == nil {
		t.Error("claan without query flags succeeded")
	}
}

func TestCLITransformsAndDot(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claan")
	work := t.TempDir()
	db, err := CompileSource("t.c", `
int v;
int *p0, *p1, *p2;
int *id(int *x) { return x; }
void m(void) {
	p0 = &v;
	p1 = p0;
	p2 = id(p1);
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	exe := filepath.Join(work, "t.cla")
	if err := db.WriteFile(exe); err != nil {
		t.Fatal(err)
	}

	out := run(t, tools["claan"], "-ovs", "-pts", "p1", exe)
	if !strings.Contains(out, "v") {
		t.Errorf("-ovs query: %q", out)
	}
	out = run(t, tools["claan"], "-context", "-pts", "p2", exe)
	if !strings.Contains(out, "v") {
		t.Errorf("-context query: %q", out)
	}

	dot := filepath.Join(work, "pts.dot")
	run(t, tools["claan"], "-dot", dot, exe)
	b, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, "digraph pointsto") || !strings.Contains(s, `"p0" -> "v"`) {
		t.Errorf("dot output:\n%s", s)
	}
}

func TestCLIDependenceTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claan")
	work := t.TempDir()
	db, err := CompileSource("t.c", `
short target, a, b;
void m(void) {
	a = target;
	b = a;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	exe := filepath.Join(work, "t.cla")
	if err := db.WriteFile(exe); err != nil {
		t.Fatal(err)
	}
	out := run(t, tools["claan"], "-target", "target", "-tree", exe)
	for _, want := range []string{"target/short", "└─", "[strong]"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	out = run(t, tools["claan"], "-target", "target", "-tree", "-tree-depth", "1", exe)
	if strings.Contains(out, "b/short") {
		t.Errorf("depth limit ignored:\n%s", out)
	}
}

func TestCLICacheIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clacc")
	work := t.TempDir()
	cacheDir := filepath.Join(work, "cache")
	src := filepath.Join(work, "u.c")
	os.WriteFile(src, []byte("int v, *p;\nvoid m(void) { p = &v; }\n"), 0o644)

	run(t, tools["clacc"], "-cache", cacheDir, src)
	entries1, _ := filepath.Glob(filepath.Join(cacheDir, "*.clo"))
	if len(entries1) != 1 {
		t.Fatalf("cache entries = %d", len(entries1))
	}
	st1, _ := os.Stat(entries1[0])

	// Second run: entry untouched (hit).
	run(t, tools["clacc"], "-cache", cacheDir, src)
	st2, _ := os.Stat(entries1[0])
	if !st1.ModTime().Equal(st2.ModTime()) {
		t.Error("cache entry rewritten on hit")
	}

	// Source change: entry rewritten.
	os.WriteFile(src, []byte("int v, w, *p;\nvoid m(void) { p = &v; w = v; }\n"), 0o644)
	run(t, tools["clacc"], "-cache", cacheDir, src)
	st3, _ := os.Stat(entries1[0])
	if st1.ModTime().Equal(st3.ModTime()) && st1.Size() == st3.Size() {
		t.Error("cache entry not refreshed after edit")
	}
}
