package cla

// Tests that pin the paper's qualitative claims at test scale, so a
// regression that silently destroys a reproduction target fails CI rather
// than only showing up in benchmark numbers.

import (
	"testing"

	"cla/internal/bench"
	"cla/internal/core"
	"cla/internal/gen"
	"cla/internal/pts"
	"cla/internal/pts/steens"
	"cla/internal/pts/worklist"
)

const claimScale = 0.1

func claimWorkload(t *testing.T, name string) *bench.Workload {
	t.Helper()
	p, ok := gen.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	w, err := bench.BuildWorkload(p, claimScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// Claim (Section 4, Table 3): demand loading reads only a fraction of the
// database, and the discard strategy keeps only complex assignments in
// core.
func TestClaimDemandLoading(t *testing.T) {
	w := claimWorkload(t, "gcc")
	res, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m.Loaded >= m.InFile {
		t.Errorf("loaded %d of %d: demand loading broken", m.Loaded, m.InFile)
	}
	if float64(m.Loaded) > 0.7*float64(m.InFile) {
		t.Errorf("loaded fraction %d/%d exceeds the paper's shape (~30-45%%)",
			m.Loaded, m.InFile)
	}
	if m.InCore >= m.Loaded {
		t.Errorf("in-core %d >= loaded %d: discard strategy broken", m.InCore, m.Loaded)
	}
}

// Claim (Table 4): field-independent analysis produces far more relations
// than field-based on struct-heavy code.
func TestClaimFieldBasedBeatsFieldIndependent(t *testing.T) {
	w := claimWorkload(t, "gimp")
	fb, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fi, err := core.Solve(pts.NewMemSource(w.FieldIndependent), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rb, ri := fb.Metrics().Relations, fi.Metrics().Relations
	if ri < 2*rb {
		t.Errorf("field-independent relations %d not >> field-based %d", ri, rb)
	}
}

// Claim (Section 5): caching and cycle elimination together dominate every
// degraded configuration.
func TestClaimAblationOrdering(t *testing.T) {
	w := claimWorkload(t, "gimp")
	rows, err := bench.RunAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	full := rows[0].Time
	for _, r := range rows[1:] {
		if r.Time < full {
			t.Errorf("config %q (%v) beat the full configuration (%v)",
				r.Config, r.Time, full)
		}
	}
	// At this scale the naive configuration must already be measurably
	// slower (the paper reports >50,000x at full gimp scale).
	if rows[3].Time < 2*full {
		t.Errorf("naive config only %.1fx slower; expected a clear gap",
			float64(rows[3].Time)/float64(full))
	}
}

// Claim (Sections 3/6): unification is less precise than subset analysis;
// the two subset solvers agree exactly.
func TestClaimPrecisionGap(t *testing.T) {
	w := claimWorkload(t, "vortex")
	sub, err := core.Solve(pts.NewMemSource(w.FieldBased), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl, err := worklist.Solve(pts.NewMemSource(w.FieldBased))
	if err != nil {
		t.Fatal(err)
	}
	uni, err := steens.Solve(pts.NewMemSource(w.FieldBased))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Metrics().Relations != wl.Metrics().Relations {
		t.Errorf("subset solvers disagree: %d vs %d",
			sub.Metrics().Relations, wl.Metrics().Relations)
	}
	if uni.Metrics().Relations < 2*sub.Metrics().Relations {
		t.Errorf("unification relations %d not >> subset %d",
			uni.Metrics().Relations, sub.Metrics().Relations)
	}
}

// Claim (Table 2): the generated workloads carry the published assignment
// budgets for the exactly-budgeted kinds.
func TestClaimTable2Budgets(t *testing.T) {
	for _, name := range []string{"nethack", "vortex", "lucent"} {
		p, _ := gen.ProfileByName(name)
		w := claimWorkload(t, name)
		row := bench.Table2Row(w)
		scaled := p.Scale(claimScale)
		if row.Counts[1] != scaled.Base { // x = &y is budgeted exactly
			t.Errorf("%s: base = %d, budget %d", name, row.Counts[1], scaled.Base)
		}
	}
}
