package cla

// Determinism tests for the instrumentation layer: the -stats report and
// the -trace export of every CLI must be identical at -j 1 and -j 8 once
// run-dependent figures (wall times, allocation deltas, trace
// timestamps, worker-pool counters) are normalized away. This pins the
// track model: parallel spans are keyed by work index, not by worker.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	durRE   = regexp.MustCompile(`\d+\.\d{6}s`)
	bytesRE = regexp.MustCompile(`\+[0-9.]+(B|KB|MB)`)
	tsRE    = regexp.MustCompile(`"(ts|dur)":[0-9.e+-]+`)
	allocRE = regexp.MustCompile(`"alloc_bytes":[0-9]+`)
	// -j >= 2 selects the phase-parallel wave fixpoint, a different (but
	// equally deterministic) schedule than the -j 1 reference, so the
	// schedule-dependent solver counters legitimately differ between the
	// two modes. The analysis outcome rows (pointer vars, relations, in
	// core, loaded, in file) stay byte-identical and are NOT normalized.
	schedRowRE = regexp.MustCompile(`(?m)^(passes:|unifications:|cache hits:|cache misses:|edges added:)(\s+)\d+$`)
	schedCtrRE = regexp.MustCompile(`(?m)^(\s*)(solver\.(passes|unifications|cache_hits|cache_misses|edges_added)|solve\.[a-z_]+)(\s+)\S+$`)
)

// schedCounters lists the trace counter names that depend on which solve
// schedule (sequential vs wave) ran.
var schedCounters = []string{
	"solver.passes", "solver.unifications", "solver.cache_hits",
	"solver.cache_misses", "solver.edges_added", "solve.",
}

// normalizeStats strips wall-clock durations, allocation deltas and the
// schedule-dependent solver counters from a -stats report, leaving the
// structure and every outcome count.
func normalizeStats(s string) string {
	s = durRE.ReplaceAllString(s, "DUR")
	s = bytesRE.ReplaceAllString(s, "+N")
	s = schedRowRE.ReplaceAllString(s, "${1}${2}N")
	s = schedCtrRE.ReplaceAllString(s, "${1}${2}${4}N")
	return s
}

// normalizeTrace strips timestamps, durations, allocation figures and
// the jobs-dependent pool.* and solve-schedule counter lines from a
// Chrome trace.
func normalizeTrace(s string) string {
	var keep []string
line:
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, `"pool.`) {
			continue
		}
		if strings.Contains(line, "heap_peak_bytes") {
			// Heap high-water gauges are run-dependent, like wall times.
			continue
		}
		for _, c := range schedCounters {
			if strings.Contains(line, `"`+c) {
				continue line
			}
		}
		keep = append(keep, line)
	}
	s = strings.Join(keep, "\n")
	s = tsRE.ReplaceAllString(s, `"$1":0`)
	s = allocRE.ReplaceAllString(s, `"alloc_bytes":0`)
	return s
}

// writeObsProject lays down a small multi-unit C project.
func writeObsProject(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"defs.h": "#ifndef DEFS_H\n#define DEFS_H\nextern int g;\nextern int *p;\nextern int **q;\nvoid f(void);\nvoid h(void);\n#endif\n",
		"a.c":    "#include \"defs.h\"\nint g;\nint *p;\nvoid f(void) { p = &g; }\n",
		"b.c":    "#include \"defs.h\"\nint **q;\nvoid h(void) { q = &p; *q = p; }\n",
		"c.c":    "#include \"defs.h\"\nstatic int *r;\nvoid k(void) { r = *q; p = r; }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runObs runs a tool accepting exit status 0 or 1 (clalint reports
// findings via the exit code).
func runObs(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
		}
	}
	return string(b)
}

func TestCLIObsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "clacc", "claan", "clalint")
	dir := writeObsProject(t)
	cs := []string{filepath.Join(dir, "a.c"), filepath.Join(dir, "b.c"), filepath.Join(dir, "c.c")}

	cases := []struct {
		name string
		argv func(jobs int, trace string) (string, []string)
	}{
		{"clacc", func(jobs int, trace string) (string, []string) {
			out := filepath.Join(t.TempDir(), "out.clo")
			args := []string{"-j", fmt.Sprint(jobs), "-stats", "-trace", trace, "-I", dir, "-o", out}
			return tools["clacc"], append(args, cs...)
		}},
		{"claan", func(jobs int, trace string) (string, []string) {
			return tools["claan"], []string{"-j", fmt.Sprint(jobs), "-stats", "-trace", trace, dir}
		}},
		{"clalint", func(jobs int, trace string) (string, []string) {
			return tools["clalint"], []string{"-j", fmt.Sprint(jobs), "-stats", "-trace", trace, dir}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			type snap struct{ stats, trace string }
			var snaps []snap
			for _, jobs := range []int{1, 8} {
				trace := filepath.Join(t.TempDir(), "trace.json")
				bin, args := tc.argv(jobs, trace)
				stats := runObs(t, bin, args...)
				tb, err := os.ReadFile(trace)
				if err != nil {
					t.Fatalf("-j %d wrote no trace: %v", jobs, err)
				}
				if !json.Valid(tb) {
					t.Fatalf("-j %d trace is not valid JSON", jobs)
				}
				if !strings.Contains(string(tb), `"traceEvents"`) {
					t.Fatalf("-j %d trace missing traceEvents array", jobs)
				}
				snaps = append(snaps, snap{normalizeStats(stats), normalizeTrace(string(tb))})
			}
			if snaps[0].stats != snaps[1].stats {
				t.Errorf("-stats differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
					snaps[0].stats, snaps[1].stats)
			}
			if snaps[0].trace != snaps[1].trace {
				t.Errorf("-trace differs between -j1 and -j8:\n--- j1 ---\n%s\n--- j8 ---\n%s",
					snaps[0].trace, snaps[1].trace)
			}
		})
	}
}

// TestCLIObsReportShape spot-checks the claan -stats report sections on
// a directory input: phases, database, analysis, demand loading.
func TestCLIObsReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t, "claan")
	dir := writeObsProject(t)
	out := runObs(t, tools["claan"], "-stats", dir)
	for _, want := range []string{
		"== phases ==", "compile", "analyze",
		"== database ==", "== analysis (pre-transitive) ==", "pointer vars:",
		"== demand loading ==", "blocks loaded", "bytes loaded",
		"== counters ==", "load.entries.loaded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("claan -stats missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pool.") {
		t.Errorf("claan -stats leaks jobs-dependent pool counters:\n%s", out)
	}
}
