package cla

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cla/internal/claerr"
)

// TestSnapshotRoundTrip saves a solved analysis and reopens it from the
// .snap file; every query answer must be byte-identical.
func TestSnapshotRoundTrip(t *testing.T) {
	an := buildServeAnalysis(t)
	path := filepath.Join(t.TempDir(), "serve.snap")
	if err := an.SaveSnapshot(path, nil); err != nil {
		t.Fatalf("save: %v", err)
	}
	reopened, err := OpenSnapshot(path, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer reopened.Close()

	queries := []Query{
		{Kind: "pointsto", Name: "p"},
		{Kind: "alias", X: "p", Y: "q"},
		{Kind: "callgraph"},
		{Kind: "modref", Func: "set"},
		{Kind: "dependence", Target: "g"},
		{Kind: "lint"},
	}
	live, err := an.Query(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := reopened.Query(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range live {
		lb, _ := json.Marshal(live[i])
		sb, _ := json.Marshal(snap[i])
		if string(lb) != string(sb) {
			t.Errorf("query %d (%s) differs:\n live %s\n snap %s",
				i, queries[i].Kind, lb, sb)
		}
	}
	if got, want := reopened.Metrics(), an.Metrics(); got != want {
		t.Errorf("metrics differ: %+v != %+v", got, want)
	}
	if reopened.alg != an.alg || reopened.ext != an.ext {
		t.Errorf("configuration not restored: alg %v/%v ext %v/%v",
			reopened.alg, an.alg, reopened.ext, an.ext)
	}
}

// TestSnapshotStaleSource asserts the recorded-source check fires with
// exit code 3 after an edit, and that SkipVerify bypasses it.
func TestSnapshotStaleSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.c")
	code := "int g; int *p; void f(void) { p = &g; }\n"
	if err := os.WriteFile(src, []byte(code), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := CompileFile(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a.snap")
	if err := an.SaveSnapshot(path, &SnapshotOptions{Sources: []string{src}}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(path, nil); err != nil {
		t.Fatalf("fresh open: %v", err)
	}
	if err := os.WriteFile(src, []byte(code+"int extra;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSnapshot(path, nil)
	if !errors.Is(err, claerr.ErrStale) {
		t.Fatalf("edited source: got %v, want ErrStale", err)
	}
	if got := claerr.ExitCode(err); got != 3 {
		t.Fatalf("ExitCode = %d, want 3", got)
	}
	if _, err := OpenSnapshot(path, &OpenSnapshotOptions{SkipVerify: true}); err != nil {
		t.Fatalf("SkipVerify open: %v", err)
	}
}
