package cla

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

var wsTree = map[string]string{
	"ws.h": `
void *malloc(unsigned long);
struct box { int *slot; };
extern struct box shared_box;
`,
	"alpha.c": `
#include "ws.h"
struct box shared_box;
int alpha_val;
void alpha_store(void) { shared_box.slot = &alpha_val; }
`,
	"beta.c": `
#include "ws.h"
int beta_val;
void beta_store(void) { shared_box.slot = &beta_val; }
`,
}

func writeWsTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func pointsToNames(a *Analysis, name string) string {
	var out []string
	for _, o := range a.PointsToName(name) {
		out = append(out, o.Name())
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func TestWorkspaceMatchesOneShotPipeline(t *testing.T) {
	dir := t.TempDir()
	writeWsTree(t, dir, wsTree)

	w, err := OpenWorkspace(context.Background(), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ws := w.Analysis()
	if ws.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", ws.Generation())
	}

	db, err := CompileDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := db.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Generation() != 1 {
		t.Fatalf("one-shot generation = %d, want 1", oneShot.Generation())
	}
	for _, name := range []string{"shared_box", "box.slot"} {
		if got, want := pointsToNames(ws, name), pointsToNames(oneShot, name); got != want {
			t.Fatalf("workspace pts(%s) = %q, one-shot = %q", name, got, want)
		}
	}
}

func TestWorkspaceUpdateYieldsNewGeneration(t *testing.T) {
	dir := t.TempDir()
	writeWsTree(t, dir, wsTree)
	w, err := OpenWorkspace(context.Background(), dir, &WorkspaceOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	gen1 := w.Analysis()

	path := filepath.Join(dir, "beta.c")
	edited := `
#include "ws.h"
int beta_val;
int gamma_val;
void beta_store(void) { shared_box.slot = &gamma_val; }
`
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	an, err := w.Update(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	if an.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", an.Generation())
	}
	if got := pointsToNames(an, "box.slot"); !strings.Contains(got, "gamma_val") {
		t.Fatalf("new generation pts = %q, want gamma_val", got)
	}
	// The old snapshot is pinned: still generation 1, still the old set.
	if gen1.Generation() != 1 {
		t.Fatalf("old snapshot generation = %d", gen1.Generation())
	}
	if got := pointsToNames(gen1, "box.slot"); strings.Contains(got, "gamma_val") {
		t.Fatalf("old generation leaked the edit: %q", got)
	}

	// No-op refresh: same Analysis pointer back.
	again, err := w.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again != an {
		t.Fatal("no-op refresh returned a new Analysis")
	}
}

func TestWorkspaceWatch(t *testing.T) {
	dir := t.TempDir()
	writeWsTree(t, dir, wsTree)
	w, err := OpenWorkspace(context.Background(), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan *Analysis, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Watch(ctx, 20*time.Millisecond, func(a *Analysis, err error) {
			if err == nil {
				got <- a
			}
		})
	}()

	time.Sleep(30 * time.Millisecond)
	edited := `
#include "ws.h"
int beta_val;
int delta_val;
void beta_store(void) { shared_box.slot = &delta_val; }
`
	if err := os.WriteFile(filepath.Join(dir, "beta.c"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-got:
		if a.Generation() != 2 {
			t.Fatalf("watched generation = %d, want 2", a.Generation())
		}
		if got := pointsToNames(a, "box.slot"); !strings.Contains(got, "delta_val") {
			t.Fatalf("watched analysis pts = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never delivered the edit")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("watch did not stop on cancel")
	}
}
