// Quickstart: compile a C fragment, run points-to analysis, and query
// results — the paper's Figure 3/4 examples end to end.
package main

import (
	"fmt"
	"log"

	"cla"
)

// The program from Figure 4 of the paper, plus Figure 3's derivation
// (z = &y; *z = &x gives y -> &x).
const source = `
int x, y, z, *p, *q;
int **zz;

void figure4(void) {
	x = y;
	x = z;
	*p = z;
	p = q;
	q = &y;
	x = *p;
}

void figure3(void) {
	zz = &q;
	*zz = &x;
}
`

func main() {
	// Compile: parse the unit and extract primitive assignments into an
	// object database.
	db, err := cla.CompileSource("a.c", source, nil)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("database: %d symbols, %d assignments (x=y:%d x=&y:%d *x=y:%d *x=*y:%d x=*y:%d)\n",
		st.Symbols, st.Total(), st.Simple, st.Base, st.Store, st.Copy, st.Load)

	// Analyze: the pre-transitive solver with caching, cycle elimination
	// and demand loading.
	an, err := db.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"p", "q", "zz"} {
		fmt.Printf("pts(%s) = %v\n", name, objectNames(an.PointsToName(name)))
	}

	// Figure 3's derived fact: q (the paper's y) points to x.
	fmt.Printf("derived: q -> %v (Figure 3: y -> &x)\n",
		objectNames(an.PointsToName("q")))

	// Aliasing query.
	p := db.Lookup("p")[0]
	q := db.Lookup("q")[0]
	fmt.Printf("mayAlias(p, q) = %v\n", an.MayAlias(p, q))

	m := an.Metrics()
	fmt.Printf("metrics: %d pointer vars, %d relations, %d loaded of %d in file\n",
		m.PointerVars, m.Relations, m.Loaded, m.InFile)
}

func objectNames(objs []cla.Object) []string {
	var out []string
	for _, o := range objs {
		out = append(out, o.Name())
	}
	return out
}
