// Fieldsensitivity contrasts the two struct treatments of Section 3 on
// the paper's own example: field-based (Andersen's choice, and this
// system's default) versus field-independent (used by most other
// points-to systems of the era). Neither dominates: each reports flows
// the other misses.
package main

import (
	"fmt"
	"log"

	"cla"
)

// The example from Section 3 of the paper.
const source = `
struct S { int *x; int *y; } A, B;
int z;

void main_(void) {
	int *p, *q, *r, *s;
	A.x = &z;   /* field-based: assigns to "S.x"; field-independent: to A */
	p = A.x;    /* p gets &z in both approaches */
	q = A.y;    /* field-independent: q gets &z */
	r = B.x;    /* field-based: r gets &z */
	s = B.y;    /* in neither approach does s get &z */
}
`

func run(mode cla.StructMode, label string) {
	db, err := cla.CompileSource("s.c", source, &cla.Options{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", label)
	for _, name := range []string{"p", "q", "r", "s"} {
		var names []string
		for _, o := range an.PointsToName(name) {
			names = append(names, o.Name())
		}
		fmt.Printf("pts(%s) = %v\n", name, names)
	}
	m := an.Metrics()
	fmt.Printf("pointer vars: %d, relations: %d\n\n", m.PointerVars, m.Relations)
}

func main() {
	run(cla.FieldBased, "field-based (the paper's default)")
	run(cla.FieldIndependent, "field-independent (most other systems)")
	fmt.Println("field-based finds r = B.x -> z (same field, different object);")
	fmt.Println("field-independent finds q = A.y -> z (same object, different field).")
}
