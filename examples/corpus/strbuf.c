/* Growable byte buffer in the idiom of git's strbuf: amortized doubling,
 * detach hands the storage to the caller. */
#include "corpus.h"

void sb_init(struct strbuf *sb)
{
	sb->data = 0;
	sb->len = 0;
	sb->cap = 0;
}

static void sb_grow(struct strbuf *sb, size_t extra)
{
	size_t want = sb->len + extra;
	char *next;

	if (want <= sb->cap)
		return;
	if (sb->cap == 0)
		sb->cap = 16;
	while (sb->cap < want)
		sb->cap = sb->cap * 2;
	next = realloc(sb->data, sb->cap);
	if (!next)
		abort();
	sb->data = next;
}

void sb_putc(struct strbuf *sb, char c)
{
	sb_grow(sb, 2);
	sb->data[sb->len] = c;
	sb->len = sb->len + 1;
	sb->data[sb->len] = 0;
}

void sb_puts(struct strbuf *sb, const char *s)
{
	size_t n = strlen(s);

	sb_grow(sb, n + 1);
	memcpy(sb->data + sb->len, s, n + 1);
	sb->len = sb->len + n;
}

char *sb_detach(struct strbuf *sb)
{
	char *out = sb->data;

	sb_init(sb);
	return out;
}
