/* String interning over a fixed open-addressing table: equal strings
 * share one arena copy, so callers may compare interned pointers. */
#include "corpus.h"

#define TABLE_SIZE 256

static const char *table[TABLE_SIZE];
static size_t count;

static size_t hash(const char *s)
{
	size_t h = 5381;

	while (*s) {
		h = h * 33 + (size_t)*s;
		s = s + 1;
	}
	return h;
}

const char *intern(const char *s)
{
	size_t i = hash(s) % TABLE_SIZE;

	while (table[i]) {
		if (strcmp(table[i], s) == 0)
			return table[i];
		i = (i + 1) % TABLE_SIZE;
	}
	if (count + 1 >= TABLE_SIZE)
		abort();
	table[i] = arena_strdup(s);
	count = count + 1;
	return table[i];
}

size_t intern_count(void)
{
	return count;
}
