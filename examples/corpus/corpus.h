/* Shared declarations for the conformance corpus.
 *
 * The libc surface is declared but never defined: the corpus is an
 * intentionally incomplete program, the shape CLA's extern models
 * (-extmodel blanket|escape) exist for.  Everything else is the corpus's
 * own cross-file API.
 */
#ifndef CORPUS_H
#define CORPUS_H

typedef unsigned long size_t;

/* Undefined external code: the allocator and string routines. */
extern void *malloc(size_t n);
extern void *realloc(void *p, size_t n);
extern void *calloc(size_t n, size_t sz);
extern void free(void *p);
extern void *memcpy(void *dst, const void *src, size_t n);
extern void *memset(void *p, int c, size_t n);
extern size_t strlen(const char *s);
extern int strcmp(const char *a, const char *b);
extern char *strchr(const char *s, int c);
extern void abort(void);
extern char *getenv(const char *name);

/* strbuf.c: growable byte buffer. */
struct strbuf {
	char *data;
	size_t len, cap;
};
void sb_init(struct strbuf *sb);
void sb_putc(struct strbuf *sb, char c);
void sb_puts(struct strbuf *sb, const char *s);
char *sb_detach(struct strbuf *sb);

/* arena.c: bump allocator with a malloc spill path. */
void *arena_alloc(size_t n);
char *arena_strdup(const char *s);
void arena_reset(void);

/* intern.c: string interning over an open-addressing table. */
const char *intern(const char *s);
size_t intern_count(void);

/* list.c: intrusive doubly-linked list. */
struct link {
	struct link *prev, *next;
};
void list_init(struct link *head);
void list_push(struct link *head, struct link *node);
struct link *list_pop(struct link *head);

/* log.c: leveled logging through a pluggable sink. */
typedef void (*log_sink)(int level, const char *msg);
void log_set_sink(log_sink fn);
void log_emit(int level, const char *msg);

#endif /* CORPUS_H */
