/* Word index: splits lines into interned words and keeps per-word hit
 * counts on an intrusive list.  Exercises struct fields, the interner,
 * strbuf composition and list traversal together. */
#include "corpus.h"

struct hit {
	struct link link;
	const char *word;
	int count;
};

static struct link hits;
static int ready;

static struct hit *find(const char *word)
{
	struct link *l;

	for (l = hits.next; l != &hits; l = l->next) {
		struct hit *h = (struct hit *)l;
		if (h->word == word)
			return h;
	}
	return 0;
}

void index_word(const char *raw)
{
	const char *word = intern(raw);
	struct hit *h;

	if (!ready) {
		list_init(&hits);
		ready = 1;
	}
	h = find(word);
	if (!h) {
		h = arena_alloc(sizeof(struct hit));
		h->word = word;
		h->count = 0;
		list_push(&hits, &h->link);
	}
	h->count = h->count + 1;
}

void index_line(const char *line)
{
	struct strbuf word;
	const char *p;

	sb_init(&word);
	for (p = line; *p; p = p + 1) {
		if (*p == ' ' || *p == '\t') {
			if (word.len > 0) {
				index_word(word.data);
				sb_init(&word);
			}
			continue;
		}
		sb_putc(&word, *p);
	}
	if (word.len > 0)
		index_word(word.data);
}

int index_hits(const char *raw)
{
	struct hit *h;

	if (!ready)
		return 0;
	h = find(intern(raw));
	if (!h)
		return 0;
	return h->count;
}
