/* Bump allocator over a static block, spilling oversized requests to
 * malloc.  Spilled blocks are chained so arena_reset can return them. */
#include "corpus.h"

#define ARENA_SIZE 4096

static char block[ARENA_SIZE];
static size_t used;

struct spill {
	struct spill *next;
	void *mem;
};
static struct spill *spills;

void *arena_alloc(size_t n)
{
	void *out;

	n = (n + 7) & ~(size_t)7;
	if (used + n <= ARENA_SIZE) {
		out = block + used;
		used = used + n;
		return out;
	}
	out = malloc(n);
	if (!out)
		abort();
	{
		struct spill *s = malloc(sizeof(struct spill));
		if (!s)
			abort();
		s->mem = out;
		s->next = spills;
		spills = s;
	}
	return out;
}

char *arena_strdup(const char *s)
{
	size_t n = strlen(s) + 1;
	char *out = arena_alloc(n);

	memcpy(out, s, n);
	return out;
}

void arena_reset(void)
{
	while (spills) {
		struct spill *s = spills;
		spills = s->next;
		free(s->mem);
		free(s);
	}
	used = 0;
	memset(block, 0, ARENA_SIZE);
}
