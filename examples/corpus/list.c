/* Intrusive circular doubly-linked list, kernel style: the head is a
 * sentinel and nodes live inside their owning structs. */
#include "corpus.h"

void list_init(struct link *head)
{
	head->prev = head;
	head->next = head;
}

void list_push(struct link *head, struct link *node)
{
	node->prev = head->prev;
	node->next = head;
	head->prev->next = node;
	head->prev = node;
}

struct link *list_pop(struct link *head)
{
	struct link *node = head->next;

	if (node == head)
		return 0;
	head->next = node->next;
	node->next->prev = head;
	node->prev = 0;
	node->next = 0;
	return node;
}
