/* Leveled logging through a pluggable sink.  The default sink hands the
 * message to an undefined external writer, so under -extmodel every
 * logged string escapes to the external world -- exactly what the
 * soundness audit should report. */
#include "corpus.h"

extern void ext_write(int fd, const char *msg, size_t n);
extern void (*ext_fatal_handler)(int level, const char *msg);

static int threshold = 1;
static log_sink sink;

static void default_sink(int level, const char *msg)
{
	ext_write(2, msg, strlen(msg));
	(void)level;
}

void log_set_sink(log_sink fn)
{
	sink = fn;
}

void log_emit(int level, const char *msg)
{
	log_sink fn = sink;

	if (level < threshold)
		return;
	if (!fn)
		fn = default_sink;
	fn(level, msg);
}

/* Fatal errors dispatch through a handler installed by the (undefined)
 * embedding runtime before giving up. */
void log_fatal(const char *msg)
{
	if (ext_fatal_handler)
		ext_fatal_handler(3, msg);
	abort();
}
