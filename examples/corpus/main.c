/* Driver: reads "input" from an undefined external source, feeds the
 * word index, and reports through the logger.  The only definitions of
 * several pointers flow in from external code, so the unsound default
 * analysis sees empty points-to sets here. */
#include "corpus.h"

extern char *ext_readline(void *stream);
extern void *ext_open(const char *path);
extern void ext_close(void *stream);
extern char **ext_argv;

void index_line(const char *line);
int index_hits(const char *raw);

static void quiet_sink(int level, const char *msg)
{
	(void)level;
	(void)msg;
}

int run(const char *path)
{
	void *stream = ext_open(path);
	char *line;
	int lines = 0;

	if (!stream)
		return -1;
	if (getenv("CORPUS_QUIET"))
		log_set_sink(quiet_sink);
	while ((line = ext_readline(stream)) != 0) {
		index_line(line);
		lines = lines + 1;
	}
	ext_close(stream);
	log_emit(1, "indexing done");
	arena_reset();
	return lines;
}

int query(const char *word)
{
	int n = index_hits(word);

	if (n == 0)
		log_emit(2, "word not seen");
	return n;
}

/* The program name lives in externally-owned argv storage: its only
 * definition flows in from the runtime, so the unsound analysis sees an
 * empty points-to set at this dereference. */
const char *progname(void)
{
	if (!ext_argv || !*ext_argv)
		return "corpus";
	return *ext_argv;
}
