// Typemigration demonstrates the tool the paper was built for (Section 2):
// given a legacy code base and a proposed type change — here widening a
// sequence counter from short to int — find every object whose type must
// change with it, ranked by how strongly each dependence chain preserves
// the value's range, and show how a user prunes noise with non-targets.
package main

import (
	"fmt"
	"log"

	"cla"
)

// A miniature "legacy telecom" code base in three translation units.
// seq_next's counter must grow from short to int; anything that stores a
// value derived from it risks silent narrowing.
const protoC = `
short current_seq;                 /* the migration target */
short last_acked;
short window[8];

struct packet { short seq; short len; char *payload; };
struct stats { long total; short worst_seq; };

struct stats g_stats;

short seq_next(void) {
	current_seq = current_seq + 1;
	return current_seq;
}

void send_packet(struct packet *p, char *data) {
	p->seq = seq_next();
	p->payload = data;
	p->len = 0;
}

void ack(short s) {
	last_acked = s;
	window[0] = s;
}
`

const statsC = `
struct packet { short seq; short len; char *payload; };
struct stats { long total; short worst_seq; };
extern struct stats g_stats;

void record(struct packet *p) {
	short s;
	s = p->seq;
	if (s > g_stats.worst_seq)
		g_stats.worst_seq = s;
	g_stats.total = g_stats.total + 1;
}
`

const uiC = `
extern short current_seq;
short display_seq;
short blink_phase;

void refresh(void) {
	display_seq = current_seq;
	blink_phase = !current_seq;   /* no range dependence */
}
`

func main() {
	units := map[string]string{"proto.c": protoC, "stats.c": statsC, "ui.c": uiC}
	var dbs []*cla.Database
	for _, name := range []string{"proto.c", "stats.c", "ui.c"} {
		db, err := cla.CompileSource(name, units[name], nil)
		if err != nil {
			log.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	linked, err := cla.Link(dbs...)
	if err != nil {
		log.Fatal(err)
	}
	an, err := linked.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== proposed change: short current_seq -> int ===")
	deps, err := an.DependenceByName("current_seq", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d dependent objects:\n", len(deps))
	for _, d := range deps {
		class := "weak  "
		if d.Strong {
			class = "strong"
		}
		fmt.Printf("  [%s d=%d] %s\n", class, d.Distance, d.Chain)
	}

	// The paper's non-target mechanism: the user knows g_stats.total is a
	// long accumulator that never narrows; cutting the stats sink focuses
	// the report.
	fmt.Println("\n=== with non-target stats.worst_seq ===")
	var nonTargets []cla.Object
	for _, o := range linked.Lookup("stats.worst_seq") {
		nonTargets = append(nonTargets, o)
	}
	deps, err = an.DependenceByName("current_seq", &cla.DependOptions{NonTargets: nonTargets})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range deps {
		fmt.Printf("  %s/%s\n", d.Object.Name(), d.Object.Type())
	}
}
