/* The funcpointers example program as a standalone translation unit, so
 * scripted clients (the CI claserve smoke) can serve it from disk. Keep
 * in sync with the `source` constant in ../main.go. */
int buf_a, buf_b, buf_c;

int *handle_read(int *req)  { return req; }
int *handle_write(int *req) { buf_a = *req; return &buf_a; }
int *handle_close(int *req) { return &buf_b; }

int *(*dispatch[3])(int *);
int *(*hot)(int *);

void install(void) {
	dispatch[0] = handle_read;
	dispatch[1] = handle_write;
	dispatch[2] = &handle_close;
}

int *serve(int which) {
	int *result;
	hot = dispatch[which];
	result = hot(&buf_c);
	return result;
}
