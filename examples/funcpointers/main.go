// Funcpointers demonstrates indirect-call resolution: a dispatch table of
// handler functions is invoked through a function pointer, and the
// analysis links standardized argument/return variables at analysis time
// (Section 4 of the paper), resolving which handlers each call site can
// reach and where their arguments flow.
package main

import (
	"fmt"
	"log"

	"cla"
)

const source = `
int buf_a, buf_b, buf_c;

int *handle_read(int *req)  { return req; }
int *handle_write(int *req) { buf_a = *req; return &buf_a; }
int *handle_close(int *req) { return &buf_b; }

int *(*dispatch[3])(int *);
int *(*hot)(int *);

void install(void) {
	dispatch[0] = handle_read;
	dispatch[1] = handle_write;
	dispatch[2] = &handle_close;
}

int *serve(int which) {
	int *result;
	hot = dispatch[which];
	result = hot(&buf_c);
	return result;
}
`

func main() {
	db, err := cla.CompileSource("dispatch.c", source, nil)
	if err != nil {
		log.Fatal(err)
	}
	an, err := db.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string) {
		var names []string
		for _, o := range an.PointsToName(name) {
			names = append(names, o.Name())
		}
		fmt.Printf("pts(%-9s) = %v\n", name, names)
	}

	// The dispatch table holds all three handlers; so does the hot slot.
	show("dispatch")
	show("hot")

	// The indirect call hot(&buf_c) binds &buf_c to every reachable
	// handler's parameter...
	show("req")

	// ...and serve's result collects every handler's return value.
	show("result")

	// The analyzer did this by loading each handler's argument/return
	// record when the handler reached pts(hot) — no call graph was built
	// in advance.
	m := an.Metrics()
	fmt.Printf("solved in %d passes, %d edges\n", m.Passes, m.Relations)
}
