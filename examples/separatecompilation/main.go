// Separatecompilation demonstrates the CLA architecture itself: each
// translation unit is compiled to an indexed object database (.clo), the
// databases are linked into one "executable" database with the same
// format, and the analysis then demand-loads just the blocks it needs —
// re-compiling nothing when a query changes, which is what makes
// interactive tools on million-line code bases feasible (Section 4).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cla"
)

var units = map[string]string{
	// A little allocator module.
	"alloc.c": `
void *malloc(unsigned long);
int pool_hits;
char *arena_alloc(unsigned long n) {
	char *p;
	p = malloc(n);
	pool_hits = pool_hits + 1;
	return p;
}`,
	// A string table built on the allocator.
	"strtab.c": `
char *arena_alloc(unsigned long);
char *table[64];
int table_len;
char *intern(unsigned long len) {
	char *s;
	s = arena_alloc(len);
	table[table_len] = s;
	return s;
}`,
	// A client that never touches the allocator directly.
	"client.c": `
char *intern(unsigned long);
char *name, *alias;
void record(void) {
	name = intern(16);
	alias = name;
}`,
}

func main() {
	dir, err := os.MkdirTemp("", "cla-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// COMPILE: each unit independently (could be parallel or incremental;
	// editing client.c would only rebuild client.clo).
	var objects []string
	for name, src := range units {
		db, err := cla.CompileSource(name, src, nil)
		if err != nil {
			log.Fatal(err)
		}
		obj := filepath.Join(dir, name+".clo")
		if err := db.WriteFile(obj); err != nil {
			log.Fatal(err)
		}
		st := db.Stats()
		fmt.Printf("compiled %-9s -> %d assignments, %d symbols\n",
			name, st.Total(), st.Symbols)
		objects = append(objects, obj)
	}

	// LINK: merge the databases; global symbols unify by name.
	var dbs []*cla.Database
	for _, obj := range objects {
		db, err := cla.OpenFile(obj)
		if err != nil {
			log.Fatal(err)
		}
		dbs = append(dbs, db)
	}
	linked, err := cla.Link(dbs...)
	if err != nil {
		log.Fatal(err)
	}
	exe := filepath.Join(dir, "program.cla")
	if err := linked.WriteFile(exe); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked   %d units -> %s (%d symbols)\n\n",
		len(objects), filepath.Base(exe), linked.Stats().Symbols)

	// ANALYZE: open the linked database and let the solver demand-load.
	an, err := cla.AnalyzeFile(exe, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer an.Close()

	// The client's pointer resolves through three modules to the malloc
	// site inside the allocator.
	for _, q := range []string{"name", "alias", "table"} {
		var targets []string
		for _, o := range an.PointsToName(q) {
			targets = append(targets, o.Name())
		}
		fmt.Printf("pts(%-5s) = %v\n", q, targets)
	}

	m := an.Metrics()
	fmt.Printf("\ndemand loading: %d of %d assignments loaded (%.0f%%), %d kept in core\n",
		m.Loaded, m.InFile, 100*float64(m.Loaded)/float64(m.InFile), m.InCore)
}
