package cpp

import "strings"

// tokenKind classifies preprocessor tokens.
type tokenKind uint8

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString // "..." or '...'
	tokPunct
)

type token struct {
	kind        tokenKind
	text        string
	line        int
	spaceBefore bool
}

// stripComments removes /* */ and // comments (replacing them with a single
// space) and splices backslash-newline continuations, preserving newlines
// inside block comments so line numbers stay correct.
func stripComments(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\\' && i+1 < n && src[i+1] == '\n':
			b.WriteByte(' ')
			// keep the newline count consistent by emitting nothing; the
			// logical line continues. We drop the newline entirely and
			// compensate in splitLogicalLines via the contLines count
			// encoded as \x01 markers.
			b.WriteByte('\x01')
			i += 2
		case c == '\\' && i+2 < n && src[i+1] == '\r' && src[i+2] == '\n':
			b.WriteByte(' ')
			b.WriteByte('\x01')
			i += 3
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					i += 2
					break
				}
				if src[i] == '\n' {
					b.WriteByte('\n')
				}
				i++
			}
			b.WriteByte(' ')
		case c == '"' || c == '\'':
			quote := c
			b.WriteByte(c)
			i++
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					b.WriteByte(src[i])
					i++
				}
				if i < n {
					b.WriteByte(src[i])
					i++
				}
			}
			if i < n {
				b.WriteByte(quote)
				i++
			}
		default:
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

type logicalLine struct {
	text string
	line int // starting physical line
}

// splitLogicalLines splits comment-stripped text into logical lines,
// accounting for \x01 continuation markers produced by stripComments.
func splitLogicalLines(src string) []logicalLine {
	var out []logicalLine
	line := 1
	var cur strings.Builder
	start := 1
	flush := func() {
		out = append(out, logicalLine{text: cur.String(), line: start})
		cur.Reset()
	}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			flush()
			line++
			start = line
		case '\x01':
			line++ // swallowed newline from a continuation
		default:
			cur.WriteByte(src[i])
		}
	}
	if cur.Len() > 0 {
		flush()
	}
	return out
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-character punctuators, longest first.
var puncts = []string{
	"...", "<<=", ">>=",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##",
}

// lexLine tokenizes one logical line for macro processing.
func lexLine(s, file string, line int) []token {
	_ = file
	var toks []token
	i := 0
	n := len(s)
	space := false
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			space = true
			i++
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: s[i:j], line: line, spaceBefore: space})
			space = false
			i = j
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(s[i+1])):
			j := i + 1
			for j < n && (isIdentChar(s[j]) || s[j] == '.' ||
				((s[j] == '+' || s[j] == '-') && (s[j-1] == 'e' || s[j-1] == 'E' || s[j-1] == 'p' || s[j-1] == 'P'))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: s[i:j], line: line, spaceBefore: space})
			space = false
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < n && s[j] != quote {
				if s[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			if j < n {
				j++
			}
			toks = append(toks, token{kind: tokString, text: s[i:j], line: line, spaceBefore: space})
			space = false
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(s[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line, spaceBefore: space})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line, spaceBefore: space})
				i++
			}
			space = false
		}
	}
	return toks
}

// firstIdent returns the leading identifier of s, or "".
func firstIdent(s string) string {
	s = strings.TrimSpace(s)
	if s == "" || !isIdentStart(s[0]) {
		return ""
	}
	i := 1
	for i < len(s) && isIdentChar(s[i]) {
		i++
	}
	return s[:i]
}

// joinTokens renders tokens back to text with minimal separating spaces.
func joinTokens(toks []token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && (t.spaceBefore || needSpace(toks[i-1], t)) {
			b.WriteByte(' ')
		}
		b.WriteString(t.text)
	}
	return b.String()
}

// needSpace reports whether a space must separate a and b to avoid
// accidentally gluing them into a different token.
func needSpace(a, b token) bool {
	if a.kind == tokIdent || a.kind == tokNumber {
		return b.kind == tokIdent || b.kind == tokNumber
	}
	if a.kind == tokPunct && b.kind == tokPunct {
		// Conservative: separate any punctuation pair that could merge.
		glued := a.text + b.text
		for _, p := range puncts {
			if strings.HasPrefix(glued, p) && len(p) > len(a.text) {
				return true
			}
		}
		switch glued[:min(2, len(glued))] {
		case "//", "/*", "--", "++", "<<", ">>":
			return true
		}
	}
	return false
}
