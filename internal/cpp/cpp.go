// Package cpp implements a C preprocessor sufficient for the CLA compile
// phase: comments, line splicing, #include, object- and function-like
// macros with # and ## operators, conditional compilation with full
// constant-expression evaluation, #undef, #line, #error and #pragma.
//
// The output is a single preprocessed text with GCC-style line markers
// (`# <line> "<file>"`) so the downstream lexer can report locations in the
// original sources.
package cpp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Loader resolves #include paths to file contents.
type Loader interface {
	// Load returns the contents of the named file. The returned path is
	// the canonical name used in line markers and for nested relative
	// includes.
	Load(name string) (content string, path string, err error)
}

// MapLoader serves includes from an in-memory map, for tests and the
// synthetic workload generator.
type MapLoader map[string]string

// Load implements Loader.
func (m MapLoader) Load(name string) (string, string, error) {
	if c, ok := m[name]; ok {
		return c, name, nil
	}
	return "", "", fmt.Errorf("cpp: include %q not found", name)
}

// OSLoader serves includes from the file system, searching Dirs for
// non-relative lookups.
type OSLoader struct {
	Dirs []string // include search path
}

// Load implements Loader.
func (l OSLoader) Load(name string) (string, string, error) {
	try := func(p string) (string, string, bool) {
		b, err := os.ReadFile(p)
		if err != nil {
			return "", "", false
		}
		return string(b), p, true
	}
	if filepath.IsAbs(name) {
		if c, p, ok := try(name); ok {
			return c, p, nil
		}
		return "", "", fmt.Errorf("cpp: include %q not found", name)
	}
	if c, p, ok := try(name); ok {
		return c, p, nil
	}
	for _, d := range l.Dirs {
		if c, p, ok := try(filepath.Join(d, name)); ok {
			return c, p, nil
		}
	}
	return "", "", fmt.Errorf("cpp: include %q not found", name)
}

// Error is a preprocessing error with a source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// macro is a stored macro definition.
type macro struct {
	name     string
	funcLike bool
	params   []string
	variadic bool
	body     []token // tokens of the replacement list
}

// Preprocessor holds macro state across files.
type Preprocessor struct {
	Loader    Loader
	MaxDepth  int // include nesting limit; 0 means default (64)
	macros    map[string]*macro
	out       strings.Builder
	condStack []condState
	expandDep int
	curFile   string          // file currently being expanded, for __FILE__
	once      map[string]bool // files guarded by #pragma once
}

type condState struct {
	// taken: some branch of this #if chain has been taken.
	taken bool
	// live: we are currently emitting in this branch.
	live bool
	// parentLive: the enclosing context was live.
	parentLive bool
	line       int
}

// New returns a Preprocessor reading includes through loader. The
// standard builtin macros __FILE__, __LINE__, __DATE__, __TIME__,
// __STDC__ and __STDC_VERSION__ are predefined (the first two expand
// positionally).
func New(loader Loader) *Preprocessor {
	p := &Preprocessor{Loader: loader, macros: map[string]*macro{}, once: map[string]bool{}}
	p.Define("__STDC__", "1")
	p.Define("__STDC_VERSION__", "199901L")
	// Fixed strings: builds must be reproducible, so no real clock.
	p.Define("__DATE__", `"Jan  1 2001"`)
	p.Define("__TIME__", `"00:00:00"`)
	return p
}

// Define installs an object-like macro, as if by -Dname=body.
func (p *Preprocessor) Define(name, body string) {
	toks := lexLine(body, "<cmdline>", 1)
	p.macros[name] = &macro{name: name, body: toks}
}

// Preprocess runs the preprocessor over the named file's content and
// returns the expanded text with line markers.
func (p *Preprocessor) Preprocess(name, content string) (string, error) {
	p.out.Reset()
	p.condStack = p.condStack[:0]
	if err := p.processFile(name, content, 0); err != nil {
		return "", err
	}
	if len(p.condStack) != 0 {
		return "", &Error{File: name, Line: p.condStack[len(p.condStack)-1].line, Msg: "unterminated #if"}
	}
	return p.out.String(), nil
}

// PreprocessFile loads and preprocesses the named file.
func (p *Preprocessor) PreprocessFile(name string) (string, error) {
	content, path, err := p.Loader.Load(name)
	if err != nil {
		return "", err
	}
	return p.Preprocess(path, content)
}

func (p *Preprocessor) errf(file string, line int, format string, args ...any) error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Preprocessor) live() bool {
	for _, c := range p.condStack {
		if !c.live {
			return false
		}
	}
	return true
}

func (p *Preprocessor) marker(line int, file string) {
	fmt.Fprintf(&p.out, "# %d %q\n", line, file)
}

func (p *Preprocessor) processFile(name, content string, depth int) error {
	maxDepth := p.MaxDepth
	if maxDepth == 0 {
		maxDepth = 64
	}
	if depth > maxDepth {
		return p.errf(name, 1, "#include nesting too deep")
	}
	lines := splitLogicalLines(stripComments(content))
	p.marker(1, name)
	prevFile := p.curFile
	p.curFile = name
	defer func() { p.curFile = prevFile }()
	condBase := len(p.condStack)
	for _, ln := range lines {
		text := ln.text
		trimmed := strings.TrimSpace(text)
		if strings.HasPrefix(trimmed, "#") {
			if err := p.directive(name, ln.line, trimmed[1:], depth); err != nil {
				return err
			}
			continue
		}
		if !p.live() {
			continue
		}
		if trimmed == "" {
			continue
		}
		toks := lexLine(text, name, ln.line)
		expanded, err := p.expand(toks, map[string]bool{})
		if err != nil {
			return err
		}
		p.marker(ln.line, name)
		p.out.WriteString(joinTokens(expanded))
		p.out.WriteByte('\n')
	}
	if len(p.condStack) != condBase {
		return p.errf(name, lines[len(lines)-1].line, "unterminated #if in %s", name)
	}
	return nil
}

// directive handles one preprocessor directive (text after '#').
func (p *Preprocessor) directive(file string, line int, text string, depth int) error {
	text = strings.TrimSpace(text)
	if text == "" { // null directive
		return nil
	}
	if text[0] >= '0' && text[0] <= '9' {
		// A GCC-style line marker (`# n "file"`) from already-preprocessed
		// input: pass it through so positions survive re-preprocessing.
		if p.live() {
			fmt.Fprintf(&p.out, "# %s\n", text)
		}
		return nil
	}
	name := text
	rest := ""
	for i, r := range text {
		if !isIdentChar(byte(r)) {
			name, rest = text[:i], strings.TrimSpace(text[i:])
			break
		}
	}

	switch name {
	case "ifdef", "ifndef":
		if !p.live() {
			p.condStack = append(p.condStack, condState{taken: true, live: false, parentLive: false, line: line})
			return nil
		}
		id := firstIdent(rest)
		if id == "" {
			return p.errf(file, line, "#%s expects an identifier", name)
		}
		_, defined := p.macros[id]
		val := defined
		if name == "ifndef" {
			val = !val
		}
		p.condStack = append(p.condStack, condState{taken: val, live: val, parentLive: true, line: line})
		return nil
	case "if":
		if !p.live() {
			p.condStack = append(p.condStack, condState{taken: true, live: false, parentLive: false, line: line})
			return nil
		}
		v, err := p.evalCond(rest, file, line)
		if err != nil {
			return err
		}
		p.condStack = append(p.condStack, condState{taken: v, live: v, parentLive: true, line: line})
		return nil
	case "elif":
		if len(p.condStack) == 0 {
			return p.errf(file, line, "#elif without #if")
		}
		c := &p.condStack[len(p.condStack)-1]
		if !c.parentLive || c.taken {
			c.live = false
			return nil
		}
		v, err := p.evalCond(rest, file, line)
		if err != nil {
			return err
		}
		c.live = v
		c.taken = v
		return nil
	case "else":
		if len(p.condStack) == 0 {
			return p.errf(file, line, "#else without #if")
		}
		c := &p.condStack[len(p.condStack)-1]
		c.live = c.parentLive && !c.taken
		c.taken = true
		return nil
	case "endif":
		if len(p.condStack) == 0 {
			return p.errf(file, line, "#endif without #if")
		}
		p.condStack = p.condStack[:len(p.condStack)-1]
		return nil
	}

	if !p.live() {
		return nil
	}

	switch name {
	case "define":
		return p.define(rest, file, line)
	case "undef":
		id := firstIdent(rest)
		if id == "" {
			return p.errf(file, line, "#undef expects an identifier")
		}
		delete(p.macros, id)
		return nil
	case "include":
		return p.include(rest, file, line, depth)
	case "error":
		return p.errf(file, line, "#error %s", rest)
	case "pragma":
		if strings.TrimSpace(rest) == "once" {
			p.once[file] = true
		}
		return nil
	case "warning", "ident":
		return nil
	case "line":
		// Accepted and ignored: our line markers already carry positions.
		return nil
	default:
		return p.errf(file, line, "unknown directive #%s", name)
	}
}

func (p *Preprocessor) include(rest, file string, line, depth int) error {
	rest = strings.TrimSpace(rest)
	var name string
	switch {
	case strings.HasPrefix(rest, "\""):
		end := strings.Index(rest[1:], "\"")
		if end < 0 {
			return p.errf(file, line, "malformed #include")
		}
		name = rest[1 : 1+end]
	case strings.HasPrefix(rest, "<"):
		end := strings.Index(rest, ">")
		if end < 0 {
			return p.errf(file, line, "malformed #include")
		}
		name = rest[1:end]
	default:
		// Macro-expanded include argument.
		toks := lexLine(rest, file, line)
		expanded, err := p.expand(toks, map[string]bool{})
		if err != nil {
			return err
		}
		return p.include(joinTokens(expanded), file, line, depth)
	}
	content, path, err := p.Loader.Load(name)
	if err != nil {
		// Try relative to the including file for "..." includes.
		if dir := filepath.Dir(file); dir != "." && strings.HasPrefix(rest, "\"") {
			if c2, p2, err2 := p.Loader.Load(filepath.Join(dir, name)); err2 == nil {
				content, path, err = c2, p2, nil
			}
		}
		if err != nil {
			return p.errf(file, line, "%v", err)
		}
	}
	if p.once[path] {
		return nil
	}
	if err := p.processFile(path, content, depth+1); err != nil {
		return err
	}
	p.marker(line+1, file)
	return nil
}

func (p *Preprocessor) define(rest, file string, line int) error {
	toks := lexLine(rest, file, line)
	if len(toks) == 0 || toks[0].kind != tokIdent {
		return p.errf(file, line, "#define expects an identifier")
	}
	m := &macro{name: toks[0].text}
	i := 1
	// Function-like only if '(' immediately follows the name (no space).
	if i < len(toks) && toks[i].kind == tokPunct && toks[i].text == "(" && !toks[i].spaceBefore {
		m.funcLike = true
		i++
		for i < len(toks) && !(toks[i].kind == tokPunct && toks[i].text == ")") {
			t := toks[i]
			switch {
			case t.kind == tokIdent:
				m.params = append(m.params, t.text)
			case t.kind == tokPunct && t.text == "...":
				m.variadic = true
				m.params = append(m.params, "__VA_ARGS__")
			case t.kind == tokPunct && t.text == ",":
				// separator
			default:
				return p.errf(file, line, "bad macro parameter list for %s", m.name)
			}
			i++
		}
		if i >= len(toks) {
			return p.errf(file, line, "unterminated macro parameter list for %s", m.name)
		}
		i++ // skip ')'
	}
	m.body = toks[i:]
	p.macros[m.name] = m
	return nil
}

// evalCond evaluates a #if / #elif controlling expression.
func (p *Preprocessor) evalCond(expr, file string, line int) (bool, error) {
	toks := lexLine(expr, file, line)
	// Handle defined(X) / defined X before macro expansion.
	var pre []token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind == tokIdent && t.text == "defined" {
			j := i + 1
			var id string
			if j < len(toks) && toks[j].kind == tokPunct && toks[j].text == "(" {
				if j+2 < len(toks) && toks[j+1].kind == tokIdent && toks[j+2].text == ")" {
					id = toks[j+1].text
					i = j + 2
				} else {
					return false, p.errf(file, line, "malformed defined()")
				}
			} else if j < len(toks) && toks[j].kind == tokIdent {
				id = toks[j].text
				i = j
			} else {
				return false, p.errf(file, line, "malformed defined")
			}
			v := "0"
			if _, ok := p.macros[id]; ok {
				v = "1"
			}
			pre = append(pre, token{kind: tokNumber, text: v, line: t.line})
			continue
		}
		pre = append(pre, t)
	}
	expanded, err := p.expand(pre, map[string]bool{})
	if err != nil {
		return false, err
	}
	// Remaining identifiers evaluate to 0 per the C standard.
	for i := range expanded {
		if expanded[i].kind == tokIdent {
			expanded[i] = token{kind: tokNumber, text: "0", line: expanded[i].line}
		}
	}
	ev := condEval{toks: expanded, file: file, line: line, p: p}
	v, err := ev.parseExpr(0)
	if err != nil {
		return false, err
	}
	if ev.pos != len(ev.toks) {
		return false, p.errf(file, line, "trailing tokens in #if expression")
	}
	return v != 0, nil
}
