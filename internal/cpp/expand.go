package cpp

import (
	"fmt"
	"strings"
)

// maxExpandDepth bounds recursive macro expansion as a safety net beyond
// the hide-set mechanism.
const maxExpandDepth = 512

// expand performs macro expansion over toks. hidden is the set of macro
// names not eligible for expansion (painted blue) in this context.
func (p *Preprocessor) expand(toks []token, hidden map[string]bool) ([]token, error) {
	p.expandDep++
	defer func() { p.expandDep-- }()
	if p.expandDep > maxExpandDepth {
		return nil, fmt.Errorf("cpp: macro expansion too deep")
	}

	var out []token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind != tokIdent || hidden[t.text] {
			out = append(out, t)
			continue
		}
		// Positional builtins expand from the token's own position.
		switch t.text {
		case "__LINE__":
			out = append(out, token{kind: tokNumber, text: fmt.Sprint(t.line),
				line: t.line, spaceBefore: t.spaceBefore})
			continue
		case "__FILE__":
			out = append(out, token{kind: tokString, text: fmt.Sprintf("%q", p.curFile),
				line: t.line, spaceBefore: t.spaceBefore})
			continue
		}
		m, ok := p.macros[t.text]
		if !ok {
			out = append(out, t)
			continue
		}
		if m.funcLike {
			// Needs a '(' to trigger; otherwise the name passes through.
			j := i + 1
			if j >= len(toks) || !(toks[j].kind == tokPunct && toks[j].text == "(") {
				out = append(out, t)
				continue
			}
			args, next, err := collectArgs(toks, j, t.line)
			if err != nil {
				return nil, err
			}
			body, err := p.substitute(m, args, hidden, t.line)
			if err != nil {
				return nil, err
			}
			sub := map[string]bool{m.name: true}
			for k := range hidden {
				sub[k] = true
			}
			rescanned, err := p.expand(body, sub)
			if err != nil {
				return nil, err
			}
			setLeadSpace(rescanned, t.spaceBefore)
			out = append(out, rescanned...)
			i = next
			continue
		}
		// Object-like macro.
		sub := map[string]bool{m.name: true}
		for k := range hidden {
			sub[k] = true
		}
		rescanned, err := p.expand(cloneAtLine(m.body, t.line), sub)
		if err != nil {
			return nil, err
		}
		setLeadSpace(rescanned, t.spaceBefore)
		out = append(out, rescanned...)
	}
	return out, nil
}

// setLeadSpace forces the spaceBefore flag of the first token so that a
// substituted sequence inherits the spacing of the token it replaces.
func setLeadSpace(toks []token, space bool) {
	if len(toks) > 0 {
		toks[0].spaceBefore = space
	}
}

func cloneAtLine(body []token, line int) []token {
	out := make([]token, len(body))
	for i, t := range body {
		t.line = line
		out[i] = t
	}
	return out
}

// collectArgs gathers the comma-separated arguments of a function-like
// macro invocation starting at the '(' at index open. It returns the
// arguments and the index of the closing ')'.
func collectArgs(toks []token, open, line int) ([][]token, int, error) {
	var args [][]token
	var cur []token
	depth := 0
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
				if depth == 1 {
					continue
				}
			case ")":
				depth--
				if depth == 0 {
					if len(cur) > 0 || len(args) > 0 {
						args = append(args, cur)
					}
					return args, i, nil
				}
			case ",":
				if depth == 1 {
					args = append(args, cur)
					cur = nil
					continue
				}
			}
		}
		if depth >= 1 {
			cur = append(cur, t)
		}
	}
	return nil, 0, fmt.Errorf("cpp: line %d: unterminated macro argument list", line)
}

// substitute builds the replacement list for a function-like macro call,
// handling parameter substitution, # stringizing and ## pasting.
func (p *Preprocessor) substitute(m *macro, args [][]token, hidden map[string]bool, line int) ([]token, error) {
	argFor := func(name string) ([]token, bool) {
		for pi, pn := range m.params {
			if pn == name {
				if pi < len(args) {
					return args[pi], true
				}
				if m.variadic && pn == "__VA_ARGS__" {
					// Missing variadic args: empty.
					return nil, true
				}
				return nil, true
			}
		}
		return nil, false
	}
	if !m.variadic && len(args) > len(m.params) {
		// Extra args are an error unless the macro takes none and the
		// single arg is empty.
		if !(len(m.params) == 0 && len(args) == 1 && len(args[0]) == 0) {
			return nil, fmt.Errorf("cpp: line %d: macro %s expects %d args, got %d",
				line, m.name, len(m.params), len(args))
		}
	}
	// Variadic macros fold all trailing args into __VA_ARGS__.
	if m.variadic && len(args) > len(m.params) {
		fixed := len(m.params) - 1
		var rest []token
		for ai := fixed; ai < len(args); ai++ {
			if ai > fixed {
				rest = append(rest, token{kind: tokPunct, text: ",", line: line})
			}
			rest = append(rest, args[ai]...)
		}
		args = append(args[:fixed:fixed], rest)
	}

	var out []token
	body := m.body
	for i := 0; i < len(body); i++ {
		t := body[i]
		// # param → stringize
		if t.kind == tokPunct && t.text == "#" && i+1 < len(body) && body[i+1].kind == tokIdent {
			if arg, ok := argFor(body[i+1].text); ok {
				out = append(out, token{kind: tokString, text: stringize(arg), line: line, spaceBefore: t.spaceBefore})
				i++
				continue
			}
		}
		// token ## token → paste
		if i+1 < len(body) && body[i+1].kind == tokPunct && body[i+1].text == "##" && i+2 < len(body) {
			left := expandOne(t, argFor, line)
			right := expandOne(body[i+2], argFor, line)
			pasted := pasteTokens(left, right, line)
			out = append(out, pasted...)
			i += 2
			// Allow chains: a ## b ## c.
			for i+1 < len(body) && body[i+1].kind == tokPunct && body[i+1].text == "##" && i+2 < len(body) {
				nxt := expandOne(body[i+2], argFor, line)
				if len(out) > 0 {
					last := out[len(out)-1]
					out = out[:len(out)-1]
					out = append(out, pasteTokens([]token{last}, nxt, line)...)
				} else {
					out = append(out, nxt...)
				}
				i += 2
			}
			continue
		}
		if t.kind == tokIdent {
			if arg, ok := argFor(t.text); ok {
				// Arguments are fully expanded before substitution.
				ex, err := p.expand(arg, hidden)
				if err != nil {
					return nil, err
				}
				sub := cloneAtLine(ex, line)
				setLeadSpace(sub, t.spaceBefore)
				out = append(out, sub...)
				continue
			}
		}
		tt := t
		tt.line = line
		out = append(out, tt)
	}
	return out, nil
}

// expandOne resolves a body token to its argument tokens (unexpanded, per
// the ## rules) or itself.
func expandOne(t token, argFor func(string) ([]token, bool), line int) []token {
	if t.kind == tokIdent {
		if arg, ok := argFor(t.text); ok {
			return cloneAtLine(arg, line)
		}
	}
	tt := t
	tt.line = line
	return []token{tt}
}

// pasteTokens concatenates the last token of left with the first of right.
func pasteTokens(left, right []token, line int) []token {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	l := left[len(left)-1]
	r := right[0]
	glued := l.text + r.text
	relexed := lexLine(glued, "", line)
	var out []token
	out = append(out, left[:len(left)-1]...)
	out = append(out, relexed...)
	out = append(out, right[1:]...)
	return out
}

// stringize renders argument tokens as a C string literal.
func stringize(toks []token) string {
	s := joinTokens(toks)
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}
