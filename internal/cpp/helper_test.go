package cpp

import "os"

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
