package cpp

import (
	"strconv"
	"strings"
)

// condEval is a precedence-climbing evaluator for #if constant expressions.
// Arithmetic follows C semantics on int64 with C-like truthiness.
type condEval struct {
	toks []token
	pos  int
	file string
	line int
	p    *Preprocessor
}

func (e *condEval) peek() (token, bool) {
	if e.pos < len(e.toks) {
		return e.toks[e.pos], true
	}
	return token{}, false
}

func (e *condEval) next() (token, bool) {
	t, ok := e.peek()
	if ok {
		e.pos++
	}
	return t, ok
}

func (e *condEval) err(format string, args ...any) error {
	return e.p.errf(e.file, e.line, format, args...)
}

// binary operator precedence; higher binds tighter.
var condPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

// parseExpr parses an expression with operators of at least minPrec,
// including the ?: ternary at the outermost level.
func (e *condEval) parseExpr(minPrec int) (int64, error) {
	lhs, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.kind != tokPunct {
			break
		}
		if t.text == "?" && minPrec == 0 {
			e.pos++
			thenV, err := e.parseExpr(0)
			if err != nil {
				return 0, err
			}
			colon, ok := e.next()
			if !ok || colon.text != ":" {
				return 0, e.err("expected ':' in ?:")
			}
			elseV, err := e.parseExpr(0)
			if err != nil {
				return 0, err
			}
			if lhs != 0 {
				lhs = thenV
			} else {
				lhs = elseV
			}
			continue
		}
		prec, isOp := condPrec[t.text]
		if !isOp || prec < minPrec {
			break
		}
		e.pos++
		rhs, err := e.parseUnaryThenHigher(prec + 1)
		if err != nil {
			return 0, err
		}
		lhs, err = applyBinop(t.text, lhs, rhs, e)
		if err != nil {
			return 0, err
		}
	}
	return lhs, nil
}

func (e *condEval) parseUnaryThenHigher(minPrec int) (int64, error) {
	lhs, err := e.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := e.peek()
		if !ok || t.kind != tokPunct {
			break
		}
		prec, isOp := condPrec[t.text]
		if !isOp || prec < minPrec {
			break
		}
		e.pos++
		rhs, err := e.parseUnaryThenHigher(prec + 1)
		if err != nil {
			return 0, err
		}
		lhs, err = applyBinop(t.text, lhs, rhs, e)
		if err != nil {
			return 0, err
		}
	}
	return lhs, nil
}

func applyBinop(op string, a, b int64, e *condEval) (int64, error) {
	boolv := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case "||":
		return boolv(a != 0 || b != 0), nil
	case "&&":
		return boolv(a != 0 && b != 0), nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "&":
		return a & b, nil
	case "==":
		return boolv(a == b), nil
	case "!=":
		return boolv(a != b), nil
	case "<":
		return boolv(a < b), nil
	case ">":
		return boolv(a > b), nil
	case "<=":
		return boolv(a <= b), nil
	case ">=":
		return boolv(a >= b), nil
	case "<<":
		if b < 0 || b >= 64 {
			return 0, nil
		}
		return a << uint(b), nil
	case ">>":
		if b < 0 || b >= 64 {
			return 0, nil
		}
		return a >> uint(b), nil
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, e.err("division by zero in #if")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, e.err("division by zero in #if")
		}
		return a % b, nil
	}
	return 0, e.err("unknown operator %q", op)
}

func (e *condEval) parseUnary() (int64, error) {
	t, ok := e.next()
	if !ok {
		return 0, e.err("unexpected end of #if expression")
	}
	switch {
	case t.kind == tokPunct && t.text == "!":
		v, err := e.parseUnary()
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	case t.kind == tokPunct && t.text == "-":
		v, err := e.parseUnary()
		return -v, err
	case t.kind == tokPunct && t.text == "+":
		return e.parseUnary()
	case t.kind == tokPunct && t.text == "~":
		v, err := e.parseUnary()
		return ^v, err
	case t.kind == tokPunct && t.text == "(":
		v, err := e.parseExpr(0)
		if err != nil {
			return 0, err
		}
		close, ok := e.next()
		if !ok || close.text != ")" {
			return 0, e.err("missing ')' in #if expression")
		}
		return v, nil
	case t.kind == tokNumber:
		return parseCInt(t.text, e)
	case t.kind == tokString && strings.HasPrefix(t.text, "'"):
		return charValue(t.text), nil
	}
	return 0, e.err("unexpected token %q in #if expression", t.text)
}

// parseCInt parses a C integer literal, stripping U/L suffixes.
func parseCInt(s string, e *condEval) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x"), strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case len(s) > 1 && s[0] == '0':
		v, err = strconv.ParseUint(s[1:], 8, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, e.err("bad integer %q in #if expression", s)
	}
	return int64(v), nil
}

// charValue evaluates a character constant like 'a' or '\n'.
func charValue(s string) int64 {
	s = strings.TrimPrefix(s, "'")
	s = strings.TrimSuffix(s, "'")
	if s == "" {
		return 0
	}
	if s[0] != '\\' {
		return int64(s[0])
	}
	if len(s) < 2 {
		return '\\'
	}
	switch s[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		if len(s) > 2 {
			if v, err := strconv.ParseInt(s[1:], 8, 64); err == nil {
				return v
			}
		}
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case 'x':
		if v, err := strconv.ParseInt(s[2:], 16, 64); err == nil {
			return v
		}
	}
	return int64(s[1])
}
