package cpp

import (
	"strings"
	"testing"
)

// pp runs the preprocessor on src and returns output with line markers and
// blank lines removed, whitespace-normalized, for easy comparison.
func pp(t *testing.T, src string, files map[string]string) string {
	t.Helper()
	loader := MapLoader(files)
	p := New(loader)
	out, err := p.Preprocess("test.c", src)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return stripMarkers(out)
}

func stripMarkers(out string) string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "# ") {
			continue
		}
		lines = append(lines, l)
	}
	return strings.Join(lines, "\n")
}

func ppErr(t *testing.T, src string) error {
	t.Helper()
	p := New(MapLoader{})
	_, err := p.Preprocess("test.c", src)
	if err == nil {
		t.Fatalf("Preprocess(%q): expected error", src)
	}
	return err
}

func TestObjectMacro(t *testing.T) {
	got := pp(t, "#define N 10\nint a[N];\n", nil)
	if got != "int a[10];" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacro(t *testing.T) {
	got := pp(t, "#define SQ(x) ((x)*(x))\nint y = SQ(a+b);\n", nil)
	if got != "int y = ((a+b)*(a+b));" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroMultipleArgs(t *testing.T) {
	got := pp(t, "#define MAX(a,b) ((a)>(b)?(a):(b))\nint y = MAX(p, q);\n", nil)
	if got != "int y = ((p)>(q)?(p):(q));" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionMacroWithoutParens(t *testing.T) {
	// Function-like macro name not followed by '(' is left alone.
	got := pp(t, "#define F(x) x\nint (*p)() = F;\n", nil)
	if got != "int (*p)() = F;" {
		t.Errorf("got %q", got)
	}
}

func TestNestedMacro(t *testing.T) {
	got := pp(t, "#define A B\n#define B 42\nint x = A;\n", nil)
	if got != "int x = 42;" {
		t.Errorf("got %q", got)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	got := pp(t, "#define X X\nint X;\n", nil)
	if got != "int X;" {
		t.Errorf("got %q", got)
	}
}

func TestMutuallyRecursiveMacros(t *testing.T) {
	got := pp(t, "#define A B\n#define B A\nint A;\n", nil)
	// Expansion must terminate; result is A or B depending on hide sets.
	if got != "int A;" && got != "int B;" {
		t.Errorf("got %q", got)
	}
}

func TestStringize(t *testing.T) {
	got := pp(t, "#define STR(x) #x\nchar *s = STR(a + b);\n", nil)
	if got != `char *s = "a + b";` {
		t.Errorf("got %q", got)
	}
}

func TestPaste(t *testing.T) {
	got := pp(t, "#define GLUE(a,b) a##b\nint GLUE(foo, bar) = 1;\n", nil)
	if got != "int foobar = 1;" {
		t.Errorf("got %q", got)
	}
}

func TestPasteChain(t *testing.T) {
	got := pp(t, "#define GLUE3(a,b,c) a##b##c\nint GLUE3(x, y, z);\n", nil)
	if got != "int xyz;" {
		t.Errorf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	got := pp(t, "#define N 1\n#undef N\nint x = N;\n", nil)
	if got != "int x = N;" {
		t.Errorf("got %q", got)
	}
}

func TestIfdef(t *testing.T) {
	src := "#define FOO\n#ifdef FOO\nint a;\n#else\nint b;\n#endif\n"
	if got := pp(t, src, nil); got != "int a;" {
		t.Errorf("got %q", got)
	}
}

func TestIfndef(t *testing.T) {
	src := "#ifndef FOO\nint a;\n#else\nint b;\n#endif\n"
	if got := pp(t, src, nil); got != "int a;" {
		t.Errorf("got %q", got)
	}
}

func TestIfArithmetic(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"1", true},
		{"0", false},
		{"2 + 3 == 5", true},
		{"1 << 4 == 16", true},
		{"(1 | 2) == 3", true},
		{"10 % 3 == 1", true},
		{"!0", true},
		{"~0 == -1", true},
		{"1 ? 1 : 0", true},
		{"0 ? 1 : 0", false},
		{"0x10 == 16", true},
		{"010 == 8", true},
		{"'A' == 65", true},
		{"1 && 0", false},
		{"1 || 0", true},
		{"UNDEFINED_NAME", false},
		{"-3 < -2", true},
		{"5 / 2 == 2", true},
	}
	for _, c := range cases {
		src := "#if " + c.cond + "\nyes\n#else\nno\n#endif\n"
		got := pp(t, src, nil)
		want := "no"
		if c.want {
			want = "yes"
		}
		if got != want {
			t.Errorf("#if %s: got %q, want %q", c.cond, got, want)
		}
	}
}

func TestIfDefinedOperator(t *testing.T) {
	src := "#define FOO 0\n#if defined(FOO) && !defined BAR\nyes\n#endif\n"
	if got := pp(t, src, nil); got != "yes" {
		t.Errorf("got %q", got)
	}
}

func TestElifChain(t *testing.T) {
	src := "#define V 2\n#if V == 1\na\n#elif V == 2\nb\n#elif V == 3\nc\n#else\nd\n#endif\n"
	if got := pp(t, src, nil); got != "b" {
		t.Errorf("got %q", got)
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#define A 1
#if A
#if 0
x
#else
y
#endif
#else
z
#endif
`
	if got := pp(t, src, nil); got != "y" {
		t.Errorf("got %q", got)
	}
}

func TestSkippedBranchIgnoresDirectives(t *testing.T) {
	// An undefined macro in a dead branch must not be expanded or error.
	src := "#if 0\n#error should not fire\n#include \"missing.h\"\n#endif\nok\n"
	if got := pp(t, src, nil); got != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	files := map[string]string{"defs.h": "#define W 7\nint w = W;\n"}
	src := "#include \"defs.h\"\nint v = W;\n"
	got := pp(t, src, files)
	if got != "int w = 7;\nint v = 7;" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeAngle(t *testing.T) {
	files := map[string]string{"stdio.h": "int printf();\n"}
	got := pp(t, "#include <stdio.h>\n", files)
	if got != "int printf();" {
		t.Errorf("got %q", got)
	}
}

func TestIncludeGuard(t *testing.T) {
	files := map[string]string{
		"g.h": "#ifndef G_H\n#define G_H\nint g;\n#endif\n",
	}
	src := "#include \"g.h\"\n#include \"g.h\"\n"
	if got := pp(t, src, files); got != "int g;" {
		t.Errorf("got %q", got)
	}
}

func TestMissingIncludeError(t *testing.T) {
	err := ppErr(t, "#include \"nope.h\"\n")
	if !strings.Contains(err.Error(), "nope.h") {
		t.Errorf("error %v does not mention file", err)
	}
}

func TestErrorDirective(t *testing.T) {
	err := ppErr(t, "#error deliberate failure\n")
	if !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("error = %v", err)
	}
}

func TestUnterminatedIf(t *testing.T) {
	ppErr(t, "#if 1\nint x;\n")
}

func TestElseWithoutIf(t *testing.T) {
	ppErr(t, "#else\n")
}

func TestEndifWithoutIf(t *testing.T) {
	ppErr(t, "#endif\n")
}

func TestComments(t *testing.T) {
	src := "int a; // trailing\nint /* inline */ b;\nint c; /* multi\nline */ int d;\n"
	got := pp(t, src, nil)
	want := "int a;\nint b;\nint c;\nint d;"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestCommentInsideString(t *testing.T) {
	got := pp(t, `char *s = "no // comment /* here */";`+"\n", nil)
	if got != `char *s = "no // comment /* here */";` {
		t.Errorf("got %q", got)
	}
}

func TestLineSplice(t *testing.T) {
	got := pp(t, "#define LONG \\\n 99\nint x = LONG;\n", nil)
	if got != "int x = 99;" {
		t.Errorf("got %q", got)
	}
}

func TestLineMarkersTrackLines(t *testing.T) {
	p := New(MapLoader{})
	out, err := p.Preprocess("t.c", "int a;\n\n\nint b;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# 4 \"t.c\"\nint b;") {
		t.Errorf("missing line marker for line 4:\n%s", out)
	}
}

func TestLineMarkersAfterInclude(t *testing.T) {
	files := map[string]string{"h.h": "int h;\n"}
	p := New(MapLoader(files))
	out, err := p.Preprocess("t.c", "#include \"h.h\"\nint after;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# 1 \"h.h\"") {
		t.Errorf("missing marker for include:\n%s", out)
	}
	if !strings.Contains(out, "# 2 \"t.c\"\nint after;") {
		t.Errorf("missing resume marker:\n%s", out)
	}
}

func TestPredefine(t *testing.T) {
	p := New(MapLoader{})
	p.Define("DEBUG", "1")
	out, err := p.Preprocess("t.c", "#if DEBUG\nyes\n#endif\n")
	if err != nil {
		t.Fatal(err)
	}
	if stripMarkers(out) != "yes" {
		t.Errorf("got %q", stripMarkers(out))
	}
}

func TestVariadicMacro(t *testing.T) {
	got := pp(t, "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\nLOG(\"%d\", x);\n", nil)
	if got != `printf("%d", x);` {
		t.Errorf("got %q", got)
	}
}

func TestMacroArgWithNestedParens(t *testing.T) {
	got := pp(t, "#define ID(x) x\nint y = ID(f(a, b));\n", nil)
	if got != "int y = f(a, b);" {
		t.Errorf("got %q", got)
	}
}

func TestDeepIncludeLimit(t *testing.T) {
	files := map[string]string{"l.h": "#include \"l.h\"\n"}
	p := New(MapLoader(files))
	p.MaxDepth = 8
	if _, err := p.Preprocess("t.c", "#include \"l.h\"\n"); err == nil {
		t.Error("expected nesting error")
	}
}

func TestEmptyMacroArgs(t *testing.T) {
	got := pp(t, "#define F(x) [x]\nF()\n", nil)
	if got != "[]" {
		t.Errorf("got %q", got)
	}
}

func TestWrongArity(t *testing.T) {
	ppErr(t, "#define F(a,b) a\nF(1,2,3)\n")
}

func TestJoinTokensSpacing(t *testing.T) {
	toks := lexLine("a+b - -c >> 2", "t", 1)
	got := joinTokens(toks)
	// Must not glue "- -" into "--".
	if strings.Contains(got, "--") {
		t.Errorf("joined %q glues unary minuses", got)
	}
	relexed := lexLine(got, "t", 1)
	if len(relexed) != len(toks) {
		t.Errorf("re-lex changed token count: %d vs %d (%q)", len(relexed), len(toks), got)
	}
}

func TestStripCommentsKeepsLineCount(t *testing.T) {
	src := "a /* x\ny\nz */ b\nc\n"
	out := stripComments(src)
	if strings.Count(out, "\n") != strings.Count(src, "\n") {
		t.Errorf("newline count changed: %q", out)
	}
}

func TestOSLoader(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/x.h", "int x;\n"); err != nil {
		t.Fatal(err)
	}
	l := OSLoader{Dirs: []string{dir}}
	c, _, err := l.Load("x.h")
	if err != nil || c != "int x;\n" {
		t.Errorf("Load = %q, %v", c, err)
	}
	if _, _, err := l.Load("absent.h"); err == nil {
		t.Error("expected error for absent file")
	}
}

func writeFile(path, content string) error {
	return osWriteFile(path, content)
}

func TestBuiltinLineAndFile(t *testing.T) {
	got := pp(t, "int a = __LINE__;\nchar *f = __FILE__;\n", nil)
	want := "int a = 1;\nchar *f = \"test.c\";"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestBuiltinLineInIncludedFile(t *testing.T) {
	files := map[string]string{"h.h": "int hl = __LINE__;\nchar *hf = __FILE__;\n"}
	got := pp(t, "#include \"h.h\"\nint ml = __LINE__;\n", files)
	want := "int hl = 1;\nchar *hf = \"h.h\";\nint ml = 2;"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestBuiltinStdc(t *testing.T) {
	got := pp(t, "#if __STDC__\nyes\n#endif\n", nil)
	if got != "yes" {
		t.Errorf("got %q", got)
	}
}

func TestBuiltinLineInMacro(t *testing.T) {
	// __LINE__ inside a macro body expands at the use site's line.
	got := pp(t, "#define HERE __LINE__\n\n\nint x = HERE;\n", nil)
	if got != "int x = 4;" {
		t.Errorf("got %q", got)
	}
}

func TestIfDivisionByZeroError(t *testing.T) {
	ppErr(t, "#if 1/0\nx\n#endif\n")
	ppErr(t, "#if 1%0\nx\n#endif\n")
}

func TestIfMalformedExpressions(t *testing.T) {
	srcs := []string{
		"#if (1\nx\n#endif\n",
		"#if 1 +\nx\n#endif\n",
		"#if ? 1\nx\n#endif\n",
		"#if 1 2\nx\n#endif\n",
		"#if defined(\nx\n#endif\n",
	}
	for _, src := range srcs {
		p := New(MapLoader{})
		if _, err := p.Preprocess("bad.c", src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestUnknownDirective(t *testing.T) {
	ppErr(t, "#frobnicate\n")
}

func TestPreprocessFile(t *testing.T) {
	files := MapLoader{"m.c": "#define V 5\nint x = V;\n"}
	p := New(files)
	out, err := p.PreprocessFile("m.c")
	if err != nil {
		t.Fatal(err)
	}
	if stripMarkers(out) != "int x = 5;" {
		t.Errorf("got %q", stripMarkers(out))
	}
	if _, err := p.PreprocessFile("missing.c"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTernaryInIf(t *testing.T) {
	got := pp(t, "#if 1 ? 0 : 1\na\n#else\nb\n#endif\n", nil)
	if got != "b" {
		t.Errorf("got %q", got)
	}
}

func TestConditionalMacroRedefinition(t *testing.T) {
	src := `#define MODE 1
#if MODE == 1
#undef MODE
#define MODE 2
#endif
#if MODE == 2
ok
#endif
`
	if got := pp(t, src, nil); got != "ok" {
		t.Errorf("got %q", got)
	}
}

func TestPragmaOnce(t *testing.T) {
	files := map[string]string{"o.h": "#pragma once\nint once_var;\n"}
	got := pp(t, "#include \"o.h\"\n#include \"o.h\"\n", files)
	if got != "int once_var;" {
		t.Errorf("got %q", got)
	}
}
