package core

import (
	"math/rand"
	"testing"

	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/worklist"
)

// midPassGrowthProgram builds a database whose node count more than
// doubles in the middle of the first fixpoint pass: the block of z
// (holding k copy-indirect assignments, each split through a fresh
// auxiliary temp) is demand-loaded only when the store rule *x = y makes
// z relevant — which happens after the pass's first reachability
// traversal has already sized the scratch arrays for the original
// symbol count.
func midPassGrowthProgram(k int) *prim.Program {
	p := &prim.Program{}
	sym := func(n string) prim.SymID {
		return p.AddSym(prim.Symbol{Name: n, Kind: prim.SymGlobal, Type: "int*"})
	}
	v0, x, y, z := sym("v0"), sym("x"), sym("y"), sym("z")
	a, m, tt := sym("a"), sym("m"), sym("tt")
	base := func(d, s prim.SymID) {
		p.AddAssign(prim.Assign{Kind: prim.Base, Dst: d, Src: s, Op: prim.OpCopy, Strength: prim.Strong})
	}
	base(x, z)
	base(y, v0)
	base(v0, tt)
	base(a, m)
	// *x = y lives in the block of y (relevant from the start).
	p.AddAssign(prim.Assign{Kind: prim.StoreInd, Dst: x, Src: y, Op: prim.OpCopy, Strength: prim.Strong})
	// k copy-indirects in the block of z: loaded mid-pass, each creating
	// an auxiliary temp, plus deref nodes, during the complex-rule loop.
	for i := 0; i < k; i++ {
		p.AddAssign(prim.Assign{Kind: prim.CopyInd, Dst: a, Src: z, Op: prim.OpCopy, Strength: prim.Strong})
	}
	return p
}

// TestScratchGrowsMidPass pins the unified ensureScratch growth policy:
// when demand loading creates auxiliary nodes after the pass's first
// traversal, every scratch array (including tVal, which used to have its
// own growth guard) must be regrown coherently, and results must still
// match the worklist oracle.
func TestScratchGrowsMidPass(t *testing.T) {
	const k = 20
	prog := midPassGrowthProgram(k)
	nsyms := len(prog.Syms)

	want, err := worklist.Solve(pts.NewMemSource(prog))
	if err != nil {
		t.Fatalf("worklist: %v", err)
	}
	configs := []Config{
		{Cache: true, CycleElim: true, DemandLoad: true},
		{Cache: false, CycleElim: true, DemandLoad: true},
		{Cache: true, CycleElim: false, DemandLoad: true},
		{Cache: false, CycleElim: false, DemandLoad: true},
	}
	for ci, cfg := range configs {
		cfg.MaxPasses = 1000
		got, err := Solve(pts.NewMemSource(prog), cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", ci, err)
		}
		// The graph must actually have outgrown the initial scratch
		// sizing (nsyms*2) mid-pass for this to be a regression test.
		if n := len(got.s.nodes); n <= nsyms*2 {
			t.Fatalf("cfg %d: only %d nodes for %d syms; program no longer grows mid-pass", ci, n, nsyms)
		}
		for i := 0; i < nsyms; i++ {
			id := prim.SymID(i)
			g, w := got.PointsTo(id), want.PointsTo(id)
			if len(g) != len(w) {
				t.Fatalf("cfg %d: pts(%s) = %v, want %v", ci, prog.Sym(id).Name, g, w)
			}
			for j := range g {
				if g[j] != w[j] {
					t.Fatalf("cfg %d: pts(%s) = %v, want %v", ci, prog.Sym(id).Name, g, w)
				}
			}
		}
	}
}

// BenchmarkSolve exercises the full pre-transitive pipeline (demand
// loading, caching, cycle elimination, snapshot) on a deterministic
// random database — the core half of the CI bench-smoke gate.
func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	p := randomProgram(rng, 2000, 6000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxPasses = 100000
		if _, err := Solve(pts.NewMemSource(p), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
