// Package core implements the paper's pre-transitive graph algorithm for
// Andersen's points-to analysis (Section 5).
//
// The constraint graph is maintained in non-transitively-closed form: an
// edge n(x) → n(y) records the subset constraint x ⊇ y introduced by a
// simple assignment x = y, and base elements record x = &y directly on
// n(x). Points-to sets are never propagated along edges; instead, when the
// set of lvals of a variable is needed, a graph reachability computation
// (getLvals) walks the out-edges and unions the base elements of every
// reachable node.
//
// Two optimizations make this practical, exactly as in the paper:
//
//   - Caching: reachability results are cached per pass of the outer
//     fixpoint; stale results are repaired because the nochange flag forces
//     another pass whenever anything was learned.
//   - Cycle elimination: cycles discovered during reachability are
//     collapsed by unifying their nodes through skip pointers. Detection is
//     free during traversal, and all cycles in the traversed region are
//     found — the costly ones, as the paper observes.
//
// The solver also implements the CLA demand-loading discipline: the block
// of assignments whose source is x is loaded only when n(x) becomes
// relevant (can contribute lvals), and simple/base assignments are
// discarded once converted to graph state while complex assignments stay
// in core.
package core

import (
	"context"
	"fmt"

	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
)

// Config controls the solver's optimizations; the zero value disables
// everything (useful only for ablation), so use DefaultConfig.
type Config struct {
	// Cache enables per-pass caching of reachability computations.
	Cache bool
	// CycleElim enables unification of cycle members during reachability.
	CycleElim bool
	// DemandLoad loads per-object assignment blocks only when the object
	// becomes relevant; when false the whole database is loaded upfront.
	DemandLoad bool
	// MaxPasses bounds the outer fixpoint (safety net; 0 = 1<<20).
	MaxPasses int
	// Jobs bounds the worker count for the solve phase, the
	// post-fixpoint snapshot build and batch result queries (<= 0 means
	// GOMAXPROCS). Jobs >= 2 selects the phase-parallel wave fixpoint
	// (see wave.go); Jobs <= 1 keeps the sequential reference fixpoint.
	// Both compute the same unique least fixpoint, so the points-to
	// relation is identical at any setting.
	Jobs int
}

// DefaultConfig enables caching, cycle elimination and demand loading.
func DefaultConfig() Config {
	return Config{Cache: true, CycleElim: true, DemandLoad: true}
}

// complexKind distinguishes the two retained assignment forms.
type complexKind uint8

const (
	ckStore complexKind = iota // *x = y
	ckLoad                     // x = *y
)

// complexAssign is one in-core complex assignment over graph nodes.
type complexAssign struct {
	kind complexKind
	x, y int32
}

// Solver holds the pre-transitive graph state.
type Solver struct {
	src pts.Source
	cfg Config

	nodes   []node
	numSyms int32

	complex []complexAssign

	// loadQueue holds symbols whose blocks await demand loading.
	loadQueue []int32
	loadedBlk []bool // per symbol

	// funcptr linking state.
	recs      []prim.FuncRecord
	recOfFunc map[int32]int // function symbol node → record index
	ptrRecs   []int         // record indexes of function-pointer symbols

	pass    int32
	changed bool

	// traversal scratch (see reach.go).
	tEpoch   int32
	tVisit   []int32
	tIndex   []int32
	tLow     []int32
	tOnStack []bool
	tDone    []bool
	tVal     []*set.Set
	nEpoch   int32
	nSeen    []int32
	gnBuf    []int32
	gnSyms   []prim.SymID
	lvBuf    []prim.SymID

	// Per-pass set machinery: reachability results are sealed into the
	// arena and hash-consed through the table, both rewound at each pass
	// boundary so set storage tracks the high-water mark of one pass
	// instead of the churn of all of them.
	arena *set.Arena
	table *set.Table
	bld   set.Builder

	// snap is the frozen read-only query structure built after the
	// fixpoint converges; all Result queries go through it (see
	// snapshot.go) and may run concurrently.
	snap *snapshot

	m pts.Metrics
}

type node struct {
	skip  int32 // ≥0: unified into that node
	edges []int32
	eset  *set.Sparse
	base  []prim.SymID // sorted base elements (lvals)
	deref int32        // node id of n(*x), or -1

	relevant bool
	// unloaded lists member symbols whose blocks are not yet loaded
	// (demand mode); loading happens when the node becomes relevant.
	unloaded []int32

	cachePass int32
	cache     *set.Set
}

// Solve runs the analysis over src.
func Solve(src pts.Source, cfg Config) (*Result, error) {
	return SolveCtx(context.Background(), src, cfg)
}

// SolveCtx is Solve under a context: the outer fixpoint checks for
// cancellation once per pass and every few hundred complex assignments
// within a pass, so a long solve aborts promptly with ctx.Err(). The
// background context costs one nil check per boundary.
func SolveCtx(ctx context.Context, src pts.Source, cfg Config) (*Result, error) {
	if cfg.MaxPasses == 0 {
		cfg.MaxPasses = 1 << 20
	}
	s := &Solver{
		src:       src,
		cfg:       cfg,
		numSyms:   int32(src.NumSyms()),
		recOfFunc: map[int32]int{},
		arena:     set.NewArena(),
		table:     set.NewTable(),
	}
	s.nodes = make([]node, s.numSyms)
	for i := range s.nodes {
		s.nodes[i].skip = -1
		s.nodes[i].deref = -1
	}
	s.loadedBlk = make([]bool, s.numSyms)
	for i := int32(0); i < s.numSyms; i++ {
		if src.BlockLen(prim.SymID(i)) > 0 {
			s.nodes[i].unloaded = append(s.nodes[i].unloaded, i)
		}
	}

	// Function records.
	s.recs = src.Funcs()
	for ri := range s.recs {
		fn := int32(s.recs[ri].Func)
		sym := src.Sym(s.recs[ri].Func)
		if sym.Kind == prim.SymFunc {
			s.recOfFunc[fn] = ri
		}
		if sym.FuncPtr {
			s.ptrRecs = append(s.ptrRecs, ri)
		}
	}

	// Static section: base elements, always loaded.
	statics, err := src.Statics()
	if err != nil {
		return nil, err
	}
	s.m.Loaded += len(statics)
	for _, a := range statics {
		s.addBase(int32(a.Dst), a.Src)
	}

	if !cfg.DemandLoad {
		for i := int32(0); i < s.numSyms; i++ {
			if err := s.loadBlock(i); err != nil {
				return nil, err
			}
		}
	}
	if err := s.drainLoads(); err != nil {
		return nil, err
	}

	// The iteration algorithm (Figure 5). With jobs >= 2 the passes run
	// as barrier-synchronized waves over the condensation DAG (see
	// wave.go); both paths reach the same unique least fixpoint, so the
	// points-to relation is byte-identical either way.
	if cfg.Jobs >= 2 {
		err = s.solveWaves(ctx)
	} else {
		err = s.solveSeq(ctx)
	}
	if err != nil {
		return nil, err
	}

	// Nothing mutates the graph after convergence: freeze it into the
	// read-only snapshot (skip chains resolved, all lval sets
	// materialized across cfg.Jobs workers) and drop the fixpoint
	// scratch. Every Result query from here on is a lock-free lookup.
	s.pass++
	s.snap = s.buildSnapshot()
	s.releaseScratch()
	s.m.InCore = len(s.complex)
	s.m.InFile = pts.TotalAssigns(src)
	res := &Result{s: s}
	res.fillMetrics()
	return res, nil
}

// solveSeq is the sequential reference fixpoint: one pass applies every
// in-core complex assignment against the mutable graph (reachability via
// getLvals, cycle unification, per-pass caching) until nothing changes.
func (s *Solver) solveSeq(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.pass++
		if int(s.pass) > s.cfg.MaxPasses {
			return fmt.Errorf("core: no convergence after %d passes", s.cfg.MaxPasses)
		}
		s.m.Passes++
		s.changed = false
		s.flushShared()

		for i := 0; i < len(s.complex); i++ {
			if i&0xff == 0xff {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			ca := s.complex[i]
			switch ca.kind {
			case ckStore: // *x = y: add an edge n(z) → n(y) for each &z in lvals(x)
				y := s.find(ca.y)
				for _, z := range s.getLvalsNodes(ca.x) {
					s.addEdge(z, y)
				}
			case ckLoad: // x = *y: edges n(x) → n(*y) and n(*y) → n(z)
				dy := s.derefNode(ca.y)
				s.addEdge(s.find(ca.x), dy)
				for _, z := range s.getLvalsNodes(ca.y) {
					s.addEdge(s.find(dy), z)
				}
			}
			if err := s.drainLoads(); err != nil {
				return err
			}
		}

		if err := s.funcPtrPass(); err != nil {
			return err
		}
		if err := s.drainLoads(); err != nil {
			return err
		}

		if !s.changed {
			return nil
		}
	}
}

// releaseScratch frees the traversal state the snapshot supersedes,
// including the per-pass arena (whose sets no guarded read can reach
// once the final pass counter has advanced).
func (s *Solver) releaseScratch() {
	s.tVisit, s.tIndex, s.tLow, s.tOnStack, s.tDone = nil, nil, nil, nil, nil
	s.tVal, s.nSeen, s.gnBuf = nil, nil, nil
	s.gnSyms, s.lvBuf = nil, nil
	s.arena, s.table = nil, nil
	s.bld = set.Builder{}
	for i := range s.nodes {
		s.nodes[i].cache = nil
		s.nodes[i].eset = nil
	}
}

// funcPtrPass links indirect calls: when a function g reaches the
// points-to set of a marked function pointer f, add g$i = f$i and
// f$ret = g$ret (Section 4).
func (s *Solver) funcPtrPass() error {
	for _, ri := range s.ptrRecs {
		r := &s.recs[ri]
		fpNode := s.find(int32(r.Func))
		s.lvBuf = s.getLvals(fpNode).AppendSyms(s.lvBuf[:0])
		for _, lv := range s.lvBuf {
			gi, ok := s.recOfFunc[int32(lv)]
			if !ok {
				continue
			}
			g := &s.recs[gi]
			n := len(r.Params)
			if len(g.Params) < n {
				n = len(g.Params)
			}
			for i := 0; i < n; i++ {
				s.addEdge(s.find(int32(g.Params[i])), s.find(int32(r.Params[i])))
			}
			if r.Ret != prim.NoSym && g.Ret != prim.NoSym {
				s.addEdge(s.find(int32(r.Ret)), s.find(int32(g.Ret)))
			}
		}
	}
	return nil
}

// Result exposes the solved points-to relation. All queries read the
// frozen snapshot, so a Result is safe for concurrent use by multiple
// goroutines.
type Result struct {
	s *Solver
}

// PointsTo returns the objects sym may point to, sorted. The returned
// slice is shared and must not be mutated.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	if int32(sym) < 0 || int32(sym) >= r.s.numSyms {
		return nil
	}
	return r.s.snap.lvals(int32(sym))
}

// Metrics returns solver statistics.
func (r *Result) Metrics() pts.Metrics { return r.s.m }

// fillMetrics computes the Table 3 accounting (pointer variables with
// non-empty sets and total relations) by fanning the batch of per-symbol
// queries out across cfg.Jobs shards. Each worker accumulates privately;
// the totals are order-independent sums, so the result is identical to
// the sequential loop.
func (r *Result) fillMetrics() {
	n := int(r.s.numSyms)
	w := parallel.Workers(r.s.cfg.Jobs)
	vars := make([]int, w)
	rels := make([]int, w)
	parallel.Shard(r.s.cfg.Jobs, n, func(wk, lo, hi int) error {
		for i := lo; i < hi; i++ {
			id := prim.SymID(i)
			if !pts.CountedAsPointerVar(r.s.src.Sym(id).Kind) {
				continue
			}
			if c := len(r.PointsTo(id)); c > 0 {
				vars[wk]++
				rels[wk] += c
			}
		}
		return nil
	})
	for i := 0; i < w; i++ {
		r.s.m.PointerVars += vars[i]
		r.s.m.Relations += rels[i]
	}
	// With caching on, keep the batch-query accounting from the mutable
	// era: the first query of a component materializes its set (a miss);
	// every later query of the same component is answered by the shared
	// set (a hit). Computed in one deterministic pass so the totals are
	// identical at any worker count.
	if r.s.cfg.Cache {
		touched := make([]bool, len(r.s.snap.sets))
		var queries, distinct int64
		for i := 0; i < n; i++ {
			id := prim.SymID(i)
			if !pts.CountedAsPointerVar(r.s.src.Sym(id).Kind) || len(r.PointsTo(id)) == 0 {
				continue
			}
			queries++
			c := r.s.snap.comp[r.s.snap.rep[i]]
			if !touched[c] {
				touched[c] = true
				distinct++
			}
		}
		r.s.m.CacheHits += queries - distinct
		r.s.m.CacheMisses += distinct
	}
}
