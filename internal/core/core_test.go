package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cla/internal/frontend"
	"cla/internal/objfile"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/steens"
	"cla/internal/pts/worklist"
)

// solveSrc compiles C source and runs the pre-transitive solver.
func solveSrc(t *testing.T, src string, cfg Config) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := Solve(pts.NewMemSource(p), cfg)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return p, res
}

// ptsOf returns the names of objects that name may point to.
func ptsOf(p *prim.Program, r pts.Result, name string) []string {
	id := p.SymIDByName(name)
	if id == prim.NoSym {
		return nil
	}
	var out []string
	for _, z := range r.PointsTo(id) {
		out = append(out, p.Sym(z).Name)
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPaperFigure3(t *testing.T) {
	// int x, *y; int **z; z = &y; *z = &x; derives y -> &x.
	src := `int x, *y; int **z;
void m(void) { z = &y; *z = &x; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "z"); !eq(got, []string{"y"}) {
		t.Errorf("pts(z) = %v", got)
	}
	if got := ptsOf(p, r, "y"); !eq(got, []string{"x"}) {
		t.Errorf("pts(y) = %v, want [x]", got)
	}
}

func TestBasicFlow(t *testing.T) {
	src := `int a, b, *p, *q;
void m(void) { p = &a; q = p; p = &b; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "q"); !eq(got, []string{"a", "b"}) {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestFlowInsensitivityOrderIndependence(t *testing.T) {
	// q = p before p = &a must still see &a (flow-insensitive).
	src := `int a, *p, *q;
void m(void) { q = p; p = &a; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "q"); !eq(got, []string{"a"}) {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestStoreThenLoad(t *testing.T) {
	src := `int v, *a, *b, **pp;
void m(void) { pp = &a; *pp = &v; b = *pp; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "a"); !eq(got, []string{"v"}) {
		t.Errorf("pts(a) = %v", got)
	}
	if got := ptsOf(p, r, "b"); !eq(got, []string{"v"}) {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestCycle(t *testing.T) {
	src := `int v, *p, *q, *r;
void m(void) { p = q; q = r; r = p; q = &v; }`
	p, r := solveSrc(t, src, DefaultConfig())
	for _, name := range []string{"p", "q", "r"} {
		if got := ptsOf(p, r, name); !eq(got, []string{"v"}) {
			t.Errorf("pts(%s) = %v", name, got)
		}
	}
	if r.Metrics().Unifications == 0 {
		t.Error("cycle not unified")
	}
}

func TestSelfLoop(t *testing.T) {
	src := `int v, *p;
void m(void) { p = p; p = &v; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "p"); !eq(got, []string{"v"}) {
		t.Errorf("pts(p) = %v", got)
	}
}

func TestFunctionParamReturnFlow(t *testing.T) {
	src := `int g1, g2;
int *id(int *v) { return v; }
int *r1, *r2;
void m(void) { r1 = id(&g1); r2 = id(&g2); }`
	p, r := solveSrc(t, src, DefaultConfig())
	// Context-insensitive: both results see both globals.
	if got := ptsOf(p, r, "r1"); !eq(got, []string{"g1", "g2"}) {
		t.Errorf("pts(r1) = %v", got)
	}
	if got := ptsOf(p, r, "r2"); !eq(got, []string{"g1", "g2"}) {
		t.Errorf("pts(r2) = %v", got)
	}
}

func TestIndirectCallLinking(t *testing.T) {
	src := `int obj;
int *get(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = get; res = fp(&obj); }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "fp"); !eq(got, []string{"get"}) {
		t.Errorf("pts(fp) = %v", got)
	}
	if got := ptsOf(p, r, "res"); !eq(got, []string{"obj"}) {
		t.Errorf("pts(res) = %v", got)
	}
	// The callee's parameter received the argument.
	if got := ptsOf(p, r, "a"); !eq(got, []string{"obj"}) {
		t.Errorf("pts(a) = %v", got)
	}
}

func TestIndirectCallMultipleTargets(t *testing.T) {
	src := `int o1, o2;
int *f1(int *a) { return a; }
int *f2(int *b) { return b; }
int *(*fp)(int *);
int *res;
void m(int c) {
	if (c) fp = f1; else fp = f2;
	res = fp(&o1);
}`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "fp"); !eq(got, []string{"f1", "f2"}) {
		t.Errorf("pts(fp) = %v", got)
	}
	if got := ptsOf(p, r, "res"); !eq(got, []string{"o1"}) {
		t.Errorf("pts(res) = %v", got)
	}
	if got := ptsOf(p, r, "b"); !eq(got, []string{"o1"}) {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestMallocSites(t *testing.T) {
	src := `void *malloc(unsigned long);
int *p, *q;
void m(void) {
	p = malloc(4);
	q = malloc(4);
}`
	p, r := solveSrc(t, src, DefaultConfig())
	pp := ptsOf(p, r, "p")
	qq := ptsOf(p, r, "q")
	if len(pp) != 1 || len(qq) != 1 || eq(pp, qq) {
		t.Errorf("pts(p)=%v pts(q)=%v: malloc sites must be distinct", pp, qq)
	}
}

func TestFieldBasedPointsTo(t *testing.T) {
	// The Section 3 example: field-based gives p and r &z, not q and s.
	src := `struct S { int *x; int *y; } A, B;
int z;
void m(void) {
	int *p, *q, *r, *s;
	A.x = &z;
	p = A.x;
	q = A.y;
	r = B.x;
	s = B.y;
}`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "p"); !eq(got, []string{"z"}) {
		t.Errorf("pts(p) = %v", got)
	}
	if got := ptsOf(p, r, "q"); got != nil {
		t.Errorf("pts(q) = %v, want empty", got)
	}
	if got := ptsOf(p, r, "r"); !eq(got, []string{"z"}) {
		t.Errorf("pts(r) = %v", got)
	}
	if got := ptsOf(p, r, "s"); got != nil {
		t.Errorf("pts(s) = %v, want empty", got)
	}
}

func TestCopyIndirect(t *testing.T) {
	src := `int v, *a, *b, **p, **q;
void m(void) { p = &a; q = &b; a = &v; *q = *p; }`
	p, r := solveSrc(t, src, DefaultConfig())
	if got := ptsOf(p, r, "b"); !eq(got, []string{"v"}) {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestDemandLoadingSkipsIrrelevant(t *testing.T) {
	// Large irrelevant chain: x1 = x2 = ... never points anywhere, so
	// their blocks must not be loaded.
	src := `int x1, x2, x3, x4, x5, x6, x7, x8;
int v, *p, *q;
void m(void) {
	x1 = x2; x2 = x3; x3 = x4; x4 = x5;
	x5 = x6; x6 = x7; x7 = x8;
	p = &v;
	q = p;
}`
	_, r := solveSrc(t, src, DefaultConfig())
	m := r.Metrics()
	// Loaded should cover the p/q chain and statics, not the x chain.
	if m.Loaded >= m.InFile {
		t.Errorf("demand loading ineffective: loaded %d of %d", m.Loaded, m.InFile)
	}
	if m.Relations == 0 {
		t.Error("no relations computed")
	}
}

func TestAllConfigsAgree(t *testing.T) {
	src := `
struct S { int *f; struct S *next; };
struct S s1, s2, *cur;
int a, b, c;
int *pick(int *x, int *y) { if (a) return x; return y; }
int *(*sel)(int *, int *);
void m(void) {
	int *l1, *l2;
	cur = &s1;
	cur->next = &s2;
	cur = cur->next;
	cur->f = &a;
	l1 = cur->f;
	sel = pick;
	l2 = sel(&b, &c);
	*(&l1) = l2;
}`
	configs := []Config{
		{Cache: true, CycleElim: true, DemandLoad: true},
		{Cache: true, CycleElim: true, DemandLoad: false},
		{Cache: false, CycleElim: true, DemandLoad: true},
		{Cache: true, CycleElim: false, DemandLoad: true},
		{Cache: false, CycleElim: false, DemandLoad: false},
	}
	p, base := solveSrc(t, src, DefaultConfig())
	names := []string{"cur", "l1", "l2", "sel", "S.f", "S.next"}
	for _, cfg := range configs {
		_, r := solveSrc(t, src, cfg)
		for _, n := range names {
			if got, want := ptsOf(p, r, n), ptsOf(p, base, n); !eq(got, want) {
				t.Errorf("config %+v: pts(%s) = %v, want %v", cfg, n, got, want)
			}
		}
	}
}

// randomProgram builds a random assignment database for property testing.
func randomProgram(rng *rand.Rand, nsyms, nassign int) *prim.Program {
	p := &prim.Program{}
	for i := 0; i < nsyms; i++ {
		p.AddSym(prim.Symbol{Name: fmt.Sprintf("v%d", i), Kind: prim.SymGlobal, Type: "int*"})
	}
	for i := 0; i < nassign; i++ {
		a := prim.Assign{
			Kind:     prim.Kind(rng.Intn(prim.NumKinds)),
			Dst:      prim.SymID(rng.Intn(nsyms)),
			Src:      prim.SymID(rng.Intn(nsyms)),
			Op:       prim.OpCopy,
			Strength: prim.Strong,
		}
		p.AddAssign(a)
	}
	return p
}

// TestCoreMatchesWorklistOnRandomPrograms is the central correctness
// property: the pre-transitive solver (in every configuration) computes
// exactly the same points-to sets as the baseline transitive-closure
// solver.
func TestCoreMatchesWorklistOnRandomPrograms(t *testing.T) {
	configs := []Config{
		{Cache: true, CycleElim: true, DemandLoad: true},
		{Cache: true, CycleElim: true, DemandLoad: false},
		{Cache: false, CycleElim: true, DemandLoad: true},
		{Cache: true, CycleElim: false, DemandLoad: true},
		{Cache: false, CycleElim: false, DemandLoad: true},
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nsyms := 3 + rng.Intn(15)
		prog := randomProgram(rng, nsyms, 5+rng.Intn(40))
		src := pts.NewMemSource(prog)
		want, err := worklist.Solve(src)
		if err != nil {
			t.Fatalf("seed %d: worklist: %v", seed, err)
		}
		for ci, cfg := range configs {
			cfg.MaxPasses = 10000
			got, err := Solve(pts.NewMemSource(prog), cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}
			for i := 0; i < nsyms; i++ {
				id := prim.SymID(i)
				g := got.PointsTo(id)
				w := want.PointsTo(id)
				if len(g) != len(w) {
					t.Fatalf("seed %d cfg %d: pts(v%d) = %v, want %v",
						seed, ci, i, g, w)
				}
				for j := range g {
					if g[j] != w[j] {
						t.Fatalf("seed %d cfg %d: pts(v%d) = %v, want %v",
							seed, ci, i, g, w)
					}
				}
			}
		}
	}
}

// TestSteensgaardOverapproximates: unification results must be supersets
// of the subset-based results.
func TestSteensgaardOverapproximates(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nsyms := 3 + rng.Intn(12)
		prog := randomProgram(rng, nsyms, 5+rng.Intn(30))
		exact, err := Solve(pts.NewMemSource(prog), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		approx, err := steens.Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nsyms; i++ {
			id := prim.SymID(i)
			e := exact.PointsTo(id)
			a := approx.PointsTo(id)
			set := map[prim.SymID]bool{}
			for _, z := range a {
				set[z] = true
			}
			for _, z := range e {
				if !set[z] {
					t.Fatalf("seed %d: steensgaard pts(v%d)=%v missing %v from exact %v",
						seed, i, a, p2name(prog, z), e)
				}
			}
		}
	}
}

func p2name(p *prim.Program, id prim.SymID) string { return p.Sym(id).Name }

func TestMetricsAccounting(t *testing.T) {
	src := `int v, *p, *q, **pp;
void m(void) { p = &v; q = p; pp = &p; *pp = q; }`
	_, r := solveSrc(t, src, DefaultConfig())
	m := r.Metrics()
	if m.InFile == 0 || m.Loaded == 0 || m.Passes == 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.InCore == 0 {
		t.Error("complex assignment not retained in core")
	}
	if m.PointerVars == 0 || m.Relations == 0 {
		t.Errorf("result metrics empty: %+v", m)
	}
}

func TestCacheEffectiveness(t *testing.T) {
	// A diamond fan-in repeated: caching must convert repeated
	// reachability into hits.
	src := `int v, *a, *b, *c, *d, **s1, **s2, **s3;
void m(void) {
	a = &v; b = a; c = b; d = c;
	s1 = &a; s2 = &b; s3 = &c;
	*s1 = d; *s2 = d; *s3 = d;
}`
	_, r := solveSrc(t, src, DefaultConfig())
	if r.Metrics().CacheHits == 0 {
		t.Errorf("no cache hits: %+v", r.Metrics())
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	// 50k-long copy chain: traversal must be iterative.
	p := &prim.Program{}
	const n = 50000
	for i := 0; i < n; i++ {
		p.AddSym(prim.Symbol{Name: fmt.Sprintf("c%d", i), Kind: prim.SymGlobal})
	}
	tail := p.AddSym(prim.Symbol{Name: "tail", Kind: prim.SymGlobal})
	obj := p.AddSym(prim.Symbol{Name: "obj", Kind: prim.SymGlobal})
	p.AddAssign(prim.Assign{Kind: prim.Base, Dst: tail, Src: obj, Strength: prim.Strong})
	p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: prim.SymID(n - 1), Src: tail, Strength: prim.Strong})
	for i := n - 1; i > 0; i-- {
		p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: prim.SymID(i - 1), Src: prim.SymID(i), Strength: prim.Strong})
	}
	// Force a query through the whole chain with a complex assignment.
	q := p.AddSym(prim.Symbol{Name: "q", Kind: prim.SymGlobal})
	p.AddAssign(prim.Assign{Kind: prim.LoadInd, Dst: q, Src: 0, Strength: prim.Strong})
	r, err := Solve(pts.NewMemSource(p), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsTo(0); len(got) != 1 || got[0] != obj {
		t.Errorf("pts(c0) = %v", got)
	}
}

func TestGiantCycleUnifies(t *testing.T) {
	p := &prim.Program{}
	const n = 10000
	for i := 0; i < n; i++ {
		p.AddSym(prim.Symbol{Name: fmt.Sprintf("r%d", i), Kind: prim.SymGlobal})
	}
	obj := p.AddSym(prim.Symbol{Name: "obj", Kind: prim.SymGlobal})
	for i := 0; i < n; i++ {
		p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: prim.SymID(i), Src: prim.SymID((i + 1) % n), Strength: prim.Strong})
	}
	p.AddAssign(prim.Assign{Kind: prim.Base, Dst: 0, Src: obj, Strength: prim.Strong})
	q := p.AddSym(prim.Symbol{Name: "q", Kind: prim.SymGlobal})
	p.AddAssign(prim.Assign{Kind: prim.LoadInd, Dst: q, Src: prim.SymID(n / 2), Strength: prim.Strong})
	r, err := Solve(pts.NewMemSource(p), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsTo(prim.SymID(n / 2)); len(got) != 1 || got[0] != obj {
		t.Errorf("pts(mid) = %v", got)
	}
	if m := r.Metrics(); m.Unifications < n-1 {
		t.Errorf("unifications = %d, want >= %d", m.Unifications, n-1)
	}
}

func TestEmptyProgram(t *testing.T) {
	r, err := Solve(pts.NewMemSource(&prim.Program{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m := r.Metrics(); m.Relations != 0 || m.PointerVars != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPointsToOutOfRange(t *testing.T) {
	r, err := Solve(pts.NewMemSource(&prim.Program{}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsTo(99); got != nil {
		t.Errorf("PointsTo(99) = %v", got)
	}
	if got := r.PointsTo(prim.NoSym); got != nil {
		t.Errorf("PointsTo(NoSym) = %v", got)
	}
}

func TestJoinPointSharedSets(t *testing.T) {
	// Many variables reading the same join point share one lval set
	// (the paper's set-sharing optimization).
	src := `int o1, o2, *join;
int *a, *b, *c, *d;
void m(void) {
	join = &o1; join = &o2;
	a = join; b = join; c = join; d = join;
}`
	p, r := solveSrc(t, src, DefaultConfig())
	want := []string{"o1", "o2"}
	for _, n := range []string{"a", "b", "c", "d", "join"} {
		if got := ptsOf(p, r, n); !eq(got, want) {
			t.Errorf("pts(%s) = %v", n, got)
		}
	}
}

func TestDerefNodesUnifyWithCycleMembers(t *testing.T) {
	// p and q form a copy cycle and are both dereferenced: after their
	// nodes unify, loads through either see stores through both.
	src := `int v1, v2, *a, *b, **p, **q;
void m(void) {
	p = q; q = p;
	p = &a; q = &b;
	*p = &v1;
	*q = &v2;
	a = *p;
	b = *q;
}`
	p, r := solveSrc(t, src, DefaultConfig())
	for _, n := range []string{"a", "b"} {
		got := ptsOf(p, r, n)
		if !eq(got, []string{"v1", "v2"}) {
			t.Errorf("pts(%s) = %v, want [v1 v2]", n, got)
		}
	}
}

func TestMaxPassesGuard(t *testing.T) {
	src := `int v, *p, **q;
void m(void) { q = &p; *q = &v; p = *q; }`
	prog, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxPasses = 1
	if _, err := Solve(pts.NewMemSource(prog), cfg); err == nil {
		t.Error("expected non-convergence error with MaxPasses=1")
	}
}

func TestResultQueryAfterSolveIsStable(t *testing.T) {
	src := `int v, *p, *q;
void m(void) { p = &v; q = p; }`
	p, r := solveSrc(t, src, DefaultConfig())
	first := ptsOf(p, r, "q")
	for i := 0; i < 5; i++ {
		if got := ptsOf(p, r, "q"); !eq(got, first) {
			t.Fatalf("query %d changed: %v vs %v", i, got, first)
		}
	}
	// Queries on unrelated symbols don't disturb earlier answers.
	ptsOf(p, r, "v")
	ptsOf(p, r, "m")
	if got := ptsOf(p, r, "q"); !eq(got, first) {
		t.Errorf("later queries corrupted result: %v", got)
	}
}

func TestSharedFileSourceDemand(t *testing.T) {
	// Demand loading through a real serialized file, not MemSource.
	src := `int v, *p, *q;
int dead1, dead2;
void m(void) { p = &v; q = p; dead1 = dead2; }`
	prog, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.clo"
	if err := objfile.WriteFile(path, prog); err != nil {
		t.Fatal(err)
	}
	rd, err := objfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	res, err := Solve(&pts.FileSource{R: rd}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := prog.SymIDByName("q")
	set := res.PointsTo(q)
	if len(set) != 1 || prog.Sym(set[0]).Name != "v" {
		t.Errorf("pts(q) = %v", set)
	}
	// The dead chain's blocks stay unread.
	if loaded := rd.LoadStats().EntriesLoaded; loaded >= int64(res.Metrics().InFile) {
		t.Errorf("loaded %d of %d entries", loaded, res.Metrics().InFile)
	}
}
