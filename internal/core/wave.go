// Phase-parallel wave fixpoint for the pre-transitive solver. Each pass
// of the Figure 5 iteration becomes one wave: the constraint graph is
// SCC-condensed and topologically leveled (the same machinery the
// post-fixpoint snapshot uses, shared via internal/scc), every
// component's lval set is materialized bottom-up with components of
// equal height fanned out across the worker pool, and the in-core
// complex assignments plus funcptr links are then evaluated in parallel
// against those frozen sets — each worker emitting deferred edge
// insertions into a private buffer instead of touching the graph. The
// buffers are merged sequentially in deterministic order (workers own
// contiguous assignment shards, so worker-slot order is assignment
// order) and the next wave begins if anything changed.
//
// The solver-global epoch scratch of reach.go never runs here: workers
// carry private builders, arenas and interning tables, and the mutable
// graph operations (unify, addEdge, demand loads) stay sequential at
// wave boundaries. Andersen's analysis has a unique least fixpoint, so
// the converged graph — and therefore the snapshot and every points-to
// set — is byte-identical to the sequential reference at any -j.
package core

import (
	"context"
	"fmt"

	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts/set"
	"cla/internal/scc"
)

// wavePairsCheck is how many deferred-pair emissions or applications may
// pass between cancellation checks.
const wavePairsCheck = 256

// coreWaveWorker is one worker's private solve scratch: set machinery
// for materialization and node-dedup scratch plus the deferred-edge
// buffer for rule evaluation.
type coreWaveWorker struct {
	bld   set.Builder
	arena *set.Arena
	table *set.Table

	seen  []int32
	epoch int32
	syms  []prim.SymID
	nbuf  []int32

	pairs []int64
	apps  int
}

func packEdge(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

func unpackEdge(p int64) (a, b int32) { return int32(p >> 32), int32(uint32(p)) }

// lvalNodes resolves x's materialized lval set to deduped representative
// nodes — the parallel analogue of getLvalsNodes, reading only frozen
// per-pass state.
func (w *coreWaveWorker) lvalNodes(rep, comp []int32, compSets []*set.Set, x int32) []int32 {
	r := rep[x]
	w.syms = compSets[comp[r]].AppendSyms(w.syms[:0])
	w.epoch++
	out := w.nbuf[:0]
	for _, lv := range w.syms {
		rr := rep[lv]
		if w.seen[rr] != w.epoch {
			w.seen[rr] = w.epoch
			out = append(out, rr)
		}
	}
	w.nbuf = out
	return out
}

// solveWaves runs the fixpoint as barrier-synchronized waves. Graph
// state entering each wave equals what a sequential pass would start
// from; only the order in which the pass discovers new edges differs,
// which the unique least fixpoint makes unobservable in the result.
func (s *Solver) solveWaves(ctx context.Context) error {
	jobs := s.cfg.Jobs
	ws := make([]coreWaveWorker, parallel.Workers(jobs))
	for i := range ws {
		ws[i].arena = set.NewArena()
		ws[i].table = set.NewTable()
	}
	var (
		rep      []int32
		compSets []*set.Set
	)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.pass++
		if int(s.pass) > s.cfg.MaxPasses {
			return fmt.Errorf("core: no convergence after %d passes", s.cfg.MaxPasses)
		}
		s.m.Passes++
		s.m.Waves++
		s.changed = false

		// Deref nodes are created up front, sequentially, so the parallel
		// rule phase only ever reads the node table.
		for _, ca := range s.complex {
			if ca.kind == ckLoad {
				s.derefNode(ca.y)
			}
		}

		// Condense and level the live graph.
		n := len(s.nodes)
		rep = rep[:0]
		for i := 0; i < n; i++ {
			rep = append(rep, s.find(int32(i)))
		}
		adj := s.condensedAdj(rep)
		comp, members := scc.Condense(adj, func(v int32) bool { return rep[v] == v })
		s.m.SCCRounds++

		// Cycle elimination: every multi-member component is a cycle; the
		// sequential path unifies them lazily during reachability, the
		// wave path unifies them here, between waves, where the graph is
		// safely mutable.
		if s.cfg.CycleElim {
			unified := false
			for _, ms := range members {
				if len(ms) <= 1 {
					continue
				}
				r := ms[0]
				for _, m := range ms[1:] {
					r = s.unify(r, m)
				}
				unified = true
			}
			if unified {
				for i := 0; i < n; i++ {
					rep[i] = s.find(int32(i))
				}
			}
			// Unification can queue demand loads (a relevant node absorbs
			// unloaded members). Loading grows the graph, invalidating
			// this wave's condensation — restart the pass.
			if err := s.drainLoads(); err != nil {
				return err
			}
			if s.changed {
				continue
			}
		}
		succs, _, buckets := scc.Level(comp, members, adj)

		// Materialize every component's lval set bottom-up, level by
		// level, with per-worker builders sealing into per-worker arenas
		// (rewound each wave, like the sequential path's per-pass flush).
		nc := len(members)
		if cap(compSets) >= nc {
			compSets = compSets[:nc]
			clear(compSets)
		} else {
			compSets = make([]*set.Set, nc)
		}
		for i := range ws {
			ws[i].arena.Reset()
			ws[i].table.Reset()
			if len(ws[i].seen) < n {
				ws[i].seen = make([]int32, 2*n)
				ws[i].epoch = 0
			}
		}
		for _, b := range buckets {
			if len(b) > s.m.WaveWidth {
				s.m.WaveWidth = len(b)
			}
		}
		err := parallel.LevelsCtx(ctx, jobs, len(buckets),
			func(l int) int { return len(buckets[l]) },
			func(l, wk, lo, hi int) error {
				w := &ws[wk]
				for bi := lo; bi < hi; bi++ {
					c := buckets[l][bi]
					w.bld.Reset()
					for _, m := range members[c] {
						w.bld.MergeSyms(s.nodes[m].base)
					}
					for _, sc := range succs[c] {
						w.bld.MergeSet(compSets[sc])
					}
					compSets[c] = w.bld.Seal(w.arena, w.table)
				}
				return nil
			}, nil)
		if err != nil {
			return err
		}

		// Complex rules fire against the frozen sets; workers defer the
		// edge insertions. Shards are contiguous, so draining the buffers
		// in worker order preserves assignment order exactly.
		err = parallel.ShardCtx(ctx, jobs, len(s.complex), func(wk, lo, hi int) error {
			w := &ws[wk]
			w.pairs = w.pairs[:0]
			for i := lo; i < hi; i++ {
				ca := s.complex[i]
				switch ca.kind {
				case ckStore: // *x = y: edge n(z) → n(y) for each &z in lvals(x)
					for _, z := range w.lvalNodes(rep, comp, compSets, ca.x) {
						w.pairs = append(w.pairs, packEdge(z, ca.y))
					}
				case ckLoad: // x = *y: edges n(x) → n(*y) and n(*y) → n(z)
					d := rep[s.nodes[rep[ca.y]].deref]
					w.pairs = append(w.pairs, packEdge(ca.x, d))
					for _, z := range w.lvalNodes(rep, comp, compSets, ca.y) {
						w.pairs = append(w.pairs, packEdge(d, z))
					}
				}
				if w.apps++; w.apps >= wavePairsCheck {
					w.apps = 0
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := s.mergePairs(ctx, ws); err != nil {
			return err
		}

		// Funcptr linking against the same frozen sets.
		err = parallel.ShardCtx(ctx, jobs, len(s.ptrRecs), func(wk, lo, hi int) error {
			w := &ws[wk]
			w.pairs = w.pairs[:0]
			for i := lo; i < hi; i++ {
				r := &s.recs[s.ptrRecs[i]]
				w.syms = compSets[comp[rep[int32(r.Func)]]].AppendSyms(w.syms[:0])
				for _, lv := range w.syms {
					gi, ok := s.recOfFunc[int32(lv)]
					if !ok {
						continue
					}
					g := &s.recs[gi]
					np := len(r.Params)
					if len(g.Params) < np {
						np = len(g.Params)
					}
					for k := 0; k < np; k++ {
						w.pairs = append(w.pairs, packEdge(int32(g.Params[k]), int32(r.Params[k])))
					}
					if r.Ret != prim.NoSym && g.Ret != prim.NoSym {
						w.pairs = append(w.pairs, packEdge(int32(r.Ret), int32(g.Ret)))
					}
					if w.apps++; w.apps >= wavePairsCheck {
						w.apps = 0
						if err := ctx.Err(); err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := s.mergePairs(ctx, ws); err != nil {
			return err
		}

		if !s.changed {
			return nil
		}
	}
}

// mergePairs applies the deferred edge insertions sequentially, in
// worker-slot order, with the usual addEdge side effects (relevance,
// demand loads, the changed flag), then drains any queued loads.
func (s *Solver) mergePairs(ctx context.Context, ws []coreWaveWorker) error {
	applied := 0
	for wi := range ws {
		for _, p := range ws[wi].pairs {
			a, b := unpackEdge(p)
			s.addEdge(a, b)
			if applied++; applied >= wavePairsCheck {
				applied = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		s.m.DeltaMergeBytes += int64(8 * len(ws[wi].pairs))
		ws[wi].pairs = ws[wi].pairs[:0]
	}
	return s.drainLoads()
}
