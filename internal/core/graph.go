package core

import (
	"sort"

	"cla/internal/prim"
	"cla/internal/pts/set"
)

// find returns the representative of n, compressing skip chains.
func (s *Solver) find(n int32) int32 {
	root := n
	for s.nodes[root].skip >= 0 {
		root = s.nodes[root].skip
	}
	for s.nodes[n].skip >= 0 {
		next := s.nodes[n].skip
		s.nodes[n].skip = root
		n = next
	}
	return root
}

// newNode allocates an auxiliary node (deref nodes).
func (s *Solver) newNode() int32 {
	id := int32(len(s.nodes))
	s.nodes = append(s.nodes, node{skip: -1, deref: -1})
	// Grow traversal scratch lazily in reach.go; loadedBlk only covers
	// symbol nodes, which is fine: auxiliary nodes have no blocks.
	return id
}

// derefNode returns n(*y) for the representative of y, creating it on
// demand.
func (s *Solver) derefNode(y int32) int32 {
	r := s.find(y)
	if s.nodes[r].deref >= 0 {
		return s.find(s.nodes[r].deref)
	}
	d := s.newNode()
	s.nodes[r].deref = d
	return d
}

// addBase records lval ∈ baseElements(n(dst)) and makes dst relevant.
func (s *Solver) addBase(dst int32, lval prim.SymID) {
	r := s.find(dst)
	b := s.nodes[r].base
	i := sort.Search(len(b), func(i int) bool { return b[i] >= lval })
	if i < len(b) && b[i] == lval {
		return
	}
	b = append(b, 0)
	copy(b[i+1:], b[i:])
	b[i] = lval
	s.nodes[r].base = b
	s.nodes[r].cachePass = 0
	s.changed = true
	s.markRelevant(r)
}

// addEdge inserts n(a) → n(b). Relevance is re-checked even for existing
// edges so that late relevance (b became relevant after the edge appeared)
// still propagates on the next pass.
func (s *Solver) addEdge(a, b int32) bool {
	a, b = s.find(a), s.find(b)
	if a == b {
		return false
	}
	if s.nodes[b].relevant {
		s.markRelevant(a)
	}
	na := &s.nodes[a]
	if na.eset == nil {
		na.eset = new(set.Sparse)
		for _, e := range na.edges {
			na.eset.Add(e)
		}
	}
	if !na.eset.Add(b) {
		return false
	}
	na.edges = append(na.edges, b)
	na.cachePass = 0
	s.m.EdgesAdded++
	s.changed = true
	return true
}

// markRelevant flags the node as able to contribute lvals, queueing the
// demand load of every member symbol's block.
func (s *Solver) markRelevant(n int32) {
	r := s.find(n)
	nd := &s.nodes[r]
	if nd.relevant {
		if len(nd.unloaded) > 0 {
			s.queueLoads(nd)
		}
		return
	}
	nd.relevant = true
	s.changed = true
	s.queueLoads(nd)
}

func (s *Solver) queueLoads(nd *node) {
	if !s.cfg.DemandLoad {
		nd.unloaded = nil
		return
	}
	s.loadQueue = append(s.loadQueue, nd.unloaded...)
	nd.unloaded = nil
}

// drainLoads performs queued block loads until quiescence.
func (s *Solver) drainLoads() error {
	for len(s.loadQueue) > 0 {
		sym := s.loadQueue[len(s.loadQueue)-1]
		s.loadQueue = s.loadQueue[:len(s.loadQueue)-1]
		if err := s.loadBlock(sym); err != nil {
			return err
		}
	}
	return nil
}

// loadBlock reads the assignments whose source is sym and converts them to
// graph state: simple assignments become edges (and are discarded);
// complex assignments are retained in core. *x = *y is split through a
// fresh auxiliary node t: t = *y; *x = t.
func (s *Solver) loadBlock(sym int32) error {
	if sym < 0 || sym >= s.numSyms || s.loadedBlk[sym] {
		return nil
	}
	s.loadedBlk[sym] = true
	entries, err := s.src.Block(prim.SymID(sym))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	s.m.Loaded += len(entries)
	s.changed = true
	for _, a := range entries {
		d := int32(a.Dst)
		src := int32(a.Src)
		switch a.Kind {
		case prim.Simple:
			// d = sym: edge n(d) → n(sym); d becomes relevant via the
			// edge rule because sym is relevant.
			s.addEdge(d, src)
		case prim.StoreInd: // *d = sym
			s.complex = append(s.complex, complexAssign{kind: ckStore, x: d, y: src})
		case prim.LoadInd: // d = *sym
			s.complex = append(s.complex, complexAssign{kind: ckLoad, x: d, y: src})
		case prim.CopyInd: // *d = *sym → t = *sym; *d = t
			t := s.newNode()
			s.complex = append(s.complex,
				complexAssign{kind: ckLoad, x: t, y: src},
				complexAssign{kind: ckStore, x: d, y: t})
		case prim.Base:
			// Base assignments live in the static section; one appearing
			// in a block indicates database corruption.
			s.addBase(d, a.Src)
		}
	}
	return nil
}

// unify merges node a into node b (the paper's unifyNode with skip
// pointers), combining edges, base elements, deref nodes, relevance and
// pending loads. Callers pass representatives.
func (s *Solver) unify(a, b int32) int32 {
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	// Merge the smaller structure into the larger.
	if len(s.nodes[a].edges)+len(s.nodes[a].base) > len(s.nodes[b].edges)+len(s.nodes[b].base) {
		a, b = b, a
	}
	na, nb := &s.nodes[a], &s.nodes[b]
	s.m.Unifications++

	na.skip = b

	// Edges.
	if nb.eset == nil && len(na.edges) > 0 {
		nb.eset = new(set.Sparse)
		for _, e := range nb.edges {
			nb.eset.Add(e)
		}
	}
	for _, e := range na.edges {
		if e == b || e == a {
			continue
		}
		if nb.eset.Add(e) {
			nb.edges = append(nb.edges, e)
		}
	}
	na.edges = nil
	na.eset = nil

	// Base elements.
	nb.base = mergeSorted(nb.base, na.base)
	na.base = nil

	// Pending loads and relevance.
	nb.unloaded = append(nb.unloaded, na.unloaded...)
	na.unloaded = nil
	if na.relevant || nb.relevant {
		nb.relevant = true
		s.queueLoads(nb)
	}

	// Invalidate caches.
	na.cache, nb.cache = nil, nil
	na.cachePass, nb.cachePass = 0, 0

	// Deref nodes must unify too so *x and *y stay equivalent.
	da, db := na.deref, nb.deref
	na.deref = -1
	switch {
	case da >= 0 && db >= 0:
		s.unify(da, db)
	case da >= 0:
		nb.deref = da
	}
	return b
}

// mergeSorted unions two sorted SymID slices into a fresh sorted slice.
func mergeSorted(a, b []prim.SymID) []prim.SymID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]prim.SymID(nil), b...)
	}
	out := make([]prim.SymID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
