package core

import (
	"context"

	"cla/internal/pts"
)

// SolveWarmCtx is the pre-transitive solver's warm-start entry point:
// when warm carries a fixpoint solved from the same constraint digest
// (see pts.Warm), it is returned unchanged with reused=true and no work
// is done; otherwise the solve runs from scratch. Reuse is byte-exact —
// the solver is deterministic, so an unchanged database yields the
// unchanged fixpoint — which is what lets the incremental pipeline skip
// the solve phase entirely for no-op generations.
func SolveWarmCtx(ctx context.Context, src pts.Source, cfg Config,
	digest uint64, warm *pts.Warm) (res pts.Result, reused bool, err error) {
	if warm.Match(digest) {
		return warm.Result, true, nil
	}
	r, err := SolveCtx(ctx, src, cfg)
	if err != nil {
		return nil, false, err
	}
	return r, false, nil
}
