package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"cla/internal/prim"
	"cla/internal/pts"
)

// TestWaveMatchesSequentialAllConfigs pins the wave fixpoint against the
// sequential reference under every ablation: with and without cycle
// elimination and demand loading, the points-to sets must be identical.
func TestWaveMatchesSequentialAllConfigs(t *testing.T) {
	configs := []Config{
		DefaultConfig(),
		{Cache: true, DemandLoad: true},
		{CycleElim: true},
		{},
	}
	for _, seed := range []int64{1, 9, 23} {
		p := randProgram(seed, 150, 500)
		for ci, base := range configs {
			cfg := base
			cfg.Jobs = 1
			r1, err := Solve(pts.NewMemSource(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := allSets(p, r1)
			for _, jobs := range []int{2, 8} {
				cfg.Jobs = jobs
				rj, err := Solve(pts.NewMemSource(p), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, allSets(p, rj)) {
					t.Errorf("seed %d config %d: sets differ at jobs=%d", seed, ci, jobs)
				}
			}
		}
	}
}

// TestWaveFuncPtr checks indirect-call linking through the parallel
// funcptr phase.
func TestWaveFuncPtr(t *testing.T) {
	p := &prim.Program{}
	obj := p.AddSym(prim.Symbol{Name: "obj", Kind: prim.SymGlobal})
	fn := p.AddSym(prim.Symbol{Name: "f", Kind: prim.SymFunc})
	arg := p.AddSym(prim.Symbol{Name: "f$a", Kind: prim.SymParam})
	ret := p.AddSym(prim.Symbol{Name: "f$ret", Kind: prim.SymRet})
	fp := p.AddSym(prim.Symbol{Name: "fp", Kind: prim.SymGlobal, FuncPtr: true})
	fpa := p.AddSym(prim.Symbol{Name: "fp$a", Kind: prim.SymParam})
	fpr := p.AddSym(prim.Symbol{Name: "fp$ret", Kind: prim.SymRet})
	res := p.AddSym(prim.Symbol{Name: "res", Kind: prim.SymGlobal})
	p.Funcs = append(p.Funcs,
		prim.FuncRecord{Func: fn, Params: []prim.SymID{arg}, Ret: ret},
		prim.FuncRecord{Func: fp, Params: []prim.SymID{fpa}, Ret: fpr})
	p.AddAssign(prim.Assign{Kind: prim.Base, Dst: fp, Src: fn, Strength: prim.Strong})
	p.AddAssign(prim.Assign{Kind: prim.Base, Dst: fpa, Src: obj, Strength: prim.Strong})
	p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: ret, Src: arg, Strength: prim.Strong})
	p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: res, Src: fpr, Strength: prim.Strong})

	for _, jobs := range []int{1, 2, 8} {
		cfg := DefaultConfig()
		cfg.Jobs = jobs
		r, err := Solve(pts.NewMemSource(p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := r.PointsTo(res)
		if len(got) != 1 || got[0] != obj {
			t.Errorf("jobs=%d: pts(res) = %v, want [obj]", jobs, got)
		}
	}
}

// countdownCtx cancels after a fixed number of Err checks, making
// mid-wave cancellation deterministic.
type countdownCtx struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *countdownCtx) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestWaveCancellation(t *testing.T) {
	p := randProgram(5, 200, 900)
	cfg := DefaultConfig()
	cfg.Jobs = 8
	ctx := &countdownCtx{Context: context.Background(), after: 4}
	_, err := SolveCtx(ctx, pts.NewMemSource(p), cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
