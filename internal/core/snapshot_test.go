package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cla/internal/prim"
	"cla/internal/pts"
)

// randProgram builds a pseudo-random constraint workload with cycles,
// stores and loads so the snapshot exercises multi-member components,
// shared sets and several DAG levels.
func randProgram(seed int64, nsyms, nassign int) *prim.Program {
	rng := rand.New(rand.NewSource(seed))
	p := &prim.Program{}
	for i := 0; i < nsyms; i++ {
		p.AddSym(prim.Symbol{Name: fmt.Sprintf("s%d", i), Kind: prim.SymGlobal})
	}
	pick := func() prim.SymID { return prim.SymID(rng.Intn(nsyms)) }
	for i := 0; i < nassign; i++ {
		a := prim.Assign{Dst: pick(), Src: pick(), Strength: prim.Strong}
		switch rng.Intn(10) {
		case 0:
			a.Kind = prim.Base
		case 1:
			a.Kind = prim.StoreInd
		case 2:
			a.Kind = prim.LoadInd
		default:
			a.Kind = prim.Simple
		}
		p.AddAssign(a)
	}
	return p
}

// allSets snapshots every symbol's points-to set as plain slices.
func allSets(p *prim.Program, r *Result) [][]prim.SymID {
	out := make([][]prim.SymID, len(p.Syms))
	for i := range p.Syms {
		out[i] = append([]prim.SymID(nil), r.PointsTo(prim.SymID(i))...)
	}
	return out
}

// TestSnapshotMatchesAtAnyWorkerCount solves the same workload at
// different worker counts. jobs >= 2 selects the wave fixpoint, whose
// schedule counters (passes, unifications, cache behaviour, edges)
// legitimately differ from the sequential reference — but the analysis
// outcome (points-to sets and the mode-independent metrics) must be
// identical at every jobs value, and the wave path itself must produce
// identical metrics at any worker count.
func TestSnapshotMatchesAtAnyWorkerCount(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		p := randProgram(seed, 120, 400)
		cfg := DefaultConfig()
		cfg.Jobs = 1
		r1, err := Solve(pts.NewMemSource(p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := allSets(p, r1)
		m1 := r1.Metrics()
		var waveMetrics pts.Metrics
		for _, jobs := range []int{2, 8} {
			cfg.Jobs = jobs
			rj, err := Solve(pts.NewMemSource(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, allSets(p, rj)) {
				t.Errorf("seed %d: points-to sets differ between jobs=1 and jobs=%d", seed, jobs)
			}
			mj := rj.Metrics()
			if mj.PointerVars != m1.PointerVars || mj.Relations != m1.Relations ||
				mj.InCore != m1.InCore || mj.Loaded != m1.Loaded || mj.InFile != m1.InFile {
				t.Errorf("seed %d jobs=%d: mode-independent metrics differ:\n  jobs=1: %+v\n  jobs=%d: %+v",
					seed, jobs, m1, jobs, mj)
			}
			if mj.Waves == 0 || mj.SCCRounds == 0 {
				t.Errorf("seed %d jobs=%d: wave counters not populated: %+v", seed, jobs, mj)
			}
			if jobs == 2 {
				waveMetrics = mj
			} else if mj != waveMetrics {
				t.Errorf("seed %d: wave metrics depend on worker count:\n  jobs=2: %+v\n  jobs=%d: %+v",
					seed, waveMetrics, jobs, mj)
			}
		}
	}
}

// TestSnapshotMatchesEveryConfig checks the frozen query path against all
// ablation configurations — the snapshot must not depend on which
// fixpoint optimizations ran.
func TestSnapshotMatchesEveryConfig(t *testing.T) {
	p := randProgram(3, 80, 260)
	var want [][]prim.SymID
	for i, cfg := range []Config{
		DefaultConfig(),
		{Cache: true, DemandLoad: true},
		{CycleElim: true, DemandLoad: true},
		{DemandLoad: true},
		{},
	} {
		r, err := Solve(pts.NewMemSource(p), cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := allSets(p, r)
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %+v: points-to sets differ from DefaultConfig", cfg)
		}
	}
}

// TestConcurrentPointsTo hammers a solved Result from many goroutines.
// Run under -race this verifies the frozen snapshot is truly read-only:
// queries share the materialized sets with no synchronization.
func TestConcurrentPointsTo(t *testing.T) {
	p := randProgram(11, 150, 500)
	r, err := Solve(pts.NewMemSource(p), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := allSets(p, r)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i := range p.Syms {
					got := r.PointsTo(prim.SymID(i))
					if len(got) != len(want[i]) {
						t.Errorf("goroutine %d: pts(%d) has %d elements, want %d",
							g, i, len(got), len(want[i]))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
