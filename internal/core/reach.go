package core

import (
	"cla/internal/prim"
	"cla/internal/pts/set"
)

// This file implements getLvals — the graph reachability computation at the
// heart of the pre-transitive algorithm — in two variants:
//
//   - reachTarjan: an iterative Tarjan SCC traversal that computes lval
//     sets bottom-up and unifies every cycle it encounters (cycle
//     elimination is free during traversal, and complete on the traversed
//     subgraph, as Section 5 argues).
//   - reachPlain: a naive reachability walk used when cycle elimination is
//     disabled (the ablation configuration).
//
// With caching enabled, computed sets are stored on nodes tagged with the
// current pass; the outer fixpoint's nochange flag repairs staleness.
//
// Sets are accumulated in the solver's Builder (reused merge scratch) and
// sealed into the per-pass arena through the hash-consing table, so
// structurally identical sets are stored once and the whole generation is
// reclaimed with two pointer rewinds at the pass boundary.

// getLvals returns the set of lvals reachable from node n (Figure 5) as a
// sealed set valid until the end of the current pass.
func (s *Solver) getLvals(n int32) *set.Set {
	n = s.find(n)
	if s.cfg.Cache && s.nodes[n].cachePass == s.pass {
		s.m.CacheHits++
		return s.nodes[n].cache
	}
	s.m.CacheMisses++
	if s.cfg.CycleElim {
		return s.reachTarjan(n)
	}
	return s.reachPlain(n)
}

// getLvalsNodes returns the de-skipped nodes holding the lvals of n — the
// getLvalsNodes() refinement from Section 5 used by the complex-assignment
// rules. The returned slice is scratch owned by the solver and is only
// valid until the next call.
func (s *Solver) getLvalsNodes(n int32) []int32 {
	s.gnSyms = s.getLvals(n).AppendSyms(s.gnSyms[:0])
	s.ensureScratch()
	s.nEpoch++
	out := s.gnBuf[:0]
	for _, lv := range s.gnSyms {
		r := s.find(int32(lv))
		if s.nSeen[r] != s.nEpoch {
			s.nSeen[r] = s.nEpoch
			out = append(out, r)
		}
	}
	s.gnBuf = out
	return out
}

// flushShared rewinds the per-pass set storage: the interning table
// forgets its entries (keeping buckets) and the arena rewinds to its
// first slab (keeping slabs). Every set sealed in the previous pass
// becomes invalid; all reads are guarded by cachePass/epoch tags that
// the pass increment has already aged out.
func (s *Solver) flushShared() {
	s.table.Reset()
	s.arena.Reset()
}

// ensureScratch sizes the traversal arrays for the current node count.
// Every array follows the same policy: grow to twice the node count
// whenever the tVisit sentinel array is behind, preserving contents.
func (s *Solver) ensureScratch() {
	n := len(s.nodes)
	if len(s.tVisit) >= n {
		return
	}
	grow := make([]int32, n*2)
	copy(grow, s.tVisit)
	s.tVisit = grow
	g2 := make([]int32, n*2)
	copy(g2, s.tIndex)
	s.tIndex = g2
	g3 := make([]int32, n*2)
	copy(g3, s.tLow)
	s.tLow = g3
	g4 := make([]bool, n*2)
	copy(g4, s.tOnStack)
	s.tOnStack = g4
	g5 := make([]*set.Set, n*2)
	copy(g5, s.tVal)
	s.tVal = g5
	g6 := make([]bool, n*2)
	copy(g6, s.tDone)
	s.tDone = g6
	g7 := make([]int32, n*2)
	copy(g7, s.nSeen)
	s.nSeen = g7
}

type tframe struct {
	v  int32
	ei int
}

// reachTarjan computes lvals(root) by a bottom-up SCC traversal, unifying
// cycles as they are found. Every node completed during the traversal gets
// its final set for this pass (cached when caching is on), so subsequent
// getLvals calls in the same pass are O(1) for the whole visited region.
func (s *Solver) reachTarjan(root int32) *set.Set {
	s.ensureScratch()
	s.tEpoch++
	epoch := s.tEpoch

	var frames []tframe
	var sccStack []int32
	order := int32(1)

	// completedVal returns the final set for a node finished either in
	// this traversal or in an earlier traversal of the same pass (cache).
	completedVal := func(w int32) (*set.Set, bool) {
		if s.tVisit[w] == epoch && s.tDone[w] {
			return s.tVal[w], true
		}
		if s.cfg.Cache && s.nodes[w].cachePass == s.pass {
			return s.nodes[w].cache, true
		}
		return nil, false
	}

	push := func(v int32) {
		s.tVisit[v] = epoch
		s.tDone[v] = false
		s.tIndex[v] = order
		s.tLow[v] = order
		order++
		s.tOnStack[v] = true
		sccStack = append(sccStack, v)
		frames = append(frames, tframe{v: v})
	}

	root = s.find(root)
	if val, ok := completedVal(root); ok {
		return val
	}
	push(root)

	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		v := f.v
		advanced := false
		for f.ei < len(s.nodes[v].edges) {
			w := s.find(s.nodes[v].edges[f.ei])
			f.ei++
			if w == v {
				continue
			}
			if s.tVisit[w] != epoch {
				if _, ok := completedVal(w); ok {
					// Cached from an earlier traversal this pass: leaf.
					s.tVisit[w] = epoch
					s.tDone[w] = true
					s.tVal[w] = s.nodes[w].cache
					s.tOnStack[w] = false
					continue
				}
				push(w)
				advanced = true
				break
			}
			if s.tOnStack[w] && s.tIndex[w] < s.tLow[v] {
				s.tLow[v] = s.tIndex[w]
			}
		}
		if advanced {
			continue
		}
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			p := frames[len(frames)-1].v
			if s.tLow[v] < s.tLow[p] {
				s.tLow[p] = s.tLow[v]
			}
		}
		if s.tLow[v] != s.tIndex[v] {
			continue
		}
		// v is an SCC root: pop members.
		var members []int32
		for {
			m := sccStack[len(sccStack)-1]
			sccStack = sccStack[:len(sccStack)-1]
			s.tOnStack[m] = false
			members = append(members, m)
			if m == v {
				break
			}
		}
		// Union base elements and external children's final sets into
		// the builder. SCC membership is tagged through the epoch
		// scratch (cheaper than a per-SCC map).
		b := &s.bld
		b.Reset()
		s.nEpoch++
		for _, m := range members {
			b.MergeSyms(s.nodes[m].base)
			s.nSeen[m] = s.nEpoch
		}
		for _, m := range members {
			for _, e := range s.nodes[m].edges {
				w := s.find(e)
				if s.nSeen[w] == s.nEpoch {
					continue
				}
				if val, ok := completedVal(w); ok {
					b.MergeSet(val)
				}
			}
		}
		acc := b.Seal(s.arena, s.table)

		rep := v
		if s.cfg.CycleElim && len(members) > 1 {
			for _, m := range members[:len(members)-1] {
				rep = s.unify(rep, m)
			}
			rep = s.find(rep)
		}
		for _, m := range members {
			if s.find(m) != rep && !s.cfg.CycleElim {
				// Without unification each member keeps its own value.
				s.tVisit[m] = epoch
				s.tDone[m] = true
				s.tVal[m] = acc
			}
		}
		s.tVisit[rep] = epoch
		s.tDone[rep] = true
		s.tVal[rep] = acc
		if s.cfg.Cache {
			s.nodes[rep].cache = acc
			s.nodes[rep].cachePass = s.pass
		}
	}

	r := s.find(root)
	if s.tVisit[r] == epoch && s.tDone[r] {
		return s.tVal[r]
	}
	return nil
}

// reachPlain computes lvals(root) by naive reachability: the union of base
// elements over every node reachable from root. Used when cycle
// elimination is off; with caching on, only the queried root's result is
// stored (intermediate values are unsafe to cache in the presence of
// cycles without SCC information).
func (s *Solver) reachPlain(root int32) *set.Set {
	s.ensureScratch()
	s.tEpoch++
	epoch := s.tEpoch
	root = s.find(root)

	stack := []int32{root}
	s.tVisit[root] = epoch
	b := &s.bld
	b.Reset()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.cfg.Cache && s.nodes[v].cachePass == s.pass && v != root {
			b.MergeSet(s.nodes[v].cache)
			continue
		}
		b.MergeSyms(s.nodes[v].base)
		for _, e := range s.nodes[v].edges {
			w := s.find(e)
			if s.tVisit[w] != epoch {
				s.tVisit[w] = epoch
				stack = append(stack, w)
			}
		}
	}
	acc := b.Seal(s.arena, s.table)
	if s.cfg.Cache {
		s.nodes[root].cache = acc
		s.nodes[root].cachePass = s.pass
	}
	return acc
}

// internInto canonicalizes set against table, returning the previously
// stored equal set when one exists. FNV-1a over the elements keeps
// hashing allocation-free. Retained for the snapshot's cross-level
// sharing of heap-owned slices (the fixpoint's per-pass sharing now goes
// through set.Table).
func internInto(table map[uint64][][]prim.SymID, set []prim.SymID) []prim.SymID {
	if len(set) == 0 {
		return nil
	}
	key := uint64(1469598103934665603)
	for _, v := range set {
		key = (key ^ uint64(uint32(v))) * 1099511628211
	}
	for _, cand := range table[key] {
		if equalSets(cand, set) {
			return cand
		}
	}
	table[key] = append(table[key], set)
	return set
}

func equalSets(a, b []prim.SymID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
