package core

import (
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts/set"
	"cla/internal/scc"
)

// This file implements the read-only snapshot query mode. During the
// fixpoint, getLvals answers queries against mutable state: skip
// pointers compress, cycles unify, and the traversal scratch
// (tVisit/tVal/nSeen) is solver-global — none of which can be shared
// between goroutines. Once the outer fixpoint converges the graph is
// final, so Solve freezes it: skip chains are resolved into a flat
// representative table, the condensation (SCC DAG) is computed once, and
// every component's lval set is materialized bottom-up — components of
// equal height in the DAG fan out across cfg.Jobs workers, each with
// private scratch. After the freeze, a points-to query is two array
// loads, safe from any number of goroutines.

// snapshot is the frozen form of the converged pre-transitive graph.
type snapshot struct {
	rep  []int32        // node → representative (skip chains resolved)
	comp []int32        // representative → component id (reverse topo order)
	sets [][]prim.SymID // component id → final sorted lval set (shared)
}

// lvals returns the materialized set for any node, in O(1).
func (sn *snapshot) lvals(n int32) []prim.SymID {
	return sn.sets[sn.comp[sn.rep[n]]]
}

// condensedAdj builds the condensed adjacency per representative:
// out-edges mapped through rep, deduped, self-loops dropped — the input
// contract of scc.Condense.
func (s *Solver) condensedAdj(rep []int32) [][]int32 {
	n := len(s.nodes)
	adj := make([][]int32, n)
	seen := make([]int32, n)
	epoch := int32(0)
	for i := 0; i < n; i++ {
		v := int32(i)
		if rep[i] != v || len(s.nodes[i].edges) == 0 {
			continue
		}
		epoch++
		out := make([]int32, 0, len(s.nodes[i].edges))
		for _, e := range s.nodes[i].edges {
			w := rep[e]
			if w == v || seen[w] == epoch {
				continue
			}
			seen[w] = epoch
			out = append(out, w)
		}
		adj[i] = out
	}
	return adj
}

// buildSnapshot freezes the solver's graph. Called once, after the
// fixpoint, while the solver is still single-threaded.
func (s *Solver) buildSnapshot() *snapshot {
	n := len(s.nodes)
	sn := &snapshot{rep: make([]int32, n)}
	for i := 0; i < n; i++ {
		sn.rep[i] = s.find(int32(i))
	}
	adj := s.condensedAdj(sn.rep)

	// Iterative Tarjan over the representatives (shared with the wave
	// solvers; see internal/scc). Unlike reachTarjan it never unifies:
	// the snapshot leaves solver state untouched, which is what makes it
	// valid under every Config (including CycleElim off, where cycles
	// survive the fixpoint).
	var members [][]int32
	sn.comp, members = scc.Condense(adj, func(v int32) bool { return sn.rep[v] == v })
	succs, _, buckets := scc.Level(sn.comp, members, adj)
	nc := len(members)

	// Materialize lval sets bottom-up: a component's set is the union of
	// its members' base elements and its successors' sets, all of which
	// live at strictly lower heights. Components within one height level
	// are independent, so each level fans out across cfg.Jobs workers;
	// the union of sorted sets is order-independent, making the result
	// identical at any worker count. Between levels, equal sets are
	// shared through the interning table (the paper's observation that
	// many lval sets are identical), kept single-threaded so it needs no
	// locking.
	sn.sets = make([][]prim.SymID, nc)
	interned := map[uint64][][]prim.SymID{}
	builders := make([]set.Builder, parallel.Workers(s.cfg.Jobs))
	parallel.Levels(s.cfg.Jobs, len(buckets),
		func(l int) int { return len(buckets[l]) },
		func(l, wk, lo, hi int) error {
			b := &builders[wk]
			for bi := lo; bi < hi; bi++ {
				c := buckets[l][bi]
				b.Reset()
				for _, m := range members[c] {
					b.MergeSyms(s.nodes[m].base)
				}
				for _, sc := range succs[c] {
					b.MergeSyms(sn.sets[sc])
				}
				sn.sets[c] = b.Syms()
			}
			return nil
		},
		func(l int) error {
			for _, c := range buckets[l] {
				sn.sets[c] = internInto(interned, sn.sets[c])
			}
			return nil
		})

	// Accounting: a multi-member component is a cycle whose nodes the
	// final query pass would have unified; the snapshot collapses them
	// into one shared set, so credit the merges under the same flag.
	if s.cfg.CycleElim {
		for c := 0; c < nc; c++ {
			s.m.Unifications += len(members[c]) - 1
		}
	}
	return sn
}
