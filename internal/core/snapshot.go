package core

import (
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts/set"
)

// This file implements the read-only snapshot query mode. During the
// fixpoint, getLvals answers queries against mutable state: skip
// pointers compress, cycles unify, and the traversal scratch
// (tVisit/tVal/nSeen) is solver-global — none of which can be shared
// between goroutines. Once the outer fixpoint converges the graph is
// final, so Solve freezes it: skip chains are resolved into a flat
// representative table, the condensation (SCC DAG) is computed once, and
// every component's lval set is materialized bottom-up — components of
// equal height in the DAG fan out across cfg.Jobs workers, each with
// private scratch. After the freeze, a points-to query is two array
// loads, safe from any number of goroutines.

// snapshot is the frozen form of the converged pre-transitive graph.
type snapshot struct {
	rep  []int32        // node → representative (skip chains resolved)
	comp []int32        // representative → component id (reverse topo order)
	sets [][]prim.SymID // component id → final sorted lval set (shared)
}

// lvals returns the materialized set for any node, in O(1).
func (sn *snapshot) lvals(n int32) []prim.SymID {
	return sn.sets[sn.comp[sn.rep[n]]]
}

// buildSnapshot freezes the solver's graph. Called once, after the
// fixpoint, while the solver is still single-threaded.
func (s *Solver) buildSnapshot() *snapshot {
	n := len(s.nodes)
	sn := &snapshot{
		rep:  make([]int32, n),
		comp: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		sn.rep[i] = s.find(int32(i))
	}

	// Condensed adjacency per representative: out-edges mapped through
	// rep, deduped, self-loops dropped.
	adj := make([][]int32, n)
	seen := make([]int32, n)
	epoch := int32(0)
	for i := 0; i < n; i++ {
		v := int32(i)
		if sn.rep[i] != v || len(s.nodes[i].edges) == 0 {
			continue
		}
		epoch++
		out := make([]int32, 0, len(s.nodes[i].edges))
		for _, e := range s.nodes[i].edges {
			w := sn.rep[e]
			if w == v || seen[w] == epoch {
				continue
			}
			seen[w] = epoch
			out = append(out, w)
		}
		adj[i] = out
	}

	// Iterative Tarjan over the representatives. Components pop in
	// reverse topological order: every edge out of a completed component
	// leads to an earlier (smaller-id) component.
	members := s.condense(sn, adj)

	// Successor components and DAG height per component. Successors have
	// smaller ids, so one ascending pass resolves heights.
	nc := len(members)
	succs := make([][]int32, nc)
	height := make([]int32, nc)
	maxHeight := int32(0)
	cseen := make([]int32, nc)
	cepoch := int32(0)
	for c := 0; c < nc; c++ {
		cepoch++
		var out []int32
		h := int32(0)
		for _, m := range members[c] {
			for _, w := range adj[m] {
				wc := sn.comp[w]
				if wc == int32(c) || cseen[wc] == cepoch {
					continue
				}
				cseen[wc] = cepoch
				out = append(out, wc)
				if height[wc]+1 > h {
					h = height[wc] + 1
				}
			}
		}
		succs[c] = out
		height[c] = h
		if h > maxHeight {
			maxHeight = h
		}
	}
	buckets := make([][]int32, maxHeight+1)
	for c := 0; c < nc; c++ {
		buckets[height[c]] = append(buckets[height[c]], int32(c))
	}

	// Materialize lval sets bottom-up: a component's set is the union of
	// its members' base elements and its successors' sets, all of which
	// live at strictly lower heights. Components within one height level
	// are independent, so each level fans out across cfg.Jobs workers;
	// the union of sorted sets is order-independent, making the result
	// identical at any worker count. Between levels, equal sets are
	// shared through the interning table (the paper's observation that
	// many lval sets are identical), kept single-threaded so it needs no
	// locking.
	sn.sets = make([][]prim.SymID, nc)
	interned := map[uint64][][]prim.SymID{}
	builders := make([]set.Builder, parallel.Workers(s.cfg.Jobs))
	for _, bucket := range buckets {
		parallel.Shard(s.cfg.Jobs, len(bucket), func(wk, lo, hi int) error {
			b := &builders[wk]
			for bi := lo; bi < hi; bi++ {
				c := bucket[bi]
				b.Reset()
				for _, m := range members[c] {
					b.MergeSyms(s.nodes[m].base)
				}
				for _, sc := range succs[c] {
					b.MergeSyms(sn.sets[sc])
				}
				sn.sets[c] = b.Syms()
			}
			return nil
		})
		for _, c := range bucket {
			sn.sets[c] = internInto(interned, sn.sets[c])
		}
	}

	// Accounting: a multi-member component is a cycle whose nodes the
	// final query pass would have unified; the snapshot collapses them
	// into one shared set, so credit the merges under the same flag.
	if s.cfg.CycleElim {
		for c := 0; c < nc; c++ {
			s.m.Unifications += len(members[c]) - 1
		}
	}
	return sn
}

// condense runs iterative Tarjan over the representative graph, filling
// sn.comp and returning each component's members. Unlike reachTarjan it
// never unifies: the snapshot leaves solver state untouched, which is
// what makes it valid under every Config (including CycleElim off, where
// cycles survive the fixpoint).
func (s *Solver) condense(sn *snapshot, adj [][]int32) [][]int32 {
	n := len(s.nodes)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	var (
		members [][]int32
		stack   []int32
		frames  []tframe
		order   int32
	)
	push := func(v int32) {
		order++
		index[v] = order
		low[v] = order
		onStack[v] = true
		stack = append(stack, v)
		frames = append(frames, tframe{v: v})
	}
	for r0 := 0; r0 < n; r0++ {
		v0 := int32(r0)
		if sn.rep[r0] != v0 || index[v0] != 0 {
			continue
		}
		push(v0)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == 0 {
					push(w)
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			cid := int32(len(members))
			var ms []int32
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				sn.comp[m] = cid
				ms = append(ms, m)
				if m == v {
					break
				}
			}
			members = append(members, ms)
		}
	}
	return members
}
