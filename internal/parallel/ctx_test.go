package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, j := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEachCtx(ctx, j, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("j=%d: err = %v, want context.Canceled", j, err)
		}
		if ran.Load() != 0 {
			t.Errorf("j=%d: %d indexes ran after pre-cancellation", j, ran.Load())
		}
	}
}

func TestForEachCtxCanceledMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1, 100, func(i int) error {
		if i == 10 {
			cancel()
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 11 {
		t.Errorf("ran %d indexes, want 11 (0..10)", n)
	}
}

// TestForEachCtxErrorBeatsCancel pins the deterministic error choice: a
// real worker error is reported in preference to the cancellation that
// it may have raced with.
func TestForEachCtxErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 1, 10, func(i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestShardCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ShardCtx(ctx, 4, 1000, func(worker, lo, hi int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCtxNilLikeBackground(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachCtx(context.Background(), 4, 50, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Errorf("ran %d, want 50", ran.Load())
	}
}
