// Package parallel is the concurrency toolkit threading the CLA pipeline
// across cores: bounded index-parallel loops, contiguous sharding with
// per-worker state, and a pairwise tree reduction. Every helper preserves
// deterministic output ordering — workers communicate only through
// index-addressed slots, never through shared accumulators — so running
// with -j 1 and -j N produces identical results.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"cla/internal/obs"
)

// Workers normalizes a -j style job count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// poolObs holds pre-resolved pool counters so an instrumented batch pays
// one atomic pointer load, not a registry lookup.
type poolObs struct {
	batches *obs.Counter // parallel batches started
	tasks   *obs.Counter // total indexes dispatched
	workers *obs.Gauge   // widest worker fan-out
	queue   *obs.Gauge   // largest batch (queue depth high-water mark)
}

var observer atomic.Pointer[poolObs]

// SetObserver routes pool utilization (batches, tasks, worker fan-out,
// queue depth) into o's pool.* registry entries. Pass nil to detach. The
// pool counters depend on the -j setting by construction, so they are
// deliberately excluded from determinism-sensitive reports.
func SetObserver(o *obs.Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&poolObs{
		batches: o.Counter("pool.batches"),
		tasks:   o.Counter("pool.tasks"),
		workers: o.Gauge("pool.workers.max"),
		queue:   o.Gauge("pool.queue.max"),
	})
}

func (p *poolObs) note(j, n int) {
	if p == nil {
		return
	}
	p.batches.Inc()
	p.tasks.Add(int64(n))
	p.workers.Max(int64(j))
	p.queue.Max(int64(n))
}

// ForEach runs fn(0)..fn(n-1) on up to j workers (j <= 0 means
// GOMAXPROCS) and waits for all of them. Every index runs even when an
// earlier one fails, and the returned error is the lowest-indexed
// failure — the same error a sequential loop would have reported first,
// regardless of scheduling.
func ForEach(j, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), j, n, fn)
}

// ForEachCtx is ForEach under a context: each worker checks ctx before
// dispatching the next index, so a cancellation stops the batch promptly
// — indexes already running finish, undispatched ones never start. When
// the context fires, the returned error is the lowest-indexed real
// failure if one occurred, otherwise ctx.Err(). The background context
// adds one nil check per index.
func ForEachCtx(ctx context.Context, j, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	j = Workers(j)
	if j > n {
		j = n
	}
	observer.Load().note(j, n)
	if j == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}

// Shard partitions [0, n) into at most j near-equal contiguous ranges and
// runs fn(worker, lo, hi) for each range on its own goroutine. The worker
// index lets fn own per-worker scratch (epoch arrays, accumulators) that
// is merged deterministically by the caller afterwards. The returned
// error is the lowest-worker failure.
func Shard(j, n int, fn func(worker, lo, hi int) error) error {
	return ShardCtx(context.Background(), j, n, fn)
}

// ShardCtx is Shard under a context; a cancellation stops undispatched
// shards (see ForEachCtx).
func ShardCtx(ctx context.Context, j, n int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	j = Workers(j)
	if j > n {
		j = n
	}
	per := n / j
	rem := n % j
	bounds := make([]int, j+1)
	for w, lo := 0, 0; w < j; w++ {
		hi := lo + per
		if w < rem {
			hi++
		}
		bounds[w], bounds[w+1] = lo, hi
		lo = hi
	}
	return ForEachCtx(ctx, j, j, func(w int) error {
		return fn(w, bounds[w], bounds[w+1])
	})
}

// Levels runs a sequence of barrier-synchronized levels: for each level
// l in [0, levels), fn is sharded across up to j workers over
// [0, size(l)), and only after every shard of the level returns does the
// optional after(l) hook run on the calling goroutine — the place wave
// solvers merge per-worker buffers in a deterministic order before the
// next level starts. See LevelsCtx for the error contract.
func Levels(j, levels int, size func(level int) int, fn func(level, worker, lo, hi int) error, after func(level int) error) error {
	return LevelsCtx(context.Background(), j, levels, size, fn, after)
}

// LevelsCtx is Levels under a context: each level's shard checks ctx
// (see ShardCtx), and a failed level — worker error, after-hook error or
// cancellation — stops before the next level begins. The returned error
// is the failing level's lowest-worker error.
func LevelsCtx(ctx context.Context, j, levels int, size func(level int) int, fn func(level, worker, lo, hi int) error, after func(level int) error) error {
	for l := 0; l < levels; l++ {
		level := l
		err := ShardCtx(ctx, j, size(level), func(w, lo, hi int) error {
			return fn(level, w, lo, hi)
		})
		if err != nil {
			return err
		}
		if after != nil {
			if err := after(level); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce folds items down to one value by rounds of adjacent pairwise
// merges — a balanced tree of O(log n) depth whose pairs within each
// round run in parallel. For the result to equal the sequential left
// fold, merge must be associative over adjacent elements (the linker's
// database merge is; see TestLinkParallelMatchesSequential). An empty
// input returns the zero value.
func Reduce[T any](j int, items []T, merge func(a, b T) (T, error)) (T, error) {
	var zero T
	switch len(items) {
	case 0:
		return zero, nil
	case 1:
		return items[0], nil
	}
	cur := append([]T(nil), items...)
	for len(cur) > 1 {
		next := make([]T, (len(cur)+1)/2)
		err := ForEach(j, len(next), func(i int) error {
			if 2*i+1 >= len(cur) {
				next[i] = cur[2*i]
				return nil
			}
			m, err := merge(cur[2*i], cur[2*i+1])
			next[i] = m
			return err
		})
		if err != nil {
			return zero, err
		}
		cur = next
	}
	return cur[0], nil
}
