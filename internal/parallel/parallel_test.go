package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"cla/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, j := range []int{1, 2, 8, 100} {
		n := 237
		counts := make([]int32, n)
		err := ForEach(j, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("j=%d: index %d ran %d times", j, i, c)
			}
		}
	}
}

func TestForEachReportsLowestError(t *testing.T) {
	boom := func(i int) error {
		if i == 7 || i == 100 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	}
	for _, j := range []int{1, 4, 16} {
		err := ForEach(j, 200, boom)
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("j=%d: err = %v, want lowest-index failure", j, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestShardCoversRangeExactly(t *testing.T) {
	for _, tc := range []struct{ j, n int }{{1, 10}, {3, 10}, {4, 4}, {8, 3}, {7, 100}} {
		covered := make([]int32, tc.n)
		err := Shard(tc.j, tc.n, func(w, lo, hi int) error {
			if lo > hi {
				return fmt.Errorf("worker %d: lo %d > hi %d", w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("j=%d n=%d: %v", tc.j, tc.n, err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("j=%d n=%d: index %d covered %d times", tc.j, tc.n, i, c)
			}
		}
	}
}

func TestReduceMatchesSequentialFold(t *testing.T) {
	// String concatenation is associative, so the tree must reproduce the
	// left fold exactly for any worker count and length.
	for n := 0; n < 20; n++ {
		items := make([]string, n)
		want := ""
		for i := range items {
			items[i] = fmt.Sprintf("<%d>", i)
			want += items[i]
		}
		for _, j := range []int{1, 2, 8} {
			got, err := Reduce(j, items, func(a, b string) (string, error) {
				return a + b, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("n=%d j=%d: got %q, want %q", n, j, got, want)
			}
		}
	}
}

func TestReduceError(t *testing.T) {
	_, err := Reduce(4, []int{1, 2, 3, 4, 5}, func(a, b int) (int, error) {
		if b == 4 {
			return 0, errors.New("bad pair")
		}
		return a + b, nil
	})
	if err == nil {
		t.Error("merge error not surfaced")
	}
}

// TestDetachedObserverAllocatesNothing pins the disabled-instrumentation
// cost of the pool hook: with no observer attached, noting a batch must
// not allocate (one atomic load and a nil-receiver call).
func TestDetachedObserverAllocatesNothing(t *testing.T) {
	SetObserver(nil)
	if n := testing.AllocsPerRun(100, func() {
		observer.Load().note(4, 128)
	}); n != 0 {
		t.Errorf("detached pool hook allocates %v per batch, want 0", n)
	}
}

// TestSetObserverCounts checks the attached path records batches, tasks
// and the worker/queue high-water marks.
func TestSetObserverCounts(t *testing.T) {
	o := obs.New()
	SetObserver(o)
	defer SetObserver(nil)
	if err := ForEach(3, 10, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"pool.batches": 1, "pool.tasks": 10}
	for _, m := range o.Counters() {
		if v, ok := want[m.Name]; ok && m.Value != v {
			t.Errorf("%s = %d, want %d", m.Name, m.Value, v)
		}
	}
	for _, g := range o.Gauges() {
		if g.Name == "pool.workers.max" && g.Value != 3 {
			t.Errorf("pool.workers.max = %d, want 3", g.Value)
		}
	}
}
