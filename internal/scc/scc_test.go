package scc

import (
	"reflect"
	"testing"
)

func allLive(int32) bool { return true }

func TestCondenseChain(t *testing.T) {
	// 0 → 1 → 2: components pop in reverse topological order, so the
	// sink gets id 0 and every edge leads to a smaller id.
	adj := [][]int32{{1}, {2}, nil}
	comp, members := Condense(adj, allLive)
	if len(members) != 3 {
		t.Fatalf("components = %d, want 3", len(members))
	}
	if comp[2] != 0 || comp[1] != 1 || comp[0] != 2 {
		t.Errorf("comp = %v, want sink-first numbering", comp)
	}
	for v := range adj {
		for _, w := range adj[v] {
			if comp[w] >= comp[int32(v)] {
				t.Errorf("edge %d→%d not descending in comp ids (%d→%d)",
					v, w, comp[v], comp[w])
			}
		}
	}
	_, height, buckets := Level(comp, members, adj)
	if height[comp[0]] != 2 || height[comp[1]] != 1 || height[comp[2]] != 0 {
		t.Errorf("heights = %v", height)
	}
	if len(buckets) != 3 {
		t.Errorf("buckets = %v, want 3 levels", buckets)
	}
}

func TestCondenseCycle(t *testing.T) {
	// 0 → 1 → 2 → 0 with an exit 2 → 3.
	adj := [][]int32{{1}, {2}, {0, 3}, nil}
	comp, members := Condense(adj, allLive)
	if len(members) != 2 {
		t.Fatalf("components = %d, want 2", len(members))
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle not collapsed: comp = %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("exit node merged into cycle: comp = %v", comp)
	}
	_, height, buckets := Level(comp, members, adj)
	if height[comp[0]] != 1 || height[comp[3]] != 0 {
		t.Errorf("heights = %v", height)
	}
	if len(buckets[1]) != 1 || len(buckets[0]) != 1 {
		t.Errorf("buckets = %v", buckets)
	}
}

func TestCondenseDeadNodes(t *testing.T) {
	// Node 1 is dead (unified away); only 0 and 2 are live.
	adj := [][]int32{{2}, nil, nil}
	live := func(v int32) bool { return v != 1 }
	comp, members := Condense(adj, live)
	if comp[1] != -1 {
		t.Errorf("dead node got component %d", comp[1])
	}
	if len(members) != 2 {
		t.Errorf("components = %d, want 2", len(members))
	}
}

func TestCondenseDiamondIndependentLevel(t *testing.T) {
	// 0 → {1, 2} → 3: nodes 1 and 2 are independent, so they share a
	// height bucket in ascending component-id order.
	adj := [][]int32{{1, 2}, {3}, {3}, nil}
	comp, members := Condense(adj, allLive)
	_, height, buckets := Level(comp, members, adj)
	if height[comp[1]] != 1 || height[comp[2]] != 1 {
		t.Fatalf("heights = %v", height)
	}
	mid := buckets[1]
	if len(mid) != 2 || mid[0] >= mid[1] {
		t.Errorf("level 1 bucket = %v, want two ascending comp ids", mid)
	}
}

func TestCondenseDeterministic(t *testing.T) {
	adj := [][]int32{{1, 3}, {2}, {1, 4}, {4}, nil}
	c1, m1 := Condense(adj, allLive)
	c2, m2 := Condense(adj, allLive)
	if !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(m1, m2) {
		t.Errorf("condensation not reproducible")
	}
}
