// Package scc is the strongly-connected-component machinery shared by
// the solvers' condensation phases: an iterative Tarjan condensation
// over an adjacency slice, and the topological leveling that turns the
// condensation DAG into barrier-synchronized waves of independent work.
//
// Both the snapshot freeze in internal/core and the phase-parallel wave
// solvers condense the same way, so the numbering contract lives here:
// roots are tried in ascending node order and components are numbered in
// pop order, which is reverse topological order — every edge out of a
// component leads to a strictly smaller component id. That invariant is
// what lets Level resolve heights in a single ascending pass, and what
// keeps every consumer's output independent of worker count.
package scc

// tframe is one explicit DFS frame of the iterative Tarjan traversal.
type tframe struct {
	v  int32
	ei int
}

// Condense runs iterative Tarjan over the subgraph of live nodes and
// returns the condensation: comp maps every live node to its component
// id (entries for dead nodes are -1), and members lists each component's
// nodes in stack pop order. adj must only mention live nodes and must
// not contain self-loops. Components are numbered in reverse topological
// order: every edge out of a component leads to a smaller component id.
func Condense(adj [][]int32, live func(v int32) bool) (comp []int32, members [][]int32) {
	n := len(adj)
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	var (
		stack  []int32
		frames []tframe
		order  int32
	)
	push := func(v int32) {
		order++
		index[v] = order
		low[v] = order
		onStack[v] = true
		stack = append(stack, v)
		frames = append(frames, tframe{v: v})
	}
	for r0 := 0; r0 < n; r0++ {
		v0 := int32(r0)
		if !live(v0) || index[v0] != 0 {
			continue
		}
		push(v0)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == 0 {
					push(w)
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			cid := int32(len(members))
			var ms []int32
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp[m] = cid
				ms = append(ms, m)
				if m == v {
					break
				}
			}
			members = append(members, ms)
		}
	}
	return comp, members
}

// Level computes the condensation DAG's successor lists and heights, and
// buckets components by height with ascending component ids within each
// bucket. Successors have smaller ids (the Condense numbering), so one
// ascending pass resolves every height; sinks sit at height 0 and
// buckets[h] holds the components whose longest outgoing path has h
// edges. Components within one bucket are independent — an edge between
// two components forces different heights — which is exactly the
// property wave scheduling needs.
func Level(comp []int32, members [][]int32, adj [][]int32) (succs [][]int32, height []int32, buckets [][]int32) {
	nc := len(members)
	succs = make([][]int32, nc)
	height = make([]int32, nc)
	maxHeight := int32(0)
	cseen := make([]int32, nc)
	cepoch := int32(0)
	for c := 0; c < nc; c++ {
		cepoch++
		var out []int32
		h := int32(0)
		for _, m := range members[c] {
			for _, w := range adj[m] {
				wc := comp[w]
				if wc == int32(c) || cseen[wc] == cepoch {
					continue
				}
				cseen[wc] = cepoch
				out = append(out, wc)
				if height[wc]+1 > h {
					h = height[wc] + 1
				}
			}
		}
		succs[c] = out
		height[c] = h
		if h > maxHeight {
			maxHeight = h
		}
	}
	buckets = make([][]int32, maxHeight+1)
	for c := 0; c < nc; c++ {
		buckets[height[c]] = append(buckets[height[c]], int32(c))
	}
	return succs, height, buckets
}
