package depend

import (
	"fmt"
	"sort"
	"strings"

	"cla/internal/prim"
)

// FormatTree renders the dependence relation as a tree rooted at the
// targets — the textual equivalent of the chain-browsing GUI the paper
// describes ("tools for browsing the tree of chains"). Each object appears
// under the predecessor of its best chain, annotated with the edge
// strength and location. maxDepth <= 0 means unlimited.
func (r *Result) FormatTree(maxDepth int) string {
	children := map[prim.SymID][]prim.SymID{}
	tset := map[prim.SymID]bool{}
	for _, t := range r.targets {
		tset[t] = true
	}
	for sym, st := range r.best {
		if tset[sym] || !st.prevSet {
			continue
		}
		children[st.prev] = append(children[st.prev], sym)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			a, b := r.best[kids[i]], r.best[kids[j]]
			if a.strength != b.strength {
				return a.strength > b.strength
			}
			return kids[i] < kids[j]
		})
	}

	var b strings.Builder
	var walk func(sym prim.SymID, prefix string, depth int)
	walk = func(sym prim.SymID, prefix string, depth int) {
		kids := children[sym]
		if maxDepth > 0 && depth >= maxDepth {
			if len(kids) > 0 {
				fmt.Fprintf(&b, "%s... (%d more below)\n", prefix, len(kids))
			}
			return
		}
		for i, kid := range kids {
			connector := "├─ "
			childPrefix := prefix + "│  "
			if i == len(kids)-1 {
				connector = "└─ "
				childPrefix = prefix + "   "
			}
			st := r.best[kid]
			s := r.src.Sym(kid)
			fmt.Fprintf(&b, "%s%s%s/%s <%s> [%s]\n",
				prefix, connector, s.Name, s.Type, st.loc, st.edgeStr)
			walk(kid, childPrefix, depth+1)
		}
	}
	for _, t := range r.targets {
		s := r.src.Sym(t)
		fmt.Fprintf(&b, "%s/%s <%s>\n", s.Name, s.Type, s.Loc)
		walk(t, "", 0)
	}
	return b.String()
}
