package depend

import (
	"strings"
	"testing"

	"cla/internal/core"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

// analyze compiles src, runs points-to, and analyzes dependence from the
// named target.
func analyze(t *testing.T, src, target string, opts Options) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("eg1.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	msrc := pts.NewMemSource(p)
	ptr, err := core.Solve(msrc, core.DefaultConfig())
	if err != nil {
		t.Fatalf("points-to: %v", err)
	}
	id := p.SymIDByName(target)
	if id == prim.NoSym {
		t.Fatalf("no symbol %q", target)
	}
	res, err := Analyze(msrc, ptr, []prim.SymID{id}, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return p, res
}

// depNames returns the dependent names in rank order.
func depNames(p *prim.Program, r *Result, programOnly bool) []string {
	var out []string
	for _, d := range r.Dependents() {
		s := p.Sym(d.Sym)
		if programOnly {
			switch s.Kind {
			case prim.SymGlobal, prim.SymStatic, prim.SymLocal, prim.SymField:
			default:
				continue
			}
		}
		out = append(out, s.Name)
	}
	return out
}

func has(names []string, want ...string) map[string]bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	for _, w := range want {
		if !set[w] {
			return nil
		}
	}
	return set
}

func TestIntroductionExample(t *testing.T) {
	// From Section 1: changing x requires changing y, z, v, p but not w.
	src := `short x, y, z, *p, v, w;
void m(void) {
	y = x;
	z = y+1;
	p = &v;
	*p = z;
	w = 1;
}`
	p, r := analyze(t, src, "x", Options{})
	names := depNames(p, r, true)
	set := has(names, "y", "z", "v")
	if set == nil {
		t.Fatalf("dependents = %v, want y,z,v", names)
	}
	if set["w"] {
		t.Errorf("w must not be dependent: %v", names)
	}
	if set["p"] {
		// p holds &v, not x's value: pointer itself is not value-dependent.
		t.Logf("note: p reported dependent (paper says 'probably p')")
	}
}

func TestPaperFigure1Structs(t *testing.T) {
	// Figure 1: target -> u (via u = target), w (via *v = u), S.x (via
	// s.x = w).
	src := `short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void m(void) {
	v = &w;
	u = target;
	*v = u;
	s.x = w;
}`
	p, r := analyze(t, src, "target", Options{})
	names := depNames(p, r, true)
	if has(names, "u", "w", "S.x") == nil {
		t.Fatalf("dependents = %v, want u,w,S.x", names)
	}
	set := has(names, "u")
	if set["S.y"] {
		t.Errorf("S.y must not be dependent: %v", names)
	}
	// Chain for S.x should pass through w and u back to target.
	chain := r.FormatChain(p.SymIDByName("S.x"))
	for _, part := range []string{"S.x/short", "w/short", "u/short", "target/short", "where target/short"} {
		if !strings.Contains(chain, part) {
			t.Errorf("chain %q missing %q", chain, part)
		}
	}
}

func TestStrengthRanking(t *testing.T) {
	// strongdep via +, weakdep via *, nodep via !.
	src := `int target;
int strongdep, weakdep, nodep;
void m(void) {
	strongdep = target + 1;
	weakdep = target * 3;
	nodep = !target;
}`
	p, r := analyze(t, src, "target", Options{})
	deps := r.Dependents()
	byName := map[string]Dependent{}
	for _, d := range deps {
		byName[p.Sym(d.Sym).Name] = d
	}
	if d, ok := byName["strongdep"]; !ok || d.Strength != prim.Strong {
		t.Errorf("strongdep = %+v", d)
	}
	if d, ok := byName["weakdep"]; !ok || d.Strength != prim.Weak {
		t.Errorf("weakdep = %+v", d)
	}
	if _, ok := byName["nodep"]; ok {
		t.Error("nodep must not be dependent")
	}
	// Ranking: strong before weak.
	names := depNames(p, r, true)
	si, wi := -1, -1
	for i, n := range names {
		if n == "strongdep" {
			si = i
		}
		if n == "weakdep" {
			wi = i
		}
	}
	if si > wi {
		t.Errorf("ranking wrong: %v", names)
	}
}

func TestWeakestLinkOnPath(t *testing.T) {
	// target -> a (strong) -> b (weak) -> c (strong): c's chain is weak.
	src := `int target, a, b, c;
void m(void) {
	a = target;
	b = a * 2;
	c = b + 1;
}`
	p, r := analyze(t, src, "target", Options{})
	for _, d := range r.Dependents() {
		if p.Sym(d.Sym).Name == "c" && d.Strength != prim.Weak {
			t.Errorf("c chain strength = %v, want Weak", d.Strength)
		}
	}
}

func TestStrongPathPreferredOverShortWeak(t *testing.T) {
	// Two routes to far: short weak (far = target*2) and long strong
	// (far = mid, mid = target). Strong must win.
	src := `int target, mid, far;
void m(void) {
	far = target * 2;
	mid = target;
	far = mid;
}`
	p, r := analyze(t, src, "target", Options{})
	for _, d := range r.Dependents() {
		if p.Sym(d.Sym).Name == "far" {
			if d.Strength != prim.Strong || d.Dist != 2 {
				t.Errorf("far = %+v, want Strong dist 2", d)
			}
		}
	}
}

func TestShortestAmongEqualStrength(t *testing.T) {
	src := `int target, a, b, direct;
void m(void) {
	a = target;
	b = a;
	direct = target;
	direct = b;
}`
	p, r := analyze(t, src, "target", Options{})
	for _, d := range r.Dependents() {
		if p.Sym(d.Sym).Name == "direct" && d.Dist != 1 {
			t.Errorf("direct dist = %d, want 1", d.Dist)
		}
	}
}

func TestPointerStoreDependence(t *testing.T) {
	src := `int target, sink, *p;
void m(void) {
	p = &sink;
	*p = target;
}`
	p, r := analyze(t, src, "target", Options{})
	if has(depNames(p, r, true), "sink") == nil {
		t.Errorf("dependents = %v, want sink", depNames(p, r, true))
	}
}

func TestPointerLoadDependence(t *testing.T) {
	// reader = *p where p may point to target: reader depends on target.
	src := `int target, reader, *p;
void m(void) {
	p = &target;
	reader = *p;
}`
	p, r := analyze(t, src, "target", Options{})
	if has(depNames(p, r, true), "reader") == nil {
		t.Errorf("dependents = %v, want reader", depNames(p, r, true))
	}
}

func TestCopyIndirectDependence(t *testing.T) {
	src := `int target, sink, *ps, *pt;
void m(void) {
	ps = &sink;
	pt = &target;
	*ps = *pt;
}`
	p, r := analyze(t, src, "target", Options{})
	if has(depNames(p, r, true), "sink") == nil {
		t.Errorf("dependents = %v, want sink", depNames(p, r, true))
	}
}

func TestInterproceduralDependence(t *testing.T) {
	src := `int target, out;
int pass(int v) { return v; }
void m(void) { out = pass(target); }`
	p, r := analyze(t, src, "target", Options{})
	if has(depNames(p, r, true), "out") == nil {
		t.Errorf("dependents = %v, want out", depNames(p, r, true))
	}
}

func TestNonTargets(t *testing.T) {
	// hub is a central object; marking it a non-target cuts everything
	// downstream of it.
	src := `int target, hub, downstream, direct;
void m(void) {
	hub = target;
	downstream = hub;
	direct = target;
}`
	p0, err := frontend.CompileSource("eg1.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msrc := pts.NewMemSource(p0)
	ptr, err := core.Solve(msrc, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hub := p0.SymIDByName("hub")
	res, err := Analyze(msrc, ptr, []prim.SymID{p0.SymIDByName("target")},
		Options{NonTargets: map[prim.SymID]bool{hub: true}})
	if err != nil {
		t.Fatal(err)
	}
	names := depNames(p0, res, true)
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	if set["hub"] || set["downstream"] {
		t.Errorf("non-target not respected: %v", names)
	}
	if !set["direct"] {
		t.Errorf("direct missing: %v", names)
	}
}

func TestDropWeak(t *testing.T) {
	src := `int target, s, w;
void m(void) { s = target; w = target * 2; }`
	p, r := analyze(t, src, "target", Options{DropWeak: true})
	names := depNames(p, r, true)
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	if !set["s"] || set["w"] {
		t.Errorf("DropWeak: %v", names)
	}
}

func TestMultipleTargetsByName(t *testing.T) {
	src := `int t1, t2, d1, d2;
void m(void) { d1 = t1; d2 = t2; }`
	p, err := frontend.CompileSource("eg1.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msrc := pts.NewMemSource(p)
	ptr, err := core.Solve(msrc, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(msrc, ptr,
		[]prim.SymID{p.SymIDByName("t1"), p.SymIDByName("t2")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := depNames(p, res, true)
	if has(names, "d1", "d2") == nil {
		t.Errorf("dependents = %v", names)
	}
}

func TestChainEndsAtTarget(t *testing.T) {
	src := `int target, a, b;
void m(void) { a = target; b = a; }`
	p, r := analyze(t, src, "target", Options{})
	chain := r.Chain(p.SymIDByName("b"))
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	if p.Sym(chain[0].Sym).Name != "b" || p.Sym(chain[2].Sym).Name != "target" {
		t.Errorf("chain endpoints wrong")
	}
}

func TestNoDependents(t *testing.T) {
	src := `int target, unrelated;
void m(void) { unrelated = 1; }`
	p, r := analyze(t, src, "target", Options{})
	if n := depNames(p, r, true); len(n) != 0 {
		t.Errorf("dependents = %v", n)
	}
	if r.IsDependent(p.SymIDByName("unrelated")) {
		t.Error("unrelated reported dependent")
	}
}

func TestChainOfMissingSymEmpty(t *testing.T) {
	src := `int target; void m(void) {}`
	p, r := analyze(t, src, "target", Options{})
	if c := r.Chain(p.SymIDByName("m") + 100); c != nil {
		t.Errorf("chain = %v", c)
	}
	if s := r.FormatChain(prim.SymID(9999)); s != "" {
		t.Errorf("format = %q", s)
	}
}

func TestDependenceThroughFieldBased(t *testing.T) {
	// All objects sharing the field S.x are coupled, per the paper's
	// rationale for uniform field treatment.
	src := `struct S { short x; } s, t;
short target, out;
void m(void) {
	s.x = target;
	out = t.x;
}`
	p, r := analyze(t, src, "target", Options{})
	if has(depNames(p, r, true), "S.x", "out") == nil {
		t.Errorf("dependents = %v, want S.x and out", depNames(p, r, true))
	}
}

func TestLoadedAccounting(t *testing.T) {
	src := `int target, a; void m(void) { a = target; }`
	_, r := analyze(t, src, "target", Options{})
	if r.Loaded == 0 {
		t.Error("no load accounting")
	}
}

func TestFormatTree(t *testing.T) {
	src := `short target;
short a, b, c;
void m(void) {
	a = target;
	b = a;
	c = target * 2;
}`
	p, r := analyze(t, src, "target", Options{})
	tree := r.FormatTree(0)
	for _, want := range []string{"target/short", "a/short", "b/short", "c/short", "└─", "[strong]", "[weak]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// b must be nested under a (indented deeper).
	ai := strings.Index(tree, "a/short")
	bi := strings.Index(tree, "b/short")
	if ai < 0 || bi < 0 || bi < ai {
		t.Errorf("ordering wrong:\n%s", tree)
	}
	_ = p
}

func TestFormatTreeDepthLimit(t *testing.T) {
	src := `short target, a, b, c;
void m(void) { a = target; b = a; c = b; }`
	_, r := analyze(t, src, "target", Options{})
	tree := r.FormatTree(1)
	if strings.Contains(tree, "b/short") {
		t.Errorf("depth limit ignored:\n%s", tree)
	}
	if !strings.Contains(tree, "more below") {
		t.Errorf("no elision marker:\n%s", tree)
	}
}
