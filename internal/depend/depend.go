// Package depend implements the forward data-dependence analysis of
// Section 2: given a target object whose type must change, find every
// object that can be assigned a value derived from it, rank dependents by
// the importance of their dependence chain (the strong/weak classification
// of Table 1, then shortest path), and reconstruct printable chains.
//
// The analysis is demand-driven in the CLA style: starting from the
// target, the block of each newly dependent object is loaded to discover
// forward flows; stores through pointers and loads through pointers are
// resolved with a points-to result. Only blocks of dependent objects and
// of pointers with non-empty points-to sets are ever read.
package depend

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"cla/internal/prim"
	"cla/internal/pts"
)

// Pointer supplies points-to facts to the dependence analysis.
type Pointer interface {
	PointsTo(sym prim.SymID) []prim.SymID
}

// Options configures an analysis.
type Options struct {
	// NonTargets are objects the user asserts are not dependent; the
	// traversal neither reports nor crosses them (Section 2's mechanism
	// for cutting join-point explosions).
	NonTargets map[prim.SymID]bool
	// IncludeWeak includes chains through weak operations (default true
	// via Analyze; set DropWeak to exclude them).
	DropWeak bool
}

// Step is one edge of a dependence chain: Sym took a value at Loc through
// operation Op.
type Step struct {
	Sym      prim.SymID
	Loc      prim.Loc
	Op       prim.Op
	Strength prim.Strength
}

// Dependent is one object reachable from the target.
type Dependent struct {
	Sym prim.SymID
	// Strength is the chain class: the minimum strength along the best
	// path (Strong beats Weak).
	Strength prim.Strength
	// Dist is the length of the best chain.
	Dist int
}

// Result holds the dependence relation from one analysis run.
type Result struct {
	src     pts.Source
	targets []prim.SymID
	best    map[prim.SymID]*state
	// Loaded counts block entries read, for CLA accounting.
	Loaded int
}

type state struct {
	strength prim.Strength
	dist     int
	// prev chains toward the target.
	prev    prim.SymID
	prevSet bool
	loc     prim.Loc
	op      prim.Op
	edgeStr prim.Strength
}

// Analyze runs the forward dependence analysis from the given targets.
func Analyze(src pts.Source, ptr Pointer, targets []prim.SymID, opts Options) (*Result, error) {
	r := &Result{src: src, targets: targets, best: map[prim.SymID]*state{}}
	a := &analyzer{src: src, ptr: ptr, opts: opts, res: r}
	if err := a.run(targets); err != nil {
		return nil, err
	}
	return r, nil
}

type analyzer struct {
	src  pts.Source
	ptr  Pointer
	opts Options
	res  *Result

	// derefReads indexes "d = *u" flows by pointed-to object:
	// derefReads[v] lists destinations that read object v through a
	// pointer (built lazily from pointers with non-empty points-to sets).
	derefReads map[prim.SymID][]derefRead
	built      bool

	pq workQueue
}

type derefRead struct {
	dst prim.SymID
	loc prim.Loc
	op  prim.Op
	str prim.Strength
}

// item is a priority-queue entry: stronger chains first, then shorter.
type item struct {
	sym      prim.SymID
	strength prim.Strength
	dist     int
}

type workQueue []item

func (q workQueue) Len() int { return len(q) }
func (q workQueue) Less(i, j int) bool {
	if q[i].strength != q[j].strength {
		return q[i].strength > q[j].strength
	}
	return q[i].dist < q[j].dist
}
func (q workQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *workQueue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *workQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (a *analyzer) run(targets []prim.SymID) error {
	for _, t := range targets {
		if a.opts.NonTargets[t] {
			continue
		}
		a.res.best[t] = &state{strength: prim.Strong, dist: 0}
		heap.Push(&a.pq, item{sym: t, strength: prim.Strong, dist: 0})
	}
	for a.pq.Len() > 0 {
		it := heap.Pop(&a.pq).(item)
		st := a.res.best[it.sym]
		if st == nil || st.strength != it.strength || st.dist != it.dist {
			continue // stale entry
		}
		if err := a.expand(it.sym, st); err != nil {
			return err
		}
	}
	return nil
}

// relax offers a new chain to dst.
func (a *analyzer) relax(dst, via prim.SymID, edge prim.Strength, loc prim.Loc, op prim.Op, from *state) {
	if edge == prim.None {
		return
	}
	if a.opts.NonTargets[dst] {
		return
	}
	strength := from.strength
	if edge < strength {
		strength = edge
	}
	if a.opts.DropWeak && strength < prim.Strong {
		return
	}
	dist := from.dist + 1
	cur := a.res.best[dst]
	if cur != nil {
		if cur.strength > strength || (cur.strength == strength && cur.dist <= dist) {
			return
		}
	}
	a.res.best[dst] = &state{
		strength: strength, dist: dist,
		prev: via, prevSet: true, loc: loc, op: op, edgeStr: edge,
	}
	heap.Push(&a.pq, item{sym: dst, strength: strength, dist: dist})
}

// expand follows every forward flow out of sym.
func (a *analyzer) expand(sym prim.SymID, st *state) error {
	// 1. Assignments whose source is sym, demand-loaded from its block.
	block, err := a.src.Block(sym)
	if err != nil {
		return err
	}
	a.res.Loaded += len(block)
	for _, e := range block {
		switch e.Kind {
		case prim.Simple:
			// d = sym.
			a.relax(e.Dst, sym, e.Strength, e.Loc, e.Op, st)
		case prim.StoreInd:
			// *p = sym: everything p points to takes sym's value.
			for _, v := range a.ptr.PointsTo(e.Dst) {
				a.relax(v, sym, e.Strength, e.Loc, e.Op, st)
			}
		case prim.LoadInd, prim.CopyInd:
			// d = *sym copies pointees' values, not sym's value: no
			// dependence on sym itself. (*d = *sym likewise.)
		}
	}
	// 2. Reads of sym through pointers: d = *u with sym ∈ pts(u).
	if err := a.buildDerefIndex(); err != nil {
		return err
	}
	for _, dr := range a.derefReads[sym] {
		a.relax(dr.dst, sym, dr.str, dr.loc, dr.op, st)
	}
	return nil
}

// buildDerefIndex scans the blocks of every pointer with a non-empty
// points-to set for d = *u and *d = *u entries, indexing them by pointee.
func (a *analyzer) buildDerefIndex() error {
	if a.built {
		return nil
	}
	a.built = true
	a.derefReads = map[prim.SymID][]derefRead{}
	n := a.src.NumSyms()
	for i := 0; i < n; i++ {
		u := prim.SymID(i)
		pset := a.ptr.PointsTo(u)
		if len(pset) == 0 {
			continue
		}
		block, err := a.src.Block(u)
		if err != nil {
			return err
		}
		a.res.Loaded += len(block)
		for _, e := range block {
			switch e.Kind {
			case prim.LoadInd:
				// e.Dst = *u: e.Dst depends on every pointee of u.
				for _, v := range pset {
					a.derefReads[v] = append(a.derefReads[v], derefRead{
						dst: e.Dst, loc: e.Loc, op: e.Op, str: e.Strength,
					})
				}
			case prim.CopyInd:
				// *e.Dst = *u: every pointee of e.Dst depends on every
				// pointee of u.
				for _, w := range a.ptr.PointsTo(e.Dst) {
					for _, v := range pset {
						a.derefReads[v] = append(a.derefReads[v], derefRead{
							dst: w, loc: e.Loc, op: e.Op, str: e.Strength,
						})
					}
				}
			}
		}
	}
	return nil
}

// Dependents returns all dependent objects (excluding the targets
// themselves), ranked by chain importance: strong chains first, shorter
// chains first within a class, then by symbol id for determinism.
func (r *Result) Dependents() []Dependent {
	var out []Dependent
	tset := map[prim.SymID]bool{}
	for _, t := range r.targets {
		tset[t] = true
	}
	for sym, st := range r.best {
		if tset[sym] {
			continue
		}
		out = append(out, Dependent{Sym: sym, Strength: st.strength, Dist: st.dist})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Strength != out[j].Strength {
			return out[i].Strength > out[j].Strength
		}
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Sym < out[j].Sym
	})
	return out
}

// IsDependent reports whether sym depends on the target.
func (r *Result) IsDependent(sym prim.SymID) bool {
	_, ok := r.best[sym]
	return ok
}

// Chain reconstructs the best dependence chain from sym back to the
// target, starting at sym.
func (r *Result) Chain(sym prim.SymID) []Step {
	var steps []Step
	cur := sym
	for {
		st, ok := r.best[cur]
		if !ok {
			return nil
		}
		steps = append(steps, Step{Sym: cur, Loc: st.loc, Op: st.op, Strength: st.edgeStr})
		if !st.prevSet {
			break
		}
		cur = st.prev
		if len(steps) > len(r.best)+1 {
			break // cycle guard; cannot happen with consistent states
		}
	}
	return steps
}

// FormatChain renders a chain in the paper's Figure 1 style:
//
//	w/short <eg1.c:3> ! u/short <eg1.c:7> ! target/short <eg1.c:6> where target/short <eg1.c:1>
func (r *Result) FormatChain(sym prim.SymID) string {
	steps := r.Chain(sym)
	if len(steps) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range steps {
		if i > 0 {
			b.WriteString(" ! ")
		}
		symb := r.src.Sym(s.Sym)
		loc := s.Loc
		if i == len(steps)-1 || loc.IsZero() {
			loc = symb.Loc
		}
		fmt.Fprintf(&b, "%s/%s <%s>", symb.Name, symb.Type, loc)
	}
	t := r.src.Sym(steps[len(steps)-1].Sym)
	fmt.Fprintf(&b, " where %s/%s <%s>", t.Name, t.Type, t.Loc)
	return b.String()
}
