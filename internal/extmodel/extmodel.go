// Package extmodel makes the analysis sound on incomplete programs by
// modeling referenced-but-undefined functions and globals, following the
// blanket-assignment/escape treatment of PIP (Krogstie & Själander).
//
// A linked database normally describes only the code the linker saw; calls
// to undefined externals silently produce nothing, so every points-to fact
// involving them is unsound. Apply closes the program under a chosen model
// by introducing one abstract "external world" object and emitting ordinary
// primitive assignments for the undefined set:
//
//	extp = &ext       the external world, via a helper pointer
//	*extp = extp      external memory may point to external memory
//	extfnp = &extfn   external memory may hold external function pointers
//	*extp = extfnp
//
// per undefined function f (and for the external stand-in function extfn):
//
//	*extp = f$i       every argument escapes into the external world
//	f$ret = extp      f may return the external object itself
//	f$ret = *extp     ... or anything that previously escaped
//
// per undefined global g (Blanket):
//
//	g = extp          external code may write external memory into g
//	g = *extp         ... or any pointer that escaped
//
// and additionally under Escape:
//
//	*extp = g         external code may read g (its value escapes)
//	t = *extp         t ranges over the escaped objects:
//	*extp = *t        anything reachable from an escaped object escapes,
//	*t = extp         and escaped objects may be overwritten with external
//	*t = *extp        memory or with any other escaped pointer
//
// Because the model is expressed in the five primitive forms, every solver
// (pre-transitive, worklist, bitvec, one-level, Steensgaard) inherits it
// with no solver-specific code, and indirect calls that resolve to the
// external stand-in function link through the ordinary FuncRecord path.
package extmodel

import (
	"fmt"

	"cla/internal/prim"
)

// Model selects how undefined external symbols are treated.
type Model uint8

const (
	// Unsound ignores undefined symbols: the historical behavior, and the
	// default. Output is byte-identical to an analysis without this package.
	Unsound Model = iota
	// Blanket introduces the abstract external-world object: undefined
	// functions return it and all their arguments escape into it, and
	// undefined globals may hold it or anything that escaped.
	Blanket
	// Escape extends Blanket: globals passed to unknown code escape too,
	// and all escaped objects are treated as mutually aliased.
	Escape
)

func (m Model) String() string {
	switch m {
	case Unsound:
		return "unsound"
	case Blanket:
		return "blanket"
	case Escape:
		return "escape"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel parses an -extmodel flag value.
func ParseModel(s string) (Model, error) {
	switch s {
	case "unsound", "":
		return Unsound, nil
	case "blanket":
		return Blanket, nil
	case "escape":
		return Escape, nil
	}
	return Unsound, fmt.Errorf("extmodel: unknown model %q (want unsound, blanket or escape)", s)
}

// Models lists all models in ascending strength order.
func Models() []Model { return []Model{Unsound, Blanket, Escape} }

// Names of the synthesized symbols. The angle brackets keep them outside
// the C identifier space, so they can never collide with program symbols.
const (
	// ExtName is the abstract external-world object.
	ExtName = "<external>"
	// ExtFnName is the stand-in for functions defined in external code.
	ExtFnName = "<external>$fn"

	extPtrName = "<external>$ptr"
	extTmpName = "<external>$tmp"
	extFnPName = "<external>$fnp"
)

// Undef is one referenced-but-undefined external symbol in a linked
// database: a SymFunc without a body, or a SymGlobal declared only via
// plain `extern` (including implicitly declared functions).
type Undef struct {
	Sym  prim.SymID
	Name string
	Kind prim.SymKind
	Loc  prim.Loc
}

// Undefined returns the undefined-external inventory of p in symbol-id
// order. On a linked program the Defined flags have been OR-merged across
// all units, so a clear flag means no unit defines the symbol.
func Undefined(p *prim.Program) []Undef {
	var out []Undef
	for i := range p.Syms {
		s := &p.Syms[i]
		if s.Defined {
			continue
		}
		if s.Kind != prim.SymFunc && s.Kind != prim.SymGlobal {
			continue
		}
		out = append(out, Undef{
			Sym: prim.SymID(i), Name: s.Name, Kind: s.Kind, Loc: s.Loc,
		})
	}
	return out
}

// Info summarizes an Apply run.
type Info struct {
	Model Model
	// Ext is the external-world object, or NoSym under Unsound.
	Ext prim.SymID
	// ExtFn is the external stand-in function, or NoSym under Unsound.
	ExtFn prim.SymID
	// UndefFuncs and UndefGlobals count the modeled undefined symbols.
	UndefFuncs   int
	UndefGlobals int
	// Syms and Assigns count what Apply added to the program.
	Syms    int
	Assigns int
}

// Apply mutates p in place, appending the model's symbols and constraints.
// Under Unsound it is a no-op that leaves p byte-identical. Apply is meant
// to run on a fully linked program, after which p solves like any other
// database. The emission order is deterministic: it depends only on the
// symbol and function-record order of p.
func Apply(p *prim.Program, m Model) Info {
	info := Info{Model: m, Ext: prim.NoSym, ExtFn: prim.NoSym}
	if m == Unsound {
		return info
	}
	undef := Undefined(p)
	syms0, assigns0 := len(p.Syms), len(p.Assigns)

	ext := p.AddSym(prim.Symbol{
		Name: ExtName, Kind: prim.SymExtern, Type: "external", Defined: true,
	})
	extp := p.AddSym(prim.Symbol{
		Name: extPtrName, Kind: prim.SymTemp, Type: "external *", Defined: true,
	})
	info.Ext = ext

	// Model constraints carry the external scope name, so analysis clients
	// (MOD/REF) attribute their effects to external code rather than to
	// file-scope initializers.
	emit := func(k prim.Kind, dst, src prim.SymID) {
		p.AddAssign(prim.Assign{
			Kind: k, Dst: dst, Src: src,
			Op: prim.OpCopy, Strength: prim.Strong, Func: ExtName,
		})
	}
	emit(prim.Base, extp, ext)      // extp = &ext
	emit(prim.StoreInd, extp, extp) // ext may point to ext

	// The external stand-in function: anything loaded from external memory
	// may be a pointer to a function defined outside the program, so give
	// the model a callable function symbol whose arguments escape and whose
	// result is external. Its arity covers the widest function record in
	// the program, so positional linking at indirect call sites never drops
	// an argument.
	arity := 0
	for i := range p.Funcs {
		if n := len(p.Funcs[i].Params); n > arity {
			arity = n
		}
	}
	extfn := p.AddSym(prim.Symbol{
		Name: ExtFnName, Kind: prim.SymFunc, Type: "external ()",
		Internal: true, Defined: true,
	})
	info.ExtFn = extfn
	fnRec := prim.FuncRecord{Func: extfn, Ret: prim.NoSym, Variadic: true}
	for i := 1; i <= arity; i++ {
		fnRec.Params = append(fnRec.Params, p.AddSym(prim.Symbol{
			Name: fmt.Sprintf("%s$%d", ExtFnName, i), Kind: prim.SymParam,
			Internal: true, Defined: true, FuncName: ExtFnName,
		}))
	}
	fnRec.Ret = p.AddSym(prim.Symbol{
		Name: ExtFnName + "$ret", Kind: prim.SymRet,
		Internal: true, Defined: true, FuncName: ExtFnName,
	})
	p.Funcs = append(p.Funcs, fnRec)
	extfnp := p.AddSym(prim.Symbol{
		Name: extFnPName, Kind: prim.SymTemp, Type: "external (*)()", Defined: true,
	})
	emit(prim.Base, extfnp, extfn)    // extfnp = &extfn
	emit(prim.StoreInd, extp, extfnp) // ext may hold external function pointers
	modelFunc := func(rec *prim.FuncRecord) {
		for _, prm := range rec.Params {
			emit(prim.StoreInd, extp, prm) // arguments escape
		}
		if rec.Ret != prim.NoSym {
			emit(prim.Simple, rec.Ret, extp)  // may return the external world
			emit(prim.LoadInd, rec.Ret, extp) // ... or anything escaped
		}
	}
	modelFunc(&p.Funcs[len(p.Funcs)-1])

	// Undefined functions behave like the stand-in. A function called only
	// for effect has no return symbol yet; synthesize one so that calls
	// reaching it through function pointers still see an external result.
	for i := range p.Funcs {
		rec := &p.Funcs[i]
		s := p.Sym(rec.Func)
		if s.Kind != prim.SymFunc || s.Defined {
			continue
		}
		if rec.Ret == prim.NoSym {
			rec.Ret = p.AddSym(prim.Symbol{
				Name: s.Name + "$ret", Kind: prim.SymRet,
				Internal: s.Internal, Defined: true, FuncName: s.Name,
				Loc: s.Loc,
			})
		}
		modelFunc(rec)
	}

	// Undefined globals are blanket-assigned: external code may store into
	// them at any time.
	for _, u := range undef {
		if u.Kind != prim.SymGlobal {
			continue
		}
		emit(prim.Simple, u.Sym, extp)  // g = extp
		emit(prim.LoadInd, u.Sym, extp) // g = *extp
		if m == Escape {
			emit(prim.StoreInd, extp, u.Sym) // external code may read g
		}
	}

	if m == Escape {
		// Everything that escaped is mutually aliased: external code may
		// store external memory — or any escaped pointer — through any
		// escaped object.
		t := p.AddSym(prim.Symbol{
			Name: extTmpName, Kind: prim.SymTemp, Type: "external *", Defined: true,
		})
		emit(prim.LoadInd, t, extp)  // t = *extp: t ranges over escaped objects
		emit(prim.CopyInd, extp, t)  // *extp = *t: escape is transitive
		emit(prim.StoreInd, t, extp) // *t = extp
		emit(prim.CopyInd, t, extp)  // *t = *extp
	}

	for _, u := range undef {
		if u.Kind == prim.SymFunc {
			info.UndefFuncs++
		} else {
			info.UndefGlobals++
		}
	}
	info.Syms = len(p.Syms) - syms0
	info.Assigns = len(p.Assigns) - assigns0
	return info
}

// ApplyClone applies the model to a copy of p, leaving p untouched. The
// public API uses it so that a caller's Database is not mutated by an
// analysis option.
func ApplyClone(p *prim.Program, m Model) (*prim.Program, Info) {
	if m == Unsound {
		return p, Info{Model: m, Ext: prim.NoSym, ExtFn: prim.NoSym}
	}
	q := &prim.Program{
		Syms:    append([]prim.Symbol(nil), p.Syms...),
		Assigns: append([]prim.Assign(nil), p.Assigns...),
		Funcs:   make([]prim.FuncRecord, len(p.Funcs)),
		Calls:   append([]prim.CallSite(nil), p.Calls...),
	}
	// Apply may synthesize return symbols into undefined functions'
	// records, so the records need their own storage; Params stay shared
	// (read-only to Apply).
	copy(q.Funcs, p.Funcs)
	info := Apply(q, m)
	return q, info
}
