package extmodel_test

import (
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/linker"
	"cla/internal/prim"
)

// FuzzExterns feeds arbitrary translation units through the full
// incomplete-program path: compile, link, apply each extern model, solve at
// jobs 1 and 8. Inputs that do not compile are skipped; for the rest the
// target asserts the invariants the rest of the PR relies on — the model
// never breaks Validate, the solve is deterministic across jobs, and the
// models are monotone (unsound ⊆ blanket ⊆ escape on original symbols).
func FuzzExterns(f *testing.F) {
	f.Add("extern int *p; int *q; void f(void) { q = p; }")
	f.Add("extern char *dup(char *s); char *c; void g(void) { c = dup(c); }")
	f.Add("extern void (*cb)(int *); int x; void h(void) { cb(&x); }")
	f.Add("extern int **t; int peek(void) { return **t; }")
	f.Add("extern void reg(void *p); void s(void) { int v; reg(&v); }")
	f.Add("int a; int *b = &a;")

	f.Fuzz(func(t *testing.T, src string) {
		unit, err := frontend.CompileSource("fuzz.c", src, nil, frontend.Options{})
		if err != nil {
			t.Skip()
		}
		base, err := linker.Link([]*prim.Program{unit})
		if err != nil || base.Validate() != nil {
			t.Skip()
		}
		orig := len(base.Syms)

		var prev []int // per-symbol pts sizes from the previous (weaker) model
		for _, m := range extmodel.Models() {
			p, _ := extmodel.ApplyClone(base, m)
			if err := p.Validate(); err != nil {
				t.Fatalf("%v: model output fails Validate: %v", m, err)
			}
			res, err := driver.AnalyzeProgram(p, driver.PreTransitive, core.DefaultConfig())
			if err != nil {
				t.Fatalf("%v: solve: %v", m, err)
			}
			cfg := core.DefaultConfig()
			cfg.Jobs = 8
			par, err := driver.AnalyzeProgram(p, driver.PreTransitive, cfg)
			if err != nil {
				t.Fatalf("%v: parallel solve: %v", m, err)
			}

			sizes := make([]int, orig)
			for i := 0; i < orig; i++ {
				seq := res.PointsTo(prim.SymID(i))
				if got := par.PointsTo(prim.SymID(i)); len(got) != len(seq) {
					t.Fatalf("%v: pts(%s) differs between jobs 1 and 8", m, p.Sym(prim.SymID(i)).Name)
				}
				sizes[i] = len(seq)
			}
			if prev != nil {
				for i := 0; i < orig; i++ {
					if sizes[i] < prev[i] {
						t.Fatalf("%v: pts(%s) shrank versus the weaker model", m, p.Sym(prim.SymID(i)).Name)
					}
				}
			}
			prev = sizes
		}
	})
}
