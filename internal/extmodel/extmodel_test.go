package extmodel_test

import (
	"reflect"
	"sort"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/linker"
	"cla/internal/prim"
)

// link compiles each unit and links them in name order.
func link(t *testing.T, units map[string]string) *prim.Program {
	t.Helper()
	names := make([]string, 0, len(units))
	for n := range units {
		names = append(names, n)
	}
	sort.Strings(names)
	progs := make([]*prim.Program, len(names))
	for i, n := range names {
		p, err := frontend.CompileSource(n, units[n], nil, frontend.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", n, err)
		}
		progs[i] = p
	}
	p, err := linker.Link(progs)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func solve(t *testing.T, p *prim.Program, s driver.Solver) ptsResult {
	t.Helper()
	res, err := driver.AnalyzeProgram(p, s, core.DefaultConfig())
	if err != nil {
		t.Fatalf("solve %v: %v", s, err)
	}
	return ptsResult{p: p, names: func(id prim.SymID) []string {
		var out []string
		for _, z := range res.PointsTo(id) {
			out = append(out, p.Sym(z).Name)
		}
		sort.Strings(out)
		return out
	}}
}

type ptsResult struct {
	p     *prim.Program
	names func(prim.SymID) []string
}

func (r ptsResult) of(t *testing.T, name string) []string {
	t.Helper()
	id := r.p.SymIDByName(name)
	if id == prim.NoSym {
		t.Fatalf("no symbol %q", name)
	}
	return r.names(id)
}

func has(set []string, want string) bool {
	for _, s := range set {
		if s == want {
			return true
		}
	}
	return false
}

func TestUndefinedInventory(t *testing.T) {
	p := link(t, map[string]string{
		"a.c": `
			extern int *shared;
			extern char *lookup(char *key);
			int owned;
			void use(void) { shared = lookup(0); owned = 1; missing(); }
		`,
		"b.c": `
			int *shared;
			char *helper(void) { return 0; }
		`,
	})
	var funcs, globals []string
	for _, u := range extmodel.Undefined(p) {
		if u.Kind == prim.SymFunc {
			funcs = append(funcs, u.Name)
		} else {
			globals = append(globals, u.Name)
		}
	}
	// shared is defined in b.c, owned in a.c; lookup has no body anywhere
	// and missing is implicitly declared.
	if want := []string{"lookup", "missing"}; !reflect.DeepEqual(funcs, want) {
		t.Errorf("undefined funcs = %v, want %v", funcs, want)
	}
	if len(globals) != 0 {
		t.Errorf("undefined globals = %v, want none", globals)
	}

	p2 := link(t, map[string]string{
		"a.c": `extern int *env; int *get(void) { return env; }`,
	})
	u := extmodel.Undefined(p2)
	if len(u) != 1 || u[0].Name != "env" || u[0].Kind != prim.SymGlobal {
		t.Errorf("undefined = %+v, want the extern global env", u)
	}
}

func TestApplyUnsoundIsNoop(t *testing.T) {
	p := link(t, map[string]string{
		"a.c": `extern int *fetch(void); int *g; void f(void) { g = fetch(); }`,
	})
	syms, assigns, funcs := len(p.Syms), len(p.Assigns), len(p.Funcs)
	info := extmodel.Apply(p, extmodel.Unsound)
	if info.Ext != prim.NoSym || info.Syms != 0 || info.Assigns != 0 {
		t.Errorf("unsound Apply reported changes: %+v", info)
	}
	if len(p.Syms) != syms || len(p.Assigns) != assigns || len(p.Funcs) != funcs {
		t.Errorf("unsound Apply mutated the program")
	}
}

// TestBlanketReturnAndEscape is the core blanket semantics: a pointer
// assigned only from an undefined function points to the external world,
// and arguments passed to undefined functions escape into it.
func TestBlanketReturnAndEscape(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern char *ext_dup(char *s);
			extern void ext_keep(int *p);
			char *r;
			int kept;
			void f(void) { r = ext_dup(0); ext_keep(&kept); }
		`,
	}
	for _, m := range []extmodel.Model{extmodel.Blanket, extmodel.Escape} {
		p := link(t, src)
		info := extmodel.Apply(p, m)
		if info.UndefFuncs != 2 {
			t.Fatalf("%v: UndefFuncs = %d, want 2", m, info.UndefFuncs)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: validate after Apply: %v", m, err)
		}
		r := solve(t, p, driver.PreTransitive)
		if got := r.of(t, "r"); !has(got, extmodel.ExtName) {
			t.Errorf("%v: pts(r) = %v, want %s", m, got, extmodel.ExtName)
		}
		if got := r.names(info.Ext); !has(got, "kept") {
			t.Errorf("%v: pts(ext) = %v, want kept (escaped argument)", m, got)
		}
	}

	// Unsound leaves both empty.
	p := link(t, src)
	extmodel.Apply(p, extmodel.Unsound)
	r := solve(t, p, driver.PreTransitive)
	if got := r.of(t, "r"); len(got) != 0 {
		t.Errorf("unsound: pts(r) = %v, want empty", got)
	}
}

// TestBlanketUndefinedGlobal: an extern global never defined in any unit
// may hold the external object and anything that escaped.
func TestBlanketUndefinedGlobal(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern void ext_reg(char *p);
			extern char *ext_tab;
			char buf[8];
			char *q;
			void f(void) { ext_reg(buf); q = ext_tab; }
		`,
	}
	p := link(t, src)
	extmodel.Apply(p, extmodel.Blanket)
	r := solve(t, p, driver.PreTransitive)
	got := r.of(t, "q")
	if !has(got, extmodel.ExtName) {
		t.Errorf("pts(q) = %v, want %s", got, extmodel.ExtName)
	}
	// buf escaped through ext_reg, so reading ext_tab may yield it.
	if !has(got, "buf") {
		t.Errorf("pts(q) = %v, want escaped buf", got)
	}
}

// TestEscapeMutualAliasing: two pointers whose addresses were passed to an
// unknown function become aliased under Escape but not under Blanket.
func TestEscapeMutualAliasing(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern void ext_track(int **h);
			int g1, g2;
			int *p1, *p2;
			void f(void) { p1 = &g1; p2 = &g2; ext_track(&p1); ext_track(&p2); }
		`,
	}
	p := link(t, src)
	extmodel.Apply(p, extmodel.Blanket)
	r := solve(t, p, driver.PreTransitive)
	if got := r.of(t, "p1"); has(got, "g2") {
		t.Errorf("blanket: pts(p1) = %v, must not contain g2", got)
	}

	p = link(t, src)
	extmodel.Apply(p, extmodel.Escape)
	r = solve(t, p, driver.PreTransitive)
	got1, got2 := r.of(t, "p1"), r.of(t, "p2")
	if !has(got1, "g2") || !has(got2, "g1") {
		t.Errorf("escape: pts(p1) = %v, pts(p2) = %v, want mutual {g1,g2}", got1, got2)
	}
}

// TestIndirectCallThroughUndefined: calls through a pointer holding an
// undefined function still see escaping arguments and an external result,
// via the synthesized return symbol on the undefined function's record.
func TestIndirectCallThroughUndefined(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern char *ext_fetch(char *key);
			char *(*hook)(char *);
			char slot;
			char *got;
			void f(void) { hook = ext_fetch; got = hook(&slot); }
		`,
	}
	p := link(t, src)
	info := extmodel.Apply(p, extmodel.Blanket)
	r := solve(t, p, driver.PreTransitive)
	if got := r.of(t, "got"); !has(got, extmodel.ExtName) {
		t.Errorf("pts(got) = %v, want %s via indirect call", got, extmodel.ExtName)
	}
	if got := r.names(info.Ext); !has(got, "slot") {
		t.Errorf("pts(ext) = %v, want slot (argument escaped indirectly)", got)
	}
}

// TestExternalFunctionPointers: a function pointer loaded from an
// undefined global may target external code; calling it must not lose
// soundness — its result is external and its arguments escape.
func TestExternalFunctionPointers(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern void *(*ext_hook)(void *);
			void *r;
			int cell;
			void f(void) { r = ext_hook(&cell); }
		`,
	}
	p := link(t, src)
	info := extmodel.Apply(p, extmodel.Blanket)
	r := solve(t, p, driver.PreTransitive)
	hook := r.of(t, "ext_hook")
	if !has(hook, extmodel.ExtFnName) {
		t.Errorf("pts(ext_hook) = %v, want %s", hook, extmodel.ExtFnName)
	}
	if got := r.of(t, "r"); !has(got, extmodel.ExtName) {
		t.Errorf("pts(r) = %v, want %s", got, extmodel.ExtName)
	}
	if got := r.names(info.Ext); !has(got, "cell") {
		t.Errorf("pts(ext) = %v, want cell", got)
	}
}

// TestMonotone: adding a model only ever grows points-to sets, and escape
// subsumes blanket, for every original symbol under the subset solvers.
func TestMonotone(t *testing.T) {
	src := map[string]string{
		"a.c": `
			extern int *ext_pick(int *a, int *b);
			extern int *ext_cur;
			int x, y;
			int *p, *q;
			void f(void) { p = ext_pick(&x, &y); q = ext_cur; if (x) q = &x; }
		`,
		"b.c": `
			int *mine(int *v) { return v; }
			int *r;
			int z;
			void g(void) { r = mine(&z); }
		`,
	}
	for _, s := range []driver.Solver{driver.PreTransitive, driver.Worklist, driver.BitVector} {
		base := link(t, src)
		n := len(base.Syms)
		var prev ptsResult
		for i, m := range extmodel.Models() {
			p := link(t, src)
			extmodel.Apply(p, m)
			r := solve(t, p, s)
			if i > 0 {
				for id := 0; id < n; id++ {
					lo, hi := prev.names(prim.SymID(id)), r.names(prim.SymID(id))
					for _, v := range lo {
						if !has(hi, v) {
							t.Errorf("%v: pts(%s) lost %q going to %v", s, base.Sym(prim.SymID(id)).Name, v, m)
						}
					}
				}
			}
			prev = r
		}
	}
}

func TestApplyClone(t *testing.T) {
	p := link(t, map[string]string{
		"a.c": `extern int *take(void); int *g; void f(void) { g = take(); }`,
	})
	syms, assigns := len(p.Syms), len(p.Assigns)
	q, info := extmodel.ApplyClone(p, extmodel.Escape)
	if len(p.Syms) != syms || len(p.Assigns) != assigns {
		t.Fatalf("ApplyClone mutated the original program")
	}
	for i := range p.Funcs {
		if p.Funcs[i].Ret != prim.NoSym {
			s := p.Sym(p.Funcs[i].Ret)
			if s.Kind != prim.SymRet {
				t.Fatalf("original func record %d ret corrupted", i)
			}
		}
	}
	if info.Ext == prim.NoSym || len(q.Syms) <= syms {
		t.Fatalf("clone not extended: info=%+v", info)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("validate clone: %v", err)
	}
}

func TestParseModel(t *testing.T) {
	for in, want := range map[string]extmodel.Model{
		"": extmodel.Unsound, "unsound": extmodel.Unsound,
		"blanket": extmodel.Blanket, "escape": extmodel.Escape,
	} {
		got, err := extmodel.ParseModel(in)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := extmodel.ParseModel("open-world"); err == nil {
		t.Errorf("ParseModel accepted an unknown model")
	}
}
