package extmodel_test

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cla/internal/checks"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/prim"
)

var updateGolden = flag.Bool("update", false, "rewrite determinism golden digests")

// determinismUnits is a small two-unit program with undefined functions, an
// undefined data global and an undefined function pointer, so every model
// constraint shape participates in the solve.
var determinismUnits = map[string]string{
	"a.c": `
extern char *xmalloc(int n);
extern void register_cb(void (*f)(void), void *ctx);
extern int *shared_cursor;

char *buf;
int local_target;

void setup(void) {
	buf = xmalloc(16);
	register_cb(0, &local_target);
	shared_cursor = &local_target;
}
`,
	"b.c": `
extern int (*ext_hook)(int *);
extern int *shared_cursor;

int use(void) {
	int v = 0;
	int r = ext_hook(&v);
	return r + *shared_cursor;
}
`,
}

var allSolvers = []driver.Solver{
	driver.PreTransitive,
	driver.Worklist,
	driver.Steensgaard,
	driver.BitVector,
	driver.OneLevel,
}

// canonical renders one (model, solver, jobs) run as a stable text blob:
// every named symbol's sorted points-to set, the call graph in DOT form,
// and the full checks output (diagnostics plus audit counters).
func canonical(t *testing.T, m extmodel.Model, s driver.Solver, jobs int) string {
	t.Helper()
	base := link(t, determinismUnits)
	p, _ := extmodel.ApplyClone(base, m)
	cfg := core.DefaultConfig()
	cfg.Jobs = jobs
	res, err := driver.AnalyzeProgram(p, s, cfg)
	if err != nil {
		t.Fatalf("solve %v/%v: %v", m, s, err)
	}

	var b strings.Builder
	for i := range p.Syms {
		sym := &p.Syms[i]
		if sym.Kind == prim.SymTemp || sym.Name == "" {
			continue
		}
		var names []string
		for _, z := range res.PointsTo(prim.SymID(i)) {
			names = append(names, p.Sym(z).Name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "pts %s = [%s]\n", sym.Name, strings.Join(names, " "))
	}

	rep, err := checks.Run(p, res, checks.Options{
		Checks:   checks.AllChecksAudited(),
		Jobs:     jobs,
		ExtModel: m.String(),
	})
	if err != nil {
		t.Fatalf("checks %v/%v: %v", m, s, err)
	}
	b.WriteString(rep.Graph.DOT())
	var diags bytes.Buffer
	rep.Format(&diags)
	b.Write(diags.Bytes())
	fmt.Fprintf(&b, "audit deref=%d calls=%d modref=%d\n",
		rep.Audit.DerefDowngraded, rep.Audit.CallsDowngraded, rep.Audit.ModRefIncomplete)
	return b.String()
}

// TestDeterminismAcrossJobsAndSolvers runs every solver under every model
// at jobs 1 and 8, requires byte-identical output per (solver, model)
// across the jobs settings, and pins a digest of the jobs=1 output in a
// golden file so precision changes are explicit.
func TestDeterminismAcrossJobsAndSolvers(t *testing.T) {
	var lines []string
	for _, m := range extmodel.Models() {
		for _, s := range allSolvers {
			ref := canonical(t, m, s, 1)
			if par := canonical(t, m, s, 8); par != ref {
				t.Errorf("%v/%v: output differs between jobs=1 and jobs=8", m, s)
			}
			lines = append(lines, fmt.Sprintf("%s %s %x", m, s, sha256.Sum256([]byte(ref))))
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(want) != got {
		t.Errorf("digests differ from %s:\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestUnsoundMatchesUnmodeledProgram: applying the unsound model must not
// change the solve at all — same digest as never calling extmodel.
func TestUnsoundMatchesUnmodeledProgram(t *testing.T) {
	for _, s := range allSolvers {
		withModel := canonical(t, extmodel.Unsound, s, 1)

		base := link(t, determinismUnits)
		res, err := driver.AnalyzeProgram(base, s, core.DefaultConfig())
		if err != nil {
			t.Fatalf("solve %v: %v", s, err)
		}
		var b strings.Builder
		for i := range base.Syms {
			sym := &base.Syms[i]
			if sym.Kind == prim.SymTemp || sym.Name == "" {
				continue
			}
			var names []string
			for _, z := range res.PointsTo(prim.SymID(i)) {
				names = append(names, base.Sym(z).Name)
			}
			sort.Strings(names)
			fmt.Fprintf(&b, "pts %s = [%s]\n", sym.Name, strings.Join(names, " "))
		}
		if !strings.HasPrefix(withModel, b.String()) {
			t.Errorf("%v: unsound-model pts differ from the unmodeled program", s)
		}
	}
}
