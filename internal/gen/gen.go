// Package gen generates deterministic synthetic C code bases calibrated to
// the benchmark characteristics of the paper's Table 2 (variables and the
// counts of each primitive assignment kind). The originals — nethack,
// burlap, vortex, emacs, povray, gcc, gimp and the proprietary Lucent code
// base — are not available, so each profile reproduces the published
// statistics; the solver's cost is driven by the number and mix of
// primitive assignments and the shape of the pointer graph, which is what
// the profiles control.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"cla/internal/cpp"
)

// Profile describes one synthetic benchmark in terms of Table 2 columns.
type Profile struct {
	Name string
	// Vars is the target number of named program variables.
	Vars int
	// Assignment-kind budgets: x = y, x = &y, *x = y, *x = *y, x = *y.
	Simple, Base, Store, Copy, Load int
	// Files is the number of translation units.
	Files int
	// Structs and FieldsPerStruct control the field-based vs
	// field-independent contrast.
	Structs int
	// Funcs is the number of defined functions.
	Funcs int
	// IndirectFrac is the fraction of calls made through function
	// pointers.
	IndirectFrac float64
	// Cluster is the locality window: assignments pick their operands
	// from a window of this many variables, modeling the locality of real
	// code (bigger windows percolate into denser points-to relations).
	Cluster int
	// Cross is the fraction of assignments that escape their cluster,
	// mixing distant parts of the program (join points).
	Cross float64
}

// Table2 lists the paper's eight benchmarks with their published variable
// and assignment counts (Table 2, full scale).
var Table2 = []Profile{
	{Name: "nethack", Vars: 3856, Simple: 9118, Base: 1115, Store: 30, Copy: 34, Load: 105, Files: 20, Structs: 40, Funcs: 300, IndirectFrac: 0.01, Cluster: 16, Cross: 0.005},
	{Name: "burlap", Vars: 6859, Simple: 14202, Base: 1049, Store: 1160, Copy: 714, Load: 1897, Files: 30, Structs: 60, Funcs: 500, IndirectFrac: 0.02, Cluster: 400, Cross: 0.12},
	{Name: "vortex", Vars: 11395, Simple: 24218, Base: 7458, Store: 353, Copy: 231, Load: 1866, Files: 40, Structs: 80, Funcs: 800, IndirectFrac: 0.02, Cluster: 128, Cross: 0.05},
	{Name: "emacs", Vars: 12587, Simple: 31345, Base: 3461, Store: 614, Copy: 154, Load: 1029, Files: 40, Structs: 80, Funcs: 900, IndirectFrac: 0.05, Cluster: 1024, Cross: 0.55},
	{Name: "povray", Vars: 12570, Simple: 29565, Base: 4009, Store: 2431, Copy: 1190, Load: 3085, Files: 40, Structs: 90, Funcs: 900, IndirectFrac: 0.03, Cluster: 96, Cross: 0.04},
	{Name: "gcc", Vars: 18749, Simple: 62556, Base: 3434, Store: 1673, Copy: 585, Load: 1467, Files: 60, Structs: 120, Funcs: 1500, IndirectFrac: 0.02, Cluster: 32, Cross: 0.01},
	{Name: "gimp", Vars: 131552, Simple: 303810, Base: 25578, Store: 5943, Copy: 2397, Load: 6428, Files: 200, Structs: 400, Funcs: 6000, IndirectFrac: 0.02, Cluster: 576, Cross: 0.07},
	{Name: "lucent", Vars: 96509, Simple: 270148, Base: 72355, Store: 1562, Copy: 991, Load: 3989, Files: 150, Structs: 300, Funcs: 5000, IndirectFrac: 0.01, Cluster: 128, Cross: 0.015},
}

// ProfileByName returns the named Table 2 profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Table2 {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Scale returns a copy of p with every budget multiplied by f (minimum 1
// where the original was non-zero).
func (p Profile) Scale(f float64) Profile {
	s := func(n int) int {
		if n == 0 {
			return 0
		}
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	out := p
	out.Vars = s(p.Vars)
	out.Simple = s(p.Simple)
	out.Base = s(p.Base)
	out.Store = s(p.Store)
	out.Copy = s(p.Copy)
	out.Load = s(p.Load)
	out.Files = clampMin(s(p.Files), 1)
	out.Structs = clampMin(s(p.Structs), 1)
	out.Funcs = clampMin(s(p.Funcs), out.Files)
	return out
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

// Code is a generated code base: file name → contents, plus the loader to
// compile it with (resolving the shared header).
type Code struct {
	Files  map[string]string
	Header string // name of the shared header
}

// Loader returns a cpp.Loader serving the generated files.
func (c *Code) Loader() cpp.Loader { return cpp.MapLoader(c.Files) }

// Units returns the .c file names in deterministic order.
func (c *Code) Units() []string {
	var out []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("u%03d.c", i)
		if _, ok := c.Files[name]; !ok {
			break
		}
		out = append(out, name)
	}
	return out
}

// TotalLines counts source lines across all files.
func (c *Code) TotalLines() int {
	n := 0
	for _, src := range c.Files {
		n += strings.Count(src, "\n")
	}
	return n
}

// generator state.
type generator struct {
	p   Profile
	rng *rand.Rand

	// variable pools, partitioned per file. Index 0 is the shared pool
	// (declared in the header, visible everywhere).
	ints    [][]string // plain int variables
	ptrs    [][]string // int *
	ptrptrs [][]string // int **
	structs [][]string // struct variables (struct type varies)
	sTypes  []int      // struct type index of each struct var, flattened

	funcs   []string // function names, func i defined in file i%Files
	funcPtr []string // function-pointer globals (shared)

	body      []strings.Builder // statement bodies per file
	varN      int
	focal     float64 // current locality focus in [0,1)
	crossStmt bool    // current statement is a global join
}

// Generate produces a code base for profile p with the given seed.
func Generate(p Profile, seed int64) *Code {
	g := &generator{p: p, rng: rand.New(rand.NewSource(seed))}
	g.allocate()
	g.emitAssignments()
	return g.render()
}

// pools: shared pool index 0; file pools 1..Files.
func (g *generator) allocate() {
	files := g.p.Files
	g.ints = make([][]string, files+1)
	g.ptrs = make([][]string, files+1)
	g.ptrptrs = make([][]string, files+1)
	g.structs = make([][]string, files+1)
	g.body = make([]strings.Builder, files)

	// Variable mix: 55% int, 28% ptr, 7% ptrptr, 10% struct vars.
	nInt := g.p.Vars * 55 / 100
	nPtr := g.p.Vars * 28 / 100
	nPP := g.p.Vars * 7 / 100
	nStruct := g.p.Vars - nInt - nPtr - nPP
	shared := func(total int) int { return clampMin(total/20, 1) } // 5% shared

	add := func(pools [][]string, prefix string, total int) {
		ns := shared(total)
		for i := 0; i < total; i++ {
			g.varN++
			name := fmt.Sprintf("%s%d", prefix, g.varN)
			pool := 0
			if i >= ns {
				pool = 1 + g.rng.Intn(g.p.Files)
			}
			pools[pool] = append(pools[pool], name)
		}
	}
	add(g.ints, "gi", nInt)
	add(g.ptrs, "gp", nPtr)
	add(g.ptrptrs, "gq", nPP)

	// Struct variables: round-robin over struct types.
	nsShared := shared(nStruct)
	for i := 0; i < nStruct; i++ {
		g.varN++
		name := fmt.Sprintf("gs%d", g.varN)
		pool := 0
		if i >= nsShared {
			pool = 1 + g.rng.Intn(g.p.Files)
		}
		g.structs[pool] = append(g.structs[pool], name)
		g.sTypes = append(g.sTypes, i%g.p.Structs)
	}

	for i := 0; i < g.p.Funcs; i++ {
		g.funcs = append(g.funcs, fmt.Sprintf("fn%d", i))
	}
	nfp := clampMin(int(float64(g.p.Funcs)*g.p.IndirectFrac), 1)
	for i := 0; i < nfp; i++ {
		g.funcPtr = append(g.funcPtr, fmt.Sprintf("fptr%d", i))
	}
}

// cluster returns the locality window size.
func (g *generator) cluster() int {
	if g.p.Cluster <= 0 {
		return 48
	}
	return g.p.Cluster
}

// focus starts a new statement neighborhood: subsequent picks stay within
// a window of the pool around the focal point. With probability Cross the
// whole statement becomes a global join: every operand is drawn from the
// shared pool, wiring distant parts of the program together the way
// central tables and list heads do in real code.
func (g *generator) focus() {
	g.focal = g.rng.Float64()
	g.crossStmt = g.rng.Float64() < g.p.Cross
}

// pick chooses a variable usable from file f near the current focal
// point, or from the shared pool when the statement is a global join.
func (g *generator) pick(pools [][]string, f int) string {
	own := pools[f+1]
	sh := pools[0]
	if len(own) == 0 && len(sh) == 0 {
		return ""
	}
	if (g.crossStmt && len(sh) > 0 && g.rng.Float64() < 0.7) || len(own) == 0 {
		if len(sh) > 0 {
			return sh[g.rng.Intn(len(sh))]
		}
		return own[g.rng.Intn(len(own))]
	}
	w := g.cluster()
	base := int(g.focal * float64(len(own)))
	idx := (base + g.rng.Intn(w)) % len(own)
	return own[idx]
}

// structVar picks a struct variable with its type index.
func (g *generator) structVar(f int) (string, int) {
	// Locate in flattened order: pools hold names; recover type by name
	// order — store a map instead for simplicity.
	own := g.structs[f+1]
	sh := g.structs[0]
	var name string
	if len(own) == 0 && len(sh) == 0 {
		return "", -1
	}
	if len(own) == 0 || (len(sh) > 0 && g.crossStmt) {
		name = sh[g.rng.Intn(len(sh))]
	} else {
		w := g.cluster()
		base := int(g.focal * float64(len(own)))
		name = own[(base+g.rng.Intn(w))%len(own)]
	}
	return name, g.typeOf(name)
}

// typeOf derives the struct type index from the variable's global index
// (struct vars were assigned types round-robin in allocation order).
func (g *generator) typeOf(name string) int {
	// Names are gsN; the Nth struct var allocated overall.
	var n int
	fmt.Sscanf(name, "gs%d", &n)
	return n % g.p.Structs
}

func (g *generator) stmt(f int, s string) {
	g.body[f].WriteString("\t")
	g.body[f].WriteString(s)
	g.body[f].WriteString("\n")
}

// emitAssignments spends each kind's budget on concrete statements.
func (g *generator) emitAssignments() {
	files := g.p.Files
	rf := func() int { return g.rng.Intn(files) }

	// Budget adjustments: function definitions and calls consume Simple
	// budget (parameter/return bindings are simple assignments).
	// Each function `int fn(int a){ return a+...; }` costs 2 simples
	// (a = fn$1, fn$ret = a); each call `x = fn(y)` costs 2.
	nCalls := g.p.Simple / 8
	simpleLeft := g.p.Simple - 2*g.p.Funcs - 2*nCalls
	if simpleLeft < 0 {
		nCalls = clampMin((g.p.Simple-2*g.p.Funcs)/2, 0)
		simpleLeft = 0
	}

	// Base: 60% p = &x, 15% q = &p, 10% s.f = &x (field pointer), 10%
	// p = &s.f, 5% fptr = &fn.
	nB := g.p.Base
	for i := 0; i < nB; i++ {
		f := rf()
		g.focus()
		switch r := g.rng.Intn(100); {
		case r < 60:
			p, x := g.pick(g.ptrs, f), g.pick(g.ints, f)
			if p != "" && x != "" {
				g.stmt(f, fmt.Sprintf("%s = &%s;", p, x))
			}
		case r < 75:
			q, p := g.pick(g.ptrptrs, f), g.pick(g.ptrs, f)
			if q != "" && p != "" {
				g.stmt(f, fmt.Sprintf("%s = &%s;", q, p))
			}
		case r < 85:
			s, ti := g.structVar(f)
			x := g.pick(g.ints, f)
			if s != "" && x != "" {
				g.stmt(f, fmt.Sprintf("%s.pf%d = &%s;", s, g.rng.Intn(fieldsPerStruct), x))
				_ = ti
			}
		case r < 95:
			p := g.pick(g.ptrs, f)
			s, _ := g.structVar(f)
			if p != "" && s != "" {
				g.stmt(f, fmt.Sprintf("%s = &%s.vf%d;", p, s, g.rng.Intn(fieldsPerStruct)))
			}
		default:
			if len(g.funcPtr) > 0 && len(g.funcs) > 0 {
				fp := g.funcPtr[g.rng.Intn(len(g.funcPtr))]
				fn := g.funcs[g.rng.Intn(len(g.funcs))]
				g.stmt(f, fmt.Sprintf("%s = &%s;", fp, fn))
			}
		}
	}

	// Simple: mostly x = y (ints); pointer copies take a share that grows
	// with the profile's join density (they are what percolates points-to
	// sets through the program); the rest is struct field traffic.
	ptrShare := 15 + int(100*g.p.Cross)
	intShare := 85 - ptrShare - 15
	for i := 0; i < simpleLeft; i++ {
		f := rf()
		g.focus()
		switch r := g.rng.Intn(100); {
		case r < intShare:
			a, b := g.pick(g.ints, f), g.pick(g.ints, f)
			if a != "" && b != "" && a != b {
				switch g.rng.Intn(4) {
				case 0:
					g.stmt(f, fmt.Sprintf("%s = %s;", a, b))
				case 1:
					g.stmt(f, fmt.Sprintf("%s = %s + 1;", a, b))
				case 2:
					g.stmt(f, fmt.Sprintf("%s = %s << 2;", a, b))
				default:
					g.stmt(f, fmt.Sprintf("%s += %s;", a, b))
				}
			}
		case r < intShare+ptrShare:
			a, b := g.pick(g.ptrs, f), g.pick(g.ptrs, f)
			if a != "" && b != "" && a != b {
				g.stmt(f, fmt.Sprintf("%s = %s;", a, b))
			}
		case r < intShare+ptrShare+10:
			s, _ := g.structVar(f)
			x := g.pick(g.ints, f)
			if s != "" && x != "" {
				if g.rng.Intn(2) == 0 {
					g.stmt(f, fmt.Sprintf("%s.vf%d = %s;", s, g.rng.Intn(fieldsPerStruct), x))
				} else {
					g.stmt(f, fmt.Sprintf("%s = %s.vf%d;", x, s, g.rng.Intn(fieldsPerStruct)))
				}
			}
		default:
			p1, s := g.pick(g.ptrs, f), ""
			sv, _ := g.structVar(f)
			s = sv
			if p1 != "" && s != "" {
				g.stmt(f, fmt.Sprintf("%s = %s.pf%d;", p1, s, g.rng.Intn(fieldsPerStruct)))
			}
		}
	}

	// Store: *p = x and *q = p.
	for i := 0; i < g.p.Store; i++ {
		f := rf()
		g.focus()
		if g.rng.Intn(4) > 0 {
			p, x := g.pick(g.ptrs, f), g.pick(g.ints, f)
			if p != "" && x != "" {
				g.stmt(f, fmt.Sprintf("*%s = %s;", p, x))
			}
		} else {
			q, p := g.pick(g.ptrptrs, f), g.pick(g.ptrs, f)
			if q != "" && p != "" {
				g.stmt(f, fmt.Sprintf("*%s = %s;", q, p))
			}
		}
	}

	// Load: x = *p and p = *q.
	for i := 0; i < g.p.Load; i++ {
		f := rf()
		g.focus()
		if g.rng.Intn(4) > 0 {
			x, p := g.pick(g.ints, f), g.pick(g.ptrs, f)
			if x != "" && p != "" {
				g.stmt(f, fmt.Sprintf("%s = *%s;", x, p))
			}
		} else {
			p, q := g.pick(g.ptrs, f), g.pick(g.ptrptrs, f)
			if p != "" && q != "" {
				g.stmt(f, fmt.Sprintf("%s = *%s;", p, q))
			}
		}
	}

	// Copy: *p = *p2.
	for i := 0; i < g.p.Copy; i++ {
		f := rf()
		g.focus()
		a, b := g.pick(g.ptrs, f), g.pick(g.ptrs, f)
		if a != "" && b != "" && a != b {
			g.stmt(f, fmt.Sprintf("*%s = *%s;", a, b))
		}
	}

	// Calls: direct and indirect.
	for i := 0; i < nCalls; i++ {
		f := rf()
		g.focus()
		x, y := g.pick(g.ints, f), g.pick(g.ints, f)
		if x == "" || y == "" {
			continue
		}
		if len(g.funcPtr) > 0 && g.rng.Float64() < g.p.IndirectFrac {
			fp := g.funcPtr[g.rng.Intn(len(g.funcPtr))]
			g.stmt(f, fmt.Sprintf("%s = %s(%s);", x, fp, y))
		} else {
			fn := g.funcs[g.rng.Intn(len(g.funcs))]
			g.stmt(f, fmt.Sprintf("%s = %s(%s);", x, fn, y))
		}
	}
}

// fieldsPerStruct is fixed: each struct has vf0..vf3 (int) and pf0..pf3
// (int *) fields.
const fieldsPerStruct = 4

// render assembles the header and unit files.
func (g *generator) render() *Code {
	files := map[string]string{}

	var h strings.Builder
	h.WriteString("#ifndef GEN_DEFS_H\n#define GEN_DEFS_H\n")
	for i := 0; i < g.p.Structs; i++ {
		fmt.Fprintf(&h, "struct S%d { ", i)
		for j := 0; j < fieldsPerStruct; j++ {
			fmt.Fprintf(&h, "int vf%d; int *pf%d; ", j, j)
		}
		h.WriteString("};\n")
	}
	declare := func(kw, name string) { fmt.Fprintf(&h, "extern %s;\n", fmt.Sprintf(kw, name)) }
	for _, v := range g.ints[0] {
		declare("int %s", v)
	}
	for _, v := range g.ptrs[0] {
		declare("int *%s", v)
	}
	for _, v := range g.ptrptrs[0] {
		declare("int **%s", v)
	}
	for _, v := range g.structs[0] {
		fmt.Fprintf(&h, "extern struct S%d %s;\n", g.typeOf(v), v)
	}
	for _, fp := range g.funcPtr {
		fmt.Fprintf(&h, "extern int (*%s)(int);\n", fp)
	}
	for _, fn := range g.funcs {
		fmt.Fprintf(&h, "int %s(int);\n", fn)
	}
	h.WriteString("#endif\n")
	files["defs.h"] = h.String()

	for f := 0; f < g.p.Files; f++ {
		var b strings.Builder
		b.WriteString("#include \"defs.h\"\n")
		if f == 0 {
			// Shared definitions live in unit 0.
			for _, v := range g.ints[0] {
				fmt.Fprintf(&b, "int %s;\n", v)
			}
			for _, v := range g.ptrs[0] {
				fmt.Fprintf(&b, "int *%s;\n", v)
			}
			for _, v := range g.ptrptrs[0] {
				fmt.Fprintf(&b, "int **%s;\n", v)
			}
			for _, v := range g.structs[0] {
				fmt.Fprintf(&b, "struct S%d %s;\n", g.typeOf(v), v)
			}
			for _, fp := range g.funcPtr {
				fmt.Fprintf(&b, "int (*%s)(int);\n", fp)
			}
		}
		for _, v := range g.ints[f+1] {
			fmt.Fprintf(&b, "int %s;\n", v)
		}
		for _, v := range g.ptrs[f+1] {
			fmt.Fprintf(&b, "int *%s;\n", v)
		}
		for _, v := range g.ptrptrs[f+1] {
			fmt.Fprintf(&b, "int **%s;\n", v)
		}
		for _, v := range g.structs[f+1] {
			fmt.Fprintf(&b, "struct S%d %s;\n", g.typeOf(v), v)
		}
		// Function definitions owned by this file.
		for i := f; i < len(g.funcs); i += g.p.Files {
			fmt.Fprintf(&b, "int %s(int a0) { return a0 + 1; }\n", g.funcs[i])
		}
		// Statements wrapped in one driver function per file.
		fmt.Fprintf(&b, "void unit%d_main(void) {\n", f)
		b.WriteString(g.body[f].String())
		b.WriteString("}\n")
		files[fmt.Sprintf("u%03d.c", f)] = b.String()
	}
	return &Code{Files: files, Header: "defs.h"}
}
