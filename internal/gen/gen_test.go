package gen

import (
	"strings"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

func TestProfilesPresent(t *testing.T) {
	names := []string{"nethack", "burlap", "vortex", "emacs", "povray", "gcc", "gimp", "lucent"}
	for _, n := range names {
		if _, ok := ProfileByName(n); !ok {
			t.Errorf("profile %s missing", n)
		}
	}
	if _, ok := ProfileByName("quake"); ok {
		t.Error("unknown profile found")
	}
}

func TestScale(t *testing.T) {
	p, _ := ProfileByName("gcc")
	s := p.Scale(0.1)
	if s.Vars < p.Vars/11 || s.Vars > p.Vars/9 {
		t.Errorf("scaled vars = %d", s.Vars)
	}
	if s.Files < 1 || s.Funcs < s.Files {
		t.Errorf("files=%d funcs=%d", s.Files, s.Funcs)
	}
	// Scaling never zeroes a non-zero budget.
	tiny := p.Scale(0.00001)
	if tiny.Simple == 0 || tiny.Base == 0 {
		t.Errorf("tiny scale lost budgets: %+v", tiny)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("nethack")
	p = p.Scale(0.05)
	c1 := Generate(p, 42)
	c2 := Generate(p, 42)
	if len(c1.Files) != len(c2.Files) {
		t.Fatal("file counts differ")
	}
	for name, src := range c1.Files {
		if c2.Files[name] != src {
			t.Fatalf("file %s differs between runs", name)
		}
	}
	c3 := Generate(p, 43)
	same := true
	for name, src := range c1.Files {
		if c3.Files[name] != src {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical code")
	}
}

func TestGeneratedCodeCompiles(t *testing.T) {
	for _, base := range Table2 {
		p := base.Scale(0.02)
		code := Generate(p, 1)
		units := code.Units()
		if len(units) != p.Files {
			t.Fatalf("%s: units = %d, want %d", p.Name, len(units), p.Files)
		}
		prog, err := driver.CompileUnits(units, code.Loader(), frontend.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		if len(prog.Assigns) == 0 {
			t.Fatalf("%s: no assignments", p.Name)
		}
	}
}

func TestGeneratedCountsApproximateProfile(t *testing.T) {
	p, _ := ProfileByName("vortex")
	p = p.Scale(0.1)
	code := Generate(p, 7)
	prog, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := prog.CountByKind()
	// The generator spends explicit budgets; allow generous tolerance for
	// pool-miss skips and call/definition overheads.
	within := func(got, want int, loFrac, hiFrac float64) bool {
		return float64(got) >= float64(want)*loFrac && float64(got) <= float64(want)*hiFrac
	}
	if !within(counts[prim.Simple], p.Simple, 0.5, 1.6) {
		t.Errorf("simple = %d, budget %d", counts[prim.Simple], p.Simple)
	}
	if !within(counts[prim.Base], p.Base, 0.5, 1.6) {
		t.Errorf("base = %d, budget %d", counts[prim.Base], p.Base)
	}
	if !within(counts[prim.StoreInd], p.Store, 0.4, 1.8) {
		t.Errorf("store = %d, budget %d", counts[prim.StoreInd], p.Store)
	}
	if !within(counts[prim.LoadInd], p.Load, 0.4, 1.8) {
		t.Errorf("load = %d, budget %d", counts[prim.LoadInd], p.Load)
	}
}

func TestGeneratedCodeAnalyzes(t *testing.T) {
	p, _ := ProfileByName("burlap")
	p = p.Scale(0.05)
	code := Generate(p, 3)
	prog, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(pts.NewMemSource(prog), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m.PointerVars == 0 || m.Relations == 0 {
		t.Errorf("no points-to facts on generated code: %+v", m)
	}
}

func TestGeneratedFieldModesDiffer(t *testing.T) {
	p, _ := ProfileByName("povray")
	p = p.Scale(0.05)
	code := Generate(p, 11)
	fb, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{Mode: frontend.FieldBased})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{Mode: frontend.FieldIndependent})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.Solve(pts.NewMemSource(fb), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ri, err := core.Solve(pts.NewMemSource(fi), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Field-independent conflates fields, producing more relations per
	// variable on struct-heavy code (the Table 4 effect).
	mb, mi := rb.Metrics(), ri.Metrics()
	if mb.Relations == 0 || mi.Relations == 0 {
		t.Fatalf("degenerate: fb=%+v fi=%+v", mb, mi)
	}
	t.Logf("field-based relations=%d field-independent relations=%d", mb.Relations, mi.Relations)
}

func TestHeaderGuard(t *testing.T) {
	p, _ := ProfileByName("nethack")
	code := Generate(p.Scale(0.01), 5)
	hdr := code.Files["defs.h"]
	if !strings.Contains(hdr, "#ifndef GEN_DEFS_H") {
		t.Error("header lacks include guard")
	}
	if code.TotalLines() == 0 {
		t.Error("no lines generated")
	}
}

func TestIndirectCallsGenerated(t *testing.T) {
	p, _ := ProfileByName("emacs") // highest IndirectFrac
	p = p.Scale(0.1)
	code := Generate(p, 9)
	found := false
	for name, src := range code.Files {
		if strings.HasSuffix(name, ".c") && strings.Contains(src, "fptr") {
			found = true
		}
	}
	if !found {
		t.Error("no function-pointer usage generated")
	}
}
