// Package incr is the incremental watch-mode pipeline: a long-lived
// compile-link-analyze session over a directory of C units that
// recompiles only what changed. It is the CLA architecture's payoff for
// separate compilation — parsing dominates solving by more than an order
// of magnitude on real code, so a pipeline that re-parses one dirty unit
// instead of a million lines turns an edit-analyze round trip from
// seconds into milliseconds.
//
// The pipeline tracks three layers of reuse, each content-addressed:
//
//   - Unit databases. Every translation unit is keyed by its compile
//     options plus the srchash digest of the unit source and every file
//     in the include closure it actually read (recorded by a tracking
//     loader during compilation). Clean units are reused in memory;
//     with a cache directory configured they are also served from an
//     on-disk store across sessions, so a fresh process warm-starts
//     without parsing anything.
//   - Link subtrees. Relinking replays the same pairwise merge tree as
//     linker.LinkParallel through a generation-scoped memo
//     (linker.LinkTreeMemo), so an edit to one of N units re-runs only
//     the O(log N) merges on its root path.
//   - The fixpoint. The linked database is digested
//     (prim.Program.Digest folded with solver, extern model and
//     configuration identity) and the solve is routed through the
//     solvers' warm-start entry points: an unchanged digest returns the
//     previous fixpoint byte-for-byte without solving.
//
// Each successful refresh that changes the analysis yields a new
// *Result — an immutable generation snapshot. Queries in flight against
// an old generation keep it alive; nothing is mutated in place.
package incr

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cla/internal/core"
	"cla/internal/cpp"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/linker"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/srchash"
)

// Config parameterizes a pipeline. The zero value of Core is a valid
// ablation setting (everything off); most callers want
// core.DefaultConfig().
type Config struct {
	// Dir is the workspace root: every .c file directly under it is a
	// translation unit, and it is the first #include search directory.
	Dir string
	// Includes are extra #include search directories, after Dir.
	Includes []string
	// Frontend carries the compile options (struct mode, string
	// modeling, defines). They are part of every unit's cache key.
	Frontend frontend.Options
	// Solver selects the points-to algorithm for the analyze phase.
	Solver driver.Solver
	// Model selects the extern-code model applied after linking.
	Model extmodel.Model
	// Core configures the pre-transitive solver's ablation toggles.
	Core core.Config
	// Jobs bounds compile, link and solve parallelism (<= 0 means
	// GOMAXPROCS). Results are byte-identical at any setting.
	Jobs int
	// CacheDir, when non-empty, enables the on-disk unit store there, so
	// compiled units survive across pipeline sessions.
	CacheDir string
	// Obs receives phase spans, incr.* counters and the incr.refresh
	// latency histogram. Nil disables instrumentation.
	Obs *obs.Observer
}

// dep is one file a unit's compilation read: the unit source itself or a
// header in its include closure.
type dep struct {
	path string // as resolved by the loader
	hash string // srchash of its content at compile time
}

// unit is one translation unit's cached compilation.
type unit struct {
	path string
	prog *prim.Program
	deps []dep  // sorted by path
	key  uint64 // content key: options + dep closure (leafKey)
}

// stamp is a cheap stat-level fingerprint used by staleness probes.
type stamp struct {
	size  int64
	mtime int64
}

// RefreshStats reports what one refresh actually did.
type RefreshStats struct {
	// Units is the workspace's unit count; Recompiled of those were
	// dirty and re-parsed, StoreHits were dirty but served from the
	// on-disk store, and Reused were clean and kept from memory.
	Units, Recompiled, StoreHits, Reused int
	// MergesDone and MergesReused split the relink tree's pairwise
	// merges into re-run versus memo-served.
	MergesDone, MergesReused int
	// SolveReused reports that the fixpoint was reused byte-for-byte
	// because the solve digest did not change.
	SolveReused bool
	// Changed reports that the refresh produced a new generation.
	Changed bool
	// Phase wall-clock split.
	Hash, Compile, Link, Solve, Total time.Duration
}

// Result is one immutable generation of the analysis. A Result never
// changes after it is returned; later refreshes produce new Results and
// leave old ones intact, so callers may keep querying a pinned
// generation while the pipeline moves on.
type Result struct {
	// Gen numbers generations from 1.
	Gen uint64
	// Prog is the analyzed program: the linked database with the extern
	// model applied (identical to Linked under the unsound model).
	Prog *prim.Program
	// Linked is the raw linked database before extern modeling.
	Linked *prim.Program
	// Src is the constraint source the solver consumed.
	Src pts.Source
	// Res is the converged points-to fixpoint.
	Res pts.Result
	// Digest identifies the solved configuration (program content +
	// solver + model + core config); equal digests mean byte-identical
	// analyses.
	Digest uint64
	// Built is when this generation finished.
	Built time.Time
	// Stats describes the refresh that built this generation.
	Stats RefreshStats
}

// Pipeline is a long-lived incremental compile-link-analyze session.
// All methods are safe for concurrent use; refreshes serialize.
type Pipeline struct {
	cfg   Config
	store *store
	memo  *linker.MergeCache

	mu     sync.Mutex
	gen    uint64
	units  map[string]*unit
	stamps map[string]stamp
	warm   *pts.Warm
	cur    *Result
}

// Open builds the first generation: a full compile, link and solve of
// every unit under cfg.Dir (served from the on-disk store where valid,
// so a second session over an unchanged tree parses nothing).
func Open(ctx context.Context, cfg Config) (*Pipeline, error) {
	p := &Pipeline{cfg: cfg, memo: linker.NewMergeCache(), units: map[string]*unit{}}
	if cfg.CacheDir != "" {
		st, err := openStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		p.store = st
	}
	if _, _, err := p.refresh(ctx, nil); err != nil {
		return nil, err
	}
	return p, nil
}

// CompileDir runs the pipeline's compile+link front half once and
// returns the linked database — the single-generation equivalent of a
// workspace's compile phase, which the one-shot cla.CompileDir wraps.
func CompileDir(ctx context.Context, cfg Config) (*prim.Program, error) {
	p := &Pipeline{cfg: cfg, memo: linker.NewMergeCache(), units: map[string]*unit{}}
	if cfg.CacheDir != "" {
		st, err := openStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		p.store = st
	}
	units, _, err := p.compilePhase(ctx, nil)
	if err != nil {
		return nil, err
	}
	linked, _, err := p.linkPhase(units)
	return linked, err
}

// Current returns the latest generation snapshot.
func (p *Pipeline) Current() *Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Generation returns the latest generation number.
func (p *Pipeline) Generation() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// Refresh re-checks every tracked file (unit sources, include closures,
// and the directory listing for added or removed units), rebuilds what
// changed, and returns the current generation — a new one if the
// analysis changed, the existing one otherwise.
func (p *Pipeline) Refresh(ctx context.Context) (*Result, RefreshStats, error) {
	return p.refresh(ctx, nil)
}

// Update is Refresh with a change hint: only the named files (plus the
// directory listing) are re-checked, so the cost of a no-op probe scales
// with the hint, not the workspace. An empty hint re-checks everything,
// like Refresh. Paths are matched against tracked files by cleaned
// absolute path.
func (p *Pipeline) Update(ctx context.Context, changed ...string) (*Result, RefreshStats, error) {
	if len(changed) == 0 {
		return p.refresh(ctx, nil)
	}
	hints := make(map[string]bool, len(changed))
	for _, c := range changed {
		hints[canon(c)] = true
	}
	return p.refresh(ctx, hints)
}

// TrackedFiles returns every file the current generation's compilation
// read — unit sources and include closures — sorted. It is the poll
// watcher's scan set.
func (p *Pipeline) TrackedFiles() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	for _, u := range p.units {
		for _, d := range u.deps {
			seen[d.path] = true
		}
	}
	files := make([]string, 0, len(seen))
	for f := range seen {
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}

// Stale probes for drift without rebuilding: it re-stats every tracked
// file against the stamps recorded at the last refresh and re-lists the
// unit directory. It returns the paths that look changed (stat drift,
// removal, or a new unit). A false result is cheap — one stat per
// tracked file and one ReadDir.
func (p *Pipeline) Stale() (bool, []string) {
	p.mu.Lock()
	stamps := p.stamps
	units := make(map[string]bool, len(p.units))
	for path := range p.units {
		units[path] = true
	}
	p.mu.Unlock()

	var changed []string
	for path, st := range stamps {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() != st.size || fi.ModTime().UnixNano() != st.mtime {
			changed = append(changed, path)
		}
	}
	for _, u := range listUnits(p.cfg.Dir) {
		if !units[u] {
			changed = append(changed, u)
		}
	}
	sort.Strings(changed)
	return len(changed) > 0, changed
}

// listUnits returns the sorted .c files directly under dir.
func listUnits(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var units []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".c" {
			units = append(units, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(units)
	return units
}

func canon(path string) string {
	if a, err := filepath.Abs(path); err == nil {
		return a
	}
	return filepath.Clean(path)
}

// hashCache memoizes file hashing within one refresh, so a header shared
// by fifty units is read once, not fifty times.
type hashCache struct {
	mu sync.Mutex
	m  map[string]string // path -> hash, "" for unreadable
}

func newHashCache() *hashCache { return &hashCache{m: map[string]string{}} }

// hash returns the srchash of path's current content, or "" if the file
// is unreadable (which any comparison treats as changed).
func (hc *hashCache) hash(path string) string {
	hc.mu.Lock()
	h, ok := hc.m[path]
	hc.mu.Unlock()
	if ok {
		return h
	}
	h = ""
	if b, err := os.ReadFile(path); err == nil {
		h = srchash.Bytes(b)
	}
	hc.mu.Lock()
	hc.m[path] = h
	hc.mu.Unlock()
	return h
}

// optsFingerprint folds the semantically relevant compile options into
// unit keys, mirroring the driver cache's scheme.
func optsFingerprint(opts frontend.Options) string {
	keys := make([]string, 0, len(opts.Defines))
	for k, v := range opts.Defines {
		keys = append(keys, k+"="+v)
	}
	sort.Strings(keys)
	return fmt.Sprintf("mode=%d;strings=%v;defines=%v", opts.Mode, opts.ModelStrings, keys)
}

// leafKey derives a unit's content key from its compile options and
// dependency closure — the identity the link memo and the on-disk store
// agree on.
func leafKey(opts frontend.Options, deps []dep) uint64 {
	h := srchash.Offset()
	h = srchash.FoldString(h, optsFingerprint(opts))
	for _, d := range deps {
		h = srchash.FoldU32(h, uint32(len(d.path)))
		h = srchash.FoldString(h, d.path)
		h = srchash.FoldString(h, d.hash)
	}
	return h
}

// dirty reports whether any of u's dependencies changed. With a hint
// set, only hinted dependencies are re-checked; without one, all are.
func dirty(u *unit, hints map[string]bool, hc *hashCache) bool {
	for _, d := range u.deps {
		if hints != nil && !hints[canon(d.path)] {
			continue
		}
		if hc.hash(d.path) != d.hash {
			return true
		}
	}
	return false
}

// trackLoader records the resolved path and content hash of every file
// read through it — the unit's dependency closure.
type trackLoader struct {
	inner cpp.Loader
	mu    sync.Mutex
	reads map[string]string // path -> hash
}

func (l *trackLoader) Load(name string) (string, string, error) {
	content, path, err := l.inner.Load(name)
	if err == nil {
		l.mu.Lock()
		l.reads[path] = srchash.String(content)
		l.mu.Unlock()
	}
	return content, path, err
}

func (l *trackLoader) deps() []dep {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]dep, 0, len(l.reads))
	for p, h := range l.reads {
		out = append(out, dep{path: p, hash: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// compilePhase lists the workspace's units, decides which are dirty
// (under the optional hint set), and recompiles those — from the on-disk
// store when the closure still matches, by parsing otherwise. It returns
// the new sorted unit slice without committing it to the pipeline.
func (p *Pipeline) compilePhase(ctx context.Context, hints map[string]bool) ([]*unit, RefreshStats, error) {
	var st RefreshStats
	o := p.cfg.Obs
	hc := newHashCache()

	paths := listUnits(p.cfg.Dir)
	if len(paths) == 0 {
		return nil, st, fmt.Errorf("incr: no .c files in %s", p.cfg.Dir)
	}
	st.Units = len(paths)

	hashStart := time.Now()
	units := make([]*unit, len(paths))
	var dirtyIdx []int
	for i, path := range paths {
		if u := p.units[path]; u != nil && !dirty(u, hints, hc) {
			units[i] = u
			st.Reused++
			continue
		}
		dirtyIdx = append(dirtyIdx, i)
	}
	st.Hash = time.Since(hashStart)

	compileStart := time.Now()
	if len(dirtyIdx) > 0 {
		sp := o.Start("compile")
		loader := cpp.OSLoader{Dirs: append([]string{p.cfg.Dir}, p.cfg.Includes...)}
		var hits atomic.Int64
		err := parallel.ForEachCtx(ctx, p.cfg.Jobs, len(dirtyIdx), func(k int) error {
			i := dirtyIdx[k]
			path := paths[i]
			if p.store != nil {
				if u, ok := p.store.load(path, p.cfg.Frontend, hc); ok {
					units[i] = u
					hits.Add(1)
					return nil
				}
			}
			usp := o.StartTrack(k+1, "unit "+filepath.Base(path))
			defer usp.End()
			tl := &trackLoader{inner: loader, reads: map[string]string{}}
			content, rpath, err := tl.Load(path)
			if err != nil {
				return fmt.Errorf("incr: compile %s: %w", path, err)
			}
			prog, err := frontend.CompileSource(rpath, content, tl, p.cfg.Frontend)
			if err != nil {
				return fmt.Errorf("incr: compile %s: %w", path, err)
			}
			deps := tl.deps()
			u := &unit{path: path, prog: prog, deps: deps, key: leafKey(p.cfg.Frontend, deps)}
			if p.store != nil {
				p.store.save(u, p.cfg.Frontend) // best-effort
			}
			units[i] = u
			return nil
		})
		sp.End()
		if err != nil {
			return nil, st, err
		}
		st.StoreHits = int(hits.Load())
		st.Recompiled = len(dirtyIdx) - st.StoreHits
	}
	st.Compile = time.Since(compileStart)
	o.SetCounter("compile.units", int64(len(dirtyIdx)))
	return units, st, nil
}

// linkPhase merges the units through the generation memo.
func (p *Pipeline) linkPhase(units []*unit) (*prim.Program, linker.TreeStats, error) {
	progs := make([]*prim.Program, len(units))
	keys := make([]uint64, len(units))
	for i, u := range units {
		progs[i], keys[i] = u.prog, u.key
	}
	return linker.LinkTreeMemo(progs, keys, p.cfg.Jobs, p.memo, p.cfg.Obs)
}

// solveDigest identifies one solved configuration: the linked database's
// content plus everything else that shapes the fixpoint. Jobs is
// deliberately excluded — results are byte-identical at any -j.
func (p *Pipeline) solveDigest(linked *prim.Program) uint64 {
	h := srchash.Offset()
	h = srchash.FoldU64(h, linked.Digest())
	h = srchash.FoldU32(h, uint32(p.cfg.Solver))
	h = srchash.FoldU32(h, uint32(p.cfg.Model))
	var bits uint32
	if p.cfg.Core.Cache {
		bits |= 1
	}
	if p.cfg.Core.CycleElim {
		bits |= 2
	}
	if p.cfg.Core.DemandLoad {
		bits |= 4
	}
	h = srchash.FoldU32(h, bits)
	h = srchash.FoldU32(h, uint32(p.cfg.Core.MaxPasses))
	return h
}

// refresh runs one incremental build cycle and commits it atomically:
// on any error the pipeline keeps serving the previous generation
// untouched (a syntax error mid-edit must not take the session down).
func (p *Pipeline) refresh(ctx context.Context, hints map[string]bool) (*Result, RefreshStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	o := p.cfg.Obs

	units, st, err := p.compilePhase(ctx, hints)
	if err != nil {
		return nil, st, err
	}

	linkStart := time.Now()
	linked, ts, err := p.linkPhase(units)
	if err != nil {
		return nil, st, err
	}
	st.MergesDone, st.MergesReused = ts.Merges, ts.Reused
	st.Link = time.Since(linkStart)

	solveStart := time.Now()
	digest := p.solveDigest(linked)
	var res *Result
	if p.cur != nil && p.warm.Match(digest) {
		// Unchanged analysis: route through the warm-start seam (which
		// returns the previous fixpoint without solving) and keep the
		// current generation — its program content is identical, so the
		// extern-model clone is skipped too.
		cfg := p.cfg.Core
		cfg.Jobs = p.cfg.Jobs
		if _, reused, err := driver.AnalyzeWarmCtx(ctx, p.cur.Src, p.cfg.Solver, cfg, digest, p.warm); err != nil {
			return nil, st, err
		} else if reused {
			st.SolveReused = true
		}
		res = p.cur
	} else {
		aprog := linked
		if p.cfg.Model != extmodel.Unsound {
			aprog, _ = extmodel.ApplyClone(linked, p.cfg.Model)
		}
		src := pts.NewMemSource(aprog)
		cfg := p.cfg.Core
		cfg.Jobs = p.cfg.Jobs
		r, err := driver.AnalyzeObsCtx(ctx, src, p.cfg.Solver, cfg, o)
		if err != nil {
			return nil, st, err
		}
		p.gen++
		st.Changed = true
		res = &Result{
			Gen: p.gen, Prog: aprog, Linked: linked, Src: src, Res: r,
			Digest: digest, Built: time.Now(),
		}
		p.warm = &pts.Warm{Digest: digest, Result: r}
	}
	st.Solve = time.Since(solveStart)
	st.Total = time.Since(start)
	if st.Changed {
		res.Stats = st
	}

	// Commit: new unit set, fresh stat stamps for Stale probes.
	p.units = make(map[string]*unit, len(units))
	stamps := map[string]stamp{}
	for _, u := range units {
		p.units[u.path] = u
		for _, d := range u.deps {
			if _, ok := stamps[d.path]; ok {
				continue
			}
			if fi, err := os.Stat(d.path); err == nil {
				stamps[d.path] = stamp{size: fi.Size(), mtime: fi.ModTime().UnixNano()}
			}
		}
	}
	p.stamps = stamps
	p.cur = res

	o.Gauge("incr.generation").Set(int64(p.gen))
	o.Counter("incr.refreshes").Inc()
	o.Counter("incr.units_recompiled").Add(int64(st.Recompiled))
	o.Counter("incr.units_store_hits").Add(int64(st.StoreHits))
	o.Counter("incr.units_reused").Add(int64(st.Reused))
	o.Counter("incr.link_merges_reused").Add(int64(st.MergesReused))
	if st.SolveReused {
		o.Counter("incr.solve_reused").Inc()
	}
	o.Histogram("incr.refresh").ObserveSince(start)
	return res, st, nil
}
