package incr

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/obs"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/srchash"
)

// A miniature workspace: four units, one header shared by exactly two of
// them (list.c and table.c), one private header, so header edits have a
// precise expected blast radius.
var baseTree = map[string]string{
	"shared.h": `
void *malloc(unsigned long);
struct node { struct node *next; int value; };
extern struct node *head;
struct node *push(struct node *h, int v);
`,
	"priv.h": `
extern int counter;
`,
	"list.c": `
#include "shared.h"
struct node *head;
struct node *push(struct node *h, int v) {
	struct node *n = (struct node *)malloc(sizeof(struct node));
	n->next = h;
	n->value = v;
	return n;
}
`,
	"table.c": `
#include "shared.h"
struct node *bucket;
void put(int v) { bucket = push(bucket, v); }
`,
	"count.c": `
#include "priv.h"
int counter;
int *counter_addr(void) { return &counter; }
`,
	"main.c": `
extern void put(int v);
int main(void) { put(1); return 0; }
`,
}

func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func edit(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(dir string) Config {
	return Config{
		Dir:    dir,
		Solver: driver.PreTransitive,
		Core:   core.DefaultConfig(),
		Jobs:   2,
	}
}

// fingerprint renders a result as sorted "pointer -> {objects}" lines
// keyed by symbol name and location, so it compares across independently
// built programs, and digests them.
func fingerprint(p *prim.Program, res pts.Result) string {
	name := func(id prim.SymID) string {
		s := &p.Syms[id]
		return fmt.Sprintf("%s@%s:%d/%s", s.Name, s.Loc.File, s.Loc.Line, s.FuncName)
	}
	var lines []string
	for id := range p.Syms {
		set := res.PointsTo(prim.SymID(id))
		if len(set) == 0 {
			continue
		}
		names := make([]string, len(set))
		for i, o := range set {
			names[i] = name(o)
		}
		sort.Strings(names)
		lines = append(lines, name(prim.SymID(id))+" -> {"+strings.Join(names, ", ")+"}")
	}
	sort.Strings(lines)
	return srchash.String(strings.Join(lines, "\n"))
}

// scratchFingerprint builds the same analysis from scratch through the
// one-shot driver path.
func scratchFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	prog, err := driver.CompileDirCtx(context.Background(), cfg.Dir, cfg.Includes, cfg.Frontend, cfg.Jobs, nil)
	if err != nil {
		t.Fatalf("scratch compile: %v", err)
	}
	aprog, _ := extmodel.ApplyClone(prog, cfg.Model)
	ccfg := cfg.Core
	ccfg.Jobs = cfg.Jobs
	res, err := driver.AnalyzeCtx(context.Background(), pts.NewMemSource(aprog), cfg.Solver, ccfg)
	if err != nil {
		t.Fatalf("scratch analyze: %v", err)
	}
	return fingerprint(aprog, res)
}

func TestOpenMatchesScratch(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	cfg := testConfig(dir)
	p, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Current()
	if res.Gen != 1 {
		t.Fatalf("first generation = %d, want 1", res.Gen)
	}
	if res.Stats.Units != 4 || res.Stats.Recompiled != 4 {
		t.Fatalf("stats = %+v, want 4 units all recompiled", res.Stats)
	}
	if got, want := fingerprint(res.Prog, res.Res), scratchFingerprint(t, cfg); got != want {
		t.Fatalf("open fingerprint %s != scratch %s", got, want)
	}
}

func TestNoopRefreshKeepsGeneration(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	first := p.Current()
	res, st, err := p.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res != first {
		t.Fatal("no-op refresh built a new Result")
	}
	if st.Changed || st.Recompiled != 0 || st.Reused != 4 || !st.SolveReused {
		t.Fatalf("no-op stats = %+v", st)
	}
}

// TestSharedHeaderRecompilesExactlyItsUsers is the issue's e2e case: an
// edit to a header included by two of four units must recompile exactly
// those two (observed through the incr.* counters), and the incremental
// result must be byte-identical to a from-scratch analysis.
func TestSharedHeaderRecompilesExactlyItsUsers(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	cfg := testConfig(dir)
	o := obs.New()
	cfg.Obs = o
	p, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := p.Current()
	before := o.Counter("incr.units_recompiled").Value()

	hdr := edit(t, dir, "shared.h", `
void *malloc(unsigned long);
struct node { struct node *next; int value; };
extern struct node *head;
extern struct node *tail;
struct node *push(struct node *h, int v);
`)
	res, st, err := p.Update(context.Background(), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != gen1.Gen+1 {
		t.Fatalf("generation = %d, want %d", res.Gen, gen1.Gen+1)
	}
	if st.Recompiled != 2 || st.Reused != 2 {
		t.Fatalf("stats = %+v, want exactly the 2 header users recompiled", st)
	}
	if got := o.Counter("incr.units_recompiled").Value() - before; got != 2 {
		t.Fatalf("incr.units_recompiled delta = %d, want 2", got)
	}
	if got, want := fingerprint(res.Prog, res.Res), scratchFingerprint(t, cfg); got != want {
		t.Fatalf("incremental fingerprint %s != scratch %s", got, want)
	}
	// The old generation is untouched and still answers queries.
	if gen1.Gen != 1 || len(gen1.Res.PointsTo(0)) != len(gen1.Res.PointsTo(0)) {
		t.Fatal("previous generation mutated")
	}
}

// TestIdentityAcrossSolversAndJobs pins the acceptance criterion: after
// an edit, the incremental result is byte-identical to a from-scratch
// build for every solver at -j 1 and -j 8.
func TestIdentityAcrossSolversAndJobs(t *testing.T) {
	solvers := []driver.Solver{
		driver.PreTransitive, driver.Worklist, driver.Steensgaard,
		driver.BitVector, driver.OneLevel,
	}
	for _, solver := range solvers {
		for _, jobs := range []int{1, 8} {
			t.Run(fmt.Sprintf("%v-j%d", solver, jobs), func(t *testing.T) {
				dir := t.TempDir()
				writeTree(t, dir, baseTree)
				cfg := testConfig(dir)
				cfg.Solver = solver
				cfg.Jobs = jobs
				cfg.Model = extmodel.Blanket
				p, err := Open(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				changed := edit(t, dir, "list.c", `
#include "shared.h"
struct node *head;
struct node *spare;
struct node *push(struct node *h, int v) {
	struct node *n = (struct node *)malloc(sizeof(struct node));
	n->next = h;
	n->value = v;
	spare = n;
	return n;
}
`)
				res, _, err := p.Update(context.Background(), changed)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := fingerprint(res.Prog, res.Res), scratchFingerprint(t, cfg); got != want {
					t.Fatalf("incremental %s != scratch %s", got, want)
				}
			})
		}
	}
}

func TestCommentEditReusesFixpoint(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	gen1 := p.Current()
	// Same tokens on the same lines: the unit recompiles (its hash
	// changed) but the database digest — and so the fixpoint and the
	// generation — must not.
	changed := edit(t, dir, "main.c", `
extern void put(int v); /* callback into table.c */
int main(void) { put(1); return 0; }
`)
	res, st, err := p.Update(context.Background(), changed)
	if err != nil {
		t.Fatal(err)
	}
	if res != gen1 {
		t.Fatalf("generation bumped to %d on a semantics-preserving edit", res.Gen)
	}
	if st.Recompiled != 1 || !st.SolveReused || st.Changed {
		t.Fatalf("stats = %+v, want 1 recompile with fixpoint reuse", st)
	}
}

func TestAddAndRemoveUnit(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	extra := edit(t, dir, "extra.c", `
int extra_global;
int *extra_addr(void) { return &extra_global; }
`)
	res, st, err := p.Update(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != 5 || st.Recompiled != 1 {
		t.Fatalf("stats after add = %+v", st)
	}
	found := false
	for i := range res.Prog.Syms {
		if res.Prog.Syms[i].Name == "extra_global" {
			found = true
		}
	}
	if !found {
		t.Fatal("added unit's global missing from new generation")
	}
	if err := os.Remove(extra); err != nil {
		t.Fatal(err)
	}
	res, st, err = p.Update(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if st.Units != 4 {
		t.Fatalf("stats after remove = %+v", st)
	}
	for i := range res.Prog.Syms {
		if res.Prog.Syms[i].Name == "extra_global" {
			t.Fatal("removed unit's global still present")
		}
	}
}

func TestCompileErrorKeepsServingOldGeneration(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	gen1 := p.Current()
	broken := edit(t, dir, "count.c", `#include "priv.h"
int counter = {{{;
`)
	if _, _, err := p.Update(context.Background(), broken); err == nil {
		t.Fatal("expected a compile error")
	}
	if p.Current() != gen1 {
		t.Fatal("failed refresh replaced the current generation")
	}
	fixed := edit(t, dir, "count.c", baseTree["count.c"])
	res, _, err := p.Update(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != gen1.Gen && res.Gen != gen1.Gen+1 {
		t.Fatalf("unexpected generation %d after recovery", res.Gen)
	}
}

func TestStoreWarmStartAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	cache := t.TempDir()
	writeTree(t, dir, baseTree)
	cfg := testConfig(dir)
	cfg.CacheDir = cache
	p1, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := p1.Current().Stats; st.Recompiled != 4 {
		t.Fatalf("first session stats = %+v", st)
	}
	p2, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := p2.Current().Stats
	if st.Recompiled != 0 || st.StoreHits != 4 {
		t.Fatalf("second session stats = %+v, want all 4 units from the store", st)
	}
	if got, want := fingerprint(p2.Current().Prog, p2.Current().Res), fingerprint(p1.Current().Prog, p1.Current().Res); got != want {
		t.Fatalf("store-served fingerprint %s != parsed %s", got, want)
	}
}

func TestStaleProbe(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if stale, changed := p.Stale(); stale {
		t.Fatalf("fresh workspace reported stale: %v", changed)
	}
	hdr := edit(t, dir, "priv.h", "extern int counter; extern int other;\n")
	stale, changed := p.Stale()
	if !stale {
		t.Fatal("edited workspace reported clean")
	}
	found := false
	for _, c := range changed {
		if c == hdr {
			found = true
		}
	}
	if !found {
		t.Fatalf("changed set %v missing %s", changed, hdr)
	}
	if _, _, err := p.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if stale, changed := p.Stale(); stale {
		t.Fatalf("refreshed workspace reported stale: %v", changed)
	}
}

func TestTrackedFilesCoversIncludeClosure(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	got := p.TrackedFiles()
	want := []string{"count.c", "list.c", "main.c", "priv.h", "shared.h", "table.c"}
	if len(got) != len(want) {
		t.Fatalf("tracked = %v, want %d files", got, len(want))
	}
	for i, name := range want {
		if filepath.Base(got[i]) != name {
			t.Fatalf("tracked[%d] = %s, want %s", i, got[i], name)
		}
	}
}

func TestPollWatcherAndWatchLoop(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	w := NewPollWatcher(dir, p.TrackedFiles, 20*time.Millisecond)
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	got := make(chan outcome, 8)
	go WatchLoop(ctx, p, w, 30*time.Millisecond, func(r *Result, _ RefreshStats, err error) {
		got <- outcome{r, err}
	})

	// mtime resolution can swallow an immediate rewrite; wait a tick.
	time.Sleep(30 * time.Millisecond)
	edit(t, dir, "count.c", `
#include "priv.h"
int counter;
int shadow;
int *counter_addr(void) { return &shadow; }
`)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case oc := <-got:
			if oc.err != nil {
				t.Fatalf("watch refresh error: %v", oc.err)
			}
			if oc.res != nil && oc.res.Gen == 2 {
				return // the edit landed as a new generation
			}
		case <-deadline:
			t.Fatal("watcher never delivered the edit")
		}
	}
}

// An edit that lands after the pipeline builds but before the watcher's
// baseline scan is invisible to the watcher — its baseline already
// carries the post-edit stamps. WatchLoop's catch-up probe must find it
// by re-hashing against the pipeline's recorded content.
func TestWatchLoopCatchesPreBaselineEdit(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, baseTree)
	p, err := Open(context.Background(), testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Edit BEFORE the watcher exists: the baseline scan will stamp the
	// edited file and never emit an event for it.
	edit(t, dir, "count.c", `
#include "priv.h"
int counter;
int shadow;
int *counter_addr(void) { return &shadow; }
`)
	w := NewPollWatcher(dir, p.TrackedFiles, time.Hour) // ticks never fire
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	got := make(chan *Result, 8)
	go WatchLoop(ctx, p, w, 30*time.Millisecond, func(r *Result, _ RefreshStats, err error) {
		if err != nil {
			t.Errorf("watch refresh error: %v", err)
		}
		got <- r
	})
	select {
	case r := <-got:
		if r == nil || r.Gen != 2 {
			t.Fatalf("catch-up result = %+v, want generation 2", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WatchLoop never caught up with the pre-baseline edit")
	}
}
