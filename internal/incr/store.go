package incr

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cla/internal/frontend"
	"cla/internal/objfile"
	"cla/internal/srchash"
)

// store is the pipeline's on-disk unit cache: one .clo object file plus
// one .manifest per (unit path, compile options) entry, both named by
// the srchash of that pair. The manifest records the dependency closure
// the cached compile read — "path\thash" per line, sorted — and an entry
// is valid only while every listed file still hashes the same, so the
// store is keyed by content end to end and never needs invalidation
// logic. It shares the driver cache's layout philosophy but returns the
// dependency closure alongside the program, which the pipeline's dirty
// tracking needs.
type store struct {
	dir string
}

func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &store{dir: dir}, nil
}

func (s *store) base(unitPath string, opts frontend.Options) string {
	return srchash.String("unit:" + canon(unitPath) + ";opts:" + optsFingerprint(opts))
}

// load returns the cached unit for unitPath if its manifest's whole
// closure still matches the files on disk (hashed through hc, so shared
// headers are read once per refresh).
func (s *store) load(unitPath string, opts frontend.Options, hc *hashCache) (*unit, bool) {
	base := s.base(unitPath, opts)
	mb, err := os.ReadFile(filepath.Join(s.dir, base+".manifest"))
	if err != nil {
		return nil, false
	}
	var deps []dep
	for _, line := range strings.Split(strings.TrimSpace(string(mb)), "\n") {
		path, want, found := strings.Cut(line, "\t")
		if !found || hc.hash(path) != want {
			return nil, false
		}
		deps = append(deps, dep{path: path, hash: want})
	}
	if len(deps) == 0 {
		return nil, false
	}
	r, err := objfile.Open(filepath.Join(s.dir, base+".clo"))
	if err != nil {
		return nil, false
	}
	prog, err := r.Program()
	r.Close()
	if err != nil {
		return nil, false
	}
	return &unit{path: unitPath, prog: prog, deps: deps, key: leafKey(opts, deps)}, true
}

// save writes u's object and manifest. Failures are swallowed — the
// store is an accelerator, never a correctness dependency.
func (s *store) save(u *unit, opts frontend.Options) {
	base := s.base(u.path, opts)
	if err := objfile.WriteFile(filepath.Join(s.dir, base+".clo"), u.prog); err != nil {
		return
	}
	var mb strings.Builder
	for _, d := range u.deps {
		fmt.Fprintf(&mb, "%s\t%s\n", d.path, d.hash)
	}
	os.WriteFile(filepath.Join(s.dir, base+".manifest"), []byte(mb.String()), 0o644)
}
