package incr

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Op classifies a watcher event.
type Op uint8

const (
	// OpWrite: a tracked file's content looks changed.
	OpWrite Op = 1 + iota
	// OpCreate: a new .c unit appeared in the workspace directory.
	OpCreate
	// OpRemove: a tracked file disappeared.
	OpRemove
	// OpRescan: the watcher lost events (channel overflow) and the
	// consumer should do a full Refresh instead of a hinted Update.
	OpRescan
)

func (op Op) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpRescan:
		return "rescan"
	}
	return "op?"
}

// Event is one observed file-system change.
type Event struct {
	Path string // empty for OpRescan
	Op   Op
}

// Watcher is the fsnotify-shaped event source the watch loop consumes.
// The polling implementation below is the portable default; an
// inotify/kqueue-backed implementation can drop in behind the same
// interface without touching the pipeline.
type Watcher interface {
	// Events delivers change events until Close.
	Events() <-chan Event
	// Errors delivers scan failures (the watcher keeps running).
	Errors() <-chan error
	// Close stops the watcher and closes both channels.
	Close() error
}

// PollWatcher watches by periodic stat scans: every interval it stats
// the tracked file set (provided by a callback so it follows the
// pipeline's include closure across generations) and re-lists the
// workspace directory for added units. Stat-level drift (size or mtime)
// raises OpWrite; the consumer's Update re-hashes, so a touch that
// didn't change bytes converges to a no-op generation.
type PollWatcher struct {
	dir      string
	tracked  func() []string
	interval time.Duration

	events chan Event
	errs   chan error
	done   chan struct{}
	once   sync.Once

	stamps  map[string]stamp
	units   map[string]bool
	dropped bool
}

// NewPollWatcher starts a poll watcher over dir. tracked returns the
// full file set to stat each tick (typically Pipeline.TrackedFiles);
// the first tick establishes the baseline without emitting events.
func NewPollWatcher(dir string, tracked func() []string, interval time.Duration) *PollWatcher {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	w := &PollWatcher{
		dir:      dir,
		tracked:  tracked,
		interval: interval,
		events:   make(chan Event, 64),
		errs:     make(chan error, 1),
		done:     make(chan struct{}),
		stamps:   map[string]stamp{},
		units:    map[string]bool{},
	}
	w.scan(true)
	go w.run()
	return w
}

// Events implements Watcher.
func (w *PollWatcher) Events() <-chan Event { return w.events }

// Errors implements Watcher.
func (w *PollWatcher) Errors() <-chan error { return w.errs }

// Close implements Watcher.
func (w *PollWatcher) Close() error {
	w.once.Do(func() { close(w.done) })
	return nil
}

func (w *PollWatcher) run() {
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			close(w.events)
			close(w.errs)
			return
		case <-t.C:
			w.scan(false)
		}
	}
}

// emit queues ev without ever blocking the scan loop; on overflow it
// degrades to a single pending rescan so no change is silently lost.
func (w *PollWatcher) emit(ev Event) {
	if w.dropped {
		return // a rescan is already owed; individual events are moot
	}
	select {
	case w.events <- ev:
	default:
		w.dropped = true
	}
}

func (w *PollWatcher) scan(baseline bool) {
	// Retry the owed rescan first: until it is delivered, per-file
	// events stay suppressed.
	if w.dropped {
		select {
		case w.events <- Event{Op: OpRescan}:
			w.dropped = false
		default:
			return
		}
	}

	next := make(map[string]stamp)
	for _, path := range w.tracked() {
		fi, err := os.Stat(path)
		if err != nil {
			if _, had := w.stamps[path]; had && !baseline {
				w.emit(Event{Path: path, Op: OpRemove})
			}
			continue
		}
		st := stamp{size: fi.Size(), mtime: fi.ModTime().UnixNano()}
		if prev, had := w.stamps[path]; !baseline && (!had || prev != st) {
			w.emit(Event{Path: path, Op: OpWrite})
		}
		next[path] = st
	}
	w.stamps = next

	units := make(map[string]bool)
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		select {
		case w.errs <- err:
		default:
		}
		return
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".c" {
			continue
		}
		path := filepath.Join(w.dir, e.Name())
		units[path] = true
		if !baseline && !w.units[path] {
			w.emit(Event{Path: path, Op: OpCreate})
		}
	}
	w.units = units
}

// WatchLoop drives p from w until ctx is done: events are coalesced for
// one settle interval (so a multi-file save triggers one rebuild), then
// the pipeline refreshes — a hinted Update normally, a full Refresh
// after watcher overflow — and fn is called with the outcome. fn also
// receives scan and refresh errors (with a nil Result); the loop keeps
// running, since a syntax error mid-edit is a normal watch-mode state.
func WatchLoop(ctx context.Context, p *Pipeline, w Watcher, settle time.Duration, fn func(*Result, RefreshStats, error)) {
	if settle <= 0 {
		settle = 100 * time.Millisecond
	}
	// Catch-up probe: an edit that lands between the pipeline's last
	// build and the watcher's baseline scan is invisible to the watcher
	// (its baseline already has the new stamps), so re-hash against the
	// pipeline's recorded content before trusting the event stream.
	if stale, changed := p.Stale(); stale {
		res, st, err := p.Update(ctx, changed...)
		if fn != nil {
			fn(res, st, err)
		}
	}
	timer := time.NewTimer(settle)
	if !timer.Stop() {
		<-timer.C
	}
	var pending []string
	rescan := false
	for {
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case err, ok := <-w.Errors():
			if !ok {
				return
			}
			if fn != nil {
				fn(nil, RefreshStats{}, err)
			}
		case ev, ok := <-w.Events():
			if !ok {
				return
			}
			if ev.Op == OpRescan {
				rescan = true
			} else {
				pending = append(pending, ev.Path)
			}
			timer.Reset(settle)
		case <-timer.C:
			var (
				res *Result
				st  RefreshStats
				err error
			)
			if rescan {
				res, st, err = p.Refresh(ctx)
			} else {
				res, st, err = p.Update(ctx, pending...)
			}
			pending, rescan = nil, false
			if fn != nil {
				fn(res, st, err)
			}
		}
	}
}
