package cc

// This file defines the abstract syntax tree produced by the parser. The
// tree is purely syntactic: types are resolved later by internal/ctypes.

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// ---------- Expressions ----------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IdentExpr is a use of a name.
type IdentExpr struct {
	Name string
	Pos_ Pos
}

// IntExpr is an integer literal.
type IntExpr struct {
	Text string
	Pos_ Pos
}

// FloatExpr is a floating literal.
type FloatExpr struct {
	Text string
	Pos_ Pos
}

// CharExpr is a character constant.
type CharExpr struct {
	Text string
	Pos_ Pos
}

// StringExpr is a (possibly concatenated) string literal.
type StringExpr struct {
	Text string // raw source text including quotes of first segment
	Pos_ Pos
}

// UnaryExpr is a prefix operator application: & * + - ~ ! ++ --.
type UnaryExpr struct {
	Op   string
	X    Expr
	Pos_ Pos
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op   string // "++" or "--"
	X    Expr
	Pos_ Pos
}

// BinaryExpr is a binary operator application.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Pos_ Pos
}

// AssignExpr is an assignment, possibly compound (+=, ...).
type AssignExpr struct {
	Op   string // "=", "+=", ...
	L, R Expr
	Pos_ Pos
}

// CondExpr is c ? t : f.
type CondExpr struct {
	Cond, Then, Else Expr
	Pos_             Pos
}

// CommaExpr is "a, b".
type CommaExpr struct {
	X, Y Expr
	Pos_ Pos
}

// CallExpr is f(args...).
type CallExpr struct {
	Fun  Expr
	Args []Expr
	Pos_ Pos
}

// IndexExpr is a[i].
type IndexExpr struct {
	X, Index Expr
	Pos_     Pos
}

// MemberExpr is x.f (Arrow false) or p->f (Arrow true).
type MemberExpr struct {
	X     Expr
	Field string
	Arrow bool
	Pos_  Pos
}

// CastExpr is (type)x.
type CastExpr struct {
	Type *TypeName
	X    Expr
	Pos_ Pos
}

// SizeofExpr is sizeof x or sizeof(type).
type SizeofExpr struct {
	X    Expr      // nil if Type set
	Type *TypeName // nil if X set
	Pos_ Pos
}

func (e *IdentExpr) Position() Pos   { return e.Pos_ }
func (e *IntExpr) Position() Pos     { return e.Pos_ }
func (e *FloatExpr) Position() Pos   { return e.Pos_ }
func (e *CharExpr) Position() Pos    { return e.Pos_ }
func (e *StringExpr) Position() Pos  { return e.Pos_ }
func (e *UnaryExpr) Position() Pos   { return e.Pos_ }
func (e *PostfixExpr) Position() Pos { return e.Pos_ }
func (e *BinaryExpr) Position() Pos  { return e.Pos_ }
func (e *AssignExpr) Position() Pos  { return e.Pos_ }
func (e *CondExpr) Position() Pos    { return e.Pos_ }
func (e *CommaExpr) Position() Pos   { return e.Pos_ }
func (e *CallExpr) Position() Pos    { return e.Pos_ }
func (e *IndexExpr) Position() Pos   { return e.Pos_ }
func (e *MemberExpr) Position() Pos  { return e.Pos_ }
func (e *CastExpr) Position() Pos    { return e.Pos_ }
func (e *SizeofExpr) Position() Pos  { return e.Pos_ }

func (*IdentExpr) exprNode()   {}
func (*IntExpr) exprNode()     {}
func (*FloatExpr) exprNode()   {}
func (*CharExpr) exprNode()    {}
func (*StringExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*BinaryExpr) exprNode()  {}
func (*AssignExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*CommaExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*IndexExpr) exprNode()   {}
func (*MemberExpr) exprNode()  {}
func (*CastExpr) exprNode()    {}
func (*SizeofExpr) exprNode()  {}

// ---------- Declarations ----------

// StorageClass is a declaration's storage-class specifier.
type StorageClass uint8

// Storage classes.
const (
	SCNone StorageClass = iota
	SCTypedef
	SCExtern
	SCStatic
	SCAuto
	SCRegister
)

func (s StorageClass) String() string {
	switch s {
	case SCTypedef:
		return "typedef"
	case SCExtern:
		return "extern"
	case SCStatic:
		return "static"
	case SCAuto:
		return "auto"
	case SCRegister:
		return "register"
	}
	return ""
}

// DeclSpecs is a parsed declaration-specifier sequence.
type DeclSpecs struct {
	Storage StorageClass
	// Basic accumulates basic type keywords in order (e.g. "unsigned",
	// "long", "long", "int"). Empty when Struct/Enum/TypedefName is set.
	Basic []string
	// Struct is a struct-or-union specifier, if present.
	Struct *StructSpec
	// Enum is an enum specifier, if present.
	Enum *EnumSpec
	// TypedefName references a typedef, if present.
	TypedefName string
	Pos_        Pos
}

func (d *DeclSpecs) Position() Pos { return d.Pos_ }

// StructSpec is `struct S {...}`, `union U {...}` or a reference.
type StructSpec struct {
	Union   bool
	Name    string // "" for anonymous
	Fields  []*FieldDecl
	Defined bool // braces present
	Pos_    Pos
}

func (s *StructSpec) Position() Pos { return s.Pos_ }

// FieldDecl is one struct/union member declaration (one declarator).
type FieldDecl struct {
	Specs *DeclSpecs
	Decl  Declarator // nil for anonymous bitfield padding or anonymous members
	Bits  Expr       // bitfield width or nil
	Pos_  Pos
}

func (f *FieldDecl) Position() Pos { return f.Pos_ }

// EnumSpec is an enum specifier.
type EnumSpec struct {
	Name    string
	Items   []EnumItem
	Defined bool
	Pos_    Pos
}

func (e *EnumSpec) Position() Pos { return e.Pos_ }

// EnumItem is one enumerator.
type EnumItem struct {
	Name  string
	Value Expr // or nil
	Pos_  Pos
}

// Declarator is the syntactic shape wrapping a declared name.
// The structure mirrors the C grammar: reading from the name outward.
type Declarator interface {
	Node
	declNode()
	// DeclName returns the declared identifier, or "" for abstract
	// declarators.
	DeclName() string
}

// IdentDecl is the innermost declarator: the declared name itself.
// An empty name denotes an abstract declarator.
type IdentDecl struct {
	Name string
	Pos_ Pos
}

// PointerDecl wraps a declarator with one level of pointer.
type PointerDecl struct {
	Inner Declarator
	Pos_  Pos
}

// ArrayDecl wraps a declarator with an array dimension.
type ArrayDecl struct {
	Inner Declarator
	Size  Expr // nil for []
	Pos_  Pos
}

// FuncDecl wraps a declarator with a parameter list.
type FuncDecl struct {
	Inner    Declarator
	Params   []*ParamDecl
	Variadic bool
	// KRNames holds identifier-list parameters of an old-style (K&R)
	// definition; Params is empty in that case until the declarations
	// following the declarator are attached.
	KRNames []string
	Pos_    Pos
}

func (d *IdentDecl) Position() Pos   { return d.Pos_ }
func (d *PointerDecl) Position() Pos { return d.Pos_ }
func (d *ArrayDecl) Position() Pos   { return d.Pos_ }
func (d *FuncDecl) Position() Pos    { return d.Pos_ }

func (*IdentDecl) declNode()   {}
func (*PointerDecl) declNode() {}
func (*ArrayDecl) declNode()   {}
func (*FuncDecl) declNode()    {}

// DeclName returns the declared identifier.
func (d *IdentDecl) DeclName() string { return d.Name }

// DeclName returns the declared identifier.
func (d *PointerDecl) DeclName() string { return d.Inner.DeclName() }

// DeclName returns the declared identifier.
func (d *ArrayDecl) DeclName() string { return d.Inner.DeclName() }

// DeclName returns the declared identifier.
func (d *FuncDecl) DeclName() string { return d.Inner.DeclName() }

// ParamDecl is one function parameter.
type ParamDecl struct {
	Specs *DeclSpecs
	Decl  Declarator // possibly abstract
	Pos_  Pos
}

func (p *ParamDecl) Position() Pos { return p.Pos_ }

// TypeName is a type-name as used in casts and sizeof.
type TypeName struct {
	Specs *DeclSpecs
	Decl  Declarator // abstract
	Pos_  Pos
}

func (t *TypeName) Position() Pos { return t.Pos_ }

// Init is an initializer: a plain expression or a braced list.
type Init struct {
	Expr Expr    // non-nil for scalar initializer
	List []*Init // non-nil for braced list
	// Field is a designator like `.x` (empty if none); index designators
	// are parsed and discarded (arrays are index-independent downstream).
	Field string
	Pos_  Pos
}

func (i *Init) Position() Pos { return i.Pos_ }

// InitDeclarator is one declarator with optional initializer.
type InitDeclarator struct {
	Decl *DeclaratorBox
	Init *Init
}

// DeclaratorBox pairs a declarator with its declaration specifiers after
// parsing. (Specs live on the Declaration; the box exists so the checker
// can attach resolved types without re-walking syntax.)
type DeclaratorBox struct {
	D    Declarator
	Pos_ Pos
}

func (b *DeclaratorBox) Position() Pos { return b.Pos_ }

// Declaration is a complete declaration: specifiers plus init-declarators.
type Declaration struct {
	Specs *DeclSpecs
	Items []*InitDeclarator
	Pos_  Pos
}

func (d *Declaration) Position() Pos { return d.Pos_ }

// FuncDef is a function definition.
type FuncDef struct {
	Specs *DeclSpecs
	Decl  *DeclaratorBox // must contain a FuncDecl spine
	// KRDecls are the parameter declarations of an old-style definition.
	KRDecls []*Declaration
	Body    *CompoundStmt
	Pos_    Pos
}

func (f *FuncDef) Position() Pos { return f.Pos_ }

// ExtDecl is a top-level entity: *Declaration or *FuncDef.
type ExtDecl interface {
	Node
	extDeclNode()
}

func (*Declaration) extDeclNode() {}
func (*FuncDef) extDeclNode()     {}

// TranslationUnit is one parsed source file.
type TranslationUnit struct {
	Name  string
	Decls []ExtDecl
}

// ---------- Statements ----------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// CompoundStmt is `{ ... }`.
type CompoundStmt struct {
	Items []Stmt // DeclStmt or other statements
	Pos_  Pos
}

// DeclStmt wraps a block-level declaration.
type DeclStmt struct {
	Decl *Declaration
}

// ExprStmt is an expression statement; Expr may be nil (empty statement).
type ExprStmt struct {
	Expr Expr
	Pos_ Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond       Expr
	Then, Else Stmt // Else may be nil
	Pos_       Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos_ Pos
}

// DoStmt is a do-while loop.
type DoStmt struct {
	Body Stmt
	Cond Expr
	Pos_ Pos
}

// ForStmt is a for loop. Init may be a declaration (C99) or expression.
type ForStmt struct {
	InitDecl *Declaration // or nil
	Init     Expr         // or nil
	Cond     Expr         // or nil
	Post     Expr         // or nil
	Body     Stmt
	Pos_     Pos
}

// SwitchStmt is a switch.
type SwitchStmt struct {
	Tag  Expr
	Body Stmt
	Pos_ Pos
}

// CaseStmt is `case e:` or `default:` (Expr nil) with its statement.
type CaseStmt struct {
	Expr Expr // nil for default
	Body Stmt // may be nil for trailing label
	Pos_ Pos
}

// BreakStmt is break.
type BreakStmt struct{ Pos_ Pos }

// ContinueStmt is continue.
type ContinueStmt struct{ Pos_ Pos }

// ReturnStmt is return with optional value.
type ReturnStmt struct {
	Expr Expr // or nil
	Pos_ Pos
}

// GotoStmt is goto label.
type GotoStmt struct {
	Label string
	Pos_  Pos
}

// LabelStmt is `label: stmt`.
type LabelStmt struct {
	Label string
	Body  Stmt
	Pos_  Pos
}

func (s *CompoundStmt) Position() Pos { return s.Pos_ }
func (s *DeclStmt) Position() Pos     { return s.Decl.Position() }
func (s *ExprStmt) Position() Pos     { return s.Pos_ }
func (s *IfStmt) Position() Pos       { return s.Pos_ }
func (s *WhileStmt) Position() Pos    { return s.Pos_ }
func (s *DoStmt) Position() Pos       { return s.Pos_ }
func (s *ForStmt) Position() Pos      { return s.Pos_ }
func (s *SwitchStmt) Position() Pos   { return s.Pos_ }
func (s *CaseStmt) Position() Pos     { return s.Pos_ }
func (s *BreakStmt) Position() Pos    { return s.Pos_ }
func (s *ContinueStmt) Position() Pos { return s.Pos_ }
func (s *ReturnStmt) Position() Pos   { return s.Pos_ }
func (s *GotoStmt) Position() Pos     { return s.Pos_ }
func (s *LabelStmt) Position() Pos    { return s.Pos_ }

func (*CompoundStmt) stmtNode() {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*CaseStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*GotoStmt) stmtNode()     {}
func (*LabelStmt) stmtNode()    {}
