package cc

import (
	"fmt"
	"strings"
	"testing"
)

// parseOK parses src and fails the test on error.
func parseOK(t *testing.T, src string) *TranslationUnit {
	t.Helper()
	u, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return u
}

// exprDump parses `void f(void) { <src>; }` and dumps the lone statement.
func exprDump(t *testing.T, src string) string {
	t.Helper()
	u := parseOK(t, "void f(void) { "+src+"; }")
	fd := u.Decls[0].(*FuncDef)
	if len(fd.Body.Items) != 1 {
		t.Fatalf("expected 1 stmt, got %d", len(fd.Body.Items))
	}
	s := Dump(fd.Body.Items[0])
	return strings.TrimSuffix(s, ";")
}

func TestExprPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b * c", "(+ a (* b c))"},
		{"a * b + c", "(+ (* a b) c)"},
		{"a - b - c", "(- (- a b) c)"},
		{"a = b = c", "(= a (= b c))"},
		{"a += b", "(+= a b)"},
		{"a << b + c", "(<< a (+ b c))"},
		{"a < b == c", "(== (< a b) c)"},
		{"a & b | c ^ d", "(| (& a b) (^ c d))"},
		{"a && b || c", "(|| (&& a b) c)"},
		{"a ? b : c ? d : e", "(?: a b (?: c d e))"},
		{"a, b", "(, a b)"},
		{"*p = x", "(= (* p) x)"},
		{"-x + +y", "(+ (- x) (+ y))"},
		{"!a && ~b", "(&& (! a) (~ b))"},
		{"++i", "(++ i)"},
		{"i++", "(post++ i)"},
		{"--i - i--", "(- (-- i) (post-- i))"},
		{"a[i][j]", "(index (index a i) j)"},
		{"f(a, b)", "(call f a b)"},
		{"f()", "(call f)"},
		{"s.x", "(. s x)"},
		{"p->x", "(-> p x)"},
		{"p->x.y", "(. (-> p x) y)"},
		{"&x", "(& x)"},
		{"*&x", "(* (& x))"},
		{"**pp", "(* (* pp))"},
		{"sizeof x", "(sizeof x)"},
		{"a % b", "(% a b)"},
		{"x >> 3 & 1", "(& (>> x 3) 1)"},
		{"(a + b) * c", "(* (+ a b) c)"},
		{"f(a)(b)", "(call (call f a) b)"},
		{"a.b[1].c", "(. (index (. a b) 1) c)"},
		{"(*fp)(x)", "(call (* fp) x)"},
	}
	for _, c := range cases {
		if got := exprDump(t, c.src); got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestCastExpr(t *testing.T) {
	got := exprDump(t, "x = (int)y")
	if got != "(= x (cast int y))" {
		t.Errorf("got %s", got)
	}
	got = exprDump(t, "x = (char *)p")
	if got != "(= x (cast char (* _) p))" {
		t.Errorf("got %s", got)
	}
}

func TestCastVsParenExpr(t *testing.T) {
	// (y) is a parenthesized expression, not a cast, because y is not a
	// typedef name.
	got := exprDump(t, "x = (y) + 1")
	if got != "(= x (+ y 1))" {
		t.Errorf("got %s", got)
	}
}

func TestTypedefCastDisambiguation(t *testing.T) {
	src := `typedef int T;
void f(void) { int x; x = (T)x; }`
	u := parseOK(t, src)
	fd := u.Decls[1].(*FuncDef)
	got := Dump(fd.Body.Items[1])
	if got != "(= x (cast T x));" {
		t.Errorf("got %s", got)
	}
}

func TestSizeofType(t *testing.T) {
	got := exprDump(t, "n = sizeof(int)")
	if got != "(= n (sizeof int))" {
		t.Errorf("got %s", got)
	}
	got = exprDump(t, "n = sizeof(struct S)")
	if got != "(= n (sizeof struct:S))" {
		t.Errorf("got %s", got)
	}
}

func TestSimpleDeclarations(t *testing.T) {
	cases := []struct{ src, want string }{
		{"int x;", "(decl int x)"},
		{"int x, y;", "(decl int x y)"},
		{"short *p;", "(decl short (* p))"},
		{"int **pp;", "(decl int (* (* pp)))"},
		{"int a[10];", "(decl int (arr a))"},
		{"int a[3][4];", "(decl int (arr (arr a)))"},
		// Pointer syntactically wraps the postfixed direct declarator, so
		// "array of pointer to char" renders as (* (arr argv)): the node
		// adjacent to the identifier is applied first in type building.
		{"char *argv[];", "(decl char (* (arr argv)))"},
		{"int (*fp)(void);", "(decl int (fn (* fp)))"},
		{"int (*fp)(int, char);", "(decl int (fn (* fp) int char))"},
		{"int f(int x);", "(decl int (fn f int:x))"},
		{"int f();", "(decl int (fn f))"},
		{"unsigned long int z;", "(decl unsigned-long-int z)"},
		{"extern int e;", "(decl extern int e)"},
		{"static char c;", "(decl static char c)"},
		{"int x = 3;", "(decl int x=3)"},
		{"int a[] = {1, 2, 3};", "(decl int (arr a)={1 2 3})"},
		{"int (*arr[4])(void);", "(decl int (fn (* (arr arr))))"},
		{"const volatile int cv;", "(decl int cv)"},
	}
	for _, c := range cases {
		u := parseOK(t, c.src)
		if len(u.Decls) != 1 {
			t.Errorf("%q: %d decls", c.src, len(u.Decls))
			continue
		}
		if got := Dump(u.Decls[0]); got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestComplexDeclarator(t *testing.T) {
	// int (*(*f)(int))(char): f is a pointer to a function taking int
	// returning pointer to function taking char returning int.
	u := parseOK(t, "int (*(*f)(int))(char);")
	want := "(decl int (fn (* (fn (* f) int)) char))"
	if got := Dump(u.Decls[0]); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestStructDeclaration(t *testing.T) {
	u := parseOK(t, "struct S { short x; short y; };")
	d := u.Decls[0].(*Declaration)
	s := d.Specs.Struct
	if s == nil || s.Name != "S" || !s.Defined {
		t.Fatalf("struct spec = %+v", s)
	}
	if len(s.Fields) != 2 || s.Fields[0].Decl.DeclName() != "x" || s.Fields[1].Decl.DeclName() != "y" {
		t.Errorf("fields wrong: %s", Dump(d))
	}
}

func TestStructWithPointerAndNested(t *testing.T) {
	src := `struct Outer {
		struct Inner { int a; } in;
		struct Outer *next;
		int arr[4];
		unsigned bits : 3;
	};`
	u := parseOK(t, src)
	d := u.Decls[0].(*Declaration)
	s := d.Specs.Struct
	if len(s.Fields) != 4 {
		t.Fatalf("fields = %d", len(s.Fields))
	}
	if s.Fields[3].Bits == nil {
		t.Error("bitfield width not parsed")
	}
}

func TestUnionAndEnum(t *testing.T) {
	u := parseOK(t, "union U { int i; float f; } u1; enum E { A, B = 3, C } e1;")
	d0 := u.Decls[0].(*Declaration)
	if !d0.Specs.Struct.Union || len(d0.Specs.Struct.Fields) != 2 {
		t.Errorf("union parse: %s", Dump(d0))
	}
	d1 := u.Decls[1].(*Declaration)
	es := d1.Specs.Enum
	if es == nil || len(es.Items) != 3 || es.Items[1].Name != "B" || es.Items[1].Value == nil {
		t.Errorf("enum parse: %s", Dump(d1))
	}
}

func TestTypedefDeclaration(t *testing.T) {
	src := `typedef struct S { int v; } S_t, *S_p;
S_t a;
S_p b;`
	u := parseOK(t, src)
	if len(u.Decls) != 3 {
		t.Fatalf("decls = %d", len(u.Decls))
	}
	d1 := u.Decls[1].(*Declaration)
	if d1.Specs.TypedefName != "S_t" {
		t.Errorf("second decl specs: %s", Dump(d1))
	}
	d2 := u.Decls[2].(*Declaration)
	if d2.Specs.TypedefName != "S_p" {
		t.Errorf("third decl specs: %s", Dump(d2))
	}
}

func TestTypedefShadowing(t *testing.T) {
	// Inside f, T is redeclared as a variable; `T * x` is then a
	// multiplication, not a declaration.
	src := `typedef int T;
void f(void) { int T; int x; T * x; }`
	u := parseOK(t, src)
	fd := u.Decls[1].(*FuncDef)
	if len(fd.Body.Items) != 3 {
		t.Fatalf("items = %d: %s", len(fd.Body.Items), Dump(fd.Body))
	}
	if got := Dump(fd.Body.Items[2]); got != "(* T x);" {
		t.Errorf("got %s", got)
	}
}

func TestFunctionDefinition(t *testing.T) {
	u := parseOK(t, "int add(int a, int b) { return a + b; }")
	fd, ok := u.Decls[0].(*FuncDef)
	if !ok {
		t.Fatalf("not a FuncDef: %T", u.Decls[0])
	}
	if fd.Decl.D.DeclName() != "add" {
		t.Errorf("name = %q", fd.Decl.D.DeclName())
	}
	f := outermostFunc(fd.Decl.D)
	if f == nil || len(f.Params) != 2 || f.Params[0].Decl.DeclName() != "a" {
		t.Errorf("params wrong: %s", Dump(fd))
	}
}

func TestKRFunctionDefinition(t *testing.T) {
	src := `int add(a, b)
int a;
int b;
{ return a + b; }`
	u := parseOK(t, src)
	fd, ok := u.Decls[0].(*FuncDef)
	if !ok {
		t.Fatalf("not a FuncDef: %T", u.Decls[0])
	}
	f := outermostFunc(fd.Decl.D)
	if len(f.KRNames) != 2 || f.KRNames[0] != "a" {
		t.Errorf("KR names = %v", f.KRNames)
	}
	if len(fd.KRDecls) != 2 {
		t.Errorf("KR decls = %d", len(fd.KRDecls))
	}
}

func TestVariadicFunction(t *testing.T) {
	u := parseOK(t, "int printf(const char *fmt, ...);")
	d := u.Decls[0].(*Declaration)
	f := d.Items[0].Decl.D.(*FuncDecl)
	if !f.Variadic || len(f.Params) != 1 {
		t.Errorf("got %s", Dump(d))
	}
}

func TestFunctionReturningPointer(t *testing.T) {
	u := parseOK(t, "char *strdup(const char *s) { return s; }")
	fd := u.Decls[0].(*FuncDef)
	if fd.Decl.D.DeclName() != "strdup" {
		t.Errorf("name = %q", fd.Decl.D.DeclName())
	}
	// Spine: PointerDecl(FuncDecl(Ident)).
	pd, ok := fd.Decl.D.(*PointerDecl)
	if !ok {
		t.Fatalf("outer not pointer: %T", fd.Decl.D)
	}
	if _, ok := pd.Inner.(*FuncDecl); !ok {
		t.Fatalf("inner not func: %T", pd.Inner)
	}
}

func TestStatements(t *testing.T) {
	src := `void f(int n) {
	int i;
	if (n > 0) n = 1; else n = 2;
	while (n) n--;
	do { n++; } while (n < 10);
	for (i = 0; i < n; i++) g(i);
	for (;;) break;
	switch (n) {
	case 1: n = 2; break;
	case 2:
	default: n = 0;
	}
	goto done;
done:
	return;
}`
	u := parseOK(t, src)
	fd := u.Decls[0].(*FuncDef)
	kinds := []string{}
	for _, s := range fd.Body.Items {
		kinds = append(kinds, typeName(s))
	}
	want := []string{"*cc.DeclStmt", "*cc.IfStmt", "*cc.WhileStmt", "*cc.DoStmt",
		"*cc.ForStmt", "*cc.ForStmt", "*cc.SwitchStmt", "*cc.GotoStmt", "*cc.LabelStmt"}
	if len(kinds) != len(want) {
		t.Fatalf("items = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("item %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func typeName(v any) string { return fmt.Sprintf("%T", v) }

func TestC99ForDecl(t *testing.T) {
	u := parseOK(t, "void f(void) { for (int i = 0; i < 3; i++) g(i); }")
	fd := u.Decls[0].(*FuncDef)
	fs := fd.Body.Items[0].(*ForStmt)
	if fs.InitDecl == nil {
		t.Error("for-init declaration not parsed")
	}
}

func TestDanglingElse(t *testing.T) {
	u := parseOK(t, "void f(void){ if (a) if (b) x(); else y(); }")
	fd := u.Decls[0].(*FuncDef)
	outer := fd.Body.Items[0].(*IfStmt)
	if outer.Else != nil {
		t.Error("else bound to outer if")
	}
	inner := outer.Then.(*IfStmt)
	if inner.Else == nil {
		t.Error("else not bound to inner if")
	}
}

func TestLineMarkerPositions(t *testing.T) {
	src := "# 10 \"orig.c\"\nint x;\nint y;\n"
	u := parseOK(t, src)
	d := u.Decls[1].(*Declaration)
	pos := d.Position()
	if pos.File != "orig.c" || pos.Line != 11 {
		t.Errorf("pos = %v, want orig.c:11", pos)
	}
}

func TestStringConcatenation(t *testing.T) {
	got := exprDump(t, `s = "a" "b"`)
	if got != `(= s "a")` {
		t.Errorf("got %s", got)
	}
}

func TestCharAndFloatLiterals(t *testing.T) {
	got := exprDump(t, `c = 'x'`)
	if got != "(= c 'x')" {
		t.Errorf("got %s", got)
	}
	got = exprDump(t, "f = 1.5e3")
	if got != "(= f 1.5e3)" {
		t.Errorf("got %s", got)
	}
	got = exprDump(t, "n = 0x1fUL")
	if got != "(= n 0x1fUL)" {
		t.Errorf("got %s", got)
	}
}

func TestParseErrorsRecovered(t *testing.T) {
	_, err := Parse("bad.c", "int x = ;\nint @ y;\nint ok;\n")
	if err == nil {
		t.Fatal("expected parse errors")
	}
	// Parsing must report position info.
	if !strings.Contains(err.Error(), "bad.c:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestParseErrorTermination(t *testing.T) {
	// Pathological inputs must terminate.
	srcs := []string{
		"(((((((",
		"}}}}",
		"struct { int",
		"int f(int",
		"= = = =",
		"int a[",
		"void f() { case 3: }",
	}
	for _, src := range srcs {
		_, err := Parse("junk.c", src)
		_ = err // error expected but termination is the point
	}
}

func TestInitializerLists(t *testing.T) {
	u := parseOK(t, "struct P { int x, y; } p = { 1, 2 };")
	d := u.Decls[0].(*Declaration)
	init := d.Items[0].Init
	if init == nil || len(init.List) != 2 {
		t.Fatalf("init = %s", Dump(d))
	}
}

func TestDesignatedInitializer(t *testing.T) {
	u := parseOK(t, "struct P { int x, y; } p = { .x = 1, .y = 2 };")
	d := u.Decls[0].(*Declaration)
	init := d.Items[0].Init
	if len(init.List) != 2 || init.List[0].Field != "x" || init.List[1].Field != "y" {
		t.Fatalf("init = %s", Dump(d))
	}
}

func TestNestedInitializer(t *testing.T) {
	u := parseOK(t, "int m[2][2] = { {1, 2}, {3, 4} };")
	d := u.Decls[0].(*Declaration)
	init := d.Items[0].Init
	if len(init.List) != 2 || len(init.List[0].List) != 2 {
		t.Fatalf("init = %s", Dump(d))
	}
}

func TestAddressOfFunction(t *testing.T) {
	got := exprDump(t, "fp = &func")
	if got != "(= fp (& func))" {
		t.Errorf("got %s", got)
	}
}

func TestCompoundLiteral(t *testing.T) {
	got := exprDump(t, "p = (struct S){1, 2}")
	if !strings.Contains(got, "cast struct:S") {
		t.Errorf("got %s", got)
	}
}

func TestEmptyTranslationUnitAndStrayDecls(t *testing.T) {
	u := parseOK(t, ";;\n")
	if len(u.Decls) != 0 {
		t.Errorf("decls = %d", len(u.Decls))
	}
}

func TestOldStyleEmptyParams(t *testing.T) {
	u := parseOK(t, "int f() { return 0; }")
	if _, ok := u.Decls[0].(*FuncDef); !ok {
		t.Fatalf("not a funcdef")
	}
}

func TestPointerToPointerParams(t *testing.T) {
	u := parseOK(t, "void g(char **argv, int (*cmp)(int, int));")
	d := u.Decls[0].(*Declaration)
	f := d.Items[0].Decl.D.(*FuncDecl)
	if len(f.Params) != 2 {
		t.Fatalf("params = %d", len(f.Params))
	}
	if f.Params[1].Decl.DeclName() != "cmp" {
		t.Errorf("param 1 name = %q", f.Params[1].Decl.DeclName())
	}
}

func TestTokenizeKindsAndPositions(t *testing.T) {
	toks, err := Tokenize("t.c", "int x = 042; /*no comment: already stripped*/")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Keyword || toks[1].Kind != Ident || toks[3].Kind != IntLit {
		t.Errorf("kinds wrong: %v", toks)
	}
	if toks[1].Pos.Line != 1 || toks[1].Pos.File != "t.c" {
		t.Errorf("pos = %v", toks[1].Pos)
	}
}

func TestExternDeclarationsWithFunctionPtrTypedef(t *testing.T) {
	src := `typedef void (*handler_t)(int);
handler_t table[32];
void install(int sig, handler_t h) { table[sig] = h; }`
	u := parseOK(t, src)
	if len(u.Decls) != 3 {
		t.Fatalf("decls = %d", len(u.Decls))
	}
	if _, ok := u.Decls[2].(*FuncDef); !ok {
		t.Errorf("third decl is %T", u.Decls[2])
	}
}

func TestGccAttributesSkipped(t *testing.T) {
	srcs := []string{
		"int x __attribute__((aligned(8)));",
		"__attribute__((packed)) struct P { int a; } p;",
		"int f(int a) __attribute__((noreturn));",
		"int y __asm__(\"external_y\");",
		"static __attribute__((unused)) int z;",
	}
	for _, src := range srcs {
		if _, err := Parse("attr.c", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

// TestParserNeverPanicsOrHangs fuzzes the parser with random token soup;
// the requirement is termination without panic, errors are expected.
func TestParserNeverPanicsOrHangs(t *testing.T) {
	pieces := []string{
		"int", "char", "struct", "union", "enum", "typedef", "static",
		"if", "else", "while", "for", "return", "sizeof", "case", "default",
		"x", "y", "S", "f", "0", "1", "42", "0x1f", "'c'", "\"str\"",
		"{", "}", "(", ")", "[", "]", ";", ",", "*", "&", "=", "+", "-",
		"->", ".", "...", "?", ":", "<<", ">>", "==", "++", "--", "#",
	}
	rng := newTestRand(99)
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		done := make(chan struct{})
		src := b.String()
		go func() {
			defer close(done)
			Parse("fuzz.c", src) // errors expected; panics/hangs are not
		}()
		select {
		case <-done:
		case <-timeAfter():
			t.Fatalf("parser hung on %q", src)
		}
	}
}

func TestAsmStatements(t *testing.T) {
	srcs := []string{
		`void f(void) { asm("nop"); }`,
		`void f(void) { __asm__("mov %0, %1" : "=r"(a) : "r"(b)); }`,
		`void f(void) { __asm__ volatile ("mfence"); }`,
	}
	for _, src := range srcs {
		if _, err := Parse("asm.c", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestGnuElvisOperator(t *testing.T) {
	got := exprDump(t, "x = a ?: b")
	if got != "(= x (?: a a b))" {
		t.Errorf("got %s", got)
	}
}
