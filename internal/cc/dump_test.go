package cc

import (
	"strings"
	"testing"
)

func TestDumpStatements(t *testing.T) {
	src := `void f(int n) {
	int i;
	if (n) n = 1; else n = 2;
	while (n) n--;
	do n++; while (n < 3);
	for (i = 0; i < n; i++) g();
	switch (n) { case 1: break; default: continue; }
	goto out;
out:
	return;
}`
	u := parseOK(t, src)
	got := Dump(u.Decls[0])
	for _, want := range []string{
		"(if n", "(while n", "(do", "(for", "(switch n",
		"(case 1 break;)", "(default continue;)",
		"(goto out)", "(label out", "(return)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}

func TestDumpReturnValueAndEmptyStmt(t *testing.T) {
	u := parseOK(t, "int f(void) { ; return 3; }")
	got := Dump(u.Decls[0])
	if !strings.Contains(got, "(return 3)") {
		t.Errorf("dump = %s", got)
	}
}

func TestDumpNil(t *testing.T) {
	if got := Dump(nil); got != "nil" {
		t.Errorf("Dump(nil) = %q", got)
	}
}

func TestDumpInitializers(t *testing.T) {
	u := parseOK(t, "struct P { int x, y; } p = { .x = 1, 2 };")
	got := Dump(u.Decls[0])
	if !strings.Contains(got, ".x=1") || !strings.Contains(got, "2}") {
		t.Errorf("dump = %s", got)
	}
}

func TestDumpSizeofAndCast(t *testing.T) {
	got := exprDump(t, "n = sizeof(long) + (unsigned)x")
	if !strings.Contains(got, "(sizeof long)") || !strings.Contains(got, "cast unsigned") {
		t.Errorf("dump = %s", got)
	}
}

func TestPosStrings(t *testing.T) {
	p := Pos{File: "x.c", Line: 3}
	if p.String() != "x.c:3" {
		t.Errorf("Pos = %q", p.String())
	}
	var zero Pos
	if zero.String() != "<unknown>" {
		t.Errorf("zero Pos = %q", zero.String())
	}
	tok := Token{Kind: Ident, Text: "abc"}
	if tok.String() != "abc" {
		t.Errorf("token = %q", tok.String())
	}
	eof := Token{Kind: EOF}
	if eof.String() != "EOF" {
		t.Errorf("eof = %q", eof.String())
	}
}

func TestTokKindStrings(t *testing.T) {
	kinds := map[TokKind]string{
		EOF: "EOF", Ident: "identifier", Keyword: "keyword",
		IntLit: "integer", FloatLit: "float", CharLit: "character",
		StringLit: "string", Punct: "punctuation",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestErrorListCap(t *testing.T) {
	el := &ErrorList{Max: 3}
	for i := 0; i < 10; i++ {
		el.Add(Pos{"f.c", i}, "err %d", i)
	}
	if len(el.Errs) != 3 {
		t.Errorf("errors kept = %d, want 3", len(el.Errs))
	}
	if el.Err() == nil {
		t.Error("Err() = nil")
	}
	empty := &ErrorList{}
	if empty.Err() != nil {
		t.Error("empty Err() != nil")
	}
}
