package cc

// Statement parsing.

// parseCompound parses `{ ... }`; the caller manages the enclosing scope
// for function bodies, but nested blocks get their own scope here.
func (p *Parser) parseCompound() *CompoundStmt {
	pos := p.expect("{").Pos
	cs := &CompoundStmt{Pos_: pos}
	for !p.atPunct("}") && !p.at(EOF) {
		start := p.pos
		s := p.parseBlockItem()
		if s != nil {
			cs.Items = append(cs.Items, s)
		}
		if p.pos == start {
			p.errorf("unexpected token %q in block", p.tok().Text)
			p.next()
		}
	}
	p.expect("}")
	return cs
}

func (p *Parser) parseBlockItem() Stmt {
	if p.atDeclStart() {
		// Disambiguate `x * y;` style statements: a typedef name followed
		// by something that cannot continue a declaration is an
		// expression after all. atDeclStart already requires a typedef
		// for plain identifiers, so this is safe.
		d := p.parseDeclarationTail()
		if d == nil {
			return nil
		}
		return &DeclStmt{Decl: d}
	}
	return p.parseStmt()
}

func (p *Parser) parseStmt() Stmt {
	t := p.tok()
	// GCC asm statements carry no data flow; skip to the semicolon
	// (tolerating the volatile/goto qualifiers between asm and parens).
	if (t.Kind == Keyword && t.Text == "asm") ||
		(t.Kind == Ident && (t.Text == "__asm__" || t.Text == "__asm")) {
		for !p.atPunct(";") && !p.at(EOF) {
			p.next()
		}
		p.expect(";")
		return &ExprStmt{Pos_: t.Pos}
	}
	switch {
	case p.atPunct("{"):
		p.pushScope()
		s := p.parseCompound()
		p.popScope()
		return s
	case p.atPunct(";"):
		p.next()
		return &ExprStmt{Pos_: t.Pos}
	case t.Kind == Keyword:
		switch t.Text {
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDo()
		case "for":
			return p.parseFor()
		case "switch":
			return p.parseSwitch()
		case "case":
			p.next()
			e := p.parseCondExpr()
			p.expect(":")
			return &CaseStmt{Expr: e, Body: p.optionalLabelBody(), Pos_: t.Pos}
		case "default":
			p.next()
			p.expect(":")
			return &CaseStmt{Body: p.optionalLabelBody(), Pos_: t.Pos}
		case "break":
			p.next()
			p.expect(";")
			return &BreakStmt{Pos_: t.Pos}
		case "continue":
			p.next()
			p.expect(";")
			return &ContinueStmt{Pos_: t.Pos}
		case "return":
			p.next()
			var e Expr
			if !p.atPunct(";") {
				e = p.parseExpr()
			}
			p.expect(";")
			return &ReturnStmt{Expr: e, Pos_: t.Pos}
		case "goto":
			p.next()
			label := ""
			if p.at(Ident) {
				label = p.next().Text
			} else {
				p.errorf("expected label after goto")
			}
			p.expect(";")
			return &GotoStmt{Label: label, Pos_: t.Pos}
		}
	case t.Kind == Ident && p.peek().Kind == Punct && p.peek().Text == ":":
		p.next()
		p.next()
		return &LabelStmt{Label: t.Text, Body: p.optionalLabelBody(), Pos_: t.Pos}
	}
	// Expression statement.
	e := p.parseExpr()
	p.expect(";")
	return &ExprStmt{Expr: e, Pos_: t.Pos}
}

// optionalLabelBody parses the statement following a label, tolerating a
// label directly before '}'.
func (p *Parser) optionalLabelBody() Stmt {
	if p.atPunct("}") {
		return nil
	}
	return p.parseBlockItem()
}

func (p *Parser) parseIf() Stmt {
	pos := p.next().Pos
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	then := p.parseStmt()
	var els Stmt
	if p.atKeyword("else") {
		p.next()
		els = p.parseStmt()
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos_: pos}
}

func (p *Parser) parseWhile() Stmt {
	pos := p.next().Pos
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	return &WhileStmt{Cond: cond, Body: p.parseStmt(), Pos_: pos}
}

func (p *Parser) parseDo() Stmt {
	pos := p.next().Pos
	body := p.parseStmt()
	p.expect("while")
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	p.expect(";")
	return &DoStmt{Body: body, Cond: cond, Pos_: pos}
}

func (p *Parser) parseFor() Stmt {
	pos := p.next().Pos
	p.expect("(")
	f := &ForStmt{Pos_: pos}
	p.pushScope()
	switch {
	case p.atPunct(";"):
		p.next()
	case p.atDeclStart():
		f.InitDecl = p.parseDeclarationTail() // consumes ';'
	default:
		f.Init = p.parseExpr()
		p.expect(";")
	}
	if !p.atPunct(";") {
		f.Cond = p.parseExpr()
	}
	p.expect(";")
	if !p.atPunct(")") {
		f.Post = p.parseExpr()
	}
	p.expect(")")
	f.Body = p.parseStmt()
	p.popScope()
	return f
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.next().Pos
	p.expect("(")
	tag := p.parseExpr()
	p.expect(")")
	return &SwitchStmt{Tag: tag, Body: p.parseStmt(), Pos_: pos}
}
