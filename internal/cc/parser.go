package cc

// Parser turns a token stream into a TranslationUnit. It keeps a scope
// stack of typedef names (the classic lexer-feedback needed to parse C) and
// recovers from errors at statement/declaration boundaries so a single run
// reports multiple problems.
type Parser struct {
	toks []Token
	pos  int
	errs *ErrorList
	// scopes map names to "is a typedef" in the current lexical nesting;
	// a non-typedef declaration shadows an outer typedef.
	scopes []map[string]bool
}

// Parse tokenizes and parses preprocessed source text.
func Parse(name, src string) (*TranslationUnit, error) {
	toks, err := Tokenize(name, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, errs: &ErrorList{}}
	p.pushScope()
	unit := &TranslationUnit{Name: name}
	for !p.at(EOF) {
		start := p.pos
		d := p.parseExternalDecl()
		if d != nil {
			unit.Decls = append(unit.Decls, d)
		}
		if p.pos == start {
			// No progress: skip a token to guarantee termination.
			p.errorf("unexpected token %q", p.tok().Text)
			p.pos++
		}
	}
	return unit, p.errs.Err()
}

func (p *Parser) tok() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) at(k TokKind) bool { return p.tok().Kind == k }

func (p *Parser) atPunct(text string) bool {
	t := p.tok()
	return t.Kind == Punct && t.Text == text
}

func (p *Parser) atKeyword(text string) bool {
	t := p.tok()
	return t.Kind == Keyword && t.Text == text
}

func (p *Parser) next() Token {
	t := p.tok()
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *Parser) expect(text string) Token {
	if p.atPunct(text) || p.atKeyword(text) {
		return p.next()
	}
	p.errorf("expected %q, found %q", text, p.tok().Text)
	return Token{Kind: Punct, Text: text, Pos: p.tok().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs.Add(p.tok().Pos, format, args...)
}

func (p *Parser) pushScope() { p.scopes = append(p.scopes, map[string]bool{}) }
func (p *Parser) popScope()  { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *Parser) declareName(name string, isTypedef bool) {
	if name == "" {
		return
	}
	p.scopes[len(p.scopes)-1][name] = isTypedef
}

// isTypedefName reports whether name currently denotes a typedef.
func (p *Parser) isTypedefName(name string) bool {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v
		}
	}
	return false
}

// typeSpecKeywords are keywords that can begin a type specifier.
var typeSpecKeywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"struct": true, "union": true, "enum": true,
}

var declSpecKeywords = map[string]bool{
	"typedef": true, "extern": true, "static": true, "auto": true,
	"register": true, "const": true, "volatile": true, "inline": true,
	"restrict": true, "__inline": true, "__inline__": true,
	"__restrict": true, "__const": true, "__signed__": true,
	"__volatile__": true, "__extension__": true,
}

// atDeclStart reports whether the current token can begin a declaration.
func (p *Parser) atDeclStart() bool {
	t := p.tok()
	switch t.Kind {
	case Keyword:
		return typeSpecKeywords[t.Text] || declSpecKeywords[t.Text]
	case Ident:
		return p.isTypedefName(t.Text)
	}
	return false
}

// atTypeStart reports whether the current token can begin a type-name
// (casts, sizeof, parameters).
func (p *Parser) atTypeStart() bool {
	t := p.tok()
	switch t.Kind {
	case Keyword:
		return typeSpecKeywords[t.Text] || t.Text == "const" || t.Text == "volatile"
	case Ident:
		return p.isTypedefName(t.Text)
	}
	return false
}

// ---------- Declarations ----------

// parseExternalDecl parses a function definition or top-level declaration.
func (p *Parser) parseExternalDecl() ExtDecl {
	if p.atPunct(";") {
		p.next()
		return nil
	}
	specs := p.parseDeclSpecs(true)
	if specs == nil {
		return nil
	}
	if p.atPunct(";") {
		p.next()
		// struct/union/enum definition or a vacuous declaration.
		return &Declaration{Specs: specs, Pos_: specs.Pos_}
	}
	first := p.parseDeclarator(false)
	if fd, body := p.tryFuncDef(specs, first); fd != nil {
		_ = body
		return fd
	}
	return p.finishDeclaration(specs, first)
}

// tryFuncDef checks whether the declarator begins a function definition and
// parses the body if so.
func (p *Parser) tryFuncDef(specs *DeclSpecs, d Declarator) (*FuncDef, bool) {
	fdecl := outermostFunc(d)
	if fdecl == nil {
		return nil, false
	}
	// K&R parameter declarations between declarator and body.
	var krDecls []*Declaration
	for p.atDeclStart() && !p.atPunct("{") {
		kd := p.parseDeclarationTail()
		if kd != nil {
			krDecls = append(krDecls, kd)
		}
	}
	if !p.atPunct("{") {
		if len(krDecls) > 0 {
			p.errorf("expected function body after parameter declarations")
		}
		return nil, false
	}
	name := d.DeclName()
	p.declareName(name, false)
	p.pushScope()
	// Parameter names become visible in the body scope.
	for _, pd := range fdecl.Params {
		if pd.Decl != nil {
			p.declareName(pd.Decl.DeclName(), false)
		}
	}
	for _, n := range fdecl.KRNames {
		p.declareName(n, false)
	}
	body := p.parseCompound()
	p.popScope()
	return &FuncDef{
		Specs:   specs,
		Decl:    &DeclaratorBox{D: d, Pos_: d.Position()},
		KRDecls: krDecls,
		Body:    body,
		Pos_:    specs.Pos_,
	}, true
}

// outermostFunc returns the FuncDecl applied directly to the declared
// identifier, meaning the declarator declares a function (possibly
// returning a pointer), or nil otherwise. The wrapper adjacent to the
// IdentDecl is the one applied first in type construction, so
// Ptr(Func(id)) declares a function returning a pointer while
// Func(Ptr(id)) declares a pointer-to-function variable.
func outermostFunc(d Declarator) *FuncDecl {
	for {
		switch v := d.(type) {
		case *FuncDecl:
			if _, ok := v.Inner.(*IdentDecl); ok {
				return v
			}
			d = v.Inner
		case *PointerDecl:
			d = v.Inner
		case *ArrayDecl:
			d = v.Inner
		default:
			return nil
		}
	}
}

// parseDeclarationTail parses a complete declaration starting at
// decl-specifiers (used for K&R params and block declarations).
func (p *Parser) parseDeclarationTail() *Declaration {
	specs := p.parseDeclSpecs(true)
	if specs == nil {
		return nil
	}
	if p.atPunct(";") {
		p.next()
		return &Declaration{Specs: specs, Pos_: specs.Pos_}
	}
	first := p.parseDeclarator(false)
	return p.finishDeclaration(specs, first)
}

// finishDeclaration parses the init-declarator list following the first
// declarator and the terminating semicolon.
func (p *Parser) finishDeclaration(specs *DeclSpecs, first Declarator) *Declaration {
	decl := &Declaration{Specs: specs, Pos_: specs.Pos_}
	add := func(d Declarator) {
		item := &InitDeclarator{Decl: &DeclaratorBox{D: d, Pos_: d.Position()}}
		p.declareName(d.DeclName(), specs.Storage == SCTypedef)
		if p.atPunct("=") {
			p.next()
			item.Init = p.parseInit()
		}
		decl.Items = append(decl.Items, item)
	}
	add(first)
	for p.atPunct(",") {
		p.next()
		add(p.parseDeclarator(false))
	}
	p.expect(";")
	return decl
}

// parseDeclSpecs parses declaration specifiers. allowStorage permits
// storage-class keywords (false inside type-names).
func (p *Parser) parseDeclSpecs(allowStorage bool) *DeclSpecs {
	specs := &DeclSpecs{Pos_: p.tok().Pos}
	seenType := false
	for {
		p.skipExtensions()
		t := p.tok()
		switch {
		case t.Kind == Keyword:
			switch t.Text {
			case "typedef", "extern", "static", "auto", "register":
				if !allowStorage {
					p.errorf("storage class %q not allowed here", t.Text)
				}
				sc := map[string]StorageClass{
					"typedef": SCTypedef, "extern": SCExtern,
					"static": SCStatic, "auto": SCAuto, "register": SCRegister,
				}[t.Text]
				if specs.Storage != SCNone && specs.Storage != sc {
					p.errorf("conflicting storage classes")
				}
				specs.Storage = sc
				p.next()
				continue
			case "const", "volatile", "inline", "restrict",
				"__inline", "__inline__", "__restrict", "__const",
				"__volatile__", "__extension__":
				p.next()
				continue
			case "__signed__":
				specs.Basic = append(specs.Basic, "signed")
				seenType = true
				p.next()
				continue
			case "void", "char", "short", "int", "long", "float",
				"double", "signed", "unsigned":
				specs.Basic = append(specs.Basic, t.Text)
				seenType = true
				p.next()
				continue
			case "struct", "union":
				specs.Struct = p.parseStructSpec()
				seenType = true
				continue
			case "enum":
				specs.Enum = p.parseEnumSpec()
				seenType = true
				continue
			}
			// Non-specifier keyword terminates the specifier list.
		case t.Kind == Ident:
			if !seenType && p.isTypedefName(t.Text) {
				specs.TypedefName = t.Text
				seenType = true
				p.next()
				continue
			}
		}
		break
	}
	if !seenType && specs.Storage == SCNone {
		return nil
	}
	return specs
}

func (p *Parser) parseStructSpec() *StructSpec {
	kw := p.next() // struct or union
	s := &StructSpec{Union: kw.Text == "union", Pos_: kw.Pos}
	if p.at(Ident) {
		s.Name = p.next().Text
	}
	if !p.atPunct("{") {
		if s.Name == "" {
			p.errorf("anonymous struct/union requires a definition")
		}
		return s
	}
	p.next()
	s.Defined = true
	for !p.atPunct("}") && !p.at(EOF) {
		if p.atPunct(";") {
			p.next()
			continue
		}
		fspecs := p.parseDeclSpecs(false)
		if fspecs == nil {
			p.errorf("expected field declaration, found %q", p.tok().Text)
			p.skipPast(";", "}")
			continue
		}
		// Unnamed field like `struct S { int; };` or anonymous inner
		// struct/union member.
		if p.atPunct(";") {
			p.next()
			s.Fields = append(s.Fields, &FieldDecl{Specs: fspecs, Pos_: fspecs.Pos_})
			continue
		}
		for {
			f := &FieldDecl{Specs: fspecs, Pos_: p.tok().Pos}
			if !p.atPunct(":") {
				f.Decl = p.parseDeclarator(false)
			}
			if p.atPunct(":") {
				p.next()
				f.Bits = p.parseCondExpr()
			}
			s.Fields = append(s.Fields, f)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
		p.expect(";")
	}
	p.expect("}")
	return s
}

func (p *Parser) parseEnumSpec() *EnumSpec {
	kw := p.next()
	e := &EnumSpec{Pos_: kw.Pos}
	if p.at(Ident) {
		e.Name = p.next().Text
	}
	if !p.atPunct("{") {
		return e
	}
	p.next()
	e.Defined = true
	for !p.atPunct("}") && !p.at(EOF) {
		if !p.at(Ident) {
			p.errorf("expected enumerator name")
			p.skipPast(",", "}")
			continue
		}
		it := EnumItem{Name: p.next().Text, Pos_: p.tok().Pos}
		if p.atPunct("=") {
			p.next()
			it.Value = p.parseCondExpr()
		}
		p.declareName(it.Name, false)
		e.Items = append(e.Items, it)
		if p.atPunct(",") {
			p.next()
		}
	}
	p.expect("}")
	return e
}

// skipPast advances past the next occurrence of any stop token (consuming
// it unless it is "}"), for error recovery.
func (p *Parser) skipPast(stops ...string) {
	for !p.at(EOF) {
		for _, s := range stops {
			if p.atPunct(s) {
				if s != "}" {
					p.next()
				}
				return
			}
		}
		p.next()
	}
}

// skipExtensions consumes GCC extension syntax that carries no analysis
// meaning: __attribute__((...)) and asm("...") annotations.
func (p *Parser) skipExtensions() {
	for {
		t := p.tok()
		isAttr := t.Kind == Ident && (t.Text == "__attribute__" || t.Text == "__attribute")
		isAsm := (t.Kind == Ident && (t.Text == "__asm__" || t.Text == "__asm")) ||
			(t.Kind == Keyword && t.Text == "asm")
		if !isAttr && !isAsm {
			return
		}
		p.next()
		if !p.atPunct("(") {
			continue
		}
		depth := 0
		for !p.at(EOF) {
			if p.atPunct("(") {
				depth++
			} else if p.atPunct(")") {
				depth--
				if depth == 0 {
					p.next()
					break
				}
			}
			p.next()
		}
	}
}

// parseDeclarator parses a (possibly abstract) declarator.
func (p *Parser) parseDeclarator(abstract bool) Declarator {
	if p.atPunct("*") {
		pos := p.next().Pos
		for p.atKeyword("const") || p.atKeyword("volatile") || p.atKeyword("restrict") || p.atKeyword("__restrict") {
			p.next()
		}
		inner := p.parseDeclarator(abstract)
		return &PointerDecl{Inner: inner, Pos_: pos}
	}
	return p.parseDirectDeclarator(abstract)
}

func (p *Parser) parseDirectDeclarator(abstract bool) Declarator {
	var d Declarator
	pos := p.tok().Pos
	switch {
	case p.at(Ident):
		d = &IdentDecl{Name: p.next().Text, Pos_: pos}
	case p.atPunct("(") && p.groupingParen():
		p.next()
		d = p.parseDeclarator(abstract)
		p.expect(")")
	default:
		// Abstract declarator spine.
		d = &IdentDecl{Pos_: pos}
		if !abstract && !p.atPunct("[") && !p.atPunct("(") {
			p.errorf("expected declarator, found %q", p.tok().Text)
		}
	}
	// Postfix: arrays and parameter lists, applied inner-to-outer.
	for {
		p.skipExtensions()
		switch {
		case p.atPunct("["):
			apos := p.next().Pos
			var size Expr
			if !p.atPunct("]") {
				size = p.parseAssignExpr()
			}
			p.expect("]")
			d = &ArrayDecl{Inner: d, Size: size, Pos_: apos}
		case p.atPunct("("):
			fpos := p.next().Pos
			f := &FuncDecl{Inner: d, Pos_: fpos}
			p.parseParamList(f)
			p.expect(")")
			d = f
		default:
			return d
		}
	}
}

// groupingParen decides whether '(' begins a parenthesized declarator
// (true) or a parameter list of an abstract function declarator (false).
func (p *Parser) groupingParen() bool {
	nxt := p.peek()
	switch nxt.Kind {
	case Punct:
		return nxt.Text == "*" || nxt.Text == "(" // (*p), ((x))
	case Keyword:
		return false // (int) → params
	case Ident:
		return !p.isTypedefName(nxt.Text)
	}
	return false
}

// parseParamList fills f.Params / f.Variadic / f.KRNames. The opening '('
// has been consumed; the caller consumes ')'.
func (p *Parser) parseParamList(f *FuncDecl) {
	if p.atPunct(")") {
		return // ()
	}
	// K&R identifier list: all plain identifiers that are not typedefs.
	if p.at(Ident) && !p.isTypedefName(p.tok().Text) {
		for {
			if !p.at(Ident) {
				p.errorf("expected parameter name")
				break
			}
			f.KRNames = append(f.KRNames, p.next().Text)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
		return
	}
	// Prototype parameters.
	for {
		if p.atPunct("...") {
			p.next()
			f.Variadic = true
			break
		}
		specs := p.parseDeclSpecs(true)
		if specs == nil {
			p.errorf("expected parameter declaration, found %q", p.tok().Text)
			p.skipPast(",", ")")
			if p.atPunct(")") || p.at(EOF) {
				break
			}
			continue
		}
		pd := &ParamDecl{Specs: specs, Pos_: specs.Pos_}
		if !p.atPunct(",") && !p.atPunct(")") {
			pd.Decl = p.parseDeclarator(true)
		}
		// `(void)` means no parameters.
		if !(len(specs.Basic) == 1 && specs.Basic[0] == "void" &&
			(pd.Decl == nil || pd.Decl.DeclName() == "" && isBareIdent(pd.Decl))) {
			f.Params = append(f.Params, pd)
		}
		if !p.atPunct(",") {
			break
		}
		p.next()
	}
}

func isBareIdent(d Declarator) bool {
	_, ok := d.(*IdentDecl)
	return ok
}

// parseTypeName parses a type-name (for casts and sizeof).
func (p *Parser) parseTypeName() *TypeName {
	pos := p.tok().Pos
	specs := p.parseDeclSpecs(false)
	if specs == nil {
		p.errorf("expected type name, found %q", p.tok().Text)
		specs = &DeclSpecs{Basic: []string{"int"}, Pos_: pos}
	}
	var d Declarator = &IdentDecl{Pos_: pos}
	if p.atPunct("*") || p.atPunct("(") || p.atPunct("[") {
		d = p.parseDeclarator(true)
	}
	return &TypeName{Specs: specs, Decl: d, Pos_: pos}
}

// parseInit parses an initializer.
func (p *Parser) parseInit() *Init {
	pos := p.tok().Pos
	if p.atPunct("{") {
		p.next()
		init := &Init{Pos_: pos}
		for !p.atPunct("}") && !p.at(EOF) {
			item := p.parseInitItem()
			init.List = append(init.List, item)
			if p.atPunct(",") {
				p.next()
			} else {
				break
			}
		}
		p.expect("}")
		if init.List == nil {
			init.List = []*Init{}
		}
		return init
	}
	return &Init{Expr: p.parseAssignExpr(), Pos_: pos}
}

func (p *Parser) parseInitItem() *Init {
	field := ""
	// Designators: `.name =`, `[expr] =` (index designators discarded).
	for {
		if p.atPunct(".") && p.peek().Kind == Ident {
			p.next()
			field = p.next().Text
			continue
		}
		if p.atPunct("[") {
			p.next()
			p.parseCondExpr()
			p.expect("]")
			continue
		}
		break
	}
	if field != "" || p.atPunct("=") {
		p.expect("=")
	}
	item := p.parseInit()
	item.Field = field
	return item
}
