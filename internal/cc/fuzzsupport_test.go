package cc

import (
	"math/rand"
	"time"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func timeAfter() <-chan time.Time { return time.After(5 * time.Second) }
