package cc

import (
	"fmt"
	"strings"
)

// Dump renders a node as a compact S-expression, for tests and debugging.
func Dump(n Node) string {
	var b strings.Builder
	dump(&b, n)
	return b.String()
}

func dump(b *strings.Builder, n Node) {
	switch v := n.(type) {
	case nil:
		b.WriteString("nil")
	case *IdentExpr:
		b.WriteString(v.Name)
	case *IntExpr:
		b.WriteString(v.Text)
	case *FloatExpr:
		b.WriteString(v.Text)
	case *CharExpr:
		b.WriteString(v.Text)
	case *StringExpr:
		b.WriteString(v.Text)
	case *UnaryExpr:
		fmt.Fprintf(b, "(%s ", v.Op)
		dump(b, v.X)
		b.WriteString(")")
	case *PostfixExpr:
		fmt.Fprintf(b, "(post%s ", v.Op)
		dump(b, v.X)
		b.WriteString(")")
	case *BinaryExpr:
		fmt.Fprintf(b, "(%s ", v.Op)
		dump(b, v.X)
		b.WriteString(" ")
		dump(b, v.Y)
		b.WriteString(")")
	case *AssignExpr:
		fmt.Fprintf(b, "(%s ", v.Op)
		dump(b, v.L)
		b.WriteString(" ")
		dump(b, v.R)
		b.WriteString(")")
	case *CondExpr:
		b.WriteString("(?: ")
		dump(b, v.Cond)
		b.WriteString(" ")
		dump(b, v.Then)
		b.WriteString(" ")
		dump(b, v.Else)
		b.WriteString(")")
	case *CommaExpr:
		b.WriteString("(, ")
		dump(b, v.X)
		b.WriteString(" ")
		dump(b, v.Y)
		b.WriteString(")")
	case *CallExpr:
		b.WriteString("(call ")
		dump(b, v.Fun)
		for _, a := range v.Args {
			b.WriteString(" ")
			dump(b, a)
		}
		b.WriteString(")")
	case *IndexExpr:
		b.WriteString("(index ")
		dump(b, v.X)
		b.WriteString(" ")
		dump(b, v.Index)
		b.WriteString(")")
	case *MemberExpr:
		op := "."
		if v.Arrow {
			op = "->"
		}
		fmt.Fprintf(b, "(%s ", op)
		dump(b, v.X)
		fmt.Fprintf(b, " %s)", v.Field)
	case *CastExpr:
		b.WriteString("(cast ")
		dumpTypeName(b, v.Type)
		b.WriteString(" ")
		dump(b, v.X)
		b.WriteString(")")
	case *SizeofExpr:
		b.WriteString("(sizeof ")
		if v.X != nil {
			dump(b, v.X)
		} else {
			dumpTypeName(b, v.Type)
		}
		b.WriteString(")")
	case *CompoundStmt:
		b.WriteString("{")
		for i, s := range v.Items {
			if i > 0 {
				b.WriteString(" ")
			}
			dump(b, s)
		}
		b.WriteString("}")
	case *DeclStmt:
		dump(b, v.Decl)
	case *ExprStmt:
		if v.Expr == nil {
			b.WriteString(";")
		} else {
			dump(b, v.Expr)
			b.WriteString(";")
		}
	case *IfStmt:
		b.WriteString("(if ")
		dump(b, v.Cond)
		b.WriteString(" ")
		dump(b, v.Then)
		if v.Else != nil {
			b.WriteString(" ")
			dump(b, v.Else)
		}
		b.WriteString(")")
	case *WhileStmt:
		b.WriteString("(while ")
		dump(b, v.Cond)
		b.WriteString(" ")
		dump(b, v.Body)
		b.WriteString(")")
	case *DoStmt:
		b.WriteString("(do ")
		dump(b, v.Body)
		b.WriteString(" ")
		dump(b, v.Cond)
		b.WriteString(")")
	case *ForStmt:
		b.WriteString("(for ")
		if v.InitDecl != nil {
			dump(b, v.InitDecl)
		} else {
			dump(b, v.Init)
		}
		b.WriteString(" ")
		dump(b, v.Cond)
		b.WriteString(" ")
		dump(b, v.Post)
		b.WriteString(" ")
		dump(b, v.Body)
		b.WriteString(")")
	case *SwitchStmt:
		b.WriteString("(switch ")
		dump(b, v.Tag)
		b.WriteString(" ")
		dump(b, v.Body)
		b.WriteString(")")
	case *CaseStmt:
		if v.Expr == nil {
			b.WriteString("(default")
		} else {
			b.WriteString("(case ")
			dump(b, v.Expr)
		}
		if v.Body != nil {
			b.WriteString(" ")
			dump(b, v.Body)
		}
		b.WriteString(")")
	case *BreakStmt:
		b.WriteString("break;")
	case *ContinueStmt:
		b.WriteString("continue;")
	case *ReturnStmt:
		b.WriteString("(return")
		if v.Expr != nil {
			b.WriteString(" ")
			dump(b, v.Expr)
		}
		b.WriteString(")")
	case *GotoStmt:
		fmt.Fprintf(b, "(goto %s)", v.Label)
	case *LabelStmt:
		fmt.Fprintf(b, "(label %s", v.Label)
		if v.Body != nil {
			b.WriteString(" ")
			dump(b, v.Body)
		}
		b.WriteString(")")
	case *Declaration:
		b.WriteString("(decl ")
		dumpSpecs(b, v.Specs)
		for _, it := range v.Items {
			b.WriteString(" ")
			dumpDeclarator(b, it.Decl.D)
			if it.Init != nil {
				b.WriteString("=")
				dumpInit(b, it.Init)
			}
		}
		b.WriteString(")")
	case *FuncDef:
		b.WriteString("(func ")
		dumpSpecs(b, v.Specs)
		b.WriteString(" ")
		dumpDeclarator(b, v.Decl.D)
		b.WriteString(" ")
		dump(b, v.Body)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<%T>", n)
	}
}

func dumpSpecs(b *strings.Builder, s *DeclSpecs) {
	if s == nil {
		b.WriteString("?")
		return
	}
	if sc := s.Storage.String(); sc != "" {
		b.WriteString(sc)
		b.WriteString(" ")
	}
	switch {
	case s.Struct != nil:
		kw := "struct"
		if s.Struct.Union {
			kw = "union"
		}
		fmt.Fprintf(b, "%s:%s", kw, s.Struct.Name)
	case s.Enum != nil:
		fmt.Fprintf(b, "enum:%s", s.Enum.Name)
	case s.TypedefName != "":
		b.WriteString(s.TypedefName)
	default:
		b.WriteString(strings.Join(s.Basic, "-"))
	}
}

func dumpDeclarator(b *strings.Builder, d Declarator) {
	switch v := d.(type) {
	case *IdentDecl:
		if v.Name == "" {
			b.WriteString("_")
		} else {
			b.WriteString(v.Name)
		}
	case *PointerDecl:
		b.WriteString("(* ")
		dumpDeclarator(b, v.Inner)
		b.WriteString(")")
	case *ArrayDecl:
		b.WriteString("(arr ")
		dumpDeclarator(b, v.Inner)
		b.WriteString(")")
	case *FuncDecl:
		b.WriteString("(fn ")
		dumpDeclarator(b, v.Inner)
		for _, prm := range v.Params {
			b.WriteString(" ")
			dumpSpecs(b, prm.Specs)
			if prm.Decl != nil {
				b.WriteString(":")
				dumpDeclarator(b, prm.Decl)
			}
		}
		for _, n := range v.KRNames {
			b.WriteString(" kr:" + n)
		}
		if v.Variadic {
			b.WriteString(" ...")
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "<%T>", d)
	}
}

func dumpTypeName(b *strings.Builder, t *TypeName) {
	if t == nil {
		b.WriteString("?")
		return
	}
	dumpSpecs(b, t.Specs)
	if t.Decl != nil {
		if _, bare := t.Decl.(*IdentDecl); !bare {
			b.WriteString(" ")
			dumpDeclarator(b, t.Decl)
		}
	}
}

func dumpInit(b *strings.Builder, i *Init) {
	if i.Expr != nil {
		dump(b, i.Expr)
		return
	}
	b.WriteString("{")
	for j, it := range i.List {
		if j > 0 {
			b.WriteString(" ")
		}
		if it.Field != "" {
			fmt.Fprintf(b, ".%s=", it.Field)
		}
		dumpInit(b, it)
	}
	b.WriteString("}")
}
