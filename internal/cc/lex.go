// Package cc implements a C lexer, abstract syntax tree and parser for the
// realistic C subset consumed by the CLA compile phase: the full expression
// and statement grammar, declarations with arbitrarily nested declarators,
// structs, unions, enums, typedefs, initializer lists and old-style as well
// as prototype function definitions.
//
// The lexer consumes preprocessed text containing GCC-style line markers
// (`# <line> "<file>"`) as produced by internal/cpp, and reports positions
// in the original source files.
package cc

import (
	"fmt"
	"strconv"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	EOF TokKind = iota
	Ident
	Keyword
	IntLit
	FloatLit
	CharLit
	StringLit
	Punct
)

func (k TokKind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case IntLit:
		return "integer"
	case FloatLit:
		return "float"
	case CharLit:
		return "character"
	case StringLit:
		return "string"
	case Punct:
		return "punctuation"
	}
	return "token"
}

// Pos is a position in an original (pre-preprocessing) source file.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string {
	if p.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return t.Text
}

var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "int": true, "long": true, "register": true,
	"return": true, "short": true, "signed": true, "sizeof": true,
	"static": true, "struct": true, "switch": true, "typedef": true,
	"union": true, "unsigned": true, "void": true, "volatile": true,
	"while": true, "inline": true, "restrict": true,
	// common extensions accepted and (mostly) ignored
	"__inline": true, "__inline__": true, "__restrict": true,
	"__const": true, "__signed__": true, "__volatile__": true,
	"__extension__": true,
}

// lexer hyphenates preprocessed text into tokens.
type lexer struct {
	src  string
	pos  int
	file string
	line int
	errs *ErrorList
}

// ErrorList accumulates parse errors; parsing continues after recoverable
// errors so one run reports as much as possible.
type ErrorList struct {
	Errs []error
	Max  int // stop after this many errors (default 20)
}

// Add appends an error.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	max := l.Max
	if max == 0 {
		max = 20
	}
	if len(l.Errs) < max {
		l.Errs = append(l.Errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	}
}

// Err returns the accumulated errors as one error, or nil.
func (l *ErrorList) Err() error {
	if len(l.Errs) == 0 {
		return nil
	}
	msgs := make([]string, len(l.Errs))
	for i, e := range l.Errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

// Tokenize lexes preprocessed source, honoring line markers. name is used
// for positions until the first marker.
func Tokenize(name, src string) ([]Token, error) {
	errs := &ErrorList{}
	lx := &lexer{src: src, file: name, line: 1, errs: errs}
	var toks []Token
	for {
		t := lx.next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, errs.Err()
}

func (lx *lexer) errorf(format string, args ...any) {
	lx.errs.Add(Pos{lx.file, lx.line}, format, args...)
}

// lineMarker parses `# <n> "<file>"` at the current position (start of
// line) and updates the position state.
func (lx *lexer) lineMarker() {
	// caller consumed nothing; src[pos] == '#'
	end := strings.IndexByte(lx.src[lx.pos:], '\n')
	var lineText string
	if end < 0 {
		lineText = lx.src[lx.pos:]
		lx.pos = len(lx.src)
	} else {
		lineText = lx.src[lx.pos : lx.pos+end]
		lx.pos += end + 1
	}
	fields := strings.SplitN(strings.TrimSpace(lineText[1:]), " ", 2)
	if len(fields) == 2 {
		if n, err := strconv.Atoi(strings.TrimSpace(fields[0])); err == nil {
			if f, err := strconv.Unquote(strings.TrimSpace(fields[1])); err == nil {
				lx.line = n
				lx.file = f
				return
			}
		}
	}
	// Not a recognizable marker; treat as a skipped line.
	lx.line++
}

func (lx *lexer) next() Token {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			lx.pos++
		case c == '#':
			// Only line markers survive preprocessing.
			lx.lineMarker()
		default:
			return lx.scanToken()
		}
	}
	return Token{Kind: EOF, Pos: Pos{lx.file, lx.line}}
}

func (lx *lexer) scanToken() Token {
	pos := Pos{lx.file, lx.line}
	src := lx.src
	i := lx.pos
	c := src[i]
	switch {
	case isIdentStart(c):
		j := i + 1
		for j < len(src) && isIdentChar(src[j]) {
			j++
		}
		text := src[i:j]
		lx.pos = j
		kind := Ident
		if keywords[text] {
			kind = Keyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}
	case isDigit(c) || (c == '.' && i+1 < len(src) && isDigit(src[i+1])):
		return lx.scanNumber(pos)
	case c == '"':
		return lx.scanString(pos, '"', StringLit)
	case c == '\'':
		return lx.scanString(pos, '\'', CharLit)
	case c == 'L' && i+1 < len(src) && (src[i+1] == '"' || src[i+1] == '\''):
		lx.pos++ // wide literal prefix
		if src[lx.pos] == '"' {
			return lx.scanString(pos, '"', StringLit)
		}
		return lx.scanString(pos, '\'', CharLit)
	default:
		for _, p := range punct3 {
			if strings.HasPrefix(src[i:], p) {
				lx.pos = i + len(p)
				return Token{Kind: Punct, Text: p, Pos: pos}
			}
		}
		lx.pos = i + 1
		return Token{Kind: Punct, Text: string(c), Pos: pos}
	}
}

// punct3 lists multi-byte punctuators longest-first.
var punct3 = []string{
	"...", "<<=", ">>=",
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
}

func (lx *lexer) scanNumber(pos Pos) Token {
	src := lx.src
	i := lx.pos
	j := i
	isFloat := false
	if src[j] == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
		j += 2
		for j < len(src) && (isHexDigit(src[j])) {
			j++
		}
	} else {
		for j < len(src) && isDigit(src[j]) {
			j++
		}
		if j < len(src) && src[j] == '.' {
			isFloat = true
			j++
			for j < len(src) && isDigit(src[j]) {
				j++
			}
		}
		if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
			k := j + 1
			if k < len(src) && (src[k] == '+' || src[k] == '-') {
				k++
			}
			if k < len(src) && isDigit(src[k]) {
				isFloat = true
				j = k
				for j < len(src) && isDigit(src[j]) {
					j++
				}
			}
		}
	}
	// suffixes
	for j < len(src) && strings.ContainsRune("uUlLfF", rune(src[j])) {
		if src[j] == 'f' || src[j] == 'F' {
			isFloat = true
		}
		j++
	}
	lx.pos = j
	kind := IntLit
	if isFloat {
		kind = FloatLit
	}
	return Token{Kind: kind, Text: src[i:j], Pos: pos}
}

func (lx *lexer) scanString(pos Pos, quote byte, kind TokKind) Token {
	src := lx.src
	i := lx.pos
	j := i + 1
	for j < len(src) && src[j] != quote {
		if src[j] == '\\' && j+1 < len(src) {
			j++
		}
		if src[j] == '\n' {
			lx.errorf("unterminated %s literal", kind)
			break
		}
		j++
	}
	if j < len(src) && src[j] == quote {
		j++
	} else if j >= len(src) {
		lx.errorf("unterminated %s literal", kind)
	}
	lx.pos = j
	return Token{Kind: kind, Text: src[i:j], Pos: pos}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
