package cc

// Expression parsing: precedence climbing over the full C operator set.

// binPrec maps binary operators to precedence; higher binds tighter.
// Assignment and ?: are handled separately (right-associative).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, "&=": true, "^=": true, "|=": true,
}

// parseExpr parses a full expression including the comma operator.
func (p *Parser) parseExpr() Expr {
	e := p.parseAssignExpr()
	for p.atPunct(",") {
		pos := p.next().Pos
		rhs := p.parseAssignExpr()
		e = &CommaExpr{X: e, Y: rhs, Pos_: pos}
	}
	return e
}

// parseAssignExpr parses an assignment-expression.
func (p *Parser) parseAssignExpr() Expr {
	lhs := p.parseCondExpr()
	t := p.tok()
	if t.Kind == Punct && assignOps[t.Text] {
		p.next()
		rhs := p.parseAssignExpr()
		return &AssignExpr{Op: t.Text, L: lhs, R: rhs, Pos_: t.Pos}
	}
	return lhs
}

// parseCondExpr parses a conditional-expression.
func (p *Parser) parseCondExpr() Expr {
	cond := p.parseBinary(1)
	if !p.atPunct("?") {
		return cond
	}
	pos := p.next().Pos
	// GNU extension: `a ?: b` means `a ? a : b`.
	if p.atPunct(":") {
		p.next()
		els := p.parseCondExpr()
		return &CondExpr{Cond: cond, Then: cond, Else: els, Pos_: pos}
	}
	then := p.parseExpr()
	p.expect(":")
	els := p.parseCondExpr()
	return &CondExpr{Cond: cond, Then: then, Else: els, Pos_: pos}
}

// parseBinary parses binary operators with precedence >= min.
func (p *Parser) parseBinary(min int) Expr {
	lhs := p.parseCast()
	for {
		t := p.tok()
		if t.Kind != Punct {
			return lhs
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < min {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Op: t.Text, X: lhs, Y: rhs, Pos_: t.Pos}
	}
}

// parseCast parses cast-expression: (type-name) cast-expression | unary.
func (p *Parser) parseCast() Expr {
	if p.atPunct("(") && p.castParen() {
		pos := p.next().Pos
		tn := p.parseTypeName()
		p.expect(")")
		// `(T){...}` compound literal: treat the braced initializer as an
		// anonymous object; conservatively parse and ignore designators.
		if p.atPunct("{") {
			init := p.parseInit()
			return &CastExpr{Type: tn, X: compoundLiteralExpr(init, pos), Pos_: pos}
		}
		x := p.parseCast()
		return &CastExpr{Type: tn, X: x, Pos_: pos}
	}
	return p.parseUnary()
}

// compoundLiteralExpr flattens a compound literal's scalar initializers
// into a comma expression so the frontend still sees the value flows.
func compoundLiteralExpr(init *Init, pos Pos) Expr {
	var exprs []Expr
	var walk func(*Init)
	walk = func(i *Init) {
		if i == nil {
			return
		}
		if i.Expr != nil {
			exprs = append(exprs, i.Expr)
		}
		for _, it := range i.List {
			walk(it)
		}
	}
	walk(init)
	if len(exprs) == 0 {
		return &IntExpr{Text: "0", Pos_: pos}
	}
	e := exprs[0]
	for _, x := range exprs[1:] {
		e = &CommaExpr{X: e, Y: x, Pos_: pos}
	}
	return e
}

// castParen reports whether '(' begins a cast (i.e. is followed by a
// type-name).
func (p *Parser) castParen() bool {
	save := p.pos
	defer func() { p.pos = save }()
	p.next() // '('
	return p.atTypeStart()
}

func (p *Parser) parseUnary() Expr {
	t := p.tok()
	if t.Kind == Punct {
		switch t.Text {
		case "&", "*", "+", "-", "~", "!":
			p.next()
			x := p.parseCast()
			return &UnaryExpr{Op: t.Text, X: x, Pos_: t.Pos}
		case "++", "--":
			p.next()
			x := p.parseUnary()
			return &UnaryExpr{Op: t.Text, X: x, Pos_: t.Pos}
		}
	}
	if t.Kind == Keyword && t.Text == "sizeof" {
		p.next()
		if p.atPunct("(") && p.castParen() {
			p.next()
			tn := p.parseTypeName()
			p.expect(")")
			return &SizeofExpr{Type: tn, Pos_: t.Pos}
		}
		x := p.parseUnary()
		return &SizeofExpr{X: x, Pos_: t.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		t := p.tok()
		if t.Kind != Punct {
			return e
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			e = &IndexExpr{X: e, Index: idx, Pos_: t.Pos}
		case "(":
			p.next()
			call := &CallExpr{Fun: e, Pos_: t.Pos}
			for !p.atPunct(")") && !p.at(EOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.atPunct(",") {
					break
				}
				p.next()
			}
			p.expect(")")
			e = call
		case ".", "->":
			p.next()
			if !p.at(Ident) {
				p.errorf("expected field name after %q", t.Text)
				return e
			}
			f := p.next().Text
			e = &MemberExpr{X: e, Field: f, Arrow: t.Text == "->", Pos_: t.Pos}
		case "++", "--":
			p.next()
			e = &PostfixExpr{Op: t.Text, X: e, Pos_: t.Pos}
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.tok()
	switch t.Kind {
	case Ident:
		p.next()
		return &IdentExpr{Name: t.Text, Pos_: t.Pos}
	case IntLit:
		p.next()
		return &IntExpr{Text: t.Text, Pos_: t.Pos}
	case FloatLit:
		p.next()
		return &FloatExpr{Text: t.Text, Pos_: t.Pos}
	case CharLit:
		p.next()
		return &CharExpr{Text: t.Text, Pos_: t.Pos}
	case StringLit:
		p.next()
		// Adjacent string literals concatenate.
		for p.at(StringLit) {
			p.next()
		}
		return &StringExpr{Text: t.Text, Pos_: t.Pos}
	case Punct:
		if t.Text == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errorf("expected expression, found %q", t.Text)
	p.next()
	return &IntExpr{Text: "0", Pos_: t.Pos}
}
