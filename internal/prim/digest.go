package prim

import "cla/internal/srchash"

// Digest fingerprints the entire database — every symbol field, every
// assignment, call site and function record, in order — into one 64-bit
// FNV-1a value. Two programs with equal digests are (up to hash
// collision) the same database, so a deterministic solver produces the
// same result for both: the incremental pipeline keys its cached
// fixpoint on this value and the solvers' warm-start entry points reuse
// a previous result when it matches. Everything queryable is covered,
// including metadata the solve itself ignores (types, locations, caller
// names): a comment-only edit that shifts line numbers changes the
// digest, because lint findings and dependence chains render those
// locations.
func (p *Program) Digest() uint64 {
	h := srchash.Offset()
	fold := func(s string) {
		h = srchash.FoldU32(h, uint32(len(s)))
		h = srchash.FoldString(h, s)
	}
	h = srchash.FoldU32(h, uint32(len(p.Syms)))
	for i := range p.Syms {
		s := &p.Syms[i]
		fold(s.Name)
		fold(s.Type)
		fold(s.Loc.File)
		fold(s.FuncName)
		h = srchash.FoldU32(h, uint32(s.Loc.Line))
		flags := uint32(s.Kind)
		if s.FuncPtr {
			flags |= 1 << 8
		}
		if s.Internal {
			flags |= 1 << 9
		}
		if s.Defined {
			flags |= 1 << 10
		}
		h = srchash.FoldU32(h, flags)
	}
	h = srchash.FoldU32(h, uint32(len(p.Assigns)))
	for i := range p.Assigns {
		a := &p.Assigns[i]
		h = srchash.FoldU32(h, uint32(a.Kind)|uint32(a.Op)<<8|uint32(a.Strength)<<16)
		h = srchash.FoldU32(h, uint32(a.Dst))
		h = srchash.FoldU32(h, uint32(a.Src))
		fold(a.Loc.File)
		h = srchash.FoldU32(h, uint32(a.Loc.Line))
		fold(a.Func)
	}
	h = srchash.FoldU32(h, uint32(len(p.Calls)))
	for i := range p.Calls {
		c := &p.Calls[i]
		h = srchash.FoldU32(h, uint32(c.Callee))
		fold(c.Caller)
		fold(c.Loc.File)
		h = srchash.FoldU32(h, uint32(c.Loc.Line))
		flags := uint32(c.Args) << 1
		if c.Indirect {
			flags |= 1
		}
		h = srchash.FoldU32(h, flags)
	}
	h = srchash.FoldU32(h, uint32(len(p.Funcs)))
	for i := range p.Funcs {
		f := &p.Funcs[i]
		h = srchash.FoldU32(h, uint32(f.Func))
		h = srchash.FoldU32(h, uint32(len(f.Params)))
		for _, pa := range f.Params {
			h = srchash.FoldU32(h, uint32(pa))
		}
		h = srchash.FoldU32(h, uint32(f.Ret))
		if f.Variadic {
			h = srchash.FoldU32(h, 1)
		} else {
			h = srchash.FoldU32(h, 0)
		}
	}
	return h
}
