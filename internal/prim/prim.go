// Package prim defines the primitive-assignment intermediate representation
// shared by the compile, link and analyze phases of CLA.
//
// The compile phase breaks every C assignment, initializer, function call,
// argument binding and return down into primitive assignments involving at
// most one pointer operation. Exactly five kinds exist, matching the paper's
// intermediate language:
//
//	x = y      (Simple)
//	x = &y     (Base)
//	*x = y     (StoreInd)
//	x = *y     (LoadInd)
//	*x = *y    (CopyInd)
//
// Each primitive assignment additionally records the strength of the C
// operation it came from (Table 1 of the paper) and its source location, so
// that the dependence analysis can rank and print chains.
package prim

import "fmt"

// Kind identifies one of the five primitive assignment forms.
type Kind uint8

// The five primitive assignment kinds.
const (
	Simple   Kind = iota // x = y
	Base                 // x = &y
	StoreInd             // *x = y
	LoadInd              // x = *y
	CopyInd              // *x = *y
	numKinds
)

// NumKinds is the number of distinct primitive assignment kinds.
const NumKinds = int(numKinds)

func (k Kind) String() string {
	switch k {
	case Simple:
		return "x = y"
	case Base:
		return "x = &y"
	case StoreInd:
		return "*x = y"
	case LoadInd:
		return "x = *y"
	case CopyInd:
		return "*x = *y"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the five defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// Strength classifies how strongly an operation propagates the shape and
// size of its input data (Table 1). Dependencies through Strong operations
// matter most for consistent type changes; None operations sever the
// dependence entirely.
type Strength uint8

const (
	// None: the operation's result range does not depend on the argument
	// (e.g. !, &&, ||, or the shift amount of >>).
	None Strength = iota
	// Weak: the result range depends loosely on the argument
	// (e.g. *, %, and the shifted operand of >> and <<).
	Weak
	// Strong: the result is shape/size preserving (e.g. +, -, |, &, ^,
	// unary +/- and plain copies).
	Strong
)

func (s Strength) String() string {
	switch s {
	case None:
		return "none"
	case Weak:
		return "weak"
	case Strong:
		return "strong"
	}
	return fmt.Sprintf("Strength(%d)", uint8(s))
}

// Op identifies the C operation an assignment flowed through, for printing
// dependence chains ("x = y+1" is more important than "x = y<<3").
type Op uint8

// Operations recorded on primitive assignments. OpCopy is a plain
// assignment with no intervening operation.
const (
	OpCopy Op = iota
	OpAdd     // +
	OpSub     // -
	OpOr      // |
	OpAnd     // &
	OpXor     // ^
	OpMul     // *
	OpDiv     // /
	OpMod     // %
	OpShr     // >>
	OpShl     // <<
	OpNeg     // unary -
	OpPos     // unary +
	OpNot     // !
	OpLAnd    // &&
	OpLOr     // ||
	OpCmpl    // ~
	OpCmp     // relational/equality operators
	OpCast    // type cast
	OpCond    // ?: merge
	numOps
)

var opNames = [...]string{
	OpCopy: "copy", OpAdd: "+", OpSub: "-", OpOr: "|", OpAnd: "&",
	OpXor: "^", OpMul: "*", OpDiv: "/", OpMod: "%", OpShr: ">>",
	OpShl: "<<", OpNeg: "u-", OpPos: "u+", OpNot: "!", OpLAnd: "&&",
	OpLOr: "||", OpCmpl: "~", OpCmp: "cmp", OpCast: "cast", OpCond: "?:",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// StrengthOf returns the Table 1 classification for operand position arg
// (0-based) of operation op. Positions beyond the table default to None.
//
//	+, -, |, &, ^      Strong / Strong
//	*                  Weak / Weak
//	%, >>, <<          Weak / None
//	unary +, -         Strong
//	&&, ||             None / None
//	!                  None
func StrengthOf(op Op, arg int) Strength {
	switch op {
	case OpCopy, OpCast, OpCond:
		// ?: has two value arms; copies and casts have one operand.
		if arg <= 1 {
			return Strong
		}
	case OpAdd, OpSub, OpOr, OpAnd, OpXor:
		if arg <= 1 {
			return Strong
		}
	case OpMul:
		if arg <= 1 {
			return Weak
		}
	case OpDiv:
		// Division behaves like % for its left operand: the result range
		// depends loosely on the dividend, not at all on the divisor.
		if arg == 0 {
			return Weak
		}
	case OpMod, OpShr, OpShl:
		if arg == 0 {
			return Weak
		}
	case OpNeg, OpPos, OpCmpl:
		if arg == 0 {
			return Strong
		}
	case OpNot, OpLAnd, OpLOr, OpCmp:
		return None
	}
	return None
}

// Loc is a source location.
type Loc struct {
	File string
	Line int32
}

func (l Loc) String() string {
	if l.File == "" {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// IsZero reports whether the location is unset.
func (l Loc) IsZero() bool { return l.File == "" && l.Line == 0 }

// SymID identifies a symbol within one object database. IDs are dense
// indexes assigned by the compile phase and remapped by the linker.
type SymID int32

// NoSym is the zero SymID sentinel for "no symbol".
const NoSym SymID = -1

// SymKind classifies database symbols.
type SymKind uint8

// Symbol kinds. Linkage is determined by kind: Global, Field, Func and the
// standardized Param/Ret symbols link across translation units by name;
// Static, Local, Temp and Heap symbols are private to their unit.
const (
	SymGlobal SymKind = iota // file-scope object with external linkage
	SymStatic                // file-scope object with internal linkage
	SymLocal                 // function-scope object
	SymField                 // struct/union field variable "S::f" (field-based mode)
	SymTemp                  // compiler-introduced temporary
	SymHeap                  // a static occurrence of malloc/calloc/...
	SymFunc                  // a function
	SymParam                 // standardized parameter "f$N"
	SymRet                   // standardized return "f$ret"
	SymString                // a string literal object (when modeled)
	SymExtern                // the abstract external-world object (extmodel)
	numSymKinds
)

// NumSymKinds is the number of distinct symbol kinds.
const NumSymKinds = int(numSymKinds)

var symKindNames = [...]string{
	SymGlobal: "global", SymStatic: "static", SymLocal: "local",
	SymField: "field", SymTemp: "temp", SymHeap: "heap",
	SymFunc: "func", SymParam: "param", SymRet: "ret", SymString: "string",
	SymExtern: "extern",
}

func (k SymKind) String() string {
	if int(k) < len(symKindNames) {
		return symKindNames[k]
	}
	return fmt.Sprintf("SymKind(%d)", uint8(k))
}

// Linked reports whether symbols of this kind are merged across translation
// units by name during the link phase.
func (k SymKind) Linked() bool {
	switch k {
	case SymGlobal, SymField, SymFunc, SymParam, SymRet:
		return true
	}
	return false
}

// Symbol is an object-database symbol: a program object the analysis can
// compute facts about.
type Symbol struct {
	Name     string // source name, or synthesized (S::f, f$1, heap@file:line)
	Kind     SymKind
	Type     string // printable C type, for chain output
	Loc      Loc    // declaration site
	FuncName string // enclosing function for locals/temps/params
	// FuncPtr marks symbols that are stored through as function pointers;
	// the analyzer links argument/return variables when functions reach
	// their points-to sets.
	FuncPtr bool
	// Internal forces internal linkage regardless of kind (e.g. static
	// functions and their standardized parameter/return symbols).
	Internal bool
	// Defined records whether this translation unit (or, after linking, any
	// linked unit) contains a defining occurrence of the symbol: a function
	// body, or an object declaration that reserves storage. Meaningful for
	// SymGlobal and SymFunc only; a linked symbol with Defined false is a
	// referenced-but-undefined external (see internal/extmodel).
	Defined bool
}

// LinksByName reports whether the linker merges this symbol with
// same-named symbols from other translation units.
func (s *Symbol) LinksByName() bool { return s.Kind.Linked() && !s.Internal }

func (s Symbol) String() string {
	return fmt.Sprintf("%s/%s <%s>", s.Name, s.Type, s.Loc)
}

// Assign is one primitive assignment. Dst and Src identify the symbols on
// each side; Kind says how they are related. For Base assignments Src is
// the object whose address is taken.
type Assign struct {
	Kind     Kind
	Dst      SymID
	Src      SymID
	Op       Op
	Strength Strength
	Loc      Loc
	// Func is the enclosing function's name, or "" for assignments lowered
	// at file scope (global initializers). Analysis clients use it to
	// attribute indirect stores and loads to the frame they execute in.
	Func string
}

func (a Assign) String() string {
	switch a.Kind {
	case Simple:
		return fmt.Sprintf("#%d = #%d", a.Dst, a.Src)
	case Base:
		return fmt.Sprintf("#%d = &#%d", a.Dst, a.Src)
	case StoreInd:
		return fmt.Sprintf("*#%d = #%d", a.Dst, a.Src)
	case LoadInd:
		return fmt.Sprintf("#%d = *#%d", a.Dst, a.Src)
	case CopyInd:
		return fmt.Sprintf("*#%d = *#%d", a.Dst, a.Src)
	}
	return fmt.Sprintf("invalid assign kind %d", a.Kind)
}

// CallSite records one function-call expression in the source: the symbol
// the call goes through (a SymFunc for direct calls, a pointer variable or
// temporary for indirect calls), the enclosing caller and the source
// location. The analyze phase does not need call sites — argument/return
// flow is captured by assignments into standardized parameter symbols —
// but analysis clients (call-graph construction, MOD/REF propagation) do.
type CallSite struct {
	// Callee is the called function symbol (direct calls) or the
	// function-pointer symbol the call dereferences (indirect calls).
	Callee SymID
	// Caller is the enclosing function's name, or "" at file scope.
	Caller string
	Loc    Loc
	// Indirect marks calls through a function pointer; the callee set is
	// then the points-to set of Callee restricted to functions.
	Indirect bool
	// Args is the number of actual arguments at this site.
	Args int
}

// FuncRecord describes a function's standardized parameter and return
// symbols; the analyzer uses it to link indirect calls.
type FuncRecord struct {
	Func     SymID   // the SymFunc symbol
	Params   []SymID // f$1, f$2, ... in order
	Ret      SymID   // f$ret (NoSym for void functions)
	Variadic bool
}

// Program is the fully in-memory form of an object database, used as the
// interchange value between the frontend, the object-file writer and tests.
// The analyzer normally works from an objfile.Reader instead so that it can
// demand-load blocks.
type Program struct {
	Syms    []Symbol
	Assigns []Assign
	Funcs   []FuncRecord
	Calls   []CallSite
}

// AddSym appends a symbol and returns its id.
func (p *Program) AddSym(s Symbol) SymID {
	p.Syms = append(p.Syms, s)
	return SymID(len(p.Syms) - 1)
}

// AddAssign appends a primitive assignment.
func (p *Program) AddAssign(a Assign) { p.Assigns = append(p.Assigns, a) }

// AddCall appends a call-site record.
func (p *Program) AddCall(c CallSite) { p.Calls = append(p.Calls, c) }

// Sym returns the symbol for id. It panics on out-of-range ids, which
// indicate database corruption caught earlier by the objfile reader.
func (p *Program) Sym(id SymID) *Symbol { return &p.Syms[id] }

// CountByKind tallies assignments per kind, the statistic reported in
// Table 2 of the paper.
func (p *Program) CountByKind() [NumKinds]int {
	var n [NumKinds]int
	for _, a := range p.Assigns {
		n[a.Kind]++
	}
	return n
}

// SymIDByName returns the first symbol with the given name, or NoSym.
// Intended for tests and small tools; the objfile target section provides
// the indexed lookup used by the real analyzer.
func (p *Program) SymIDByName(name string) SymID {
	for i := range p.Syms {
		if p.Syms[i].Name == name {
			return SymID(i)
		}
	}
	return NoSym
}

// Validate checks the program's internal consistency: every assignment and
// function record references in-range symbols, kinds are well-formed, and
// function records reference function or function-pointer symbols. The
// linker and the transformers run it in tests to catch id-remapping bugs.
func (p *Program) Validate() error {
	n := SymID(len(p.Syms))
	checkID := func(what string, id SymID) error {
		if id < 0 || id >= n {
			return fmt.Errorf("prim: %s references symbol %d of %d", what, id, n)
		}
		return nil
	}
	for i := range p.Syms {
		if int(p.Syms[i].Kind) >= NumSymKinds {
			return fmt.Errorf("prim: symbol %d has kind %d", i, p.Syms[i].Kind)
		}
	}
	for i, a := range p.Assigns {
		if !a.Kind.Valid() {
			return fmt.Errorf("prim: assignment %d has kind %d", i, a.Kind)
		}
		if err := checkID(fmt.Sprintf("assignment %d dst", i), a.Dst); err != nil {
			return err
		}
		if err := checkID(fmt.Sprintf("assignment %d src", i), a.Src); err != nil {
			return err
		}
	}
	for i, c := range p.Calls {
		if err := checkID(fmt.Sprintf("call site %d", i), c.Callee); err != nil {
			return err
		}
		if c.Args < 0 {
			return fmt.Errorf("prim: call site %d has %d args", i, c.Args)
		}
	}
	for i, f := range p.Funcs {
		if err := checkID(fmt.Sprintf("func record %d", i), f.Func); err != nil {
			return err
		}
		for j, prm := range f.Params {
			if err := checkID(fmt.Sprintf("func record %d param %d", i, j), prm); err != nil {
				return err
			}
		}
		if f.Ret != NoSym {
			if err := checkID(fmt.Sprintf("func record %d ret", i), f.Ret); err != nil {
				return err
			}
		}
	}
	return nil
}
