package prim

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Simple, "x = y"},
		{Base, "x = &y"},
		{StoreInd, "*x = y"},
		{LoadInd, "x = *y"},
		{CopyInd, "*x = *y"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
		if !c.k.Valid() {
			t.Errorf("Kind(%d).Valid() = false, want true", c.k)
		}
	}
	if Kind(99).Valid() {
		t.Error("Kind(99).Valid() = true, want false")
	}
}

// TestStrengthTable1 checks every row of the paper's Table 1.
func TestStrengthTable1(t *testing.T) {
	cases := []struct {
		op Op
		a0 Strength
		a1 Strength
	}{
		{OpAdd, Strong, Strong},
		{OpSub, Strong, Strong},
		{OpOr, Strong, Strong},
		{OpAnd, Strong, Strong},
		{OpXor, Strong, Strong},
		{OpMul, Weak, Weak},
		{OpMod, Weak, None},
		{OpShr, Weak, None},
		{OpShl, Weak, None},
		{OpNeg, Strong, None},
		{OpPos, Strong, None},
		{OpLAnd, None, None},
		{OpLOr, None, None},
		{OpNot, None, None},
	}
	for _, c := range cases {
		if got := StrengthOf(c.op, 0); got != c.a0 {
			t.Errorf("StrengthOf(%v, 0) = %v, want %v", c.op, got, c.a0)
		}
		if got := StrengthOf(c.op, 1); got != c.a1 {
			t.Errorf("StrengthOf(%v, 1) = %v, want %v", c.op, got, c.a1)
		}
	}
}

func TestStrengthOfCopyAndCast(t *testing.T) {
	for _, op := range []Op{OpCopy, OpCast, OpCond} {
		if got := StrengthOf(op, 0); got != Strong {
			t.Errorf("StrengthOf(%v, 0) = %v, want Strong", op, got)
		}
	}
}

func TestStrengthOfOutOfRangeArg(t *testing.T) {
	if got := StrengthOf(OpAdd, 5); got != None {
		t.Errorf("StrengthOf(OpAdd, 5) = %v, want None", got)
	}
}

func TestLocString(t *testing.T) {
	l := Loc{File: "a.c", Line: 12}
	if got := l.String(); got != "a.c:12" {
		t.Errorf("Loc.String() = %q, want %q", got, "a.c:12")
	}
	var zero Loc
	if !zero.IsZero() {
		t.Error("zero Loc.IsZero() = false")
	}
	if got := zero.String(); got != "<unknown>" {
		t.Errorf("zero Loc.String() = %q", got)
	}
}

func TestSymKindLinked(t *testing.T) {
	linked := map[SymKind]bool{
		SymGlobal: true, SymField: true, SymFunc: true,
		SymParam: true, SymRet: true,
		SymStatic: false, SymLocal: false, SymTemp: false,
		SymHeap: false, SymString: false,
	}
	for k, want := range linked {
		if got := k.Linked(); got != want {
			t.Errorf("%v.Linked() = %v, want %v", k, got, want)
		}
	}
}

func TestProgramAddAndCount(t *testing.T) {
	var p Program
	x := p.AddSym(Symbol{Name: "x", Kind: SymGlobal})
	y := p.AddSym(Symbol{Name: "y", Kind: SymGlobal})
	p.AddAssign(Assign{Kind: Simple, Dst: x, Src: y})
	p.AddAssign(Assign{Kind: Base, Dst: x, Src: y})
	p.AddAssign(Assign{Kind: Base, Dst: y, Src: x})

	n := p.CountByKind()
	if n[Simple] != 1 || n[Base] != 2 || n[StoreInd] != 0 {
		t.Errorf("CountByKind = %v", n)
	}
	if got := p.SymIDByName("y"); got != y {
		t.Errorf("SymIDByName(y) = %d, want %d", got, y)
	}
	if got := p.SymIDByName("missing"); got != NoSym {
		t.Errorf("SymIDByName(missing) = %d, want NoSym", got)
	}
	if p.Sym(x).Name != "x" {
		t.Errorf("Sym(x).Name = %q", p.Sym(x).Name)
	}
}

func TestAssignString(t *testing.T) {
	cases := []struct {
		a    Assign
		want string
	}{
		{Assign{Kind: Simple, Dst: 1, Src: 2}, "#1 = #2"},
		{Assign{Kind: Base, Dst: 1, Src: 2}, "#1 = &#2"},
		{Assign{Kind: StoreInd, Dst: 1, Src: 2}, "*#1 = #2"},
		{Assign{Kind: LoadInd, Dst: 1, Src: 2}, "#1 = *#2"},
		{Assign{Kind: CopyInd, Dst: 1, Src: 2}, "*#1 = *#2"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: StrengthOf never exceeds Strong and is None for any argument
// position >= 2, for all operations.
func TestStrengthOfProperty(t *testing.T) {
	f := func(op uint8, arg uint8) bool {
		s := StrengthOf(Op(op%uint8(numOps)), int(arg))
		if s > Strong {
			return false
		}
		if arg >= 2 && s != None {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: symbol String always embeds the name.
func TestSymbolStringProperty(t *testing.T) {
	s := Symbol{Name: "count", Type: "short", Loc: Loc{File: "eg1.c", Line: 3}}
	want := "count/short <eg1.c:3>"
	if got := s.String(); got != want {
		t.Errorf("Symbol.String() = %q, want %q", got, want)
	}
}

func TestValidate(t *testing.T) {
	var p Program
	x := p.AddSym(Symbol{Name: "x", Kind: SymGlobal})
	y := p.AddSym(Symbol{Name: "y", Kind: SymGlobal})
	p.AddAssign(Assign{Kind: Simple, Dst: x, Src: y})
	p.Funcs = append(p.Funcs, FuncRecord{Func: x, Params: []SymID{y}, Ret: NoSym})
	if err := p.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	bad := p
	bad.Assigns = append([]Assign(nil), p.Assigns...)
	bad.Assigns = append(bad.Assigns, Assign{Kind: Simple, Dst: 99, Src: y})
	if bad.Validate() == nil {
		t.Error("out-of-range dst accepted")
	}

	bad2 := p
	bad2.Funcs = []FuncRecord{{Func: 99}}
	if bad2.Validate() == nil {
		t.Error("bad func record accepted")
	}

	bad3 := p
	bad3.Assigns = []Assign{{Kind: Kind(42), Dst: x, Src: y}}
	if bad3.Validate() == nil {
		t.Error("bad kind accepted")
	}
}
