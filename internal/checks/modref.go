package checks

import (
	"sort"

	"cla/internal/parallel"
	"cla/internal/prim"
)

// Summary is one function's MOD/REF summary: the abstract objects it may
// write (MOD) or read (REF) through pointer dereferences, both directly in
// its own body and transitively through the functions it may call
// (following the points-to-resolved call graph).
type Summary struct {
	// Func is the function name ("" collects file-scope initializers).
	Func string `json:"func"`
	// Mod and Ref are sorted object names, including callees' effects.
	Mod []string `json:"mod"`
	Ref []string `json:"ref"`
	// DirectMod and DirectRef restrict to the function's own body.
	DirectMod []string `json:"direct_mod"`
	DirectRef []string `json:"direct_ref"`
	// Incomplete marks summaries that touch the external world: the
	// function (or its callees) reads or writes memory undefined code can
	// also reach, so the lists are lower bounds. Only set when the
	// analysis ran under an extern model.
	Incomplete bool `json:"incomplete,omitempty"`
}

// symSet is a points-to-object accumulator.
type symSet map[prim.SymID]struct{}

// addPts inserts every non-temporary object of set.
func (s symSet) addPts(ix *index, set []prim.SymID) {
	for _, z := range set {
		if ix.sym(z).Kind == prim.SymTemp {
			continue
		}
		s[z] = struct{}{}
	}
}

// union inserts every element of other, reporting whether s grew.
func (s symSet) union(other symSet) bool {
	grew := false
	for z := range other {
		if _, ok := s[z]; !ok {
			s[z] = struct{}{}
			grew = true
		}
	}
	return grew
}

// names renders the set as sorted symbol names.
func (s symSet) names(ix *index) []string {
	ids := make([]prim.SymID, 0, len(s))
	for z := range s {
		ids = append(ids, z)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]string, 0, len(ids))
	for _, z := range ids {
		out = append(out, ix.name(z))
	}
	sort.Strings(out)
	return dedupStrings(out)
}

// modrefSummaries computes per-scope direct MOD/REF sets in parallel, then
// propagates them bottom-up over the call graph to a fixpoint. The
// fixpoint is unique, so the result is identical at every jobs setting.
func modrefSummaries(ix *index, g *Graph, jobs int) ([]Summary, error) {
	type direct struct{ mod, ref symSet }
	scopes := ix.scopes
	dir := make([]direct, len(scopes))
	err := parallel.ForEach(jobs, len(scopes), func(i int) error {
		d := direct{mod: symSet{}, ref: symSet{}}
		for _, ai := range ix.assignsByScope[scopes[i]] {
			a := &ix.prog.Assigns[ai]
			switch a.Kind {
			case prim.StoreInd:
				d.mod.addPts(ix, ix.res.PointsTo(a.Dst))
			case prim.LoadInd:
				d.ref.addPts(ix, ix.res.PointsTo(a.Src))
			case prim.CopyInd:
				d.mod.addPts(ix, ix.res.PointsTo(a.Dst))
				d.ref.addPts(ix, ix.res.PointsTo(a.Src))
			}
		}
		dir[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Transitive closure over the call graph: iterate until no summary
	// grows. Cycles (recursion) converge because unions are monotone.
	idx := make(map[string]int, len(scopes))
	for i, s := range scopes {
		idx[s] = i
	}
	mod := make([]symSet, len(scopes))
	ref := make([]symSet, len(scopes))
	for i := range scopes {
		mod[i] = symSet{}
		ref[i] = symSet{}
		mod[i].union(dir[i].mod)
		ref[i].union(dir[i].ref)
	}
	callees := g.CalleesOf()
	for changed := true; changed; {
		changed = false
		for i, s := range scopes {
			for _, callee := range callees[s] {
				j, ok := idx[callee]
				if !ok {
					continue // callee with no body in the database
				}
				if mod[i].union(mod[j]) {
					changed = true
				}
				if ref[i].union(ref[j]) {
					changed = true
				}
			}
		}
	}

	out := make([]Summary, len(scopes))
	for i, s := range scopes {
		out[i] = Summary{
			Func:      s,
			Mod:       mod[i].names(ix),
			Ref:       ref[i].names(ix),
			DirectMod: dir[i].mod.names(ix),
			DirectRef: dir[i].ref.names(ix),
		}
		if ix.ext != prim.NoSym {
			_, inMod := mod[i][ix.ext]
			_, inRef := ref[i][ix.ext]
			out[i].Incomplete = inMod || inRef
		}
	}
	return out, nil
}
