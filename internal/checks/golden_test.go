package checks

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/gen"
	"cla/internal/linker"
	"cla/internal/prim"
)

// exampleSource extracts the embedded C program from the funcpointers
// example, so the golden expectations below track the example verbatim.
func exampleSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "examples", "funcpointers", "main.go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	const marker = "const source = `"
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		t.Fatalf("%s: embedded C source not found", path)
	}
	rest := data[i+len(marker):]
	j := bytes.IndexByte(rest, '`')
	if j < 0 {
		t.Fatalf("%s: unterminated C source", path)
	}
	return string(rest[:j])
}

// TestGoldenFuncpointers runs the full pipeline plus the call-graph check
// over the examples/funcpointers program under every solver and asserts
// the resolved callee set of its one indirect call site. Subset solvers
// (pretrans, worklist, bitvec) must produce exactly the three handlers;
// the unification solvers may widen the set but never miss a handler or
// leave the site unresolved.
func TestGoldenFuncpointers(t *testing.T) {
	src := exampleSource(t)
	prog, err := frontend.CompileSource("dispatch.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	handlers := []string{"handle_close", "handle_read", "handle_write"}

	subset := map[driver.Solver]bool{
		driver.PreTransitive: true,
		driver.Worklist:      true,
		driver.BitVector:     true,
	}
	for _, s := range []driver.Solver{
		driver.PreTransitive, driver.Worklist, driver.BitVector,
		driver.Steensgaard, driver.OneLevel,
	} {
		res := solve(t, prog, s)
		rep, err := Run(prog, res, Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var indirect []Site
		for _, site := range rep.Graph.Sites {
			if site.Indirect {
				indirect = append(indirect, site)
			}
		}
		if len(indirect) != 1 {
			t.Fatalf("%v: want 1 indirect site, got %+v", s, indirect)
		}
		site := indirect[0]
		if site.Via != "hot" || site.Caller != "serve" {
			t.Errorf("%v: site via=%q caller=%q, want hot/serve", s, site.Via, site.Caller)
		}
		if subset[s] {
			if got := strings.Join(site.Callees, ","); got != strings.Join(handlers, ",") {
				t.Errorf("%v: callees = %s, want %s", s, got, strings.Join(handlers, ","))
			}
		} else {
			have := map[string]bool{}
			for _, c := range site.Callees {
				have[c] = true
			}
			for _, h := range handlers {
				if !have[h] {
					t.Errorf("%v: callee set %v misses %s", s, site.Callees, h)
				}
			}
		}
		// The example program is clean: every deref has targets and no
		// local's address outlives its frame — under any solver.
		if len(rep.Diags) != 0 {
			t.Errorf("%v: unexpected diagnostics: %v", s, rep.Diags)
		}
		// handle_write reads *req, and req binds to &buf_c at the site.
		for _, sum := range rep.ModRef {
			if sum.Func == "handle_write" {
				found := false
				for _, r := range sum.DirectRef {
					if r == "buf_c" {
						found = true
					}
				}
				if !found {
					t.Errorf("%v: handle_write REF = %v, want buf_c", s, sum.DirectRef)
				}
			}
		}
	}
}

// TestDeterminismAcrossJobs renders the full report of a generated
// synthetic workload at Jobs=1 and Jobs=8 and requires byte-identical
// output, including the DOT and JSON renderings of the call graph.
func TestDeterminismAcrossJobs(t *testing.T) {
	profile := gen.Table2[0].Scale(0.05) // small nethack-shaped workload
	code := gen.Generate(profile, 42)
	prog, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := solve(t, prog, driver.PreTransitive)

	render := func(jobs int) []byte {
		rep, err := Run(prog, res, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var b bytes.Buffer
		rep.Format(&b)
		b.WriteString(rep.Graph.DOT())
		js, err := rep.Graph.JSON()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		b.Write(js)
		for _, s := range rep.ModRef {
			b.WriteString(s.Func)
			b.WriteString(strings.Join(s.Mod, ","))
			b.WriteString(strings.Join(s.Ref, ","))
		}
		return b.Bytes()
	}

	one := render(1)
	eight := render(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("output differs between -j 1 and -j 8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", one, eight)
	}
	if len(one) == 0 {
		t.Fatal("empty report; workload produced nothing to check")
	}
}

// TestChecksOverLinkedUnits exercises the call-site path through the
// linker: two units, a function pointer set in one and called in the
// other.
func TestChecksOverLinkedUnits(t *testing.T) {
	units := map[string]string{
		"a.c": `
void handler(void) { }
void (*cb)(void);
void install(void) { cb = handler; }
`,
		"b.c": `
extern void (*cb)(void);
void drive(void) { cb(); }
`,
	}
	var progs []*prim.Program
	for _, name := range []string{"a.c", "b.c"} {
		p, err := frontend.CompileSource(name, units[name], nil, frontend.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		progs = append(progs, p)
	}
	prog, err := linker.Link(progs)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	res, err := driver.AnalyzeProgram(prog, driver.PreTransitive, core.DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	rep, err := Run(prog, res, Options{})
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	var sites []Site
	for _, s := range rep.Graph.Sites {
		if s.Indirect {
			sites = append(sites, s)
		}
	}
	if len(sites) != 1 || sites[0].Caller != "drive" {
		t.Fatalf("want one indirect site in drive, got %+v", sites)
	}
	if got := strings.Join(sites[0].Callees, ","); got != "handler" {
		t.Errorf("callees = %s, want handler", got)
	}
}
