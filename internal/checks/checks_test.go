package checks

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

// compile lowers src as one translation unit named test.c.
func compile(t *testing.T, src string) *prim.Program {
	t.Helper()
	prog, err := frontend.CompileSource("test.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return prog
}

// solve runs the named solver over prog.
func solve(t *testing.T, prog *prim.Program, s driver.Solver) pts.Result {
	t.Helper()
	res, err := driver.AnalyzeProgram(prog, s, core.DefaultConfig())
	if err != nil {
		t.Fatalf("solve %v: %v", s, err)
	}
	return res
}

// runAll compiles src and runs every check with the default solver.
func runAll(t *testing.T, src string) (*prim.Program, *Report) {
	t.Helper()
	prog := compile(t, src)
	res := solve(t, prog, driver.PreTransitive)
	rep, err := Run(prog, res, Options{})
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	return prog, rep
}

// diagStrings renders all diagnostics of one check.
func diagStrings(rep *Report, c Check) []string {
	var out []string
	for _, d := range rep.Diags {
		if d.Check == c {
			out = append(out, d.String())
		}
	}
	return out
}

func wantDiags(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// ---------- call graph ----------

const dispatchSrc = `
void fa(void) { }
void fb(void) { }
void (*fp)(void);
void pick(int which) {
	if (which) { fp = fa; } else { fp = fb; }
}
void run(void) {
	fa();
	fp();
}
`

func TestCallGraphResolvesIndirectSite(t *testing.T) {
	_, rep := runAll(t, dispatchSrc)
	if rep.Graph == nil {
		t.Fatal("no call graph")
	}
	var indirect *Site
	for i := range rep.Graph.Sites {
		if rep.Graph.Sites[i].Indirect {
			if indirect != nil {
				t.Fatalf("expected one indirect site, got more: %+v", rep.Graph.Sites)
			}
			indirect = &rep.Graph.Sites[i]
		}
	}
	if indirect == nil {
		t.Fatal("no indirect call site recorded")
	}
	if indirect.Via != "fp" || indirect.Caller != "run" {
		t.Errorf("site via=%q caller=%q, want fp/run", indirect.Via, indirect.Caller)
	}
	if indirect.Loc.File != "test.c" || indirect.Loc.Line != 10 {
		t.Errorf("site at %s, want test.c:10", indirect.Loc)
	}
	if got, want := strings.Join(indirect.Callees, ","), "fa,fb"; got != want {
		t.Errorf("callees = %s, want %s", got, want)
	}
	// The direct edge is folded in too, and no unresolved diagnostics.
	callees := rep.Graph.CalleesOf()
	if got, want := strings.Join(callees["run"], ","), "fa,fb"; got != want {
		t.Errorf("callees of run = %s, want %s", got, want)
	}
	if ds := diagStrings(rep, CallGraph); len(ds) != 0 {
		t.Errorf("unexpected callgraph diagnostics: %q", ds)
	}
}

func TestCallGraphUnresolvedSite(t *testing.T) {
	_, rep := runAll(t, `
void (*dead)(void);
void trip(void) { dead(); }
`)
	wantDiags(t, diagStrings(rep, CallGraph), []string{
		"test.c:3: [callgraph] indirect call through 'dead' resolves to no function (points-to set has no function targets) (in trip)",
	})
}

func TestCallGraphDOTAndJSON(t *testing.T) {
	_, rep := runAll(t, dispatchSrc)
	dot := rep.Graph.DOT()
	for _, want := range []string{
		"digraph callgraph {",
		`"run" -> "fa";`,                // direct call
		`"run" -> "fa" [style=dashed];`, // via fp
		`"run" -> "fb" [style=dashed];`, // via fp
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	js, err := rep.Graph.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !bytes.Contains(js, []byte(`"indirect": true`)) {
		t.Errorf("JSON missing indirect site:\n%s", js)
	}
}

// ---------- MOD/REF ----------

func modrefByFunc(rep *Report) map[string]Summary {
	out := map[string]Summary{}
	for _, s := range rep.ModRef {
		out[s.Func] = s
	}
	return out
}

func TestModRefDirectAndTransitive(t *testing.T) {
	_, rep := runAll(t, `
int g1, g2, val;
int *p, *q;
void setup(void) { p = &g1; q = &g2; }
void writer(void) { *p = val; }
void reader(int x) { x = *q; }
void outer(void) { writer(); reader(0); }
`)
	byFunc := modrefByFunc(rep)
	if got := strings.Join(byFunc["writer"].DirectMod, ","); got != "g1" {
		t.Errorf("writer direct MOD = %q, want g1", got)
	}
	if got := strings.Join(byFunc["reader"].DirectRef, ","); got != "g2" {
		t.Errorf("reader direct REF = %q, want g2", got)
	}
	// outer has no derefs of its own but inherits both callees' effects.
	out := byFunc["outer"]
	if len(out.DirectMod) != 0 || len(out.DirectRef) != 0 {
		t.Errorf("outer direct sets should be empty: %+v", out)
	}
	if got := strings.Join(out.Mod, ","); got != "g1" {
		t.Errorf("outer MOD = %q, want g1", got)
	}
	if got := strings.Join(out.Ref, ","); got != "g2" {
		t.Errorf("outer REF = %q, want g2", got)
	}
}

func TestModRefThroughIndirectCall(t *testing.T) {
	_, rep := runAll(t, `
int cell, val;
int *wp;
void hit(void) { *wp = val; }
void (*h)(void);
void install(void) { wp = &cell; h = hit; }
void fire(void) { h(); }
`)
	byFunc := modrefByFunc(rep)
	if got := strings.Join(byFunc["fire"].Mod, ","); got != "cell" {
		t.Errorf("fire MOD = %q, want cell (via indirect call to hit)", got)
	}
}

func TestModRefRecursionConverges(t *testing.T) {
	_, rep := runAll(t, `
int a, b;
int *pa, *pb;
void odd(int n);
void even(int n) { *pa = n; odd(n); }
void odd(int n) { *pb = n; even(n); }
void init(void) { pa = &a; pb = &b; }
`)
	byFunc := modrefByFunc(rep)
	for _, f := range []string{"even", "odd"} {
		if got := strings.Join(byFunc[f].Mod, ","); got != "a,b" {
			t.Errorf("%s MOD = %q, want a,b", f, got)
		}
	}
}

// ---------- escape ----------

func TestEscapeToGlobalAndReturn(t *testing.T) {
	_, rep := runAll(t, `
int *leak;
int *grab(void) {
	int x;
	int y;
	leak = &x;
	return &y;
}
`)
	wantDiags(t, diagStrings(rep, Escape), []string{
		"test.c:4: [escape] address of local 'x' may be stored in global 'leak', outliving its frame (in grab)",
		"test.c:5: [escape] address of local 'y' may be returned by 'grab', outliving its frame (in grab)",
	})
}

func TestEscapeViaHeapAndField(t *testing.T) {
	_, rep := runAll(t, `
struct node { int *slot; };
struct node box;
int **mem;
void *malloc(unsigned long);
void stash(void) {
	int v;
	int w;
	box.slot = &v;
	*mem = &w;
}
void seed(void) { mem = (int**)malloc(8); }
`)
	wantDiags(t, diagStrings(rep, Escape), []string{
		"test.c:7: [escape] address of local 'v' may be stored in field 'node.slot', outliving its frame (in stash)",
		"test.c:8: [escape] address of local 'w' may be stored in heap 'heap@test.c:12#1', outliving its frame (in stash)",
	})
}

func TestNoEscapeForSafeLocals(t *testing.T) {
	_, rep := runAll(t, `
int observe(int *p) { return *p; }
int use(void) {
	int x;
	int *lp;
	lp = &x;
	return observe(&x);
}
`)
	if ds := diagStrings(rep, Escape); len(ds) != 0 {
		t.Errorf("safe locals flagged: %q", ds)
	}
}

// ---------- deref ----------

func TestDerefEmptySet(t *testing.T) {
	_, rep := runAll(t, `
int g, val;
int *set, *unset;
void init(void) { set = &g; }
void ok(void)   { *set = val; }
void bad(void)  { *unset = val; }
void worse(int x) { x = *unset; }
`)
	wantDiags(t, diagStrings(rep, Deref), []string{
		"test.c:6: [deref] dereference of 'unset' whose points-to set is empty (null or uninitialized pointer?) (in bad)",
		"test.c:7: [deref] dereference of 'unset' whose points-to set is empty (null or uninitialized pointer?) (in worse)",
	})
}

func TestDerefCopyBothSides(t *testing.T) {
	_, rep := runAll(t, `
int *dst, *src;
void move(void) { *dst = *src; }
`)
	got := diagStrings(rep, Deref)
	if len(got) != 2 {
		t.Fatalf("want both sides of *dst = *src reported, got %q", got)
	}
}

// ---------- engine ----------

func TestCheckSelection(t *testing.T) {
	prog := compile(t, dispatchSrc)
	res := solve(t, prog, driver.PreTransitive)
	rep, err := Run(prog, res, Options{Checks: []Check{Deref}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph != nil || rep.ModRef != nil {
		t.Error("disabled checks produced output")
	}
	// modref alone builds the graph internally but does not attach it.
	rep, err = Run(prog, res, Options{Checks: []Check{ModRef}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph != nil {
		t.Error("graph attached without callgraph check")
	}
	if rep.ModRef == nil {
		t.Error("modref missing")
	}
}

func TestParseChecks(t *testing.T) {
	if _, err := ParseChecks([]string{"callgraph", "deref"}); err != nil {
		t.Errorf("valid names rejected: %v", err)
	}
	if _, err := ParseChecks([]string{"nosuch"}); err == nil {
		t.Error("bad name accepted")
	}
}

func TestDiagnosticsSortedByLocation(t *testing.T) {
	_, rep := runAll(t, `
int w;
int *u1, *u2;
void z(void) { *u2 = w; }
void a(void) { *u1 = w; }
`)
	if len(rep.Diags) < 2 {
		t.Fatalf("want at least 2 diagnostics, got %d", len(rep.Diags))
	}
	for i := 1; i < len(rep.Diags); i++ {
		if rep.Diags[i].Loc.Line < rep.Diags[i-1].Loc.Line {
			t.Fatalf("diagnostics not in line order: %v", rep.Diags)
		}
	}
}

// TestAllSolversResolveDispatch runs the call-graph check under every
// solver; subset solvers give the exact callee set, unification solvers
// may widen it, but nobody may leave the indirect site unresolved.
func TestAllSolversResolveDispatch(t *testing.T) {
	prog := compile(t, dispatchSrc)
	for _, s := range []driver.Solver{
		driver.PreTransitive, driver.Worklist, driver.BitVector,
		driver.Steensgaard, driver.OneLevel,
	} {
		res := solve(t, prog, s)
		rep, err := Run(prog, res, Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Graph == nil {
			t.Fatalf("%v: no graph", s)
		}
		for _, site := range rep.Graph.Sites {
			if site.Indirect && len(site.Callees) == 0 {
				t.Errorf("%v: unresolved indirect site %+v", s, site)
			}
		}
	}
}

func ExampleReport_Format() {
	prog, _ := frontend.CompileSource("ex.c", `
int x;
int *wild;
void boom(void) { *wild = x; }
`, nil, frontend.Options{})
	res, _ := driver.AnalyzeProgram(prog, driver.PreTransitive, core.DefaultConfig())
	rep, _ := Run(prog, res, Options{})
	rep.Format(os.Stdout)
	// Output:
	// ex.c:4: [deref] dereference of 'wild' whose points-to set is empty (null or uninitialized pointer?) (in boom)
}
