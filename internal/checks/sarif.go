package checks

import "encoding/json"

// SARIF 2.1.0 output, so findings load into standard code-review tooling
// (GitHub code scanning, VS Code SARIF viewers, ...). The renderer maps
// each Diagnostic to one result and attaches the soundness audit, when
// present, as a run property. Output is fully determined by the Report:
// fixed rule table, results in Diags order (already sorted), and
// struct-driven JSON field order.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool       sarifTool      `json:"tool"`
	Results    []sarifResult  `json:"results"`
	Properties *sarifRunProps `json:"properties,omitempty"`
}

type sarifRunProps struct {
	ExternAudit *Audit `json:"externAudit,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultConfig    sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	Physical *sarifPhysical `json:"physicalLocation,omitempty"`
	Logical  []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	Artifact sarifArtifact `json:"artifactLocation"`
	Region   *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

type sarifLogical struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
	Kind               string `json:"kind"`
}

// sarifRules is the fixed rule table, in canonical check order. The
// externs audit reports at "note" level: it describes the soundness of the
// analysis itself rather than a defect in the program.
var sarifRules = []struct {
	check Check
	desc  string
	level string
}{
	{CallGraph, "Indirect call site resolves to no function target.", "warning"},
	{ModRef, "MOD/REF summary finding.", "warning"},
	{Escape, "Address of a stack local may outlive its frame.", "warning"},
	{Deref, "Dereference of a pointer with an empty points-to set.", "warning"},
	{Externs, "Incomplete-program soundness audit: undefined externals and downgraded verdicts.", "note"},
}

// SARIF renders the report as a SARIF 2.1.0 log.
func (r *Report) SARIF() ([]byte, error) {
	driver := sarifDriver{
		Name:           "clalint",
		InformationURI: "https://github.com/cla/cla",
	}
	ruleIndex := map[Check]int{}
	ruleLevel := map[Check]string{}
	for i, rr := range sarifRules {
		ruleIndex[rr.check] = i
		ruleLevel[rr.check] = rr.level
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               string(rr.check),
			ShortDescription: sarifMessage{Text: rr.desc},
			DefaultConfig:    sarifConfig{Level: rr.level},
		})
	}

	results := make([]sarifResult, 0, len(r.Diags))
	for _, d := range r.Diags {
		res := sarifResult{
			RuleID:    string(d.Check),
			RuleIndex: ruleIndex[d.Check],
			Level:     ruleLevel[d.Check],
			Message:   sarifMessage{Text: d.Message},
		}
		loc := sarifLocation{}
		if d.Loc.File != "" {
			phys := &sarifPhysical{Artifact: sarifArtifact{URI: d.Loc.File}}
			if d.Loc.Line > 0 {
				phys.Region = &sarifRegion{StartLine: int(d.Loc.Line)}
			}
			loc.Physical = phys
		}
		if d.Func != "" {
			loc.Logical = []sarifLogical{{FullyQualifiedName: d.Func, Kind: "function"}}
		}
		if loc.Physical != nil || loc.Logical != nil {
			res.Locations = []sarifLocation{loc}
		}
		results = append(results, res)
	}

	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: results}
	if r.Audit != nil {
		run.Properties = &sarifRunProps{ExternAudit: r.Audit}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	return json.MarshalIndent(log, "", "  ")
}
