package checks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"cla/internal/parallel"
	"cla/internal/prim"
)

// Site is one resolved call site.
type Site struct {
	Loc prim.Loc `json:"loc"`
	// Caller is the enclosing function's name ("" at file scope).
	Caller string `json:"caller,omitempty"`
	// Via is the symbol the call goes through: the function itself for
	// direct calls, the function-pointer variable for indirect calls.
	Via      string `json:"via"`
	Indirect bool   `json:"indirect"`
	// Callees are the resolved callee function names, sorted. Empty for
	// an unresolved indirect site.
	Callees []string `json:"callees"`
}

// Edge is one call-graph edge. Indirect edges come from resolved
// function-pointer calls.
type Edge struct {
	Caller   string `json:"caller"`
	Callee   string `json:"callee"`
	Indirect bool   `json:"indirect,omitempty"`
}

// Graph is the program call graph derived from direct calls plus
// points-to-resolved indirect calls. Nodes and edges are keyed by function
// name (static functions from different units that share a name merge).
type Graph struct {
	// Funcs are all function symbols' names, sorted and deduplicated.
	Funcs []string `json:"funcs"`
	// Edges are deduplicated and sorted by (caller, callee, indirect).
	Edges []Edge `json:"edges"`
	// Sites are all call sites in (file, line, via) order.
	Sites []Site `json:"sites"`
}

// CalleesOf returns the callee sets per caller, following both direct and
// indirect edges.
func (g *Graph) CalleesOf() map[string][]string {
	out := map[string][]string{}
	seen := map[Edge]bool{}
	for _, e := range g.Edges {
		k := Edge{Caller: e.Caller, Callee: e.Callee}
		if seen[k] {
			continue
		}
		seen[k] = true
		out[e.Caller] = append(out[e.Caller], e.Callee)
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// DOT renders the call graph as a Graphviz digraph; indirect edges are
// dashed.
func (g *Graph) DOT() string {
	var b bytes.Buffer
	fmt.Fprintln(&b, "digraph callgraph {")
	fmt.Fprintln(&b, "  rankdir=LR;")
	fmt.Fprintln(&b, "  node [shape=box, fontsize=10];")
	for _, f := range g.Funcs {
		fmt.Fprintf(&b, "  %q;\n", f)
	}
	for _, e := range g.Edges {
		caller := e.Caller
		if caller == "" {
			caller = "<toplevel>"
		}
		if e.Indirect {
			fmt.Fprintf(&b, "  %q -> %q [style=dashed];\n", caller, e.Callee)
		} else {
			fmt.Fprintf(&b, "  %q -> %q;\n", caller, e.Callee)
		}
	}
	fmt.Fprintln(&b, "}")
	return b.String()
}

// JSON renders the call graph as indented JSON.
func (g *Graph) JSON() ([]byte, error) {
	return json.MarshalIndent(g, "", "  ")
}

// calleeFuncs filters a points-to set down to function symbols.
func calleeFuncs(ix *index, set []prim.SymID) []string {
	var out []string
	for _, z := range set {
		if ix.sym(z).Kind == prim.SymFunc {
			out = append(out, ix.name(z))
		}
	}
	sort.Strings(out)
	return dedupStrings(out)
}

// buildCallGraph resolves every call site (indirect ones via points-to) on
// jobs workers and assembles the graph plus unresolved-site diagnostics.
func buildCallGraph(ix *index, jobs int) (*Graph, []Diagnostic, error) {
	calls := ix.prog.Calls
	sites := make([]Site, len(calls))
	err := parallel.ForEach(jobs, len(calls), func(i int) error {
		c := calls[i]
		s := Site{
			Loc:      c.Loc,
			Caller:   c.Caller,
			Via:      ix.name(c.Callee),
			Indirect: c.Indirect,
		}
		if c.Indirect {
			s.Callees = calleeFuncs(ix, ix.res.PointsTo(c.Callee))
		} else {
			s.Callees = []string{ix.name(c.Callee)}
		}
		sites[i] = s
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	g := &Graph{Sites: sites}
	for _, id := range ix.funcSyms {
		g.Funcs = append(g.Funcs, ix.name(id))
	}
	sort.Strings(g.Funcs)
	g.Funcs = dedupStrings(g.Funcs)

	var diags []Diagnostic
	edgeSeen := map[Edge]bool{}
	for i := range sites {
		s := &sites[i]
		if s.Indirect && len(s.Callees) == 0 {
			diags = append(diags, Diagnostic{
				Check: CallGraph,
				Loc:   s.Loc,
				Func:  s.Caller,
				Message: fmt.Sprintf(
					"indirect call through '%s' resolves to no function (points-to set has no function targets)",
					s.Via),
			})
		}
		for _, callee := range s.Callees {
			e := Edge{Caller: s.Caller, Callee: callee, Indirect: s.Indirect}
			if !edgeSeen[e] {
				edgeSeen[e] = true
				g.Edges = append(g.Edges, e)
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return !a.Indirect && b.Indirect
	})
	sort.SliceStable(g.Sites, func(i, j int) bool {
		a, b := g.Sites[i], g.Sites[j]
		if a.Loc.File != b.Loc.File {
			return a.Loc.File < b.Loc.File
		}
		if a.Loc.Line != b.Loc.Line {
			return a.Loc.Line < b.Loc.Line
		}
		return a.Via < b.Via
	})
	return g, diags, nil
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
