package checks

import (
	"fmt"

	"cla/internal/prim"
)

// derefCheck reports dereference sites whose pointer expression has an
// empty points-to set: nothing the analysis saw ever gave the pointer a
// target, so the dereference is a null/uninitialized-pointer candidate.
// The dereferencing primitives are *x = y (writes through x), x = *y
// (reads through y) and *x = *y (both). Function scopes are checked in
// parallel; each scope's findings keep emission order and the engine's
// final sort makes the whole report deterministic.
func derefCheck(ix *index, jobs int) ([]Diagnostic, error) {
	scopes := ix.scopes
	return forEachSlot(jobs, len(scopes), func(i int) []Diagnostic {
		type key struct {
			sym prim.SymID
			loc prim.Loc
		}
		seen := map[key]bool{}
		var out []Diagnostic
		report := func(p prim.SymID, a *prim.Assign) {
			if len(ix.res.PointsTo(p)) > 0 {
				return
			}
			k := key{p, a.Loc}
			if seen[k] {
				return
			}
			seen[k] = true
			out = append(out, Diagnostic{
				Check: Deref,
				Loc:   a.Loc,
				Func:  a.Func,
				Message: fmt.Sprintf(
					"dereference of '%s' whose points-to set is empty (null or uninitialized pointer?)",
					ix.name(p)),
			})
		}
		for _, ai := range ix.assignsByScope[scopes[i]] {
			a := &ix.prog.Assigns[ai]
			switch a.Kind {
			case prim.StoreInd:
				report(a.Dst, a)
			case prim.LoadInd:
				report(a.Src, a)
			case prim.CopyInd:
				report(a.Dst, a)
				report(a.Src, a)
			}
		}
		return out
	})
}
