package checks

import (
	"fmt"

	"cla/internal/extmodel"
	"cla/internal/prim"
)

// Audit is the incomplete-program soundness report: what the database
// references but does not define, and which verdicts of the other checks
// were downgraded because of it.
type Audit struct {
	// Model is the extern-model label the analysis ran under.
	Model string `json:"model"`
	// Modeled reports whether the external-world object is present, i.e.
	// the database was closed under -extmodel blanket or escape.
	Modeled bool `json:"modeled"`
	// UndefFuncs and UndefGlobals inventory the undefined externals.
	UndefFuncs   []UndefSym `json:"undef_funcs,omitempty"`
	UndefGlobals []UndefSym `json:"undef_globals,omitempty"`
	// DerefDowngraded counts dereference sites whose verdict rests on the
	// external model: the pointer is an undefined extern (its targets all
	// come from the model) or every target is an external-world object.
	// Under -extmodel unsound these would be empty-points-to reports.
	DerefDowngraded int `json:"deref_downgraded"`
	// CallsDowngraded counts indirect call sites whose callee set includes
	// the external stand-in function: their callee lists are open-ended.
	CallsDowngraded int `json:"calls_downgraded"`
	// ModRefIncomplete counts function scopes whose MOD/REF summary
	// touches the external world (filled only when modref also ran).
	ModRefIncomplete int `json:"modref_incomplete"`
}

// UndefSym is one undefined external in the audit inventory.
type UndefSym struct {
	Name string `json:"name"`
	Loc  string `json:"loc"`
	// Calls is the number of direct call sites (functions only).
	Calls int `json:"calls,omitempty"`
}

// externsCheck builds the soundness audit: the undefined-symbol inventory
// (one diagnostic each) plus downgraded-verdict annotations on dereference
// and indirect-call sites whose only evidence is the external model.
func externsCheck(ix *index, jobs int, modelLabel string) ([]Diagnostic, *Audit, error) {
	audit := &Audit{Model: modelLabel, Modeled: ix.ext != prim.NoSym}
	if audit.Model == "" {
		if audit.Modeled {
			audit.Model = "modeled"
		} else {
			audit.Model = extmodel.Unsound.String()
		}
	}

	// Direct call-site counts per callee symbol.
	callCount := map[prim.SymID]int{}
	for _, c := range ix.prog.Calls {
		if !c.Indirect {
			callCount[c.Callee]++
		}
	}

	var diags []Diagnostic
	for _, u := range extmodel.Undefined(ix.prog) {
		entry := UndefSym{Name: u.Name, Loc: u.Loc.String(), Calls: callCount[u.Sym]}
		var msg string
		switch {
		case u.Kind == prim.SymFunc && audit.Modeled:
			msg = fmt.Sprintf(
				"undefined function '%s' (%d call sites) modeled as external code: arguments escape, results are external",
				u.Name, entry.Calls)
			audit.UndefFuncs = append(audit.UndefFuncs, entry)
		case u.Kind == prim.SymFunc:
			msg = fmt.Sprintf(
				"undefined function '%s' (%d call sites) not modeled: its results point nowhere; rerun with -extmodel blanket or escape",
				u.Name, entry.Calls)
			audit.UndefFuncs = append(audit.UndefFuncs, entry)
		case audit.Modeled:
			msg = fmt.Sprintf(
				"undefined extern global '%s' modeled as external memory", u.Name)
			audit.UndefGlobals = append(audit.UndefGlobals, entry)
		default:
			msg = fmt.Sprintf(
				"undefined extern global '%s' not modeled: reads from it point nowhere; rerun with -extmodel blanket or escape",
				u.Name)
			audit.UndefGlobals = append(audit.UndefGlobals, entry)
		}
		diags = append(diags, Diagnostic{Check: Externs, Loc: u.Loc, Message: msg})
	}
	if !audit.Modeled {
		return diags, audit, nil
	}

	// Dereference sites kept alive only by external-world targets: under
	// -extmodel unsound they would be empty-points-to reports.
	onlyExternal := func(set []prim.SymID) bool {
		if len(set) == 0 {
			return false
		}
		for _, z := range set {
			if z != ix.ext && z != ix.extFn {
				return false
			}
		}
		return true
	}
	scopes := ix.scopes
	derefDiags, err := forEachSlot(jobs, len(scopes), func(i int) []Diagnostic {
		if scopes[i] == extmodel.ExtName {
			return nil // the model's own constraints are not program sites
		}
		type key struct {
			sym prim.SymID
			loc prim.Loc
		}
		seen := map[key]bool{}
		var out []Diagnostic
		report := func(p prim.SymID, a *prim.Assign) {
			s := ix.sym(p)
			undefExtern := s.Kind == prim.SymGlobal && !s.Defined
			if !undefExtern && !onlyExternal(ix.res.PointsTo(p)) {
				return
			}
			k := key{p, a.Loc}
			if seen[k] {
				return
			}
			seen[k] = true
			out = append(out, Diagnostic{
				Check: Externs,
				Loc:   a.Loc,
				Func:  a.Func,
				Message: fmt.Sprintf(
					"dereference of '%s' has only external-world targets (verdict downgraded by incompleteness)",
					ix.name(p)),
			})
		}
		for _, ai := range ix.assignsByScope[scopes[i]] {
			a := &ix.prog.Assigns[ai]
			switch a.Kind {
			case prim.StoreInd:
				report(a.Dst, a)
			case prim.LoadInd:
				report(a.Src, a)
			case prim.CopyInd:
				report(a.Dst, a)
				report(a.Src, a)
			}
		}
		return out
	})
	if err != nil {
		return nil, nil, err
	}
	audit.DerefDowngraded = len(derefDiags)
	diags = append(diags, derefDiags...)

	// Indirect call sites that may target external code: the resolved
	// callee list is open-ended.
	calls := ix.prog.Calls
	callDiags, err := forEachSlot(jobs, len(calls), func(i int) []Diagnostic {
		c := calls[i]
		if !c.Indirect {
			return nil
		}
		hit := false
		for _, z := range ix.res.PointsTo(c.Callee) {
			if z == ix.extFn {
				hit = true
				break
			}
		}
		if !hit {
			return nil
		}
		return []Diagnostic{{
			Check: Externs,
			Loc:   c.Loc,
			Func:  c.Caller,
			Message: fmt.Sprintf(
				"indirect call through '%s' may target external code (verdict downgraded by incompleteness)",
				ix.name(c.Callee)),
		}}
	})
	if err != nil {
		return nil, nil, err
	}
	audit.CallsDowngraded = len(callDiags)
	diags = append(diags, callDiags...)
	return diags, audit, nil
}
