package checks

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cla/internal/extmodel"
)

var updateGolden = flag.Bool("update", false, "rewrite SARIF golden files")

// TestSARIFGolden pins the full SARIF 2.1.0 rendering of a blanket-model
// run against a golden file, and requires the bytes to be identical at
// jobs=1 and jobs=8. Any change to rule metadata, result ordering or the
// audit encoding shows up as a golden diff.
func TestSARIFGolden(t *testing.T) {
	ref, err := runModel(t, extmodel.Blanket, 1).SARIF()
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	par, err := runModel(t, extmodel.Blanket, 8).SARIF()
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	if string(ref) != string(par) {
		t.Fatalf("SARIF output differs between jobs=1 and jobs=8")
	}

	golden := filepath.Join("testdata", "sarif_blanket.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(ref, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(want) != string(ref)+"\n" {
		t.Errorf("SARIF output differs from %s; run with -update and inspect the diff", golden)
	}
}

// TestSARIFWellFormed checks the structural invariants consumers rely on:
// schema/version fields, one run, the fixed rule table, in-range rule
// indexes, and the extern audit attached as a run property.
func TestSARIFWellFormed(t *testing.T) {
	raw, err := runModel(t, extmodel.Escape, 1).SARIF()
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
			} `json:"results"`
			Properties struct {
				ExternAudit *Audit `json:"externAudit"`
			} `json:"properties"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" || len(log.Runs) != 1 {
		t.Fatalf("log header = %q %q, %d runs", log.Schema, log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "clalint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(sarifRules) {
		t.Errorf("rule table has %d entries, want %d", len(run.Tool.Driver.Rules), len(sarifRules))
	}
	if len(run.Results) == 0 {
		t.Fatalf("no results")
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(sarifRules) {
			t.Errorf("result %q has out-of-range ruleIndex %d", r.RuleID, r.RuleIndex)
		}
		if got := string(sarifRules[r.RuleIndex].check); got != r.RuleID {
			t.Errorf("result ruleId %q does not match index %d (%s)", r.RuleID, r.RuleIndex, got)
		}
	}
	if run.Properties.ExternAudit == nil || !run.Properties.ExternAudit.Modeled {
		t.Errorf("extern audit missing from run properties: %+v", run.Properties.ExternAudit)
	}
}
