// Package checks implements points-to-powered static-analysis clients: a
// suite of whole-program checks that consume a completed points-to
// analysis (any solver) together with the linked primitive-assignment
// database, and emit source-located diagnostics.
//
// The paper's thesis is that once aliasing analysis is this cheap it
// becomes a platform; these are the first downstream clients built on it:
//
//   - callgraph: resolve every indirect call site's callee set from the
//     points-to set of its function-pointer expression, report sites that
//     resolve to no function, and export the full call graph (DOT/JSON).
//   - modref: per-function MOD/REF summaries — the abstract objects each
//     function may write or read through pointers, directly or via calls.
//   - escape: stack-address escape — a local whose address flows into a
//     global, static, struct field, heap object or a function's return
//     value outlives its frame.
//   - deref: dereference sites whose pointer has an empty points-to set,
//     i.e. null/uninitialized-pointer dereference candidates.
//   - externs (opt-in): the incomplete-program soundness audit — the
//     referenced-but-undefined symbol inventory plus "verdict downgraded
//     by incompleteness" annotations on sites whose only evidence is the
//     external model of internal/extmodel.
//
// Determinism contract: Run produces identical output at every Jobs
// setting. Work is fanned out with internal/parallel over index-addressed
// slots (per call site, per sink symbol, per function scope), results are
// concatenated in slot order, and the final diagnostic list is sorted by
// (file, line, check, message). No check communicates through shared
// mutable state.
package checks

import (
	"fmt"
	"io"
	"sort"

	"cla/internal/extmodel"
	"cla/internal/obs"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
)

// Check names one analysis client.
type Check string

// The available checks.
const (
	CallGraph Check = "callgraph"
	ModRef    Check = "modref"
	Escape    Check = "escape"
	Deref     Check = "deref"
	// Externs is the incomplete-program soundness audit: the undefined-
	// external inventory plus "verdict downgraded by incompleteness"
	// annotations. It is not part of AllChecks — callers opt in (clalint
	// enables it automatically when an -extmodel is selected).
	Externs Check = "externs"
)

// AllChecks lists every default check in canonical order.
func AllChecks() []Check { return []Check{CallGraph, ModRef, Escape, Deref} }

// AllChecksAudited is AllChecks plus the externs soundness audit.
func AllChecksAudited() []Check { return append(AllChecks(), Externs) }

// ParseChecks validates a list of check names (e.g. from a CLI flag).
func ParseChecks(names []string) ([]Check, error) {
	var out []Check
	for _, n := range names {
		c := Check(n)
		switch c {
		case CallGraph, ModRef, Escape, Deref, Externs:
			out = append(out, c)
		default:
			return nil, fmt.Errorf("checks: unknown check %q", n)
		}
	}
	return out, nil
}

// Options configures a Run.
type Options struct {
	// Checks selects which checks run; nil means all of them.
	Checks []Check
	// Jobs bounds the workers used inside each check (0 = all cores,
	// 1 = sequential). Output is identical at every setting.
	Jobs int
	// ExtModel is the display label of the extern model the analysis ran
	// under ("unsound", "blanket", "escape"); the externs audit records it.
	// Empty means the label is inferred from the database.
	ExtModel string
	// Obs, when non-nil, records one span per check plus checks.*
	// diagnostic counters.
	Obs *obs.Observer
}

// Diagnostic is one finding, attached to a source location.
type Diagnostic struct {
	Check   Check    `json:"check"`
	Loc     prim.Loc `json:"loc"`
	Func    string   `json:"func,omitempty"` // enclosing function, "" at file scope
	Message string   `json:"message"`
}

func (d Diagnostic) String() string {
	if d.Func != "" {
		return fmt.Sprintf("%s: [%s] %s (in %s)", d.Loc, d.Check, d.Message, d.Func)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Loc, d.Check, d.Message)
}

// Report is the outcome of a Run.
type Report struct {
	// Diags holds every finding, sorted by (file, line, check, message).
	Diags []Diagnostic
	// Graph is the program call graph (nil unless callgraph ran).
	Graph *Graph
	// ModRef holds per-function summaries sorted by function name (nil
	// unless modref ran).
	ModRef []Summary
	// Audit is the incomplete-program soundness audit (nil unless the
	// externs check ran).
	Audit *Audit
}

// Format renders the diagnostics one per line.
func (r *Report) Format(w io.Writer) {
	for _, d := range r.Diags {
		fmt.Fprintln(w, d.String())
	}
}

// CountByCheck tallies diagnostics per check.
func (r *Report) CountByCheck() map[Check]int {
	out := map[Check]int{}
	for _, d := range r.Diags {
		out[d.Check]++
	}
	return out
}

// Run executes the selected checks over a completed analysis. The prog
// must be the database the analysis ran on (or one with identical symbol
// numbering), so that diagnostics can quote pts sets by symbol id.
func Run(prog *prim.Program, res pts.Result, opts Options) (*Report, error) {
	enabled := opts.Checks
	if enabled == nil {
		enabled = AllChecks()
	}
	sp := opts.Obs.Start("checks")
	defer sp.End()
	ix := buildIndex(prog, res)
	rep := &Report{}

	has := func(c Check) bool {
		for _, e := range enabled {
			if e == c {
				return true
			}
		}
		return false
	}

	// The call graph is also an input to MOD/REF propagation, so build it
	// whenever either check is enabled.
	if has(CallGraph) || has(ModRef) {
		csp := sp.Child("check:callgraph")
		g, diags, err := buildCallGraph(ix, opts.Jobs)
		csp.End()
		if err != nil {
			return nil, err
		}
		if has(CallGraph) {
			rep.Graph = g
			rep.Diags = append(rep.Diags, diags...)
		}
		if has(ModRef) {
			msp := sp.Child("check:modref")
			sums, err := modrefSummaries(ix, g, opts.Jobs)
			msp.End()
			if err != nil {
				return nil, err
			}
			rep.ModRef = sums
		}
	}
	if has(Escape) {
		esp := sp.Child("check:escape")
		diags, err := escapeCheck(ix, opts.Jobs)
		esp.End()
		if err != nil {
			return nil, err
		}
		rep.Diags = append(rep.Diags, diags...)
	}
	if has(Deref) {
		dsp := sp.Child("check:deref")
		diags, err := derefCheck(ix, opts.Jobs)
		dsp.End()
		if err != nil {
			return nil, err
		}
		rep.Diags = append(rep.Diags, diags...)
	}
	if has(Externs) {
		xsp := sp.Child("check:externs")
		diags, audit, err := externsCheck(ix, opts.Jobs, opts.ExtModel)
		xsp.End()
		if err != nil {
			return nil, err
		}
		rep.Diags = append(rep.Diags, diags...)
		rep.Audit = audit
		for i := range rep.ModRef {
			if rep.ModRef[i].Incomplete {
				audit.ModRefIncomplete++
			}
		}
	}
	sortDiags(rep.Diags)
	if opts.Obs.Enabled() {
		opts.Obs.SetCounter("checks.diags", int64(len(rep.Diags)))
		for c, n := range rep.CountByCheck() {
			opts.Obs.SetCounter("checks.diags."+string(c), int64(n))
		}
	}
	return rep, nil
}

// sortDiags orders diagnostics by (file, line, check, message, func) and
// removes exact duplicates.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Loc.File != b.Loc.File {
			return a.Loc.File < b.Loc.File
		}
		if a.Loc.Line != b.Loc.Line {
			return a.Loc.Line < b.Loc.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Func < b.Func
	})
}

// index holds the shared, read-only lookup structures every check uses.
type index struct {
	prog *prim.Program
	res  pts.Result

	// scopes are the distinct enclosing-function names of assignments and
	// call sites, sorted ("" for file scope sorts first).
	scopes []string
	// assignsByScope maps a scope to the indexes of its assignments in
	// prog.Assigns, in emission order.
	assignsByScope map[string][]int
	// funcSyms are the ids of all SymFunc symbols, in id order.
	funcSyms []prim.SymID
	// retOwner maps a function's standardized return symbol to the
	// function symbol it belongs to, for real functions only.
	retOwner map[prim.SymID]prim.SymID
	// ext is the external-world object synthesized by internal/extmodel,
	// or NoSym when the analysis ran without an extern model.
	ext prim.SymID
	// extFn is the external stand-in function, or NoSym.
	extFn prim.SymID
}

func buildIndex(prog *prim.Program, res pts.Result) *index {
	ix := &index{
		prog:           prog,
		res:            res,
		assignsByScope: map[string][]int{},
		retOwner:       map[prim.SymID]prim.SymID{},
		ext:            prim.NoSym,
		extFn:          prim.NoSym,
	}
	seen := map[string]bool{}
	for i := range prog.Assigns {
		f := prog.Assigns[i].Func
		ix.assignsByScope[f] = append(ix.assignsByScope[f], i)
		if !seen[f] {
			seen[f] = true
			ix.scopes = append(ix.scopes, f)
		}
	}
	for _, c := range prog.Calls {
		if !seen[c.Caller] {
			seen[c.Caller] = true
			ix.scopes = append(ix.scopes, c.Caller)
		}
	}
	sort.Strings(ix.scopes)
	for i := range prog.Syms {
		switch {
		case prog.Syms[i].Kind == prim.SymFunc:
			ix.funcSyms = append(ix.funcSyms, prim.SymID(i))
			if ix.extFn == prim.NoSym && prog.Syms[i].Name == extmodel.ExtFnName {
				ix.extFn = prim.SymID(i)
			}
		case prog.Syms[i].Kind == prim.SymExtern:
			if ix.ext == prim.NoSym {
				ix.ext = prim.SymID(i)
			}
		}
	}
	for _, f := range prog.Funcs {
		if f.Ret == prim.NoSym {
			continue
		}
		if int(f.Func) < len(prog.Syms) && prog.Syms[f.Func].Kind == prim.SymFunc {
			ix.retOwner[f.Ret] = f.Func
		}
	}
	return ix
}

// sym returns the symbol for id.
func (ix *index) sym(id prim.SymID) *prim.Symbol { return &ix.prog.Syms[id] }

// name returns a printable name for id.
func (ix *index) name(id prim.SymID) string { return ix.prog.Syms[id].Name }

// forEachSlot runs fn over n indexes on jobs workers and concatenates the
// per-index diagnostic slices in index order — the parallel-but-
// deterministic skeleton shared by the checks.
func forEachSlot(jobs, n int, fn func(i int) []Diagnostic) ([]Diagnostic, error) {
	slots := make([][]Diagnostic, n)
	err := parallel.ForEach(jobs, n, func(i int) error {
		slots[i] = fn(i)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, s := range slots {
		out = append(out, s...)
	}
	return out, nil
}
