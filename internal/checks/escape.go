package checks

import (
	"fmt"

	"cla/internal/prim"
)

// escapeCheck reports stack-address escapes: a local (or parameter) whose
// address may be stored in a location that outlives its frame — a global,
// a static, a struct field, a heap object — or returned by a function.
// Both facts are read directly off the final points-to sets: the local
// appears in the points-to set of the longer-lived location.
func escapeCheck(ix *index, jobs int) ([]Diagnostic, error) {
	// Sinks, in symbol-id order: frame-outliving locations first, then
	// standardized return symbols of real functions.
	type sink struct {
		id  prim.SymID
		ret prim.SymID // owning function symbol for return sinks, else NoSym
	}
	var sinks []sink
	for i := range ix.prog.Syms {
		id := prim.SymID(i)
		switch ix.prog.Syms[i].Kind {
		case prim.SymGlobal, prim.SymStatic, prim.SymField, prim.SymHeap,
			prim.SymExtern:
			sinks = append(sinks, sink{id: id, ret: prim.NoSym})
		case prim.SymRet:
			if owner, ok := ix.retOwner[id]; ok {
				sinks = append(sinks, sink{id: id, ret: owner})
			}
		}
	}

	return forEachSlot(jobs, len(sinks), func(i int) []Diagnostic {
		s := sinks[i]
		var out []Diagnostic
		for _, z := range ix.res.PointsTo(s.id) {
			local := ix.sym(z)
			if local.Kind != prim.SymLocal {
				continue
			}
			var msg string
			switch {
			case s.ret != prim.NoSym:
				msg = fmt.Sprintf(
					"address of local '%s' may be returned by '%s', outliving its frame",
					local.Name, ix.name(s.ret))
			case ix.sym(s.id).Kind == prim.SymExtern:
				msg = fmt.Sprintf(
					"address of local '%s' may escape to the external world, outliving its frame",
					local.Name)
			default:
				msg = fmt.Sprintf(
					"address of local '%s' may be stored in %s '%s', outliving its frame",
					local.Name, ix.sym(s.id).Kind, ix.name(s.id))
			}
			out = append(out, Diagnostic{
				Check:   Escape,
				Loc:     local.Loc,
				Func:    local.FuncName,
				Message: msg,
			})
		}
		return out
	})
}
