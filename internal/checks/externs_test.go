package checks

import (
	"bytes"
	"strings"
	"testing"

	"cla/internal/extmodel"
	"cla/internal/prim"
)

// incompleteSrc dereferences a pointer whose only definition is an
// undefined extern, passes a local's address to an unknown function, and
// calls through a pointer that may hold external code.
const incompleteSrc = `
extern int **ext_table;
extern char *ext_dup(char *s);
extern void ext_note(int *p);
extern void (*ext_cb)(void);

char *copy;
int observed;

int peek(void) { return **ext_table; }
void stash(void) { int slot; ext_note(&slot); copy = ext_dup(0); }
void fire(void) { ext_cb(); }
`

// runModel compiles incompleteSrc, applies the model, solves and runs the
// default checks plus the externs audit.
func runModel(t *testing.T, m extmodel.Model, jobs int) *Report {
	t.Helper()
	prog := compile(t, incompleteSrc)
	extmodel.Apply(prog, m)
	res := solve(t, prog, 0) // driver.PreTransitive
	rep, err := Run(prog, res, Options{
		Checks:   AllChecksAudited(),
		Jobs:     jobs,
		ExtModel: m.String(),
	})
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	return rep
}

// TestDerefIncompleteProgram is the regression for the deref false
// positive on incomplete programs: a pointer whose only definition is an
// undefined extern must point to the external world under blanket/escape
// (suppressing the empty-points-to report), while unsound keeps today's
// diagnostic byte for byte.
func TestDerefIncompleteProgram(t *testing.T) {
	unsound := runModel(t, extmodel.Unsound, 1)
	derefs := diagStrings(unsound, Deref)
	wantTable := false
	for _, d := range derefs {
		if strings.Contains(d, "'ext_table'") {
			wantTable = true
		}
	}
	if !wantTable {
		t.Fatalf("unsound: deref diagnostics %v miss ext_table", derefs)
	}
	if unsound.Audit == nil || unsound.Audit.Modeled {
		t.Fatalf("unsound audit = %+v, want unmodeled", unsound.Audit)
	}
	// ext_dup and ext_note are undefined functions; ext_table and the
	// function pointer ext_cb are undefined globals.
	if len(unsound.Audit.UndefFuncs) != 2 || len(unsound.Audit.UndefGlobals) != 2 {
		t.Fatalf("unsound audit inventory = %+v, want 2 funcs / 2 globals",
			unsound.Audit)
	}

	for _, m := range []extmodel.Model{extmodel.Blanket, extmodel.Escape} {
		rep := runModel(t, m, 1)
		if ds := diagStrings(rep, Deref); len(ds) != 0 {
			t.Errorf("%v: deref diagnostics = %v, want none", m, ds)
		}
		if rep.Audit == nil || !rep.Audit.Modeled {
			t.Fatalf("%v: audit = %+v, want modeled", m, rep.Audit)
		}
		if rep.Audit.DerefDowngraded == 0 {
			t.Errorf("%v: DerefDowngraded = 0, want downgraded deref sites", m)
		}
		found := false
		for _, d := range diagStrings(rep, Externs) {
			if strings.Contains(d, "only external-world targets") &&
				strings.Contains(d, "'ext_table'") {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: externs diagnostics miss the ext_table downgrade: %v",
				m, diagStrings(rep, Externs))
		}
	}
}

// TestEscapeToExternalWorld: a local whose address is passed to an
// undefined function is reported as escaping to the external world.
func TestEscapeToExternalWorld(t *testing.T) {
	rep := runModel(t, extmodel.Blanket, 1)
	found := false
	for _, d := range diagStrings(rep, Escape) {
		if strings.Contains(d, "'slot'") && strings.Contains(d, "external world") {
			found = true
		}
	}
	if !found {
		t.Errorf("escape diagnostics miss slot->external: %v", diagStrings(rep, Escape))
	}

	// Without a model there is no external sink, so no such report.
	unsound := runModel(t, extmodel.Unsound, 1)
	for _, d := range diagStrings(unsound, Escape) {
		if strings.Contains(d, "external world") {
			t.Errorf("unsound run reports external-world escape: %s", d)
		}
	}
}

// TestCallsDowngradedAndModRefIncomplete: calling through an undefined
// function pointer is flagged open-ended, and MOD/REF summaries touching
// external memory are marked incomplete.
func TestCallsDowngradedAndModRefIncomplete(t *testing.T) {
	rep := runModel(t, extmodel.Blanket, 1)
	if rep.Audit.CallsDowngraded != 1 {
		t.Errorf("CallsDowngraded = %d, want 1 (the ext_cb call)", rep.Audit.CallsDowngraded)
	}
	if rep.Audit.ModRefIncomplete == 0 {
		t.Errorf("ModRefIncomplete = 0, want incomplete scopes")
	}
	byFunc := map[string]Summary{}
	for _, s := range rep.ModRef {
		byFunc[s.Func] = s
	}
	if s := byFunc["peek"]; !s.Incomplete {
		t.Errorf("peek summary not marked incomplete: %+v", s)
	}

	unsound := runModel(t, extmodel.Unsound, 1)
	for _, s := range unsound.ModRef {
		if s.Incomplete {
			t.Errorf("unsound summary %q marked incomplete", s.Func)
		}
	}
}

// TestExternsUnsoundDefaultUnchanged: without opting into the externs
// check, an unsound run must not change at all — same checks, same
// output as before this subsystem existed.
func TestExternsUnsoundDefaultUnchanged(t *testing.T) {
	prog := compile(t, incompleteSrc)
	res := solve(t, prog, 0)
	rep, err := Run(prog, res, Options{})
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	if rep.Audit != nil {
		t.Errorf("default run produced an audit: %+v", rep.Audit)
	}
	for _, d := range rep.Diags {
		if d.Check == Externs {
			t.Errorf("default run produced externs diagnostic: %s", d)
		}
	}
}

// TestExternsDeterministicAcrossJobs: the audit path must be byte-stable
// at any worker count.
func TestExternsDeterministicAcrossJobs(t *testing.T) {
	for _, m := range []extmodel.Model{extmodel.Unsound, extmodel.Blanket, extmodel.Escape} {
		var ref bytes.Buffer
		runModel(t, m, 1).Format(&ref)
		for _, jobs := range []int{2, 8} {
			var got bytes.Buffer
			runModel(t, m, jobs).Format(&got)
			if got.String() != ref.String() {
				t.Errorf("%v: output differs between jobs=1 and jobs=%d", m, jobs)
			}
		}
	}
}

func TestParseChecksExterns(t *testing.T) {
	cs, err := ParseChecks([]string{"deref", "externs"})
	if err != nil || len(cs) != 2 || cs[1] != Externs {
		t.Fatalf("ParseChecks = %v, %v", cs, err)
	}
	if _, err := ParseChecks([]string{"bogus"}); err == nil {
		t.Fatalf("ParseChecks accepted bogus")
	}
}

var _ = prim.NoSym
