package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/snapfile"
)

// buildSnap builds and saves a snapshot of dir under cfg, returning the
// .snap path.
func buildSnap(t *testing.T, dir string, cfg Config) string {
	t.Helper()
	snap, err := BuildSnapshot(context.Background(), dir, cfg)
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := snapfile.Save(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path
}

// evalJSON runs the all-kinds mix and renders each result as JSON — the
// byte-level form the HTTP layer would send.
func evalJSON(t *testing.T, s *Session) []string {
	t.Helper()
	results, err := s.Eval().EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	out := make([]string, len(results))
	for i, r := range results {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out[i] = string(b)
	}
	return out
}

// TestSnapshotIdentity asserts snapshot-served answers are byte-identical
// to live-solve ones for all six query kinds, across every solver, every
// extern model and both worker counts.
func TestSnapshotIdentity(t *testing.T) {
	solvers := []driver.Solver{
		driver.PreTransitive, driver.Worklist, driver.Steensgaard,
		driver.BitVector, driver.OneLevel,
	}
	models := []extmodel.Model{extmodel.Unsound, extmodel.Blanket, extmodel.Escape}
	dir := writeTestDir(t)
	for _, solver := range solvers {
		for _, model := range models {
			for _, jobs := range []int{1, 8} {
				name := fmt.Sprintf("%v/%v/j%d", solver, model, jobs)
				t.Run(name, func(t *testing.T) {
					cfg := Config{Solver: solver, ExtModel: model, Jobs: jobs}
					live, err := Open(context.Background(), "live", dir, cfg)
					if err != nil {
						t.Fatalf("live open: %v", err)
					}
					snapSess, err := Open(context.Background(), "snap", buildSnap(t, dir, cfg), cfg)
					if err != nil {
						t.Fatalf("snapshot open: %v", err)
					}
					if snapSess.Snap == nil {
						t.Fatal("snapshot session has no reader")
					}
					liveJSON, snapJSON := evalJSON(t, live), evalJSON(t, snapSess)
					for i := range liveJSON {
						if liveJSON[i] != snapJSON[i] {
							t.Errorf("query %d differs:\n live %s\n snap %s",
								i, liveJSON[i], snapJSON[i])
						}
					}
				})
			}
		}
	}
}

// TestSnapshotStale asserts an edited source fails the open with the
// typed staleness error (HTTP 409, exit code 3), and that SkipVerify
// bypasses the check.
func TestSnapshotStale(t *testing.T) {
	dir := writeTestDir(t)
	cfg := Config{Jobs: 1}
	path := buildSnap(t, dir, cfg)
	if _, err := Open(context.Background(), "s", path, cfg); err != nil {
		t.Fatalf("fresh snapshot open: %v", err)
	}
	src := filepath.Join(dir, "a.c")
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(b, []byte("int added;\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(context.Background(), "s", path, cfg)
	if !errors.Is(err, claerr.ErrStale) {
		t.Fatalf("edited source: got %v, want ErrStale", err)
	}
	if got := claerr.HTTPStatus(err); got != 409 {
		t.Fatalf("HTTPStatus = %d, want 409", got)
	}
	if got := claerr.ExitCode(err); got != 3 {
		t.Fatalf("ExitCode = %d, want 3", got)
	}
	skip := cfg
	skip.SkipVerify = true
	if _, err := Open(context.Background(), "s", path, skip); err != nil {
		t.Fatalf("SkipVerify open: %v", err)
	}
}

// TestSnapshotConcurrentQueries hammers one snapshot-backed session from
// many goroutines — the race detector guards the zero-copy read path.
func TestSnapshotConcurrentQueries(t *testing.T) {
	dir := writeTestDir(t)
	cfg := Config{Jobs: 4}
	sess, err := Open(context.Background(), "s", buildSnap(t, dir, cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := sess.Eval().EvalBatch(context.Background(), mixedQueries()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
