package serve

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"cla/internal/checks"
	"cla/internal/claerr"
	"cla/internal/depend"
	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
)

// Evaluator answers queries against one analyzed snapshot. All state is
// read-only after construction except the lazily built checks report
// (guarded by a sync.Once), so an Evaluator is safe for concurrent use —
// the property the whole serving layer rests on.
type Evaluator struct {
	// Prog is the full database (symbols, assignments, call sites).
	Prog *prim.Program
	// Src is a concurrency-safe assignment source over Prog; the
	// dependence analysis demand-walks it per query.
	Src pts.Source
	// Res is the solved points-to relation (snapshot-backed, O(1) and
	// concurrency-safe per the PR-1 contract).
	Res pts.Result
	// Jobs bounds batch fan-out and the cached checks run (0 = all
	// cores). Responses are identical at every setting.
	Jobs int

	// byName indexes non-temporary symbols by source name, ids ascending.
	byName map[string][]prim.SymID

	// checksOnce computes the full checks report (all four checks) the
	// first time a callgraph, modref or lint query needs it; later
	// queries share it.
	checksOnce sync.Once
	checksRep  *checks.Report
	checksErr  error
}

// NewEvaluator builds the shared lookup structures for a snapshot.
func NewEvaluator(prog *prim.Program, src pts.Source, res pts.Result, jobs int) *Evaluator {
	e := &Evaluator{Prog: prog, Src: src, Res: res, Jobs: jobs,
		byName: make(map[string][]prim.SymID)}
	for i := range prog.Syms {
		if prog.Syms[i].Kind == prim.SymTemp {
			continue
		}
		n := prog.Syms[i].Name
		e.byName[n] = append(e.byName[n], prim.SymID(i))
	}
	return e
}

// NumSyms reports the snapshot's symbol count (for /statsz).
func (e *Evaluator) NumSyms() int { return len(e.Prog.Syms) }

// NumAssigns reports the snapshot's assignment count (for /statsz).
func (e *Evaluator) NumAssigns() int { return len(e.Prog.Assigns) }

// EvalBatch evaluates qs across the evaluator's workers, results in
// query order. Individual query failures are reported inline in the
// matching slot; the returned error is non-nil only when ctx fired, in
// which case undispatched queries never ran.
func (e *Evaluator) EvalBatch(ctx context.Context, qs []Query) ([]QueryResult, error) {
	return e.EvalBatchObserve(ctx, qs, nil)
}

// EvalBatchObserve is EvalBatch with a per-query completion hook: after
// each query evaluates, observe receives it with its wall time. The
// serving layer feeds its latency histograms through this; a nil hook
// makes it plain EvalBatch. The hook is called from the batch fan-out
// workers, so it must be safe for concurrent use.
func (e *Evaluator) EvalBatchObserve(ctx context.Context, qs []Query,
	observe func(q Query, d time.Duration)) ([]QueryResult, error) {
	results := make([]QueryResult, len(qs))
	err := parallel.ForEachCtx(ctx, e.Jobs, len(qs), func(i int) error {
		start := time.Now()
		results[i] = e.Eval(ctx, qs[i])
		if observe != nil {
			observe(qs[i], time.Since(start))
		}
		return nil
	})
	if err != nil {
		return nil, claerr.New(claerr.PhaseQuery, err)
	}
	return results, nil
}

// Eval answers one query. Failures land in the result's Err field.
func (e *Evaluator) Eval(ctx context.Context, q Query) QueryResult {
	res := QueryResult{Kind: q.Kind}
	var err error
	switch q.Kind {
	case "pointsto":
		res.Objects, err = e.pointsTo(q.Name)
	case "alias":
		res.Alias, err = e.alias(q.X, q.Y)
	case "callgraph":
		res.Graph, err = e.callGraph()
	case "modref":
		res.ModRef, err = e.modRef(q.Func)
	case "dependence":
		res.Dependents, err = e.dependence(q)
	case "lint":
		res.Findings, err = e.lint(q.Checks)
	default:
		err = claerr.Newf(claerr.PhaseQuery, "unknown query kind %q", q.Kind)
	}
	if err != nil {
		res = QueryResult{Kind: q.Kind, Err: errBody(err)}
	}
	_ = ctx
	return res
}

// lookup resolves a source name to symbol ids, ascending.
func (e *Evaluator) lookup(name string) ([]prim.SymID, error) {
	if name == "" {
		return nil, claerr.Newf(claerr.PhaseQuery, "missing object name")
	}
	ids := e.byName[name]
	if len(ids) == 0 {
		return nil, claerr.Newf(claerr.PhaseQuery, "no object named %q: %w", name, claerr.ErrNotFound)
	}
	return ids, nil
}

// object renders one symbol for the wire.
func (e *Evaluator) object(id prim.SymID) Object {
	s := &e.Prog.Syms[id]
	o := Object{Name: s.Name, Kind: s.Kind.String(), Type: s.Type, Func: s.FuncName}
	if !s.Loc.IsZero() {
		o.Pos = s.Loc.String()
	}
	return o
}

// pointsTo unions the points-to sets of every object with the name,
// sorted by symbol id (the order PointsToName uses).
func (e *Evaluator) pointsTo(name string) ([]Object, error) {
	ids, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	var union []prim.SymID
	for _, id := range ids {
		union = append(union, e.Res.PointsTo(id)...)
	}
	union = pts.SortSyms(union)
	out := make([]Object, 0, len(union))
	var prev prim.SymID = prim.NoSym
	for _, z := range union {
		if z == prev {
			continue
		}
		prev = z
		out = append(out, e.object(z))
	}
	return out, nil
}

// alias reports whether any object named x may alias any object named y.
func (e *Evaluator) alias(x, y string) (*bool, error) {
	xs, err := e.lookup(x)
	if err != nil {
		return nil, err
	}
	ys, err := e.lookup(y)
	if err != nil {
		return nil, err
	}
	v := false
	for _, xi := range xs {
		for _, yi := range ys {
			if intersects(e.Res.PointsTo(xi), e.Res.PointsTo(yi)) {
				v = true
				break
			}
		}
		if v {
			break
		}
	}
	return &v, nil
}

// intersects reports whether two sorted sets share an element.
func intersects(a, b []prim.SymID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// SeedChecks installs a precomputed checks report — a solved snapshot's
// cached one — so the first lint, callgraph or modref query returns it
// instead of re-running the checks. It must be the report checksReport
// itself would compute (all four checks, no externs) for snapshot-served
// answers to stay byte-identical to live-solve ones. A no-op once the
// report has been computed or seeded.
func (e *Evaluator) SeedChecks(rep *checks.Report) {
	if rep == nil {
		return
	}
	e.checksOnce.Do(func() { e.checksRep = rep })
}

// ChecksReport returns the shared four-check report, computing it on
// first use — the snapshot writer caches it in the file so SeedChecks
// can restore it.
func (e *Evaluator) ChecksReport() (*checks.Report, error) { return e.checksReport() }

// checksReport runs all four checks once and shares the report.
func (e *Evaluator) checksReport() (*checks.Report, error) {
	e.checksOnce.Do(func() {
		e.checksRep, e.checksErr = checks.Run(e.Prog, e.Res, checks.Options{Jobs: e.Jobs})
		if e.checksErr != nil {
			e.checksErr = claerr.New(claerr.PhaseLint, e.checksErr)
		}
	})
	return e.checksRep, e.checksErr
}

func (e *Evaluator) callGraph() (*checks.Graph, error) {
	rep, err := e.checksReport()
	if err != nil {
		return nil, err
	}
	return rep.Graph, nil
}

func (e *Evaluator) modRef(fn string) ([]ModRefEntry, error) {
	rep, err := e.checksReport()
	if err != nil {
		return nil, err
	}
	out := make([]ModRefEntry, 0, len(rep.ModRef))
	for _, s := range rep.ModRef {
		if fn != "" && s.Func != fn {
			continue
		}
		out = append(out, ModRefEntry{
			Func: s.Func, Mod: s.Mod, Ref: s.Ref,
			DirectMod: s.DirectMod, DirectRef: s.DirectRef,
		})
	}
	if fn != "" && len(out) == 0 {
		return nil, claerr.Newf(claerr.PhaseQuery, "no function named %q: %w", fn, claerr.ErrNotFound)
	}
	return out, nil
}

func (e *Evaluator) dependence(q Query) ([]DependEntry, error) {
	targets, err := e.lookup(q.Target)
	if err != nil {
		return nil, err
	}
	opts := depend.Options{NonTargets: map[prim.SymID]bool{}, DropWeak: q.DropWeak}
	for _, n := range q.NonTargets {
		for _, id := range e.byName[strings.TrimSpace(n)] {
			opts.NonTargets[id] = true
		}
	}
	dres, err := depend.Analyze(e.Src, e.Res, targets, opts)
	if err != nil {
		return nil, claerr.New(claerr.PhaseQuery, err)
	}
	deps := dres.Dependents()
	if q.Limit > 0 && len(deps) > q.Limit {
		deps = deps[:q.Limit]
	}
	out := make([]DependEntry, 0, len(deps))
	for _, d := range deps {
		out = append(out, DependEntry{
			Object:   e.object(d.Sym),
			Strong:   d.Strength == prim.Strong,
			Distance: d.Dist,
			Chain:    dres.FormatChain(d.Sym),
		})
	}
	return out, nil
}

func (e *Evaluator) lint(names []string) ([]Finding, error) {
	selected := checks.AllChecks()
	if len(names) > 0 {
		var err error
		selected, err = checks.ParseChecks(names)
		if err != nil {
			return nil, claerr.New(claerr.PhaseUsage, err)
		}
	}
	rep, err := e.checksReport()
	if err != nil {
		return nil, err
	}
	want := map[checks.Check]bool{}
	for _, c := range selected {
		want[c] = true
	}
	out := []Finding{}
	for _, d := range rep.Diags {
		if !want[d.Check] {
			continue
		}
		out = append(out, Finding{
			Check: string(d.Check), File: d.Loc.File, Line: int(d.Loc.Line),
			Func: d.Func, Message: d.Message,
		})
	}
	return out, nil
}

// QueryNames returns every queryable object name, sorted — /statsz and
// the benchmark harness use it to drive representative query mixes.
func (e *Evaluator) QueryNames() []string {
	names := make([]string, 0, len(e.byName))
	for n := range e.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
