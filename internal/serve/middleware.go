package serve

// Per-request instrumentation. Every request through the server passes
// one middleware layer that
//
//   - assigns a request ID (honoring an incoming X-Request-Id) and
//     echoes it in the response, so a fleet router or a user can join
//     server logs with client traces;
//   - tracks the in-flight request gauge and records the request's wall
//     time into the serve.http latency histogram;
//   - classifies failures into serve.errors.4xx / serve.errors.5xx
//     counters off the written status (the claerr.HTTPStatus mapping);
//   - appends one JSONL record per request to the access log, with
//     1-in-N sampling and a slow-query threshold that always logs.
//
// Query evaluation latency is recorded separately by the handlers into
// per-kind (serve.query.<kind>) and per-session (serve.session.<name>)
// histograms, so /metricsz reports both transport-level and
// evaluation-level distributions.

import (
	"fmt"
	"net/http"
	"time"
)

// queryKinds is the closed set of query kinds; histogram names derive
// from it so a request with a made-up kind cannot mint new metrics.
var queryKinds = map[string]bool{
	"pointsto": true, "alias": true, "callgraph": true,
	"modref": true, "dependence": true, "lint": true,
}

// kindLabel collapses unknown kinds into "other" to bound metric
// cardinality against arbitrary request payloads.
func kindLabel(kind string) string {
	if queryKinds[kind] {
		return kind
	}
	return "other"
}

// observeQuery records one query evaluation into the per-kind and
// per-session latency histograms.
func (s *Server) observeQuery(sess *Session, kind string, d time.Duration) {
	ns := int64(d)
	s.o.Histogram("serve.query." + kindLabel(kind)).Observe(ns)
	s.o.Histogram("serve.session." + sess.Name).Observe(ns)
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// requestID picks the request's ID: a sane incoming X-Request-Id is
// kept (so IDs survive a fleet router hop), anything else gets a fresh
// "<base>-<seq>" unique for the server's lifetime.
func (s *Server) requestID(r *http.Request, seq uint64) string {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= 128 {
		return id
	}
	return fmt.Sprintf("%s-%06d", s.idBase, seq)
}

// accessRecord is one access-log line. Timing fields are the only
// non-deterministic parts; everything else round-trips through any
// JSONL tooling.
type accessRecord struct {
	Time   string `json:"ts"`
	ID     string `json:"id"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	DurNS  int64  `json:"dur_ns"`
	Bytes  int64  `json:"bytes"`
	Slow   bool   `json:"slow,omitempty"`
}

// instrument wraps the route table with the per-request middleware.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seq := s.reqSeq.Add(1)
		id := s.requestID(r, seq)
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		s.o.Gauge("serve.http.inflight").Set(s.httpInflight.Add(1))
		start := time.Now()
		next.ServeHTTP(sw, r)
		d := time.Since(start)
		s.o.Gauge("serve.http.inflight").Set(s.httpInflight.Add(-1))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.o.Histogram("serve.http").Observe(int64(d))
		if class := sw.status / 100; class >= 4 {
			s.o.Counter(fmt.Sprintf("serve.errors.%dxx", class)).Inc()
		}
		s.logAccess(r, id, sw, d, seq)
	})
}

// logAccess appends the request's JSONL record when it is sampled in or
// crossed the slow-query threshold (slow requests always log).
func (s *Server) logAccess(r *http.Request, id string, sw *statusWriter, d time.Duration, seq uint64) {
	if s.access == nil {
		return
	}
	slow := s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery
	sampled := s.cfg.LogSample <= 1 || seq%uint64(s.cfg.LogSample) == 0
	if !slow && !sampled {
		return
	}
	if slow {
		s.o.Counter("serve.slow_queries").Inc()
	}
	rec := accessRecord{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		ID:     id,
		Method: r.Method,
		Path:   r.URL.Path,
		Status: sw.status,
		DurNS:  int64(d),
		Bytes:  sw.bytes,
		Slow:   slow,
	}
	if err := s.access.Log(rec); err != nil {
		s.o.Counter("serve.accesslog.errors").Inc()
	}
}

// handleMetricsz renders the full metric registry — counters, gauges,
// latency histograms and runtime health — in Prometheus text exposition
// format. Latency histograms are in nanoseconds.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.o.CaptureRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.o.WriteProm(w)
}
