package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cla/internal/claerr"
	"cla/internal/obs"
)

// ServerConfig controls request handling.
type ServerConfig struct {
	// Jobs bounds batch fan-out per request (0 = all cores).
	Jobs int
	// Deadline caps each request's evaluation time (0 = no deadline).
	// The client's disconnect cancels evaluation either way.
	Deadline time.Duration
	// Obs backs /statsz and /metricsz; a fresh observer is created when
	// nil.
	Obs *obs.Observer
	// AccessLog, when non-nil, receives one JSON line per served request
	// (see accessRecord). Writes are serialized by the server.
	AccessLog io.Writer
	// SlowQuery is the latency at or above which a request is always
	// logged and flagged slow, bypassing sampling (0 disables).
	SlowQuery time.Duration
	// LogSample logs 1 in N requests to AccessLog (<= 1 logs all).
	LogSample int
	// Session is the build configuration for sessions created over the
	// API (POST /v1/sessions). Its zero value builds with the defaults;
	// Jobs and Obs fall back to the server's when unset.
	Session Config
	// WatchInterval is the poll interval for sessions created with
	// "watch": true (0 = 500ms).
	WatchInterval time.Duration
}

// Server serves the query API over HTTP. Routes:
//
//	GET  /healthz                    liveness ("ok", or "draining" + 503)
//	GET  /statsz                     sessions + observer counters/gauges
//	GET  /v1/sessions                registered session names
//	POST /v1/sessions                open a session {"name","path","watch"}
//	GET  /v1/sessions/{id}           generation, staleness, watch state
//	POST /v1/sessions/{id}/refresh   rebuild what changed, swap generation
//	DELETE /v1/sessions/{id}         retire a session (drains, then unmaps)
//	POST /v1/query                   batched Request -> Response
//	GET  /v1/pointsto?name=          single-query conveniences; all accept
//	GET  /v1/alias?x=&y=             &session= to pick a snapshot
//	GET  /v1/callgraph
//	GET  /v1/modref?func=
//	GET  /v1/dependence?target=&nontarget=&dropweak=&limit=
//	GET  /v1/lint?checks=
type Server struct {
	Sessions *Registry

	cfg          ServerConfig
	o            *obs.Observer
	mux          *http.ServeMux
	handler      http.Handler
	http         *http.Server
	access       *obs.Logger
	idBase       string
	draining     atomic.Bool
	inflight     atomic.Int64
	httpInflight atomic.Int64
	reqSeq       atomic.Uint64
}

// NewServer builds a server over a session registry.
func NewServer(reg *Registry, cfg ServerConfig) *Server {
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	s := &Server{
		Sessions: reg, cfg: cfg, o: o, mux: http.NewServeMux(),
		access: obs.NewLogger(cfg.AccessLog),
		idBase: fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("POST /v1/sessions/{id}/refresh", s.handleSessionRefresh)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	for _, kind := range []string{"pointsto", "alias", "callgraph", "modref", "dependence", "lint"} {
		s.mux.HandleFunc("GET /v1/"+kind, s.singleHandler(kind))
	}
	s.handler = s.instrument(s.mux)
	s.http = &http.Server{Handler: s.handler}
	return s
}

// Handler exposes the instrumented route table (for tests via
// httptest) — the same handler Serve uses, middleware included.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.http.Serve(ln)
}

// Shutdown drains the server gracefully: /healthz flips to 503 so load
// balancers stop routing, in-flight requests run to completion (or until
// ctx fires), and new connections are refused.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.http.SetKeepAlivesEnabled(false)
	return s.http.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// statszBody is the /statsz response shape. Gauges include the
// runtime.* health readings captured at scrape time, so a fleet
// health-checker needs only this one target.
type statszBody struct {
	Sessions []statszSession  `json:"sessions"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
}

// metricMap renders observer metrics for JSON.
func metricMap(ms []obs.Metric) map[string]int64 {
	out := make(map[string]int64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out
}

type statszSession struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Syms       int    `json:"syms"`
	Assigns    int    `json:"assigns"`
	Generation uint64 `json:"generation"`
	Created    string `json:"created"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.o.CaptureRuntime()
	body := statszBody{
		Sessions: []statszSession{},
		Counters: metricMap(s.o.Counters()),
		Gauges:   metricMap(s.o.Gauges()),
	}
	for _, name := range s.Sessions.Names() {
		sess, err := s.Sessions.Get(name)
		if err != nil {
			continue
		}
		st := sess.State()
		body.Sessions = append(body.Sessions, statszSession{
			Name:       sess.Name,
			Path:       sess.Path,
			Syms:       st.Eval.NumSyms(),
			Assigns:    st.Eval.NumAssigns(),
			Generation: st.Gen,
			Created:    sess.Created.UTC().Format(time.RFC3339),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.Sessions.Names()})
}

// SessionInfo is the wire shape of GET /v1/sessions/{id} (and the 201
// body of POST): identity, current generation, staleness and watch
// state.
type SessionInfo struct {
	Name        string   `json:"name"`
	Path        string   `json:"path,omitempty"`
	Kind        string   `json:"kind"`
	Generation  uint64   `json:"generation"`
	Syms        int      `json:"syms"`
	Assigns     int      `json:"assigns"`
	Created     string   `json:"created"`
	Built       string   `json:"built"`
	Refreshable bool     `json:"refreshable"`
	Watching    bool     `json:"watching"`
	Stale       bool     `json:"stale"`
	Changed     []string `json:"changed,omitempty"`
}

// sessionInfo snapshots a session for the lifecycle endpoints. The
// stale probe stats tracked files, so it is cheap but not free; only
// the per-session endpoints pay it, not the statsz listing.
func sessionInfo(sess *Session) SessionInfo {
	st := sess.State()
	stale, changed := sess.Stale()
	return SessionInfo{
		Name:        sess.Name,
		Path:        sess.Path,
		Kind:        sess.Kind,
		Generation:  st.Gen,
		Syms:        st.Eval.NumSyms(),
		Assigns:     st.Eval.NumAssigns(),
		Created:     sess.Created.UTC().Format(time.RFC3339),
		Built:       st.Built.UTC().Format(time.RFC3339),
		Refreshable: sess.Refreshable(),
		Watching:    sess.Watching(),
		Stale:       stale,
		Changed:     changed,
	}
}

// sessionCreateBody is the POST /v1/sessions request: open path (a
// source directory, .cla database or .snap snapshot) under the given
// session name, optionally starting a watch loop on it.
type sessionCreateBody struct {
	Name  string `json:"name"`
	Path  string `json:"path"`
	Watch bool   `json:"watch,omitempty"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	var body sessionCreateBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "bad request body: %v", err))
		return
	}
	if body.Name == "" || body.Path == "" {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "session create needs both name and path"))
		return
	}
	cfg := s.cfg.Session
	if cfg.Jobs == 0 {
		cfg.Jobs = s.cfg.Jobs
	}
	if cfg.Obs == nil {
		cfg.Obs = s.o
	}
	sess, err := Open(r.Context(), body.Name, body.Path, cfg)
	if err != nil {
		s.fail(w, err)
		return
	}
	if !s.Sessions.AddNew(sess) {
		sess.Close()
		s.failStatus(w, http.StatusConflict, claerr.Newf(claerr.PhaseUsage,
			"session %q already exists; delete it first", body.Name))
		return
	}
	if body.Watch {
		if err := sess.StartWatch(s.watchInterval()); err != nil {
			// The session itself opened fine; surface the watch problem
			// but keep serving it unwatched.
			s.o.Counter("serve.watch.errors").Inc()
		}
	}
	s.o.Counter("serve.sessions.created").Inc()
	writeJSON(w, http.StatusCreated, sessionInfo(sess))
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	sess, err := s.Sessions.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleSessionRefresh(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	sess, err := s.Sessions.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if _, _, err := sess.Refresh(ctx); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo(sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	name := r.PathValue("id")
	sess, ok := s.Sessions.Remove(name)
	if !ok {
		s.fail(w, claerr.Newf(claerr.PhaseQuery, "no session named %q: %w", name, claerr.ErrNotFound))
		return
	}
	// Close drains queries pinned to the session before unmapping any
	// snapshot backing it; run it off the request goroutine.
	go sess.Close()
	s.o.Counter("serve.sessions.deleted").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// watchInterval resolves the configured watch poll interval.
func (s *Server) watchInterval() time.Duration {
	if s.cfg.WatchInterval > 0 {
		return s.cfg.WatchInterval
	}
	return 500 * time.Millisecond
}

// handleQuery answers the batched POST /v1/query endpoint.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "bad request body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "empty query batch"))
		return
	}
	sess, err := s.Sessions.Get(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	// Pin one generation for the whole batch: a concurrent refresh swaps
	// the session's state but cannot touch the snapshot this batch runs
	// against, and a concurrent delete waits for the release.
	st, release, err := sess.Acquire()
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	s.o.Counter("serve.queries").Add(int64(len(req.Queries)))
	s.o.Gauge("serve.inflight").Set(s.inflight.Add(int64(len(req.Queries))))
	results, err := st.Eval.EvalBatchObserve(ctx, req.Queries,
		func(q Query, d time.Duration) { s.observeQuery(sess, q.Kind, d) })
	s.o.Gauge("serve.inflight").Set(s.inflight.Add(-int64(len(req.Queries))))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, Response{Session: sess.Name, Generation: st.Gen, Results: results})
}

// singleHandler adapts one query kind to GET with URL parameters.
func (s *Server) singleHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.o.Counter("serve.requests").Add(1)
		s.o.Counter("serve.queries").Add(1)
		v := r.URL.Query()
		q := Query{
			Kind:   kind,
			Name:   v.Get("name"),
			X:      v.Get("x"),
			Y:      v.Get("y"),
			Func:   v.Get("func"),
			Target: v.Get("target"),
		}
		if nts := v["nontarget"]; len(nts) > 0 {
			q.NonTargets = nts
		}
		if v.Get("dropweak") != "" {
			q.DropWeak = true
		}
		if lim := v.Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				s.fail(w, claerr.Newf(claerr.PhaseUsage, "bad limit %q", lim))
				return
			}
			q.Limit = n
		}
		if cs := v.Get("checks"); cs != "" {
			q.Checks = strings.Split(cs, ",")
		}
		sess, err := s.Sessions.Get(v.Get("session"))
		if err != nil {
			s.fail(w, err)
			return
		}
		st, release, err := sess.Acquire()
		if err != nil {
			s.fail(w, err)
			return
		}
		defer release()
		w.Header().Set("X-Cla-Generation", strconv.FormatUint(st.Gen, 10))
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		start := time.Now()
		res := st.Eval.Eval(ctx, q)
		s.observeQuery(sess, kind, time.Since(start))
		if res.Err != nil {
			s.o.Counter("serve.errors").Add(1)
			writeJSON(w, res.Err.Status, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// requestCtx derives the evaluation context: the client's own request
// context (so a disconnect cancels evaluation) plus the configured
// server-side deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		return context.WithTimeout(ctx, s.cfg.Deadline)
	}
	return context.WithCancel(ctx)
}

// fail writes a request-level typed error.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.o.Counter("serve.errors").Add(1)
	body := errBody(err)
	writeJSON(w, body.Status, map[string]*ErrorBody{"error": body})
}

// failStatus is fail with an explicit HTTP status overriding the
// error's phase mapping (e.g. 409 for a session-name conflict).
func (s *Server) failStatus(w http.ResponseWriter, status int, err error) {
	s.o.Counter("serve.errors").Add(1)
	body := errBody(err)
	body.Status = status
	writeJSON(w, status, map[string]*ErrorBody{"error": body})
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
