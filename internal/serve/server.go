package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cla/internal/claerr"
	"cla/internal/obs"
)

// ServerConfig controls request handling.
type ServerConfig struct {
	// Jobs bounds batch fan-out per request (0 = all cores).
	Jobs int
	// Deadline caps each request's evaluation time (0 = no deadline).
	// The client's disconnect cancels evaluation either way.
	Deadline time.Duration
	// Obs backs /statsz and /metricsz; a fresh observer is created when
	// nil.
	Obs *obs.Observer
	// AccessLog, when non-nil, receives one JSON line per served request
	// (see accessRecord). Writes are serialized by the server.
	AccessLog io.Writer
	// SlowQuery is the latency at or above which a request is always
	// logged and flagged slow, bypassing sampling (0 disables).
	SlowQuery time.Duration
	// LogSample logs 1 in N requests to AccessLog (<= 1 logs all).
	LogSample int
}

// Server serves the query API over HTTP. Routes:
//
//	GET  /healthz                    liveness ("ok", or "draining" + 503)
//	GET  /statsz                     sessions + observer counters/gauges
//	GET  /v1/sessions                registered session names
//	POST /v1/query                   batched Request -> Response
//	GET  /v1/pointsto?name=          single-query conveniences; all accept
//	GET  /v1/alias?x=&y=             &session= to pick a snapshot
//	GET  /v1/callgraph
//	GET  /v1/modref?func=
//	GET  /v1/dependence?target=&nontarget=&dropweak=&limit=
//	GET  /v1/lint?checks=
type Server struct {
	Sessions *Registry

	cfg          ServerConfig
	o            *obs.Observer
	mux          *http.ServeMux
	handler      http.Handler
	http         *http.Server
	access       *obs.Logger
	idBase       string
	draining     atomic.Bool
	inflight     atomic.Int64
	httpInflight atomic.Int64
	reqSeq       atomic.Uint64
}

// NewServer builds a server over a session registry.
func NewServer(reg *Registry, cfg ServerConfig) *Server {
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	s := &Server{
		Sessions: reg, cfg: cfg, o: o, mux: http.NewServeMux(),
		access: obs.NewLogger(cfg.AccessLog),
		idBase: fmt.Sprintf("%08x", time.Now().UnixNano()&0xffffffff),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessions)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	for _, kind := range []string{"pointsto", "alias", "callgraph", "modref", "dependence", "lint"} {
		s.mux.HandleFunc("GET /v1/"+kind, s.singleHandler(kind))
	}
	s.handler = s.instrument(s.mux)
	s.http = &http.Server{Handler: s.handler}
	return s
}

// Handler exposes the instrumented route table (for tests via
// httptest) — the same handler Serve uses, middleware included.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.http.Serve(ln)
}

// Shutdown drains the server gracefully: /healthz flips to 503 so load
// balancers stop routing, in-flight requests run to completion (or until
// ctx fires), and new connections are refused.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.http.SetKeepAlivesEnabled(false)
	return s.http.Shutdown(ctx)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// statszBody is the /statsz response shape. Gauges include the
// runtime.* health readings captured at scrape time, so a fleet
// health-checker needs only this one target.
type statszBody struct {
	Sessions []statszSession  `json:"sessions"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
}

// metricMap renders observer metrics for JSON.
func metricMap(ms []obs.Metric) map[string]int64 {
	out := make(map[string]int64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out
}

type statszSession struct {
	Name    string `json:"name"`
	Path    string `json:"path"`
	Syms    int    `json:"syms"`
	Assigns int    `json:"assigns"`
	Created string `json:"created"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.o.CaptureRuntime()
	body := statszBody{
		Sessions: []statszSession{},
		Counters: metricMap(s.o.Counters()),
		Gauges:   metricMap(s.o.Gauges()),
	}
	for _, name := range s.Sessions.Names() {
		sess, err := s.Sessions.Get(name)
		if err != nil {
			continue
		}
		body.Sessions = append(body.Sessions, statszSession{
			Name:    sess.Name,
			Path:    sess.Path,
			Syms:    sess.Eval.NumSyms(),
			Assigns: sess.Eval.NumAssigns(),
			Created: sess.Created.UTC().Format(time.RFC3339),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": s.Sessions.Names()})
}

// handleQuery answers the batched POST /v1/query endpoint.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.o.Counter("serve.requests").Add(1)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "bad request body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, claerr.Newf(claerr.PhaseUsage, "empty query batch"))
		return
	}
	sess, err := s.Sessions.Get(req.Session)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	s.o.Counter("serve.queries").Add(int64(len(req.Queries)))
	s.o.Gauge("serve.inflight").Set(s.inflight.Add(int64(len(req.Queries))))
	results, err := sess.Eval.EvalBatchObserve(ctx, req.Queries,
		func(q Query, d time.Duration) { s.observeQuery(sess, q.Kind, d) })
	s.o.Gauge("serve.inflight").Set(s.inflight.Add(-int64(len(req.Queries))))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, Response{Session: sess.Name, Results: results})
}

// singleHandler adapts one query kind to GET with URL parameters.
func (s *Server) singleHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.o.Counter("serve.requests").Add(1)
		s.o.Counter("serve.queries").Add(1)
		v := r.URL.Query()
		q := Query{
			Kind:   kind,
			Name:   v.Get("name"),
			X:      v.Get("x"),
			Y:      v.Get("y"),
			Func:   v.Get("func"),
			Target: v.Get("target"),
		}
		if nts := v["nontarget"]; len(nts) > 0 {
			q.NonTargets = nts
		}
		if v.Get("dropweak") != "" {
			q.DropWeak = true
		}
		if lim := v.Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				s.fail(w, claerr.Newf(claerr.PhaseUsage, "bad limit %q", lim))
				return
			}
			q.Limit = n
		}
		if cs := v.Get("checks"); cs != "" {
			q.Checks = strings.Split(cs, ",")
		}
		sess, err := s.Sessions.Get(v.Get("session"))
		if err != nil {
			s.fail(w, err)
			return
		}
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		start := time.Now()
		res := sess.Eval.Eval(ctx, q)
		s.observeQuery(sess, kind, time.Since(start))
		if res.Err != nil {
			s.o.Counter("serve.errors").Add(1)
			writeJSON(w, res.Err.Status, res)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// requestCtx derives the evaluation context: the client's own request
// context (so a disconnect cancels evaluation) plus the configured
// server-side deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		return context.WithTimeout(ctx, s.cfg.Deadline)
	}
	return context.WithCancel(ctx)
}

// fail writes a request-level typed error.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.o.Counter("serve.errors").Add(1)
	body := errBody(err)
	writeJSON(w, body.Status, map[string]*ErrorBody{"error": body})
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
