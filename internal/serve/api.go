// Package serve is the query-serving layer: it turns a completed
// points-to analysis into a long-running service. A session registry
// holds analyzed snapshots (opened from a .cla database or a source
// directory), an Evaluator answers the six query kinds — points-to,
// may-alias, call graph, MOD/REF, dependence, lint — and an HTTP server
// exposes them over TCP or a unix socket with per-request deadlines,
// client-cancellation propagation and graceful drain.
//
// The same request and response shapes back the public cla.Serve and
// Analysis.Query APIs, so an in-process library caller and a curl user
// speak one protocol.
//
// Determinism contract: batched queries fan out across
// internal/parallel workers into index-addressed result slots, every
// query kind produces sorted output, and responses are byte-identical
// at any Jobs setting.
package serve

import (
	"cla/internal/checks"
	"cla/internal/claerr"
)

// Request is one batched query-API call (the body of POST /v1/query).
type Request struct {
	// Session names the analyzed snapshot to query. Empty selects the
	// registry's only session, erroring when several are registered.
	Session string `json:"session,omitempty"`
	// Queries evaluate independently — one failing query reports its
	// error inline without failing the batch.
	Queries []Query `json:"queries"`
}

// Query is one sub-query of a batch.
type Query struct {
	// Kind selects the query: "pointsto", "alias", "callgraph",
	// "modref", "dependence" or "lint".
	Kind string `json:"kind"`

	// Name is the queried object for pointsto.
	Name string `json:"name,omitempty"`
	// X and Y are the two pointer objects for alias.
	X string `json:"x,omitempty"`
	Y string `json:"y,omitempty"`
	// Func restricts modref to one function ("" returns all summaries).
	Func string `json:"func,omitempty"`
	// Target is the dependence target; NonTargets and DropWeak mirror
	// cla.DependOptions; Limit caps the dependents returned (0 = all).
	Target     string   `json:"target,omitempty"`
	NonTargets []string `json:"nontargets,omitempty"`
	DropWeak   bool     `json:"drop_weak,omitempty"`
	Limit      int      `json:"limit,omitempty"`
	// Checks restricts lint to the named checks (nil = all).
	Checks []string `json:"checks,omitempty"`
}

// Response answers a Request, results in query order. Generation
// identifies the session generation the whole batch was evaluated
// against (1 for one-shot sessions); it only moves when a watch-mode
// refresh swaps in a new fixpoint.
type Response struct {
	Session    string        `json:"session"`
	Generation uint64        `json:"generation,omitempty"`
	Results    []QueryResult `json:"results"`
}

// QueryResult is one query's answer. Exactly one of the payload fields
// is set on success; Err is set instead when the query failed.
type QueryResult struct {
	Kind string     `json:"kind"`
	Err  *ErrorBody `json:"error,omitempty"`

	Objects    []Object      `json:"objects,omitempty"`    // pointsto
	Alias      *bool         `json:"alias,omitempty"`      // alias
	Graph      *checks.Graph `json:"graph,omitempty"`      // callgraph
	ModRef     []ModRefEntry `json:"modref,omitempty"`     // modref
	Dependents []DependEntry `json:"dependents,omitempty"` // dependence
	Findings   []Finding     `json:"findings,omitempty"`   // lint
}

// Object is one program object in a points-to answer.
type Object struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Type string `json:"type,omitempty"`
	Pos  string `json:"pos,omitempty"`
	Func string `json:"func,omitempty"`
}

// ModRefEntry is one function's MOD/REF summary.
type ModRefEntry struct {
	Func      string   `json:"func"`
	Mod       []string `json:"mod"`
	Ref       []string `json:"ref"`
	DirectMod []string `json:"direct_mod"`
	DirectRef []string `json:"direct_ref"`
}

// DependEntry is one object dependent on a dependence target.
type DependEntry struct {
	Object   Object `json:"object"`
	Strong   bool   `json:"strong"`
	Distance int    `json:"distance"`
	Chain    string `json:"chain"`
}

// Finding is one lint diagnostic.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
}

// ErrorBody is the wire form of a typed error: the failing phase, the
// HTTP status the serving layer maps it to, and the message.
type ErrorBody struct {
	Phase   string `json:"phase,omitempty"`
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// errBody converts an error to its wire form (nil-safe).
func errBody(err error) *ErrorBody {
	if err == nil {
		return nil
	}
	return &ErrorBody{
		Phase:   string(claerr.PhaseOf(err)),
		Status:  claerr.HTTPStatus(err),
		Message: err.Error(),
	}
}
