package serve

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cla/internal/checks"
	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/pts"
	"cla/internal/snapfile"
)

// BuildSnapshot runs the exact session-build pipeline Open uses —
// load, extern model, solve, the shared four-check report — and packages
// the outcome as a writable snapfile.Snapshot. Reusing the pipeline is
// what makes snapshot-served answers byte-identical to live-solve ones.
// The snapshot records content hashes of the inputs (the .cla file, or
// every .c file of a source directory) for staleness detection.
func BuildSnapshot(ctx context.Context, path string, cfg Config) (*snapfile.Snapshot, error) {
	prog, err := load(ctx, path, cfg)
	if err != nil {
		return nil, err
	}
	extmodel.Apply(prog, cfg.ExtModel)
	src := pts.NewMemSource(prog)
	ccfg := core.DefaultConfig()
	ccfg.Jobs = cfg.Jobs
	res, err := driver.AnalyzeObsCtx(ctx, src, cfg.Solver, ccfg, cfg.Obs)
	if err != nil {
		return nil, claerr.File(claerr.PhaseAnalyze, path, err)
	}
	// The cached report must match Evaluator.checksReport exactly: the
	// default four checks, no externs. The soundness audit runs
	// separately and rides along in its own slot.
	rep, err := checks.Run(prog, res, checks.Options{Jobs: cfg.Jobs, Obs: cfg.Obs})
	if err != nil {
		return nil, claerr.File(claerr.PhaseLint, path, err)
	}
	var audit *checks.Audit
	if cfg.ExtModel != extmodel.Unsound {
		arep, err := checks.Run(prog, res, checks.Options{
			Checks: []checks.Check{checks.Externs}, Jobs: cfg.Jobs,
			ExtModel: cfg.ExtModel.String(), Obs: cfg.Obs,
		})
		if err != nil {
			return nil, claerr.File(claerr.PhaseLint, path, err)
		}
		audit = arep.Audit
	}
	srcFiles, err := snapshotSources(path)
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	return &snapfile.Snapshot{
		Prog:     prog,
		Res:      res,
		Solver:   cfg.Solver.String(),
		ExtModel: cfg.ExtModel.String(),
		Report:   rep,
		Audit:    audit,
		Sources:  srcFiles,
	}, nil
}

// snapshotSources lists the input files a snapshot of path depends on:
// the object file itself, or every .c unit of a source directory (the
// same set CompileDir compiles, in the same sorted order).
func snapshotSources(path string) ([]snapfile.SourceFile, error) {
	if strings.HasSuffix(path, ".cla") {
		return snapfile.HashSources([]string{path})
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var units []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".c" {
			units = append(units, filepath.Join(path, e.Name()))
		}
	}
	sort.Strings(units)
	return snapfile.HashSources(units)
}

// openSnapshot builds a session from a solved .snap file: page the file
// in, rebuild the in-memory source from the recorded program, seed the
// cached checks report — no parse, no solve. The open is integrity-
// checked end to end by the reader; unless cfg.SkipVerify is set the
// recorded source hashes are re-checked and a mismatch fails with
// claerr.ErrStale (HTTP 409, exit code 3).
func openSnapshot(name, path string, cfg Config) (*Session, error) {
	start := time.Now()
	r, err := snapfile.Open(path, snapfile.Options{})
	if err != nil {
		return nil, claerr.File(claerr.PhaseObject, path, err)
	}
	if !cfg.SkipVerify {
		if err := r.VerifySources(); err != nil {
			r.Close()
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
	}
	prog := r.Program()
	ev := NewEvaluator(prog, pts.NewMemSource(prog), r.Result(), cfg.Jobs)
	ev.SeedChecks(r.Report())
	cfg.Obs.Histogram("serve.snapshot.load").ObserveSince(start)
	s := &Session{
		Name:    name,
		Path:    path,
		Kind:    "snapshot",
		Snap:    r,
		cfg:     cfg,
		Created: time.Now(),
	}
	s.state.Store(&SessionState{Eval: ev, Gen: 1, Built: s.Created})
	return s, nil
}
