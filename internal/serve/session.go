package serve

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/incr"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/snapfile"
)

// Config controls how a session's snapshot is built.
type Config struct {
	// Solver selects the points-to algorithm (default PreTransitive).
	Solver driver.Solver
	// ExtModel closes the snapshot over undefined externals before solving
	// (default Unsound leaves the database untouched). Modeled snapshots
	// answer the "externs" lint check with a populated audit.
	ExtModel extmodel.Model
	// Jobs bounds compile fan-out, the solve and later batch queries.
	Jobs int
	// Includes are extra directories searched for #include files when the
	// session path is a source directory.
	Includes []string
	// CacheDir, when non-empty, persists compiled unit databases for
	// directory sessions, so reopening an unchanged tree skips the parse.
	CacheDir string
	// Obs, when non-nil, records the build phases and solver counters.
	Obs *obs.Observer
	// SkipVerify opens solved snapshots without re-hashing their recorded
	// sources (trusted deploys, or when the sources are not on disk).
	SkipVerify bool
}

// SessionState is one immutable generation of a session: the evaluator
// answering queries plus the generation it belongs to. Handlers load it
// once per request, so a concurrent refresh never changes the snapshot
// a request is answering from.
type SessionState struct {
	// Eval answers queries against this generation's fixpoint.
	Eval *Evaluator
	// Gen is the generation number (1 for the first build; one-shot
	// sessions stay at 1 forever).
	Gen uint64
	// Built is when this generation finished building.
	Built time.Time
}

// Session is one analyzed snapshot held by the server. Directory-backed
// sessions are refreshable: each refresh recompiles only the changed
// units and atomically swaps in a new generation, while queries already
// in flight keep the generation they started on.
type Session struct {
	// Name addresses the session in requests.
	Name string
	// Path is the .cla database, .snap snapshot or source directory it
	// was built from (empty for in-process sessions).
	Path string
	// Kind reports the backing store: "dir", "object", "snapshot" or
	// "memory".
	Kind string
	// Snap holds the open solved-snapshot reader when the session was
	// served from a .snap file; the Evaluator's sets alias its mapping,
	// so it stays open until the session closes. Nil otherwise.
	Snap *snapfile.Reader
	// Created is when the session was first opened.
	Created time.Time

	cfg  Config
	pipe *incr.Pipeline // non-nil for refreshable (directory) sessions

	state    atomic.Pointer[SessionState]
	inflight atomic.Int64
	closed   atomic.Bool

	watchMu   sync.Mutex
	stopWatch context.CancelFunc
	watchDone chan struct{}

	refreshMu sync.Mutex
}

// NewSession wraps an existing evaluator as a one-shot in-memory
// session at generation 1 (the in-process cla.Serve path).
func NewSession(name, path string, ev *Evaluator) *Session {
	s := &Session{Name: name, Path: path, Kind: "memory", Created: time.Now()}
	s.state.Store(&SessionState{Eval: ev, Gen: 1, Built: s.Created})
	return s
}

// Open builds a session from path: a directory is opened as an
// incremental pipeline (dir plus cfg.Includes on the include path) whose
// sessions can later Refresh, a .cla file is read whole and solved once,
// a .snap solved snapshot is paged in with no parse or solve at all
// (cfg.Solver and cfg.ExtModel are then ignored — the snapshot records
// the configuration it was solved under). Either way the full program is
// materialized in memory and solved, so the resulting Evaluator has no
// mutable demand-load state and serves concurrent queries safely.
func Open(ctx context.Context, name, path string, cfg Config) (*Session, error) {
	if strings.HasSuffix(path, ".snap") {
		return openSnapshot(name, path, cfg)
	}
	if strings.HasSuffix(path, ".cla") {
		prog, err := load(ctx, path, cfg)
		if err != nil {
			return nil, err
		}
		extmodel.Apply(prog, cfg.ExtModel)
		src := pts.NewMemSource(prog)
		ccfg := core.DefaultConfig()
		ccfg.Jobs = cfg.Jobs
		res, err := driver.AnalyzeObsCtx(ctx, src, cfg.Solver, ccfg, cfg.Obs)
		if err != nil {
			return nil, claerr.File(claerr.PhaseAnalyze, path, err)
		}
		s := &Session{Name: name, Path: path, Kind: "object", cfg: cfg, Created: time.Now()}
		s.state.Store(&SessionState{
			Eval:  NewEvaluator(prog, src, res, cfg.Jobs),
			Gen:   1,
			Built: s.Created,
		})
		return s, nil
	}
	pipe, err := incr.Open(ctx, pipeConfig(path, cfg))
	if err != nil {
		return nil, claerr.File(claerr.PhaseCompile, path, err)
	}
	s := &Session{Name: name, Path: path, Kind: "dir", cfg: cfg, pipe: pipe, Created: time.Now()}
	s.adopt(pipe.Current())
	return s, nil
}

// pipeConfig maps a session Config onto the incremental pipeline's.
func pipeConfig(dir string, cfg Config) incr.Config {
	ccfg := core.DefaultConfig()
	ccfg.Jobs = cfg.Jobs
	return incr.Config{
		Dir:      dir,
		Includes: cfg.Includes,
		Solver:   cfg.Solver,
		Model:    cfg.ExtModel,
		Core:     ccfg,
		Jobs:     cfg.Jobs,
		CacheDir: cfg.CacheDir,
		Obs:      cfg.Obs,
	}
}

func load(ctx context.Context, path string, cfg Config) (*prim.Program, error) {
	if strings.HasSuffix(path, ".cla") {
		r, err := objfile.Open(path)
		if err != nil {
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
		defer r.Close()
		prog, err := r.Program()
		if err != nil {
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
		return prog, nil
	}
	return incr.CompileDir(ctx, incr.Config{
		Dir: path, Includes: cfg.Includes, Jobs: cfg.Jobs, Obs: cfg.Obs,
	})
}

// State returns the current generation. The snapshot is immutable; hold
// it for the duration of one request to pin the generation.
func (s *Session) State() *SessionState { return s.state.Load() }

// Eval returns the current generation's evaluator. Handlers that issue
// several evaluator calls for one request should call State (or Acquire)
// once instead, so a mid-request refresh cannot split the request across
// generations.
func (s *Session) Eval() *Evaluator { return s.state.Load().Eval }

// Generation returns the current generation number.
func (s *Session) Generation() uint64 { return s.state.Load().Gen }

// Refreshable reports whether Refresh can build new generations
// (directory-backed sessions only).
func (s *Session) Refreshable() bool { return s.pipe != nil }

// Acquire pins the current generation for one request: the returned
// state stays valid until release is called, even if the session is
// deleted mid-request (a .snap unmap waits for the drain). It fails
// once the session is closed.
func (s *Session) Acquire() (*SessionState, func(), error) {
	if s.closed.Load() {
		return nil, nil, claerr.Newf(claerr.PhaseQuery, "session %q is closed: %w", s.Name, claerr.ErrNotFound)
	}
	s.inflight.Add(1)
	if s.closed.Load() {
		// Lost the race with Close; back out before it unmaps.
		s.inflight.Add(-1)
		return nil, nil, claerr.Newf(claerr.PhaseQuery, "session %q is closed: %w", s.Name, claerr.ErrNotFound)
	}
	var once sync.Once
	release := func() { once.Do(func() { s.inflight.Add(-1) }) }
	return s.state.Load(), release, nil
}

// Refresh re-checks the session's source directory and builds a new
// generation if anything changed, swapping it in atomically. It returns
// the state serving after the refresh and whether it is a new
// generation. On a failed refresh (e.g. a syntax error mid-edit) the
// previous generation keeps serving and the error is returned.
func (s *Session) Refresh(ctx context.Context) (*SessionState, bool, error) {
	if s.pipe == nil {
		return nil, false, claerr.Newf(claerr.PhaseUsage,
			"session %q (%s-backed) is not refreshable; only source-directory sessions are", s.Name, s.Kind)
	}
	res, _, err := s.pipe.Refresh(ctx)
	if err != nil {
		return nil, false, claerr.File(claerr.PhaseCompile, s.Path, err)
	}
	st, changed := s.adopt(res)
	return st, changed, nil
}

// Stale cheaply probes a directory session for drift without
// rebuilding: one stat per tracked file plus a directory listing.
// Non-refreshable sessions always report clean.
func (s *Session) Stale() (bool, []string) {
	if s.pipe == nil {
		return false, nil
	}
	return s.pipe.Stale()
}

// adopt installs a pipeline result as the serving generation, unless it
// already is (refreshes serialize on refreshMu, so generations can only
// move forward).
func (s *Session) adopt(r *incr.Result) (*SessionState, bool) {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if cur := s.state.Load(); cur != nil && cur.Gen == r.Gen {
		return cur, false
	}
	st := &SessionState{
		Eval:  NewEvaluator(r.Prog, r.Src, r.Res, s.cfg.Jobs),
		Gen:   r.Gen,
		Built: r.Built,
	}
	s.state.Store(st)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter("serve.session.refreshes").Inc()
	}
	return st, true
}

// StartWatch begins polling the session's directory every interval and
// refreshing when tracked files change. Each successful refresh swaps
// the serving generation atomically; failed refreshes (mid-edit syntax
// errors) are counted and the previous generation keeps serving.
// Watching an already-watched or non-refreshable session is an error.
func (s *Session) StartWatch(interval time.Duration) error {
	if s.pipe == nil {
		return claerr.Newf(claerr.PhaseUsage,
			"session %q (%s-backed) cannot watch; only source-directory sessions can", s.Name, s.Kind)
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if s.stopWatch != nil {
		return claerr.Newf(claerr.PhaseUsage, "session %q is already watching", s.Name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.stopWatch = cancel
	done := make(chan struct{})
	s.watchDone = done
	w := incr.NewPollWatcher(s.Path, s.pipe.TrackedFiles, interval)
	go func() {
		defer close(done)
		defer w.Close()
		incr.WatchLoop(ctx, s.pipe, w, interval/2, func(r *incr.Result, st incr.RefreshStats, err error) {
			if err != nil {
				if s.cfg.Obs != nil {
					s.cfg.Obs.Counter("serve.watch.errors").Inc()
				}
				return
			}
			if st.Changed {
				s.adopt(r)
			}
		})
	}()
	return nil
}

// StopWatch stops the watch loop, if any, and waits for it to exit.
func (s *Session) StopWatch() {
	s.watchMu.Lock()
	cancel, done := s.stopWatch, s.watchDone
	s.stopWatch, s.watchDone = nil, nil
	s.watchMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

// Watching reports whether a watch loop is running.
func (s *Session) Watching() bool {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return s.stopWatch != nil
}

// Close retires the session: the watch loop stops, new Acquires fail,
// and once in-flight requests drain any backing snapshot file is
// unmapped. Idempotent; safe to call from a handler goroutine.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.StopWatch()
	for s.inflight.Load() != 0 {
		time.Sleep(time.Millisecond)
	}
	if s.Snap != nil {
		return s.Snap.Close()
	}
	return nil
}

// Registry is the server's session table. Concurrent-safe.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// Add registers s, replacing any session with the same name.
func (r *Registry) Add(s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions[s.Name] = s
}

// AddNew registers s only if the name is free, reporting whether it was
// added — the conflict-checked variant POST /v1/sessions needs.
func (r *Registry) AddNew(s *Session) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.sessions[s.Name]; exists {
		return false
	}
	r.sessions[s.Name] = s
	return true
}

// Remove unregisters and returns the named session. The caller owns
// closing it (after queries pinned to it drain).
func (r *Registry) Remove(name string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[name]
	if ok {
		delete(r.sessions, name)
	}
	return s, ok
}

// Get resolves a session name. The empty name selects the registry's
// only session; it is an error when none or several are registered.
// Unknown names wrap ErrNotFound.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.sessions) == 1 {
			for _, s := range r.sessions {
				return s, nil
			}
		}
		return nil, claerr.Newf(claerr.PhaseQuery, "session name required (%d sessions registered)", len(r.sessions))
	}
	s, ok := r.sessions[name]
	if !ok {
		return nil, claerr.Newf(claerr.PhaseQuery, "no session named %q: %w", name, claerr.ErrNotFound)
	}
	return s, nil
}

// Names lists the registered sessions, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
