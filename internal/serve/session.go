package serve

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/extmodel"
	"cla/internal/frontend"
	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/snapfile"
)

// Config controls how a session's snapshot is built.
type Config struct {
	// Solver selects the points-to algorithm (default PreTransitive).
	Solver driver.Solver
	// ExtModel closes the snapshot over undefined externals before solving
	// (default Unsound leaves the database untouched). Modeled snapshots
	// answer the "externs" lint check with a populated audit.
	ExtModel extmodel.Model
	// Jobs bounds compile fan-out, the solve and later batch queries.
	Jobs int
	// Includes are extra directories searched for #include files when the
	// session path is a source directory.
	Includes []string
	// Obs, when non-nil, records the build phases and solver counters.
	Obs *obs.Observer
	// SkipVerify opens solved snapshots without re-hashing their recorded
	// sources (trusted deploys, or when the sources are not on disk).
	SkipVerify bool
}

// Session is one analyzed snapshot held by the server.
type Session struct {
	// Name addresses the session in requests.
	Name string
	// Path is the .cla database or source directory it was built from.
	Path string
	// Eval answers queries against the snapshot.
	Eval *Evaluator
	// Snap holds the open solved-snapshot reader when the session was
	// served from a .snap file; the Evaluator's sets alias its mapping,
	// so it stays open for the session's lifetime. Nil for live solves.
	Snap *snapfile.Reader
	// Created is when the snapshot finished building.
	Created time.Time
}

// Open builds a session from path: a directory is compiled and linked
// (dir plus cfg.Includes on the include path), a .cla file is read
// whole, a .snap solved snapshot is paged in with no parse or solve at
// all (cfg.Solver and cfg.ExtModel are then ignored — the snapshot
// records the configuration it was solved under). Either way the full
// program is materialized in memory and solved, so the resulting
// Evaluator has no mutable demand-load state and serves concurrent
// queries safely.
func Open(ctx context.Context, name, path string, cfg Config) (*Session, error) {
	if strings.HasSuffix(path, ".snap") {
		return openSnapshot(name, path, cfg)
	}
	prog, err := load(ctx, path, cfg)
	if err != nil {
		return nil, err
	}
	extmodel.Apply(prog, cfg.ExtModel)
	src := pts.NewMemSource(prog)
	ccfg := core.DefaultConfig()
	ccfg.Jobs = cfg.Jobs
	res, err := driver.AnalyzeObsCtx(ctx, src, cfg.Solver, ccfg, cfg.Obs)
	if err != nil {
		return nil, claerr.File(claerr.PhaseAnalyze, path, err)
	}
	return &Session{
		Name:    name,
		Path:    path,
		Eval:    NewEvaluator(prog, src, res, cfg.Jobs),
		Created: time.Now(),
	}, nil
}

func load(ctx context.Context, path string, cfg Config) (*prim.Program, error) {
	if strings.HasSuffix(path, ".cla") {
		r, err := objfile.Open(path)
		if err != nil {
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
		defer r.Close()
		prog, err := r.Program()
		if err != nil {
			return nil, claerr.File(claerr.PhaseObject, path, err)
		}
		return prog, nil
	}
	prog, err := driver.CompileDirCtx(ctx, path, cfg.Includes, frontend.Options{}, cfg.Jobs, cfg.Obs)
	if err != nil {
		return nil, claerr.New(claerr.PhaseCompile, err)
	}
	return prog, nil
}

// Registry is the server's session table. Concurrent-safe.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[string]*Session)}
}

// Add registers s, replacing any session with the same name.
func (r *Registry) Add(s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions[s.Name] = s
}

// Get resolves a session name. The empty name selects the registry's
// only session; it is an error when none or several are registered.
// Unknown names wrap ErrNotFound.
func (r *Registry) Get(name string) (*Session, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.sessions) == 1 {
			for _, s := range r.sessions {
				return s, nil
			}
		}
		return nil, claerr.Newf(claerr.PhaseQuery, "session name required (%d sessions registered)", len(r.sessions))
	}
	s, ok := r.sessions[name]
	if !ok {
		return nil, claerr.Newf(claerr.PhaseQuery, "no session named %q: %w", name, claerr.ErrNotFound)
	}
	return s, nil
}

// Names lists the registered sessions, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
