package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/objfile"
)

// writeTestDir lays out a two-unit C program with a function pointer
// (for the call graph), a heap-free alias pair and a dependence chain.
func writeTestDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"a.c": `int g; int other;
int *p, *q, *lone;
int mirror;
void set(void) { p = &g; q = &g; lone = &other; }
void reflect(void) { mirror = g; }
`,
		"b.c": `extern int *p;
int *r;
void copy(void) { r = p; }
void work(void) { copy(); }
void (*fp)(void);
void install(void) { fp = copy; }
void dispatch(void) { fp(); }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func openTestSession(t *testing.T, jobs int) *Session {
	t.Helper()
	dir := writeTestDir(t)
	sess, err := Open(context.Background(), "test", dir, Config{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// mixedQueries covers all six kinds.
func mixedQueries() []Query {
	return []Query{
		{Kind: "pointsto", Name: "p"},
		{Kind: "alias", X: "p", Y: "q"},
		{Kind: "alias", X: "p", Y: "lone"},
		{Kind: "callgraph"},
		{Kind: "modref", Func: "set"},
		{Kind: "dependence", Target: "g"},
		{Kind: "lint"},
	}
}

func TestEvalAllKinds(t *testing.T) {
	sess := openTestSession(t, 1)
	results, err := sess.Eval.EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d (%s): %s", i, r.Kind, r.Err.Message)
		}
	}
	if len(results[0].Objects) != 1 || results[0].Objects[0].Name != "g" {
		t.Errorf("pointsto(p) = %+v, want {g}", results[0].Objects)
	}
	if results[1].Alias == nil || !*results[1].Alias {
		t.Error("alias(p, q) = false, want true")
	}
	if results[2].Alias == nil || *results[2].Alias {
		t.Error("alias(p, lone) = true, want false")
	}
	if results[3].Graph == nil || len(results[3].Graph.Funcs) == 0 {
		t.Error("callgraph empty")
	}
	if len(results[4].ModRef) != 1 || results[4].ModRef[0].Func != "set" {
		t.Errorf("modref(set) = %+v", results[4].ModRef)
	}
	if len(results[5].Dependents) == 0 {
		t.Error("dependence(g) found no dependents")
	}
}

// TestDirAndFileAgree opens the same program as a source directory and as
// a .cla database and expects byte-identical batch responses.
func TestDirAndFileAgree(t *testing.T) {
	dir := writeTestDir(t)
	prog, err := driver.CompileDirObs(dir, frontend.Options{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	claPath := filepath.Join(t.TempDir(), "prog.cla")
	if err := objfile.WriteFile(claPath, prog); err != nil {
		t.Fatal(err)
	}
	fromDir, err := Open(context.Background(), "s", dir, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Open(context.Background(), "s", claPath, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromDir.Eval.EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromFile.Eval.EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, a), marshal(t, b)) {
		t.Error("dir-backed and file-backed sessions disagree")
	}
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchDeterminism requires byte-identical responses at -j 1 and
// -j 8 — the repo-wide determinism contract applied to the serving layer.
func TestBatchDeterminism(t *testing.T) {
	dir := writeTestDir(t)
	var outs [][]byte
	for _, jobs := range []int{1, 8} {
		sess, err := Open(context.Background(), "s", dir, Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		// A batch big enough to exercise real fan-out.
		var qs []Query
		for i := 0; i < 16; i++ {
			qs = append(qs, mixedQueries()...)
		}
		results, err := sess.Eval.EvalBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, marshal(t, results))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("responses differ between -j 1 and -j 8")
	}
}

// TestConcurrentMixedQueries fires mixed batches at one session from many
// goroutines; run under -race this is the serving layer's thread-safety
// proof.
func TestConcurrentMixedQueries(t *testing.T) {
	sess := openTestSession(t, 4)
	base, err := sess.Eval.EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				results, err := sess.Eval.EvalBatch(context.Background(), mixedQueries())
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(want, marshal(t, results)) {
					errs[g] = errors.New("concurrent response differs")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	sess := openTestSession(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sess.Eval.EvalBatch(ctx, mixedQueries())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalBatch(canceled ctx) = %v, want context.Canceled", err)
	}
	if claerr.HTTPStatus(err) != 499 {
		t.Errorf("HTTPStatus = %d, want 499", claerr.HTTPStatus(err))
	}
}

func TestQueryErrors(t *testing.T) {
	sess := openTestSession(t, 1)
	ctx := context.Background()
	r := sess.Eval.Eval(ctx, Query{Kind: "pointsto", Name: "nosuch"})
	if r.Err == nil || r.Err.Status != http.StatusNotFound {
		t.Errorf("pointsto(nosuch) = %+v, want 404", r.Err)
	}
	r = sess.Eval.Eval(ctx, Query{Kind: "frobnicate"})
	if r.Err == nil || r.Err.Status != http.StatusBadRequest {
		t.Errorf("unknown kind = %+v, want 400", r.Err)
	}
	r = sess.Eval.Eval(ctx, Query{Kind: "lint", Checks: []string{"nosuchcheck"}})
	if r.Err == nil || r.Err.Status != http.StatusBadRequest {
		t.Errorf("bad check = %+v, want 400", r.Err)
	}
}

func newTestServer(t *testing.T, jobs int) *Server {
	t.Helper()
	reg := NewRegistry()
	reg.Add(openTestSession(t, jobs))
	return NewServer(reg, ServerConfig{Jobs: jobs})
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, 2)
	h := s.Handler()

	if rec := get(t, h, "/healthz"); rec.Code != 200 || !strings.HasPrefix(rec.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/sessions"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"test"`) {
		t.Errorf("sessions = %d %q", rec.Code, rec.Body.String())
	}

	rec := get(t, h, "/v1/pointsto?name=p")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"name": "g"`) {
		t.Errorf("pointsto = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/pointsto?name=nosuch"); rec.Code != 404 {
		t.Errorf("pointsto(nosuch) = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/v1/alias?x=p&y=q"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"alias": true`) {
		t.Errorf("alias = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/callgraph"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "dispatch") {
		t.Errorf("callgraph = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/modref?func=set"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"func": "set"`) {
		t.Errorf("modref = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/dependence?target=g&limit=5"); rec.Code != 200 {
		t.Errorf("dependence = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/lint?checks=deref,escape"); rec.Code != 200 {
		t.Errorf("lint = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/dependence?target=g&limit=bogus"); rec.Code != 400 {
		t.Errorf("bad limit = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/pointsto?name=p&session=nosuch"); rec.Code != 404 {
		t.Errorf("bad session = %d, want 404", rec.Code)
	}

	// statsz reflects the traffic above.
	rec = get(t, h, "/statsz")
	var stats struct {
		Sessions []struct {
			Name string `json:"name"`
			Syms int    `json:"syms"`
		} `json:"sessions"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].Name != "test" || stats.Sessions[0].Syms == 0 {
		t.Errorf("statsz sessions = %+v", stats.Sessions)
	}
	if stats.Counters["serve.requests"] == 0 || stats.Counters["serve.errors"] == 0 {
		t.Errorf("statsz counters = %v", stats.Counters)
	}
}

func TestHTTPBatch(t *testing.T) {
	s := newTestServer(t, 2)
	body := marshal(t, Request{Queries: mixedQueries()})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Session != "test" || len(resp.Results) != len(mixedQueries()) {
		t.Fatalf("batch response = %+v", resp)
	}
	for i, r := range resp.Results {
		if r.Err != nil {
			t.Errorf("query %d (%s): %s", i, r.Kind, r.Err.Message)
		}
	}

	// Malformed body and empty batch are usage errors.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", strings.NewReader("{nope")))
	if rec.Code != 400 {
		t.Errorf("bad body = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"queries":[]}`)))
	if rec.Code != 400 {
		t.Errorf("empty batch = %d, want 400", rec.Code)
	}
}

// TestClientDisconnectAbortsBatch proves an in-flight batch aborts when
// the client goes away: the request context reaches the evaluation
// fan-out, so a canceled request yields 499 instead of a full answer.
func TestClientDisconnectAbortsBatch(t *testing.T) {
	s := newTestServer(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	var qs []Query
	for i := 0; i < 64; i++ {
		qs = append(qs, Query{Kind: "pointsto", Name: "p"})
	}
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(marshal(t, Request{Queries: qs})))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != 499 {
		t.Fatalf("canceled batch = %d %q, want 499", rec.Code, rec.Body.String())
	}
}

func TestDeadline(t *testing.T) {
	reg := NewRegistry()
	reg.Add(openTestSession(t, 1))
	s := NewServer(reg, ServerConfig{Deadline: 1}) // 1ns: every request expires
	rec := httptest.NewRecorder()
	body := marshal(t, Request{Queries: mixedQueries()})
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d %q, want 504", rec.Code, rec.Body.String())
	}
}

func TestDrainFlipsHealth(t *testing.T) {
	s := newTestServer(t, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "draining") {
		t.Errorf("healthz after shutdown = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Get(""); err == nil {
		t.Error("empty registry accepted")
	}
	a := openTestSession(t, 1)
	a.Name = "a"
	reg.Add(a)
	if s, err := reg.Get(""); err != nil || s.Name != "a" {
		t.Errorf("sole-session Get = %v, %v", s, err)
	}
	b := &Session{Name: "b", Eval: a.Eval}
	reg.Add(b)
	if _, err := reg.Get(""); err == nil {
		t.Error("ambiguous empty name accepted")
	}
	if _, err := reg.Get("nosuch"); !errors.Is(err, claerr.ErrNotFound) {
		t.Errorf("Get(nosuch) = %v, want ErrNotFound", err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
