package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cla/internal/claerr"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/objfile"
)

// writeTestDir lays out a two-unit C program with a function pointer
// (for the call graph), a heap-free alias pair and a dependence chain.
func writeTestDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"a.c": `int g; int other;
int *p, *q, *lone;
int mirror;
void set(void) { p = &g; q = &g; lone = &other; }
void reflect(void) { mirror = g; }
`,
		"b.c": `extern int *p;
int *r;
void copy(void) { r = p; }
void work(void) { copy(); }
void (*fp)(void);
void install(void) { fp = copy; }
void dispatch(void) { fp(); }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func openTestSession(t *testing.T, jobs int) *Session {
	t.Helper()
	dir := writeTestDir(t)
	sess, err := Open(context.Background(), "test", dir, Config{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// mixedQueries covers all six kinds.
func mixedQueries() []Query {
	return []Query{
		{Kind: "pointsto", Name: "p"},
		{Kind: "alias", X: "p", Y: "q"},
		{Kind: "alias", X: "p", Y: "lone"},
		{Kind: "callgraph"},
		{Kind: "modref", Func: "set"},
		{Kind: "dependence", Target: "g"},
		{Kind: "lint"},
	}
}

func TestEvalAllKinds(t *testing.T) {
	sess := openTestSession(t, 1)
	results, err := sess.Eval().EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d (%s): %s", i, r.Kind, r.Err.Message)
		}
	}
	if len(results[0].Objects) != 1 || results[0].Objects[0].Name != "g" {
		t.Errorf("pointsto(p) = %+v, want {g}", results[0].Objects)
	}
	if results[1].Alias == nil || !*results[1].Alias {
		t.Error("alias(p, q) = false, want true")
	}
	if results[2].Alias == nil || *results[2].Alias {
		t.Error("alias(p, lone) = true, want false")
	}
	if results[3].Graph == nil || len(results[3].Graph.Funcs) == 0 {
		t.Error("callgraph empty")
	}
	if len(results[4].ModRef) != 1 || results[4].ModRef[0].Func != "set" {
		t.Errorf("modref(set) = %+v", results[4].ModRef)
	}
	if len(results[5].Dependents) == 0 {
		t.Error("dependence(g) found no dependents")
	}
}

// TestDirAndFileAgree opens the same program as a source directory and as
// a .cla database and expects byte-identical batch responses.
func TestDirAndFileAgree(t *testing.T) {
	dir := writeTestDir(t)
	prog, err := driver.CompileDirObs(dir, frontend.Options{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	claPath := filepath.Join(t.TempDir(), "prog.cla")
	if err := objfile.WriteFile(claPath, prog); err != nil {
		t.Fatal(err)
	}
	fromDir, err := Open(context.Background(), "s", dir, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Open(context.Background(), "s", claPath, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fromDir.Eval().EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromFile.Eval().EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, a), marshal(t, b)) {
		t.Error("dir-backed and file-backed sessions disagree")
	}
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchDeterminism requires byte-identical responses at -j 1 and
// -j 8 — the repo-wide determinism contract applied to the serving layer.
func TestBatchDeterminism(t *testing.T) {
	dir := writeTestDir(t)
	var outs [][]byte
	for _, jobs := range []int{1, 8} {
		sess, err := Open(context.Background(), "s", dir, Config{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		// A batch big enough to exercise real fan-out.
		var qs []Query
		for i := 0; i < 16; i++ {
			qs = append(qs, mixedQueries()...)
		}
		results, err := sess.Eval().EvalBatch(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, marshal(t, results))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Error("responses differ between -j 1 and -j 8")
	}
}

// TestConcurrentMixedQueries fires mixed batches at one session from many
// goroutines; run under -race this is the serving layer's thread-safety
// proof.
func TestConcurrentMixedQueries(t *testing.T) {
	sess := openTestSession(t, 4)
	base, err := sess.Eval().EvalBatch(context.Background(), mixedQueries())
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				results, err := sess.Eval().EvalBatch(context.Background(), mixedQueries())
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(want, marshal(t, results)) {
					errs[g] = errors.New("concurrent response differs")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBatchCancellation(t *testing.T) {
	sess := openTestSession(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sess.Eval().EvalBatch(ctx, mixedQueries())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvalBatch(canceled ctx) = %v, want context.Canceled", err)
	}
	if claerr.HTTPStatus(err) != 499 {
		t.Errorf("HTTPStatus = %d, want 499", claerr.HTTPStatus(err))
	}
}

func TestQueryErrors(t *testing.T) {
	sess := openTestSession(t, 1)
	ctx := context.Background()
	r := sess.Eval().Eval(ctx, Query{Kind: "pointsto", Name: "nosuch"})
	if r.Err == nil || r.Err.Status != http.StatusNotFound {
		t.Errorf("pointsto(nosuch) = %+v, want 404", r.Err)
	}
	r = sess.Eval().Eval(ctx, Query{Kind: "frobnicate"})
	if r.Err == nil || r.Err.Status != http.StatusBadRequest {
		t.Errorf("unknown kind = %+v, want 400", r.Err)
	}
	r = sess.Eval().Eval(ctx, Query{Kind: "lint", Checks: []string{"nosuchcheck"}})
	if r.Err == nil || r.Err.Status != http.StatusBadRequest {
		t.Errorf("bad check = %+v, want 400", r.Err)
	}
}

func newTestServer(t *testing.T, jobs int) *Server {
	t.Helper()
	reg := NewRegistry()
	reg.Add(openTestSession(t, jobs))
	return NewServer(reg, ServerConfig{Jobs: jobs})
}

func get(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, 2)
	h := s.Handler()

	if rec := get(t, h, "/healthz"); rec.Code != 200 || !strings.HasPrefix(rec.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/sessions"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"test"`) {
		t.Errorf("sessions = %d %q", rec.Code, rec.Body.String())
	}

	rec := get(t, h, "/v1/pointsto?name=p")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"name": "g"`) {
		t.Errorf("pointsto = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/pointsto?name=nosuch"); rec.Code != 404 {
		t.Errorf("pointsto(nosuch) = %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/v1/alias?x=p&y=q"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"alias": true`) {
		t.Errorf("alias = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/callgraph"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "dispatch") {
		t.Errorf("callgraph = %d", rec.Code)
	}
	if rec := get(t, h, "/v1/modref?func=set"); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"func": "set"`) {
		t.Errorf("modref = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/dependence?target=g&limit=5"); rec.Code != 200 {
		t.Errorf("dependence = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/lint?checks=deref,escape"); rec.Code != 200 {
		t.Errorf("lint = %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/v1/dependence?target=g&limit=bogus"); rec.Code != 400 {
		t.Errorf("bad limit = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/v1/pointsto?name=p&session=nosuch"); rec.Code != 404 {
		t.Errorf("bad session = %d, want 404", rec.Code)
	}

	// statsz reflects the traffic above.
	rec = get(t, h, "/statsz")
	var stats struct {
		Sessions []struct {
			Name string `json:"name"`
			Syms int    `json:"syms"`
		} `json:"sessions"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Sessions) != 1 || stats.Sessions[0].Name != "test" || stats.Sessions[0].Syms == 0 {
		t.Errorf("statsz sessions = %+v", stats.Sessions)
	}
	if stats.Counters["serve.requests"] == 0 || stats.Counters["serve.errors"] == 0 {
		t.Errorf("statsz counters = %v", stats.Counters)
	}
}

func TestHTTPBatch(t *testing.T) {
	s := newTestServer(t, 2)
	body := marshal(t, Request{Queries: mixedQueries()})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("batch = %d %q", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Session != "test" || len(resp.Results) != len(mixedQueries()) {
		t.Fatalf("batch response = %+v", resp)
	}
	for i, r := range resp.Results {
		if r.Err != nil {
			t.Errorf("query %d (%s): %s", i, r.Kind, r.Err.Message)
		}
	}

	// Malformed body and empty batch are usage errors.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", strings.NewReader("{nope")))
	if rec.Code != 400 {
		t.Errorf("bad body = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", strings.NewReader(`{"queries":[]}`)))
	if rec.Code != 400 {
		t.Errorf("empty batch = %d, want 400", rec.Code)
	}
}

// TestClientDisconnectAbortsBatch proves an in-flight batch aborts when
// the client goes away: the request context reaches the evaluation
// fan-out, so a canceled request yields 499 instead of a full answer.
func TestClientDisconnectAbortsBatch(t *testing.T) {
	s := newTestServer(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	var qs []Query
	for i := 0; i < 64; i++ {
		qs = append(qs, Query{Kind: "pointsto", Name: "p"})
	}
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(marshal(t, Request{Queries: qs})))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != 499 {
		t.Fatalf("canceled batch = %d %q, want 499", rec.Code, rec.Body.String())
	}
}

func TestDeadline(t *testing.T) {
	reg := NewRegistry()
	reg.Add(openTestSession(t, 1))
	s := NewServer(reg, ServerConfig{Deadline: 1}) // 1ns: every request expires
	rec := httptest.NewRecorder()
	body := marshal(t, Request{Queries: mixedQueries()})
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d %q, want 504", rec.Code, rec.Body.String())
	}
}

func TestDrainFlipsHealth(t *testing.T) {
	s := newTestServer(t, 1)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.HasPrefix(rec.Body.String(), "draining") {
		t.Errorf("healthz after shutdown = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Get(""); err == nil {
		t.Error("empty registry accepted")
	}
	a := openTestSession(t, 1)
	a.Name = "a"
	reg.Add(a)
	if s, err := reg.Get(""); err != nil || s.Name != "a" {
		t.Errorf("sole-session Get = %v, %v", s, err)
	}
	b := NewSession("b", "", a.Eval())
	reg.Add(b)
	if _, err := reg.Get(""); err == nil {
		t.Error("ambiguous empty name accepted")
	}
	if _, err := reg.Get("nosuch"); !errors.Is(err, claerr.ErrNotFound) {
		t.Errorf("Get(nosuch) = %v, want ErrNotFound", err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

// --- serving telemetry (PR 8) ---

func TestRequestIDEcho(t *testing.T) {
	s := newTestServer(t, 1)
	h := s.Handler()

	// A generated ID appears on every response, including errors.
	rec := get(t, h, "/healthz")
	gen := rec.Header().Get("X-Request-Id")
	if gen == "" {
		t.Fatal("no generated X-Request-Id")
	}
	if rec2 := get(t, h, "/healthz"); rec2.Header().Get("X-Request-Id") == gen {
		t.Error("request IDs repeat across requests")
	}

	// An incoming ID is echoed verbatim.
	req := httptest.NewRequest("GET", "/v1/pointsto?name=p", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Errorf("echoed ID = %q, want caller-supplied-42", got)
	}

	// An oversized incoming ID is replaced, not echoed.
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", strings.Repeat("x", 400))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); len(got) > 128 || got == "" {
		t.Errorf("oversized ID handling = %q", got)
	}
}

func TestMetricszExposition(t *testing.T) {
	s := newTestServer(t, 2)
	h := s.Handler()

	// Drive mixed traffic: singles, a batch, and errors.
	get(t, h, "/v1/pointsto?name=p")
	get(t, h, "/v1/alias?x=p&y=q")
	get(t, h, "/v1/pointsto?name=nosuch") // 404
	body := marshal(t, Request{Queries: mixedQueries()})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("batch = %d", rec.Code)
	}

	rec = get(t, h, "/metricsz")
	if rec.Code != 200 {
		t.Fatalf("metricsz = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metricsz content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE serve_requests counter",
		"# TYPE serve_query_pointsto histogram",
		"serve_query_pointsto_bucket{le=\"+Inf\"}",
		"serve_query_pointsto_sum",
		"serve_query_pointsto_count",
		"# TYPE serve_session_test histogram",
		"# TYPE serve_http histogram",
		"serve_errors_4xx 1",
		"# TYPE runtime_goroutines gauge",
		"runtime_heap_inuse_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metricsz missing %q:\n%s", want, out)
		}
	}

	// The per-kind histograms counted: 3 pointsto (2 single + 1 batch;
	// the 404 lookup still evaluates nothing) -- assert counts via the
	// _count series rather than parsing buckets.
	if !strings.Contains(out, "serve_query_alias_count 3") {
		t.Errorf("alias count wrong (want 3 = 1 single + 2 batch):\n%s", out)
	}

	// Structural determinism: the set and order of series is identical
	// across scrapes once timing-valued lines are stripped.
	strip := func(s string) []string {
		var keys []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "# TYPE ") {
				keys = append(keys, line)
			}
		}
		return keys
	}
	again := get(t, h, "/metricsz").Body.String()
	if strings.Join(strip(out), "\n") != strings.Join(strip(again), "\n") {
		t.Errorf("metricsz family set changed between scrapes:\n%s\nvs\n%s", out, again)
	}
}

func TestStatszRuntimeHealth(t *testing.T) {
	s := newTestServer(t, 1)
	rec := get(t, s.Handler(), "/statsz")
	var stats struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Gauges["runtime.goroutines"] <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", stats.Gauges["runtime.goroutines"])
	}
	if stats.Gauges["runtime.heap_inuse_bytes"] <= 0 {
		t.Errorf("runtime.heap_inuse_bytes = %d, want > 0", stats.Gauges["runtime.heap_inuse_bytes"])
	}
	for _, name := range []string{"runtime.gc_pause_total_ns", "runtime.gc_cycles"} {
		if _, ok := stats.Gauges[name]; !ok {
			t.Errorf("statsz missing gauge %s", name)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for access-log capture.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogJSONL(t *testing.T) {
	var logBuf syncBuffer
	reg := NewRegistry()
	reg.Add(openTestSession(t, 1))
	s := NewServer(reg, ServerConfig{Jobs: 1, AccessLog: &logBuf})
	h := s.Handler()

	get(t, h, "/v1/pointsto?name=p")
	get(t, h, "/v1/pointsto?name=nosuch")
	get(t, h, "/healthz")

	lines := strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log lines = %d, want 3:\n%s", len(lines), logBuf.String())
	}
	statuses := map[int]int{}
	for i, line := range lines {
		var rec struct {
			Time   string `json:"ts"`
			ID     string `json:"id"`
			Method string `json:"method"`
			Path   string `json:"path"`
			Status int    `json:"status"`
			DurNS  int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if rec.ID == "" || rec.Method != "GET" || rec.Path == "" || rec.Time == "" {
			t.Errorf("line %d incomplete: %+v", i, rec)
		}
		statuses[rec.Status]++
	}
	if statuses[200] != 2 || statuses[404] != 1 {
		t.Errorf("statuses = %v, want 2x200 + 1x404", statuses)
	}
}

func TestAccessLogSamplingAndSlow(t *testing.T) {
	var logBuf syncBuffer
	reg := NewRegistry()
	reg.Add(openTestSession(t, 1))
	// Sample 1-in-1000 so only slow requests get through.
	s := NewServer(reg, ServerConfig{Jobs: 1, AccessLog: &logBuf,
		LogSample: 1000, SlowQuery: 1}) // 1ns: everything is slow
	h := s.Handler()
	get(t, h, "/v1/pointsto?name=p")
	get(t, h, "/v1/pointsto?name=p")
	lines := strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow bypass logged %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	for _, line := range lines {
		if !strings.Contains(line, `"slow":true`) {
			t.Errorf("slow line unflagged: %s", line)
		}
	}

	// With sampling only (no slow threshold), 1-in-2 of 10 requests logs 5.
	var buf2 syncBuffer
	s2 := NewServer(reg, ServerConfig{Jobs: 1, AccessLog: &buf2, LogSample: 2})
	for i := 0; i < 10; i++ {
		get(t, s2.Handler(), "/healthz")
	}
	n := strings.Count(buf2.String(), "\n")
	if n != 5 {
		t.Errorf("1-in-2 sampling of 10 requests logged %d, want 5", n)
	}
}

// TestConcurrentInstrumentedTraffic hammers the instrumented handler
// from many goroutines; under -race this covers the histogram
// registry, the access logger and the middleware counters.
func TestConcurrentInstrumentedTraffic(t *testing.T) {
	var logBuf syncBuffer
	reg := NewRegistry()
	reg.Add(openTestSession(t, 2))
	s := NewServer(reg, ServerConfig{Jobs: 2, AccessLog: &logBuf, SlowQuery: time.Millisecond})
	h := s.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/pointsto?name=p", nil))
				if rec.Code != 200 {
					t.Errorf("status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	rec := get(t, h, "/metricsz")
	if !strings.Contains(rec.Body.String(), "serve_query_pointsto_count 160") {
		t.Errorf("pointsto count after concurrent traffic:\n%s", rec.Body.String())
	}
	for _, line := range strings.Split(strings.TrimSuffix(logBuf.String(), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("interleaved access-log line: %s", line)
		}
	}
}

// --- session lifecycle (PR 10) ---

func doReq(t *testing.T, h http.Handler, method, url string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	var req *http.Request
	if body != nil {
		req = httptest.NewRequest(method, url, bytes.NewReader(body))
	} else {
		req = httptest.NewRequest(method, url, nil)
	}
	h.ServeHTTP(rec, req)
	return rec
}

// rewriteUnit swaps b.c so copy() stores &extra instead of p: the
// points-to set of r changes observably across the refresh.
func rewriteUnit(t *testing.T, dir string) {
	t.Helper()
	edited := `extern int *p;
int *r;
int extra;
void copy(void) { r = &extra; }
void work(void) { copy(); }
void (*fp)(void);
void install(void) { fp = copy; }
void dispatch(void) { fp(); }
`
	if err := os.WriteFile(filepath.Join(dir, "b.c"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSessionLifecycleREST(t *testing.T) {
	dir := writeTestDir(t)
	s := NewServer(NewRegistry(), ServerConfig{Jobs: 1, Session: Config{Jobs: 1}})
	h := s.Handler()

	// Create.
	body := marshal(t, sessionCreateBody{Name: "live", Path: dir})
	rec := doReq(t, h, "POST", "/v1/sessions", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d %q", rec.Code, rec.Body.String())
	}
	var info SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "live" || info.Kind != "dir" || info.Generation != 1 ||
		!info.Refreshable || info.Stale || info.Syms == 0 {
		t.Fatalf("create info = %+v", info)
	}

	// Duplicate name conflicts.
	if rec := doReq(t, h, "POST", "/v1/sessions", body); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", rec.Code)
	}

	// Batched queries report the pinned generation.
	qbody := marshal(t, Request{Session: "live", Queries: []Query{{Kind: "pointsto", Name: "r"}}})
	rec = doReq(t, h, "POST", "/v1/query", qbody)
	if rec.Code != 200 {
		t.Fatalf("query = %d %q", rec.Code, rec.Body.String())
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 1 {
		t.Fatalf("response generation = %d, want 1", resp.Generation)
	}
	if len(resp.Results[0].Objects) != 1 || resp.Results[0].Objects[0].Name != "g" {
		t.Fatalf("pointsto(r) gen 1 = %+v, want {g}", resp.Results[0].Objects)
	}

	// Edit the tree: the info endpoint flags staleness before a refresh.
	rewriteUnit(t, dir)
	rec = doReq(t, h, "GET", "/v1/sessions/live", nil)
	if rec.Code != 200 {
		t.Fatalf("info = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Stale || len(info.Changed) == 0 || info.Generation != 1 {
		t.Fatalf("post-edit info = %+v, want stale at generation 1", info)
	}

	// Refresh swaps in generation 2 and the new answer.
	rec = doReq(t, h, "POST", "/v1/sessions/live/refresh", nil)
	if rec.Code != 200 {
		t.Fatalf("refresh = %d %q", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.Stale {
		t.Fatalf("post-refresh info = %+v, want clean generation 2", info)
	}
	rec = doReq(t, h, "POST", "/v1/query", qbody)
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation != 2 {
		t.Fatalf("post-refresh response generation = %d, want 2", resp.Generation)
	}
	if len(resp.Results[0].Objects) != 1 || resp.Results[0].Objects[0].Name != "extra" {
		t.Fatalf("pointsto(r) gen 2 = %+v, want {extra}", resp.Results[0].Objects)
	}

	// Single-query endpoints echo the generation as a header.
	rec = doReq(t, h, "GET", "/v1/pointsto?name=r&session=live", nil)
	if got := rec.Header().Get("X-Cla-Generation"); got != "2" {
		t.Fatalf("X-Cla-Generation = %q, want 2", got)
	}

	// Delete retires the session; queries and info then 404.
	if rec := doReq(t, h, "DELETE", "/v1/sessions/live", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete = %d", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/v1/sessions/live", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("info after delete = %d, want 404", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/query", qbody); rec.Code != http.StatusNotFound {
		t.Fatalf("query after delete = %d, want 404", rec.Code)
	}
	if rec := doReq(t, h, "DELETE", "/v1/sessions/live", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d, want 404", rec.Code)
	}
}

// TestRefreshNotSupported: object- and memory-backed sessions reject
// refresh with a usage error instead of silently serving stale data.
func TestRefreshNotSupported(t *testing.T) {
	sess := openTestSession(t, 1)
	prog := sess.Eval().Prog
	claPath := filepath.Join(t.TempDir(), "prog.cla")
	if err := objfile.WriteFile(claPath, prog); err != nil {
		t.Fatal(err)
	}
	obj, err := Open(context.Background(), "obj", claPath, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := obj.Refresh(context.Background()); err == nil {
		t.Fatal("object session accepted Refresh")
	}
	if obj.Refreshable() || obj.Kind != "object" {
		t.Fatalf("object session: refreshable=%v kind=%q", obj.Refreshable(), obj.Kind)
	}
}

// TestAcquirePinsGeneration: a query holding a generation keeps
// answering from it while a refresh swaps the session forward.
func TestAcquirePinsGeneration(t *testing.T) {
	dir := writeTestDir(t)
	sess, err := Open(context.Background(), "pin", dir, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, release, err := sess.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != 1 {
		t.Fatalf("acquired generation = %d", st.Gen)
	}

	rewriteUnit(t, dir)
	if _, changed, err := sess.Refresh(context.Background()); err != nil || !changed {
		t.Fatalf("refresh: changed=%v err=%v", changed, err)
	}
	if sess.Generation() != 2 {
		t.Fatalf("session generation = %d, want 2", sess.Generation())
	}
	// The pinned state still answers from generation 1.
	r := st.Eval.Eval(context.Background(), Query{Kind: "pointsto", Name: "r"})
	if len(r.Objects) != 1 || r.Objects[0].Name != "g" {
		t.Fatalf("pinned pointsto(r) = %+v, want the generation-1 {g}", r.Objects)
	}
	release()

	// After close, Acquire fails.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Acquire(); err == nil {
		t.Fatal("Acquire succeeded on a closed session")
	}
}

// TestSessionWatchSwapsGeneration drives the server-side watch loop:
// an edited unit is picked up by polling alone and the serving
// generation advances without any explicit refresh call.
func TestSessionWatchSwapsGeneration(t *testing.T) {
	dir := writeTestDir(t)
	sess, err := Open(context.Background(), "w", dir, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.StartWatch(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sess.StartWatch(20 * time.Millisecond); err == nil {
		t.Fatal("double StartWatch accepted")
	}
	if !sess.Watching() {
		t.Fatal("session not watching")
	}

	time.Sleep(30 * time.Millisecond) // let the baseline scan land
	rewriteUnit(t, dir)
	deadline := time.Now().Add(5 * time.Second)
	for sess.Generation() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watch never advanced the generation (still %d)", sess.Generation())
		}
		time.Sleep(10 * time.Millisecond)
	}
	r := sess.Eval().Eval(context.Background(), Query{Kind: "pointsto", Name: "r"})
	if len(r.Objects) != 1 || r.Objects[0].Name != "extra" {
		t.Fatalf("watched pointsto(r) = %+v, want {extra}", r.Objects)
	}
	sess.StopWatch()
	if sess.Watching() {
		t.Fatal("session still watching after StopWatch")
	}
}
