// Package pts defines the solver-independent interface to points-to
// analysis: the Source abstraction over assignment databases (in-memory
// programs or demand-loaded object files), the Result interface produced
// by every solver, and the metrics reported in the paper's Table 3.
package pts

import (
	"sort"

	"cla/internal/objfile"
	"cla/internal/obs"
	"cla/internal/prim"
)

// Source supplies primitive assignments to a solver. The static section
// (address-of assignments) is always loaded; all other assignments are
// organized into per-source blocks that can be loaded on demand.
type Source interface {
	// NumSyms returns the number of symbols in the database.
	NumSyms() int
	// Sym returns symbol metadata.
	Sym(id prim.SymID) *prim.Symbol
	// Statics returns every address-of assignment (x = &y).
	Statics() ([]prim.Assign, error)
	// Block returns the non-base assignments whose source is sym.
	Block(sym prim.SymID) ([]prim.Assign, error)
	// BlockLen returns len(Block(sym)) without loading it.
	BlockLen(sym prim.SymID) int
	// Funcs returns the function records for call linking.
	Funcs() []prim.FuncRecord
	// Counts returns per-kind assignment totals (the in-file numbers).
	Counts() [prim.NumKinds]int
}

// Result is the outcome of a points-to analysis.
type Result interface {
	// PointsTo returns the sorted set of objects sym may point to.
	PointsTo(sym prim.SymID) []prim.SymID
	// Metrics returns solver statistics.
	Metrics() Metrics
}

// Metrics mirrors the measurement columns of the paper's Table 3 plus
// solver internals useful for the ablation study.
type Metrics struct {
	// PointerVars counts program objects (variables and fields, not
	// analysis temporaries) with non-empty points-to sets.
	PointerVars int
	// Relations is the total size of all program objects' points-to sets.
	Relations int
	// InCore is the number of assignments retained in memory at the end
	// of the analysis (complex assignments under the discard strategy).
	InCore int
	// Loaded is the number of assignments read from the database,
	// counting re-loads.
	Loaded int
	// InFile is the total number of assignments in the database.
	InFile int
	// Passes is the number of iterations of the outer fixpoint.
	Passes int
	// Unifications counts cycle-elimination node merges.
	Unifications int
	// CacheHits and CacheMisses count reachability cache behaviour.
	CacheHits, CacheMisses int64
	// EdgesAdded counts graph edge insertions.
	EdgesAdded int
	// Waves counts barrier-synchronized waves executed by the
	// phase-parallel solve path (zero when the sequential reference ran).
	Waves int
	// SCCRounds counts condensation rounds (SCC + topological leveling)
	// the phase-parallel solve path performed.
	SCCRounds int
	// WaveWidth is the maximum number of independent units processed
	// within one level barrier — the solve phase's exploitable
	// parallelism.
	WaveWidth int
	// DeltaMergeBytes totals the bytes of delta elements and deferred
	// edge pairs merged at wave boundaries. The merge order is
	// deterministic, so this figure is identical at any worker count.
	DeltaMergeBytes int64
}

// CountedAsPointerVar reports whether a symbol of kind k counts as a
// "pointer variable" in Table 3 (program variables and fields; analysis
// temporaries, standardized params/returns, functions and heap objects are
// excluded, matching the paper's accounting).
func CountedAsPointerVar(k prim.SymKind) bool {
	switch k {
	case prim.SymGlobal, prim.SymStatic, prim.SymLocal, prim.SymField:
		return true
	}
	return false
}

// ---------- Sources ----------

// MemSource adapts an in-memory Program to the Source interface.
type MemSource struct {
	P      *prim.Program
	blocks [][]prim.Assign
	static []prim.Assign
}

// NewMemSource indexes prog by assignment source.
func NewMemSource(prog *prim.Program) *MemSource {
	s := &MemSource{P: prog, blocks: make([][]prim.Assign, len(prog.Syms))}
	for _, a := range prog.Assigns {
		if a.Kind == prim.Base {
			s.static = append(s.static, a)
			continue
		}
		s.blocks[a.Src] = append(s.blocks[a.Src], a)
	}
	return s
}

// NumSyms implements Source.
func (s *MemSource) NumSyms() int { return len(s.P.Syms) }

// Sym implements Source.
func (s *MemSource) Sym(id prim.SymID) *prim.Symbol { return &s.P.Syms[id] }

// Statics implements Source.
func (s *MemSource) Statics() ([]prim.Assign, error) { return s.static, nil }

// Block implements Source.
func (s *MemSource) Block(sym prim.SymID) ([]prim.Assign, error) {
	if int(sym) < 0 || int(sym) >= len(s.blocks) {
		return nil, nil
	}
	return s.blocks[sym], nil
}

// BlockLen implements Source.
func (s *MemSource) BlockLen(sym prim.SymID) int {
	if int(sym) < 0 || int(sym) >= len(s.blocks) {
		return 0
	}
	return len(s.blocks[sym])
}

// Funcs implements Source.
func (s *MemSource) Funcs() []prim.FuncRecord { return s.P.Funcs }

// Counts implements Source.
func (s *MemSource) Counts() [prim.NumKinds]int { return s.P.CountByKind() }

// FileSource adapts an objfile.Reader to the Source interface, preserving
// its demand-loading behaviour.
type FileSource struct {
	R *objfile.Reader
}

// NumSyms implements Source.
func (s *FileSource) NumSyms() int { return s.R.NumSyms() }

// Sym implements Source.
func (s *FileSource) Sym(id prim.SymID) *prim.Symbol { return s.R.Sym(id) }

// Statics implements Source.
func (s *FileSource) Statics() ([]prim.Assign, error) { return s.R.Statics() }

// Block implements Source.
func (s *FileSource) Block(sym prim.SymID) ([]prim.Assign, error) {
	entries, err := s.R.Block(sym)
	if err != nil {
		return nil, err
	}
	out := make([]prim.Assign, len(entries))
	for i, e := range entries {
		out[i] = e.Assign(sym)
	}
	return out, nil
}

// BlockLen implements Source.
func (s *FileSource) BlockLen(sym prim.SymID) int { return s.R.BlockLen(sym) }

// Funcs implements Source.
func (s *FileSource) Funcs() []prim.FuncRecord { return s.R.Funcs() }

// Counts implements Source.
func (s *FileSource) Counts() [prim.NumKinds]int { return s.R.Counts() }

// ---------- helpers shared by solvers and tests ----------

// SortSyms sorts a symbol id slice in place and returns it.
func SortSyms(ids []prim.SymID) []prim.SymID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SumRelations computes (PointerVars, Relations) for a result over src.
func SumRelations(src Source, r Result) (int, int) {
	vars, rels := 0, 0
	for i := 0; i < src.NumSyms(); i++ {
		id := prim.SymID(i)
		if !CountedAsPointerVar(src.Sym(id).Kind) {
			continue
		}
		n := len(r.PointsTo(id))
		if n > 0 {
			vars++
			rels += n
		}
	}
	return vars, rels
}

// TotalAssigns sums the database's per-kind assignment counts — the
// Table 3 "in file" column every solver reports.
func TotalAssigns(src Source) int {
	total := 0
	for _, n := range src.Counts() {
		total += n
	}
	return total
}

// FinalizeMetrics fills the fields every solver computes the same way:
// InFile from the database counts and (PointerVars, Relations) from the
// converged result. Solver-specific fields (Passes, Unifications, cache
// behaviour) stay with the solver that produced them.
func FinalizeMetrics(src Source, r Result, m *Metrics) {
	m.InFile = TotalAssigns(src)
	m.PointerVars, m.Relations = SumRelations(src, r)
}

// Publish copies m into o's solver.* counter registry so all five
// solvers surface identical metric names in -stats, the trace and the
// benchmarks. A nil observer no-ops.
func (m Metrics) Publish(o *obs.Observer) {
	if o == nil {
		return
	}
	o.SetCounter("solver.pointer_vars", int64(m.PointerVars))
	o.SetCounter("solver.relations", int64(m.Relations))
	o.SetCounter("solver.in_core", int64(m.InCore))
	o.SetCounter("solver.loaded", int64(m.Loaded))
	o.SetCounter("solver.in_file", int64(m.InFile))
	o.SetCounter("solver.passes", int64(m.Passes))
	o.SetCounter("solver.unifications", int64(m.Unifications))
	o.SetCounter("solver.cache_hits", m.CacheHits)
	o.SetCounter("solver.cache_misses", m.CacheMisses)
	o.SetCounter("solver.edges_added", int64(m.EdgesAdded))
	o.SetCounter("solve.waves", int64(m.Waves))
	o.SetCounter("solve.scc_rounds", int64(m.SCCRounds))
	o.SetCounter("solve.wave_width", int64(m.WaveWidth))
	o.SetCounter("solve.delta_merge_bytes", m.DeltaMergeBytes)
}
