// Package steens implements Steensgaard's unification-based points-to
// analysis (POPL'96) over the CLA database, as a fast/imprecise comparison
// point: each assignment unifies equivalence classes instead of adding
// subset constraints, giving the almost-linear-time behaviour the paper
// contrasts Andersen's analysis with.
package steens

import (
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
)

type solver struct {
	src pts.Source

	parent []int32
	rank   []int8
	// ptOf[c] is the class a representative c points to (-1 none).
	ptOf []int32
	// members[c] lists object symbols in class c (merged on union).
	members [][]prim.SymID
	// funcsIn[c] lists function symbols whose address is in class c.
	funcsIn [][]int32

	recOfFunc map[int32]*prim.FuncRecord
	ptrRecs   []*prim.FuncRecord

	m pts.Metrics
}

// Result is the solved unification relation.
type Result struct {
	s *solver
}

// Solve runs the unification analysis.
func Solve(src pts.Source) (*Result, error) {
	n := src.NumSyms()
	s := &solver{
		src:       src,
		parent:    make([]int32, n),
		rank:      make([]int8, n),
		ptOf:      make([]int32, n),
		members:   make([][]prim.SymID, n),
		funcsIn:   make([][]int32, n),
		recOfFunc: map[int32]*prim.FuncRecord{},
	}
	for i := 0; i < n; i++ {
		s.parent[i] = int32(i)
		s.ptOf[i] = -1
		s.members[i] = []prim.SymID{prim.SymID(i)}
	}
	funcs := src.Funcs()
	for i := range funcs {
		f := &funcs[i]
		if src.Sym(f.Func).Kind == prim.SymFunc {
			s.recOfFunc[int32(f.Func)] = f
		}
		if src.Sym(f.Func).FuncPtr {
			s.ptrRecs = append(s.ptrRecs, f)
		}
	}

	statics, err := src.Statics()
	if err != nil {
		return nil, err
	}
	s.m.Loaded += len(statics)
	for _, a := range statics {
		// x = &y: class(y) joins pt(x).
		s.joinPt(int32(a.Dst), s.find(int32(a.Src)))
		if src.Sym(a.Src).Kind == prim.SymFunc {
			c := s.find(int32(a.Src))
			s.addFunc(c, int32(a.Src))
		}
	}
	for i := 0; i < n; i++ {
		block, err := src.Block(prim.SymID(i))
		if err != nil {
			return nil, err
		}
		s.m.Loaded += len(block)
		for _, a := range block {
			d, y := int32(a.Dst), int32(a.Src)
			switch a.Kind {
			case prim.Simple: // d = y: pt(d) ~ pt(y)
				s.unifyPts(d, y)
			case prim.LoadInd: // d = *y: pt(d) ~ pt(pt(y))
				s.unifyPts(d, s.ptClass(y))
			case prim.StoreInd: // *d = y: pt(pt(d)) ~ pt(y)
				s.unifyPts(s.ptClass(d), y)
			case prim.CopyInd: // *d = *y: pt(pt(d)) ~ pt(pt(y))
				s.unifyPts(s.ptClass(d), s.ptClass(y))
			case prim.Base:
				s.joinPt(d, s.find(y))
			}
		}
	}

	// Indirect call linking to fixpoint: linking unifies classes which may
	// bring more functions into pointer classes.
	for changed := true; changed; {
		changed = false
		s.m.Passes++
		for _, r := range s.ptrRecs {
			pc := s.ptOf[s.find(int32(r.Func))]
			if pc < 0 {
				continue
			}
			pc = s.find(pc)
			for _, g := range append([]int32(nil), s.funcsIn[pc]...) {
				// funcsIn stores original function sym ids; look the
				// record up by that id first — find(g) collapses every
				// function in a unified class onto one representative,
				// which would link only the representative's params.
				rec, ok := s.recOfFunc[g]
				if !ok {
					rec, ok = s.recOfFunc[s.find(g)]
				}
				if !ok {
					continue
				}
				np := len(r.Params)
				if len(rec.Params) < np {
					np = len(rec.Params)
				}
				for i := 0; i < np; i++ {
					if s.unifyPts(int32(rec.Params[i]), int32(r.Params[i])) {
						changed = true
					}
				}
				if r.Ret != prim.NoSym && rec.Ret != prim.NoSym {
					if s.unifyPts(int32(r.Ret), int32(rec.Ret)) {
						changed = true
					}
				}
			}
		}
	}

	s.m.InFile = pts.TotalAssigns(src)
	// Flatten every union-find path before publishing: queries then walk
	// parent links without writing, so a Result is safe for concurrent
	// PointsTo calls (the contract the serving layer relies on).
	for v := range s.parent {
		s.parent[v] = s.find(int32(v))
	}
	res := &Result{s: s}
	// Count metrics directly from class sizes: materializing each
	// variable's set (as pts.SumRelations would) is quadratic when
	// unification has produced big classes.
	for i := 0; i < n; i++ {
		if !pts.CountedAsPointerVar(src.Sym(prim.SymID(i)).Kind) {
			continue
		}
		c := s.find(int32(i))
		p := s.ptOf[c]
		if p < 0 {
			continue
		}
		if sz := len(s.members[s.find(p)]); sz > 0 {
			s.m.PointerVars++
			s.m.Relations += sz
		}
	}
	return res, nil
}

// find with path compression.
func (s *solver) find(v int32) int32 {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

// findRO follows parent links without compressing — the query-time
// variant. Solve flattens every path before publishing, so this is one
// hop; it must not write, because Results serve concurrent queries.
func (s *solver) findRO(v int32) int32 {
	for s.parent[v] != v {
		v = s.parent[v]
	}
	return v
}

// unifyClasses merges two classes (and, recursively, their pointees).
func (s *solver) unifyClasses(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	if s.rank[a] < s.rank[b] {
		a, b = b, a
	} else if s.rank[a] == s.rank[b] {
		s.rank[a]++
	}
	// b into a.
	s.parent[b] = a
	s.members[a] = append(s.members[a], s.members[b]...)
	s.members[b] = nil
	s.funcsIn[a] = append(s.funcsIn[a], s.funcsIn[b]...)
	s.funcsIn[b] = nil
	pa, pb := s.ptOf[a], s.ptOf[b]
	s.ptOf[b] = -1
	if pa >= 0 && pb >= 0 {
		s.ptOf[a] = s.unifyClasses(pa, pb)
	} else if pb >= 0 {
		s.ptOf[a] = pb
	}
	s.m.Unifications++
	return a
}

// ptClass returns (creating via a fresh virtual class if needed) the class
// pointed to by v's class.
func (s *solver) ptClass(v int32) int32 {
	if v < 0 {
		return -1
	}
	c := s.find(v)
	if s.ptOf[c] < 0 {
		s.ptOf[c] = s.newClass()
	}
	return s.find(s.ptOf[c])
}

func (s *solver) newClass() int32 {
	id := int32(len(s.parent))
	s.parent = append(s.parent, id)
	s.rank = append(s.rank, 0)
	s.ptOf = append(s.ptOf, -1)
	s.members = append(s.members, nil)
	s.funcsIn = append(s.funcsIn, nil)
	return id
}

// joinPt makes class c a member of pt(x)'s class.
func (s *solver) joinPt(x, c int32) {
	xc := s.find(x)
	if s.ptOf[xc] < 0 {
		s.ptOf[xc] = c
		return
	}
	s.ptOf[xc] = s.unifyClasses(s.ptOf[xc], c)
}

// unifyPts implements d = y: unify pt(d) with pt(y) (directional flow is
// approximated by unification — the source of Steensgaard's imprecision).
// Pointee classes are materialized eagerly so that later joins against
// either side propagate to both. Reports whether anything merged.
func (s *solver) unifyPts(d, y int32) bool {
	pd := s.ptClass(d)
	py := s.ptClass(y)
	if s.find(pd) == s.find(py) {
		return false
	}
	merged := s.unifyClasses(pd, py)
	s.ptOf[s.find(d)] = merged
	s.ptOf[s.find(y)] = merged
	return true
}

func (s *solver) addFunc(class, fn int32) {
	c := s.find(class)
	s.funcsIn[c] = append(s.funcsIn[c], fn)
}

// PointsTo returns every object in the class pointed to by sym's class.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	s := r.s
	if int(sym) < 0 || int(sym) >= s.src.NumSyms() {
		return nil
	}
	c := s.findRO(int32(sym))
	p := s.ptOf[c]
	if p < 0 {
		return nil
	}
	p = s.findRO(p)
	out := make([]prim.SymID, 0, len(s.members[p]))
	for _, m := range s.members[p] {
		if int(m) < s.src.NumSyms() {
			out = append(out, m)
		}
	}
	return set.SortDedup(out)
}

// Metrics implements pts.Result.
func (r *Result) Metrics() pts.Metrics { return r.s.m }
