package steens

import (
	"testing"

	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

func solve(t *testing.T, src string) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(pts.NewMemSource(p))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func ptsNames(p *prim.Program, r *Result, name string) map[string]bool {
	out := map[string]bool{}
	for _, z := range r.PointsTo(p.SymIDByName(name)) {
		out[p.Sym(z).Name] = true
	}
	return out
}

func TestBasic(t *testing.T) {
	p, r := solve(t, "int a, *x, *y; void m(void) { x = &a; y = x; }")
	if got := ptsNames(p, r, "y"); !got["a"] {
		t.Errorf("pts(y) = %v", got)
	}
}

func TestUnificationMergesBackwards(t *testing.T) {
	// The signature imprecision: x = y unifies, so x's targets flow
	// "backwards" into y.
	p, r := solve(t, `int a, b, *x, *y;
void m(void) { x = &a; y = &b; x = y; }`)
	got := ptsNames(p, r, "y")
	if !got["a"] || !got["b"] {
		t.Errorf("pts(y) = %v, unification should merge both", got)
	}
}

func TestStoreLoad(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **pp;
void m(void) { pp = &a; *pp = &v; b = *pp; }`)
	if got := ptsNames(p, r, "b"); !got["v"] {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestIndirectCall(t *testing.T) {
	p, r := solve(t, `int obj;
int *id(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = id; res = fp(&obj); }`)
	if got := ptsNames(p, r, "res"); !got["obj"] {
		t.Errorf("pts(res) = %v", got)
	}
}

func TestAlmostLinearOnChains(t *testing.T) {
	// A long chain must not blow up: each assignment is O(α).
	src := "int v;\nint *p0;\n"
	body := "p0 = &v;\n"
	prev := "p0"
	for i := 1; i < 200; i++ {
		src += "int *p" + itoa(i) + ";\n"
		body += "p" + itoa(i) + " = " + prev + ";\n"
		prev = "p" + itoa(i)
	}
	p, r := solve(t, src+"void m(void) {\n"+body+"}\n")
	if got := ptsNames(p, r, "p199"); !got["v"] {
		t.Errorf("pts(p199) = %v", got)
	}
	if m := r.Metrics(); m.Relations == 0 {
		t.Error("no relations")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestPointsToOutOfRange(t *testing.T) {
	_, r := solve(t, "int x;")
	if got := r.PointsTo(999); got != nil {
		t.Errorf("PointsTo = %v", got)
	}
}

func TestMetricsCheap(t *testing.T) {
	_, r := solve(t, "int a, *p, *q; void m(void) { p = &a; q = p; }")
	m := r.Metrics()
	if m.PointerVars == 0 || m.Relations == 0 {
		t.Errorf("metrics = %+v", m)
	}
}
