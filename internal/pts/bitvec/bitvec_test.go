package bitvec

import (
	"fmt"
	"math/rand"
	"testing"

	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/worklist"
)

func solve(t *testing.T, src string) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(pts.NewMemSource(p))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func ptsNames(p *prim.Program, r *Result, name string) []string {
	var out []string
	for _, z := range r.PointsTo(p.SymIDByName(name)) {
		out = append(out, p.Sym(z).Name)
	}
	return out
}

func TestBasic(t *testing.T) {
	p, r := solve(t, "int a, b, *x, *y; void m(void) { x = &a; y = x; x = &b; }")
	got := ptsNames(p, r, "y")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("pts(y) = %v", got)
	}
}

func TestSortedOutput(t *testing.T) {
	// Declaration order b-then-a; sets must come out in symbol order.
	p, r := solve(t, "int b, a, *x; void m(void) { x = &b; x = &a; }")
	got := r.PointsTo(p.SymIDByName("x"))
	if len(got) != 2 || got[0] > got[1] {
		t.Errorf("pts(x) not sorted: %v", got)
	}
}

func TestStoreLoadAndCopy(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **pp, **qq;
void m(void) { pp = &a; *pp = &v; b = *pp; qq = &b; *qq = *pp; }`)
	if got := ptsNames(p, r, "b"); len(got) != 1 || got[0] != "v" {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestIndirectCalls(t *testing.T) {
	p, r := solve(t, `int obj;
int *id(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = id; res = fp(&obj); }`)
	if got := ptsNames(p, r, "res"); len(got) != 1 || got[0] != "obj" {
		t.Errorf("pts(res) = %v", got)
	}
}

// TestMatchesWorklist: the bit-vector and sorted-slice implementations of
// the same algorithm must agree exactly.
func TestMatchesWorklist(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := &prim.Program{}
		nsyms := 3 + rng.Intn(15)
		for i := 0; i < nsyms; i++ {
			prog.AddSym(prim.Symbol{Name: fmt.Sprintf("v%d", i), Kind: prim.SymGlobal})
		}
		na := 5 + rng.Intn(40)
		for i := 0; i < na; i++ {
			prog.AddAssign(prim.Assign{
				Kind: prim.Kind(rng.Intn(prim.NumKinds)),
				Dst:  prim.SymID(rng.Intn(nsyms)),
				Src:  prim.SymID(rng.Intn(nsyms)),
			})
		}
		bv, err := Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		wl, err := worklist.Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nsyms; i++ {
			b := bv.PointsTo(prim.SymID(i))
			w := wl.PointsTo(prim.SymID(i))
			if len(b) != len(w) {
				t.Fatalf("seed %d: pts(v%d): %v vs %v", seed, i, b, w)
			}
			for j := range b {
				if b[j] != w[j] {
					t.Fatalf("seed %d: pts(v%d): %v vs %v", seed, i, b, w)
				}
			}
		}
	}
}

func TestMetrics(t *testing.T) {
	_, r := solve(t, "int v, *p, **q; void m(void) { p = &v; q = &p; *q = p; }")
	m := r.Metrics()
	if m.PointerVars == 0 || m.Relations == 0 || m.InFile == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestNoAddressTaken(t *testing.T) {
	p, r := solve(t, "int x, y; void m(void) { x = y; }")
	if got := r.PointsTo(p.SymIDByName("x")); got != nil {
		t.Errorf("pts(x) = %v", got)
	}
}

func TestOutOfRange(t *testing.T) {
	_, r := solve(t, "int x;")
	if got := r.PointsTo(999); got != nil {
		t.Errorf("PointsTo = %v", got)
	}
}
