// Package bitvec implements Andersen's analysis with dense bit-vector
// points-to sets — one of the alternative subset-based implementations the
// paper reports building on the CLA substrate ("including an
// implementation based on bit-vectors"). The universe of bits is the set
// of address-taken objects, so vectors stay proportional to the number of
// distinct lvals rather than all symbols.
package bitvec

import (
	"math/bits"

	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
)

// Result holds the solved relation with bit-vector sets.
type Result struct {
	pt    []bitset
	lvals []prim.SymID // bit index → symbol, ascending
	n     int
	m     pts.Metrics
}

type bitset []uint64

func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int) bool {
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b[w]&m != 0 {
		return false
	}
	b[w] |= m
	return true
}

// or merges src into b, reporting growth.
func (b bitset) or(src bitset) bool {
	changed := false
	for i, w := range src {
		if b[i]|w != b[i] {
			b[i] |= w
			changed = true
		}
	}
	return changed
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

type solver struct {
	src    pts.Source
	n      int
	words  int
	bitOf  map[prim.SymID]int
	lvals  []prim.SymID
	pt     []bitset
	succ   []set.Sparse
	loads  map[int32][]int32
	stores map[int32][]int32

	recOfFunc map[int32]*prim.FuncRecord
	ptrRecs   []*prim.FuncRecord

	work    []int32
	inWk    []bool
	succBuf []int32 // scratch for iterating succ[v] in ascending order
	m       pts.Metrics
}

// Solve runs the bit-vector Andersen analysis, materializing the final
// sets on every available core; see SolveJobs.
func Solve(src pts.Source) (*Result, error) {
	return SolveJobs(src, 0)
}

// SolveJobs runs the bit-vector Andersen analysis with the final-set
// materialization (population counts for the PointerVars/Relations
// accounting) sharded across up to jobs workers (jobs <= 0 means
// GOMAXPROCS). The fixpoint itself is single-threaded; workers only read
// the solved vectors and accumulate privately, so results are identical
// at any worker count.
func SolveJobs(src pts.Source, jobs int) (*Result, error) {
	s := &solver{
		src: src, n: src.NumSyms(),
		bitOf:     map[prim.SymID]int{},
		loads:     map[int32][]int32{},
		stores:    map[int32][]int32{},
		recOfFunc: map[int32]*prim.FuncRecord{},
	}

	statics, err := src.Statics()
	if err != nil {
		return nil, err
	}
	s.m.Loaded += len(statics)
	// The bit universe: distinct address-taken objects, in symbol order
	// so PointsTo output is sorted.
	seen := map[prim.SymID]bool{}
	for _, a := range statics {
		if !seen[a.Src] {
			seen[a.Src] = true
			s.lvals = append(s.lvals, a.Src)
		}
	}
	pts.SortSyms(s.lvals)
	for i, lv := range s.lvals {
		s.bitOf[lv] = i
	}
	s.words = (len(s.lvals) + 63) / 64
	s.pt = make([]bitset, s.n)
	s.succ = make([]set.Sparse, s.n)
	s.inWk = make([]bool, s.n)

	funcs := src.Funcs()
	for i := range funcs {
		f := &funcs[i]
		if src.Sym(f.Func).Kind == prim.SymFunc {
			s.recOfFunc[int32(f.Func)] = f
		}
		if src.Sym(f.Func).FuncPtr {
			s.ptrRecs = append(s.ptrRecs, f)
		}
	}

	for _, a := range statics {
		s.addBit(int32(a.Dst), s.bitOf[a.Src])
	}
	for i := 0; i < s.n; i++ {
		block, err := src.Block(prim.SymID(i))
		if err != nil {
			return nil, err
		}
		s.m.Loaded += len(block)
		for _, a := range block {
			d, y := int32(a.Dst), int32(a.Src)
			switch a.Kind {
			case prim.Simple:
				s.addEdge(y, d)
			case prim.LoadInd:
				s.loads[y] = append(s.loads[y], d)
				s.m.InCore++
			case prim.StoreInd:
				s.stores[d] = append(s.stores[d], y)
				s.m.InCore++
			case prim.CopyInd:
				t := s.extend()
				s.loads[y] = append(s.loads[y], t)
				s.stores[d] = append(s.stores[d], t)
				s.m.InCore += 2
			case prim.Base:
				if bit, ok := s.bitOf[a.Src]; ok {
					s.addBit(d, bit)
				}
			}
		}
	}

	for len(s.work) > 0 {
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.inWk[v] = false
		s.m.Passes++

		set := s.pt[v]
		if set == nil {
			continue
		}
		// Complex rules over every member.
		s.forEach(set, func(bit int) {
			z := int32(s.lvals[bit])
			for _, x := range s.loads[v] {
				s.addEdge(z, x)
			}
			for _, y := range s.stores[v] {
				s.addEdge(y, z)
			}
		})
		// Function-pointer linking.
		if int(v) < s.n && s.src.Sym(prim.SymID(v)).FuncPtr {
			for _, r := range s.ptrRecs {
				if int32(r.Func) != v {
					continue
				}
				s.forEach(set, func(bit int) {
					g, ok := s.recOfFunc[int32(s.lvals[bit])]
					if !ok {
						return
					}
					np := min(len(r.Params), len(g.Params))
					for i := 0; i < np; i++ {
						s.addEdge(int32(r.Params[i]), int32(g.Params[i]))
					}
					if r.Ret != prim.NoSym && g.Ret != prim.NoSym {
						s.addEdge(int32(g.Ret), int32(r.Ret))
					}
				})
			}
		}
		s.succBuf = s.succ[v].AppendTo(s.succBuf[:0])
		for _, w := range s.succBuf {
			if s.ensure(w).or(set) {
				s.enqueue(w)
			}
		}
	}

	s.m.InFile = pts.TotalAssigns(src)
	res := &Result{pt: s.pt[:s.n], lvals: s.lvals, n: s.n, m: s.m}
	w := parallel.Workers(jobs)
	vars := make([]int, w)
	rels := make([]int, w)
	parallel.Shard(jobs, s.n, func(wk, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if !pts.CountedAsPointerVar(src.Sym(prim.SymID(i)).Kind) {
				continue
			}
			if s.pt[i] == nil {
				continue
			}
			if c := s.pt[i].count(); c > 0 {
				vars[wk]++
				rels[wk] += c
			}
		}
		return nil
	})
	for i := 0; i < w; i++ {
		res.m.PointerVars += vars[i]
		res.m.Relations += rels[i]
	}
	return res, nil
}

func (s *solver) forEach(b bitset, f func(bit int)) {
	for wi, w := range b {
		for w != 0 {
			bit := wi*64 + bits.TrailingZeros64(w)
			f(bit)
			w &= w - 1
		}
	}
}

func (s *solver) ensure(v int32) bitset {
	if s.pt[v] == nil {
		s.pt[v] = make(bitset, s.words)
	}
	return s.pt[v]
}

func (s *solver) extend() int32 {
	id := int32(len(s.pt))
	s.pt = append(s.pt, nil)
	s.succ = append(s.succ, set.Sparse{})
	s.inWk = append(s.inWk, false)
	return id
}

func (s *solver) enqueue(v int32) {
	if !s.inWk[v] {
		s.inWk[v] = true
		s.work = append(s.work, v)
	}
}

func (s *solver) addBit(v int32, bit int) {
	if s.ensure(v).set(bit) {
		s.enqueue(v)
	}
}

func (s *solver) addEdge(a, b int32) {
	if a == b {
		return
	}
	if !s.succ[a].Add(b) {
		return
	}
	s.m.EdgesAdded++
	if s.pt[a] != nil && s.ensure(b).or(s.pt[a]) {
		s.enqueue(b)
	}
}

// PointsTo implements pts.Result.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	if int(sym) < 0 || int(sym) >= r.n || r.pt[sym] == nil {
		return nil
	}
	var out []prim.SymID
	for wi, w := range r.pt[sym] {
		for w != 0 {
			bit := wi*64 + bits.TrailingZeros64(w)
			out = append(out, r.lvals[bit])
			w &= w - 1
		}
	}
	return out
}

// Metrics implements pts.Result.
func (r *Result) Metrics() pts.Metrics { return r.m }
