package pts

// Warm carries a previously converged fixpoint together with the digest
// of the constraint database it was solved from (prim.Program.Digest
// plus whatever configuration bits the caller folds in). The solvers'
// warm-start entry points compare the caller's current digest against
// it: on a match the previous Result is returned as-is — every solver in
// the toolkit is deterministic, so an identical database under an
// identical configuration reproduces the identical fixpoint, and the
// reuse is byte-exact by construction, not approximation.
//
// This is generation-level reuse: the no-op edit (whitespace-only
// recompile, reverted change, rebuilt-but-identical link) costs zero
// solve time, while any semantic change re-solves from scratch.
// Seeding the difference-propagation worklist from a previous fixpoint
// under a constraint *delta* is the natural next step and is documented
// as future work in DESIGN.md; it needs stable symbol identity across
// generations, which the linker does not yet provide.
type Warm struct {
	// Digest identifies the solved constraint database + configuration.
	Digest uint64
	// Result is the converged fixpoint for Digest.
	Result Result
}

// Match reports whether the warm fixpoint can stand in for a solve of a
// database with the given digest.
func (w *Warm) Match(digest uint64) bool {
	return w != nil && w.Result != nil && w.Digest == digest
}
