package pts

import (
	"bytes"
	"testing"

	"cla/internal/objfile"
	"cla/internal/prim"
)

func sample() *prim.Program {
	p := &prim.Program{}
	x := p.AddSym(prim.Symbol{Name: "x", Kind: prim.SymGlobal})
	y := p.AddSym(prim.Symbol{Name: "y", Kind: prim.SymGlobal})
	q := p.AddSym(prim.Symbol{Name: "q", Kind: prim.SymGlobal})
	t := p.AddSym(prim.Symbol{Name: "tmp$1", Kind: prim.SymTemp})
	p.AddAssign(prim.Assign{Kind: prim.Base, Dst: q, Src: y})
	p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: x, Src: y})
	p.AddAssign(prim.Assign{Kind: prim.LoadInd, Dst: x, Src: q})
	p.AddAssign(prim.Assign{Kind: prim.Simple, Dst: t, Src: q})
	return p
}

func TestMemSourceBlocks(t *testing.T) {
	p := sample()
	src := NewMemSource(p)
	if src.NumSyms() != 4 {
		t.Fatalf("NumSyms = %d", src.NumSyms())
	}
	statics, err := src.Statics()
	if err != nil || len(statics) != 1 || statics[0].Kind != prim.Base {
		t.Fatalf("statics = %v, %v", statics, err)
	}
	y := p.SymIDByName("y")
	blk, err := src.Block(y)
	if err != nil || len(blk) != 1 {
		t.Fatalf("block(y) = %v, %v", blk, err)
	}
	if src.BlockLen(y) != 1 {
		t.Errorf("BlockLen(y) = %d", src.BlockLen(y))
	}
	if src.BlockLen(prim.SymID(999)) != 0 {
		t.Error("out-of-range BlockLen != 0")
	}
	if b, err := src.Block(prim.SymID(999)); b != nil || err != nil {
		t.Error("out-of-range Block != nil")
	}
	counts := src.Counts()
	if counts[prim.Simple] != 2 || counts[prim.Base] != 1 || counts[prim.LoadInd] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestFileSourceMatchesMemSource(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := objfile.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	r, err := objfile.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	fs := &FileSource{R: r}
	ms := NewMemSource(p)
	if fs.NumSyms() != ms.NumSyms() {
		t.Fatalf("NumSyms: %d vs %d", fs.NumSyms(), ms.NumSyms())
	}
	if fs.Counts() != ms.Counts() {
		t.Errorf("counts differ")
	}
	for i := 0; i < ms.NumSyms(); i++ {
		id := prim.SymID(i)
		fb, _ := fs.Block(id)
		mb, _ := ms.Block(id)
		if len(fb) != len(mb) {
			t.Errorf("block %d: %d vs %d entries", i, len(fb), len(mb))
		}
		if fs.BlockLen(id) != ms.BlockLen(id) {
			t.Errorf("blocklen %d differs", i)
		}
	}
	fStat, _ := fs.Statics()
	mStat, _ := ms.Statics()
	if len(fStat) != len(mStat) {
		t.Errorf("statics: %d vs %d", len(fStat), len(mStat))
	}
}

func TestCountedAsPointerVar(t *testing.T) {
	want := map[prim.SymKind]bool{
		prim.SymGlobal: true, prim.SymStatic: true, prim.SymLocal: true,
		prim.SymField: true, prim.SymTemp: false, prim.SymHeap: false,
		prim.SymFunc: false, prim.SymParam: false, prim.SymRet: false,
		prim.SymString: false,
	}
	for k, w := range want {
		if got := CountedAsPointerVar(k); got != w {
			t.Errorf("CountedAsPointerVar(%v) = %v, want %v", k, got, w)
		}
	}
}

type fakeResult struct{ sets map[prim.SymID][]prim.SymID }

func (f fakeResult) PointsTo(s prim.SymID) []prim.SymID { return f.sets[s] }
func (f fakeResult) Metrics() Metrics                   { return Metrics{} }

func TestSumRelations(t *testing.T) {
	p := sample()
	src := NewMemSource(p)
	res := fakeResult{sets: map[prim.SymID][]prim.SymID{
		p.SymIDByName("q"):     {p.SymIDByName("y")},
		p.SymIDByName("x"):     {p.SymIDByName("y"), p.SymIDByName("q")},
		p.SymIDByName("tmp$1"): {p.SymIDByName("y")}, // temp: excluded
	}}
	vars, rels := SumRelations(src, res)
	if vars != 2 || rels != 3 {
		t.Errorf("vars=%d rels=%d, want 2, 3", vars, rels)
	}
}

func TestSortSyms(t *testing.T) {
	ids := []prim.SymID{3, 1, 2}
	SortSyms(ids)
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("sorted = %v", ids)
	}
}
