package onelevel

import (
	"fmt"
	"math/rand"
	"testing"

	"cla/internal/core"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/steens"
)

func solve(t *testing.T, src string) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(pts.NewMemSource(p))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func ptsNames(p *prim.Program, r pts.Result, name string) map[string]bool {
	out := map[string]bool{}
	for _, z := range r.PointsTo(p.SymIDByName(name)) {
		out[p.Sym(z).Name] = true
	}
	return out
}

func TestBasicFlow(t *testing.T) {
	p, r := solve(t, "int a, *x, *y; void m(void) { x = &a; y = x; }")
	if got := ptsNames(p, r, "y"); !got["a"] {
		t.Errorf("pts(y) = %v", got)
	}
}

// The defining improvement over Steensgaard: x = y does not merge
// backwards, so y keeps its smaller set.
func TestDirectionalityBeatsSteensgaard(t *testing.T) {
	src := `int a, b, *x, *y;
void m(void) { x = &a; y = &b; x = y; }`
	p, r := solve(t, src)
	gotY := ptsNames(p, r, "y")
	if gotY["a"] {
		t.Errorf("pts(y) = %v: one-level flow must not merge backwards", gotY)
	}
	gotX := ptsNames(p, r, "x")
	if !gotX["a"] || !gotX["b"] {
		t.Errorf("pts(x) = %v", gotX)
	}
	// Confirm Steensgaard does conflate (the test premise).
	pp, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := steens.Solve(pts.NewMemSource(pp))
	if err != nil {
		t.Fatal(err)
	}
	if got := ptsNames(pp, sr, "y"); !got["a"] {
		t.Errorf("expected steensgaard to conflate; got %v", got)
	}
}

// Below the top level, stored values unify (the one-level part):
// storing &a and &b through pointers to the same location merges a and b.
func TestStoreUnifiesBelow(t *testing.T) {
	src := `int a, b, cell;
int *pa, *pb, **p;
int *ra;
void m(void) {
	p = &pa;
	*p = &a;
	*p = &b;
	ra = *p;
}`
	p, r := solve(t, src)
	got := ptsNames(p, r, "ra")
	if !got["a"] || !got["b"] {
		t.Errorf("pts(ra) = %v", got)
	}
	_ = got
}

func TestLoadStore(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **pp;
void m(void) { pp = &a; *pp = &v; b = *pp; }`)
	if got := ptsNames(p, r, "b"); !got["v"] {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestCopyIndirect(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **p, **q;
void m(void) { p = &a; q = &b; a = &v; *q = *p; }`)
	if got := ptsNames(p, r, "b"); !got["v"] {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestIndirectCalls(t *testing.T) {
	p, r := solve(t, `int obj;
int *id(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = id; res = fp(&obj); }`)
	if got := ptsNames(p, r, "res"); !got["obj"] {
		t.Errorf("pts(res) = %v", got)
	}
}

// Soundness on random programs: Andersen ⊆ one-level flow (every fact the
// exact subset analysis derives is present). The upper bound against
// Steensgaard is intentionally not asserted: the simplified below-level
// model is usually tighter but not pointwise comparable.
func TestPrecisionSandwich(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := &prim.Program{}
		nsyms := 4 + rng.Intn(14)
		for i := 0; i < nsyms; i++ {
			prog.AddSym(prim.Symbol{Name: fmt.Sprintf("v%d", i), Kind: prim.SymGlobal})
		}
		for i := 0; i < 5+rng.Intn(35); i++ {
			prog.AddAssign(prim.Assign{
				Kind: prim.Kind(rng.Intn(prim.NumKinds)),
				Dst:  prim.SymID(rng.Intn(nsyms)),
				Src:  prim.SymID(rng.Intn(nsyms)),
			})
		}
		exact, err := core.Solve(pts.NewMemSource(prog), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		olf, err := Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		uni, err := steens.Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nsyms; i++ {
			id := prim.SymID(i)
			a := toSet(exact.PointsTo(id))
			o := toSet(olf.PointsTo(id))
			u := toSet(uni.PointsTo(id))
			for z := range a {
				if !o[z] {
					t.Fatalf("seed %d: olf pts(v%d) missing %v (andersen has it)", seed, i, z)
				}
			}
			_ = u
		}
	}
}

func toSet(ids []prim.SymID) map[prim.SymID]bool {
	out := map[prim.SymID]bool{}
	for _, id := range ids {
		out[id] = true
	}
	return out
}

func TestMetrics(t *testing.T) {
	_, r := solve(t, "int v, *p, **q; void m(void) { p = &v; q = &p; *q = p; }")
	m := r.Metrics()
	if m.PointerVars == 0 || m.Relations == 0 || m.InFile == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestOutOfRange(t *testing.T) {
	_, r := solve(t, "int x;")
	if got := r.PointsTo(999); got != nil {
		t.Errorf("PointsTo = %v", got)
	}
}
