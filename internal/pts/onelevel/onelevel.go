// Package onelevel implements a simplified form of Das's one-level flow
// algorithm ("Unification-based Pointer Analysis with Directional
// Assignments", PLDI 2000) — the hybrid the paper discusses in Sections 1
// and 6: directional subset edges at the top level of the points-to graph,
// Steensgaard-style unification everywhere below it.
//
// Top-level variables carry directional sets of location classes (ECRs),
// propagated along flow edges like Andersen's analysis; values that flow
// through memory (stores and loads) are unified, so each location class
// has a single "contents" class.
//
// The result is a sound over-approximation of Andersen's analysis that
// avoids Steensgaard's backward merging for top-level assignments,
// recovering much of the subset-based precision at near-unification cost —
// Das's observation. Unlike Das's full algorithm, this simplified
// below-level model (two-way coupling of address-taken variables with
// their class contents) is not pointwise comparable to Steensgaard: it is
// usually more precise, but can be coarser below the top level.
package onelevel

import (
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
)

type solver struct {
	src pts.Source
	n   int

	// ECR union-find over location classes. Classes 0..n-1 correspond to
	// symbols; further classes are invented for unknown contents.
	parent  []int32
	rank    []int8
	members [][]prim.SymID
	// contents[c] is the class that values stored in locations of class c
	// point to (-1 until forced).
	contents []int32
	// activated[c] marks classes that appear in some points-to set: their
	// member variables' own top-level sets feed contents(c), since those
	// locations can then be read through pointers.
	activated []bool
	// virtual[c] marks classes invented for unknown contents (no symbol
	// members at creation). Dereferencing a virtual class folds onto
	// itself — memory deeper than one level below the top collapses, the
	// defining approximation of one-level flow (and what keeps
	// self-referential loads like x = *x from building infinite towers).
	virtual []bool
	funcsIn [][]int32

	// Top level: directional flow. Both sides use adaptive sparse sets
	// iterated in ascending order, so the worklist dynamics (and the
	// order unifications happen in) are deterministic.
	ptsOf []set.Sparse // variable → set of location classes
	succ  []set.Sparse // flow edges y → x for x = y
	// loads[y] are x with x = *y; stores[x] are y with *x = y.
	loads  map[int32][]int32
	stores map[int32][]int32

	recOfFunc map[int32]*prim.FuncRecord
	ptrRecs   []*prim.FuncRecord

	// sinks are virtual variables that keep unifying their points-to set
	// into a location class's contents (the sustained store rule).
	sinks  map[int32]int32 // class rep → sink var
	sinkOf map[int32]int32 // sink var → class

	work    []int32
	inWk    []bool
	succBuf []int32 // scratch for iterating succ[v] in ascending order
	m       pts.Metrics
}

// Result is the solved relation.
type Result struct{ s *solver }

// Solve runs the one-level flow analysis.
func Solve(src pts.Source) (*Result, error) {
	n := src.NumSyms()
	s := &solver{
		src: src, n: n,
		parent:    make([]int32, n),
		rank:      make([]int8, n),
		members:   make([][]prim.SymID, n),
		contents:  make([]int32, n),
		funcsIn:   make([][]int32, n),
		ptsOf:     make([]set.Sparse, n),
		succ:      make([]set.Sparse, n),
		loads:     map[int32][]int32{},
		stores:    map[int32][]int32{},
		recOfFunc: map[int32]*prim.FuncRecord{},
		inWk:      make([]bool, n),
	}
	s.activated = make([]bool, n)
	s.virtual = make([]bool, n)
	for i := 0; i < n; i++ {
		s.parent[i] = int32(i)
		s.contents[i] = -1
		s.members[i] = []prim.SymID{prim.SymID(i)}
	}
	funcs := src.Funcs()
	for i := range funcs {
		f := &funcs[i]
		if src.Sym(f.Func).Kind == prim.SymFunc {
			s.recOfFunc[int32(f.Func)] = f
		}
		if src.Sym(f.Func).FuncPtr {
			s.ptrRecs = append(s.ptrRecs, f)
		}
	}

	statics, err := src.Statics()
	if err != nil {
		return nil, err
	}
	s.m.Loaded += len(statics)
	for _, a := range statics {
		c := s.find(int32(a.Src))
		s.addPts(int32(a.Dst), c)
		if src.Sym(a.Src).Kind == prim.SymFunc {
			s.funcsIn[c] = append(s.funcsIn[c], int32(a.Src))
		}
	}
	for i := 0; i < n; i++ {
		block, err := src.Block(prim.SymID(i))
		if err != nil {
			return nil, err
		}
		s.m.Loaded += len(block)
		for _, a := range block {
			d, y := int32(a.Dst), int32(a.Src)
			switch a.Kind {
			case prim.Simple: // d = y: directional top-level flow.
				s.addFlow(y, d)
			case prim.LoadInd: // d = *y
				s.loads[y] = append(s.loads[y], d)
				s.m.InCore++
			case prim.StoreInd: // *d = y
				s.stores[d] = append(s.stores[d], y)
				s.m.InCore++
			case prim.CopyInd: // *d = *y: t = *y; *d = t via virtual var
				t := s.extendVar()
				s.loads[y] = append(s.loads[y], t)
				s.stores[d] = append(s.stores[d], t)
				s.m.InCore += 2
			case prim.Base:
				s.addPts(d, s.find(y))
			}
		}
	}

	for len(s.work) > 0 {
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.inWk[v] = false
		s.m.Passes++

		set := s.classesOf(v)
		// Sink variables unify everything that reaches them into their
		// class's contents.
		if e, ok := s.sinkOf[v]; ok {
			c := s.contentsOf(e)
			for _, f := range set {
				s.unify(c, f)
			}
		}
		// Loads: x = *v → pts(x) gains contents(e) for each e ∈ pts(v).
		for _, x := range s.loads[v] {
			for _, e := range set {
				s.addPts(x, s.contentsOf(e))
			}
		}
		// Stores: *v = y → values of y unify into contents(e): every
		// class in pts(y) merges with contents(e) (the one-level part).
		for _, y := range s.stores[v] {
			for _, e := range set {
				c := s.contentsOf(e)
				for _, f := range s.classesOf(y) {
					s.unify(c, f)
				}
				// Future growth of pts(y) must keep unifying: record a
				// flow from y into a virtual variable owning class c.
				s.addFlow(y, s.sinkFor(e))
			}
		}
		// Indirect calls.
		if int(v) < s.n && s.src.Sym(prim.SymID(v)).FuncPtr {
			for _, r := range s.ptrRecs {
				if int32(r.Func) != v {
					continue
				}
				for _, e := range set {
					e = s.find(e)
					for _, g := range s.funcsIn[e] {
						rec, ok := s.recOfFunc[g]
						if !ok {
							continue
						}
						np := min(len(r.Params), len(rec.Params))
						for i := 0; i < np; i++ {
							s.addFlow(int32(r.Params[i]), int32(rec.Params[i]))
						}
						if r.Ret != prim.NoSym && rec.Ret != prim.NoSym {
							s.addFlow(int32(rec.Ret), int32(r.Ret))
						}
					}
				}
			}
		}
		// Propagate along top-level flow edges. The rules above may have
		// added edges out of v; snapshotting after them captures those
		// (addFlow also propagates immediately, so either way is sound).
		s.succBuf = s.succ[v].AppendTo(s.succBuf[:0])
		for _, w := range s.succBuf {
			if s.union(w, set) {
				s.enqueue(w)
			}
		}
	}

	s.m.InFile = pts.TotalAssigns(src)
	// Flatten every union-find path before publishing: queries then walk
	// parent links without writing, so a Result is safe for concurrent
	// PointsTo calls (the contract the serving layer relies on).
	for v := range s.parent {
		s.parent[v] = s.find(int32(v))
	}
	res := &Result{s: s}
	vars, rels := 0, 0
	for i := 0; i < n; i++ {
		if !pts.CountedAsPointerVar(src.Sym(prim.SymID(i)).Kind) {
			continue
		}
		sz := 0
		seen := map[int32]struct{}{}
		for _, e := range s.classesOf(int32(i)) {
			e = s.find(e)
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			sz += s.locCount(e)
		}
		if sz > 0 {
			vars++
			rels += sz
		}
	}
	s.m.PointerVars = vars
	s.m.Relations = rels
	return res, nil
}

// locCount counts symbol locations in class e.
func (s *solver) locCount(e int32) int {
	n := 0
	for _, m := range s.members[e] {
		if int(m) < s.n {
			n++
		}
	}
	return n
}

// sinkFor returns a virtual variable whose points-to set is kept unified
// into contents(e); flowing y into it implements the sustained one-level
// store rule. One sink per class representative; after class merges a
// stale sink still unifies into the merged contents, which is correct.
func (s *solver) sinkFor(e int32) int32 {
	e = s.find(e)
	if s.sinks == nil {
		s.sinks = map[int32]int32{}
		s.sinkOf = map[int32]int32{}
	}
	if v, ok := s.sinks[e]; ok {
		return v
	}
	v := s.extendVar()
	s.sinks[e] = v
	s.sinkOf[v] = e
	return v
}

// classesOf returns the (found) classes of v's points-to set. The slice
// is always fresh: callers hold it across nested rule invocations that
// may call classesOf again.
func (s *solver) classesOf(v int32) []int32 {
	ps := &s.ptsOf[v]
	out := make([]int32, 0, ps.Len())
	ps.ForEach(func(e int32) {
		out = append(out, s.find(e))
	})
	return out
}

func (s *solver) extendVar() int32 {
	id := int32(len(s.ptsOf))
	s.ptsOf = append(s.ptsOf, set.Sparse{})
	s.succ = append(s.succ, set.Sparse{})
	s.inWk = append(s.inWk, false)
	return id
}

func (s *solver) extendClass() int32 {
	id := int32(len(s.parent))
	s.parent = append(s.parent, id)
	s.rank = append(s.rank, 0)
	s.members = append(s.members, nil)
	s.contents = append(s.contents, -1)
	s.activated = append(s.activated, false)
	s.virtual = append(s.virtual, true)
	s.funcsIn = append(s.funcsIn, nil)
	return id
}

// activate marks class e as pointed-to: every member variable's top-level
// set must flow into contents(e), because reads through pointers to e
// observe those variables' values.
func (s *solver) activate(e int32) {
	e = s.find(e)
	if s.activated[e] {
		return
	}
	s.activated[e] = true
	sink := s.sinkFor(e)
	c := s.contentsOf(e)
	for _, m := range s.members[e] {
		if int(m) < s.n {
			s.addFlow(int32(m), sink)
			s.addPts(int32(m), c)
		}
	}
}

func (s *solver) find(v int32) int32 {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

// findRO follows parent links without compressing — the query-time
// variant. Solve flattens every path before publishing, so this is one
// hop; it must not write, because Results serve concurrent queries.
func (s *solver) findRO(v int32) int32 {
	for s.parent[v] != v {
		v = s.parent[v]
	}
	return v
}

// contentsOf forces and returns contents(e). Virtual classes are their
// own contents (see the virtual field).
func (s *solver) contentsOf(e int32) int32 {
	e = s.find(e)
	if s.contents[e] < 0 {
		if s.virtual[e] {
			s.contents[e] = e
		} else {
			s.contents[e] = s.extendClass()
		}
	}
	return s.find(s.contents[e])
}

// unify merges location classes a and b (and recursively their contents).
func (s *solver) unify(a, b int32) int32 {
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	if s.rank[a] < s.rank[b] {
		a, b = b, a
	} else if s.rank[a] == s.rank[b] {
		s.rank[a]++
	}
	s.parent[b] = a
	s.virtual[a] = s.virtual[a] && s.virtual[b]
	s.members[a] = append(s.members[a], s.members[b]...)
	s.members[b] = nil
	s.funcsIn[a] = append(s.funcsIn[a], s.funcsIn[b]...)
	s.funcsIn[b] = nil
	ca, cb := s.contents[a], s.contents[b]
	s.contents[b] = -1
	if ca >= 0 && cb >= 0 {
		s.contents[a] = s.unify(ca, cb)
	} else if cb >= 0 {
		s.contents[a] = cb
	}
	if s.activated[a] || s.activated[b] {
		// Re-activate the merged class so newly absorbed members connect.
		s.activated[a] = false
		s.activated[b] = false
		s.activate(a)
	}
	s.m.Unifications++
	// Variables whose sets contain merged classes may need complex rules
	// re-run; conservatively wake everything with a pts set mentioning
	// the classes is expensive — waking loads/stores sources suffices via
	// their worklist entries, triggered by set growth. Class merging does
	// not grow top-level sets, so no wake is needed for soundness: the
	// rules operate on found classes.
	return a
}

// addPts inserts class e into pts(v), activating it.
func (s *solver) addPts(v, e int32) {
	e = s.find(e)
	if !s.ptsOf[v].Add(e) {
		return
	}
	s.activate(e)
	s.enqueue(v)
}

// union merges classes into v's set; reports growth (modulo find).
// Classes arriving by propagation are already activated.
func (s *solver) union(v int32, classes []int32) bool {
	grew := false
	for _, e := range classes {
		if s.ptsOf[v].Add(s.find(e)) {
			grew = true
		}
	}
	return grew
}

// addFlow adds the directional edge a → b (pts(a) ⊆ pts(b)).
func (s *solver) addFlow(a, b int32) {
	if a == b {
		return
	}
	if !s.succ[a].Add(b) {
		return
	}
	s.m.EdgesAdded++
	if s.union(b, s.classesOf(a)) {
		s.enqueue(b)
	}
}

func (s *solver) enqueue(v int32) {
	if !s.inWk[v] {
		s.inWk[v] = true
		s.work = append(s.work, v)
	}
}

// PointsTo implements pts.Result.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	s := r.s
	if int(sym) < 0 || int(sym) >= s.n {
		return nil
	}
	seen := map[int32]struct{}{}
	var out []prim.SymID
	s.ptsOf[sym].ForEach(func(cl int32) {
		e := s.findRO(cl)
		if _, ok := seen[e]; ok {
			return
		}
		seen[e] = struct{}{}
		for _, m := range s.members[e] {
			if int(m) < s.n {
				out = append(out, m)
			}
		}
	})
	return set.SortDedup(out)
}

// Metrics implements pts.Result.
func (r *Result) Metrics() pts.Metrics { return r.s.m }
