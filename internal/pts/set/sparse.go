package set

import (
	"math/bits"
	"sort"
)

// sparseInline is the inline capacity of a mutable Sparse set.
const sparseInline = 8

// bitsPromoteMin is the array size below which promotion to the bitset
// tier is never attempted.
const bitsPromoteMin = 16

// Sparse is a mutable adaptive set of non-negative int32 ids — the
// replacement for the map[int32]struct{} successor/points-to sets the
// solvers used to burn ~48 bytes per entry on. It starts inline in the
// struct (no heap allocation for the zero value), grows into a sorted
// array, and promotes to a windowed bitset once 2*spanWords <= n (the
// same storage-economics rule the sealed Set tier uses: 8-byte words
// beat 4-byte elements at that density). If later inserts break the
// density it demotes back to the array, so storage stays within 2x of
// the optimum either way. Iteration is always ascending, which makes
// solver worklist dynamics deterministic where map iteration was not.
//
// The zero value is an empty set ready for use. Not safe for concurrent
// mutation.
type Sparse struct {
	n    int32
	tier uint8
	base int32 // bits tier: word index of words[0] (element >> 6)

	inl   [sparseInline]int32
	arr   []int32 // sorted
	words []uint64
}

// Len returns the element count.
func (p *Sparse) Len() int {
	if p == nil {
		return 0
	}
	return int(p.n)
}

// Has reports membership.
func (p *Sparse) Has(x int32) bool {
	if p == nil {
		return false
	}
	switch p.tier {
	case tierInline:
		for i := int32(0); i < p.n; i++ {
			if p.inl[i] == x {
				return true
			}
		}
		return false
	case tierArray:
		i := sort.Search(len(p.arr), func(i int) bool { return p.arr[i] >= x })
		return i < len(p.arr) && p.arr[i] == x
	default:
		w := int(x>>6) - int(p.base)
		return w >= 0 && w < len(p.words) && p.words[w]&(1<<(uint32(x)&63)) != 0
	}
}

// Add inserts x, reporting whether it was absent.
func (p *Sparse) Add(x int32) bool {
	switch p.tier {
	case tierInline:
		// Sorted insert within the inline buffer.
		i := int32(0)
		for i < p.n && p.inl[i] < x {
			i++
		}
		if i < p.n && p.inl[i] == x {
			return false
		}
		if p.n < sparseInline {
			copy(p.inl[i+1:p.n+1], p.inl[i:p.n])
			p.inl[i] = x
			p.n++
			return true
		}
		// Spill to the array tier.
		p.arr = append(p.arr[:0], p.inl[:sparseInline]...)
		p.tier = tierArray
		return p.addArray(x)
	case tierArray:
		return p.addArray(x)
	default:
		return p.addBits(x)
	}
}

func (p *Sparse) addArray(x int32) bool {
	i := sort.Search(len(p.arr), func(i int) bool { return p.arr[i] >= x })
	if i < len(p.arr) && p.arr[i] == x {
		return false
	}
	p.arr = append(p.arr, 0)
	copy(p.arr[i+1:], p.arr[i:])
	p.arr[i] = x
	p.n++
	n := len(p.arr)
	if n >= bitsPromoteMin {
		if sw := spanWords(uint32(p.arr[0]), uint32(p.arr[n-1])); bitsBeatsArray(n, sw) {
			p.promoteBits(sw)
		}
	}
	return true
}

func (p *Sparse) promoteBits(sw int) {
	base := p.arr[0] >> 6
	if cap(p.words) >= sw {
		p.words = p.words[:sw]
		clear(p.words)
	} else {
		p.words = make([]uint64, sw)
	}
	for _, x := range p.arr {
		p.words[(x>>6)-base] |= 1 << (uint32(x) & 63)
	}
	p.base = base
	p.arr = p.arr[:0]
	p.tier = tierBits
}

func (p *Sparse) addBits(x int32) bool {
	w := int(x>>6) - int(p.base)
	if w >= 0 && w < len(p.words) {
		m := uint64(1) << (uint32(x) & 63)
		if p.words[w]&m != 0 {
			return false
		}
		p.words[w] |= m
		p.n++
		return true
	}
	// Out of window: grow if the density rule still favors bits,
	// otherwise demote to the array tier.
	lo, hi := p.base, p.base+int32(len(p.words))-1
	xw := x >> 6
	if xw < lo {
		lo = xw
	} else {
		hi = xw
	}
	need := int(hi - lo + 1)
	if !bitsBeatsArray(int(p.n)+1, need) {
		p.demoteArray()
		return p.addArray(x)
	}
	grown := make([]uint64, need)
	copy(grown[p.base-lo:], p.words)
	p.words = grown
	p.base = lo
	p.words[xw-lo] |= 1 << (uint32(x) & 63)
	p.n++
	return true
}

func (p *Sparse) demoteArray() {
	arr := p.arr[:0]
	if cap(arr) < int(p.n) {
		arr = make([]int32, 0, int(p.n)+1)
	}
	for wi, w := range p.words {
		off := (int32(wi) + p.base) << 6
		for w != 0 {
			arr = append(arr, off+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	p.arr = arr
	p.words = p.words[:0]
	p.tier = tierArray
}

// ForEach calls f for every element in ascending order. f must not
// mutate the set.
func (p *Sparse) ForEach(f func(int32)) {
	if p == nil {
		return
	}
	switch p.tier {
	case tierInline:
		for i := int32(0); i < p.n; i++ {
			f(p.inl[i])
		}
	case tierArray:
		for _, x := range p.arr {
			f(x)
		}
	default:
		for wi, w := range p.words {
			off := (int32(wi) + p.base) << 6
			for w != 0 {
				f(off + int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
}

// AppendTo appends the elements, ascending. Solvers use this to take a
// stable iteration snapshot into reusable scratch before mutating the
// graph mid-iteration.
func (p *Sparse) AppendTo(dst []int32) []int32 {
	if p == nil {
		return dst
	}
	switch p.tier {
	case tierInline:
		return append(dst, p.inl[:p.n]...)
	case tierArray:
		return append(dst, p.arr...)
	default:
		for wi, w := range p.words {
			off := (int32(wi) + p.base) << 6
			for w != 0 {
				dst = append(dst, off+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return dst
	}
}
