package set

import "cla/internal/prim"

// Builder accumulates a sorted union and seals it into a Set. All merge
// scratch is owned by the Builder and reused across Reset cycles, so a
// solver that performs millions of unions allocates only when a union
// result outgrows every previous one.
//
// A Builder is not safe for concurrent use; parallel stages use one
// Builder per worker.
type Builder struct {
	buf []uint32 // current accumulation, sorted
	tmp []uint32 // merge target, swapped with buf
	dec []uint32 // bits-tier decode scratch
}

// Reset empties the builder, keeping its scratch.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Len returns the current element count.
func (b *Builder) Len() int { return len(b.buf) }

// Add inserts one element, keeping the accumulation sorted.
func (b *Builder) Add(x uint32) {
	n := len(b.buf)
	if n == 0 || x > b.buf[n-1] {
		b.buf = append(b.buf, x)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if b.buf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if b.buf[lo] == x {
		return
	}
	b.buf = append(b.buf, 0)
	copy(b.buf[lo+1:], b.buf[lo:])
	b.buf[lo] = x
}

// AddSym inserts one SymID.
func (b *Builder) AddSym(x prim.SymID) { b.Add(uint32(x)) }

// MergeU32 unions the sorted slice xs (duplicates allowed) into the
// accumulation.
func (b *Builder) MergeU32(xs []uint32) {
	if len(xs) == 0 {
		return
	}
	if len(b.buf) == 0 || xs[0] > b.buf[len(b.buf)-1] {
		b.buf = appendDedup(b.buf, xs)
		return
	}
	out := b.tmp[:0]
	a := b.buf
	i, j := 0, 0
	for i < len(a) && j < len(xs) {
		switch {
		case a[i] < xs[j]:
			out = append(out, a[i])
			i++
		case a[i] > xs[j]:
			if len(out) == 0 || out[len(out)-1] != xs[j] {
				out = append(out, xs[j])
			}
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = appendDedup(out, xs[j:])
	b.tmp = a[:0]
	b.buf = out
}

// appendDedup appends the sorted slice xs, skipping elements equal to
// the running last (the accumulation itself is always duplicate-free).
func appendDedup(out, xs []uint32) []uint32 {
	for _, x := range xs {
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// MergeSyms unions a sorted SymID slice into the accumulation.
func (b *Builder) MergeSyms(xs []prim.SymID) {
	if len(xs) == 0 {
		return
	}
	b.dec = b.dec[:0]
	for _, x := range xs {
		b.dec = append(b.dec, uint32(x))
	}
	b.MergeU32(b.dec)
}

// MergeSet unions a sealed set into the accumulation.
func (b *Builder) MergeSet(s *Set) {
	if s == nil {
		return
	}
	switch s.tier {
	case tierInline:
		b.MergeU32(s.inl[:s.n])
	case tierArray:
		b.MergeU32(s.arr)
	default:
		b.dec = s.appendU32(b.dec[:0])
		b.MergeU32(b.dec)
	}
}

// Syms returns the accumulation as a fresh exact-size SymID slice (nil
// when empty). Used where a caller needs a heap-owned sorted slice (the
// core snapshot) rather than an arena-backed Set.
func (b *Builder) Syms() []prim.SymID {
	if len(b.buf) == 0 {
		return nil
	}
	out := make([]prim.SymID, len(b.buf))
	for i, x := range b.buf {
		out[i] = prim.SymID(x)
	}
	return out
}

// Seal materializes the accumulation as an immutable Set. With a
// non-nil Table, an existing structurally-equal Set is returned instead
// of storing a second copy (hash-consing); otherwise storage comes from
// the arena (or the Go heap when a is nil). Empty accumulations seal to
// nil. The builder remains usable (and unchanged) after Seal.
func (b *Builder) Seal(a *Arena, t *Table) *Set {
	n := len(b.buf)
	if n == 0 {
		return nil
	}
	h := hashU32(b.buf)
	if t != nil {
		if s := t.lookup(h, b.buf); s != nil {
			return s
		}
	}
	var s *Set
	if a != nil {
		s = a.allocHdr()
	} else {
		s = new(Set)
	}
	s.hash = h
	s.n = int32(n)
	switch sw := spanWords(b.buf[0], b.buf[n-1]); {
	case n <= InlineCap:
		s.tier = tierInline
		copy(s.inl[:], b.buf)
	case bitsBeatsArray(n, sw):
		s.tier = tierBits
		s.base = b.buf[0] >> 6
		var words []uint64
		if a != nil {
			words = a.Alloc64(sw) // zeroed by the arena
		} else {
			words = make([]uint64, sw)
		}
		for _, x := range b.buf {
			words[(x>>6)-s.base] |= 1 << (x & 63)
		}
		s.words = words
	default:
		s.tier = tierArray
		var arr []uint32
		if a != nil {
			arr = a.Alloc32(n)
		} else {
			arr = make([]uint32, n)
		}
		copy(arr, b.buf)
		s.arr = arr
	}
	if t != nil {
		t.insert(s)
	}
	return s
}
