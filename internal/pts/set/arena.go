package set

// Arena is a slab allocator for the element storage of sealed sets and
// for the Set headers themselves. Allocation is bump-pointer within
// fixed-size slabs; Reset rewinds to the beginning while keeping every
// slab, so a solver that seals one generation of sets per pass pays for
// slab growth only up to the high-water mark of its largest pass.
//
// Memory handed out by an arena is only valid until the next Reset —
// callers (the pre-transitive solver) guarantee no set outlives the pass
// that sealed it.
type Arena struct {
	slabs32 [][]uint32
	i32     int // current slab index
	off32   int // offset into slabs32[i32]

	slabs64 [][]uint64
	i64     int
	off64   int

	hdrs  []*[]Set // header slabs (pointer to keep Set addresses stable)
	ih    int
	offh  int
	bytes int64 // total bytes requested from the Go heap
}

const (
	slabWords32 = 16 << 10 // 64 KiB of uint32 per slab
	slabWords64 = 8 << 10  // 64 KiB of uint64 per slab
	slabHdrs    = 1 << 10  // Set headers per slab
)

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Alloc32 returns a zeroed-length uint32 slice of length n backed by the
// arena. Requests larger than a slab get a dedicated slab.
func (a *Arena) Alloc32(n int) []uint32 {
	if n == 0 {
		return nil
	}
	if n > slabWords32 {
		s := make([]uint32, n)
		a.bytes += int64(n) * 4
		// Dedicated slab, spliced before the current one so the bump
		// pointer keeps operating on the current slab.
		a.slabs32 = append(a.slabs32, nil)
		copy(a.slabs32[a.i32+1:], a.slabs32[a.i32:])
		a.slabs32[a.i32] = s
		a.i32++
		return s
	}
	if a.i32 >= len(a.slabs32) || a.off32+n > len(a.slabs32[a.i32]) {
		a.advance32()
	}
	s := a.slabs32[a.i32][a.off32 : a.off32+n : a.off32+n]
	a.off32 += n
	return s
}

func (a *Arena) advance32() {
	if a.i32 < len(a.slabs32) && a.off32 > 0 {
		a.i32++
	}
	for a.i32 < len(a.slabs32) && len(a.slabs32[a.i32]) < slabWords32 {
		a.i32++ // skip dedicated oversize slabs from earlier generations
	}
	if a.i32 >= len(a.slabs32) {
		a.slabs32 = append(a.slabs32, make([]uint32, slabWords32))
		a.bytes += slabWords32 * 4
		a.i32 = len(a.slabs32) - 1
	}
	a.off32 = 0
}

// Alloc64 returns a uint64 slice of length n backed by the arena. The
// returned words are zeroed (slabs are zeroed on allocation and wiped on
// Reset before reuse).
func (a *Arena) Alloc64(n int) []uint64 {
	if n == 0 {
		return nil
	}
	if n > slabWords64 {
		s := make([]uint64, n)
		a.bytes += int64(n) * 8
		a.slabs64 = append(a.slabs64, nil)
		copy(a.slabs64[a.i64+1:], a.slabs64[a.i64:])
		a.slabs64[a.i64] = s
		a.i64++
		return s
	}
	if a.i64 >= len(a.slabs64) || a.off64+n > len(a.slabs64[a.i64]) {
		a.advance64()
	}
	s := a.slabs64[a.i64][a.off64 : a.off64+n : a.off64+n]
	a.off64 += n
	return s
}

func (a *Arena) advance64() {
	if a.i64 < len(a.slabs64) && a.off64 > 0 {
		a.i64++
	}
	for a.i64 < len(a.slabs64) && len(a.slabs64[a.i64]) < slabWords64 {
		a.i64++
	}
	if a.i64 >= len(a.slabs64) {
		a.slabs64 = append(a.slabs64, make([]uint64, slabWords64))
		a.bytes += slabWords64 * 8
		a.i64 = len(a.slabs64) - 1
	}
	a.off64 = 0
}

// allocHdr returns a fresh Set header from the header slabs.
func (a *Arena) allocHdr() *Set {
	if a.ih >= len(a.hdrs) || a.offh >= len(*a.hdrs[a.ih]) {
		if a.ih < len(a.hdrs) && a.offh > 0 {
			a.ih++
		}
		if a.ih >= len(a.hdrs) {
			s := make([]Set, slabHdrs)
			a.hdrs = append(a.hdrs, &s)
			a.bytes += int64(slabHdrs) * int64(setHdrBytes)
			a.ih = len(a.hdrs) - 1
		}
		a.offh = 0
	}
	h := &(*a.hdrs[a.ih])[a.offh]
	a.offh++
	return h
}

// Reset rewinds the arena, keeping its slabs for reuse. Previously
// returned memory becomes invalid. Oversize dedicated slabs are dropped
// (they were sized for one particular set); regular slabs are wiped so
// Alloc64 callers see zeroed words again.
func (a *Arena) Reset() {
	w := 0
	for _, s := range a.slabs32 {
		if len(s) == slabWords32 {
			a.slabs32[w] = s
			w++
		} else {
			a.bytes -= int64(len(s)) * 4
		}
	}
	a.slabs32 = a.slabs32[:w]
	w = 0
	for _, s := range a.slabs64 {
		if len(s) == slabWords64 {
			clear(s)
			a.slabs64[w] = s
			w++
		} else {
			a.bytes -= int64(len(s)) * 8
		}
	}
	a.slabs64 = a.slabs64[:w]
	for _, h := range a.hdrs {
		clear(*h)
	}
	a.i32, a.off32, a.i64, a.off64, a.ih, a.offh = 0, 0, 0, 0, 0, 0
}

// Bytes reports the total heap bytes currently held by the arena's
// slabs — the live-memory cost of the set layer.
func (a *Arena) Bytes() int64 {
	if a == nil {
		return 0
	}
	return a.bytes
}
