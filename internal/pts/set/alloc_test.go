package set

import (
	"testing"

	"cla/internal/prim"
)

// The hot set operations must stay allocation-free once the layer's
// buffers are warm: lookups, iteration, and a full union-seal cycle
// into an arena whose slabs (and the interning table's buckets) were
// grown by an earlier pass. These guards are why the solvers can call
// the layer millions of times per pass without feeding the GC — the
// same discipline the nil-observer guards in internal/obs establish.

func warmSets(a *Arena, tb *Table) (dense, sparse *Set) {
	var b Builder
	for i := uint32(0); i < 200; i++ {
		b.Add(1000 + i)
	}
	dense = b.Seal(a, tb)
	b.Reset()
	for i := uint32(0); i < 50; i++ {
		b.Add(i * 997)
	}
	sparse = b.Seal(a, tb)
	return dense, sparse
}

func TestLookupAllocsFree(t *testing.T) {
	a := NewArena()
	tb := NewTable()
	dense, sparse := warmSets(a, tb)
	var sp Sparse
	for i := int32(0); i < 100; i++ {
		sp.Add(i * 3)
	}
	n := testing.AllocsPerRun(200, func() {
		if !dense.Has(1100) || dense.Has(13) {
			t.Fatal("dense membership wrong")
		}
		if !sparse.Has(997) || sparse.Has(998) {
			t.Fatal("sparse membership wrong")
		}
		if !sp.Has(30) || sp.Has(31) {
			t.Fatal("Sparse membership wrong")
		}
	})
	if n != 0 {
		t.Errorf("lookup allocated %.1f per run, want 0", n)
	}
}

func TestIterationAllocsFree(t *testing.T) {
	a := NewArena()
	tb := NewTable()
	dense, sparse := warmSets(a, tb)
	var sp Sparse
	for i := int32(0); i < 100; i++ {
		sp.Add(i)
	}
	sink := 0
	buf := make([]prim.SymID, 0, 256)
	ibuf := make([]int32, 0, 128)
	n := testing.AllocsPerRun(100, func() {
		dense.ForEach(func(x uint32) { sink += int(x) })
		sparse.ForEach(func(x uint32) { sink += int(x) })
		buf = dense.AppendSyms(buf[:0])
		ibuf = sp.AppendTo(ibuf[:0])
	})
	if n != 0 {
		t.Errorf("iteration allocated %.1f per run, want 0", n)
	}
	_ = sink
}

func TestUnionIntoArenaAllocsFree(t *testing.T) {
	a := NewArena()
	tb := NewTable()
	dense, sparse := warmSets(a, tb)
	var b Builder
	// Warm the builder's merge scratch and the table entry for the
	// union, then assert the steady-state cycle allocates nothing: the
	// union is re-sealed to the interned set, no arena growth needed.
	union := func() *Set {
		b.Reset()
		b.MergeSet(dense)
		b.MergeSet(sparse)
		return b.Seal(a, tb)
	}
	want := union()
	n := testing.AllocsPerRun(200, func() {
		if union() != want {
			t.Fatal("union not interned to the same set")
		}
	})
	if n != 0 {
		t.Errorf("union-into-arena allocated %.1f per run, want 0", n)
	}
}
