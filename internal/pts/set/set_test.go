package set

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cla/internal/prim"
)

// seal builds a Set from xs (any order, dups allowed) on the given
// arena/table.
func seal(t *testing.T, a *Arena, tb *Table, xs []uint32) *Set {
	t.Helper()
	var b Builder
	for _, x := range xs {
		b.Add(x)
	}
	return b.Seal(a, tb)
}

func elems(s *Set) []uint32 {
	var out []uint32
	s.ForEach(func(x uint32) { out = append(out, x) })
	return out
}

func sortedUnique(xs []uint32) []uint32 {
	m := map[uint32]bool{}
	for _, x := range xs {
		m[x] = true
	}
	out := make([]uint32, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSetTiers(t *testing.T) {
	cases := []struct {
		name string
		xs   []uint32
		tier uint8
	}{
		{"empty", nil, 0},
		{"inline", []uint32{9, 3, 7}, tierInline},
		{"inline-full", []uint32{4, 3, 2, 1}, tierInline},
		{"array-sparse", []uint32{0, 1000, 2000, 3000, 4000}, tierArray},
		{"bits-dense", []uint32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, tierBits},
		{"bits-offset", []uint32{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007, 1008, 1009}, tierBits},
	}
	a := NewArena()
	tb := NewTable()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := seal(t, a, tb, tc.xs)
			want := sortedUnique(tc.xs)
			if len(want) == 0 {
				if s != nil {
					t.Fatalf("empty seal = %v, want nil", s)
				}
				return
			}
			if s.tier != tc.tier {
				t.Errorf("tier = %d, want %d", s.tier, tc.tier)
			}
			if got := elems(s); !reflect.DeepEqual(got, want) {
				t.Errorf("elems = %v, want %v", got, want)
			}
			if s.Len() != len(want) {
				t.Errorf("Len = %d, want %d", s.Len(), len(want))
			}
			for _, x := range want {
				if !s.Has(x) {
					t.Errorf("Has(%d) = false", x)
				}
			}
			for _, x := range []uint32{11, 999, 5000, 1 << 30} {
				in := false
				for _, w := range want {
					in = in || w == x
				}
				if s.Has(x) != in {
					t.Errorf("Has(%d) = %v, want %v", x, s.Has(x), in)
				}
			}
		})
	}
}

func TestNilSetSafe(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.Has(0) || s.Hash() != 0 {
		t.Error("nil set not empty")
	}
	s.ForEach(func(uint32) { t.Error("nil set iterated") })
	if got := s.AppendSyms(nil); got != nil {
		t.Errorf("nil AppendSyms = %v", got)
	}
}

func TestHashConsing(t *testing.T) {
	a := NewArena()
	tb := NewTable()
	s1 := seal(t, a, tb, []uint32{1, 5, 9, 100, 200, 300})
	s2 := seal(t, a, tb, []uint32{300, 200, 100, 9, 5, 1})
	if s1 != s2 {
		t.Error("identical sets not shared")
	}
	s3 := seal(t, a, tb, []uint32{1, 5, 9, 100, 200, 301})
	if s1 == s3 {
		t.Error("distinct sets shared")
	}
	if tb.Hits == 0 || tb.Misses == 0 {
		t.Errorf("hits=%d misses=%d, want both > 0", tb.Hits, tb.Misses)
	}
	if tb.Len() != 2 {
		t.Errorf("table len = %d, want 2", tb.Len())
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Errorf("table len after reset = %d", tb.Len())
	}
}

func TestArenaResetReuse(t *testing.T) {
	a := NewArena()
	tb := NewTable()
	var b Builder
	mk := func(lo, n uint32) *Set {
		b.Reset()
		for i := uint32(0); i < n; i++ {
			b.Add(lo + i*3)
		}
		return b.Seal(a, tb)
	}
	mk(0, 500)
	mk(10000, 2000)
	grown := a.Bytes()
	if grown == 0 {
		t.Fatal("arena did not grow")
	}
	for pass := 0; pass < 10; pass++ {
		a.Reset()
		tb.Reset()
		s1 := mk(0, 500)
		s2 := mk(10000, 2000)
		if s1.Len() != 500 || s2.Len() != 2000 {
			t.Fatalf("pass %d: lens %d/%d", pass, s1.Len(), s2.Len())
		}
		var prev uint32
		first := true
		s2.ForEach(func(x uint32) {
			if !first && x <= prev {
				t.Fatalf("pass %d: not ascending: %d after %d", pass, x, prev)
			}
			prev, first = x, false
		})
	}
	if a.Bytes() > grown {
		t.Errorf("arena grew across equal passes: %d > %d", a.Bytes(), grown)
	}
}

func TestArenaOversize(t *testing.T) {
	a := NewArena()
	big := a.Alloc32(slabWords32 * 3)
	if len(big) != slabWords32*3 {
		t.Fatalf("oversize len = %d", len(big))
	}
	small := a.Alloc32(8)
	small[0] = 42
	big[0] = 7
	if small[0] != 42 || big[0] != 7 {
		t.Error("oversize and slab allocations overlap")
	}
	w := a.Alloc64(slabWords64 * 2)
	for _, x := range w {
		if x != 0 {
			t.Fatal("oversize Alloc64 not zeroed")
		}
	}
	a.Reset()
	w2 := a.Alloc64(16)
	for _, x := range w2 {
		if x != 0 {
			t.Fatal("Alloc64 after Reset not zeroed")
		}
	}
}

func TestBuilderMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	tb := NewTable()
	for trial := 0; trial < 200; trial++ {
		var b Builder
		want := map[uint32]bool{}
		for part := 0; part < 5; part++ {
			var xs []uint32
			for i := 0; i < rng.Intn(40); i++ {
				x := uint32(rng.Intn(3000))
				xs = append(xs, x)
				want[x] = true
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			// Merge alternately as raw u32s, syms, or a sealed set.
			switch part % 3 {
			case 0:
				// Dedup first: MergeU32 requires sorted (dups fine).
				b.MergeU32(xs)
			case 1:
				syms := make([]prim.SymID, len(xs))
				for i, x := range xs {
					syms[i] = prim.SymID(x)
				}
				b.MergeSyms(syms)
			default:
				var b2 Builder
				for _, x := range xs {
					b2.Add(x)
				}
				b.MergeSet(b2.Seal(a, tb))
			}
		}
		s := b.Seal(a, tb)
		got := elems(s)
		var wantS []uint32
		for x := range want {
			wantS = append(wantS, x)
		}
		sort.Slice(wantS, func(i, j int) bool { return wantS[i] < wantS[j] })
		if !reflect.DeepEqual(got, wantS) {
			t.Fatalf("trial %d: merge mismatch: got %v want %v", trial, got, wantS)
		}
		syms := b.Syms()
		if len(syms) != len(wantS) {
			t.Fatalf("trial %d: Syms len %d want %d", trial, len(syms), len(wantS))
		}
	}
}

func TestSparseTiers(t *testing.T) {
	var p Sparse
	// Inline.
	for _, x := range []int32{5, 1, 9} {
		if !p.Add(x) {
			t.Fatalf("Add(%d) = false", x)
		}
	}
	if p.Add(5) {
		t.Error("duplicate Add(5) = true")
	}
	if p.tier != tierInline {
		t.Errorf("tier = %d, want inline", p.tier)
	}
	// Force array: sparse far-apart values.
	for i := int32(0); i < 20; i++ {
		p.Add(1000 + i*10000)
	}
	if p.tier != tierArray {
		t.Errorf("tier = %d, want array", p.tier)
	}
	// Dense cluster promotes to bits.
	var q Sparse
	for i := int32(0); i < 100; i++ {
		q.Add(5000 + i)
	}
	if q.tier != tierBits {
		t.Errorf("tier = %d, want bits", q.tier)
	}
	if !q.Has(5099) || q.Has(5100) {
		t.Error("bits membership wrong")
	}
	// A distant insert breaks density: demotes back to array.
	q.Add(1 << 29)
	if q.tier != tierArray {
		t.Errorf("tier after sparse insert = %d, want array", q.tier)
	}
	if q.Len() != 101 || !q.Has(1<<29) || !q.Has(5000) {
		t.Error("demotion lost elements")
	}
}

func TestSparseVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var p Sparse
		oracle := map[int32]bool{}
		span := int32(1 << uint(4+rng.Intn(16)))
		for op := 0; op < 500; op++ {
			x := rng.Int31n(span)
			if got, want := p.Add(x), !oracle[x]; got != want {
				t.Fatalf("trial %d: Add(%d) = %v, want %v", trial, x, got, want)
			}
			oracle[x] = true
			y := rng.Int31n(span)
			if p.Has(y) != oracle[y] {
				t.Fatalf("trial %d: Has(%d) = %v, want %v", trial, y, p.Has(y), oracle[y])
			}
		}
		if p.Len() != len(oracle) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, p.Len(), len(oracle))
		}
		var got []int32
		p.ForEach(func(x int32) { got = append(got, x) })
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("trial %d: iteration not ascending: %v", trial, got)
		}
		if len(got) != len(oracle) {
			t.Fatalf("trial %d: iterated %d, want %d", trial, len(got), len(oracle))
		}
		if app := p.AppendTo(nil); !reflect.DeepEqual(app, got) {
			t.Fatalf("trial %d: AppendTo disagrees with ForEach", trial)
		}
	}
}

func TestSortDedup(t *testing.T) {
	got := SortDedup([]prim.SymID{5, 3, 5, 1, 3, 3, 9})
	want := []prim.SymID{1, 3, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortDedup = %v, want %v", got, want)
	}
	if out := SortDedup(nil); len(out) != 0 {
		t.Errorf("SortDedup(nil) = %v", out)
	}
}

func TestSealWithoutArena(t *testing.T) {
	var b Builder
	for i := uint32(0); i < 300; i++ {
		b.Add(i * 2)
	}
	s := b.Seal(nil, nil)
	if s.Len() != 300 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := elems(s); got[0] != 0 || got[299] != 598 {
		t.Fatalf("bad elems: %v...%v", got[0], got[299])
	}
}
