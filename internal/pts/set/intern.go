package set

// Table hash-conses sealed sets: structurally identical sets sealed
// through the same table share one *Set per Reset generation (the
// paper's observation that "many lval sets are identical"). Reset
// clears entries but keeps the map's grown buckets — it runs once per
// fixpoint pass on the hot path.
type Table struct {
	m map[uint64][]*Set

	// Hits and Misses count Seal outcomes since construction (not reset
	// by Reset): a hit returned an existing set, a miss stored a new one.
	Hits, Misses int64
}

// NewTable returns an empty interning table.
func NewTable() *Table { return &Table{m: map[uint64][]*Set{}} }

// lookup returns the stored set equal to the sorted elements xs, if any.
func (t *Table) lookup(h uint64, xs []uint32) *Set {
	for _, cand := range t.m[h] {
		if cand.equalElems(xs) {
			t.Hits++
			return cand
		}
	}
	return nil
}

// insert stores a freshly sealed set.
func (t *Table) insert(s *Set) {
	t.Misses++
	t.m[s.hash] = append(t.m[s.hash], s)
}

// Len returns the number of distinct sets currently stored.
func (t *Table) Len() int {
	n := 0
	for _, c := range t.m {
		n += len(c)
	}
	return n
}

// Reset drops all entries, keeping bucket capacity. Stored sets become
// unreachable from the table; arena-backed sets are typically
// invalidated by the accompanying Arena.Reset.
func (t *Table) Reset() {
	if t.m == nil {
		t.m = map[uint64][]*Set{}
		return
	}
	clear(t.m)
}
