package set

import (
	"sort"
	"testing"
)

// FuzzSetOps differentially tests the adaptive set machinery against a
// map oracle. The fuzz input is a little op program: each byte pair is
// one operation (insert into the builder, insert into a Sparse, merge a
// sealed snapshot back in, seal+verify), with values chosen so the
// corpus crosses every tier boundary (inline→array→bits) and the
// Sparse grow/demote paths.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5}) // walk past InlineCap
	// Dense run that promotes to bits, then a far value.
	dense := []byte{}
	for i := 0; i < 40; i++ {
		dense = append(dense, 1, byte(i))
	}
	dense = append(dense, 2, 255, 3, 0)
	f.Add(dense)

	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewArena()
		tb := NewTable()
		var b Builder
		var sp Sparse
		bOracle := map[uint32]bool{}
		spOracle := map[int32]bool{}
		var sealed *Set
		var sealedOracle []uint32

		checkSet := func(s *Set, want map[uint32]bool) {
			if s.Len() != len(want) {
				t.Fatalf("Set.Len = %d, oracle %d", s.Len(), len(want))
			}
			var got []uint32
			s.ForEach(func(x uint32) { got = append(got, x) })
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("iteration not ascending: %v", got)
			}
			for _, x := range got {
				if !want[x] {
					t.Fatalf("set has %d, oracle does not", x)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("iterated %d elements, oracle %d", len(got), len(want))
			}
			for x := range want {
				if !s.Has(x) {
					t.Fatalf("Has(%d) = false, oracle true", x)
				}
			}
		}

		for len(data) >= 2 {
			op, v := data[0], data[1]
			data = data[2:]
			switch op % 6 {
			case 0: // builder insert, small values (inline boundary)
				x := uint32(v % 12)
				b.Add(x)
				bOracle[x] = true
			case 1: // builder insert, dense window (bits tier)
				x := uint32(v)
				b.Add(x)
				bOracle[x] = true
			case 2: // builder insert, scattered (array tier / bits demotion)
				x := uint32(v) * 977
				b.Add(x)
				bOracle[x] = true
			case 3: // seal + verify + remember snapshot
				s := b.Seal(a, tb)
				checkSet(s, bOracle)
				sealed = s
				sealedOracle = sealedOracle[:0]
				for x := range bOracle {
					sealedOracle = append(sealedOracle, x)
				}
				if v%4 == 0 { // occasionally start a fresh accumulation
					b.Reset()
					clear(bOracle)
				}
			case 4: // merge the sealed snapshot back into the builder
				b.MergeSet(sealed)
				for _, x := range sealedOracle {
					bOracle[x] = true
				}
			case 5: // Sparse insert across the promote/demote boundary
				x := int32(v) * int32(1+v%3)
				added := sp.Add(x)
				if added == spOracle[x] {
					t.Fatalf("Sparse.Add(%d) = %v, oracle had=%v", x, added, spOracle[x])
				}
				spOracle[x] = true
				if sp.Len() != len(spOracle) {
					t.Fatalf("Sparse.Len = %d, oracle %d", sp.Len(), len(spOracle))
				}
			}
		}

		// Final verification of both structures.
		s := b.Seal(a, tb)
		checkSet(s, bOracle)
		var got []int32
		sp.ForEach(func(x int32) { got = append(got, x) })
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("sparse iteration not ascending: %v", got)
		}
		if len(got) != len(spOracle) {
			t.Fatalf("sparse iterated %d, oracle %d", len(got), len(spOracle))
		}
		for _, x := range got {
			if !spOracle[x] {
				t.Fatalf("sparse has %d, oracle does not", x)
			}
			if !sp.Has(x) {
				t.Fatalf("sparse Has(%d) = false after iteration said yes", x)
			}
		}
	})
}
