// Package set provides the shared points-to/lval set machinery used by
// every solver: immutable hash-consed sets with three adaptive storage
// tiers (inline, sorted array, sparse bitset), a merge Builder that
// reuses its scratch across unions, a slab Arena whose per-pass Reset
// makes set storage O(high-water) instead of O(total-churn), and a
// mutable Sparse set that replaces map[int32]struct{} successor sets.
//
// The paper's "million lines in a second" budget is as much about set
// representation as about the pre-transitive algorithm: most lval sets
// are tiny (inline tier), many are identical (hash-consing), and the
// few large ones are dense enough for bitsets. The tier of a sealed Set
// is a pure function of its contents, so solvers produce identical
// representations at any worker count.
package set

import (
	"math/bits"
	"sort"
	"unsafe"

	"cla/internal/prim"
)

// InlineCap is the maximum element count of the inline tier: elements
// live in the Set header itself, with no pointer to chase.
const InlineCap = 4

const (
	tierInline uint8 = iota
	tierArray
	tierBits
)

// Set is an immutable sorted set of uint32 element ids (SymIDs are
// non-negative, so the cast is lossless). A nil *Set is the empty set
// and every method is nil-safe. Sets are sealed by a Builder and, when
// arena-backed, are valid only until the arena's next Reset.
type Set struct {
	hash uint64
	n    int32
	tier uint8
	base uint32 // bits tier: word index of words[0] (element >> 6)

	inl   [InlineCap]uint32 // inline tier
	arr   []uint32          // array tier: sorted elements
	words []uint64          // bits tier
}

var setHdrBytes = int(unsafe.Sizeof(Set{}))

// Len returns the element count.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return int(s.n)
}

// Hash returns the FNV-1a hash of the elements (0 for the empty set).
func (s *Set) Hash() uint64 {
	if s == nil {
		return 0
	}
	return s.hash
}

// Has reports membership.
func (s *Set) Has(x uint32) bool {
	if s == nil {
		return false
	}
	switch s.tier {
	case tierInline:
		for i := int32(0); i < s.n; i++ {
			if s.inl[i] == x {
				return true
			}
		}
		return false
	case tierArray:
		i := sort.Search(len(s.arr), func(i int) bool { return s.arr[i] >= x })
		return i < len(s.arr) && s.arr[i] == x
	default:
		w := int(x>>6) - int(s.base)
		return w >= 0 && w < len(s.words) && s.words[w]&(1<<(x&63)) != 0
	}
}

// ForEach calls f for every element in ascending order.
func (s *Set) ForEach(f func(uint32)) {
	if s == nil {
		return
	}
	switch s.tier {
	case tierInline:
		for i := int32(0); i < s.n; i++ {
			f(s.inl[i])
		}
	case tierArray:
		for _, x := range s.arr {
			f(x)
		}
	default:
		for wi, w := range s.words {
			off := (s.base + uint32(wi)) << 6
			for w != 0 {
				f(off + uint32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
}

// AppendSyms appends the elements, ascending, as SymIDs.
func (s *Set) AppendSyms(dst []prim.SymID) []prim.SymID {
	if s == nil {
		return dst
	}
	switch s.tier {
	case tierInline:
		for i := int32(0); i < s.n; i++ {
			dst = append(dst, prim.SymID(s.inl[i]))
		}
	case tierArray:
		for _, x := range s.arr {
			dst = append(dst, prim.SymID(x))
		}
	default:
		for wi, w := range s.words {
			off := (s.base + uint32(wi)) << 6
			for w != 0 {
				dst = append(dst, prim.SymID(off+uint32(bits.TrailingZeros64(w))))
				w &= w - 1
			}
		}
	}
	return dst
}

// AppendU32 appends the elements, ascending, as uint32s — the stable
// external encoding of a sealed set. Serializers (the solved-snapshot
// format) store exactly this sequence regardless of the set's storage
// tier, so files are byte-identical whether a set was sealed inline, as
// an array or as a bitset.
func (s *Set) AppendU32(dst []uint32) []uint32 { return s.appendU32(dst) }

// appendU32 appends the elements, ascending, as uint32s.
func (s *Set) appendU32(dst []uint32) []uint32 {
	if s == nil {
		return dst
	}
	switch s.tier {
	case tierInline:
		return append(dst, s.inl[:s.n]...)
	case tierArray:
		return append(dst, s.arr...)
	default:
		for wi, w := range s.words {
			off := (s.base + uint32(wi)) << 6
			for w != 0 {
				dst = append(dst, off+uint32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return dst
	}
}

// equalElems reports whether s holds exactly the sorted elements in xs.
func (s *Set) equalElems(xs []uint32) bool {
	if s.Len() != len(xs) {
		return false
	}
	switch s.tier {
	case tierInline:
		for i, x := range xs {
			if s.inl[i] != x {
				return false
			}
		}
	case tierArray:
		for i, x := range xs {
			if s.arr[i] != x {
				return false
			}
		}
	default:
		for _, x := range xs {
			if s.words[(x>>6)-s.base]&(1<<(x&63)) == 0 {
				return false
			}
		}
	}
	return true
}

// hashU32 is FNV-1a over the elements — the same function the solvers
// used for per-pass interning before the shared layer existed, so
// digests stay comparable across revisions.
func hashU32(xs []uint32) uint64 {
	key := uint64(1469598103934665603)
	for _, x := range xs {
		key = (key ^ uint64(x)) * 1099511628211
	}
	return key
}

// spanWords returns the number of 64-bit words covering [lo, hi].
func spanWords(lo, hi uint32) int {
	return int(hi>>6) - int(lo>>6) + 1
}

// bitsBeatsArray decides the bits-vs-array tier for n sorted elements
// spanning sw words: the bitset wins when its storage (8 bytes/word) is
// no larger than the array's (4 bytes/element). Pure function of
// content, so representation is deterministic.
func bitsBeatsArray(n, sw int) bool { return 2*sw <= n }

// SortDedup sorts ids in place and removes duplicates, returning the
// shortened slice — the finalize step steens/onelevel previously each
// hand-rolled.
func SortDedup(ids []prim.SymID) []prim.SymID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 0
	for i, v := range ids {
		if i == 0 || v != ids[w-1] {
			ids[w] = v
			w++
		}
	}
	return ids[:w]
}
