package set

import (
	"testing"

	"cla/internal/prim"
)

// Benchmarks for the hot paths the solvers lean on. Run via
// `make bench-smoke` (one iteration) in CI to keep them compiling and
// non-panicking; locally `go test -bench=. -benchmem ./internal/pts/set`
// gives the real numbers.

func benchSets(b *testing.B) (*Arena, *Table, []*Set) {
	a := NewArena()
	tb := NewTable()
	var bld Builder
	var sets []*Set
	for k := 0; k < 64; k++ {
		bld.Reset()
		n := 1 << uint(k%9) // 1..256 elements
		for i := 0; i < n; i++ {
			bld.Add(uint32(k*37 + i*(1+k%5)))
		}
		sets = append(sets, bld.Seal(a, tb))
	}
	return a, tb, sets
}

func BenchmarkSealInterned(b *testing.B) {
	a, tb, _ := benchSets(b)
	var bld Builder
	for i := 0; i < 100; i++ {
		bld.Add(uint32(i * 3))
	}
	bld.Seal(a, tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Seal(a, tb)
	}
}

func BenchmarkBuilderUnion(b *testing.B) {
	a, tb, sets := benchSets(b)
	_ = a
	_ = tb
	var bld Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Reset()
		for _, s := range sets {
			bld.MergeSet(s)
		}
	}
}

func BenchmarkSetIterate(b *testing.B) {
	_, _, sets := benchSets(b)
	buf := make([]prim.SymID, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sets {
			buf = s.AppendSyms(buf[:0])
		}
	}
}

func BenchmarkSparseAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sp Sparse
		for j := int32(0); j < 256; j++ {
			sp.Add(j * 7 % 509)
		}
	}
}

func BenchmarkSparseAddMap(b *testing.B) {
	// The representation Sparse replaced, for comparison.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := make(map[int32]struct{})
		for j := int32(0); j < 256; j++ {
			m[j*7%509] = struct{}{}
		}
	}
}
