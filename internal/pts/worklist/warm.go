package worklist

import (
	"context"

	"cla/internal/pts"
)

// SolveWarmJobsCtx is the worklist solver's warm-start entry point: when
// warm carries a fixpoint solved from the same constraint digest (see
// pts.Warm), it is returned unchanged with reused=true; otherwise the
// solve runs from scratch at the given jobs setting. The reuse is
// byte-exact because the solver is deterministic at every -j.
func SolveWarmJobsCtx(ctx context.Context, src pts.Source, jobs int,
	digest uint64, warm *pts.Warm) (res pts.Result, reused bool, err error) {
	if warm.Match(digest) {
		return warm.Result, true, nil
	}
	r, err := SolveJobsCtx(ctx, src, jobs)
	if err != nil {
		return nil, false, err
	}
	return r, false, nil
}
