// Package worklist implements the classic transitively-closed worklist
// algorithm for Andersen's points-to analysis, the baseline the paper's
// pre-transitive algorithm is compared against (the style of Fähndrich et
// al.'s base algorithm): points-to sets are propagated along inclusion
// edges until fixpoint, with complex assignments adding edges as sets
// grow.
//
// Propagation is differential: each node carries, besides its full
// points-to set, the delta accumulated since it was last popped off the
// worklist. Complex rules, function-pointer linking and edge propagation
// fire on the delta only — the elements every existing successor has
// already seen are never re-walked. A freshly inserted edge catches its
// target up with the source's full set at insertion time, which is what
// makes delta-only firing sound. Successor sets are adaptive sparse sets
// (inline → sorted array → windowed bitset) iterated in ascending order,
// so the worklist dynamics are deterministic rather than map-ordered.
package worklist

import (
	"context"
	"sort"

	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
)

// ctxCheckApps is how many complex-rule applications may run between
// cancellation checks, in both the sequential loop and each wave worker.
// The old every-4096-pops check let a single pop with a huge delta starve
// cancellation; counting rule applications bounds the latency by work
// done, not by pops.
const ctxCheckApps = 256

// Solve runs the baseline Andersen analysis over the full database (the
// algorithm is whole-program; demand loading does not apply).
type solver struct {
	src pts.Source
	n   int

	// pt[v] is the points-to set of node v, as a sorted slice.
	pt [][]prim.SymID
	// delta[v] are the elements added to pt[v] since v was last popped;
	// always a sorted subset of pt[v].
	delta [][]prim.SymID
	// succ[v] are inclusion edges v ⊆ w (flow from v to w).
	succ []set.Sparse
	// loadsOf[p]: complex x = *p (x receives).
	loadsOf map[int32][]int32
	// storesOf[p]: complex *p = y (y flows to pointees of p).
	storesOf map[int32][]int32

	recOfFunc map[int32]*prim.FuncRecord
	ptrRecs   []*prim.FuncRecord

	work []int32
	inWk []bool

	succBuf  []int32      // scratch for iterating succ[v] while mutating
	freshBuf []prim.SymID // scratch for unionDiff's new-element pass

	m pts.Metrics
}

// Result holds the solved relation.
type Result struct {
	pt [][]prim.SymID
	m  pts.Metrics
}

// PointsTo implements pts.Result.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	if int(sym) < 0 || int(sym) >= len(r.pt) {
		return nil
	}
	return r.pt[sym]
}

// Metrics implements pts.Result.
func (r *Result) Metrics() pts.Metrics { return r.m }

// Solve computes Andersen's analysis with explicit transitive propagation.
func Solve(src pts.Source) (*Result, error) {
	return SolveCtx(context.Background(), src)
}

// SolveCtx is Solve under a context: the solve loop checks for
// cancellation frequently (per pop batch and per few hundred complex-rule
// applications), so a long solve aborts promptly with ctx.Err().
func SolveCtx(ctx context.Context, src pts.Source) (*Result, error) {
	return SolveJobsCtx(ctx, src, 1)
}

// SolveJobs is SolveJobsCtx without a context.
func SolveJobs(src pts.Source, jobs int) (*Result, error) {
	return SolveJobsCtx(context.Background(), src, jobs)
}

// SolveJobsCtx solves with an explicit worker budget. jobs <= 1 runs the
// sequential reference worklist; jobs >= 2 runs the phase-parallel wave
// solver (see wave.go), which SCC-condenses the constraint graph, levels
// the condensation topologically and processes independent nodes of a
// level concurrently with deterministic wave-boundary merges. Both paths
// compute the same unique least fixpoint, so the Result is byte-identical
// at any jobs value.
func SolveJobsCtx(ctx context.Context, src pts.Source, jobs int) (*Result, error) {
	s, err := newSolver(src)
	if err != nil {
		return nil, err
	}
	if jobs >= 2 {
		return s.solveWave(ctx, jobs)
	}
	if err := s.runSeq(ctx); err != nil {
		return nil, err
	}
	res := &Result{pt: s.pt[:s.n], m: s.m}
	pts.FinalizeMetrics(src, res, &res.m)
	return res, nil
}

// newSolver builds the constraint system: every block is loaded and
// converted to edges, complex-rule registrations and initial points-to
// deltas. The node universe is fixed once this returns (virtual temps
// for *x = *y are allocated here), which is what lets the wave solver
// treat node ids as a stable schedule domain.
func newSolver(src pts.Source) (*solver, error) {
	s := &solver{
		src:       src,
		n:         src.NumSyms(),
		loadsOf:   map[int32][]int32{},
		storesOf:  map[int32][]int32{},
		recOfFunc: map[int32]*prim.FuncRecord{},
	}
	s.pt = make([][]prim.SymID, s.n)
	s.delta = make([][]prim.SymID, s.n)
	s.succ = make([]set.Sparse, s.n)
	s.inWk = make([]bool, s.n)

	funcs := src.Funcs()
	for i := range funcs {
		f := &funcs[i]
		sym := src.Sym(f.Func)
		if sym.Kind == prim.SymFunc {
			s.recOfFunc[int32(f.Func)] = f
		}
		if sym.FuncPtr {
			s.ptrRecs = append(s.ptrRecs, f)
		}
	}

	statics, err := src.Statics()
	if err != nil {
		return nil, err
	}
	s.m.Loaded += len(statics)
	for _, a := range statics {
		s.addPt(int32(a.Dst), a.Src)
	}
	// Whole-program: load every block. All loadsOf/storesOf registrations
	// happen here, before the fixpoint — a precondition for firing the
	// complex rules on deltas only.
	for i := 0; i < s.n; i++ {
		block, err := src.Block(prim.SymID(i))
		if err != nil {
			return nil, err
		}
		s.m.Loaded += len(block)
		for _, a := range block {
			d, y := int32(a.Dst), int32(a.Src)
			switch a.Kind {
			case prim.Simple: // d = y: y flows to d
				s.addEdge(y, d)
			case prim.LoadInd: // d = *y
				s.loadsOf[y] = append(s.loadsOf[y], d)
				s.m.InCore++
			case prim.StoreInd: // *d = y
				s.storesOf[d] = append(s.storesOf[d], y)
				s.m.InCore++
			case prim.CopyInd: // *d = *y: via virtual temp
				t := s.extend()
				s.loadsOf[y] = append(s.loadsOf[y], t)
				s.storesOf[d] = append(s.storesOf[d], t)
				s.m.InCore += 2
			case prim.Base:
				s.addPt(d, a.Src)
			}
		}
	}
	return s, nil
}

// runSeq is the sequential reference loop. Cancellation is checked per
// pop batch and additionally every few hundred complex-rule
// applications, so a pop with a huge delta cannot starve the check.
func (s *solver) runSeq(ctx context.Context) error {
	pops, apps := 0, 0
	for len(s.work) > 0 {
		pops++
		if pops&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.inWk[v] = false
		s.m.Passes++

		// Take the delta; additions made while processing v (a rule can
		// route flow back into v) accumulate for the next pop.
		dv := s.delta[v]
		s.delta[v] = nil
		// Complex rules fire on the delta only: elements that were in
		// pt[v] at the previous pop have already been through them.
		for _, x := range s.loadsOf[v] { // x = *v
			for _, z := range dv {
				s.addEdge(int32(z), x)
			}
			if apps += len(dv); apps >= ctxCheckApps {
				apps = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		for _, y := range s.storesOf[v] { // *v = y
			for _, z := range dv {
				s.addEdge(y, int32(z))
			}
			if apps += len(dv); apps >= ctxCheckApps {
				apps = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
		// Function-pointer linking: idempotent edge adds, so new
		// functions in the delta are linked exactly once.
		if int(v) < s.n && s.src.Sym(prim.SymID(v)).FuncPtr {
			for _, r := range s.ptrRecs {
				if int32(r.Func) != v {
					continue
				}
				for _, z := range dv {
					g, ok := s.recOfFunc[int32(z)]
					if !ok {
						continue
					}
					np := len(r.Params)
					if len(g.Params) < np {
						np = len(g.Params)
					}
					for i := 0; i < np; i++ {
						s.addEdge(int32(r.Params[i]), int32(g.Params[i]))
					}
					if r.Ret != prim.NoSym && g.Ret != prim.NoSym {
						s.addEdge(int32(g.Ret), int32(r.Ret))
					}
				}
				if apps += len(dv); apps >= ctxCheckApps {
					apps = 0
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
		}
		// Propagate the delta along inclusion edges: every existing
		// successor already holds pt[v] \ dv (edges inserted later are
		// caught up by addEdge itself).
		s.succBuf = s.succ[v].AppendTo(s.succBuf[:0])
		for _, w := range s.succBuf {
			if s.unionDiff(w, dv) {
				s.enqueue(w)
			}
		}
	}
	return nil
}

// extend allocates a virtual node (for *x = *y splitting).
func (s *solver) extend() int32 {
	id := int32(len(s.pt))
	s.pt = append(s.pt, nil)
	s.delta = append(s.delta, nil)
	s.succ = append(s.succ, set.Sparse{})
	s.inWk = append(s.inWk, false)
	return id
}

func (s *solver) enqueue(v int32) {
	if !s.inWk[v] {
		s.inWk[v] = true
		s.work = append(s.work, v)
	}
}

// addPt inserts one lval, recording it in the delta and enqueueing on
// growth.
func (s *solver) addPt(v int32, lval prim.SymID) {
	pt := s.pt[v]
	i := sort.Search(len(pt), func(i int) bool { return pt[i] >= lval })
	if i < len(pt) && pt[i] == lval {
		return
	}
	pt = append(pt, 0)
	copy(pt[i+1:], pt[i:])
	pt[i] = lval
	s.pt[v] = pt

	d := s.delta[v]
	j := sort.Search(len(d), func(i int) bool { return d[i] >= lval })
	d = append(d, 0)
	copy(d[j+1:], d[j:])
	d[j] = lval
	s.delta[v] = d
	s.enqueue(v)
}

// unionDiff merges add into v's set, accumulating the genuinely new
// elements into v's delta; reports growth.
func (s *solver) unionDiff(v int32, add []prim.SymID) bool {
	if len(add) == 0 {
		return false
	}
	pt := s.pt[v]
	fresh := s.freshBuf[:0]
	i, j := 0, 0
	for i < len(pt) && j < len(add) {
		switch {
		case pt[i] < add[j]:
			i++
		case pt[i] > add[j]:
			fresh = append(fresh, add[j])
			j++
		default:
			i++
			j++
		}
	}
	fresh = append(fresh, add[j:]...)
	s.freshBuf = fresh
	if len(fresh) == 0 {
		return false
	}
	// mergeSorted copies out of fresh, so the scratch can be reused.
	s.pt[v] = mergeSorted(pt, fresh)
	s.delta[v] = mergeSorted(s.delta[v], fresh)
	return true
}

// addEdge inserts inclusion edge a → b (pt(a) ⊆ pt(b)) and catches b up
// with a's full current set — after which b only ever needs a's deltas.
func (s *solver) addEdge(a, b int32) {
	if a == b {
		return
	}
	if !s.succ[a].Add(b) {
		return
	}
	s.m.EdgesAdded++
	if s.unionDiff(b, s.pt[a]) {
		s.enqueue(b)
	}
}

// mergeSorted unions two sorted slices.
func mergeSorted(a, b []prim.SymID) []prim.SymID {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]prim.SymID(nil), b...)
	}
	out := make([]prim.SymID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
