package worklist

import (
	"testing"

	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

func solve(t *testing.T, src string) (*prim.Program, *Result) {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(pts.NewMemSource(p))
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

func ptsNames(p *prim.Program, r *Result, name string) []string {
	var out []string
	for _, z := range r.PointsTo(p.SymIDByName(name)) {
		out = append(out, p.Sym(z).Name)
	}
	return out
}

func TestBasic(t *testing.T) {
	p, r := solve(t, "int a, b, *x, *y; void m(void) { x = &a; y = x; x = &b; }")
	got := ptsNames(p, r, "y")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("pts(y) = %v", got)
	}
}

func TestStoreLoad(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **pp;
void m(void) { pp = &a; *pp = &v; b = *pp; }`)
	if got := ptsNames(p, r, "b"); len(got) != 1 || got[0] != "v" {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestCopyInd(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, **p, **q;
void m(void) { p = &a; q = &b; a = &v; *q = *p; }`)
	if got := ptsNames(p, r, "b"); len(got) != 1 || got[0] != "v" {
		t.Errorf("pts(b) = %v", got)
	}
}

func TestIndirectCalls(t *testing.T) {
	p, r := solve(t, `int obj;
int *id(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = id; res = fp(&obj); }`)
	if got := ptsNames(p, r, "res"); len(got) != 1 || got[0] != "obj" {
		t.Errorf("pts(res) = %v", got)
	}
	if got := ptsNames(p, r, "a"); len(got) != 1 || got[0] != "obj" {
		t.Errorf("pts(a) = %v", got)
	}
}

func TestCycleConverges(t *testing.T) {
	p, r := solve(t, `int v, *a, *b, *c;
void m(void) { a = b; b = c; c = a; b = &v; }`)
	for _, n := range []string{"a", "b", "c"} {
		if got := ptsNames(p, r, n); len(got) != 1 || got[0] != "v" {
			t.Errorf("pts(%s) = %v", n, got)
		}
	}
}

func TestMetrics(t *testing.T) {
	_, r := solve(t, "int v, *p, **q; void m(void) { p = &v; q = &p; *q = p; }")
	m := r.Metrics()
	if m.PointerVars == 0 || m.Relations == 0 || m.InFile == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestOutOfRangePointsTo(t *testing.T) {
	_, r := solve(t, "int x;")
	if got := r.PointsTo(12345); got != nil {
		t.Errorf("PointsTo = %v", got)
	}
	if got := r.PointsTo(prim.NoSym); got != nil {
		t.Errorf("PointsTo(NoSym) = %v", got)
	}
}
