package worklist

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"cla/internal/claerr"
	"cla/internal/frontend"
	"cla/internal/gen"
	"cla/internal/linker"
	"cla/internal/prim"
	"cla/internal/pts"
)

// waveSnippets are small programs covering every rule the wave scheduler
// defers: simple edges, loads, stores, copy-indirection temps, cycles
// and function-pointer linking.
var waveSnippets = []string{
	"int a, b, *x, *y; void m(void) { x = &a; y = x; x = &b; }",
	"int v, *a, *b, **pp;\nvoid m(void) { pp = &a; *pp = &v; b = *pp; }",
	"int v, *a, *b, **p, **q;\nvoid m(void) { p = &a; q = &b; a = &v; *q = *p; }",
	`int obj;
int *id(int *a) { return a; }
int *(*fp)(int *);
int *res;
void m(void) { fp = id; res = fp(&obj); }`,
	`int v, *a, *b, *c;
void m(void) { a = b; b = c; c = a; b = &v; }`,
	`int o1, o2, *x, *y, **p, **q, **r;
void m(void) { p = &x; q = &y; r = p; r = q; *r = &o1; x = &o2; y = *p; }`,
}

// buildGenProgram compiles and links a scaled Table 2 workload without
// going through the driver (which would import this package back).
func buildGenProgram(t *testing.T, name string, scale float64) *prim.Program {
	t.Helper()
	p, ok := gen.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	code := gen.Generate(p.Scale(scale), 1)
	loader := code.Loader()
	var units []*prim.Program
	for _, u := range code.Units() {
		prog, err := frontend.CompileFile(u, loader, frontend.Options{})
		if err != nil {
			t.Fatalf("compile %s: %v", u, err)
		}
		units = append(units, prog)
	}
	prog, err := linker.Link(units)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// comparePts asserts byte-identical points-to sets for every symbol.
func comparePts(t *testing.T, prog *prim.Program, want, got *Result, label string) {
	t.Helper()
	bad := 0
	for i := range prog.Syms {
		id := prim.SymID(i)
		w, g := want.PointsTo(id), got.PointsTo(id)
		if len(w) != len(g) {
			t.Errorf("%s: pts(%s): len %d != %d", label, prog.Syms[i].Name, len(g), len(w))
			if bad++; bad > 5 {
				t.FailNow()
			}
			continue
		}
		for k := range w {
			if w[k] != g[k] {
				t.Errorf("%s: pts(%s)[%d] = %v, want %v", label, prog.Syms[i].Name, k, g[k], w[k])
				if bad++; bad > 5 {
					t.FailNow()
				}
				break
			}
		}
	}
}

func TestWaveMatchesSequentialSnippets(t *testing.T) {
	for si, src := range waveSnippets {
		prog, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Solve(pts.NewMemSource(prog))
		if err != nil {
			t.Fatal(err)
		}
		for _, jobs := range []int{2, 3, 8} {
			wave, err := SolveJobs(pts.NewMemSource(prog), jobs)
			if err != nil {
				t.Fatal(err)
			}
			comparePts(t, prog, seq, wave, fmt.Sprintf("snippet %d -j %d", si, jobs))
		}
	}
}

func TestWaveMatchesSequentialGenerated(t *testing.T) {
	prog := buildGenProgram(t, "povray", 0.05)
	src := pts.NewMemSource(prog)
	seq, err := Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8} {
		wave, err := SolveJobs(pts.NewMemSource(prog), jobs)
		if err != nil {
			t.Fatal(err)
		}
		comparePts(t, prog, seq, wave, fmt.Sprintf("povray -j %d", jobs))
		wm := wave.Metrics()
		if wm.Waves == 0 || wm.SCCRounds == 0 || wm.WaveWidth == 0 {
			t.Errorf("-j %d wave metrics not populated: %+v", jobs, wm)
		}
		sm := seq.Metrics()
		if wm.PointerVars != sm.PointerVars || wm.Relations != sm.Relations {
			t.Errorf("-j %d relations %d/%d, want %d/%d",
				jobs, wm.PointerVars, wm.Relations, sm.PointerVars, sm.Relations)
		}
	}
}

// TestWaveDeterministicMetrics pins the schedule itself: the wave
// counters (waves, SCC rounds, width, merge bytes, edges) must not
// depend on the worker count, only the worker count 1 vs >= 2 path
// selection matters.
func TestWaveDeterministicMetrics(t *testing.T) {
	prog := buildGenProgram(t, "burlap", 0.1)
	var base pts.Metrics
	for i, jobs := range []int{2, 4, 8} {
		r, err := SolveJobs(pts.NewMemSource(prog), jobs)
		if err != nil {
			t.Fatal(err)
		}
		m := r.Metrics()
		if i == 0 {
			base = m
			continue
		}
		if m != base {
			t.Errorf("-j %d metrics differ from -j 2:\n%+v\n%+v", jobs, m, base)
		}
	}
}

// TestWaveRace exercises the parallel path under the race detector (the
// Makefile runs this package with -race as a tier-1 extra).
func TestWaveRace(t *testing.T) {
	prog := buildGenProgram(t, "vortex", 0.05)
	if _, err := SolveJobs(pts.NewMemSource(prog), 8); err != nil {
		t.Fatal(err)
	}
}

// countdownCtx reports cancellation after a fixed number of Err checks,
// making mid-wave cancellation deterministic.
type countdownCtx struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *countdownCtx) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestWaveMidSolveCancellation(t *testing.T) {
	prog := buildGenProgram(t, "burlap", 0.1)
	// Let the solve get past setup, then cancel mid-wave. The solver
	// checks per wave and per few hundred rule applications, so the
	// cancellation must surface within a bounded number of checks.
	ctx := &countdownCtx{Context: context.Background(), after: 20}
	_, err := SolveJobsCtx(ctx, pts.NewMemSource(prog), 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checked := ctx.checks.Load()
	if checked > 20+256 {
		t.Errorf("cancellation surfaced after %d further checks", checked-20)
	}
	if got := claerr.HTTPStatus(claerr.New(claerr.PhaseAnalyze, err)); got != 499 {
		t.Errorf("HTTPStatus = %d, want 499", got)
	}
}

// TestWaveCancelDuringSequentialRules covers the tightened sequential
// path too: a huge delta must not starve the per-application check.
func TestWaveCancelDuringSequentialRules(t *testing.T) {
	prog := buildGenProgram(t, "burlap", 0.1)
	ctx := &countdownCtx{Context: context.Background(), after: 3}
	_, err := SolveCtx(ctx, pts.NewMemSource(prog))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
