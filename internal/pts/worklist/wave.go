// Phase-parallel wave solver for the worklist algorithm. The constraint
// graph is periodically SCC-condensed (cycles unified, so every schedule
// unit is a single live node) and topologically leveled; a wave then
// walks the levels from sources to sinks, processing the dirty nodes of
// each level concurrently. Workers never touch shared mutable state:
// each accumulates private delta merges and deferred edge insertions
// (complex-rule and funcptr pairs) into per-worker buffers, which the
// level barrier and the wave end merge sequentially in a deterministic
// order — by level, then worker slot (shards are contiguous, so that is
// ascending node order), then emission order. Andersen's analysis has a
// unique least fixpoint, so any sound and complete schedule — including
// this one, at any worker count — produces byte-identical points-to
// sets; the sequential loop in worklist.go remains the -j 1 reference.
package worklist

import (
	"context"

	"cla/internal/parallel"
	"cla/internal/prim"
	"cla/internal/pts"
	"cla/internal/pts/set"
	"cla/internal/scc"
)

// packPair packs a deferred inclusion edge a → b into one int64 so
// per-worker buffers stay flat.
func packPair(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }

func unpackPair(p int64) (a, b int32) { return int32(p >> 32), int32(uint32(p)) }

// waveWorker is one worker's private scratch. Nothing in it is read by
// another goroutine until the level barrier, after which the scheduler
// drains it sequentially.
type waveWorker struct {
	freshBuf []prim.SymID
	pairs    []int64
	pubbed   []int32
	merged   int64 // bytes of delta elements merged by pulls
	apps     int   // rule applications since the last ctx check
}

// waveSolver drives waves over a solver whose load phase has completed.
type waveSolver struct {
	s    *solver
	jobs int

	// parent is the unification union-find; rep is its flattened form,
	// rebuilt after every condensation round so workers can resolve
	// representatives without mutating shared state (find path-compresses
	// and is therefore worker-unsafe).
	parent []int32
	rep    []int32

	comp   []int32   // live node → component id (scc.Condense numbering)
	height []int32   // component → DAG height
	levels [][]int32 // wave order: levels[l] lists live nodes, height descending
	levelH []int32   // levels[l]'s height

	// pub[v] is the delta node v published this wave (consumed by
	// lower-level pulls and wave-end carries); contrib[v] lists the
	// already-processed nodes whose publications v must pull; dirty marks
	// nodes holding unprocessed deltas. Pending deltas themselves live in
	// solver.delta, shared with the sequential path's helpers.
	pub     [][]prim.SymID
	contrib [][]int32
	dirty   []bool

	// fpOf indexes ptrRecs by function-pointer node, replacing the
	// sequential loop's linear scan.
	fpOf map[int32][]*prim.FuncRecord

	units  []int32    // dirty nodes of the level being processed
	carry  [][2]int32 // publications crossing stale (post-condensation) edges
	pairs  []int64    // wave-global deferred edges, deterministic order
	pubbed []int32    // all nodes that published this wave

	adjBuf []int32
	seen   []int32
	epoch  int32

	edgesSinceCond int
	wavesSinceCond int

	ws []waveWorker
}

// solveWave runs the phase-parallel fixpoint. The solver's load phase
// has already produced the full constraint system and the initial deltas
// (solver.delta); node ids are stable from here on.
func (s *solver) solveWave(ctx context.Context, jobs int) (*Result, error) {
	n := len(s.pt)
	w := &waveSolver{s: s, jobs: jobs}
	w.parent = make([]int32, n)
	w.rep = make([]int32, n)
	for i := range w.parent {
		w.parent[i] = int32(i)
	}
	w.pub = make([][]prim.SymID, n)
	w.contrib = make([][]int32, n)
	w.dirty = make([]bool, n)
	for i := range s.delta {
		if len(s.delta[i]) > 0 {
			w.dirty[i] = true
		}
	}
	w.seen = make([]int32, n)
	w.fpOf = map[int32][]*prim.FuncRecord{}
	for _, r := range s.ptrRecs {
		w.fpOf[int32(r.Func)] = append(w.fpOf[int32(r.Func)], r)
	}
	w.ws = make([]waveWorker, parallel.Workers(jobs))

	w.condense()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !w.anyDirty() {
			break
		}
		if err := w.runWave(ctx); err != nil {
			return nil, err
		}
		// Edges inserted since the last condensation are serviced by the
		// carry path, which costs one wave per stale hop; once a couple
		// of waves have accumulated new structure, rebuild the schedule.
		// The policy depends only on solve state, never on worker count.
		if w.edgesSinceCond > 0 && w.wavesSinceCond >= 2 {
			w.condense()
		}
	}

	out := make([][]prim.SymID, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.pt[w.rep[i]]
	}
	res := &Result{pt: out, m: s.m}
	pts.FinalizeMetrics(s.src, res, &res.m)
	return res, nil
}

// find resolves v's representative with path compression. Only the
// sequential phases may call it; workers use the flat rep table.
func (w *waveSolver) find(v int32) int32 {
	for w.parent[v] != v {
		w.parent[v] = w.parent[w.parent[v]]
		v = w.parent[v]
	}
	return v
}

func (w *waveSolver) anyDirty() bool {
	for _, d := range w.dirty {
		if d {
			return true
		}
	}
	return false
}

// condense rebuilds the wave schedule: flatten representatives, condense
// the live constraint graph, unify every multi-member component (so all
// schedule units are singletons), and level the condensation with the
// outermost sources first. Sequential; runs between waves only.
func (w *waveSolver) condense() {
	s := w.s
	n := len(s.pt)
	for i := 0; i < n; i++ {
		w.rep[i] = w.find(int32(i))
	}
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		v := int32(i)
		if w.rep[i] != v || s.succ[v].Len() == 0 {
			continue
		}
		w.epoch++
		w.adjBuf = s.succ[v].AppendTo(w.adjBuf[:0])
		out := make([]int32, 0, len(w.adjBuf))
		for _, e := range w.adjBuf {
			t := w.rep[e]
			if t == v || w.seen[t] == w.epoch {
				continue
			}
			w.seen[t] = w.epoch
			out = append(out, t)
		}
		adj[i] = out
	}
	comp, members := scc.Condense(adj, func(v int32) bool { return w.rep[v] == v })
	s.m.SCCRounds++

	unified := false
	for _, ms := range members {
		if len(ms) <= 1 {
			continue
		}
		a := ms[0]
		for _, b := range ms[1:] {
			w.unifyNodes(a, b)
		}
		// Republish the survivor's full set: successors of the old
		// members have each seen only their own member's elements.
		// Idempotent (re-merging known elements adds nothing), so this
		// over-approximates pending work without breaking the delta
		// invariant.
		s.delta[a] = s.pt[a]
		w.dirty[a] = len(s.delta[a]) > 0
		unified = true
	}
	if unified {
		for i := 0; i < n; i++ {
			w.rep[i] = w.find(int32(i))
		}
	}

	_, height, buckets := scc.Level(comp, members, adj)
	w.comp, w.height = comp, height
	w.levels = w.levels[:0]
	w.levelH = w.levelH[:0]
	for h := len(buckets) - 1; h >= 0; h-- {
		lvl := make([]int32, 0, len(buckets[h]))
		for _, c := range buckets[h] {
			lvl = append(lvl, w.rep[members[c][0]])
		}
		w.levels = append(w.levels, lvl)
		w.levelH = append(w.levelH, int32(h))
	}
	w.edgesSinceCond, w.wavesSinceCond = 0, 0
}

// unifyNodes merges b into a (both current representatives, members of
// one SCC): points-to sets, successor edges and rule registrations. Edge
// ids in other nodes' successor sets go stale; every consumer maps them
// through rep before use.
func (w *waveSolver) unifyNodes(a, b int32) {
	s := w.s
	w.parent[b] = a
	s.pt[a] = mergeSorted(s.pt[a], s.pt[b])
	s.pt[b] = nil
	s.delta[b] = nil
	w.pub[b] = nil
	w.dirty[b] = false
	w.adjBuf = s.succ[b].AppendTo(w.adjBuf[:0])
	for _, e := range w.adjBuf {
		if e != a {
			s.succ[a].Add(e)
		}
	}
	s.succ[b] = set.Sparse{}
	if l := s.loadsOf[b]; len(l) > 0 {
		s.loadsOf[a] = append(s.loadsOf[a], l...)
		delete(s.loadsOf, b)
	}
	if l := s.storesOf[b]; len(l) > 0 {
		s.storesOf[a] = append(s.storesOf[a], l...)
		delete(s.storesOf, b)
	}
	if f := w.fpOf[b]; len(f) > 0 {
		w.fpOf[a] = append(w.fpOf[a], f...)
		delete(w.fpOf, b)
	}
	s.m.Unifications++
}

// runWave processes every level once, outermost (highest) first, then
// merges the wave's deferred work. Within a level the dirty nodes shard
// across the pool; the barrier between levels guarantees that when a
// node runs, every upstream publication of this wave is already visible
// in its contrib list.
func (w *waveSolver) runWave(ctx context.Context) error {
	s := w.s
	err := parallel.LevelsCtx(ctx, w.jobs, len(w.levels),
		func(l int) int {
			w.units = w.units[:0]
			for _, v := range w.levels[l] {
				if w.dirty[v] {
					w.units = append(w.units, v)
				}
			}
			if len(w.units) > s.m.WaveWidth {
				s.m.WaveWidth = len(w.units)
			}
			return len(w.units)
		},
		func(l, wk, lo, hi int) error {
			return w.runUnits(ctx, &w.ws[wk], w.units[lo:hi])
		},
		func(l int) error {
			w.scatter(w.levelH[l])
			return nil
		})
	if err != nil {
		return err
	}
	return w.waveEnd(ctx)
}

// runUnits is the worker body: pull upstream publications, publish the
// pending delta, and evaluate the complex and funcptr rules on it into
// the private pair buffer. Only node v's own slices are written, so
// concurrent units never alias.
func (w *waveSolver) runUnits(ctx context.Context, wk *waveWorker, units []int32) error {
	s := w.s
	for _, v := range units {
		w.dirty[v] = false
		if cb := w.contrib[v]; len(cb) > 0 {
			for _, src := range cb {
				wk.merged += int64(4 * w.pull(wk, v, w.pub[src]))
			}
			w.contrib[v] = cb[:0]
		}
		dv := s.delta[v]
		s.delta[v] = nil
		if len(dv) == 0 {
			continue
		}
		w.pub[v] = dv
		wk.pubbed = append(wk.pubbed, v)
		for _, x := range s.loadsOf[v] { // x = *v
			for _, z := range dv {
				wk.pairs = append(wk.pairs, packPair(int32(z), x))
			}
			wk.apps += len(dv)
		}
		for _, y := range s.storesOf[v] { // *v = y
			for _, z := range dv {
				wk.pairs = append(wk.pairs, packPair(y, int32(z)))
			}
			wk.apps += len(dv)
		}
		for _, r := range w.fpOf[v] {
			for _, z := range dv {
				g, ok := s.recOfFunc[int32(z)]
				if !ok {
					continue
				}
				np := len(r.Params)
				if len(g.Params) < np {
					np = len(g.Params)
				}
				for i := 0; i < np; i++ {
					wk.pairs = append(wk.pairs, packPair(int32(r.Params[i]), int32(g.Params[i])))
				}
				if r.Ret != prim.NoSym && g.Ret != prim.NoSym {
					wk.pairs = append(wk.pairs, packPair(int32(g.Ret), int32(r.Ret)))
				}
			}
			wk.apps += len(dv)
		}
		if wk.apps >= ctxCheckApps {
			wk.apps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pull merges src's publication into v's set and pending delta using the
// worker's private scratch; returns the number of fresh elements.
func (w *waveSolver) pull(wk *waveWorker, v int32, add []prim.SymID) int {
	s := w.s
	pt := s.pt[v]
	fresh := wk.freshBuf[:0]
	i, j := 0, 0
	for i < len(pt) && j < len(add) {
		switch {
		case pt[i] < add[j]:
			i++
		case pt[i] > add[j]:
			fresh = append(fresh, add[j])
			j++
		default:
			i++
			j++
		}
	}
	fresh = append(fresh, add[j:]...)
	wk.freshBuf = fresh
	if len(fresh) == 0 {
		return 0
	}
	s.pt[v] = mergeSorted(pt, fresh)
	s.delta[v] = mergeSorted(s.delta[v], fresh)
	return len(fresh)
}

// scatter drains the level's per-worker buffers on the scheduling
// goroutine, in worker-slot order — shards are contiguous, so that is
// ascending node order within the level. Publications route to
// lower-level successors via contrib lists; edges that defy the level
// order (inserted after the last condensation) become carries, applied
// at the wave end.
func (w *waveSolver) scatter(h int32) {
	s := w.s
	for wi := range w.ws {
		wk := &w.ws[wi]
		for _, v := range wk.pubbed {
			s.m.Passes++
			w.adjBuf = s.succ[v].AppendTo(w.adjBuf[:0])
			for _, e := range w.adjBuf {
				t := w.rep[e]
				if t == v {
					continue
				}
				if w.height[w.comp[t]] < h {
					w.contrib[t] = append(w.contrib[t], v)
					w.dirty[t] = true
				} else {
					w.carry = append(w.carry, [2]int32{v, t})
				}
			}
		}
		w.pubbed = append(w.pubbed, wk.pubbed...)
		wk.pubbed = wk.pubbed[:0]
		w.pairs = append(w.pairs, wk.pairs...)
		wk.pairs = wk.pairs[:0]
		s.m.DeltaMergeBytes += wk.merged
		wk.merged = 0
	}
}

// waveEnd applies the wave's deferred work sequentially: carries first,
// then edge insertions with the usual full-set catch-up, all in the
// deterministic order the buffers were drained in. Cancellation is
// checked every few hundred applications.
func (w *waveSolver) waveEnd(ctx context.Context) error {
	s := w.s
	apps := 0
	for _, c := range w.carry {
		v, t := c[0], c[1]
		if s.unionDiff(t, w.pub[v]) {
			s.m.DeltaMergeBytes += int64(4 * len(s.freshBuf))
			w.dirty[t] = true
		}
		if apps++; apps >= ctxCheckApps {
			apps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	w.carry = w.carry[:0]
	for _, p := range w.pairs {
		a, b := unpackPair(p)
		a, b = w.rep[a], w.rep[b]
		if a == b {
			continue
		}
		if s.succ[a].Add(b) {
			s.m.EdgesAdded++
			w.edgesSinceCond++
			if s.unionDiff(b, s.pt[a]) {
				s.m.DeltaMergeBytes += int64(4 * len(s.freshBuf))
				w.dirty[b] = true
			}
		}
		if apps++; apps >= ctxCheckApps {
			apps = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	w.pairs = w.pairs[:0]
	for _, v := range w.pubbed {
		w.pub[v] = nil
	}
	w.pubbed = w.pubbed[:0]
	s.m.Waves++
	w.wavesSinceCond++
	return nil
}
