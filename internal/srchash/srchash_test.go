package srchash

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

// TestMatchesStdlibFNV pins the scheme to the reference implementation:
// snapshot files written before this package existed recorded exactly
// fmt.Sprintf("%016x", fnv64a(content)), and must still verify.
func TestMatchesStdlibFNV(t *testing.T) {
	for _, s := range []string{"", "a", "int *p = &x;\n", "\x00\xff\x80"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		want := fmt.Sprintf("%016x", h.Sum64())
		if got := Bytes([]byte(s)); got != want {
			t.Errorf("Bytes(%q) = %s, want %s", s, got, want)
		}
		if got := String(s); got != want {
			t.Errorf("String(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestFoldVariantsAgree(t *testing.T) {
	b := []byte("content under test")
	if FoldString(Offset(), string(b)) != Fold(Offset(), b) {
		t.Fatal("FoldString diverges from Fold")
	}
	// FoldU32/FoldU64 must match folding the little-endian bytes.
	if FoldU32(Offset(), 0x04030201) != Fold(Offset(), []byte{1, 2, 3, 4}) {
		t.Fatal("FoldU32 diverges from little-endian Fold")
	}
	if FoldU64(Offset(), 0x0807060504030201) != Fold(Offset(), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("FoldU64 diverges from little-endian Fold")
	}
}

func TestFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.c")
	content := "int x;\nint *p = &x;\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	hash, size, err := File(path)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(content)) {
		t.Fatalf("size = %d, want %d", size, len(content))
	}
	if hash != String(content) {
		t.Fatalf("File hash %s != String hash %s", hash, String(content))
	}
	if _, _, err := File(filepath.Join(t.TempDir(), "missing.c")); err == nil {
		t.Fatal("File on a missing path should error")
	}
}
