// Package srchash is the single source-content hashing scheme shared by
// every staleness check in the toolkit: the solved-snapshot reader
// (internal/snapfile) re-hashing its recorded inputs, the driver's
// content-addressed object cache, and the incremental pipeline's unit
// store (internal/incr). Keeping the scheme in one leaf package means a
// hash change (widening the digest, switching the function) updates
// every consumer at once — it cannot silently desynchronize one
// staleness check from the others, which would make a cache serve
// results for sources that a sibling layer considers changed.
//
// The scheme is 64-bit FNV-1a rendered as 16 lowercase hex digits. It
// fingerprints content for change *detection*, not for integrity against
// an adversary; the object stores keyed by it live in caller-owned cache
// directories.
package srchash

import "os"

const (
	offset = uint64(14695981039346656037)
	prime  = uint64(1099511628211)
)

// Fold folds bytes into a running FNV-1a state. Seed with Offset().
func Fold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// FoldString is Fold over a string without copying.
func FoldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// FoldU32 folds one little-endian u32 into a running FNV-1a state.
func FoldU32(h uint64, v uint32) uint64 {
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return Fold(h, b[:])
}

// FoldU64 folds one little-endian u64 into a running FNV-1a state.
func FoldU64(h uint64, v uint64) uint64 {
	return FoldU32(FoldU32(h, uint32(v)), uint32(v>>32))
}

// Offset returns the FNV-1a offset basis, the seed for Fold chains.
func Offset() uint64 { return offset }

// Bytes fingerprints content as 16 hex digits.
func Bytes(b []byte) string { return Render(Fold(offset, b)) }

// String fingerprints string content as 16 hex digits.
func String(s string) string { return Render(FoldString(offset, s)) }

// Render formats a folded state the way Bytes does, for callers that
// fold incrementally.
func Render(h uint64) string {
	const hex = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hex[h&0xf]
		h >>= 4
	}
	return string(out[:])
}

// File fingerprints one file's current contents, returning its size
// alongside (snapshot staleness records both).
func File(path string) (hash string, size int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	return Bytes(b), int64(len(b)), nil
}
