package snapfile

import (
	"bytes"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/prim"
)

// FuzzSnapshot feeds arbitrary bytes to the snapshot reader. The reader
// promises that hostile input — truncations, bit-flips, hostile section
// tables and set indexes — errors cleanly: no panic, no out-of-range
// access, no count-driven over-allocation (every count is checked
// against its section's byte size before any make). Accepted inputs
// must additionally be fully usable: every symbol queryable, every set
// in bounds.
func FuzzSnapshot(f *testing.F) {
	// Seed with a real snapshot so mutation explores the deep decoders,
	// not just the header checks.
	prog, err := frontend.CompileSource("seed.c",
		"int g; int *p; void f(void) { p = &g; }", nil, frontend.Options{})
	if err != nil {
		f.Fatal(err)
	}
	res, err := driver.AnalyzeProgram(prog, driver.PreTransitive, core.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, &Snapshot{Prog: prog, Res: res, Solver: "pre-transitive"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenBytes(data)
		if err != nil {
			return
		}
		p := r.Program()
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted snapshot fails Validate: %v", err)
		}
		var prev prim.SymID
		for i := range p.Syms {
			for j, e := range r.Result().PointsTo(prim.SymID(i)) {
				if int(e) >= len(p.Syms) || (j > 0 && e <= prev) {
					t.Fatalf("sym %d: bad set element %d at %d", i, e, j)
				}
				prev = e
			}
		}
		r.Result().Metrics()
		r.Meta()
		r.Report()
		r.Audit()
	})
}
