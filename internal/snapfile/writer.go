package snapfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cla/internal/prim"
	"cla/internal/pts/set"
	"cla/internal/srchash"
)

// stringPool interns strings into a length-prefixed pool referenced by
// byte offset, offset 0 always the empty string (the object format's).
type stringPool struct {
	buf  []byte
	offs map[string]uint32
}

func newStringPool() *stringPool {
	p := &stringPool{offs: map[string]uint32{}}
	p.add("")
	return p
}

func (p *stringPool) add(s string) uint32 {
	if off, ok := p.offs[s]; ok {
		return off
	}
	off := uint32(len(p.buf))
	var lenBuf [4]byte
	le.PutUint32(lenBuf[:], uint32(len(s)))
	p.buf = append(p.buf, lenBuf[:]...)
	p.buf = append(p.buf, s...)
	p.offs[s] = off
	return off
}

type secBuf struct{ b []byte }

func (s *secBuf) u8(v uint8)   { s.b = append(s.b, v) }
func (s *secBuf) u32(v uint32) { var t [4]byte; le.PutUint32(t[:], v); s.b = append(s.b, t[:]...) }
func (s *secBuf) u64(v uint64) { var t [8]byte; le.PutUint64(t[:], v); s.b = append(s.b, t[:]...) }
func (s *secBuf) i32(v int32)  { s.u32(uint32(v)) }

// symID encodes prim.NoSym as the all-ones pattern.
func symID(id prim.SymID) uint32 {
	if id == prim.NoSym {
		return 0xffffffff
	}
	return uint32(id)
}

// Write serializes the solved snapshot to w. The output is a pure
// function of the Snapshot's contents: the solved relation is
// deterministic at any -j, so every section except meta is
// byte-identical at any worker count — the property the header's result
// digest certifies. (Meta carries pts.Metrics, whose execution-trace
// counters — waves, cache hits — legitimately vary with the schedule.)
func Write(w io.Writer, s *Snapshot) error {
	if s.Prog == nil || s.Res == nil {
		return fmt.Errorf("snapfile: nil program or result")
	}
	prog := s.Prog
	pool := newStringPool()
	var sections [numSections]secBuf

	// Symbols, the object format's record.
	syms := &sections[secSymbols]
	syms.u32(uint32(len(prog.Syms)))
	for i := range prog.Syms {
		sym := &prog.Syms[i]
		syms.u32(pool.add(sym.Name))
		syms.u32(pool.add(sym.Type))
		syms.u32(pool.add(sym.Loc.File))
		syms.u32(pool.add(sym.FuncName))
		syms.i32(sym.Loc.Line)
		syms.u8(uint8(sym.Kind))
		flags := uint8(0)
		if sym.FuncPtr {
			flags |= flagFuncPtr
		}
		if sym.Internal {
			flags |= flagInternal
		}
		if sym.Defined {
			flags |= flagDefined
		}
		syms.u8(flags)
		syms.u8(0)
		syms.u8(0)
	}

	// Assignments in original order — the whole database, so a MemSource
	// rebuilt from the snapshot blocks identically to the live one.
	asg := &sections[secAssigns]
	asg.u32(uint32(len(prog.Assigns)))
	for _, a := range prog.Assigns {
		asg.u32(symID(a.Dst))
		asg.u32(symID(a.Src))
		asg.u32(pool.add(a.Loc.File))
		asg.i32(a.Loc.Line)
		asg.u32(pool.add(a.Func))
		asg.u8(uint8(a.Kind))
		asg.u8(uint8(a.Op))
		asg.u8(uint8(a.Strength))
		asg.u8(0)
	}

	// Function records.
	funcs := &sections[secFuncs]
	funcs.u32(uint32(len(prog.Funcs)))
	for _, f := range prog.Funcs {
		funcs.u32(symID(f.Func))
		funcs.u32(symID(f.Ret))
		if f.Variadic {
			funcs.u8(1)
		} else {
			funcs.u8(0)
		}
		funcs.u8(0)
		funcs.u8(0)
		funcs.u8(0)
		funcs.u32(uint32(len(f.Params)))
		for _, p := range f.Params {
			funcs.u32(symID(p))
		}
	}

	// Call sites.
	calls := &sections[secCalls]
	calls.u32(uint32(len(prog.Calls)))
	for _, c := range prog.Calls {
		calls.u32(symID(c.Callee))
		calls.u32(pool.add(c.Loc.File))
		calls.i32(c.Loc.Line)
		calls.u32(pool.add(c.Caller))
		calls.u32(uint32(c.Args))
		if c.Indirect {
			calls.u8(1)
		} else {
			calls.u8(0)
		}
		calls.u8(0)
		calls.u8(0)
		calls.u8(0)
	}

	// Points-to sets, interned through the shared sealed-set layer so
	// each distinct payload is stored once and referenced by id.
	// Ascending symbol order makes id assignment (and the file)
	// deterministic; the result digest folds every symbol's elements.
	ptsIdx := &sections[secPtsIdx]
	setIdx := &sections[secSetIdx]
	elems := &sections[secElems]
	var (
		b       set.Builder
		table   = set.NewTable()
		setID   = map[*set.Set]uint32{}
		scratch []uint32
		nextID  uint32
		nElems  uint64
		digest  = fnvOffset
	)
	ptsIdx.u32(uint32(len(prog.Syms)))
	var starts []uint64
	var lengths []uint32
	for i := range prog.Syms {
		targets := s.Res.PointsTo(prim.SymID(i))
		if len(targets) == 0 {
			ptsIdx.u32(noSet)
			continue
		}
		digest = fnv1aU32(digest, uint32(i))
		digest = fnv1aU32(digest, uint32(len(targets)))
		b.Reset()
		b.MergeSyms(targets)
		sealed := b.Seal(nil, table)
		id, ok := setID[sealed]
		if !ok {
			id = nextID
			nextID++
			setID[sealed] = id
			scratch = sealed.AppendU32(scratch[:0])
			starts = append(starts, nElems)
			lengths = append(lengths, uint32(len(scratch)))
			for _, x := range scratch {
				elems.u32(x)
			}
			nElems += uint64(len(scratch))
		}
		// The digest covers the elements per symbol (not per distinct
		// set), so it certifies the full relation.
		for _, x := range targets {
			digest = fnv1aU32(digest, uint32(x))
		}
		ptsIdx.u32(id)
	}
	setIdx.u32(nextID)
	setIdx.u32(0)
	for i := range starts {
		setIdx.u64(starts[i])
		setIdx.u32(lengths[i])
		setIdx.u32(0)
	}

	// Meta and report JSON sections.
	meta := Meta{
		Solver:   s.Solver,
		ExtModel: s.ExtModel,
		Syms:     len(prog.Syms),
		Assigns:  len(prog.Assigns),
		Sets:     int(nextID),
		Elems:    int(nElems),
		Metrics:  s.Res.Metrics(),
		Sources:  s.Sources,
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("snapfile: encode meta: %w", err)
	}
	sections[secMeta].b = metaJSON
	repJSON, err := json.Marshal(reportBlob{Report: s.Report, Audit: s.Audit})
	if err != nil {
		return fmt.Errorf("snapfile: encode report: %w", err)
	}
	sections[secReport].b = repJSON
	sections[secStrings].b = pool.buf

	// Header + 8-byte-aligned section table.
	var hdr secBuf
	hdr.b = append(hdr.b, Magic...)
	hdr.u32(Version)
	hdr.u64(digest)
	hdr.u64(sourceDigest(s.Sources))
	off := uint64(align8(headerSize))
	offs := make([]uint64, numSections)
	for i := range sections {
		offs[i] = off
		off += uint64(align8(len(sections[i].b)))
	}
	hdr.u64(off) // total file size
	hdr.u32(numSections)
	hdr.u32(0)
	for i := range sections {
		hdr.u64(offs[i])
		hdr.u64(uint64(len(sections[i].b)))
	}

	bw := bufio.NewWriter(w)
	if err := writePadded(bw, hdr.b); err != nil {
		return err
	}
	for i := range sections {
		if err := writePadded(bw, sections[i].b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// writePadded writes b followed by zero padding to an 8-byte boundary.
func writePadded(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	if pad := align8(len(b)) - len(b); pad > 0 {
		var zeros [8]byte
		if _, err := w.Write(zeros[:pad]); err != nil {
			return err
		}
	}
	return nil
}

// Save serializes the snapshot to the named file.
func Save(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// HashFile records one input file's identity for staleness detection,
// using the toolkit-wide srchash scheme so the snapshot staleness check
// can never desynchronize from the driver cache or the incremental
// pipeline's unit store.
func HashFile(path string) (SourceFile, error) {
	hash, size, err := srchash.File(path)
	if err != nil {
		return SourceFile{}, err
	}
	return SourceFile{Path: path, Size: size, Hash: hash}, nil
}

// HashSources records every named input, in the given order.
func HashSources(paths []string) ([]SourceFile, error) {
	out := make([]SourceFile, 0, len(paths))
	for _, p := range paths {
		sf, err := HashFile(p)
		if err != nil {
			return nil, err
		}
		out = append(out, sf)
	}
	return out, nil
}

// sourceDigest folds the source records into one u64 for the header.
func sourceDigest(srcs []SourceFile) uint64 {
	h := fnvOffset
	for _, s := range srcs {
		h = fnv1a(h, []byte(s.Path))
		h = fnv1a(h, []byte{0})
		h = fnv1aU32(h, uint32(s.Size))
		h = fnv1aU32(h, uint32(s.Size>>32))
		h = fnv1a(h, []byte(s.Hash))
		h = fnv1a(h, []byte{'\n'})
	}
	return h
}
