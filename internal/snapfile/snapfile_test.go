package snapfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cla/internal/checks"
	"cla/internal/claerr"
	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

const testSrc = `
int g1, g2;
int *p, *q, **pp;
void (*fp)(int *);
void take(int *a) { p = a; }
void run(void) {
	p = &g1;
	q = &g2;
	pp = &p;
	*pp = q;
	fp = take;
	fp(&g1);
}
`

// build compiles testSrc, solves it with the given solver and wraps the
// result as a Snapshot.
func build(t *testing.T, solver driver.Solver, jobs int) *Snapshot {
	t.Helper()
	prog, err := frontend.CompileSource("test.c", testSrc, nil, frontend.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Jobs = jobs
	res, err := driver.AnalyzeProgram(prog, solver, cfg)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	rep, err := checks.Run(prog, res, checks.Options{})
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	return &Snapshot{
		Prog:   prog,
		Res:    res,
		Solver: solver.String(),
		Report: rep,
	}
}

// sameResult asserts the reader's relation matches the live one for every
// symbol.
func sameResult(t *testing.T, prog *prim.Program, live pts.Result, got pts.Result) {
	t.Helper()
	for i := range prog.Syms {
		id := prim.SymID(i)
		want := live.PointsTo(id)
		have := got.PointsTo(id)
		if len(want) == 0 && len(have) == 0 {
			continue
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("sym %d (%s): live %v != snapshot %v",
				i, prog.Syms[i].Name, want, have)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	solvers := []driver.Solver{
		driver.PreTransitive, driver.Worklist, driver.Steensgaard,
		driver.BitVector, driver.OneLevel,
	}
	for _, solver := range solvers {
		t.Run(solver.String(), func(t *testing.T) {
			s := build(t, solver, 1)
			var buf bytes.Buffer
			if err := Write(&buf, s); err != nil {
				t.Fatalf("write: %v", err)
			}
			r, err := OpenBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if !reflect.DeepEqual(r.Program(), s.Prog) {
				t.Fatalf("program round-trip mismatch")
			}
			sameResult(t, s.Prog, s.Res, r.Result())
			if !reflect.DeepEqual(r.Result().Metrics(), s.Res.Metrics()) {
				t.Fatalf("metrics mismatch: %+v != %+v",
					r.Result().Metrics(), s.Res.Metrics())
			}
			if !reflect.DeepEqual(r.Report(), s.Report) {
				t.Fatalf("report mismatch:\n got %+v\nwant %+v", r.Report(), s.Report)
			}
			m := r.Meta()
			if m.Solver != solver.String() || m.Syms != len(s.Prog.Syms) ||
				m.Assigns != len(s.Prog.Assigns) {
				t.Fatalf("meta mismatch: %+v", m)
			}
			if m.Sets <= 0 || m.Elems < m.Sets {
				t.Fatalf("implausible set counts: %+v", m)
			}
		})
	}
}

// TestJobsIndependent asserts every section except meta is
// byte-identical whether the result was solved sequentially or on 8
// workers (meta carries schedule-dependent trace counters), and that
// the result digests agree.
func TestJobsIndependent(t *testing.T) {
	var b1, b8 bytes.Buffer
	if err := Write(&b1, build(t, driver.PreTransitive, 1)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b8, build(t, driver.PreTransitive, 8)); err != nil {
		t.Fatal(err)
	}
	s1, s8 := b1.Bytes(), b8.Bytes()
	if d1, d8 := le.Uint64(s1[8:]), le.Uint64(s8[8:]); d1 != d8 {
		t.Fatalf("result digest differs between -j 1 and -j 8: %x != %x", d1, d8)
	}
	for i := 0; i < numSections; i++ {
		if i == secMeta {
			continue
		}
		sec := func(b []byte) []byte {
			off := le.Uint64(b[40+i*16:])
			n := le.Uint64(b[40+i*16+8:])
			return b[off : off+n]
		}
		if !bytes.Equal(sec(s1), sec(s8)) {
			t.Fatalf("section %d differs between -j 1 and -j 8", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	s := build(t, driver.PreTransitive, 1)
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := Save(path, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, opts := range []Options{{}, {NoMmap: true}} {
		r, err := Open(path, opts)
		if err != nil {
			t.Fatalf("open (NoMmap=%v): %v", opts.NoMmap, err)
		}
		if want := mmapSupported && !opts.NoMmap; r.Mapped() != want {
			t.Fatalf("Mapped()=%v, want %v", r.Mapped(), want)
		}
		if n := r.Prefault(); n == 0 {
			t.Fatalf("Prefault touched nothing")
		}
		sameResult(t, s.Prog, s.Res, r.Result())
		if err := r.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

func TestVerifySources(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.c")
	if err := os.WriteFile(src, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	s := build(t, driver.PreTransitive, 1)
	var err error
	if s.Sources, err = HashSources([]string{src}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	r, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.VerifySources(); err != nil {
		t.Fatalf("fresh snapshot reported stale: %v", err)
	}

	// Edit the source: same size, different bytes.
	edited := []byte(testSrc)
	edited[len(edited)-2]++
	if err := os.WriteFile(src, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifySources(); !errors.Is(err, claerr.ErrStale) {
		t.Fatalf("edited source: got %v, want ErrStale", err)
	}
	if os.Remove(src) != nil {
		t.Fatal("remove")
	}
	if err := r.VerifySources(); !errors.Is(err, claerr.ErrStale) {
		t.Fatalf("missing source: got %v, want ErrStale", err)
	}
}

// TestCorruption asserts hostile inputs error instead of panicking:
// every truncation length and every single-byte flip of a valid file.
func TestCorruption(t *testing.T) {
	s := build(t, driver.PreTransitive, 1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for n := 0; n < len(valid); n += 7 {
		if _, err := OpenBytes(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	mut := make([]byte, len(valid))
	for i := 0; i < len(valid); i++ {
		copy(mut, valid)
		mut[i] ^= 0x41
		r, err := OpenBytes(mut)
		// A flip inside JSON padding or a string body can survive parsing;
		// what matters is that no flip panics and the result stays usable.
		if err == nil {
			for j := range s.Prog.Syms {
				r.Result().PointsTo(prim.SymID(j))
			}
		}
	}
}

func TestVersionRejected(t *testing.T) {
	s := build(t, driver.PreTransitive, 1)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	le.PutUint32(b[4:], Version+1)
	if _, err := OpenBytes(b); err == nil {
		t.Fatal("future version accepted")
	}
}
