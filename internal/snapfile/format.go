// Package snapfile implements the CLA solved-snapshot format (v2 of the
// on-disk story): an indexed-block binary serialization of a *solved*
// analysis — the post-extmodel program, the interned points-to sets, the
// cached checks report and the extmodel soundness audit — so a query
// server can cold-start by paging the file in instead of re-parsing and
// re-solving. The layout follows the object format's idiom (magic +
// version + section table + string pool) and adds what serving needs:
// 8-byte-aligned sections so points-to set payloads can be used in place
// from an mmap without decoding, a jobs-independence digest over the
// result, and content hashes of the inputs for staleness detection.
//
// Layout (all integers little-endian):
//
//	header:   magic "CLAS", version u32, result digest u64 (FNV-1a over
//	          every symbol's set elements — identical at any -j),
//	          source digest u64 (FNV-1a over the source records),
//	          file size u64, section count u32, pad u32,
//	          section table: numSections × {offset u64, length u64};
//	          every section offset is 8-byte aligned
//	meta:     JSON: solver, extmodel, counts, pts.Metrics, source records
//	          {path, size, content hash}
//	strings:  string pool; each string is u32 length + bytes, referenced
//	          by byte offset within the section (offset 0 = "")
//	symbols:  u32 count, then fixed 24-byte records
//	          {name u32, type u32, file u32, funcName u32, line i32,
//	           kind u8, flags u8, pad u16} (the object format's record)
//	assigns:  u32 count, then fixed 24-byte records in original program
//	          order {dst u32, src u32, file u32, line i32, func u32,
//	           kind u8, op u8, strength u8, pad u8} — the full database,
//	          Base assignments included, so a MemSource rebuilt from the
//	          snapshot is identical to the live-solve one
//	funcs:    u32 count, then {func u32, ret u32, variadic u8, pad×3,
//	           nparams u32, params u32...}
//	calls:    u32 count, then 24-byte records {callee u32, file u32,
//	           line i32, caller u32, args u32, indirect u8, pad×3}
//	ptsidx:   u32 count (= symbol count), then count × u32 set id;
//	          0xffffffff marks the empty set. Interning makes this double
//	          as the representative table: symbols the solver unified
//	          share one set id.
//	setidx:   u32 count, pad u32, then count × {start u64 (element index
//	          into elems), length u32, pad u32}
//	elems:    raw u32 array: every distinct set's elements, ascending,
//	          stored once (the sealed-set external encoding). The section
//	          is 8-byte aligned, so on little-endian hosts PointsTo
//	          returns subslices of the mapping itself — zero copies.
//	report:   JSON: the cached four-check report and the extmodel audit
//
// Version policy: readers accept exactly one version; any incompatible
// layout change bumps Version and old snapshots are rebuilt, never
// migrated (a snapshot is a cache of a solve, not a database of record).
package snapfile

import (
	"encoding/binary"
	"fmt"

	"cla/internal/checks"
	"cla/internal/claerr"
	"cla/internal/prim"
	"cla/internal/pts"
)

// Magic identifies CLA solved-snapshot files.
const Magic = "CLAS"

// Version is the current snapshot format version.
const Version = 1

// section ids, in file order.
const (
	secMeta = iota
	secStrings
	secSymbols
	secAssigns
	secFuncs
	secCalls
	secPtsIdx
	secSetIdx
	secElems
	secReport
	numSections
)

const (
	headerSize   = 4 + 4 + 8 + 8 + 8 + 4 + 4 + numSections*16
	symRecSize   = 24
	asgRecSize   = 24
	callRecSize  = 24
	setIdxRec    = 16
	noSet        = 0xffffffff
	maxSourceLen = 1 << 20 // meta/report JSON cap against hostile headers
)

// flag bits in symbol records (the object format's).
const (
	flagFuncPtr  = 1 << 0
	flagInternal = 1 << 1
	flagDefined  = 1 << 2
)

// Snapshot is the in-memory payload a snapshot file serializes: one
// solved analysis plus the serving-layer caches derived from it.
type Snapshot struct {
	// Prog is the full post-extmodel database the solve ran on.
	Prog *prim.Program
	// Res is the solved points-to relation.
	Res pts.Result
	// Solver and ExtModel label the configuration that produced Res
	// (driver.Solver and extmodel.Model display strings).
	Solver   string
	ExtModel string
	// Report is the cached four-check report the serving layer would
	// otherwise compute lazily (nil skips it).
	Report *checks.Report
	// Audit is the extmodel soundness inventory (nil skips it).
	Audit *checks.Audit
	// Sources are the input files the snapshot was built from, recorded
	// for staleness detection.
	Sources []SourceFile
}

// SourceFile records one input's identity for staleness checks.
type SourceFile struct {
	Path string `json:"path"`
	Size int64  `json:"size"`
	// Hash is the FNV-1a 64-bit content hash, 16 hex digits (a string
	// because JSON numbers cannot carry 64 bits exactly).
	Hash string `json:"hash"`
}

// Meta is the snapshot's JSON meta section.
type Meta struct {
	Solver   string       `json:"solver"`
	ExtModel string       `json:"extmodel"`
	Syms     int          `json:"syms"`
	Assigns  int          `json:"assigns"`
	Sets     int          `json:"sets"`
	Elems    int          `json:"elems"`
	Metrics  pts.Metrics  `json:"metrics"`
	Sources  []SourceFile `json:"sources,omitempty"`
}

// reportBlob is the report section's JSON shape.
type reportBlob struct {
	Report *checks.Report `json:"report"`
	Audit  *checks.Audit  `json:"audit,omitempty"`
}

var le = binary.LittleEndian

// corrupt builds a corruption error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("snapfile: corrupt snapshot: %s", fmt.Sprintf(format, args...))
}

// stale builds a staleness error wrapping claerr.ErrStale, so callers
// (and the serving layer's status mapping) can test with errors.Is.
func stale(format string, args ...any) error {
	return fmt.Errorf("snapfile: %s: %w", fmt.Sprintf(format, args...), claerr.ErrStale)
}

// fnv1a folds bytes into an FNV-1a 64-bit hash.
func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// fnv1aU32 folds one u32 into an FNV-1a 64-bit hash.
func fnv1aU32(h uint64, v uint32) uint64 {
	var b [4]byte
	le.PutUint32(b[:], v)
	return fnv1a(h, b[:])
}

const fnvOffset = uint64(14695981039346656037)
