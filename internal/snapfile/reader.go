package snapfile

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"unsafe"

	"cla/internal/checks"
	"cla/internal/prim"
	"cla/internal/pts"
)

// Options configures Open.
type Options struct {
	// NoMmap forces the buffered read path even where mmap is available
	// (benchmarking, or callers that must not hold a mapping).
	NoMmap bool
}

// Reader is an opened solved snapshot. The program, meta, report and set
// index are decoded eagerly and validated end to end at Open (including
// the result digest, so bit-flips anywhere in the set data are caught up
// front); the set elements themselves are served as views into the
// mapping when the platform allows, so PointsTo is allocation-free.
//
// Lifetime: everything returned by Program, Result and Report remains
// valid until Close. Close unmaps the file; after it, set slices
// previously returned by Result().PointsTo must not be touched. A
// serving process that never tears sessions down never calls Close.
type Reader struct {
	data   []byte
	mapped bool

	meta         Meta
	resultDigest uint64
	srcDigest    uint64
	prog         *prim.Program
	res          *Result
	report       *checks.Report
	audit        *checks.Audit
	zeroCopy     bool
}

// Result is the snapshot-backed pts.Result: O(1), read-only and safe
// for concurrent use, like every post-fixpoint snapshot in the system.
type Result struct {
	ptsIdx  []uint32
	start   []uint32
	length  []uint32
	elems   []prim.SymID
	metrics pts.Metrics
}

// PointsTo implements pts.Result. The returned slice aliases the
// snapshot mapping (zero-copy) and must be treated as read-only.
func (r *Result) PointsTo(sym prim.SymID) []prim.SymID {
	if int(sym) < 0 || int(sym) >= len(r.ptsIdx) {
		return nil
	}
	id := r.ptsIdx[sym]
	if id == noSet {
		return nil
	}
	s, n := r.start[id], r.length[id]
	return r.elems[s : s+n : s+n]
}

// Metrics implements pts.Result, returning the solve-time metrics the
// snapshot recorded.
func (r *Result) Metrics() pts.Metrics { return r.metrics }

// Open opens and validates the named snapshot. It maps the file when the
// platform supports it and falls back to a buffered read otherwise (or
// when opts.NoMmap is set); Mapped reports which path was taken.
func Open(path string, opts Options) (*Reader, error) {
	if mmapSupported && !opts.NoMmap {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		data, merr := mmapFile(f, st.Size())
		f.Close() // the mapping survives the descriptor
		if merr == nil {
			r, err := decode(data, true)
			if err != nil {
				munmap(data)
				return nil, err
			}
			return r, nil
		}
		// Graceful fallback: mmap can fail on exotic filesystems.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decode(data, false)
}

// OpenBytes validates a snapshot held in memory (tests, fuzzing).
func OpenBytes(data []byte) (*Reader, error) { return decode(data, false) }

// Close releases the mapping (a no-op for buffered reads). See the
// lifetime rules in the Reader doc.
func (r *Reader) Close() error {
	if !r.mapped {
		return nil
	}
	r.mapped = false
	data := r.data
	r.data = nil
	return munmap(data)
}

// Meta returns the snapshot's meta header.
func (r *Reader) Meta() Meta { return r.meta }

// Program returns the decoded post-extmodel database.
func (r *Reader) Program() *prim.Program { return r.prog }

// Result returns the snapshot-backed points-to relation.
func (r *Reader) Result() pts.Result { return r.res }

// Report returns the cached checks report, nil when none was stored.
func (r *Reader) Report() *checks.Report { return r.report }

// Audit returns the extmodel soundness inventory, nil when none stored.
func (r *Reader) Audit() *checks.Audit { return r.audit }

// ResultDigest returns the header's jobs-independence digest.
func (r *Reader) ResultDigest() uint64 { return r.resultDigest }

// Mapped reports whether the snapshot is mmap-backed.
func (r *Reader) Mapped() bool { return r.mapped }

// ZeroCopy reports whether set elements are served directly from the
// file bytes (little-endian host, aligned data) or were decode-copied.
func (r *Reader) ZeroCopy() bool { return r.zeroCopy }

// VerifySources re-hashes the inputs recorded at write time and fails
// with an error wrapping claerr.ErrStale when any is missing or
// changed. A snapshot with no recorded sources always verifies.
func (r *Reader) VerifySources() error {
	for _, want := range r.meta.Sources {
		got, err := HashFile(want.Path)
		if err != nil {
			return stale("source %s unreadable (%v)", want.Path, err)
		}
		if got.Size != want.Size || got.Hash != want.Hash {
			return stale("source %s changed since the snapshot was written", want.Path)
		}
	}
	return nil
}

// Prefault touches every page of the snapshot so a -preload'ed session
// pays its page-ins before READY rather than on the first query.
// Returns the number of bytes touched.
func (r *Reader) Prefault() int {
	var sink byte
	for i := 0; i < len(r.data); i += 4096 {
		sink ^= r.data[i]
	}
	_ = sink
	return len(r.data)
}

// hostLittleEndian gates the zero-copy view: the format is little-endian
// on disk, so only little-endian hosts may alias file bytes as integers.
var hostLittleEndian = binary.NativeEndian.Uint32([]byte{1, 0, 0, 0}) == 1

// u32View reinterprets b as a []uint32 without copying when safe
// (little-endian host, 4-byte alignment); ok=false means the caller
// must decode-copy.
func u32View(b []byte) (view []uint32, ok bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// u32Decode copies b into a fresh []uint32 (the alignment/endianness
// fallback).
func u32Decode(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = le.Uint32(b[i*4:])
	}
	return out
}

// decode parses and validates an entire snapshot image. Every index is
// bounds-checked before use and every count is checked against its
// section's size before allocation, so hostile inputs error without
// panicking or over-allocating.
func decode(data []byte, mapped bool) (*Reader, error) {
	r := &Reader{data: data, mapped: mapped}
	if len(data) < headerSize {
		return nil, corrupt("file too small (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, corrupt("bad magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, corrupt("unsupported version %d (want %d)", v, Version)
	}
	r.resultDigest = le.Uint64(data[8:])
	r.srcDigest = le.Uint64(data[16:])
	if sz := le.Uint64(data[24:]); sz != uint64(len(data)) {
		return nil, corrupt("header size %d != file size %d", sz, len(data))
	}
	if n := le.Uint32(data[32:]); n != numSections {
		return nil, corrupt("section count %d (want %d)", n, numSections)
	}
	var secs [numSections][]byte
	p := 40
	for i := 0; i < numSections; i++ {
		off := le.Uint64(data[p:])
		length := le.Uint64(data[p+8:])
		p += 16
		if off%8 != 0 || off < headerSize || off > uint64(len(data)) ||
			length > uint64(len(data))-off {
			return nil, corrupt("section %d out of bounds", i)
		}
		secs[i] = data[off : off+length]
	}

	if err := json.Unmarshal(secs[secMeta], &r.meta); err != nil {
		return nil, corrupt("meta section: %v", err)
	}
	var blob reportBlob
	if err := json.Unmarshal(secs[secReport], &blob); err != nil {
		return nil, corrupt("report section: %v", err)
	}
	r.report, r.audit = blob.Report, blob.Audit

	d := &decoder{strings: secs[secStrings]}
	prog := &prim.Program{}
	var err error
	if prog.Syms, err = d.symbols(secs[secSymbols]); err != nil {
		return nil, err
	}
	if prog.Assigns, err = d.assigns(secs[secAssigns], len(prog.Syms)); err != nil {
		return nil, err
	}
	if prog.Funcs, err = d.funcs(secs[secFuncs], len(prog.Syms)); err != nil {
		return nil, err
	}
	if prog.Calls, err = d.calls(secs[secCalls], len(prog.Syms)); err != nil {
		return nil, err
	}
	r.prog = prog

	res, zero, err := decodeResult(secs[secPtsIdx], secs[secSetIdx], secs[secElems],
		len(prog.Syms), r.resultDigest)
	if err != nil {
		return nil, err
	}
	res.metrics = r.meta.Metrics
	r.res = res
	r.zeroCopy = zero
	return r, nil
}

// decodeResult builds the Result and re-derives the jobs-independence
// digest from the decoded relation, rejecting the file when it does not
// match the header — the set data's end-to-end integrity check.
func decodeResult(idxSec, setSec, elemSec []byte, numSyms int, wantDigest uint64) (*Result, bool, error) {
	// ptsidx: count + one set id per symbol.
	if len(idxSec) < 4 {
		return nil, false, corrupt("ptsidx section too small")
	}
	if n := int(le.Uint32(idxSec)); n != numSyms || len(idxSec) < 4+n*4 {
		return nil, false, corrupt("ptsidx count %d (want %d symbols)", n, numSyms)
	}
	ptsIdx, _ := u32View(idxSec[4 : 4+numSyms*4])
	if ptsIdx == nil && numSyms > 0 {
		ptsIdx = u32Decode(idxSec[4 : 4+numSyms*4])
	}

	// setidx: count, pad, then {start u64, length u32, pad u32} records.
	if len(setSec) < 8 {
		return nil, false, corrupt("setidx section too small")
	}
	nSets := int(le.Uint32(setSec))
	if nSets < 0 || len(setSec) != 8+nSets*setIdxRec {
		return nil, false, corrupt("setidx size mismatch (%d sets, %d bytes)", nSets, len(setSec))
	}

	// elems: raw u32 array, zero-copy when alignment and endianness allow.
	nElems := len(elemSec) / 4
	var elems []prim.SymID
	zero := false
	if view, ok := u32View(elemSec[:nElems*4]); ok {
		elems = unsafe.Slice((*prim.SymID)(unsafe.Pointer(unsafe.SliceData(view))), len(view))
		zero = nElems > 0
	} else {
		dec := u32Decode(elemSec[:nElems*4])
		elems = make([]prim.SymID, len(dec))
		for i, x := range dec {
			elems[i] = prim.SymID(x)
		}
	}

	res := &Result{
		ptsIdx: ptsIdx,
		start:  make([]uint32, nSets),
		length: make([]uint32, nSets),
		elems:  elems,
	}
	for i := 0; i < nSets; i++ {
		rec := setSec[8+i*setIdxRec:]
		start := le.Uint64(rec)
		length := le.Uint32(rec[8:])
		if start > uint64(nElems) || uint64(length) > uint64(nElems)-start {
			return nil, false, corrupt("set %d out of bounds", i)
		}
		if length == 0 {
			return nil, false, corrupt("set %d is empty (empty sets are implicit)", i)
		}
		// Elements must be strictly ascending symbol ids: the invariant
		// every consumer of pts.Result relies on.
		prev := prim.SymID(-1)
		for _, e := range elems[start : start+uint64(length)] {
			if e <= prev || int(e) >= numSyms {
				return nil, false, corrupt("set %d has bad element %d", i, e)
			}
			prev = e
		}
		res.start[i] = uint32(start)
		res.length[i] = length
	}

	digest := fnvOffset
	for i := 0; i < numSyms; i++ {
		id := ptsIdx[i]
		if id == noSet {
			continue
		}
		if int(id) >= nSets {
			return nil, false, corrupt("symbol %d references set %d of %d", i, id, nSets)
		}
		digest = fnv1aU32(digest, uint32(i))
		digest = fnv1aU32(digest, res.length[id])
		for _, e := range res.elems[res.start[id] : res.start[id]+res.length[id]] {
			digest = fnv1aU32(digest, uint32(e))
		}
	}
	if digest != wantDigest {
		return nil, false, corrupt("result digest mismatch (corrupted set data)")
	}
	return res, zero, nil
}

// decoder decodes the program sections against the resident string pool.
type decoder struct {
	strings []byte
}

// str decodes a string-pool reference.
func (d *decoder) str(off uint32) (string, error) {
	if int64(off)+4 > int64(len(d.strings)) {
		return "", corrupt("string offset %d out of range", off)
	}
	n := le.Uint32(d.strings[off:])
	end := int64(off) + 4 + int64(n)
	if end > int64(len(d.strings)) {
		return "", corrupt("string at %d overruns pool", off)
	}
	return string(d.strings[off+4 : end]), nil
}

func decodeSymID(v uint32) prim.SymID {
	if v == 0xffffffff {
		return prim.NoSym
	}
	return prim.SymID(v)
}

// checkSym validates a symbol reference against the table size.
func checkSym(id prim.SymID, numSyms int) error {
	if id == prim.NoSym {
		return nil
	}
	if int(id) < 0 || int(id) >= numSyms {
		return corrupt("symbol id %d out of range", id)
	}
	return nil
}

func (d *decoder) symbols(b []byte) ([]prim.Symbol, error) {
	if len(b) < 4 {
		return nil, corrupt("symbol section too small")
	}
	n := int(le.Uint32(b))
	if n < 0 || n > len(b) || len(b) != 4+n*symRecSize {
		return nil, corrupt("symbol section size mismatch (%d symbols, %d bytes)", n, len(b))
	}
	syms := make([]prim.Symbol, n)
	for i := 0; i < n; i++ {
		rec := b[4+i*symRecSize:]
		name, err := d.str(le.Uint32(rec))
		if err != nil {
			return nil, err
		}
		typ, err := d.str(le.Uint32(rec[4:]))
		if err != nil {
			return nil, err
		}
		file, err := d.str(le.Uint32(rec[8:]))
		if err != nil {
			return nil, err
		}
		funcName, err := d.str(le.Uint32(rec[12:]))
		if err != nil {
			return nil, err
		}
		kind := prim.SymKind(rec[20])
		if int(kind) >= prim.NumSymKinds {
			return nil, corrupt("symbol %d has bad kind %d", i, kind)
		}
		flags := rec[21]
		syms[i] = prim.Symbol{
			Name: name, Type: typ, FuncName: funcName,
			Loc:      prim.Loc{File: file, Line: int32(le.Uint32(rec[16:]))},
			Kind:     kind,
			FuncPtr:  flags&flagFuncPtr != 0,
			Internal: flags&flagInternal != 0,
			Defined:  flags&flagDefined != 0,
		}
	}
	return syms, nil
}

func (d *decoder) assigns(b []byte, numSyms int) ([]prim.Assign, error) {
	if len(b) < 4 {
		return nil, corrupt("assign section too small")
	}
	n := int(le.Uint32(b))
	if n < 0 || n > len(b) || len(b) != 4+n*asgRecSize {
		return nil, corrupt("assign section size mismatch (%d assigns, %d bytes)", n, len(b))
	}
	out := make([]prim.Assign, n)
	for i := 0; i < n; i++ {
		rec := b[4+i*asgRecSize:]
		a := prim.Assign{
			Dst:      decodeSymID(le.Uint32(rec)),
			Src:      decodeSymID(le.Uint32(rec[4:])),
			Kind:     prim.Kind(rec[20]),
			Op:       prim.Op(rec[21]),
			Strength: prim.Strength(rec[22]),
		}
		if !a.Kind.Valid() {
			return nil, corrupt("assign %d has bad kind %d", i, a.Kind)
		}
		if err := checkSym(a.Dst, numSyms); err != nil {
			return nil, err
		}
		if err := checkSym(a.Src, numSyms); err != nil {
			return nil, err
		}
		file, err := d.str(le.Uint32(rec[8:]))
		if err != nil {
			return nil, err
		}
		fn, err := d.str(le.Uint32(rec[16:]))
		if err != nil {
			return nil, err
		}
		a.Loc = prim.Loc{File: file, Line: int32(le.Uint32(rec[12:]))}
		a.Func = fn
		out[i] = a
	}
	return out, nil
}

func (d *decoder) funcs(b []byte, numSyms int) ([]prim.FuncRecord, error) {
	if len(b) < 4 {
		return nil, corrupt("func section too small")
	}
	n := int(le.Uint32(b))
	if n < 0 || n > len(b) {
		return nil, corrupt("func count %d out of range", n)
	}
	p := 4
	out := make([]prim.FuncRecord, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		if p+16 > len(b) {
			return nil, corrupt("func record %d truncated", i)
		}
		rec := prim.FuncRecord{
			Func:     decodeSymID(le.Uint32(b[p:])),
			Ret:      decodeSymID(le.Uint32(b[p+4:])),
			Variadic: b[p+8] != 0,
		}
		np := int(le.Uint32(b[p+12:]))
		p += 16
		if np < 0 || np > len(b) || p+np*4 > len(b) {
			return nil, corrupt("func record %d params truncated", i)
		}
		for j := 0; j < np; j++ {
			id := decodeSymID(le.Uint32(b[p+j*4:]))
			if err := checkSym(id, numSyms); err != nil {
				return nil, err
			}
			rec.Params = append(rec.Params, id)
		}
		p += np * 4
		if err := checkSym(rec.Func, numSyms); err != nil {
			return nil, err
		}
		if err := checkSym(rec.Ret, numSyms); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func (d *decoder) calls(b []byte, numSyms int) ([]prim.CallSite, error) {
	if len(b) < 4 {
		return nil, corrupt("call section too small")
	}
	n := int(le.Uint32(b))
	if n < 0 || n > len(b) || len(b) != 4+n*callRecSize {
		return nil, corrupt("call section size mismatch")
	}
	out := make([]prim.CallSite, n)
	for i := 0; i < n; i++ {
		rec := b[4+i*callRecSize:]
		c := prim.CallSite{
			Callee:   decodeSymID(le.Uint32(rec)),
			Indirect: rec[20] != 0,
			Args:     int(le.Uint32(rec[16:])),
		}
		if err := checkSym(c.Callee, numSyms); err != nil {
			return nil, err
		}
		file, err := d.str(le.Uint32(rec[4:]))
		if err != nil {
			return nil, err
		}
		caller, err := d.str(le.Uint32(rec[12:]))
		if err != nil {
			return nil, err
		}
		c.Loc = prim.Loc{File: file, Line: int32(le.Uint32(rec[8:]))}
		c.Caller = caller
		out[i] = c
	}
	return out, nil
}
