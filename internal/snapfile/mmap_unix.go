//go:build unix

package snapfile

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can map snapshots.
const mmapSupported = true

// mmapFile maps the open file read-only. The returned bytes stay valid
// until munmap; N processes mapping the same snapshot share one page
// cache, which is the point of the format.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmap releases a mapping produced by mmapFile.
func munmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
