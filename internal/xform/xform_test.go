package xform

import (
	"testing"

	"cla/internal/core"
	"cla/internal/frontend"
	"cla/internal/prim"
	"cla/internal/pts"
)

func compile(t *testing.T, src string) *prim.Program {
	t.Helper()
	p, err := frontend.CompileSource("t.c", src, nil, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func solve(t *testing.T, p *prim.Program) *core.Result {
	t.Helper()
	r, err := core.Solve(pts.NewMemSource(p), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ptsNames(p *prim.Program, r *core.Result, name string) map[string]bool {
	out := map[string]bool{}
	for _, z := range r.PointsTo(p.SymIDByName(name)) {
		out[p.Sym(z).Name] = true
	}
	return out
}

// The identity-function example: context-insensitive analysis conflates
// the two call sites; the duplication transformation separates them.
const idSource = `
int g1, g2;
int *id(int *v) { return v; }
int *r1, *r2;
void m(void) {
	r1 = id(&g1);
	r2 = id(&g2);
}`

func TestContextInsensitiveBaseline(t *testing.T) {
	p := compile(t, idSource)
	r := solve(t, p)
	got := ptsNames(p, r, "r1")
	if !got["g1"] || !got["g2"] {
		t.Fatalf("baseline pts(r1) = %v, expected conflated {g1,g2}", got)
	}
}

func TestContextSensitiveSeparatesCallSites(t *testing.T) {
	p := compile(t, idSource)
	xp := ContextSensitive(p, Options{})
	if err := xp.Validate(); err != nil {
		t.Fatalf("transformed program invalid: %v", err)
	}
	r := solve(t, xp)
	r1 := ptsNames(xp, r, "r1")
	if !r1["g1"] || r1["g2"] {
		t.Errorf("pts(r1) = %v, want exactly {g1}", r1)
	}
	r2 := ptsNames(xp, r, "r2")
	if !r2["g2"] || r2["g1"] {
		t.Errorf("pts(r2) = %v, want exactly {g2}", r2)
	}
}

func TestContextSensitiveSoundness(t *testing.T) {
	// The transformed program must not lose any flows present in the
	// original for non-cloned objects.
	src := `
int a, b;
int *pass(int *x) { return x; }
int *keep;
void m(void) {
	keep = pass(&a);
	keep = pass(&b);
}`
	p := compile(t, src)
	orig := ptsNames(p, solve(t, p), "keep")
	xp := ContextSensitive(p, Options{})
	got := ptsNames(xp, solve(t, xp), "keep")
	for name := range orig {
		if !got[name] {
			t.Errorf("transformation lost %s from pts(keep): %v vs %v", name, got, orig)
		}
	}
}

func TestSingleCallSiteNotCloned(t *testing.T) {
	src := `
int g;
int *one(int *v) { return v; }
int *r;
void m(void) { r = one(&g); }`
	p := compile(t, src)
	xp := ContextSensitive(p, Options{})
	// No duplicated symbols should appear.
	for i := range xp.Syms {
		if xp.Syms[i].Name == "one$1@1" {
			t.Error("single-call-site function was cloned")
		}
	}
	r := solve(t, xp)
	if got := ptsNames(xp, r, "r"); !got["g"] {
		t.Errorf("pts(r) = %v", got)
	}
}

func TestFunctionFilter(t *testing.T) {
	p := compile(t, idSource)
	xp := ContextSensitive(p, Options{Functions: map[string]bool{"other": true}})
	// id was not selected: behavior must stay context-insensitive.
	r := solve(t, xp)
	got := ptsNames(xp, r, "r1")
	if !got["g1"] || !got["g2"] {
		t.Errorf("filtered transform changed behavior: %v", got)
	}
}

func TestBodySizeLimit(t *testing.T) {
	p := compile(t, idSource)
	xp := ContextSensitive(p, Options{MaxBodyAssigns: 1})
	r := solve(t, xp)
	got := ptsNames(xp, r, "r1")
	if !got["g1"] || !got["g2"] {
		t.Errorf("limit ignored: %v", got)
	}
}

func TestIndirectCallsKeepSharedContext(t *testing.T) {
	src := `
int g1, g2;
int *id(int *v) { return v; }
int *(*fp)(int *);
int *r1, *r2, *ri;
void m(void) {
	r1 = id(&g1);
	r2 = id(&g2);
	fp = id;
	ri = fp(&g1);
}`
	p := compile(t, src)
	xp := ContextSensitive(p, Options{})
	r := solve(t, xp)
	// Direct calls: separated. Note the fp call goes through the shared
	// record and must still resolve.
	if got := ptsNames(xp, r, "ri"); !got["g1"] {
		t.Errorf("indirect call broken: pts(ri) = %v", got)
	}
	if got := ptsNames(xp, r, "r1"); got["g2"] {
		t.Errorf("direct call not separated: pts(r1) = %v", got)
	}
}

func TestChainedClonedFunctions(t *testing.T) {
	src := `
int g1, g2;
int *inner(int *v) { return v; }
int *outer(int *w) { return inner(w); }
int *r1, *r2;
void m(void) {
	r1 = outer(&g1);
	r2 = outer(&g2);
}`
	p := compile(t, src)
	xp := ContextSensitive(p, Options{})
	r := solve(t, xp)
	// k=1 cloning: outer is cloned per site, but both clones call the
	// same inner context, so the flows re-merge inside inner. Soundness:
	// both results still include their own global.
	r1 := ptsNames(xp, r, "r1")
	r2 := ptsNames(xp, r, "r2")
	if !r1["g1"] || !r2["g2"] {
		t.Errorf("lost flows: r1=%v r2=%v", r1, r2)
	}
}

func TestTransformPreservesCounts(t *testing.T) {
	p := compile(t, idSource)
	xp := ContextSensitive(p, Options{})
	if len(xp.Assigns) <= len(p.Assigns) {
		t.Errorf("no duplication happened: %d vs %d", len(xp.Assigns), len(p.Assigns))
	}
	if len(xp.Funcs) != len(p.Funcs) {
		t.Errorf("function records changed: %d vs %d", len(xp.Funcs), len(p.Funcs))
	}
}

func TestEmptyProgram(t *testing.T) {
	xp := ContextSensitive(&prim.Program{}, Options{})
	if len(xp.Assigns) != 0 || len(xp.Syms) != 0 {
		t.Errorf("empty program changed: %+v", xp)
	}
}
