package xform

import (
	"sort"

	"cla/internal/prim"
)

// OfflineVarSub implements offline variable substitution in the style of
// Rountev & Chandra (PLDI 2000), the scaling technique the paper cites as
// reference [21]: before any points-to analysis runs, find variables that
// provably have identical points-to sets and collapse them, shrinking the
// constraint graph.
//
// Two offline facts are used, both restricted to variables whose address
// is never taken (so no analysis-time store can write to them) and that
// are not standardized parameters/returns (which receive analysis-time
// edges from indirect-call linking):
//
//   - Copy cycles: variables forming a cycle of simple assignments have
//     mutually included, hence equal, points-to sets.
//   - Copy chains: a variable whose only value inflow is one simple
//     assignment x = y has exactly pts(y).
//
// The returned substitution maps every symbol to its representative
// (identity for unaffected symbols); query the analysis through it.
// Address-of occurrences (x as an lval) are never rewritten — only value
// positions — so object identity in points-to sets is preserved.
func OfflineVarSub(prog *prim.Program) (*prim.Program, []prim.SymID) {
	n := len(prog.Syms)
	subst := make([]prim.SymID, n)
	for i := range subst {
		subst[i] = prim.SymID(i)
	}

	eligible := make([]bool, n)
	for i := range prog.Syms {
		switch prog.Syms[i].Kind {
		case prim.SymGlobal, prim.SymStatic, prim.SymLocal, prim.SymTemp, prim.SymField:
			eligible[i] = true
		}
	}
	// Address-taken variables and indirect-call-reachable functions are
	// excluded.
	inflow := make([]int, n)     // count of value inflows
	soleCopy := make([]int32, n) // the single simple source, if inflow==1
	copyEdges := map[int32][]int32{}
	for _, a := range prog.Assigns {
		switch a.Kind {
		case prim.Base:
			eligible[a.Src] = false // address taken
			inflow[a.Dst]++
			soleCopy[a.Dst] = -1
		case prim.Simple:
			inflow[a.Dst]++
			if inflow[a.Dst] == 1 {
				soleCopy[a.Dst] = int32(a.Src)
			} else {
				soleCopy[a.Dst] = -1
			}
			copyEdges[int32(a.Src)] = append(copyEdges[int32(a.Src)], int32(a.Dst))
		case prim.LoadInd:
			inflow[a.Dst]++
			soleCopy[a.Dst] = -1
		}
	}

	// 1. Collapse copy cycles among eligible variables with iterative
	// Tarjan over the simple-assignment graph.
	reps := tarjanCopySCCs(n, copyEdges, eligible)
	for i, r := range reps {
		if r >= 0 {
			subst[i] = prim.SymID(r)
		}
	}
	find := func(x prim.SymID) prim.SymID {
		for subst[x] != x {
			subst[x] = subst[subst[x]]
			x = subst[x]
		}
		return x
	}

	// 2. Chain substitution: follow unique-copy chains to their source.
	// Resolution is memoized through subst itself; cycles were already
	// collapsed so chains terminate.
	var resolve func(x int32, depth int) prim.SymID
	resolve = func(x int32, depth int) prim.SymID {
		r := find(prim.SymID(x))
		if depth > n {
			return r
		}
		if !eligible[r] || inflow[r] != 1 || soleCopy[r] < 0 {
			return r
		}
		src := soleCopy[r]
		if find(prim.SymID(src)) == r {
			return r // self-copy after collapsing
		}
		target := resolve(src, depth+1)
		if target != r {
			subst[r] = target
		}
		return target
	}
	for i := 0; i < n; i++ {
		if eligible[i] {
			resolve(int32(i), 0)
		}
	}

	// 3. Rewrite the program through the substitution. Value positions
	// map; Base sources (lvals) keep their identity. Self-copies drop.
	// Function-pointer records follow their substituted variable, and the
	// FuncPtr mark migrates to the representative so analysis-time call
	// linking still fires.
	out := &prim.Program{
		Syms:  append([]prim.Symbol(nil), prog.Syms...),
		Funcs: append([]prim.FuncRecord(nil), prog.Funcs...),
	}
	for i := range prog.Syms {
		if prog.Syms[i].FuncPtr {
			out.Syms[find(prim.SymID(i))].FuncPtr = true
		}
	}
	for i := range out.Funcs {
		out.Funcs[i].Func = find(out.Funcs[i].Func)
	}
	for _, a := range prog.Assigns {
		if a.Kind != prim.Base {
			a.Src = find(a.Src)
		}
		a.Dst = find(a.Dst)
		if a.Kind == prim.Simple && a.Dst == a.Src {
			continue
		}
		out.AddAssign(a)
	}
	final := make([]prim.SymID, n)
	for i := range final {
		final[i] = find(prim.SymID(i))
	}
	return out, final
}

// tarjanCopySCCs returns, for each node in a non-trivial SCC of the copy
// graph whose members are all eligible, the SCC's representative (lowest
// member id); -1 otherwise. Iterative to handle long chains.
func tarjanCopySCCs(n int, edges map[int32][]int32, eligible []bool) []int32 {
	reps := make([]int32, n)
	for i := range reps {
		reps[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	var stack []int32
	var order int32 = 1

	type frame struct {
		v  int32
		ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != 0 || !eligible[root] {
			continue
		}
		frames := []frame{{v: int32(root)}}
		index[root] = order
		low[root] = order
		order++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			outs := edges[v]
			for f.ei < len(outs) {
				w := outs[f.ei]
				f.ei++
				if !eligible[w] {
					continue
				}
				if index[w] == 0 {
					index[w] = order
					low[w] = order
					order++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			var members []int32
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				members = append(members, m)
				if m == v {
					break
				}
			}
			if len(members) > 1 {
				sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
				for _, m := range members {
					reps[m] = members[0]
				}
			}
		}
	}
	return reps
}
