package xform

import (
	"fmt"
	"math/rand"
	"testing"

	"cla/internal/core"
	"cla/internal/driver"
	"cla/internal/frontend"
	"cla/internal/gen"
	"cla/internal/prim"
	"cla/internal/pts"
)

func TestOVSCollapsesCopyChain(t *testing.T) {
	src := `int v;
int *p0, *p1, *p2, *p3;
void m(void) {
	p0 = &v;
	p1 = p0;
	p2 = p1;
	p3 = p2;
}`
	p := compile(t, src)
	sub, mapping := OfflineVarSub(p)
	if err := sub.Validate(); err != nil {
		t.Fatalf("substituted program invalid: %v", err)
	}
	if len(sub.Assigns) >= len(p.Assigns) {
		t.Errorf("no shrinkage: %d vs %d", len(sub.Assigns), len(p.Assigns))
	}
	// All p1..p3 map to p0.
	p0 := p.SymIDByName("p0")
	for _, name := range []string{"p1", "p2", "p3"} {
		id := p.SymIDByName(name)
		if mapping[id] != p0 {
			t.Errorf("%s maps to %s, want p0", name, p.Sym(mapping[id]).Name)
		}
	}
	// Solving the substituted program gives the chain's set at the rep.
	r := solve(t, sub)
	got := ptsNames(sub, r, "p0")
	if !got["v"] {
		t.Errorf("pts(p0) = %v", got)
	}
}

func TestOVSCollapsesCopyCycle(t *testing.T) {
	src := `int v;
int *a, *b, *c;
void m(void) { a = b; b = c; c = a; a = &v; }`
	p := compile(t, src)
	_, mapping := OfflineVarSub(p)
	a, b, c := p.SymIDByName("a"), p.SymIDByName("b"), p.SymIDByName("c")
	if mapping[a] != mapping[b] || mapping[b] != mapping[c] {
		t.Errorf("cycle not collapsed: %v %v %v", mapping[a], mapping[b], mapping[c])
	}
}

func TestOVSKeepsAddressTakenDistinct(t *testing.T) {
	// q's address is taken: a store through pp may write q alone, so q
	// must not be substituted away despite the single copy inflow.
	src := `int v1, v2;
int *p, *q, **pp;
void m(void) {
	q = p;
	pp = &q;
	*pp = &v2;
	p = &v1;
}`
	p := compile(t, src)
	_, mapping := OfflineVarSub(p)
	q := p.SymIDByName("q")
	if mapping[q] != q {
		t.Errorf("address-taken q substituted to %s", p.Sym(mapping[q]).Name)
	}
}

func TestOVSPreservesResultsExactly(t *testing.T) {
	src := `int g1, g2;
struct S { int *f; } s;
int *a, *b, *c, *d, **pp;
int *id(int *x) { return x; }
int *(*fp)(int *);
void m(void) {
	a = &g1;
	b = a;
	c = b;
	s.f = c;
	d = s.f;
	pp = &a;
	*pp = &g2;
	fp = id;
	d = fp(a);
}`
	p := compile(t, src)
	base := solve(t, p)
	sub, mapping := OfflineVarSub(p)
	after, err := core.Solve(pts.NewMemSource(sub), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every original variable's set must be recoverable through the
	// mapping, identical to the unsubstituted analysis.
	for i := range p.Syms {
		id := prim.SymID(i)
		if !pts.CountedAsPointerVar(p.Syms[i].Kind) {
			continue
		}
		want := base.PointsTo(id)
		got := after.PointsTo(mapping[id])
		if len(want) != len(got) {
			t.Errorf("%s: %v vs %v (via %s)", p.Syms[i].Name,
				namesOf(p, got), namesOf(p, want), p.Sym(mapping[id]).Name)
			continue
		}
		for j := range want {
			if want[j] != got[j] {
				t.Errorf("%s: %v vs %v", p.Syms[i].Name, namesOf(p, got), namesOf(p, want))
				break
			}
		}
	}
}

func namesOf(p *prim.Program, ids []prim.SymID) []string {
	var out []string
	for _, id := range ids {
		out = append(out, p.Sym(id).Name)
	}
	return out
}

// Property: on random programs, OVS + solve == solve, through the mapping.
func TestOVSEquivalenceOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := &prim.Program{}
		nsyms := 4 + rng.Intn(16)
		for i := 0; i < nsyms; i++ {
			prog.AddSym(prim.Symbol{Name: fmt.Sprintf("v%d", i), Kind: prim.SymGlobal})
		}
		for i := 0; i < 6+rng.Intn(40); i++ {
			prog.AddAssign(prim.Assign{
				Kind: prim.Kind(rng.Intn(prim.NumKinds)),
				Dst:  prim.SymID(rng.Intn(nsyms)),
				Src:  prim.SymID(rng.Intn(nsyms)),
			})
		}
		base, err := core.Solve(pts.NewMemSource(prog), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sub, mapping := OfflineVarSub(prog)
		after, err := core.Solve(pts.NewMemSource(sub), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nsyms; i++ {
			id := prim.SymID(i)
			want := base.PointsTo(id)
			got := after.PointsTo(mapping[id])
			if len(want) != len(got) {
				t.Fatalf("seed %d: pts(v%d) %v vs %v", seed, i, got, want)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("seed %d: pts(v%d) %v vs %v", seed, i, got, want)
				}
			}
		}
	}
}

func TestOVSShrinksGeneratedWorkload(t *testing.T) {
	p, _ := gen.ProfileByName("vortex")
	code := gen.Generate(p.Scale(0.03), 5)
	prog, err := driver.CompileUnits(code.Units(), code.Loader(), frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := OfflineVarSub(prog)
	if len(sub.Assigns) >= len(prog.Assigns) {
		t.Errorf("no shrinkage on generated code: %d vs %d",
			len(sub.Assigns), len(prog.Assigns))
	}
	t.Logf("OVS: %d -> %d assignments (%.0f%%)", len(prog.Assigns), len(sub.Assigns),
		100*float64(len(sub.Assigns))/float64(len(prog.Assigns)))
}

func TestOVSEmptyProgram(t *testing.T) {
	sub, mapping := OfflineVarSub(&prim.Program{})
	if len(sub.Assigns) != 0 || len(mapping) != 0 {
		t.Error("empty program changed")
	}
}
