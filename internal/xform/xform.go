// Package xform implements pre-analysis optimizers as database-to-database
// transformations, the extension mechanism sketched in Section 4 of the
// paper: "we have experimented with context-sensitive analysis by writing
// a transformation that reads in databases and simulates
// context-sensitivity by controlled duplication of primitive assignments
// in the database — this requires no changes to code in the compile, link
// or analyze components."
//
// ContextSensitive duplicates a function's standardized parameter/return
// variables and its internal assignments once per syntactic call site, so
// the context-insensitive solver computes call-site-sensitive results for
// the cloned functions. The transformation is k=1: nested calls inside a
// cloned body still share their callee's original context unless that
// callee is cloned too, and indirect calls always use the original
// (shared) context because function records are left untouched.
package xform

import (
	"fmt"
	"sort"

	"cla/internal/prim"
)

// funcInfo gathers one function's cloning state.
type funcInfo struct {
	name    string
	params  map[prim.SymID]bool
	ret     prim.SymID
	body    map[prim.SymID]bool // params, ret, locals, temps of the function
	bodyIdx []int               // indexes into the input program's assignments
	// calls groups boundary assignments (argument bindings and result
	// reads) by call-site location.
	calls map[prim.Loc][]int
}

// sortedInfos returns functions in name order for deterministic output.
func sortedInfos(infos map[string]*funcInfo) []*funcInfo {
	names := make([]string, 0, len(infos))
	for n := range infos {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*funcInfo, len(names))
	for i, n := range names {
		out[i] = infos[n]
	}
	return out
}

// sortedLocs returns call-site locations in (file, line) order.
func sortedLocs(calls map[prim.Loc][]int) []prim.Loc {
	out := make([]prim.Loc, 0, len(calls))
	for l := range calls {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Options bounds the duplication.
type Options struct {
	// Functions restricts cloning to the named functions; nil means every
	// eligible defined function.
	Functions map[string]bool
	// MaxBodyAssigns skips functions with larger bodies (0 = 256).
	MaxBodyAssigns int
	// MaxCallSites skips functions called from more sites (0 = 16).
	MaxCallSites int
}

// ContextSensitive returns a transformed copy of prog with per-call-site
// duplication applied. The input program is not modified.
func ContextSensitive(prog *prim.Program, opts Options) *prim.Program {
	if opts.MaxBodyAssigns == 0 {
		opts.MaxBodyAssigns = 256
	}
	if opts.MaxCallSites == 0 {
		opts.MaxCallSites = 16
	}
	out := &prim.Program{
		Syms:  append([]prim.Symbol(nil), prog.Syms...),
		Funcs: append([]prim.FuncRecord(nil), prog.Funcs...),
	}

	infos := map[string]*funcInfo{}
	symOwner := map[prim.SymID]*funcInfo{} // param/ret symbol → function

	for _, rec := range prog.Funcs {
		sym := prog.Sym(rec.Func)
		if sym.Kind != prim.SymFunc {
			continue // function-pointer records stay shared
		}
		if opts.Functions != nil && !opts.Functions[sym.Name] {
			continue
		}
		fi := &funcInfo{
			name:   sym.Name,
			params: map[prim.SymID]bool{},
			ret:    rec.Ret,
			body:   map[prim.SymID]bool{},
			calls:  map[prim.Loc][]int{},
		}
		for _, p := range rec.Params {
			fi.params[p] = true
			fi.body[p] = true
			symOwner[p] = fi
		}
		if rec.Ret != prim.NoSym {
			fi.body[rec.Ret] = true
			symOwner[rec.Ret] = fi
		}
		infos[sym.Name] = fi
	}
	if len(infos) == 0 {
		out.Assigns = append(out.Assigns, prog.Assigns...)
		return out
	}

	// Locals and temps belong to the function named by their FuncName.
	for i := range prog.Syms {
		s := &prog.Syms[i]
		if s.Kind != prim.SymLocal && s.Kind != prim.SymTemp {
			continue
		}
		if fi, ok := infos[s.FuncName]; ok {
			fi.body[prim.SymID(i)] = true
		}
	}
	bodyOwner := map[prim.SymID]*funcInfo{}
	for _, fi := range infos {
		for id := range fi.body {
			bodyOwner[id] = fi
		}
	}

	// Classify assignments: body-side vs call-boundary vs unrelated.
	// An argument binding has Dst ∈ params of f but was emitted at the
	// call site; the in-body binding (x = f$1) has Src ∈ params. A result
	// read has Src == f$ret; the in-body return has Dst == f$ret.
	bodyOf := make([]*funcInfo, len(prog.Assigns))
	callOf := make([]*funcInfo, len(prog.Assigns))
	for ai, a := range prog.Assigns {
		var owner *funcInfo // caller's body, for boundary assigns
		switch {
		case symOwner[a.Dst] != nil && symOwner[a.Dst].params[a.Dst]:
			fi := symOwner[a.Dst]
			callOf[ai] = fi
			fi.calls[a.Loc] = append(fi.calls[a.Loc], ai)
			// The argument expression side may live in a (cloned)
			// caller's body: the assignment is then also part of that
			// body so each caller context keeps its own call.
			owner = bodyOwner[a.Src]
		case symOwner[a.Src] != nil && a.Src == symOwner[a.Src].ret && a.Kind == prim.Simple:
			fi := symOwner[a.Src]
			callOf[ai] = fi
			fi.calls[a.Loc] = append(fi.calls[a.Loc], ai)
			owner = bodyOwner[a.Dst]
		default:
			owner = bodyOwner[a.Dst]
			if owner == nil {
				owner = bodyOwner[a.Src]
			}
		}
		if owner != nil && owner != callOf[ai] {
			owner.bodyIdx = append(owner.bodyIdx, ai)
			bodyOf[ai] = owner
		}
	}

	// Decide which functions to clone.
	cloned := map[*funcInfo]bool{}
	for _, fi := range infos {
		if len(fi.bodyIdx) == 0 || len(fi.calls) < 2 {
			continue // nothing to gain from one (or zero) contexts
		}
		if len(fi.bodyIdx) > opts.MaxBodyAssigns || len(fi.calls) > opts.MaxCallSites {
			continue
		}
		cloned[fi] = true
	}

	// Emit assignments: unrelated ones verbatim; boundary assignments of
	// cloned functions redirected to per-context symbols; body
	// assignments of cloned functions duplicated per context (the
	// original context 0 serves indirect calls through the untouched
	// function records).
	cloneSym := func(id prim.SymID, ctx int) prim.SymID {
		s := prog.Syms[id]
		s.Name = fmt.Sprintf("%s@%d", s.Name, ctx)
		s.Internal = true
		return out.AddSym(s)
	}

	for _, fi := range sortedInfos(infos) {
		if !cloned[fi] {
			continue
		}
		ctx := 0
		for _, loc := range sortedLocs(fi.calls) {
			ctx++
			clones := map[prim.SymID]prim.SymID{}
			mapSym := func(id prim.SymID) prim.SymID {
				if !fi.body[id] {
					return id
				}
				if c, ok := clones[id]; ok {
					return c
				}
				c := cloneSym(id, ctx)
				clones[id] = c
				return c
			}
			// Redirect this call site's boundary assignments.
			for _, ai := range fi.calls[loc] {
				a := prog.Assigns[ai]
				if fi.params[a.Dst] {
					a.Dst = mapSym(a.Dst)
				}
				if a.Src == fi.ret {
					a.Src = mapSym(a.Src)
				}
				out.AddAssign(a)
			}
			// Duplicate the body into this context.
			for _, ai := range fi.bodyIdx {
				a := prog.Assigns[ai]
				a.Dst = mapSym(a.Dst)
				a.Src = mapSym(a.Src)
				out.AddAssign(a)
			}
		}
	}

	// Everything not consumed above is emitted verbatim: unrelated
	// assignments, bodies and boundaries of uncloned functions, and the
	// original (context 0) copies of cloned bodies, which serve indirect
	// calls through the untouched function records. The only drops are
	// boundary assignments of cloned callees whose caller side is not
	// itself a cloned body — those have been fully redirected to
	// per-context symbols.
	for ai, a := range prog.Assigns {
		cf := callOf[ai]
		if cf != nil && cloned[cf] && bodyOf[ai] == nil {
			continue
		}
		out.AddAssign(a)
	}
	return out
}
