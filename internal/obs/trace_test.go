package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func TestWriteTraceValidJSON(t *testing.T) {
	o := New()
	root := o.Start("compile")
	o.StartTrack(1, "unit a.c").End()
	root.End()
	o.Start("analyze").End()
	o.Counter("solver.cache_hits").Add(12)
	o.Gauge("pool.queue.max").Max(4)

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var spans, counters int
	for _, te := range doc.TraceEvents {
		switch te.Ph {
		case "X":
			spans++
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", te.Ph)
		}
	}
	if spans != 3 || counters != 2 {
		t.Fatalf("spans = %d, counters = %d; want 3, 2", spans, counters)
	}
}

func TestWriteTraceUnclosedSpanErrors(t *testing.T) {
	o := New()
	o.Start("compile") // never ended
	var buf bytes.Buffer
	err := o.WriteTrace(&buf)
	if err == nil {
		t.Fatal("unclosed span did not error")
	}
	if !strings.Contains(err.Error(), "open") {
		t.Fatalf("error = %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("error path wrote %d bytes", buf.Len())
	}
	if err := o.WriteJSONL(&buf); err == nil || buf.Len() != 0 {
		t.Fatalf("WriteJSONL on unclosed span: err=%v, wrote %d bytes", err, buf.Len())
	}
}

func TestValidateEventsRejectsOverlap(t *testing.T) {
	evs := []Event{
		{Name: "a", Start: ms(0), End: ms(10)},
		{Name: "b", Start: ms(5), End: ms(15)}, // crosses a's end
	}
	sortEvents(evs)
	if err := validateEvents(evs); err == nil {
		t.Fatal("overlapping spans validated")
	}
	var buf bytes.Buffer
	if err := writeTrace(&buf, evs, nil, nil); err == nil {
		t.Fatal("writeTrace accepted overlapping spans")
	}
	if buf.Len() != 0 {
		t.Fatalf("error path wrote %d bytes", buf.Len())
	}
}

func TestValidateEventsRejectsNegativeSpan(t *testing.T) {
	evs := []Event{{Name: "a", Start: ms(5), End: ms(1)}}
	if err := validateEvents(evs); err == nil {
		t.Fatal("negative-duration span validated")
	}
}

func TestValidateEventsAcceptsNestingAndSiblings(t *testing.T) {
	evs := []Event{
		{Name: "compile", Start: ms(0), End: ms(10)},
		{Name: "parse", Start: ms(1), End: ms(4)},
		{Name: "gen", Start: ms(4), End: ms(9)},
		{Name: "link", Start: ms(10), End: ms(12)},
		{Name: "unit", Track: 1, Start: ms(2), End: ms(8)},
	}
	sortEvents(evs)
	if err := validateEvents(evs); err != nil {
		t.Fatalf("validateEvents: %v", err)
	}
}

func TestWriteJSONL(t *testing.T) {
	o := New()
	o.Start("analyze").End()
	o.Counter("load.blocks").Add(7)
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var rec jsonlRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0: %v", err)
	}
	if rec.Type != "span" || rec.Name != "analyze" {
		t.Fatalf("line 0 = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1: %v", err)
	}
	if rec.Type != "counter" || rec.Name != "load.blocks" || rec.Value != 7 {
		t.Fatalf("line 1 = %+v", rec)
	}
}

func TestFlagsObserver(t *testing.T) {
	f := &Flags{}
	if f.Observer() != nil {
		t.Fatal("no flags set but observer non-nil")
	}
	f = &Flags{Stats: true}
	o := f.Observer()
	if o == nil {
		t.Fatal("-stats set but observer nil")
	}
	if f.Observer() != o {
		t.Fatal("Observer not idempotent")
	}
	if !o.memStats {
		t.Fatal("-stats observer should record memstats")
	}
	f = &Flags{Trace: "x.json"}
	if o := f.Observer(); o == nil || o.memStats {
		t.Fatalf("-trace observer = %v (memstats should be off)", o)
	}
}
