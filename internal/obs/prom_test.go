package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition format byte for byte: family
// ordering is sorted by name (counters, gauges, histograms), bucket
// lines ascend by le, and re-rendering the same registry is identical —
// the determinism /metricsz promises at any -j.
func TestWritePromGolden(t *testing.T) {
	o := New()
	o.Counter("serve.requests").Add(3)
	o.Counter("load.blocks").Add(7)
	o.Gauge("serve.inflight").Set(2)
	h := o.Histogram("serve.query.pointsto")
	h.Observe(3)     // exact bucket: le="3"
	h.Observe(3)     // same bucket, cumulative 2
	h.Observe(100)   // [96,103]: le="103"
	h.Observe(12000) // [11264,12287]: le="12287"

	const want = `# TYPE load_blocks counter
load_blocks 7
# TYPE serve_requests counter
serve_requests 3
# TYPE serve_inflight gauge
serve_inflight 2
# TYPE serve_query_pointsto histogram
serve_query_pointsto_bucket{le="3"} 2
serve_query_pointsto_bucket{le="103"} 3
serve_query_pointsto_bucket{le="12287"} 4
serve_query_pointsto_bucket{le="+Inf"} 4
serve_query_pointsto_sum 12106
serve_query_pointsto_count 4
`
	var buf bytes.Buffer
	if err := o.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("WriteProm output:\n%s\nwant:\n%s", buf.String(), want)
	}
	var again bytes.Buffer
	if err := o.WriteProm(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteProm is not deterministic across renders")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.query.pointsto": "serve_query_pointsto",
		"runtime.gc_cycles":    "runtime_gc_cycles",
		"9lives":               "_9lives",
		"a-b c/d":              "a_b_c_d",
		"ok_name:sub":          "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePromNil(t *testing.T) {
	var o *Observer
	var buf bytes.Buffer
	if err := o.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteProm: err=%v, wrote %d bytes", err, buf.Len())
	}
}

func TestCaptureRuntime(t *testing.T) {
	var nilObs *Observer
	nilObs.CaptureRuntime() // must not panic
	o := New()
	o.CaptureRuntime()
	gauges := map[string]int64{}
	for _, m := range o.Gauges() {
		gauges[m.Name] = m.Value
	}
	if gauges["runtime.goroutines"] <= 0 {
		t.Errorf("runtime.goroutines = %d, want > 0", gauges["runtime.goroutines"])
	}
	if gauges["runtime.heap_inuse_bytes"] <= 0 {
		t.Errorf("runtime.heap_inuse_bytes = %d, want > 0", gauges["runtime.heap_inuse_bytes"])
	}
	for _, name := range []string{"runtime.gc_pause_total_ns", "runtime.gc_cycles"} {
		if _, ok := gauges[name]; !ok {
			t.Errorf("missing gauge %s", name)
		}
	}
	var buf bytes.Buffer
	if err := o.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE runtime_goroutines gauge") {
		t.Errorf("prom output missing runtime gauges:\n%s", buf.String())
	}
}

func TestLogger(t *testing.T) {
	var nilLogger *Logger
	if err := nilLogger.Log(map[string]int{"x": 1}); err != nil {
		t.Fatalf("nil logger: %v", err)
	}
	if NewLogger(nil) != nil {
		t.Fatal("NewLogger(nil) != nil")
	}
	var buf bytes.Buffer
	l := NewLogger(&buf)
	if err := l.Log(map[string]string{"id": "r-1"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(map[string]string{"id": "r-2"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"r-1"`) || !strings.Contains(lines[1], `"r-2"`) {
		t.Fatalf("logger output = %q", buf.String())
	}
	if err := l.Log(func() {}); err == nil {
		t.Fatal("unmarshalable value accepted")
	}
}
