package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexInvariants(t *testing.T) {
	if got := bucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
	if got := bucketUpper(histBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("bucketUpper(last) = %d, want MaxInt64", got)
	}
	// Every value lands in a bucket whose range contains it, and bucket
	// boundaries are monotone and contiguous.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper(%d) = %d not above previous %d", i, up, prev)
		}
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if up < math.MaxInt64 {
			if got := bucketIndex(up + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, i+1)
			}
		}
		prev = up
	}
	// Small values are exact; negatives clamp to zero.
	for v := int64(0); v < 2*histSub; v++ {
		if bucketUpper(bucketIndex(v)) != v {
			t.Fatalf("small value %d not exact", v)
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative value bucket = %d, want 0", bucketIndex(-5))
	}
}

// TestHistogramQuantileAccuracy checks estimates against a known
// distribution: the uniform integers 1..N have exact quantiles q*N, and
// the log-linear buckets guarantee a relative error of at most
// 1/histSub (plus one for the integer edge).
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	const n = 100000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Sum() != n*(n+1)/2 {
		t.Fatalf("sum = %d, want %d", h.Sum(), n*(n+1)/2)
	}
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		exact := q * n
		got := float64(h.Quantile(q))
		if got < exact {
			t.Errorf("Quantile(%g) = %g below exact %g (must be an upper bound)", q, got, exact)
		}
		if maxAllowed := exact*(1+1.0/histSub) + 1; got > maxAllowed {
			t.Errorf("Quantile(%g) = %g, want <= %g", q, got, maxAllowed)
		}
	}
	// Exact region: a histogram of small values answers exactly.
	var small Histogram
	for v := int64(0); v < 10; v++ {
		small.Observe(v)
	}
	if got := small.Quantile(0.5); got != 4 {
		t.Errorf("small Quantile(0.5) = %d, want 4", got)
	}
	if got := small.Quantile(1); got != 9 {
		t.Errorf("small Quantile(1) = %d, want 9", got)
	}
}

// TestHistogramConcurrentWriters is the lock-free contract under -race:
// many goroutines observe concurrently (with readers running) and no
// observation is lost or double-counted.
func TestHistogramConcurrentWriters(t *testing.T) {
	var h Histogram
	const (
		writers = 8
		perG    = 10000
	)
	done := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-done:
				return
			default:
				h.Quantile(0.99)
				h.Count()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*1000 + i%997))
			}
		}(g)
	}
	wg.Wait()
	close(done)
	if got := h.Count(); got != writers*perG {
		t.Fatalf("count = %d, want %d", got, writers*perG)
	}
	_, total := h.snapshot()
	if total != writers*perG {
		t.Fatalf("bucket total = %d, want %d", total, writers*perG)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := int64(0); v < 1000; v++ {
		whole.Observe(v)
		if v%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d",
			a.Count(), a.Sum(), whole.Count(), whole.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%g) = %d, want %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestNilHistogramNoOps(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	h.ObserveSince(time.Now())
	h.Merge(&Histogram{})
	(&Histogram{}).Merge(h)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	var o *Observer
	if o.Histogram("x") != nil {
		t.Fatal("nil observer returned non-nil histogram")
	}
	if o.Histograms() != nil {
		t.Fatal("nil observer returned histograms")
	}
	n := testing.AllocsPerRun(100, func() {
		h.Observe(1)
		_ = h.Count()
	})
	if n != 0 {
		t.Fatalf("nil histogram allocates %.1f per op, want 0", n)
	}
}

func TestObserverHistogramRegistry(t *testing.T) {
	o := New()
	o.Histogram("b").Observe(2)
	o.Histogram("a").Observe(1)
	o.Histogram("b").Observe(3)
	hs := o.Histograms()
	if len(hs) != 2 || hs[0].Name != "a" || hs[1].Name != "b" {
		t.Fatalf("registry = %+v", hs)
	}
	if hs[1].H.Count() != 2 {
		t.Fatalf("b count = %d, want 2", hs[1].H.Count())
	}
}
