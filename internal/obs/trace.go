package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome trace_event record. Complete spans use
// ph "X" (ts + dur); counters use ph "C" with a value argument.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

func usec(d int64) float64 { return float64(d) / 1e3 } // ns → µs

// validateEvents checks the span structure the sinks require: every span
// must have End >= Start, and the spans of each track must be properly
// nested — two spans on one track either don't intersect or one contains
// the other. The input must already be in sortEvents order.
func validateEvents(evs []Event) error {
	var stack []Event
	track := -1
	for _, e := range evs {
		if e.End < e.Start {
			return fmt.Errorf("obs: span %q ends before it starts", e.Name)
		}
		if e.Track != track {
			track = e.Track
			stack = stack[:0]
		}
		for len(stack) > 0 && stack[len(stack)-1].End <= e.Start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && e.End > stack[len(stack)-1].End {
			return fmt.Errorf("obs: spans %q and %q overlap on track %d without nesting",
				stack[len(stack)-1].Name, e.Name, e.Track)
		}
		stack = append(stack, e)
	}
	return nil
}

// checkComplete returns an error when spans are still open — an unclosed
// span means the instrumentation points are unbalanced and any trace
// would be misleading.
func (o *Observer) checkComplete() error {
	if n := o.OpenSpans(); n > 0 {
		return fmt.Errorf("obs: %d span(s) still open", n)
	}
	return nil
}

// WriteTrace emits the run in Chrome trace_event format (a JSON object
// with a traceEvents array), loadable by chrome://tracing and Perfetto.
// Track 0 carries the sequential phases; higher tracks carry parallel
// fan-out slots. Counter and gauge values are appended as "C" events.
//
// The event structure is validated first — unclosed or overlapping
// (non-nested) spans are reported as an error and NOTHING is written, so
// a malformed run can never corrupt an output file.
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil {
		return nil
	}
	if err := o.checkComplete(); err != nil {
		return err
	}
	return writeTrace(w, o.Events(), o.Counters(), o.Gauges())
}

// writeTrace is the encoder core, split out so tests and the fuzz target
// can drive it with arbitrary event lists.
func writeTrace(w io.Writer, evs []Event, counters, gauges []Metric) error {
	if err := validateEvents(evs); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(te traceEvent) error {
		b, err := json.Marshal(te)
		if err != nil {
			return err
		}
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		buf.Write(b)
		return nil
	}
	var last float64
	for _, e := range evs {
		te := traceEvent{
			Name: e.Name, Ph: "X", Pid: 1, Tid: e.Track,
			Ts: usec(int64(e.Start)), Dur: usec(int64(e.Dur())),
		}
		if e.Alloc >= 0 {
			te.Args = map[string]any{"alloc_bytes": e.Alloc}
		}
		if ts := usec(int64(e.End)); ts > last {
			last = ts
		}
		if err := emit(te); err != nil {
			return err
		}
	}
	for _, m := range counters {
		if err := emit(traceEvent{Name: m.Name, Ph: "C", Pid: 1, Ts: last,
			Args: map[string]any{"value": m.Value}}); err != nil {
			return err
		}
	}
	for _, m := range gauges {
		if err := emit(traceEvent{Name: m.Name, Ph: "C", Pid: 1, Ts: last,
			Args: map[string]any{"value": m.Value}}); err != nil {
			return err
		}
	}
	buf.WriteString("\n]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// jsonlRecord is one JSON-lines record: a span, a counter, a gauge or a
// histogram summary.
type jsonlRecord struct {
	Type    string `json:"type"`
	Name    string `json:"name"`
	Track   int    `json:"track,omitempty"`
	StartNS int64  `json:"start_ns,omitempty"`
	DurNS   int64  `json:"dur_ns,omitempty"`
	Alloc   int64  `json:"alloc_bytes,omitempty"`
	Value   int64  `json:"value,omitempty"`
	// Histogram summaries: observation count, value sum and quantile
	// estimates (upper bounds, see Histogram.Quantile).
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
	P50   int64 `json:"p50,omitempty"`
	P99   int64 `json:"p99,omitempty"`
}

// WriteJSONL emits the run as JSON lines — one span, counter or gauge
// per line, in the same deterministic order as the trace. Like
// WriteTrace it validates first and writes nothing on error.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	if err := o.checkComplete(); err != nil {
		return err
	}
	evs := o.Events()
	if err := validateEvents(evs); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range evs {
		rec := jsonlRecord{Type: "span", Name: e.Name, Track: e.Track,
			StartNS: int64(e.Start), DurNS: int64(e.Dur())}
		if e.Alloc >= 0 {
			rec.Alloc = e.Alloc
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, m := range o.Counters() {
		if err := enc.Encode(jsonlRecord{Type: "counter", Name: m.Name, Value: m.Value}); err != nil {
			return err
		}
	}
	for _, m := range o.Gauges() {
		if err := enc.Encode(jsonlRecord{Type: "gauge", Name: m.Name, Value: m.Value}); err != nil {
			return err
		}
	}
	for _, hm := range o.Histograms() {
		rec := jsonlRecord{Type: "histogram", Name: hm.Name,
			Count: hm.H.Count(), Sum: hm.H.Sum(),
			P50: hm.H.Quantile(0.50), P99: hm.H.Quantile(0.99)}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}
