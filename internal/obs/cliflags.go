package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags bundles the observability options shared by every CLA command:
// the paper-style stats report, the trace/JSONL event sinks, and
// CPU/heap/block/mutex profiles.
type Flags struct {
	Stats        bool
	Trace        string
	JSONL        string
	CPUProfile   string
	MemProfile   string
	BlockProfile string
	MutexProfile string

	o       *Observer
	cpuFile *os.File
}

// AddFlags registers -stats, -trace, -jsonl and the four profile flags
// (-cpuprofile, -memprofile, -blockprofile, -mutexprofile) on fs and
// returns the holder to query after parsing.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Stats, "stats", false,
		"print a per-phase stats report (paper Tables 2-3 style)")
	fs.StringVar(&f.Trace, "trace", "",
		"write a Chrome trace_event file (chrome://tracing, Perfetto) to this path")
	fs.StringVar(&f.JSONL, "jsonl", "",
		"write instrumentation events as JSON lines to this path")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "",
		"write a pprof heap profile to this path")
	fs.StringVar(&f.BlockProfile, "blockprofile", "",
		"write a pprof blocking profile to this path (records every blocking event)")
	fs.StringVar(&f.MutexProfile, "mutexprofile", "",
		"write a pprof mutex-contention profile to this path")
	return f
}

// Any reports whether any observability output was requested.
func (f *Flags) Any() bool {
	return f.Stats || f.Trace != "" || f.JSONL != "" ||
		f.CPUProfile != "" || f.MemProfile != "" ||
		f.BlockProfile != "" || f.MutexProfile != ""
}

// Observer returns the run's observer: non-nil when any of -stats,
// -trace or -jsonl was requested, nil (the free no-op) otherwise.
// Memory statistics are collected only for -stats, which reports them.
func (f *Flags) Observer() *Observer {
	if f.o == nil && (f.Stats || f.Trace != "" || f.JSONL != "") {
		f.o = New()
		f.o.EnableMemStats(f.Stats)
	}
	return f.o
}

// Start begins CPU profiling and enables the runtime's block/mutex
// event recording when the matching profiles were requested. Call
// Finish to stop profiling and write the outputs; Finish also restores
// the block and mutex rates to their free defaults.
func (f *Flags) Start() error {
	if f.BlockProfile != "" {
		// Rate 1 records every blocking event — the highest-fidelity
		// setting, acceptable because profiling is explicitly opt-in.
		runtime.SetBlockProfileRate(1)
	}
	if f.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if f.CPUProfile == "" {
		return nil
	}
	file, err := os.Create(f.CPUProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Finish stops the CPU profile and writes the requested heap profile,
// trace and JSONL outputs. It returns the first error; profile and sink
// failures do not abort the remaining outputs.
func (f *Flags) Finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(f.cpuFile.Close())
		f.cpuFile = nil
	}
	if f.MemProfile != "" {
		keep(f.writeMemProfile())
	}
	if f.BlockProfile != "" {
		keep(writeLookupProfile(f.BlockProfile, "block"))
		runtime.SetBlockProfileRate(0)
	}
	if f.MutexProfile != "" {
		keep(writeLookupProfile(f.MutexProfile, "mutex"))
		runtime.SetMutexProfileFraction(0)
	}
	if f.Trace != "" {
		keep(writeFileWith(f.Trace, f.o.WriteTrace))
	}
	if f.JSONL != "" {
		keep(writeFileWith(f.JSONL, f.o.WriteJSONL))
	}
	return first
}

func (f *Flags) writeMemProfile() error {
	file, err := os.Create(f.MemProfile)
	if err != nil {
		return err
	}
	defer file.Close()
	runtime.GC() // up-to-date heap statistics
	if err := pprof.WriteHeapProfile(file); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// writeLookupProfile dumps one of the runtime's named profiles
// ("block", "mutex") in pprof format.
func writeLookupProfile(path, name string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("obs: no %s profile", name)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(file, 0); err != nil {
		file.Close()
		return fmt.Errorf("obs: %s profile: %w", name, err)
	}
	return file.Close()
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
