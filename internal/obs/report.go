package obs

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// KV is one labelled report row.
type KV struct {
	Key   string
	Value string
}

// Section is one titled block of report rows.
type Section struct {
	Title string
	Rows  []KV
}

// Report is the -stats output: a sequence of sections mirroring the
// paper's evaluation tables (phase splits, database characteristics,
// analysis results, demand-load accounting).
type Report struct {
	Sections []Section
}

// Add appends a section.
func (r *Report) Add(title string, rows ...KV) {
	r.Sections = append(r.Sections, Section{Title: title, Rows: rows})
}

// Format renders the report with aligned columns.
func (r *Report) Format(w io.Writer) {
	for i, s := range r.Sections {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "== %s ==\n", s.Title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, row := range s.Rows {
			fmt.Fprintf(tw, "%s\t%s\n", row.Key, row.Value)
		}
		tw.Flush()
	}
}

// FmtDur renders a duration for reports as seconds with fixed precision,
// so normalizers can match one token shape.
func FmtDur(d time.Duration) string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// FmtBytes renders a byte count with a unit suffix.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// PhaseSection renders the observer's spans as a report section: track-0
// phases as an indented tree in start order, and the parallel tracks
// rolled up per span-name prefix (the text before the first space) with
// slot counts and total/max wall time — so the section's shape, and
// every non-time figure in it, is identical at any -j setting.
func (o *Observer) PhaseSection() Section {
	sec := Section{Title: "phases"}
	if o == nil {
		return sec
	}
	evs := o.Events()

	// Track 0: sequential phases, indented by containment depth.
	var stack []Event
	for _, e := range evs {
		if e.Track != 0 {
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].End <= e.Start {
			stack = stack[:len(stack)-1]
		}
		val := FmtDur(e.Dur())
		if e.Alloc >= 0 {
			val += fmt.Sprintf("  +%s", FmtBytes(e.Alloc))
		}
		sec.Rows = append(sec.Rows, KV{
			Key:   strings.Repeat("  ", len(stack)) + e.Name,
			Value: val,
		})
		stack = append(stack, e)
	}

	// Parallel tracks: aggregate by name prefix.
	type agg struct {
		name  string
		count int
		total time.Duration
		max   time.Duration
	}
	var order []string
	groups := map[string]*agg{}
	for _, e := range evs {
		if e.Track == 0 {
			continue
		}
		name := e.Name
		if i := strings.IndexByte(name, ' '); i > 0 {
			name = name[:i]
		}
		g := groups[name]
		if g == nil {
			g = &agg{name: name}
			groups[name] = g
			order = append(order, name)
		}
		g.count++
		g.total += e.Dur()
		if d := e.Dur(); d > g.max {
			g.max = d
		}
	}
	for _, name := range order {
		g := groups[name]
		sec.Rows = append(sec.Rows, KV{
			Key: fmt.Sprintf("  ~ %s x%d", g.name, g.count),
			Value: fmt.Sprintf("total %s  max %s",
				FmtDur(g.total), FmtDur(g.max)),
		})
	}
	return sec
}
